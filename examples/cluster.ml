(* Sharded execution: a whole cluster in one process.

   Three ordinary servers become shards behind a consistent-hashing
   coordinator; the coordinator speaks the same line protocol as a
   single server, so the same [Client] drives both.  Every answer is
   bit-for-bit what a single node computes — the differential oracle
   fuzzes exactly that contract with its "cluster" engine.

   Run with: dune exec examples/cluster.exe *)

module Ring = Paradb_cluster.Ring
module Coordinator = Paradb_cluster.Coordinator
module Server = Paradb_server.Server
module Client = Paradb_server.Client
module Protocol = Paradb_server.Protocol
module Value = Paradb_relational.Value

let ok = function
  | Protocol.Ok_ { summary; payload } -> (summary, payload)
  | Protocol.Err e -> failwith e

let () =
  (* 1. Placement is a pure function of the value's bytes: the same
     ring in any process routes the same value to the same shard. *)
  let ring = Ring.create ~shards:3 () in
  List.iter
    (fun v ->
      Format.printf "owner of %s -> shard %d@."
        (Paradb_query.Fact_format.value_to_syntax v)
        (Ring.owner_of_value ring v))
    [ Value.Int 1; Value.Int 2; Value.Str "ada" ];

  (* 2. Three stock servers (ephemeral ports), one coordinator over
     them.  --replicas 2 mirrors each slice on the next shard around
     the ring. *)
  let shards =
    Array.init 3 (fun _ ->
        Server.start ~port:0 ~workers:1 ~cache_capacity:64 ())
  in
  let addrs =
    Array.to_list (Array.map (fun s -> ("127.0.0.1", Server.port s)) shards)
  in
  let coord =
    Coordinator.create
      { (Coordinator.default_config addrs) with replicas = 2 }
  in
  let front = Coordinator.serve coord ~port:0 ~workers:1 in
  let finally () =
    (try Server.stop front with _ -> ());
    Array.iter (fun s -> try Server.stop s with _ -> ()) shards
  in
  Fun.protect ~finally @@ fun () ->
  Client.with_connection ~timeout:10.0 ~port:(Server.port front)
  @@ fun c ->
  (* 3. LOAD parses once at the coordinator, hash-partitions every
     relation on its first column, and ships each slice (and its
     replica) as one BULK frame. *)
  let facts = Filename.temp_file "paradb_example_cluster" ".facts" in
  Out_channel.with_open_text facts (fun oc ->
      output_string oc
        "e(1, 2). e(1, 3). e(2, 3). e(3, 1). e(3, 4). e(4, 1).\n");
  Fun.protect ~finally:(fun () -> try Sys.remove facts with _ -> ())
  @@ fun () ->
  let summary, _ = ok (Client.request_line c ("LOAD g " ^ facts)) in
  Format.printf "LOAD: %s@." summary;

  (* 4. A co-partitioned star (every atom starts with X) scatters in
     one round; a 2-hop join needs the reducer exchange. *)
  let show label line =
    let summary, payload = ok (Client.request_line c line) in
    (* the ns= field is wall time; strip it so the output is stable *)
    let stable =
      let marker = " ns=" in
      let n = String.length summary and m = String.length marker in
      let rec find i =
        if i + m > n then summary
        else if String.sub summary i m = marker then String.sub summary 0 i
        else find (i + 1)
      in
      find 0
    in
    Format.printf "%s: %s@." label stable;
    List.iter (fun row -> Format.printf "  %s@." row) payload
  in
  show "scatter" "EVAL g auto ans(X, Y, Z) :- e(X, Y), e(X, Z), Y < Z.";
  show "exchange" "EVAL g auto ans(X, Z) :- e(X, Y), e(Y, Z), X != Z.";

  (* 5. Kill a shard.  With replicas=2 every slice is still reachable:
     the failed sub-request walks to the replica rank and the query
     answers identically (STATS counts the failover). *)
  Server.stop shards.(1);
  show "after killing shard 1"
    "EVAL g auto ans(X, Z) :- e(X, Y), e(Y, Z), X != Z.";
  let _, stats = ok (Client.request_line c "STATS") in
  List.iter
    (fun line ->
      if
        List.exists
          (fun p ->
            String.length line >= String.length p
            && String.sub line 0 (String.length p) = p)
          [ "cluster.shards"; "telemetry.cluster.rounds";
            "telemetry.cluster.failover" ]
      then Format.printf "  %s@." line)
    stats
