#!/usr/bin/env bash
# Chaos smoke: run a fault-injected, tightly-deadlined server against
# hostile clients and assert that it stays up, keeps answering, and
# accounts for every abuse in its telemetry.
#
#   scripts/chaos.sh [path-to-paradb-binary]
#
# Artifacts: chaos-serve.log (server stderr/stdout), chaos-trace.jsonl
# (span trace covering the whole storm).
set -eux

PARADB=${1:-./_build/default/bin/paradb.exe}

# Inject faults into the server's own I/O paths: truncated reads,
# delayed writes, surprise disconnects.  The seed pins the storm.
export PARADB_FAULTS="short_read:0.1,write_delay:0.05,disconnect:0.05,seed:42"

$PARADB serve --port 0 --deadline-ms 200 --max-line 4096 --max-rows 1000 \
  --idle-timeout 30 --grace 1 --trace chaos-trace.jsonl \
  > chaos-serve.log 2>&1 &
SERVE_PID=$!
trap 'kill $SERVE_PID 2>/dev/null || true' EXIT
for i in $(seq 1 50); do grep -q listening chaos-serve.log && break; sleep 0.2; done
PORT=$(sed -n 's/.*127\.0\.0\.1:\([0-9]*\).*/\1/p' chaos-serve.log)

# A database big enough that the 4-cycle join below cannot finish
# inside a 200ms deadline on the naive engine.
$PARADB generate edges -n 1000 --seed 7 > chaos.facts
BLOWER='EVAL g naive ans(W, X, Y, Z) :- e(W, X), e(X, Y), e(Y, Z), e(Z, W).'

# With disconnect faults active any single request may be dropped, so
# every well-behaved request retries.
req() { $PARADB client --port "$PORT" --timeout 10 --retries 5 -c "$1"; }
req "LOAD g chaos.facts"

# The storm: oversized lines, raw garbage with half-closed sockets, and
# deadline blowers, interleaved.  Individual commands are allowed to
# fail (that is the point); the server must survive all of them.
for i in $(seq 1 10); do
  req "EVAL g naive $(printf 'x%.0s' $(seq 1 8000))" || true
  { printf 'EVAL g naive garbage(((\r\n\000\001\002\n'; } \
    > "/dev/tcp/127.0.0.1/$PORT" || true
  req "$BLOWER" || true
done

# Deterministically observe a deadline rejection (retry past injected
# disconnects, which can eat the response).
DEADLINE_SEEN=0
for i in $(seq 1 10); do
  if req "$BLOWER" 2>&1 | grep -q 'deadline-exceeded'; then
    DEADLINE_SEEN=1
    break
  fi
done
test "$DEADLINE_SEEN" -eq 1

# Oversized results carry the truncation marker instead of flooding
# the wire (the 2-hop join is far past --max-rows 1000).
for i in $(seq 1 5); do
  req 'EVAL g yannakakis ans(X, Y) :- e(X, Z), e(Z, Y).' \
    > chaos-truncated.out && break
done
grep -q 'truncated=true' chaos-truncated.out
test "$(tail -n +2 chaos-truncated.out | wc -l)" -eq 1000

# The pool is still alive and bit-identical on a well-behaved query
# under the row cap: same answer as the one-shot evaluator.
req 'EVAL g yannakakis ans(Y) :- e(1, Z), e(Z, Y).' \
  | tail -n +2 | sort > chaos-server.out
$PARADB eval --db chaos.facts --engine yannakakis \
  'ans(Y) :- e(1, Z), e(Z, Y).' \
  | sed -n 's/^  \((.*)\)$/\1/p' | sort > chaos-oneshot.out
diff chaos-server.out chaos-oneshot.out

# Telemetry accounted for the storm: deadlines fired, faults injected,
# and METRICS still answers with quantiles.
$PARADB stats --port "$PORT" | tee chaos-stats.out
DEADLINES=$(awk '$1 == "telemetry.server.deadline_exceeded" { print $2 }' chaos-stats.out)
test "${DEADLINES:-0}" -ge 1
FAULTS=$(awk '$1 == "telemetry.server.faults.injected" { print $2 }' chaos-stats.out)
test "${FAULTS:-0}" -ge 1
$PARADB stats --port "$PORT" --json | grep -q '"p99"'

# Graceful shutdown on SIGTERM: drain and exit within the grace window.
kill -TERM $SERVE_PID
wait $SERVE_PID || true
test -s chaos-trace.jsonl
grep -q '"name":"server.eval"' chaos-trace.jsonl

# ── Cluster storm ────────────────────────────────────────────────────
# A coordinator over two clean shards, with shard-loss and straggler
# faults injected into the coordinator's own shard calls: every dropped
# pooled connection must redial (or fail over — replicas=2 keeps every
# slice reachable), every answer must stay bit-identical to the
# one-shot evaluator, and a real shard death must be absorbed too.
unset PARADB_FAULTS
$PARADB serve --port 0 > chaos-cshard0.log 2>&1 &
CS0=$!
$PARADB serve --port 0 > chaos-cshard1.log 2>&1 &
CS1=$!
trap 'kill $SERVE_PID $CS0 $CS1 $COORD 2>/dev/null || true' EXIT
for f in chaos-cshard0.log chaos-cshard1.log; do
  for i in $(seq 1 50); do grep -q listening "$f" && break; sleep 0.2; done
done
P0=$(sed -n 's/.*127\.0\.0\.1:\([0-9]*\).*/\1/p' chaos-cshard0.log)
P1=$(sed -n 's/.*127\.0\.0\.1:\([0-9]*\).*/\1/p' chaos-cshard1.log)
mkdir -p chaos-hints
PARADB_FAULTS="shard_loss:0.2,straggler_delay:0.2,seed:42" \
  $PARADB coordinator --port 0 --shards "$P0,$P1" --replicas 2 \
  --shard-retries 5 --hints-dir chaos-hints > chaos-coord.log 2>&1 &
COORD=$!
for i in $(seq 1 50); do grep -q coordinating chaos-coord.log && break; sleep 0.2; done
CPORT=$(sed -n 's/.*on 127\.0\.0\.1:\([0-9]*\).*/\1/p' chaos-coord.log)
creq() { $PARADB client --port "$CPORT" --timeout 10 --retries 5 -c "$1"; }
creq "LOAD g chaos.facts"
CQ='ans(Y) :- e(1, Z), e(Z, Y).'
$PARADB eval --db chaos.facts "$CQ" \
  | sed -n 's/^  \((.*)\)$/\1/p' | sort > chaos-cluster-oneshot.out
for i in $(seq 1 15); do
  creq "EVAL g auto $CQ" | tail -n +2 | sort > chaos-cluster.out
  diff chaos-cluster.out chaos-cluster-oneshot.out
done
# kill one shard outright: replicas keep answering, bit-identical
kill $CS1; wait $CS1 || true
creq "EVAL g auto $CQ" | tail -n +2 | sort > chaos-cluster.out
diff chaos-cluster.out chaos-cluster-oneshot.out
# writes keep flowing while the shard is down: acked ones count the
# replica miss and journal a hint for handoff
creq "FACT g e(9001, 1)." || true
creq "FACT g e(9002, 1)." || true
# repair storm: revive the shard with empty state (full amnesia), let
# REPAIR replay the hints and re-ship the divergent slices, then demand
# bit-identical replicas and bit-identical answers
$PARADB serve --port "$P1" > chaos-cshard1b.log 2>&1 &
CS1=$!
for i in $(seq 1 50); do grep -q listening chaos-cshard1b.log && break; sleep 0.2; done
# injected shard_loss can fault a repair sub-request, so retry the
# pass; it must converge within a few attempts
CONVERGED=0
for i in $(seq 1 10); do
  creq "REPAIR g" | tee chaos-repair.out || true
  grep -q 'repaired g' chaos-repair.out || continue
  if creq "DIGEST g" | tee chaos-digest.out | grep -q 'divergent=0'; then
    CONVERGED=1
    break
  fi
done
test "$CONVERGED" -eq 1
creq "EVAL g auto $CQ" | tail -n +2 | sort > chaos-cluster.out
diff chaos-cluster.out chaos-cluster-oneshot.out
# the storm is accounted for: rounds ran, faults fired, the dead shard
# registered as a failover, and the per-shard histograms answer
$PARADB stats --port "$CPORT" | tee chaos-cluster-stats.out
ROUNDS=$(awk '$1 == "telemetry.cluster.rounds" { print $2 }' chaos-cluster-stats.out)
test "${ROUNDS:-0}" -ge 16
CFAULTS=$(awk '$1 == "telemetry.server.faults.injected" { print $2 }' chaos-cluster-stats.out)
test "${CFAULTS:-0}" -ge 1
FAILOVERS=$(awk '$1 == "telemetry.cluster.failover" { print $2 }' chaos-cluster-stats.out)
test "${FAILOVERS:-0}" -ge 1
$PARADB stats --port "$CPORT" --json | grep -q '"cluster.round.ns"'
kill -TERM $COORD; wait $COORD || true
kill $CS0; wait $CS0 || true

echo "chaos smoke passed"
