#!/usr/bin/env bash
# Mutation smoke: arm each seeded single-point bug via PARADB_MUTATE and
# assert the differential oracle catches it within the PR-gate case
# budget, with a shrunk counterexample small enough to read at a glance
# (<= 4 atoms, <= 10 tuples).  A clean unmutated run must stay green.
#
#   scripts/mutation_smoke.sh [path-to-paradb-binary]
#
# Exit codes: 0 all mutants caught and the clean run is clean; 1 a
# mutant survived, a counterexample was too large, or the clean run
# diverged.
set -eu

PARADB=${1:-./_build/default/bin/paradb.exe}
SEED=${SEED:-1}
CASES=${CASES:-500}
MAX_ATOMS=4
MAX_TUPLES=10

fail() { echo "mutation_smoke: $*" >&2; exit 1; }

# --- clean run: no divergences without a mutant armed ------------------
unset PARADB_MUTATE || true
out=$("$PARADB" fuzz --seed "$SEED" --cases "$CASES") || fail "clean run diverged (exit $?): $out"
echo "$out" | grep -q 'divergences=0' || fail "clean run reported divergences: $out"
echo "mutation_smoke: clean run ok ($CASES cases)"

# --- each mutant must be caught, with a small counterexample -----------
for mutant in semijoin_off_by_one drop_neq color_count probe_key_swap \
              sum_instead_of_max count_dedup_drop; do
  set +e
  out=$(PARADB_MUTATE=$mutant "$PARADB" fuzz --seed "$SEED" --cases "$CASES")
  status=$?
  set -e
  [ "$status" -eq 2 ] || fail "mutant $mutant survived $CASES cases (exit $status)"

  # first divergence line: "divergence: engine=... atoms=N tuples=M"
  line=$(echo "$out" | grep -m1 '^divergence:') || fail "mutant $mutant: exit 2 but no divergence line"
  atoms=$(echo "$line" | sed -n 's/.*atoms=\([0-9]*\).*/\1/p')
  tuples=$(echo "$line" | sed -n 's/.*tuples=\([0-9]*\).*/\1/p')
  [ -n "$atoms" ] && [ -n "$tuples" ] || fail "mutant $mutant: cannot parse: $line"
  [ "$atoms" -le "$MAX_ATOMS" ] || fail "mutant $mutant: counterexample has $atoms atoms (> $MAX_ATOMS)"
  [ "$tuples" -le "$MAX_TUPLES" ] || fail "mutant $mutant: counterexample has $tuples tuples (> $MAX_TUPLES)"
  echo "mutation_smoke: $mutant caught (atoms=$atoms tuples=$tuples)"
done

echo "mutation_smoke: all mutants caught"
