#!/usr/bin/env bash
# Crash storm: kill -9 a durable server (and a replicated cluster's
# shard) over and over, mid-write and mid-compaction, and assert the
# three durability contracts:
#
#   1. zero corrupt stores — every restart attaches the data dir
#      cleanly (crash debris is quarantined, never trusted),
#   2. no acked-then-lost rows — every fact the client saw acked under
#      --durability full is present after every restart,
#   3. replicas converge — after hint replay and REPAIR the replica
#      digests are bit-identical (DIGEST reports divergent=0).
#
#   scripts/crash_storm.sh [path-to-paradb-binary] [single-cycles] [cluster-cycles]
#
# Artifacts: crash-*.log, crash-store/ (the surviving data dir),
# crash-acked.facts (the oracle of acknowledged writes).
set -eu

PARADB=${1:-./_build/default/bin/paradb.exe}
CYCLES=${2:-10}
CLUSTER_CYCLES=${3:-4}

WORK=$(pwd)
STORE="$WORK/crash-store"
ACKED="$WORK/crash-acked.facts"
HINTS="$WORK/crash-hints"
rm -rf "$STORE" "$HINTS" crash-*.log crash-acked*.facts crash-batch*.facts
mkdir -p "$STORE"
: > "$ACKED"

say() { echo "crash_storm: $*"; }

wait_for() { # wait_for <pattern> <logfile>
  for _ in $(seq 1 100); do
    grep -q "$1" "$2" 2>/dev/null && return 0
    sleep 0.1
  done
  say "timeout waiting for '$1' in $2"
  cat "$2" || true
  return 1
}

port_of() { sed -n 's/.*127\.0\.0\.1:\([0-9]*\).*/\1/p' "$1" | head -n 1; }

# Turn GATHER fact-line payload into sorted canonical rows.
gather_sorted() { # gather_sorted <port> <db> <outfile>
  "$PARADB" client --port "$1" --timeout 10 --retries 5 \
    -c "GATHER $2 e(X, Y) :- e(X, Y)." | tail -n +2 | sort -u > "$3"
}

# Assert every acked fact is present (acked ⊆ store).  A fact that was
# in flight at the kill may legitimately survive un-acked, so this is a
# subset check, not equality.
assert_no_lost() { # assert_no_lost <gathered-file> <label>
  sort -u "$ACKED" > crash-acked-sorted.facts
  if ! comm -23 crash-acked-sorted.facts "$1" | head -n 5 | grep -q .; then
    return 0
  fi
  say "ACKED ROWS LOST ($2):"
  comm -23 crash-acked-sorted.facts "$1" | head -n 20
  return 1
}

# ── Phase 1: single durable server, kill -9 mid-write/mid-compaction ──
say "phase 1: $CYCLES kill -9 cycles against serve --data-dir"
I=0
for cycle in $(seq 1 "$CYCLES"); do
  : > crash-serve.log
  # Aggressive background compaction so kills land mid-fold too.
  "$PARADB" serve --port 0 --data-dir "$STORE" --durability full \
    --compact-after 4 --compact-interval 0.2 --grace 1 \
    > crash-serve.log 2>&1 &
  SERVE_PID=$!
  trap 'kill -9 $SERVE_PID 2>/dev/null || true' EXIT
  wait_for listening crash-serve.log
  PORT=$(port_of crash-serve.log)

  # Contract 1+2 from the previous cycle: clean attach, no acked loss.
  if [ "$cycle" -gt 1 ]; then
    if grep -q 'error: storage' crash-serve.log; then
      say "CORRUPT STORE after kill $((cycle - 1))"; cat crash-serve.log; exit 1
    fi
    wait_for "attached g" crash-serve.log
    gather_sorted "$PORT" g crash-survivors.facts
    assert_no_lost crash-survivors.facts "cycle $cycle"
  fi

  # Writer: acked facts go into the oracle, stop at the first failure
  # (the kill).  Runs in the background so the kill lands mid-write.
  (
    j=$I
    while [ $j -lt $((I + 400)) ]; do
      if "$PARADB" client --port "$PORT" --timeout 5 --retries 0 \
          -c "FACT g e($j, $((j + 1)))." > /dev/null 2>&1; then
        echo "e($j, $((j + 1)))." >> "$ACKED"
      else
        break
      fi
      j=$((j + 1))
    done
  ) &
  WRITER_PID=$!
  sleep "0.$((RANDOM % 5 + 2))"
  kill -9 "$SERVE_PID" 2>/dev/null || true
  wait "$SERVE_PID" 2>/dev/null || true
  wait "$WRITER_PID" 2>/dev/null || true
  I=$((I + 400))
done

# Final verification pass over the much-killed store.
: > crash-serve.log
"$PARADB" serve --port 0 --data-dir "$STORE" --durability full --grace 1 \
  > crash-serve.log 2>&1 &
SERVE_PID=$!
trap 'kill -9 $SERVE_PID 2>/dev/null || true' EXIT
wait_for listening crash-serve.log
if grep -q 'error: storage' crash-serve.log; then
  say "CORRUPT STORE at final attach"; cat crash-serve.log; exit 1
fi
wait_for "attached g" crash-serve.log
PORT=$(port_of crash-serve.log)
gather_sorted "$PORT" g crash-survivors.facts
assert_no_lost crash-survivors.facts "final"
ACKED_N=$(sort -u "$ACKED" | wc -l)
GOT_N=$(wc -l < crash-survivors.facts)
say "phase 1 ok: $ACKED_N acked rows all survived ($GOT_N on disk)"
test "$ACKED_N" -ge 1
kill -TERM "$SERVE_PID"; wait "$SERVE_PID" 2>/dev/null || true

# ── Phase 2: 2-shard coordinator, kill -9 a shard, hints + REPAIR ────
say "phase 2: $CLUSTER_CYCLES shard kill -9 cycles with replicas=2 + hints"
ACKED="$WORK/crash-acked-cluster.facts"
: > "$ACKED"
mkdir -p "$HINTS"

start_shard() { # start_shard <logfile> [port]
  : > "$1"
  "$PARADB" serve --port "${2:-0}" --grace 1 > "$1" 2>&1 &
  echo $!
}

S0_PID=$(start_shard crash-shard0.log)
S1_PID=$(start_shard crash-shard1.log)
trap 'kill -9 $S0_PID $S1_PID $COORD_PID 2>/dev/null || true' EXIT
wait_for listening crash-shard0.log
wait_for listening crash-shard1.log
P0=$(port_of crash-shard0.log)
P1=$(port_of crash-shard1.log)

"$PARADB" coordinator --port 0 --shards "$P0,$P1" --replicas 2 \
  --hints-dir "$HINTS" --shard-retries 2 --grace 1 \
  > crash-coord.log 2>&1 &
COORD_PID=$!
wait_for coordinating crash-coord.log
CPORT=$(port_of crash-coord.log)
creq() { "$PARADB" client --port "$CPORT" --timeout 10 --retries 5 -c "$1"; }

# Seed db g, then storm: each cycle kills shard 1 mid-write, keeps
# writing through the coordinator (replica misses are journaled),
# revives the shard with empty state (full amnesia — worse than any
# real crash), replays hints, REPAIRs, and demands convergence.
#
# Oracle discipline: db g grows only by FACTs, so its acked set is
# monotone.  Cluster LOAD *replaces* an entry (same semantics as a
# single in-memory server), so each cycle's mid-kill LOAD targets a
# fresh db name and carries its own oracle.
seq 1 40 | awk '{ printf "e(%d, %d).\n", $1, $1 + 1 }' > crash-batch0.facts
creq "LOAD g $WORK/crash-batch0.facts" > /dev/null
cat crash-batch0.facts >> "$ACKED"
K=1000
for cycle in $(seq 1 "$CLUSTER_CYCLES"); do
  # Mid-LOAD kill: fire a batch load into a fresh db and kill the
  # shard while it ships.  An un-acked load promises nothing; an acked
  # one must survive in full.
  seq $K $((K + 300)) | awk '{ printf "e(%d, %d).\n", $1, $1 + 1 }' \
    > crash-batch.facts
  rm -f crash-batch.acked
  ( creq "LOAD b$cycle $WORK/crash-batch.facts" > /dev/null 2>&1 \
      && touch crash-batch.acked ) &
  LOADER_PID=$!
  kill -9 "$S1_PID" 2>/dev/null || true
  wait "$S1_PID" 2>/dev/null || true
  wait "$LOADER_PID" 2>/dev/null || true
  K=$((K + 400))

  # Keep writing with the shard down: primaries on shard 0 must ack
  # (their replica misses are hinted), primaries on shard 1 must fail
  # cleanly — either way nothing hangs and nothing acked is lost.
  for j in $(seq $K $((K + 20))); do
    if creq "FACT g e($j, $((j + 1)))." > /dev/null 2>&1; then
      echo "e($j, $((j + 1)))." >> "$ACKED"
    fi
  done
  K=$((K + 40))

  # Revive the shard on its old port with empty state, then repair.
  S1_PID=$(start_shard crash-shard1.log "$P1")
  wait_for listening crash-shard1.log
  creq "REPAIR g" > crash-repair.out
  cat crash-repair.out
  grep -q 'repaired g' crash-repair.out
  creq "DIGEST g" > crash-digest.out
  cat crash-digest.out
  grep -q 'divergent=0' crash-digest.out

  # No acked-then-lost rows in g through the whole cycle.
  creq "GATHER g e(X, Y) :- e(X, Y)." | tail -n +2 | sort -u \
    > crash-cluster-survivors.facts
  assert_no_lost crash-cluster-survivors.facts "cluster cycle $cycle"

  # An acked batch load must be complete and replica-convergent too.
  if [ -e crash-batch.acked ]; then
    creq "REPAIR b$cycle" > /dev/null
    creq "DIGEST b$cycle" | grep -q 'divergent=0'
    creq "GATHER b$cycle e(X, Y) :- e(X, Y)." | tail -n +2 | sort -u \
      > crash-batch-survivors.facts
    if ! diff <(sort -u crash-batch.facts) crash-batch-survivors.facts \
        > /dev/null; then
      say "ACKED LOAD b$cycle incomplete after repair"
      diff <(sort -u crash-batch.facts) crash-batch-survivors.facts | head -10
      exit 1
    fi
  fi
done

HINTS_REPLAYED=$("$PARADB" stats --port "$CPORT" \
  | awk '$1 == "telemetry.cluster.hints.replayed" { print $2 }')
REPAIR_RUNS=$("$PARADB" stats --port "$CPORT" \
  | awk '$1 == "telemetry.cluster.repair.runs" { print $2 }')
say "phase 2 ok: hints replayed=${HINTS_REPLAYED:-0} repair runs=${REPAIR_RUNS:-0}"
test "${REPAIR_RUNS:-0}" -ge "$CLUSTER_CYCLES"

kill -TERM "$COORD_PID" 2>/dev/null || true
kill "$S0_PID" "$S1_PID" 2>/dev/null || true
wait 2>/dev/null || true
echo "crash storm passed"
