(* The paradb serve subsystem: protocol codec round-trips, plan-cache LRU
   discipline, session dispatch, and — the acceptance criterion — eight
   parallel client connections receiving answer sets bit-identical to
   single-shot evaluation. *)

module Protocol = Paradb_server.Protocol
module Plan = Paradb_server.Plan
module Plan_cache = Paradb_server.Plan_cache
module Catalog = Paradb_server.Catalog
module Session = Paradb_server.Session
module Server = Paradb_server.Server
module Client = Paradb_server.Client
module Database = Paradb_relational.Database
module Value = Paradb_relational.Value
open Paradb_query

(* ------------------------------------------------------------------ *)
(* Protocol *)

let test_parse_request () =
  let ok line expected =
    match Protocol.parse_request line with
    | Ok r -> Alcotest.(check bool) line true (r = expected)
    | Error e -> Alcotest.failf "%s: unexpected error %s" line e
  in
  ok "LOAD g /tmp/x.facts" (Protocol.Load { db = "g"; path = "/tmp/x.facts" });
  ok "  load  g   /tmp/x.facts "
    (Protocol.Load { db = "g"; path = "/tmp/x.facts" });
  ok "FACT g edge(1, 2)." (Protocol.Fact { db = "g"; fact = "edge(1, 2)." });
  ok "EVAL g auto ans(X) :- e(X, Y)."
    (Protocol.Eval { db = "g"; engine = "auto"; query = "ans(X) :- e(X, Y)." });
  ok "CHECK ans(X) :- e(X, X)." (Protocol.Check "ans(X) :- e(X, X).");
  ok "DIGEST g" (Protocol.Digest "g");
  ok "repair g" (Protocol.Repair "g");
  ok "stats" Protocol.Stats;
  ok "METRICS" Protocol.Metrics;
  ok "Quit" Protocol.Quit;
  let err line =
    match Protocol.parse_request line with
    | Ok _ -> Alcotest.failf "%s: expected an error" line
    | Error _ -> ()
  in
  err "";
  err "LOAD";
  err "LOAD g";
  err "EVAL g auto";
  err "CHECK";
  err "DIGEST";
  err "REPAIR";
  err "FROB g"

let test_request_line_roundtrip () =
  List.iter
    (fun r ->
      match Protocol.parse_request (Protocol.request_to_line r) with
      | Ok r' ->
          Alcotest.(check bool) (Protocol.request_to_line r) true (r = r')
      | Error e -> Alcotest.fail e)
    [
      Protocol.Load { db = "g"; path = "examples/graph.facts" };
      Protocol.Fact { db = "g"; fact = "edge(1, 2)." };
      Protocol.Eval { db = "g"; engine = "fpt"; query = "ans(X) :- e(X, Y), X != Y." };
      Protocol.Check "ans() :- e(X, X).";
      Protocol.Digest "g";
      Protocol.Repair "g";
      Protocol.Stats;
      Protocol.Metrics;
      Protocol.Quit;
    ]

let test_response_roundtrip () =
  let roundtrip r =
    let path = Filename.temp_file "paradb_proto" ".txt" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Out_channel.with_open_text path (fun oc -> Protocol.write_response oc r);
        In_channel.with_open_text path (fun ic ->
            match Protocol.read_response ic with
            | Some r' -> Alcotest.(check bool) "response" true (r = r')
            | None -> Alcotest.fail "eof"))
  in
  roundtrip (Protocol.Ok_ { summary = "stats"; payload = [ "a 1"; "b 2" ] });
  roundtrip (Protocol.Ok_ { summary = ""; payload = [] });
  roundtrip (Protocol.Err "no database g");
  (* payload lines that *look* like framing must survive (count wins) *)
  roundtrip (Protocol.Ok_ { summary = "tricky"; payload = [ "OK 0 fake"; "ERR fake" ] })

(* A hostile or corrupted peer must never park [read_response] in an
   unbounded read loop or let it mis-frame: negative counts, absurd
   counts, and mid-frame disconnects all raise [Failure] with a message
   naming the problem. *)
let read_raw_response text =
  let path = Test_support.write_temp_facts ~prefix:"paradb_proto" text in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () -> In_channel.with_open_text path Protocol.read_response)

let test_response_framing_abuse () =
  let fails needle text =
    match read_raw_response text with
    | exception Failure msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%S names %S" text needle)
          true
          (Test_support.contains msg needle)
    | _ -> Alcotest.failf "accepted %S" text
  in
  fails "negative" "OK -1 summary\n";
  fails "oversized" (Printf.sprintf "OK %d summary\n" (Protocol.max_payload_lines + 1));
  (* mid-frame disconnect: fewer payload lines than the count promises *)
  fails "truncated" "OK 3 summary\nrow 1\nrow 2\n";
  fails "malformed" "OK not_a_number summary\n";
  fails "malformed" "WAT 0\n";
  (* the ceiling itself is inclusive: a count of exactly
     [max_payload_lines] is only rejected for being oversized, not
     accepted — it then fails as truncated since we supply no payload *)
  fails "truncated" (Printf.sprintf "OK %d summary\n" 1);
  (* and EOF before any framing line is a clean [None] *)
  Alcotest.(check bool) "eof is None" true (read_raw_response "" = None)

(* ------------------------------------------------------------------ *)
(* Plan cache *)

let plan_for text =
  Plan.analyze Plan.Auto (Parser.parse_cq text)

let test_cache_key_invariance () =
  let q1 = Parser.parse_cq "ans(X, Y) :- e(X, Z), e(Z, Y), X != Y." in
  let q2 = Parser.parse_cq "ans(A, B) :- e(A, C),   e(C, B),  A != B." in
  let q3 = Parser.parse_cq "ans(X, Y) :- e(Y, Z), e(Z, X), X != Y." in
  Alcotest.(check string) "alpha + whitespace invariant"
    (Plan.cache_key Plan.Auto q1) (Plan.cache_key Plan.Auto q2);
  Alcotest.(check bool) "different queries differ" false
    (Plan.cache_key Plan.Auto q1 = Plan.cache_key Plan.Auto q3);
  Alcotest.(check bool) "engine in the key" false
    (Plan.cache_key Plan.Auto q1 = Plan.cache_key Plan.Naive q1)

let test_lru_discipline () =
  let cache = Plan_cache.create ~capacity:2 () in
  let get text =
    let q = Parser.parse_cq text in
    let key = Plan.cache_key Plan.Auto q in
    snd (Plan_cache.find_or_build cache ~key (fun () -> plan_for text))
  in
  let a = "ans(X) :- r1(X)." in
  let b = "ans(X) :- r2(X, Y)." in
  let c = "ans(X) :- r3(X, Y, Z)." in
  Alcotest.(check bool) "a cold" true (get a = `Miss);
  Alcotest.(check bool) "b cold" true (get b = `Miss);
  Alcotest.(check bool) "a warm" true (get a = `Hit);
  (* recency is now [a; b]: inserting c evicts b *)
  Alcotest.(check bool) "c cold" true (get c = `Miss);
  Alcotest.(check bool) "b evicted" true (get b = `Miss);
  Alcotest.(check bool) "a survived, then evicted by b" true (get a = `Miss);
  let counters = Plan_cache.counters cache in
  Alcotest.(check int) "hits" 1 counters.Plan_cache.hits;
  Alcotest.(check int) "misses" 5 counters.Plan_cache.misses;
  Alcotest.(check int) "evictions" 3 counters.Plan_cache.evictions;
  Alcotest.(check int) "size bound" 2 counters.Plan_cache.size;
  Alcotest.(check int) "lru order" 2 (List.length (Plan_cache.keys cache))

let test_plan_dispatch () =
  (* auto always lowers to the compiled push-based pipeline; the
     interpreter engines remain reachable by explicit request *)
  let engine text = (plan_for text).Plan.engine in
  Alcotest.(check bool) "acyclic, no constraints -> compiled" true
    (engine "ans(X) :- e(X, Y)." = Plan.E_compiled);
  Alcotest.(check bool) "acyclic + != -> compiled" true
    (engine "ans(X) :- e(X, Y), X != Y." = Plan.E_compiled);
  Alcotest.(check bool) "acyclic + < -> compiled" true
    (engine "ans(X) :- e(X, Y), X < Y." = Plan.E_compiled);
  Alcotest.(check bool) "cyclic -> compiled" true
    (engine "ans(X) :- e(X, Y), e(Y, Z), e(Z, X)." = Plan.E_compiled);
  let explicit kind text =
    (Plan.analyze kind (Parser.parse_cq text)).Plan.engine
  in
  Alcotest.(check bool) "explicit naive honoured" true
    (explicit Plan.Naive "ans(X) :- e(X, Y)." = Plan.E_naive);
  Alcotest.(check bool) "explicit yannakakis honoured" true
    (explicit Plan.Yannakakis "ans(X) :- e(X, Y)." = Plan.E_yannakakis);
  Alcotest.(check bool) "explicit fpt honoured" true
    (explicit Plan.Fpt "ans(X) :- e(X, Y), X != Y." = Plan.E_fpt);
  let p =
    Plan.analyze Plan.Fpt
      (Parser.parse_cq "ans(X) :- e(X, Y), e(Y, Z), X != Z, X != Y.")
  in
  Alcotest.(check bool) "fpt partition k > 0" true (p.Plan.neq_k > 0);
  Alcotest.(check bool) "join tree cached" true (p.Plan.tree <> None);
  (* every plan carries the planner classification *)
  let cls text = (plan_for text).Plan.pplan.Paradb_planner.Planner.classification in
  Alcotest.(check bool) "chain classified acyclic" true
    (cls "ans(X) :- e(X, Y), e(Y, Z)." = Paradb_planner.Planner.Acyclic);
  Alcotest.(check bool) "triangle classified low-width" true
    (cls "ans(X) :- e(X, Y), e(Y, Z), e(Z, X)."
    = Paradb_planner.Planner.Low_width 2)

(* ------------------------------------------------------------------ *)
(* Session dispatch (no sockets) *)

let write_temp_facts text = Test_support.write_temp_facts text

let summary_of = function
  | Protocol.Ok_ { summary; _ } -> summary
  | Protocol.Err e -> Alcotest.failf "unexpected ERR %s" e

let payload_of = function
  | Protocol.Ok_ { payload; _ } -> payload
  | Protocol.Err e -> Alcotest.failf "unexpected ERR %s" e

let contains = Test_support.contains

let test_session_dispatch () =
  let shared = Session.make_shared ~cache_capacity:8 () in
  let session = Session.create shared in
  let run line = Option.get (fst (Session.handle_line session line)) in
  let path = write_temp_facts "e(1, 2). e(2, 3). e(3, 1). e(2, 2).\n" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  (* LOAD *)
  Alcotest.(check bool) "load ok" true
    (contains (summary_of (run (Printf.sprintf "LOAD g %s" path))) "tuples=4");
  (* EVAL, all engines agree on an acyclic != query *)
  let answers engine =
    payload_of
      (run (Printf.sprintf "EVAL g %s ans(X, Y) :- e(X, Y), X != Y." engine))
  in
  let reference = answers "naive" in
  Alcotest.(check (list string)) "fpt = naive" reference (answers "fpt");
  Alcotest.(check int) "three rows" 3 (List.length reference);
  (* the same query under renamed variables is a cache hit *)
  let renamed = run "EVAL g fpt ans(A, B) :- e(A, B), A != B." in
  Alcotest.(check bool) "cache hit" true
    (contains (summary_of renamed) "cache=hit");
  Alcotest.(check (list string)) "hit payload identical" (answers "fpt")
    (payload_of renamed);
  (* FACT bumps the catalog generation: cached plans for the old
     snapshot are stranded and the next EVAL rebuilds against the new
     data (a compiled closure must never see a snapshot it was not
     compiled for) *)
  Alcotest.(check bool) "fact ok" true
    (contains (summary_of (run "FACT g e(9, 1).")) "tuples=5");
  Alcotest.(check int) "new row visible" 4 (List.length (answers "naive"));
  (* FACT onto a fresh entry creates it *)
  Alcotest.(check bool) "fact creates db" true
    (contains (summary_of (run "FACT h r(1).")) "h tuples=1");
  (* CHECK *)
  let check_payload = payload_of (run "CHECK ans(X) :- e(X, Y), X != Y.") in
  Alcotest.(check bool) "check reports engine" true
    (List.exists
       (fun l -> contains l "recommended_engine: compiled")
       check_payload);
  Alcotest.(check bool) "check reports class" true
    (List.exists (fun l -> contains l "class: acyclic") check_payload);
  (* STATS *)
  let field_of stats name =
    match
      List.find_map
        (fun l ->
          match String.split_on_char ' ' l with
          | [ k; v ] when k = name -> int_of_string_opt v
          | _ -> None)
        stats
    with
    | Some v -> v
    | None -> Alcotest.failf "STATS lacks %s" name
  in
  let field name = field_of (payload_of (run "STATS")) name in
  (* hits: renamed query + repeated fpt eval before the FACT; misses:
     naive cold, fpt cold, and naive again after FACT bumped the
     generation (generation-scoped keys strand the old entry) *)
  Alcotest.(check int) "cache hits counted" 2 (field "server.cache_hits");
  Alcotest.(check int) "cache misses counted" 3 (field "server.cache_misses");
  Alcotest.(check int) "catalog sizes" 5 (field "db.g");
  (* METRICS: a single JSON line carrying quantile fields, and STATS
     carries the same snapshot as telemetry.* table lines *)
  let metrics = payload_of (run "METRICS") in
  Alcotest.(check int) "metrics payload is one line" 1 (List.length metrics);
  Alcotest.(check bool) "metrics reports p99" true
    (contains (List.hd metrics) "\"p99\"");
  Alcotest.(check bool) "metrics reports per-verb latency" true
    (contains (List.hd metrics) "server.verb.eval.ns");
  Alcotest.(check bool) "stats carries telemetry lines" true
    (List.exists
       (fun l -> contains l "telemetry.server.plan_cache.hits")
       (payload_of (run "STATS")));
  (* errors *)
  let expect_err line =
    match run line with
    | Protocol.Err _ -> ()
    | Protocol.Ok_ _ -> Alcotest.failf "%s: expected ERR" line
  in
  expect_err "EVAL nosuch auto ans(X) :- e(X, Y).";
  expect_err "EVAL g warp ans(X) :- e(X, Y).";
  expect_err "EVAL g auto ans(X) :- ";
  expect_err "EVAL g yannakakis ans(X) :- e(X, Y), e(Y, Z), e(Z, X).";
  expect_err "LOAD g /nonexistent/path.facts";
  expect_err "FACT g r(1";
  (* QUIT *)
  Alcotest.(check int) "errors counted" 6 (field "server.errors");
  Alcotest.(check int) "session mirrors server errors" 6 (field "session.errors");
  match Session.handle_line session "QUIT" with
  | _, `Quit -> ()
  | _, `Continue -> Alcotest.fail "QUIT should end the session"

(* Regression: the plan cache must never serve a compiled closure built
   against a superseded catalog snapshot.  Both mutation paths — FACT
   (append) and LOAD (replace) — bump the generation, so a warm auto
   (compiled) plan is re-prepared and the answers reflect the new data. *)
let test_compiled_cache_staleness () =
  let shared = Session.make_shared ~cache_capacity:8 () in
  let session = Session.create shared in
  let run line = Option.get (fst (Session.handle_line session line)) in
  let path1 = write_temp_facts "e(1, 2). e(2, 3).\n" in
  let path2 = write_temp_facts "e(7, 8).\n" in
  Fun.protect ~finally:(fun () ->
      Sys.remove path1;
      Sys.remove path2)
  @@ fun () ->
  (match run (Printf.sprintf "LOAD g %s" path1) with
  | Protocol.Ok_ _ -> ()
  | Protocol.Err e -> Alcotest.failf "LOAD failed: %s" e);
  let eval () = payload_of (run "EVAL g auto ans(X, Y) :- e(X, Y).") in
  Alcotest.(check int) "compiled sees the initial snapshot" 2
    (List.length (eval ()));
  (* warm the cache, then append: the second eval must not replay the
     closure compiled over the 2-tuple snapshot *)
  Alcotest.(check bool) "warm eval is a cache hit" true
    (contains (summary_of (run "EVAL g auto ans(X, Y) :- e(X, Y)."))
       "cache=hit");
  (match run "FACT g e(5, 5)." with
  | Protocol.Ok_ _ -> ()
  | Protocol.Err e -> Alcotest.failf "FACT failed: %s" e);
  Alcotest.(check int) "compiled sees the appended fact" 3
    (List.length (eval ()));
  (* full replacement via LOAD: same key text, different snapshot *)
  (match run (Printf.sprintf "LOAD g %s" path2) with
  | Protocol.Ok_ _ -> ()
  | Protocol.Err e -> Alcotest.failf "reLOAD failed: %s" e);
  let rows = eval () in
  Alcotest.(check int) "compiled sees the replacement db" 1
    (List.length rows);
  Alcotest.(check bool) "replacement rows, not stale ones" true
    (List.exists (fun r -> contains r "7") rows)

(* EXPLAIN renders the planner's physical plan without touching any
   database *)
let test_explain_verb () =
  let shared = Session.make_shared ~cache_capacity:4 () in
  let session = Session.create shared in
  let run line = Option.get (fst (Session.handle_line session line)) in
  (match run "EXPLAIN ans(X, Z) :- e(X, Y), e(Y, Z)." with
  | Protocol.Ok_ { summary; payload } ->
      Alcotest.(check bool) "summary names the class" true
        (contains summary "class=acyclic");
      let has s = List.exists (fun l -> contains l s) payload in
      Alcotest.(check bool) "payload shows classification" true
        (has "class: acyclic");
      Alcotest.(check bool) "payload shows a scan step" true (has "scan");
      Alcotest.(check bool) "payload shows a probe step" true (has "probe")
  | Protocol.Err e -> Alcotest.failf "EXPLAIN failed: %s" e);
  (match run "EXPLAIN ans(X) :- e(X, Y), e(Y, Z), e(Z, X)." with
  | Protocol.Ok_ { summary; _ } ->
      Alcotest.(check bool) "cyclic query classified" true
        (contains summary "class=low-width")
  | Protocol.Err e -> Alcotest.failf "EXPLAIN (cyclic) failed: %s" e);
  match run "EXPLAIN ans(X) :- " with
  | Protocol.Err _ -> ()
  | Protocol.Ok_ _ -> Alcotest.fail "EXPLAIN on a parse error should ERR"

(* COUNT: one bare-count payload line, multiplicity semantics (number
   of satisfying valuations, not dedup'd answers), every counting
   engine agrees, and fpt refuses with a pointed message.  COUNT and
   EVAL cache entries live in separate keyspaces, so interleaving the
   two verbs on the same query must never cross-serve a payload. *)
let test_count_verb () =
  let shared = Session.make_shared ~cache_capacity:8 () in
  let session = Session.create shared in
  let run line = Option.get (fst (Session.handle_line session line)) in
  let path = write_temp_facts "e(1, 2). e(1, 3). e(2, 3).\n" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  ignore (run (Printf.sprintf "LOAD g %s" path));
  let count engine q =
    match run (Printf.sprintf "COUNT g %s %s" engine q) with
    | Protocol.Err e -> Alcotest.failf "COUNT %s %s: ERR %s" engine q e
    | Protocol.Ok_ { summary; payload } -> (
        Alcotest.(check bool)
          ("summary carries count=: " ^ summary)
          true
          (contains summary "count=");
        match payload with
        | [ n ] -> (
            match int_of_string_opt n with
            | Some n -> n
            | None -> Alcotest.failf "payload %S is not an int" n)
        | _ -> Alcotest.failf "expected one payload line for %s" q)
  in
  (* boolean head over 3 edges: 3 valuations, but only 1 answer row *)
  let q = "q() :- e(X, Y)." in
  List.iter
    (fun engine ->
      Alcotest.(check int) ("valuations via " ^ engine) 3 (count engine q))
    [ "auto"; "naive"; "yannakakis"; "compiled" ];
  (match run ("EVAL g auto " ^ q) with
  | Protocol.Ok_ { payload; _ } ->
      Alcotest.(check int) "answer set stays dedup'd" 1 (List.length payload)
  | Protocol.Err e -> Alcotest.failf "EVAL: %s" e);
  (* interleaved warm hits keep their own caches *)
  Alcotest.(check int) "warm count unchanged" 3 (count "auto" q);
  (* empty-body ground queries count 1/0 by constraint truth *)
  Alcotest.(check int) "ground true" 1 (count "auto" "q() :- 1 < 2.");
  Alcotest.(check int) "ground false" 0 (count "auto" "q() :- 2 < 1.");
  match run ("COUNT g fpt " ^ q) with
  | Protocol.Err e ->
      Alcotest.(check bool) ("fpt refusal: " ^ e) true
        (contains e "cannot count")
  | Protocol.Ok_ _ -> Alcotest.fail "COUNT with fpt should ERR"

(* DIGEST: a deterministic per-relation content fingerprint — identical
   databases agree, any content change disagrees.  REPAIR is the
   coordinator's verb and must refuse cleanly on a plain server. *)
let test_digest_verb () =
  let session_with facts =
    let shared = Session.make_shared ~cache_capacity:4 () in
    let session = Session.create shared in
    let run line = Option.get (fst (Session.handle_line session line)) in
    List.iter
      (fun f ->
        match run ("FACT g " ^ f) with
        | Protocol.Ok_ _ -> ()
        | Protocol.Err e -> Alcotest.failf "FACT %s: %s" f e)
      facts;
    run
  in
  let digest run =
    match run "DIGEST g" with
    | Protocol.Ok_ { summary; payload } -> (summary, payload)
    | Protocol.Err e -> Alcotest.failf "DIGEST: %s" e
  in
  let facts = [ "e(1, 2)."; "e(2, 3)."; "f(1, 10)." ] in
  let _, p1 = digest (session_with facts) in
  (* same content, different insertion order: identical fingerprints *)
  let _, p2 = digest (session_with (List.rev facts)) in
  Alcotest.(check (list string)) "order-independent" p1 p2;
  Alcotest.(check int) "one line per relation" 2 (List.length p1);
  List.iter
    (fun l ->
      Alcotest.(check bool) ("line shape: " ^ l) true
        (String.length l > 9 && String.sub l 0 9 = "relation "))
    p1;
  (* a one-row change flips that relation's line and only that line *)
  let _, p3 = digest (session_with ("e(9, 9)." :: facts)) in
  let diff = List.filter (fun l -> not (List.mem l p1)) p3 in
  (match diff with
  | [ l ] ->
      Alcotest.(check bool) "changed line is e's" true (contains l "relation e ")
  | _ -> Alcotest.failf "expected exactly one changed line, got %d"
           (List.length diff));
  (* unknown database and the coordinator-only verb both ERR *)
  let run = session_with facts in
  (match run "DIGEST nope" with
  | Protocol.Err e ->
      Alcotest.(check bool) "names the database" true (contains e "no database")
  | Protocol.Ok_ _ -> Alcotest.fail "DIGEST on a missing database");
  match run "REPAIR g" with
  | Protocol.Err e ->
      Alcotest.(check bool) "points at the coordinator" true
        (contains e "coordinator")
  | Protocol.Ok_ _ -> Alcotest.fail "REPAIR must be coordinator-only"

(* ------------------------------------------------------------------ *)
(* Concurrency: 8 parallel connections, answers bit-identical to
   single-shot evaluation (acceptance criterion) *)

let test_concurrent_sessions () =
  (* bound the domain count: parallelism comes from the pool, not the
     fpt engine's trial fan-out *)
  Unix.putenv "PARADB_DOMAINS" "1";
  let rng = Random.State.make [| 42 |] in
  let db =
    Paradb_workload.Generators.edge_database rng ~nodes:40 ~edges:160
  in
  let path = write_temp_facts (Fact_format.to_string db) in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  (* a mixed workload hitting all four engines *)
  let queries =
    [
      ("fpt", "ans(X, Y) :- e(X, Z), e(Z, Y), X != Y, X != Z, Z != Y.");
      ("auto", "ans(X, Y) :- e(X, Z), e(Z, Y).");
      ("naive", "ans(X) :- e(X, Y), e(Y, Z), e(Z, X).");
      ("auto", "ans(X, Y) :- e(X, Y), X < Y.");
      ("yannakakis", "ans(X) :- e(X, X).");
    ]
  in
  (* single-shot reference answers, same process, same dictionary *)
  let expected =
    List.map
      (fun (engine, text) ->
        let q = Parser.parse_cq text in
        let kind = Option.get (Plan.engine_kind_of_string engine) in
        let plan = Plan.analyze kind q in
        Plan.sorted_tuples (Plan.evaluate plan db q))
      queries
  in
  let server = Server.start ~port:0 ~workers:8 ~cache_capacity:32 () in
  Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
  let port = Server.port server in
  Client.with_connection ~port (fun c ->
      match Client.request_line c (Printf.sprintf "LOAD g %s" path) with
      | Protocol.Ok_ _ -> ()
      | Protocol.Err e -> Alcotest.failf "LOAD failed: %s" e);
  let rounds = 3 in
  let client_task id () =
    Client.with_connection ~port (fun c ->
        let mismatches = ref [] in
        for round = 0 to rounds - 1 do
          List.iteri
            (fun i ((engine, text), want) ->
              (* rotate the starting point so connections interleave
                 differently *)
              let j = (i + id + round) mod List.length queries in
              let engine, text, want =
                if j = i then (engine, text, want)
                else
                  let e, t = List.nth queries j in
                  (e, t, List.nth expected j)
              in
              match
                Client.request_line c
                  (Printf.sprintf "EVAL g %s %s" engine text)
              with
              | Protocol.Ok_ { payload; _ } ->
                  if payload <> want then
                    mismatches := (id, round, text) :: !mismatches
              | Protocol.Err e -> mismatches := (id, round, e) :: !mismatches)
            (List.combine queries expected)
        done;
        !mismatches)
  in
  let clients = Array.init 8 (fun id -> Domain.spawn (client_task id)) in
  let mismatches = Array.to_list clients |> List.concat_map Domain.join in
  (match mismatches with
  | [] -> ()
  | (id, round, what) :: _ ->
      Alcotest.failf "%d mismatched answers; first: client %d round %d (%s)"
        (List.length mismatches) id round what);
  (* repeat queries must have hit the plan cache *)
  Client.with_connection ~port (fun c ->
      match Client.request_line c "STATS" with
      | Protocol.Ok_ { payload; _ } ->
          let hits =
            List.find_map
              (fun l ->
                match String.split_on_char ' ' l with
                | [ "server.cache_hits"; v ] -> int_of_string_opt v
                | _ -> None)
              payload
          in
          Alcotest.(check bool) "cache hits over the wire" true
            (match hits with Some h -> h > 0 | None -> false)
      | Protocol.Err e -> Alcotest.failf "STATS failed: %s" e)

let test_server_stop_is_idempotent () =
  let server = Server.start ~port:0 ~workers:2 ~cache_capacity:4 () in
  let port = Server.port server in
  Client.with_connection ~port (fun c ->
      match Client.request_line c "CHECK ans(X) :- e(X, Y)." with
      | Protocol.Ok_ _ -> ()
      | Protocol.Err e -> Alcotest.fail e);
  Server.stop server;
  Server.stop server;
  (* the port is released: a fresh server can bind it again *)
  let server2 = Server.start ~port ~workers:1 ~cache_capacity:4 () in
  Server.stop server2

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          Alcotest.test_case "parse requests" `Quick test_parse_request;
          Alcotest.test_case "request line roundtrip" `Quick
            test_request_line_roundtrip;
          Alcotest.test_case "framing abuse" `Quick test_response_framing_abuse;
          Alcotest.test_case "response framing roundtrip" `Quick
            test_response_roundtrip;
        ] );
      ( "plan cache",
        [
          Alcotest.test_case "key invariance" `Quick test_cache_key_invariance;
          Alcotest.test_case "lru discipline" `Quick test_lru_discipline;
          Alcotest.test_case "dispatch decisions" `Quick test_plan_dispatch;
        ] );
      ( "session",
        [
          Alcotest.test_case "dispatch" `Quick test_session_dispatch;
          Alcotest.test_case "compiled cache never serves a stale snapshot"
            `Quick test_compiled_cache_staleness;
          Alcotest.test_case "explain verb" `Quick test_explain_verb;
          Alcotest.test_case "count verb" `Quick test_count_verb;
          Alcotest.test_case "digest verb" `Quick test_digest_verb;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "8 parallel connections, bit-identical answers"
            `Quick test_concurrent_sessions;
          Alcotest.test_case "stop is idempotent and releases the port" `Quick
            test_server_stop_is_idempotent;
        ] );
    ]
