(* The telemetry subsystem: log-scale bucket math, quantile extraction,
   per-domain sink merging (the qcheck property: concurrent writers merge
   to the same totals as a sequential replay), env validation, span
   nesting in the JSONL trace, and the two snapshot renderers. *)

module Metrics = Paradb_telemetry.Metrics
module Trace = Paradb_telemetry.Trace
module Export = Paradb_telemetry.Export
module Env = Paradb_telemetry.Env
module Clock = Paradb_telemetry.Clock

(* unique metric names: the registry is process-global *)
let fresh =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Printf.sprintf "test.%s.%d" prefix !n

(* ------------------------------------------------------------------ *)
(* Bucket math *)

let test_bucket_boundaries () =
  Alcotest.(check int) "zero" 0 (Metrics.bucket_of 0);
  Alcotest.(check int) "negative" 0 (Metrics.bucket_of (-17));
  List.iter
    (fun v -> Alcotest.(check int) (string_of_int v) v (Metrics.bucket_of v))
    [ 1; 2; 3 ];
  (* every regular bucket is a half-open interval [lower, upper) whose
     endpoints map back to itself / its successor *)
  for i = 1 to Metrics.n_buckets - 2 do
    let lo = Metrics.bucket_lower i and hi = Metrics.bucket_upper i in
    Alcotest.(check bool) (Printf.sprintf "bucket %d nonempty" i) true (lo < hi);
    Alcotest.(check int) (Printf.sprintf "lower of %d" i) i (Metrics.bucket_of lo);
    Alcotest.(check int)
      (Printf.sprintf "upper-1 of %d" i)
      i
      (Metrics.bucket_of (hi - 1))
  done;
  (* continuity across octave boundaries *)
  Alcotest.(check int) "4" 4 (Metrics.bucket_of 4);
  Alcotest.(check int) "7" 7 (Metrics.bucket_of 7);
  Alcotest.(check int) "8" 8 (Metrics.bucket_of 8)

let test_bucket_overflow () =
  Alcotest.(check int) "max_int" (Metrics.n_buckets - 1)
    (Metrics.bucket_of max_int);
  let last_regular = Metrics.n_buckets - 2 in
  Alcotest.(check int) "first overflow value" (Metrics.n_buckets - 1)
    (Metrics.bucket_of (Metrics.bucket_upper last_regular));
  Alcotest.(check int) "overflow upper" max_int
    (Metrics.bucket_upper (Metrics.n_buckets - 1))

let test_bucket_monotone () =
  (* bucket_of is monotone: crossing a boundary never decreases the index *)
  let prev = ref 0 in
  for v = 0 to 5000 do
    let b = Metrics.bucket_of v in
    if b < !prev then
      Alcotest.failf "bucket_of %d = %d < previous %d" v b !prev;
    prev := b
  done

(* ------------------------------------------------------------------ *)
(* Histograms and quantiles *)

let test_histogram_totals () =
  let h = Metrics.histogram (fresh "hist") in
  List.iter (Metrics.observe h) [ 5; 1; 100; 1; 42 ];
  let s = Metrics.histogram_read h in
  Alcotest.(check int) "count" 5 s.Metrics.count;
  Alcotest.(check int) "sum" 149 s.Metrics.sum;
  Alcotest.(check int) "min" 1 s.Metrics.min;
  Alcotest.(check int) "max" 100 s.Metrics.max

let test_quantile_empty () =
  let h = Metrics.histogram (fresh "hist") in
  let s = Metrics.histogram_read h in
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Metrics.quantile s 0.5));
  Alcotest.(check int) "empty min renders as 0" 0 s.Metrics.min

let test_quantile_single () =
  let h = Metrics.histogram (fresh "hist") in
  Metrics.observe h 100;
  let s = Metrics.histogram_read h in
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "q=%.2f" q)
        100.0 (Metrics.quantile s q))
    [ 0.0; 0.5; 0.99; 1.0 ]

let test_quantile_uniform () =
  (* 1..1000 uniformly: quantiles must land within bucket resolution
     (4 sub-buckets per octave = at worst ~1/4 of the value off) *)
  let h = Metrics.histogram (fresh "hist") in
  for v = 1 to 1000 do
    Metrics.observe h v
  done;
  let s = Metrics.histogram_read h in
  List.iter
    (fun (q, expected) ->
      let got = Metrics.quantile s q in
      if Float.abs (got -. expected) > 0.25 *. expected then
        Alcotest.failf "q%.2f: got %.1f, want %.1f +- 25%%" q got expected)
    [ (0.5, 500.0); (0.95, 950.0); (0.99, 990.0) ];
  (* quantiles stay inside the observed range and are monotone in q *)
  let qs = List.map (Metrics.quantile s) [ 0.0; 0.25; 0.5; 0.75; 1.0 ] in
  List.iter
    (fun v ->
      Alcotest.(check bool) "within range" true (v >= 1.0 && v <= 1000.0))
    qs;
  let rec mono = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "monotone" true (a <= b);
        mono rest
    | _ -> ()
  in
  mono qs

(* ------------------------------------------------------------------ *)
(* Per-domain sinks: concurrent writers merge exactly (qcheck) *)

let prop_domain_merge =
  QCheck.Test.make ~count:50
    ~name:"per-domain sinks merge to the sequential totals"
    QCheck.(list_of_size Gen.(1 -- 4) (list (int_bound 10_000)))
    (fun workloads ->
      let c = Metrics.counter (fresh "merge_c") in
      let h = Metrics.histogram (fresh "merge_h") in
      let work vs () =
        List.iter
          (fun v ->
            Metrics.incr ~by:v c;
            Metrics.observe h v)
          vs
      in
      let domains = List.map (fun vs -> Domain.spawn (work vs)) workloads in
      List.iter Domain.join domains;
      let all = List.concat workloads in
      let s = Metrics.histogram_read h in
      Metrics.counter_value c = List.fold_left ( + ) 0 all
      && s.Metrics.count = List.length all
      && s.Metrics.sum = List.fold_left ( + ) 0 all
      && s.Metrics.min = (if all = [] then 0 else List.fold_left min max_int all)
      && s.Metrics.max = List.fold_left max 0 all)

let test_gauge_high_watermark () =
  let g = Metrics.gauge (fresh "gauge") in
  Metrics.set_max g 7;
  Metrics.set_max g 3;
  Alcotest.(check int) "keeps the max" 7 (Metrics.gauge_value g);
  let d = Domain.spawn (fun () -> Metrics.set_max g 11) in
  Domain.join d;
  Alcotest.(check int) "max across domains" 11 (Metrics.gauge_value g)

let test_registry_idempotent () =
  let name = fresh "idem" in
  let c1 = Metrics.counter name in
  let c2 = Metrics.counter name in
  Metrics.incr c1;
  Metrics.incr c2;
  Alcotest.(check int) "same counter" 2 (Metrics.counter_value c1);
  match Metrics.histogram name with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "type mismatch must be rejected"

(* ------------------------------------------------------------------ *)
(* Env *)

let test_env_positive_int () =
  Unix.putenv "PARADB_TEST_GOOD" "  3 ";
  Alcotest.(check int) "parsed" 3
    (Env.positive_int ~name:"PARADB_TEST_GOOD" ~default:(fun () -> 9));
  Alcotest.(check int) "default when unset" 9
    (Env.positive_int ~name:"PARADB_TEST_UNSET" ~default:(fun () -> 9));
  List.iter
    (fun bad ->
      Unix.putenv "PARADB_TEST_BAD" bad;
      match
        Env.positive_int ~name:"PARADB_TEST_BAD" ~default:(fun () -> 9)
      with
      | exception Invalid_argument msg ->
          Alcotest.(check bool)
            (Printf.sprintf "message names the variable (%S)" bad)
            true
            (String.length msg > 0
            && String.sub msg 0 (String.length "PARADB_TEST_BAD")
               = "PARADB_TEST_BAD")
      | v -> Alcotest.failf "%S: expected Invalid_argument, got %d" bad v)
    [ "0"; "-2"; "many"; "1.5"; "" ]

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_disabled_is_noop () =
  Alcotest.(check bool) "off by default" false (Trace.enabled ());
  let sp = Trace.start "noop" in
  Trace.finish sp;
  Alcotest.(check int) "with_span passes the value through" 5
    (Trace.with_span "noop" (fun () -> 5))

(* crude field extraction: the writer emits ["field":value] exactly once
   per line, so a substring scan is enough for a test *)
let field_int line key =
  let marker = Printf.sprintf "\"%s\":" key in
  match String.index_opt line ':' with
  | None -> None
  | Some _ -> (
      let rec find i =
        if i + String.length marker > String.length line then None
        else if String.sub line i (String.length marker) = marker then
          Some (i + String.length marker)
        else find (i + 1)
      in
      match find 0 with
      | None -> None
      | Some start ->
          let stop = ref start in
          while
            !stop < String.length line
            && (match line.[!stop] with
               | '0' .. '9' | '-' -> true
               | _ -> false)
          do
            incr stop
          done;
          int_of_string_opt (String.sub line start (!stop - start)))

let test_trace_nesting () =
  let path = Filename.temp_file "paradb_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Sys.remove path)
    (fun () ->
      Trace.enable ~file:path;
      Trace.with_span "outer" (fun () ->
          Trace.with_span "inner" (fun () -> ()));
      Trace.disable ();
      let lines = In_channel.with_open_text path In_channel.input_lines in
      Alcotest.(check int) "two spans" 2 (List.length lines);
      (* spans finish innermost-first *)
      let inner = List.nth lines 0 and outer = List.nth lines 1 in
      let has sub s =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "inner first" true (has "\"name\":\"inner\"" inner);
      Alcotest.(check bool) "outer second" true (has "\"name\":\"outer\"" outer);
      Alcotest.(check bool) "outer is a root" true (has "\"parent\":null" outer);
      let outer_id = field_int outer "span" in
      let inner_parent = field_int inner "parent" in
      Alcotest.(check bool) "inner nests under outer" true
        (outer_id <> None && outer_id = inner_parent);
      List.iter
        (fun l ->
          match field_int l "dur_ns" with
          | Some d -> Alcotest.(check bool) "duration non-negative" true (d >= 0)
          | None -> Alcotest.failf "no dur_ns in %s" l)
        lines)

let test_trace_attrs_escaped () =
  let path = Filename.temp_file "paradb_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Sys.remove path)
    (fun () ->
      Trace.enable ~file:path;
      let sp = Trace.start ~attrs:[ ("k", "a\"b") ] "quoted" in
      Trace.finish ~attrs:[ ("done", "yes") ] sp;
      Trace.disable ();
      match In_channel.with_open_text path In_channel.input_lines with
      | [ line ] ->
          let has sub =
            let n = String.length sub in
            let rec go i =
              i + n <= String.length line
              && (String.sub line i n = sub || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) "start attr escaped" true (has "\"k\":\"a\\\"b\"");
          Alcotest.(check bool) "finish attr appended" true
            (has "\"done\":\"yes\"")
      | lines -> Alcotest.failf "expected one span, got %d" (List.length lines))

(* ------------------------------------------------------------------ *)
(* Export *)

let test_export_renderers () =
  let c = Metrics.counter (fresh "export_c") in
  let h = Metrics.histogram (fresh "export_h") in
  Metrics.incr ~by:4 c;
  Metrics.observe h 10;
  let s = Metrics.snapshot () in
  let table = Export.to_table ~prefix:"telemetry." s in
  Alcotest.(check bool) "table lines are two tokens" true
    (List.for_all
       (fun l -> List.length (String.split_on_char ' ' l) = 2)
       table);
  Alcotest.(check bool) "table is prefixed" true
    (List.for_all (fun l -> String.length l > 10 && String.sub l 0 10 = "telemetry.") table);
  let json = Export.to_json s in
  let has sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length json && (String.sub json i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "json has sections" true
    (has "\"counters\"" && has "\"gauges\"" && has "\"histograms\"");
  Alcotest.(check bool) "json has quantiles" true
    (has "\"p50\"" && has "\"p95\"" && has "\"p99\"");
  Alcotest.(check bool) "no nan leaks into json" false (has "nan");
  Alcotest.(check bool) "single line" false (String.contains json '\n')

let test_clock_monotone () =
  let a = Clock.now_ns () in
  let b = Clock.now_ns () in
  Alcotest.(check bool) "non-decreasing" true (b >= a);
  Alcotest.(check bool) "plausible magnitude" true (a > 0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "telemetry"
    [
      ( "buckets",
        [
          Alcotest.test_case "boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "overflow" `Quick test_bucket_overflow;
          Alcotest.test_case "monotone" `Quick test_bucket_monotone;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "totals" `Quick test_histogram_totals;
          Alcotest.test_case "empty quantile" `Quick test_quantile_empty;
          Alcotest.test_case "single-value quantile" `Quick test_quantile_single;
          Alcotest.test_case "uniform quantiles" `Quick test_quantile_uniform;
        ] );
      ( "domains",
        [
          QCheck_alcotest.to_alcotest prop_domain_merge;
          Alcotest.test_case "gauge high-watermark" `Quick
            test_gauge_high_watermark;
          Alcotest.test_case "registry idempotent" `Quick
            test_registry_idempotent;
        ] );
      ("env", [ Alcotest.test_case "positive_int" `Quick test_env_positive_int ]);
      ( "trace",
        [
          Alcotest.test_case "disabled is a no-op" `Quick
            test_trace_disabled_is_noop;
          Alcotest.test_case "nesting" `Quick test_trace_nesting;
          Alcotest.test_case "attrs escaped" `Quick test_trace_attrs_escaped;
        ] );
      ( "export",
        [
          Alcotest.test_case "renderers" `Quick test_export_renderers;
          Alcotest.test_case "clock monotone" `Quick test_clock_monotone;
        ] );
    ]
