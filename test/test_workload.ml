module Relation = Paradb_relational.Relation
module Database = Paradb_relational.Database
module Value = Paradb_relational.Value
module Generators = Paradb_workload.Generators
module Vardi = Paradb_workload.Vardi
module Bench_util = Paradb_workload.Bench_util
open Paradb_query

let rng () = Test_support.rng ()

let test_random_database () =
  let db =
    Generators.random_database (rng ()) ~schema:[ ("r", 2); ("s", 3) ]
      ~domain_size:5 ~tuples:20
  in
  Alcotest.(check int) "r arity" 2 (Database.arity_of db "r");
  Alcotest.(check int) "s arity" 3 (Database.arity_of db "s");
  Alcotest.(check bool) "r nonempty" false
    (Relation.is_empty (Database.find db "r"));
  Alcotest.(check bool) "domain bounded" true
    (Value.Set.for_all
       (fun v -> Value.to_int v < 5)
       (Database.domain db))

let test_edge_database_and_chain () =
  let db = Generators.edge_database (rng ()) ~nodes:10 ~edges:30 in
  Alcotest.(check int) "at most 30 edges" 30
    (max 30 (Relation.cardinality (Database.find db "e")));
  let q = Generators.chain_query ~length:3 ~neq:[ (0, 3); (1, 2) ] in
  Alcotest.(check int) "atoms" 3 (List.length q.Cq.body);
  Alcotest.(check int) "constraints" 2 (List.length q.Cq.constraints);
  (* the engine and the naive evaluator agree on the generated workload *)
  Alcotest.(check bool) "engines agree" true
    (Relation.set_equal
       (Paradb_core.Engine.evaluate db q)
       (Paradb_eval.Cq_naive.evaluate db q))

let test_employees_scenario () =
  let db, q =
    Generators.employees_multi_project (rng ()) ~employees:20 ~projects:5
      ~assignments:40
  in
  let r = Paradb_core.Engine.evaluate db q in
  Alcotest.(check bool) "agrees with naive" true
    (Relation.set_equal r (Paradb_eval.Cq_naive.evaluate db q));
  (* with 40 random assignments over 20 employees, someone has 2 projects *)
  Alcotest.(check bool) "nonempty" false (Relation.is_empty r)

let test_students_scenario () =
  let db, q =
    Generators.students_outside_department (rng ()) ~students:15 ~courses:10
      ~departments:3 ~enrollments:30
  in
  Alcotest.(check bool) "agrees with naive" true
    (Relation.set_equal
       (Paradb_core.Engine.evaluate db q)
       (Paradb_eval.Cq_naive.evaluate db q))

let test_salary_scenario () =
  let db, q =
    Generators.employees_higher_salary (rng ()) ~employees:12 ~max_salary:50
  in
  Alcotest.(check bool) "agrees with naive" true
    (Relation.set_equal
       (Paradb_core.Comparisons.evaluate db q)
       (Paradb_eval.Cq_naive.evaluate db q))

let test_vardi_database () =
  let db = Vardi.database ~edges:[ (0, 1) ] ~sources:[ 0 ] ~targets:[ 1 ] in
  Alcotest.(check int) "e" 1 (Relation.cardinality (Database.find db "e"));
  Alcotest.(check int) "s" 1 (Relation.cardinality (Database.find db "s"));
  let p = Vardi.program ~k:2 in
  Alcotest.(check int) "three rules" 3 (List.length p.Program.rules);
  Alcotest.(check bool) "goal" true
    (Paradb_datalog.Engine.goal_holds db p)

let test_layered_instance () =
  let db = Vardi.layered_instance (rng ()) ~layers:3 ~width:2 ~edge_prob:1.0 in
  (* complete layers: 2 layers of 4 edges *)
  Alcotest.(check int) "edges" 8 (Relation.cardinality (Database.find db "e"));
  Alcotest.(check bool) "reachable" true
    (Paradb_datalog.Engine.goal_holds db (Vardi.program ~k:1))

let test_bench_util_time () =
  let (), t = Bench_util.time (fun () -> ignore (Sys.opaque_identity (List.init 1000 Fun.id))) in
  Alcotest.(check bool) "nonnegative" true (t >= 0.0);
  let _, tm = Bench_util.time_median ~runs:3 (fun () -> 42) in
  Alcotest.(check bool) "median nonnegative" true (tm >= 0.0)

let test_bench_util_table () =
  let s =
    Bench_util.table ~header:[ "n"; "time" ]
      [ [ "10"; "1.0ms" ]; [ "100"; "2.0ms" ] ]
  in
  Alcotest.(check bool) "has header" true
    (String.length s > 0 && String.sub s 0 1 = "|");
  Alcotest.(check int) "four lines" 4
    (List.length (String.split_on_char '\n' s))

let test_pretty_seconds () =
  Alcotest.(check string) "ns" "500ns" (Bench_util.pretty_seconds 5e-7);
  Alcotest.(check string) "us" "50.0us" (Bench_util.pretty_seconds 5e-5);
  Alcotest.(check string) "ms" "5.00ms" (Bench_util.pretty_seconds 5e-3);
  Alcotest.(check string) "s" "5.00s" (Bench_util.pretty_seconds 5.0);
  Alcotest.(check string) "ratio" "x2.0" (Bench_util.ratio_string 1.0 2.0);
  Alcotest.(check string) "ratio zero" "-" (Bench_util.ratio_string 0.0 2.0)

let () =
  Alcotest.run "workload"
    [
      ( "generators",
        [
          Alcotest.test_case "random database" `Quick test_random_database;
          Alcotest.test_case "edges and chains" `Quick test_edge_database_and_chain;
          Alcotest.test_case "employees" `Quick test_employees_scenario;
          Alcotest.test_case "students" `Quick test_students_scenario;
          Alcotest.test_case "salaries" `Quick test_salary_scenario;
        ] );
      ( "vardi",
        [
          Alcotest.test_case "database" `Quick test_vardi_database;
          Alcotest.test_case "layered" `Quick test_layered_instance;
        ] );
      ( "bench utils",
        [
          Alcotest.test_case "time" `Quick test_bench_util_time;
          Alcotest.test_case "table" `Quick test_bench_util_table;
          Alcotest.test_case "pretty" `Quick test_pretty_seconds;
        ] );
    ]
