(* The differential oracle (DESIGN.md §12): deterministic instance
   generation, the cross-engine agreement contract, counterexample
   shrinking, replayable [.case] files, and — the point of the whole
   subsystem — that each seeded mutant is caught within a bounded
   number of cases with a small shrunk counterexample. *)

module Value = Paradb_relational.Value
module Relation = Paradb_relational.Relation
module Database = Paradb_relational.Database
module Gen = Paradb_oracle.Gen
module Engines = Paradb_oracle.Engines
module Shrink = Paradb_oracle.Shrink
module Case_file = Paradb_oracle.Case_file
module Oracle = Paradb_oracle.Oracle
open Paradb_query

(* ------------------------------------------------------------------ *)
(* Generator determinism and coverage *)

let fingerprint inst =
  Printf.sprintf "%s|%s|%s" inst.Gen.label
    (Gen.shape_to_string inst.Gen.shape)
    (Test_support.db_to_string inst.Gen.db)

let test_gen_deterministic () =
  for index = 0 to 15 do
    let mk () = Gen.instance ~seed:42 ~index ~max_vars:8 ~max_tuples:16 in
    Alcotest.(check string)
      (Printf.sprintf "case %d reproducible" index)
      (fingerprint (mk ())) (fingerprint (mk ()))
  done;
  (* independent per-case RNG: case i needs no cases 0..i-1 *)
  let a = Gen.instance ~seed:7 ~index:9 ~max_vars:8 ~max_tuples:16 in
  let b = Gen.instance ~seed:7 ~index:9 ~max_vars:8 ~max_tuples:16 in
  Alcotest.(check string) "random access" (fingerprint a) (fingerprint b);
  let other = Gen.instance ~seed:8 ~index:9 ~max_vars:8 ~max_tuples:16 in
  Alcotest.(check bool) "seed matters" false
    (fingerprint a = fingerprint other)

let test_gen_class_coverage () =
  let labels =
    List.init 16 (fun index ->
        (Gen.instance ~seed:1 ~index ~max_vars:8 ~max_tuples:16).Gen.label)
  in
  List.iter
    (fun cls ->
      Alcotest.(check bool)
        (Printf.sprintf "class %s generated" cls)
        true (List.mem cls labels))
    Gen.classes

let test_gen_roundtrips_through_parser () =
  (* Every generated shape must survive a to_string/parse round trip:
     the server wire format and [.case] files both depend on it (this
     is the property that caught the lowercase-variables-as-constants
     bug). *)
  for index = 0 to 31 do
    let inst = Gen.instance ~seed:3 ~index ~max_vars:8 ~max_tuples:16 in
    match inst.Gen.shape with
    | Gen.Query q ->
        let q' = Parser.parse_cq (Cq.to_string q) in
        Alcotest.(check string)
          (Printf.sprintf "case %d query reparse" index)
          (Cq.to_string q) (Cq.to_string q')
    | Gen.Sentence f ->
        let f' = Parser.parse_fo (Fo.to_string f) in
        Alcotest.(check string)
          (Printf.sprintf "case %d sentence reparse" index)
          (Fo.to_string f) (Fo.to_string f')
  done

(* ------------------------------------------------------------------ *)
(* Agreement contract *)

let test_agrees_contract () =
  let open Engines in
  let rows l = Rows l in
  Alcotest.(check bool) "exact equal" true
    (agrees ~mode:Exact ~reference:(rows [ "(1)"; "(2)" ])
       (rows [ "(1)"; "(2)" ]));
  Alcotest.(check bool) "exact missing row" false
    (agrees ~mode:Exact ~reference:(rows [ "(1)"; "(2)" ]) (rows [ "(1)" ]));
  Alcotest.(check bool) "subset may miss" true
    (agrees ~mode:Subset ~reference:(rows [ "(1)"; "(2)" ]) (rows [ "(1)" ]));
  Alcotest.(check bool) "subset must not invent" false
    (agrees ~mode:Subset ~reference:(rows [ "(1)" ]) (rows [ "(1)"; "(3)" ]));
  Alcotest.(check bool) "sat bit" true
    (agrees ~mode:Exact ~reference:(rows [ "(1)" ]) (Sat true));
  Alcotest.(check bool) "sat bit mismatch" false
    (agrees ~mode:Exact ~reference:(rows []) (Sat true));
  Alcotest.(check bool) "subset sat true needs witness" false
    (agrees ~mode:Subset ~reference:(rows []) (Sat true));
  Alcotest.(check bool) "not applicable skips" true
    (agrees ~mode:Exact ~reference:(rows [ "(1)" ]) Not_applicable);
  Alcotest.(check bool) "engine error is a finding" false
    (agrees ~mode:Exact ~reference:(rows [ "(1)" ]) (Engine_error "boom"));
  Alcotest.(check bool) "count equal" true
    (agrees ~mode:Exact_count ~reference:(Count 3) (Count 3));
  Alcotest.(check bool) "count off by one" false
    (agrees ~mode:Exact_count ~reference:(Count 3) (Count 2));
  Alcotest.(check bool) "count vs rows is a shape clash" false
    (agrees ~mode:Exact_count ~reference:(rows [ "(1)" ]) (Count 1));
  Alcotest.(check bool) "cost equal" true
    (agrees ~mode:Exact_cost ~reference:(Cost (Some 7)) (Cost (Some 7)));
  Alcotest.(check bool) "cost mismatch" false
    (agrees ~mode:Exact_cost ~reference:(Cost (Some 7)) (Cost (Some 8)));
  Alcotest.(check bool) "cost unsat matches" true
    (agrees ~mode:Exact_cost ~reference:(Cost None) (Cost None));
  Alcotest.(check bool) "cost sat vs unsat" false
    (agrees ~mode:Exact_cost ~reference:(Cost (Some 7)) (Cost None))

(* ------------------------------------------------------------------ *)
(* Shrinking *)

let hand_instance () =
  let v = Value.Int 0 and w = Value.Int 1 and u = Value.Int 2 in
  let e =
    Relation.create ~name:"e" ~schema:[ "a"; "b" ]
      [ [| v; w |]; [| w; u |]; [| u; v |]; [| v; v |] ]
  in
  let x = Term.var "X" and y = Term.var "Y" and z = Term.var "Z" in
  let q =
    Cq.make ~head:[ Term.var "X" ]
      ~constraints:[ Constr.neq x y; Constr.neq y z ]
      [ Atom.make "e" [ x; y ]; Atom.make "e" [ y; z ]; Atom.make "e" [ z; x ] ]
  in
  {
    Gen.seed = 0;
    index = 0;
    label = "hand";
    db = Database.of_relations [ e ];
    shape = Gen.Query q;
  }

let test_shrink_to_minimum () =
  (* With an always-true divergence predicate, the greedy descent must
     reach the global floor: one atom, no constraints, one tuple per
     relation, all values collapsed to the minimum. *)
  let shrunk, steps = Shrink.minimize ~diverges:(fun _ -> true) (hand_instance ()) in
  Alcotest.(check int) "one atom" 1 (Gen.atoms shrunk.Gen.shape);
  Alcotest.(check int) "one tuple" 1 (Gen.tuple_count shrunk);
  (match shrunk.Gen.shape with
  | Gen.Query q ->
      Alcotest.(check int) "no constraints" 0 (List.length q.Cq.constraints)
  | Gen.Sentence _ -> Alcotest.fail "shape changed");
  Alcotest.(check bool) "steps counted" true (steps > 0)

let test_shrink_preserves_divergence () =
  (* A predicate that requires a self-loop tuple: the shrinker may
     remove everything else but must keep one. *)
  let has_self_loop inst =
    List.exists
      (fun rel ->
        List.exists
          (fun t -> Array.length t = 2 && t.(0) = t.(1))
          (Relation.tuples rel))
      (Database.relations inst.Gen.db)
  in
  let shrunk, _ = Shrink.minimize ~diverges:has_self_loop (hand_instance ()) in
  Alcotest.(check bool) "still diverges" true (has_self_loop shrunk);
  Alcotest.(check int) "minimal witness" 1 (Gen.tuple_count shrunk)

(* ------------------------------------------------------------------ *)
(* Case files *)

let test_case_file_roundtrip () =
  let dir = Filename.temp_file "paradb_cases" "" in
  Sys.remove dir;
  let inst = Gen.instance ~seed:11 ~index:4 ~max_vars:6 ~max_tuples:8 in
  let path =
    Case_file.write ~dir ~engine:"fpt" ~expected:"rows=2" ~got:"rows=1" inst
  in
  Fun.protect ~finally:(fun () -> Sys.remove path; Unix.rmdir dir)
  @@ fun () ->
  let case = Case_file.read path in
  Alcotest.(check string) "engine" "fpt" case.Case_file.engine;
  Alcotest.(check string) "shape"
    (Gen.shape_to_string inst.Gen.shape)
    (Gen.shape_to_string case.Case_file.shape);
  let replayed = Case_file.to_instance case in
  Alcotest.(check string) "database"
    (Test_support.db_to_string inst.Gen.db)
    (Test_support.db_to_string replayed.Gen.db)

(* ------------------------------------------------------------------ *)
(* The oracle proper *)

let in_process_engines =
  (* everything but the live-server round trips, which the CLI acceptance
     run covers; unit tests stay socket-free *)
  List.filter
    (fun n -> n <> "serve" && n <> "count-serve")
    Engines.names

let run_oracle ?(seed = 1) ?(cases = 60) ?(engines = in_process_engines) () =
  Oracle.run
    {
      Oracle.seed;
      cases;
      max_vars = 8;
      max_tuples = 16;
      engines = Some engines;
      out_dir = None;
    }

let test_clean_run () =
  let report = run_oracle ~seed:42 ~cases:120 () in
  Alcotest.(check int) "cases" 120 report.Oracle.cases_run;
  Alcotest.(check bool) "many comparisons" true
    (report.Oracle.comparisons > 120);
  Alcotest.(check int) "no divergences" 0
    (List.length report.Oracle.divergences)

let test_unknown_engine_rejected () =
  Alcotest.(check bool) "typo rejected" true
    (match run_oracle ~engines:[ "fpttypo" ] () with
    | exception Invalid_argument msg ->
        Test_support.contains msg "unknown engine"
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Mutation smoke: each seeded bug caught, with a small counterexample *)

let with_mutation name f =
  Unix.putenv "PARADB_MUTATE" name;
  Fun.protect ~finally:(fun () -> Unix.putenv "PARADB_MUTATE" "") f

let check_mutant_caught ?(cases = 60) ~mutant ~engines () =
  with_mutation mutant @@ fun () ->
  let report = run_oracle ~cases ~engines () in
  match report.Oracle.divergences with
  | [] -> Alcotest.failf "mutant %s survived %d cases" mutant cases
  | d :: _ ->
      Alcotest.(check bool)
        (Printf.sprintf "%s counterexample <= 4 atoms" mutant)
        true
        (Gen.atoms d.Oracle.shrunk.Gen.shape <= 4);
      Alcotest.(check bool)
        (Printf.sprintf "%s counterexample <= 10 tuples" mutant)
        true
        (Gen.tuple_count d.Oracle.shrunk <= 10)

let test_mutant_semijoin () =
  check_mutant_caught ~mutant:"semijoin_off_by_one"
    ~engines:[ "yannakakis-sat" ] ()

let test_mutant_drop_neq () =
  check_mutant_caught ~mutant:"drop_neq" ~engines:[ "fpt"; "fpt-sat" ] ()

let test_mutant_color_count () =
  check_mutant_caught ~mutant:"color_count" ~engines:[ "fpt"; "fpt-sat" ] ()

let test_mutant_probe_key_swap () =
  check_mutant_caught ~mutant:"probe_key_swap" ~engines:[ "compiled" ] ()

let test_mutant_sum_instead_of_max () =
  check_mutant_caught ~mutant:"sum_instead_of_max"
    ~engines:[ "tropical-yannakakis" ] ()

(* Dropping multiplicities only shows on a projection collision — a
   rarer shape than the other mutants trip on, hence the bigger case
   budget. *)
let test_mutant_count_dedup_drop () =
  check_mutant_caught ~cases:400 ~mutant:"count_dedup_drop"
    ~engines:[ "count-yannakakis" ] ()

let test_unknown_mutant_rejected () =
  with_mutation "not_a_mutant" @@ fun () ->
  Alcotest.(check bool) "raises" true
    (match run_oracle ~cases:1 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "oracle"
    [
      ( "gen",
        [
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "class coverage" `Quick test_gen_class_coverage;
          Alcotest.test_case "parser round trip" `Quick
            test_gen_roundtrips_through_parser;
        ] );
      ( "contract",
        [ Alcotest.test_case "agrees" `Quick test_agrees_contract ] );
      ( "shrink",
        [
          Alcotest.test_case "to minimum" `Quick test_shrink_to_minimum;
          Alcotest.test_case "preserves divergence" `Quick
            test_shrink_preserves_divergence;
        ] );
      ( "case files",
        [ Alcotest.test_case "round trip" `Quick test_case_file_roundtrip ] );
      ( "oracle",
        [
          Alcotest.test_case "clean run" `Quick test_clean_run;
          Alcotest.test_case "unknown engine" `Quick
            test_unknown_engine_rejected;
        ] );
      ( "mutation smoke",
        [
          Alcotest.test_case "semijoin off by one" `Quick test_mutant_semijoin;
          Alcotest.test_case "drop neq" `Quick test_mutant_drop_neq;
          Alcotest.test_case "color count" `Quick test_mutant_color_count;
          Alcotest.test_case "probe key swap" `Quick
            test_mutant_probe_key_swap;
          Alcotest.test_case "sum instead of max" `Quick
            test_mutant_sum_instead_of_max;
          Alcotest.test_case "count dedup drop" `Quick
            test_mutant_count_dedup_drop;
          Alcotest.test_case "unknown mutant" `Quick
            test_unknown_mutant_rejected;
        ] );
    ]
