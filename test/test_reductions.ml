module Relation = Paradb_relational.Relation
module Database = Paradb_relational.Database
module Value = Paradb_relational.Value
module Graph = Paradb_graph.Graph
module Circuit = Paradb_wsat.Circuit
module Formula = Paradb_wsat.Formula
module Cnf = Paradb_wsat.Cnf
module Cq_naive = Paradb_eval.Cq_naive
module Fo_naive = Paradb_eval.Fo_naive
open Paradb_query
open Paradb_reductions

(* ------------------------------------------------------------------ *)
(* Clique -> CQ (Theorem 1 lower bound) *)

let test_clique_query_shape () =
  let q = Clique_to_cq.query ~k:4 in
  Alcotest.(check int) "atoms = k choose 2" 6 (List.length q.Cq.body);
  Alcotest.(check int) "v = k" 4 (Cq.num_vars q);
  Alcotest.(check bool) "boolean" true (Cq.is_boolean q);
  (* q = O(k^2): the size measure grows quadratically *)
  Alcotest.(check bool) "q grows quadratically" true
    (Cq.size (Clique_to_cq.query ~k:8) > 3 * Cq.size (Clique_to_cq.query ~k:4))

let test_clique_known_graphs () =
  let tri = Graph.cycle_graph 3 in
  let q, db = Clique_to_cq.reduce tri ~k:3 in
  Alcotest.(check bool) "triangle has 3-clique" true (Cq_naive.is_satisfiable db q);
  let q4, _ = Clique_to_cq.reduce tri ~k:4 in
  Alcotest.(check bool) "no 4-clique" false
    (Cq_naive.is_satisfiable (Clique_to_cq.database tri) q4);
  (* decode a witness *)
  match Cq_naive.all_bindings db q with
  | b :: _ ->
      let vs = Clique_to_cq.decode b ~k:3 in
      Alcotest.(check bool) "decoded clique" true (Graph.is_clique tri vs)
  | [] -> Alcotest.fail "expected witness"

(* ------------------------------------------------------------------ *)
(* CQ -> weighted 2CNF (Theorem 1 upper bound, parameter q) *)

let test_cq_to_wsat_shape () =
  let db = Parser.parse_facts "e(1, 2). e(2, 3)." in
  let q = Parser.parse_cq "goal :- e(X, Y), e(Y, Z)." in
  let lab = Cq_to_wsat.reduce db q in
  Alcotest.(check int) "k = atoms" 2 lab.Cq_to_wsat.k;
  Alcotest.(check int) "vars = consistent pairs" 4
    lab.Cq_to_wsat.cnf.Cnf.n_vars;
  Alcotest.(check bool) "2cnf" true (Cnf.is_2cnf lab.Cq_to_wsat.cnf);
  Alcotest.(check bool) "all negative" true (Cnf.all_negative lab.Cq_to_wsat.cnf)

let test_cq_to_wsat_decode () =
  let db = Parser.parse_facts "e(1, 2). e(2, 3)." in
  let q = Parser.parse_cq "goal :- e(X, Y), e(Y, Z)." in
  let lab = Cq_to_wsat.reduce db q in
  match Cnf.weighted_sat lab.Cq_to_wsat.cnf lab.Cq_to_wsat.k with
  | None -> Alcotest.fail "expected satisfiable"
  | Some a ->
      let binding = Cq_to_wsat.decode lab q a in
      Alcotest.(check bool) "Y = 2" true
        (Binding.find "Y" binding = Some (Value.Int 2))

let test_cq_to_wsat_guards () =
  let db = Parser.parse_facts "e(1, 2)." in
  Alcotest.(check bool) "rejects open" true
    (try ignore (Cq_to_wsat.reduce db (Parser.parse_cq "ans(X) :- e(X, Y).")); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "rejects constraints" true
    (try ignore (Cq_to_wsat.reduce db (Parser.parse_cq "goal :- e(X, Y), X != Y.")); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Bounded variables rewrite (parameter v) *)

let test_bounded_vars_size () =
  let db = Parser.parse_facts "e(1, 2). e(2, 3). f(1, 2). f(2, 2)." in
  (* two atoms over the same variable set {X,Y} collapse into one R_S *)
  let q = Parser.parse_cq "goal :- e(X, Y), f(X, Y), f(Y, X), e(Y, Z)." in
  let q', db' = Bounded_vars.reduce db q in
  Alcotest.(check int) "one atom per var-set" 2 (List.length q'.Cq.body);
  Alcotest.(check bool) "equivalent" true
    (Cq_naive.is_satisfiable db' q' = Cq_naive.is_satisfiable db q)

let test_bounded_vars_repeated_and_constants () =
  let db = Parser.parse_facts "e(1, 1). e(1, 2)." in
  let q = Parser.parse_cq "goal :- e(X, X), e(X, 2)." in
  let q', db' = Bounded_vars.reduce db q in
  Alcotest.(check bool) "equivalent" true
    (Cq_naive.is_satisfiable db' q' = Cq_naive.is_satisfiable db q);
  (* R_{X} is the intersection of instantiations from both atoms *)
  Alcotest.(check int) "one atom" 1 (List.length q'.Cq.body)

(* ------------------------------------------------------------------ *)
(* Union of CQs -> clique (footnote 2) *)

let test_cqs_to_clique_padding () =
  let db = Parser.parse_facts "e(1, 2). u(7)." in
  (* satisfiable, but with only 1 atom: needs padding up to k = 2 *)
  let q1 = Parser.parse_cq "goal :- e(X, Y)." in
  (* unsatisfiable 2-atom disjunct: u holds only of 7 *)
  let q2 = Parser.parse_cq "goal :- u(1), e(X, Y)." in
  let g, k = Cqs_to_clique.reduce db [ q1; q2 ] in
  Alcotest.(check int) "k = max atoms" 2 k;
  Alcotest.(check bool) "union satisfiable via padded disjunct" true
    (Graph.has_clique g k);
  (* sanity: the satisfiable disjunct alone, unpadded, has k1 = 1 *)
  let g1, k1 = Cqs_to_clique.disjunct_graph db q1 in
  Alcotest.(check int) "k1" 1 k1;
  Alcotest.(check bool) "1-clique" true (Graph.has_clique g1 k1)

let test_cqs_to_clique_all_unsat () =
  let db = Parser.parse_facts "e(1, 2)." in
  let q1 = Parser.parse_cq "goal :- e(X, X), e(X, 9)." in
  let q2 = Parser.parse_cq "goal :- e(9, X), e(X, 9)." in
  let g, k = Cqs_to_clique.reduce db [ q1; q2 ] in
  Alcotest.(check bool) "no clique" false (Graph.has_clique g k)

(* ------------------------------------------------------------------ *)
(* Weighted formula <-> positive queries *)

let test_wformula_query_uses_k_vars () =
  let phi = Formula.(conj [ var 0; neg (var 1) ]) in
  let fo, _ = Wformula_to_positive.reduce phi ~k:3 in
  Alcotest.(check int) "v = k" 3 (Fo.num_vars fo);
  Alcotest.(check bool) "positive" true (Fo.is_positive fo);
  Alcotest.(check bool) "sentence" true (Fo.is_sentence fo)

let test_wformula_known () =
  (* phi = x0 & !x1: weight-1 yes (x0), weight-2 no over 2 vars *)
  let phi = Formula.(conj [ var 0; neg (var 1) ]) in
  let fo1, db1 = Wformula_to_positive.reduce phi ~k:1 in
  Alcotest.(check bool) "k=1" true (Fo_naive.sentence_holds db1 fo1);
  let fo2, db2 = Wformula_to_positive.reduce phi ~k:2 in
  Alcotest.(check bool) "k=2" false (Fo_naive.sentence_holds db2 fo2);
  (* with a padding variable, weight 2 becomes possible *)
  let fo3, db3 = Wformula_to_positive.reduce ~n_vars:3 phi ~k:2 in
  Alcotest.(check bool) "k=2 padded" true (Fo_naive.sentence_holds db3 fo3)

let test_positive_to_wformula_known () =
  let db = Parser.parse_facts "e(1, 2). e(2, 3)." in
  let f = Parser.parse_fo "exists X Y Z. (e(X, Y) & e(Y, Z))" in
  let lab = Positive_to_wformula.reduce db f in
  Alcotest.(check int) "k = 3" 3 lab.Positive_to_wformula.k;
  Alcotest.(check bool) "satisfiable at weight k" true
    (Formula.weighted_sat_exists
       ~n_vars:(Array.length lab.Positive_to_wformula.z)
       lab.Positive_to_wformula.formula lab.Positive_to_wformula.k)

let test_positive_to_wformula_guards () =
  let db = Parser.parse_facts "e(1, 2)." in
  Alcotest.(check bool) "rejects negation" true
    (try ignore (Positive_to_wformula.reduce db (Parser.parse_fo "!e(1, 2)")); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "rejects open" true
    (try ignore (Positive_to_wformula.reduce db (Parser.parse_fo "e(X, 2)")); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Monotone circuit -> FO (Theorem 1, first-order rows) *)

let and_or_circuit () =
  (* (x0 | x1) & (x2 | x3) *)
  Circuit.make ~n_inputs:4
    [|
      Circuit.G_input 0; Circuit.G_input 1; Circuit.G_input 2; Circuit.G_input 3;
      Circuit.G_or [ 0; 1 ]; Circuit.G_or [ 2; 3 ]; Circuit.G_and [ 4; 5 ];
    |]
    ~output:6

let test_normalize_alternates () =
  let nz = Circuit_to_fo.normalize (and_or_circuit ()) in
  let c = nz.Circuit_to_fo.circuit in
  Alcotest.(check bool) "monotone" true (Circuit.is_monotone c);
  (* output is an OR at even level 2t *)
  let levels = Circuit.levels c in
  Alcotest.(check int) "output level even" 0 (levels.(c.Circuit.output) mod 2);
  Alcotest.(check int) "t" (levels.(c.Circuit.output) / 2) nz.Circuit_to_fo.t;
  (* wires span exactly one level; OR at even, AND at odd *)
  Array.iteri
    (fun id gate ->
      match gate with
      | Circuit.G_and js ->
          Alcotest.(check int) "and odd" 1 (levels.(id) mod 2);
          List.iter (fun j -> Alcotest.(check int) "span" (levels.(id) - 1) levels.(j)) js
      | Circuit.G_or js ->
          Alcotest.(check int) "or even" 0 (levels.(id) mod 2);
          List.iter (fun j -> Alcotest.(check int) "span" (levels.(id) - 1) levels.(j)) js
      | _ -> ())
    c.Circuit.gates;
  (* normalization preserves the function *)
  Seq.iter
    (fun a ->
      Alcotest.(check bool) "same function" (Circuit.eval (and_or_circuit ()) a)
        (Circuit.eval c a))
    (Circuit.weight_k_assignments 4 2)

let test_circuit_to_fo_query_shape () =
  let nz = Circuit_to_fo.normalize (and_or_circuit ()) in
  let fo = Circuit_to_fo.query nz ~k:2 in
  Alcotest.(check int) "k + 2 variables" 4 (Fo.num_vars fo);
  Alcotest.(check bool) "sentence" true (Fo.is_sentence fo);
  Alcotest.(check bool) "not positive (forall/neg)" false (Fo.is_positive fo)

let test_circuit_to_fo_known () =
  let c = and_or_circuit () in
  (* weight 2 satisfiable (one from each side) *)
  let fo2, db2 = Circuit_to_fo.reduce c ~k:2 in
  Alcotest.(check bool) "k=2 true" true (Fo_naive.sentence_holds db2 fo2);
  (* weight 1 cannot satisfy the AND of two ORs *)
  let fo1, db1 = Circuit_to_fo.reduce c ~k:1 in
  Alcotest.(check bool) "k=1 false" false (Fo_naive.sentence_holds db1 fo1)

let test_circuit_to_fo_duplicate_inputs () =
  (* two gates reading the same variable must be merged *)
  let c =
    Circuit.make ~n_inputs:2
      [|
        Circuit.G_input 0; Circuit.G_input 0; Circuit.G_input 1;
        Circuit.G_and [ 0; 1; 2 ];
      |]
      ~output:3
  in
  let fo, db = Circuit_to_fo.reduce c ~k:2 in
  Alcotest.(check bool) "weight 2 satisfies" true (Fo_naive.sentence_holds db fo)

let test_circuit_to_fo_guards () =
  let non_monotone =
    Circuit.make ~n_inputs:1 [| Circuit.G_input 0; Circuit.G_not 0 |] ~output:1
  in
  Alcotest.(check bool) "rejects non-monotone" true
    (try ignore (Circuit_to_fo.reduce non_monotone ~k:1); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Theorem 3: clique -> acyclic with comparisons *)

let test_encode_injective () =
  let n = 5 in
  let seen = Hashtbl.create 64 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      for b = 0 to 1 do
        let v = Clique_to_comparisons.encode ~n ~i ~j ~b in
        Alcotest.(check bool) "fresh" false (Hashtbl.mem seen v);
        Hashtbl.add seen v ()
      done
    done
  done

let test_t3_query_is_acyclic () =
  let q = Clique_to_comparisons.query ~n:4 ~k:3 in
  Alcotest.(check bool) "relational hypergraph acyclic" true
    (Paradb_hypergraph.Hypergraph.is_acyclic
       (Paradb_hypergraph.Hypergraph.of_cq q));
  Alcotest.(check bool) "consistent comparisons" true
    (Paradb_core.Comparisons.preprocess q <> Paradb_core.Comparisons.Inconsistent);
  (* only strict comparisons *)
  List.iter
    (fun c -> Alcotest.(check bool) "strict" true (c.Constr.op = Constr.Lt))
    q.Cq.constraints

let test_t3_known_graphs () =
  let tri = Graph.cycle_graph 3 in
  let q, db = Clique_to_comparisons.reduce tri ~k:3 in
  Alcotest.(check bool) "triangle" true (Cq_naive.is_satisfiable db q);
  let square = Graph.cycle_graph 4 in
  let q2, db2 = Clique_to_comparisons.reduce square ~k:3 in
  Alcotest.(check bool) "square has none" false (Cq_naive.is_satisfiable db2 q2)

(* ------------------------------------------------------------------ *)
(* Hamiltonian path -> acyclic + neq *)

let test_hamiltonian_known () =
  let path = Graph.path_graph 4 in
  let q, db = Hamiltonian_to_neq.reduce path in
  Alcotest.(check bool) "path graph" true (Paradb_core.Engine.is_satisfiable db q);
  let star = Graph.of_edges 4 [ (0, 1); (0, 2); (0, 3) ] in
  let q2, db2 = Hamiltonian_to_neq.reduce star in
  Alcotest.(check bool) "star" false (Paradb_core.Engine.is_satisfiable db2 q2)

let test_hamiltonian_query_size () =
  (* the query grows with the graph: combined complexity regime *)
  let q4 = Hamiltonian_to_neq.query ~n:4 and q8 = Hamiltonian_to_neq.query ~n:8 in
  Alcotest.(check bool) "query grows" true (Cq.size q8 > 2 * Cq.size q4)

(* ------------------------------------------------------------------ *)
(* AW classes: alternating quantification (Section 4) *)

module A = Paradb_wsat.Alternating

let test_alternating_to_fo_known () =
  (* (x0 | x1) & (x2 | x3), E{x0,x1} w=1 then A{x2,x3} w=1:
     whatever the forall picks on the right OR, it is satisfied; the
     exists must pick one of the left -> true *)
  let c = and_or_circuit () in
  let blocks =
    [ { A.quantifier = A.Q_exists; vars = [ 0; 1 ]; weight = 1 };
      { A.quantifier = A.Q_forall; vars = [ 2; 3 ]; weight = 1 } ]
  in
  let expected = A.holds_circuit c blocks in
  Alcotest.(check bool) "game value" true expected;
  let fo, db = Alternating_to_fo.reduce c blocks in
  Alcotest.(check bool) "reduction agrees" expected
    (Fo_naive.sentence_holds db fo);
  (* forall over an AND leg that can be starved *)
  let c2 =
    Circuit.make ~n_inputs:3
      [| Circuit.G_input 0; Circuit.G_input 1; Circuit.G_input 2;
         Circuit.G_and [ 0; 1 ] |]
      ~output:3
  in
  let blocks2 =
    [ { A.quantifier = A.Q_forall; vars = [ 0; 1; 2 ]; weight = 2 } ]
  in
  let expected2 = A.holds_circuit c2 blocks2 in
  Alcotest.(check bool) "starved and" false expected2;
  let fo2, db2 = Alternating_to_fo.reduce c2 blocks2 in
  Alcotest.(check bool) "reduction agrees 2" expected2
    (Fo_naive.sentence_holds db2 fo2)

let test_alternating_to_fo_guards () =
  let non_monotone =
    Circuit.make ~n_inputs:1 [| Circuit.G_input 0; Circuit.G_not 0 |] ~output:1
  in
  Alcotest.(check bool) "monotone required" true
    (try
       ignore
         (Alternating_to_fo.reduce non_monotone
            [ { A.quantifier = A.Q_exists; vars = [ 0 ]; weight = 1 } ]);
       false
     with Invalid_argument _ -> true)

let test_fo_to_awsat_known () =
  let db = Parser.parse_facts "e(1, 2). e(2, 3)." in
  let checks =
    [ ("forall X. exists Y. e(X, Y)", false) (* 3 has no successor *);
      ("exists X. forall Y. !e(Y, X)", true) (* 1 has no predecessor *);
      ("exists X Y. (e(X, Y) & !(X = Y))", true);
      ("forall X. (e(X, X) -> false)", true) ]
  in
  List.iter
    (fun (text, expected) ->
      let f = Parser.parse_fo text in
      Alcotest.(check bool) text expected (Fo_naive.sentence_holds db f);
      let lab = Fo_to_awsat.reduce db f in
      Alcotest.(check bool) (text ^ " via awsat") expected (Fo_to_awsat.holds lab);
      Alcotest.(check int) (text ^ " parameter")
        (List.length (fst (Fo.prenex f)))
        (A.parameter lab.Fo_to_awsat.blocks))
    checks

let test_dominating_known () =
  let star = Graph.of_edges 5 [ (0, 1); (0, 2); (0, 3); (0, 4) ] in
  let fo1, db1 = Dominating_to_fo.reduce star ~k:1 in
  Alcotest.(check bool) "star center dominates" true
    (Fo_naive.sentence_holds db1 fo1);
  let p5 = Graph.path_graph 5 in
  let fo, db = Dominating_to_fo.reduce p5 ~k:1 in
  Alcotest.(check bool) "path needs 2" false (Fo_naive.sentence_holds db fo);
  let fo2, db2 = Dominating_to_fo.reduce p5 ~k:2 in
  Alcotest.(check bool) "2 suffice" true (Fo_naive.sentence_holds db2 fo2);
  (* v = k + 1 *)
  Alcotest.(check int) "variables" 3 (Fo.num_vars fo2);
  (* isolated vertices must be dominated by being chosen *)
  let isolated = Graph.create 3 in
  let fo3, db3 = Dominating_to_fo.reduce isolated ~k:2 in
  Alcotest.(check bool) "3 isolated need 3" false (Fo_naive.sentence_holds db3 fo3);
  let fo4, db4 = Dominating_to_fo.reduce isolated ~k:3 in
  Alcotest.(check bool) "3 cover" true (Fo_naive.sentence_holds db4 fo4)

(* ------------------------------------------------------------------ *)
(* Figure 1's schema axis: encoding into a fixed schema *)

let test_fixed_schema_known () =
  let db = Parser.parse_facts "e(1, 2). e(2, 3). u(2)." in
  let q = Parser.parse_cq "ans(X) :- e(X, Y), u(Y), X != Y." in
  let q', db' = Fixed_schema.reduce db q in
  Alcotest.(check (list string)) "fixed schema" [ "cell"; "tup" ]
    (Database.names db');
  Alcotest.(check bool) "equivalent" true
    (Relation.set_equal (Cq_naive.evaluate db' q') (Cq_naive.evaluate db q));
  (* atoms grow linearly: 1 tup + arity cells per original atom *)
  Alcotest.(check int) "rewritten atoms" (1 + 2 + 1 + 1)
    (List.length q'.Cq.body);
  (* one fresh variable per atom *)
  Alcotest.(check int) "vars" (Cq.num_vars q + 2) (Cq.num_vars q')

let test_fixed_schema_zero_arity () =
  let db = Parser.parse_facts "flag. e(1, 1)." in
  let q = Parser.parse_cq "goal :- flag, e(X, X)." in
  let q', db' = Fixed_schema.reduce db q in
  Alcotest.(check bool) "0-ary preserved" true
    (Cq_naive.is_satisfiable db' q' = Cq_naive.is_satisfiable db q)

(* ------------------------------------------------------------------ *)
(* Properties: instance-level equivalence on random inputs *)

let qcheck_tests =
  [
    Qgen.seeded_property ~name:"clique->cq equivalence" ~count:60 (fun rng ->
        let n = 4 + Random.State.int rng 4 in
        let g = Graph.gnp rng n 0.5 in
        let k = 2 + Random.State.int rng 2 in
        let q, db = Clique_to_cq.reduce g ~k in
        Cq_naive.is_satisfiable db q = Graph.has_clique g k);
    Qgen.seeded_property ~name:"cq->weighted-2cnf equivalence" ~count:50
      (fun rng ->
        let g = Graph.gnp rng 6 0.5 in
        let q, db = Clique_to_cq.reduce g ~k:3 in
        let lab = Cq_to_wsat.reduce db q in
        (Cnf.weighted_sat_neg2cnf lab.Cq_to_wsat.cnf lab.Cq_to_wsat.k <> None)
        = Cq_naive.is_satisfiable db q);
    Qgen.seeded_property ~name:"bounded-vars rewrite equivalence" ~count:60
      (fun rng ->
        let db = Qgen.tree_cq_database rng ~max_arity:3 ~domain_size:4 ~tuples:8 in
        let q0 =
          Qgen.random_tree_cq rng ~max_atoms:4 ~max_arity:3 ~neq_tries:0
            ~domain_size:4
        in
        let q = Cq.make ~name:q0.Cq.name ~head:[] q0.Cq.body in
        let q', db' = Bounded_vars.reduce db q in
        Cq_naive.is_satisfiable db' q' = Cq_naive.is_satisfiable db q);
    Qgen.seeded_property ~name:"positive query -> clique via footnote 2"
      ~count:40 (fun rng ->
        let db =
          Qgen.random_database rng ~schema:[ ("r1", 1); ("r2", 2) ]
            ~domain_size:3 ~tuples:5
        in
        let f =
          Qgen.random_positive_sentence rng ~relations:[ ("r1", 1); ("r2", 2) ]
            ~domain_size:3 ~depth:2
        in
        let cqs = Fo.positive_to_cqs f in
        let g, k = Cqs_to_clique.reduce db cqs in
        Graph.has_clique g k = Fo_naive.sentence_holds db f);
    Qgen.seeded_property ~name:"wformula->positive equivalence" ~count:50
      (fun rng ->
        let nv = 2 + Random.State.int rng 3 in
        let phi = Formula.random rng ~n_vars:nv ~depth:2 in
        let k = Random.State.int rng (nv + 1) in
        let fo, db = Wformula_to_positive.reduce ~n_vars:nv phi ~k in
        Fo_naive.sentence_holds db fo
        = Formula.weighted_sat_exists ~n_vars:nv phi k);
    Qgen.seeded_property ~name:"positive->wformula equivalence" ~count:40
      (fun rng ->
        let db =
          Qgen.random_database rng ~schema:[ ("r1", 1); ("r2", 2) ]
            ~domain_size:3 ~tuples:5
        in
        let f =
          Qgen.random_positive_sentence rng ~relations:[ ("r1", 1); ("r2", 2) ]
            ~domain_size:3 ~depth:2
        in
        let lab = Positive_to_wformula.reduce db f in
        Formula.weighted_sat_exists
          ~n_vars:(Array.length lab.Positive_to_wformula.z)
          lab.Positive_to_wformula.formula lab.Positive_to_wformula.k
        = Fo_naive.sentence_holds db f);
    Qgen.seeded_property ~name:"circuit->fo equivalence" ~count:30 (fun rng ->
        let n_inputs = 3 + Random.State.int rng 2 in
        let c = Qgen.random_monotone_circuit rng ~n_inputs ~n_gates:5 in
        let k = 1 + Random.State.int rng (n_inputs - 1) in
        let fo, db = Circuit_to_fo.reduce c ~k in
        Fo_naive.sentence_holds db fo = Circuit.weighted_sat_exists c k);
    Qgen.seeded_property ~name:"clique->comparisons equivalence" ~count:25
      (fun rng ->
        let n = 4 + Random.State.int rng 2 in
        let g = Graph.gnp rng n 0.6 in
        let k = 2 + Random.State.int rng 2 in
        let q, db = Clique_to_comparisons.reduce g ~k in
        Cq_naive.is_satisfiable db q = Graph.has_clique g k);
    Qgen.seeded_property ~name:"alternating circuit -> fo equivalence" ~count:40
      (fun rng ->
        let n_inputs = 4 in
        let c = Qgen.random_monotone_circuit rng ~n_inputs ~n_gates:4 in
        let split = 1 + Random.State.int rng 3 in
        let left = List.init split Fun.id in
        let right =
          List.filter (fun v -> v >= split) (List.init n_inputs Fun.id)
        in
        let quant () =
          if Random.State.bool rng then A.Q_exists else A.Q_forall
        in
        let blocks =
          List.filter
            (fun b -> b.A.vars <> [])
            [ { A.quantifier = quant (); vars = left;
                weight = Random.State.int rng (List.length left + 1) };
              { A.quantifier = quant (); vars = right;
                weight =
                  (if right = [] then 0
                   else Random.State.int rng (List.length right + 1)) } ]
        in
        let expected = A.holds_circuit c blocks in
        let fo, db = Alternating_to_fo.reduce c blocks in
        Fo_naive.sentence_holds db fo = expected);
    Qgen.seeded_property ~name:"prenex fo -> awsat equivalence" ~count:40
      (fun rng ->
        let db =
          Qgen.random_database rng ~schema:[ ("r1", 1); ("r2", 2) ]
            ~domain_size:3 ~tuples:5
        in
        (* random prenex sentence: 2 quantifiers over a small matrix *)
        let v1 = "y1" and v2 = "y2" in
        let atom () =
          match Random.State.int rng 3 with
          | 0 -> Fo.atom "r2" [ Term.var v1; Term.var v2 ]
          | 1 -> Fo.atom "r1" [ Term.var (if Random.State.bool rng then v1 else v2) ]
          | _ -> Fo.eq (Term.var v1) (Term.var v2)
        in
        let lit () =
          let a = atom () in
          if Random.State.bool rng then Fo.neg a else a
        in
        let matrix =
          if Random.State.bool rng then Fo.conj [ lit (); lit () ]
          else Fo.disj [ lit (); lit () ]
        in
        let wrap v body =
          if Random.State.bool rng then Fo.exists [ v ] body
          else Fo.forall [ v ] body
        in
        let sentence = wrap v1 (wrap v2 matrix) in
        let lab = Fo_to_awsat.reduce db sentence in
        Fo_to_awsat.holds lab = Fo_naive.sentence_holds db sentence);
    Qgen.seeded_property ~name:"dominating-set reduction equivalence" ~count:40
      (fun rng ->
        let n = 3 + Random.State.int rng 4 in
        let g = Graph.gnp rng n 0.35 in
        let k = 1 + Random.State.int rng 2 in
        let fo, db = Dominating_to_fo.reduce g ~k in
        Fo_naive.sentence_holds db fo = Graph.has_dominating_set g k);
    Qgen.seeded_property ~name:"fixed-schema rewrite equivalence" ~count:60
      (fun rng ->
        let db = Qgen.tree_cq_database rng ~max_arity:3 ~domain_size:4 ~tuples:8 in
        let q =
          Qgen.random_tree_cq rng ~max_atoms:3 ~max_arity:3 ~neq_tries:2
            ~domain_size:4
        in
        let q', db' = Fixed_schema.reduce db q in
        Relation.set_equal (Cq_naive.evaluate db' q') (Cq_naive.evaluate db q));
    Qgen.seeded_property ~name:"hamiltonian equivalence" ~count:30 (fun rng ->
        let n = 3 + Random.State.int rng 3 in
        let g = Graph.gnp rng n 0.5 in
        let q, db = Hamiltonian_to_neq.reduce g in
        Paradb_core.Engine.is_satisfiable db q
        = (Graph.hamiltonian_path g <> None));
    (* Source ≡ target *round trips*: the reduced instance answered by
       the engine the theorem targets, checked against the graph-side
       ground truth AND the naive reference — both directions of the
       reduction exercised on every random graph. *)
    Qgen.seeded_property ~name:"clique->comparisons round trip" ~count:15
      (fun rng ->
        let n = 4 + Random.State.int rng 2 in
        let g = Graph.gnp rng n 0.6 in
        let k = 2 + Random.State.int rng 2 in
        let q, db = Clique_to_comparisons.reduce g ~k in
        let truth = Graph.has_clique g k in
        Paradb_core.Comparisons.is_satisfiable db q = truth
        && Cq_naive.is_satisfiable db q = truth);
    Qgen.seeded_property ~name:"hamiltonian->neq round trip" ~count:20
      (fun rng ->
        let n = 3 + Random.State.int rng 3 in
        let g = Graph.gnp rng n 0.5 in
        let q, db = Hamiltonian_to_neq.reduce g in
        let truth = Graph.hamiltonian_path g <> None in
        (* deterministic sweep and naive must both hit the truth; the
           Monte-Carlo family has one-sided error, so only its positive
           answers are binding *)
        let randomized =
          let k = Cq.num_vars q in
          Paradb_core.Engine.is_satisfiable
            ~family:
              (Paradb_core.Hashing.Random_trials
                 {
                   trials = Paradb_core.Hashing.default_trials ~c:3.0 ~k;
                   seed = 0xace;
                 })
            db q
        in
        Cq_naive.is_satisfiable db q = truth
        && Paradb_core.Engine.is_satisfiable db q = truth
        && (not randomized || truth));
  ]

let () =
  Alcotest.run "reductions"
    [
      ( "clique -> cq",
        [
          Alcotest.test_case "shape" `Quick test_clique_query_shape;
          Alcotest.test_case "known graphs" `Quick test_clique_known_graphs;
        ] );
      ( "cq -> weighted 2cnf",
        [
          Alcotest.test_case "shape" `Quick test_cq_to_wsat_shape;
          Alcotest.test_case "decode" `Quick test_cq_to_wsat_decode;
          Alcotest.test_case "guards" `Quick test_cq_to_wsat_guards;
        ] );
      ( "bounded vars",
        [
          Alcotest.test_case "size collapse" `Quick test_bounded_vars_size;
          Alcotest.test_case "constants/repeats" `Quick test_bounded_vars_repeated_and_constants;
        ] );
      ( "cqs -> clique",
        [
          Alcotest.test_case "padding" `Quick test_cqs_to_clique_padding;
          Alcotest.test_case "all unsat" `Quick test_cqs_to_clique_all_unsat;
        ] );
      ( "weighted formula <-> positive",
        [
          Alcotest.test_case "k variables" `Quick test_wformula_query_uses_k_vars;
          Alcotest.test_case "known formula" `Quick test_wformula_known;
          Alcotest.test_case "membership known" `Quick test_positive_to_wformula_known;
          Alcotest.test_case "membership guards" `Quick test_positive_to_wformula_guards;
        ] );
      ( "circuit -> fo",
        [
          Alcotest.test_case "normalization" `Quick test_normalize_alternates;
          Alcotest.test_case "query shape" `Quick test_circuit_to_fo_query_shape;
          Alcotest.test_case "known circuit" `Quick test_circuit_to_fo_known;
          Alcotest.test_case "duplicate inputs" `Quick test_circuit_to_fo_duplicate_inputs;
          Alcotest.test_case "guards" `Quick test_circuit_to_fo_guards;
        ] );
      ( "theorem 3",
        [
          Alcotest.test_case "encoding injective" `Quick test_encode_injective;
          Alcotest.test_case "acyclic query" `Quick test_t3_query_is_acyclic;
          Alcotest.test_case "known graphs" `Quick test_t3_known_graphs;
        ] );
      ( "alternating (AW)",
        [
          Alcotest.test_case "circuit game" `Quick test_alternating_to_fo_known;
          Alcotest.test_case "guards" `Quick test_alternating_to_fo_guards;
          Alcotest.test_case "prenex fo -> awsat" `Quick test_fo_to_awsat_known;
        ] );
      ( "dominating set (W[2])",
        [ Alcotest.test_case "known graphs" `Quick test_dominating_known ] );
      ( "fixed schema",
        [
          Alcotest.test_case "known" `Quick test_fixed_schema_known;
          Alcotest.test_case "0-ary" `Quick test_fixed_schema_zero_arity;
        ] );
      ( "hamiltonian",
        [
          Alcotest.test_case "known graphs" `Quick test_hamiltonian_known;
          Alcotest.test_case "query size" `Quick test_hamiltonian_query_size;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
