(* Resource governance and graceful degradation: cooperative budgets
   threaded through every engine, the server's limits (deadline, line
   length, row cap, idle timeout), fault injection, exception
   containment, and graceful shutdown — the failure model of DESIGN.md
   §11.  The acceptance criterion lives in [deadline acceptance]: a
   deadline-blowing query answers ERR within 2x its budget while a
   concurrent well-behaved connection gets bit-identical answers. *)

module Budget = Paradb_telemetry.Budget
module Env = Paradb_telemetry.Env
module Metrics = Paradb_telemetry.Metrics
module Guard = Paradb_server.Guard
module Fault = Paradb_server.Fault
module Protocol = Paradb_server.Protocol
module Plan = Paradb_server.Plan
module Plan_cache = Paradb_server.Plan_cache
module Session = Paradb_server.Session
module Server = Paradb_server.Server
module Client = Paradb_server.Client
module Engine = Paradb_core.Engine
open Paradb_query

let contains = Test_support.contains
let write_temp_facts text = Test_support.write_temp_facts ~prefix:"paradb_gov" text

let edge_db ~seed ~nodes ~edges =
  Paradb_workload.Generators.edge_database
    (Random.State.make [| seed |])
    ~nodes ~edges

(* A 4-cycle under the naive engine: quadratic-and-worse backtracking,
   the canonical way to blow any deadline. *)
let cycle4 = "ans(W, X, Y, Z) :- e(W, X), e(X, Y), e(Y, Z), e(Z, W)."

(* A budget that is already dead: every engine must fail fast at its
   first checkpoint, deterministically. *)
let cancelled_budget () =
  let b = Budget.start ~deadline_ns:3_600_000_000_000 in
  Budget.cancel b;
  b

let expect_exhausted name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Budget.Exhausted" name
  | exception Budget.Exhausted _ -> ()

(* ------------------------------------------------------------------ *)
(* Budget *)

let test_budget_basics () =
  let b = Budget.start ~deadline_ns:50_000_000 in
  Alcotest.(check bool) "fresh budget live" false (Budget.expired b);
  Budget.check b;
  Budget.poll (Some b);
  Budget.poll None;
  Alcotest.(check int) "budget_ns" 50_000_000 (Budget.budget_ns b);
  Alcotest.(check bool) "remaining positive" true (Budget.remaining_ns b > 0);
  Alcotest.(check bool) "elapsed sane" true (Budget.elapsed_ns b >= 0);
  Budget.cancel b;
  Alcotest.(check bool) "cancelled" true (Budget.is_cancelled b);
  Alcotest.(check bool) "cancel implies expired" true (Budget.expired b);
  expect_exhausted "cancelled check" (fun () -> Budget.check b);
  (match Budget.start ~deadline_ns:0 with
  | _ -> Alcotest.fail "deadline 0 must be rejected"
  | exception Invalid_argument _ -> ())

let test_budget_expiry () =
  let b = Budget.start ~deadline_ns:1_000_000 in
  Unix.sleepf 0.01;
  Alcotest.(check bool) "expired after sleeping past it" true (Budget.expired b);
  match Budget.check b with
  | () -> Alcotest.fail "expected Exhausted"
  | exception Budget.Exhausted { budget_ns; elapsed_ns } ->
      Alcotest.(check int) "budget recorded" 1_000_000 budget_ns;
      Alcotest.(check bool) "elapsed >= budget" true (elapsed_ns >= budget_ns)

(* Every engine observes a dead budget at its first checkpoint. *)
let test_budget_cancels_every_engine () =
  let db = edge_db ~seed:7 ~nodes:100 ~edges:400 in
  let q4 = Parser.parse_cq cycle4 in
  expect_exhausted "cq_naive" (fun () ->
      Paradb_eval.Cq_naive.evaluate ~budget:(cancelled_budget ()) db q4);
  let acyclic = Parser.parse_cq "ans(X, Y) :- e(X, Y)." in
  expect_exhausted "yannakakis" (fun () ->
      Paradb_yannakakis.Yannakakis.evaluate ~budget:(cancelled_budget ()) db
        acyclic);
  let neq = Parser.parse_cq "ans(X, Y) :- e(X, Y), X != Y." in
  expect_exhausted "fpt engine" (fun () ->
      Engine.evaluate ~budget:(cancelled_budget ()) db neq);
  (* the join keeps the naive fallback past its first 1024-probe
     checkpoint *)
  expect_exhausted "comparisons" (fun () ->
      Paradb_core.Comparisons.evaluate ~budget:(cancelled_budget ()) db
        (Parser.parse_cq "ans(X, Y) :- e(X, Z), e(Z, Y), X < Y."));
  let f =
    Fo.Exists ([ "Y" ], Fo.Rel (Atom.make "e" [ Term.var "X"; Term.var "Y" ]))
  in
  expect_exhausted "fo_naive" (fun () ->
      Paradb_eval.Fo_naive.evaluate ~budget:(cancelled_budget ()) db f
        ~head:[ "X" ]);
  let program =
    match
      Source.parse_program "t(X, Y) :- e(X, Y). t(X, Z) :- t(X, Y), e(Y, Z)."
        ~goal:"t"
    with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  expect_exhausted "datalog" (fun () ->
      Paradb_datalog.Engine.evaluate ~budget:(cancelled_budget ()) db program)

(* A live budget leaves results untouched: same answers as no budget. *)
let test_budget_transparent_when_unexercised () =
  let db = edge_db ~seed:11 ~nodes:30 ~edges:120 in
  let q = Parser.parse_cq "ans(X, Y) :- e(X, Z), e(Z, Y), X != Y." in
  let b = Budget.start ~deadline_ns:60_000_000_000 in
  let without = Engine.evaluate db q in
  let with_b = Engine.evaluate ~budget:b db q in
  Alcotest.(check (list string)) "identical relations"
    (Plan.sorted_tuples without) (Plan.sorted_tuples with_b)

(* ------------------------------------------------------------------ *)
(* Guard: bounded reader, backoff *)

let test_guard_reader () =
  let r, w = Unix.pipe ~cloexec:true () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
  @@ fun () ->
  let reader = Guard.reader ~max_line:10 r in
  let write s = ignore (Unix.write_substring w s 0 (String.length s)) in
  let expect_line want =
    match Guard.read_line reader with
    | Guard.Line s -> Alcotest.(check string) ("line " ^ want) want s
    | _ -> Alcotest.failf "expected Line %s" want
  in
  write "hello\nwor";
  expect_line "hello";
  (* a line split across reads is reassembled *)
  write "ld\n";
  expect_line "world";
  (* exactly max_line bytes is still legal *)
  write "0123456789\n";
  expect_line "0123456789";
  (* one byte over is Too_long — consumed through its newline, so the
     next request still parses *)
  write "0123456789X\nok\n";
  (match Guard.read_line reader with
  | Guard.Too_long -> ()
  | _ -> Alcotest.fail "expected Too_long");
  expect_line "ok";
  (* a very long line spanning many chunks is one Too_long event *)
  write (String.make 20000 'a' ^ "\nstill here\n");
  (match Guard.read_line reader with
  | Guard.Too_long -> ()
  | _ -> Alcotest.fail "expected Too_long for 20k line");
  expect_line "still here";
  (* NUL bytes are data, not terminators *)
  write "a\000b\n";
  expect_line "a\000b";
  Unix.close w;
  match Guard.read_line reader with
  | Guard.Closed -> ()
  | _ -> Alcotest.fail "expected Closed at EOF"

let test_guard_idle () =
  let a, b = Unix.socketpair ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.setsockopt_float a SO_RCVTIMEO 0.05;
  let reader = Guard.reader a in
  match Guard.read_line reader with
  | Guard.Idle -> ()
  | _ -> Alcotest.fail "expected Idle when SO_RCVTIMEO expires"

let test_accept_backoff () =
  Alcotest.(check bool) "starts small" true (Guard.accept_backoff 0 <= 0.011);
  Alcotest.(check bool) "monotone" true
    (Guard.accept_backoff 3 > Guard.accept_backoff 1);
  Alcotest.(check bool) "capped" true (Guard.accept_backoff 30 <= 1.0)

(* ------------------------------------------------------------------ *)
(* Fault configuration *)

let test_fault_config () =
  let c = Fault.parse [ ("short_read", 0.5); ("seed", 42.0) ] in
  Alcotest.(check bool) "parsed probability" true (c.Fault.short_read = 0.5);
  Alcotest.(check int) "parsed seed" 42 c.Fault.seed;
  Alcotest.(check bool) "others default" true
    (c.Fault.disconnect = 0.0 && c.Fault.raise_eval = 0.0);
  let invalid kvs =
    match Fault.parse kvs with
    | _ -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  invalid [ ("bogus", 1.0) ];
  invalid [ ("disconnect", 1.5) ];
  Alcotest.(check bool) "disabled by default" false (Fault.active ());
  Fault.set (Some { Fault.default with raise_eval = 1.0 });
  Alcotest.(check bool) "enabled after set" true (Fault.active ());
  (match Fault.injected_raise () with
  | () -> Alcotest.fail "expected Injected"
  | exception Fault.Injected _ -> ());
  Fault.set None;
  Alcotest.(check bool) "disabled after reset" false (Fault.active ());
  Fault.injected_raise ();
  (* env plumbing *)
  Unix.putenv "PARADB_FAULTS" "short_read:0.25,seed:3";
  (match Env.faults () with
  | Some [ ("short_read", p); ("seed", s) ] ->
      Alcotest.(check bool) "env pairs" true (p = 0.25 && s = 3.0)
  | _ -> Alcotest.fail "PARADB_FAULTS not parsed");
  Unix.putenv "PARADB_FAULTS" "short_read:lots";
  (match Env.faults () with
  | _ -> Alcotest.fail "malformed PARADB_FAULTS must be rejected"
  | exception Invalid_argument _ -> ());
  Unix.putenv "PARADB_FAULTS" "short_read:0"

(* ------------------------------------------------------------------ *)
(* Plan cache under failure *)

let test_cache_failed_build () =
  let cache = Plan_cache.create ~capacity:4 () in
  let failures = Metrics.counter "server.plan_cache.build_failures" in
  let before = Metrics.counter_value failures in
  (match Plan_cache.find_or_build cache ~key:"k" (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "expected the build failure to propagate"
  | exception Failure _ -> ());
  Alcotest.(check bool) "failed build never cached" false
    (Plan_cache.mem cache "k");
  Alcotest.(check int) "failure counted" (before + 1)
    (Metrics.counter_value failures);
  let plan = Plan.analyze Plan.Auto (Parser.parse_cq "ans(X) :- e(X, Y).") in
  let _, outcome = Plan_cache.find_or_build cache ~key:"k" (fun () -> plan) in
  Alcotest.(check bool) "retried as a miss" true (outcome = `Miss);
  let _, outcome =
    Plan_cache.find_or_build cache ~key:"k" (fun () -> failwith "never runs")
  in
  Alcotest.(check bool) "successful build cached" true (outcome = `Hit);
  let c = Plan_cache.counters cache in
  Alcotest.(check int) "misses include the failure" 2 c.Plan_cache.misses;
  Alcotest.(check int) "one hit" 1 c.Plan_cache.hits;
  Alcotest.(check int) "one entry" 1 c.Plan_cache.size

(* ------------------------------------------------------------------ *)
(* Session-level limits (no sockets) *)

let test_session_deadline () =
  let limits = { Guard.default_limits with Guard.deadline_ns = Some 1 } in
  let shared = Session.make_shared ~limits ~cache_capacity:4 () in
  let session = Session.create shared in
  let db = edge_db ~seed:5 ~nodes:100 ~edges:400 in
  let path = write_temp_facts (Fact_format.to_string db) in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let before = Metrics.counter_value (Metrics.counter "server.deadline_exceeded") in
  (match Option.get (fst (Session.handle_line session (Printf.sprintf "LOAD g %s" path))) with
  | Protocol.Ok_ _ -> ()
  | Protocol.Err e -> Alcotest.failf "LOAD: %s" e);
  (match
     Option.get
       (fst (Session.handle_line session (Printf.sprintf "EVAL g naive %s" cycle4)))
   with
  | Protocol.Err e ->
      Alcotest.(check bool) "names the deadline" true
        (contains e "deadline-exceeded")
  | Protocol.Ok_ _ -> Alcotest.fail "expected ERR deadline-exceeded");
  Alcotest.(check bool) "counter moved" true
    (Metrics.counter_value (Metrics.counter "server.deadline_exceeded") > before)

let test_session_truncation () =
  let limits = { Guard.default_limits with Guard.max_rows = Some 2 } in
  let shared = Session.make_shared ~limits ~cache_capacity:4 () in
  let session = Session.create shared in
  let path = write_temp_facts "e(1, 2). e(2, 3). e(3, 1). e(1, 3).\n" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  ignore (Session.handle_line session (Printf.sprintf "LOAD g %s" path));
  (match
     Option.get
       (fst (Session.handle_line session "EVAL g naive ans(X, Y) :- e(X, Y)."))
   with
  | Protocol.Ok_ { summary; payload } ->
      Alcotest.(check int) "payload truncated to max_rows" 2
        (List.length payload);
      Alcotest.(check bool) "summary keeps true cardinality" true
        (contains summary "rows=4");
      Alcotest.(check bool) "summary marks truncation" true
        (contains summary "truncated=true")
  | Protocol.Err e -> Alcotest.fail e);
  (* a result within the cap is untouched *)
  match
    Option.get (fst (Session.handle_line session "EVAL g naive ans(X) :- e(X, X)."))
  with
  | Protocol.Ok_ { summary; payload } ->
      Alcotest.(check bool) "no marker under the cap" false
        (contains summary "truncated");
      Alcotest.(check int) "payload complete" 0 (List.length payload)
  | Protocol.Err e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Protocol fuzz: arbitrary bytes never raise, never hang *)

let fuzz_lines =
  let open QCheck in
  let raw = Gen.(string_size ~gen:char (0 -- 300)) in
  let gen =
    Gen.oneof
      [
        raw;
        Gen.map (fun s -> "EVAL g auto " ^ s) raw;
        Gen.map (fun s -> "LOAD " ^ s) raw;
        Gen.map (fun s -> "FACT g " ^ s) raw;
        Gen.map (fun s -> String.sub ("METRICS" ^ s) 0 (min 7 (String.length s + 3))) raw;
        Gen.map (fun s -> s ^ String.make 100 '\000') raw;
      ]
  in
  make ~print:String.escaped gen

let test_protocol_fuzz =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:400 ~name:"hostile lines answer, never raise"
       fuzz_lines (fun line ->
         (match Protocol.parse_request line with
         | Ok _ | Error _ -> ());
         let shared = Session.make_shared ~cache_capacity:4 () in
         let session = Session.create shared in
         let skip =
           (* LOAD - reads stdin: valid, but not under fuzz *)
           match Protocol.parse_request line with
           | Ok (Protocol.Load { path = "-"; _ }) -> true
           | _ -> false
         in
         if not skip then begin
           match Session.handle_line session line with
           | ( (Some (Protocol.Ok_ _) | Some (Protocol.Err _) | None),
               (`Continue | `Quit) ) ->
               ()
         end;
         true))

(* ------------------------------------------------------------------ *)
(* Acceptance: a deadline-blowing query answers ERR within 2x its
   budget while a concurrent well-behaved connection is bit-identical *)

let test_deadline_acceptance () =
  Unix.putenv "PARADB_DOMAINS" "1";
  let db = edge_db ~seed:4242 ~nodes:1000 ~edges:6000 in
  let path = write_temp_facts (Fact_format.to_string db) in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let deadline_ms = 400 in
  let limits =
    { Guard.default_limits with Guard.deadline_ns = Some (deadline_ms * 1_000_000) }
  in
  let server = Server.start ~port:0 ~workers:4 ~limits ~cache_capacity:16 () in
  Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
  let port = Server.port server in
  Client.with_connection ~port (fun c ->
      match Client.request_line c (Printf.sprintf "LOAD g %s" path) with
      | Protocol.Ok_ _ -> ()
      | Protocol.Err e -> Alcotest.failf "LOAD: %s" e);
  let good = "ans(X) :- e(X, X)." in
  let expected =
    let q = Parser.parse_cq good in
    Plan.sorted_tuples (Plan.evaluate (Plan.analyze Plan.Yannakakis q) db q)
  in
  (* well-behaved witness, concurrent with the blowing query *)
  let witness =
    Domain.spawn (fun () ->
        Client.with_connection ~port (fun c ->
            List.init 5 (fun _ ->
                Client.request_line c
                  (Printf.sprintf "EVAL g yannakakis %s" good))))
  in
  let t0 = Unix.gettimeofday () in
  let response =
    Client.with_connection ~port (fun c ->
        Client.request_line c (Printf.sprintf "EVAL g naive %s" cycle4))
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  (match response with
  | Protocol.Err e ->
      Alcotest.(check bool) "ERR names the deadline" true
        (contains e "deadline-exceeded")
  | Protocol.Ok_ _ -> Alcotest.fail "expected ERR deadline-exceeded");
  Alcotest.(check bool)
    (Printf.sprintf "answered in %.3fs < 2x the %dms budget" elapsed deadline_ms)
    true
    (elapsed < 2.0 *. (float_of_int deadline_ms /. 1000.0));
  List.iter
    (function
      | Protocol.Ok_ { payload; _ } ->
          Alcotest.(check (list string)) "witness bit-identical" expected payload
      | Protocol.Err e -> Alcotest.failf "witness got ERR %s" e)
    (Domain.join witness);
  Alcotest.(check bool) "server.deadline_exceeded > 0" true
    (Metrics.counter_value (Metrics.counter "server.deadline_exceeded") > 0)

(* ------------------------------------------------------------------ *)
(* Exception containment: a raising dispatch answers ERR internal and
   the worker (and connection) survive *)

let test_internal_error_survival () =
  let server = Server.start ~port:0 ~workers:1 ~cache_capacity:4 () in
  Fun.protect
    ~finally:(fun () ->
      Fault.set None;
      Server.stop server)
  @@ fun () ->
  let port = Server.port server in
  let before = Metrics.counter_value (Metrics.counter "server.internal_errors") in
  Client.with_connection ~port (fun c ->
      Fault.set (Some { Fault.default with Fault.raise_eval = 1.0 });
      (match Client.request_line c "CHECK ans(X) :- e(X, Y)." with
      | Protocol.Err e ->
          Alcotest.(check bool) "ERR internal" true (contains e "internal")
      | Protocol.Ok_ _ -> Alcotest.fail "expected ERR internal");
      Fault.set None;
      (* same connection, same (single) worker: both survived *)
      match Client.request_line c "CHECK ans(X) :- e(X, Y)." with
      | Protocol.Ok_ _ -> ()
      | Protocol.Err e -> Alcotest.failf "connection died: %s" e);
  Alcotest.(check bool) "server.internal_errors counted" true
    (Metrics.counter_value (Metrics.counter "server.internal_errors") > before)

(* Oversized request lines answer ERR and the connection continues. *)
let test_oversize_line_over_the_wire () =
  let limits = { Guard.default_limits with Guard.max_line = 64 } in
  let server = Server.start ~port:0 ~workers:1 ~limits ~cache_capacity:4 () in
  Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
  let port = Server.port server in
  Client.with_connection ~port (fun c ->
      (match Client.request_line c (String.make 500 'x') with
      | Protocol.Err e ->
          Alcotest.(check bool) "ERR names the limit" true (contains e "exceeds")
      | Protocol.Ok_ _ -> Alcotest.fail "expected ERR for oversized line");
      match Client.request_line c "CHECK ans(X) :- e(X, Y)." with
      | Protocol.Ok_ _ -> ()
      | Protocol.Err e -> Alcotest.failf "connection died after oversize: %s" e)

(* Idle connections are reaped; the server stays serviceable. *)
let test_idle_timeout_over_the_wire () =
  let limits = { Guard.default_limits with Guard.idle_timeout = Some 0.1 } in
  let server = Server.start ~port:0 ~workers:1 ~limits ~cache_capacity:4 () in
  Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
  let port = Server.port server in
  let before = Metrics.counter_value (Metrics.counter "server.idle_closed") in
  let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
  Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port));
  (* say nothing; the server must hang up on us *)
  let buf = Bytes.create 256 in
  let rec drain () =
    match Unix.read fd buf 0 256 with
    | 0 -> ()
    | _ -> drain ()
    | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> ()
  in
  drain ();
  Unix.close fd;
  Alcotest.(check bool) "server.idle_closed counted" true
    (Metrics.counter_value (Metrics.counter "server.idle_closed") > before);
  (* the worker is back in accept *)
  Client.with_connection ~port (fun c ->
      match Client.request_line c "CHECK ans(X) :- e(X, Y)." with
      | Protocol.Ok_ _ -> ()
      | Protocol.Err e -> Alcotest.fail e)

(* ------------------------------------------------------------------ *)
(* Graceful shutdown: stop drains, then aborts stragglers, boundedly *)

let test_graceful_stop_aborts_stragglers () =
  let server = Server.start ~port:0 ~workers:2 ~cache_capacity:4 () in
  let port = Server.port server in
  let before = Metrics.counter_value (Metrics.counter "server.shutdown.aborted") in
  let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
  Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port));
  (* wait until a worker holds the connection *)
  let rec settle n =
    if Server.active_connections server = 0 && n > 0 then begin
      Unix.sleepf 0.01;
      settle (n - 1)
    end
  in
  settle 200;
  Alcotest.(check bool) "connection registered" true
    (Server.active_connections server > 0);
  let t0 = Unix.gettimeofday () in
  Server.stop ~grace:0.2 server;
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "stop returned in %.2fs despite the held connection" dt)
    true (dt < 5.0);
  Alcotest.(check int) "no connection left" 0 (Server.active_connections server);
  Alcotest.(check bool) "straggler counted as aborted" true
    (Metrics.counter_value (Metrics.counter "server.shutdown.aborted") > before);
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Chaos: hostile clients + fault injection; the pool stays live and
   well-behaved answers stay bit-identical *)

let test_chaos () =
  Unix.putenv "PARADB_DOMAINS" "1";
  let db = edge_db ~seed:99 ~nodes:800 ~edges:4000 in
  let path = write_temp_facts (Fact_format.to_string db) in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let limits =
    {
      Guard.deadline_ns = Some 150_000_000;
      max_line = 2048;
      max_rows = Some 10_000;
      idle_timeout = Some 1.0;
    }
  in
  let server = Server.start ~port:0 ~workers:4 ~limits ~cache_capacity:16 () in
  Fun.protect
    ~finally:(fun () ->
      Fault.set None;
      Server.stop ~grace:0.5 server)
  @@ fun () ->
  let port = Server.port server in
  (* load before the faults go live *)
  Client.with_connection ~port (fun c ->
      match Client.request_line c (Printf.sprintf "LOAD g %s" path) with
      | Protocol.Ok_ _ -> ()
      | Protocol.Err e -> Alcotest.failf "LOAD: %s" e);
  let good = "ans(X) :- e(X, X)." in
  let expected =
    let q = Parser.parse_cq good in
    Plan.sorted_tuples (Plan.evaluate (Plan.analyze Plan.Yannakakis q) db q)
  in
  Fault.set
    (Some
       {
         Fault.default with
         Fault.short_read = 0.2;
         write_delay = 0.05;
         disconnect = 0.05;
         raise_eval = 0.05;
         seed = 11;
       });
  let hostile id () =
    let rng = Random.State.make [| id; 0xbad |] in
    for _ = 1 to 12 do
      try
        let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port));
            let send s =
              ignore (Unix.write_substring fd s 0 (String.length s))
            in
            (match Random.State.int rng 4 with
            | 0 -> send (String.make 4000 'a' ^ "\n")
            | 1 ->
                (* garbage with no newline, then half-close *)
                send "EVAL g auto ans(X";
                Unix.shutdown fd SHUTDOWN_SEND
            | 2 -> send (Printf.sprintf "EVAL g naive %s\n" cycle4)
            | _ -> ());
            (* read a little, never to completion *)
            let buf = Bytes.create 128 in
            (try ignore (Unix.read fd buf 0 128)
             with Unix.Unix_error _ -> ()))
      with Unix.Unix_error _ | Sys_error _ -> ()
    done
  in
  let well_behaved () =
    let successes = ref 0 and mismatches = ref 0 in
    for _ = 1 to 20 do
      try
        Client.with_connection ~timeout:5.0 ~retries:3 ~port (fun c ->
            match
              Client.request_line c (Printf.sprintf "EVAL g yannakakis %s" good)
            with
            | Protocol.Ok_ { payload; _ } ->
                incr successes;
                if payload <> expected then incr mismatches
            | Protocol.Err _ ->
                (* injected raise_eval: an ERR, never a hang or crash *)
                ())
      with Failure _ | Unix.Unix_error _ | Sys_error _ ->
        (* injected disconnect mid-response *)
        ()
    done;
    (!successes, !mismatches)
  in
  let hostiles = Array.init 3 (fun id -> Domain.spawn (hostile id)) in
  let successes, mismatches = well_behaved () in
  Array.iter Domain.join hostiles;
  Fault.set None;
  Alcotest.(check int) "no corrupted answers under chaos" 0 mismatches;
  Alcotest.(check bool) "some well-behaved requests succeeded" true
    (successes > 0);
  (* post-storm, deterministically blow the deadline once *)
  (match
     Client.with_connection ~port (fun c ->
         Client.request_line c (Printf.sprintf "EVAL g naive %s" cycle4))
   with
  | Protocol.Err e ->
      Alcotest.(check bool) "deadline still enforced" true
        (contains e "deadline-exceeded")
  | Protocol.Ok_ _ -> Alcotest.fail "expected ERR deadline-exceeded");
  (* the pool is alive: METRICS answers and the counters moved *)
  Client.with_connection ~port (fun c ->
      match Client.request_line c "STATS" with
      | Protocol.Ok_ { payload; _ } ->
          let field name =
            List.find_map
              (fun l ->
                match String.split_on_char ' ' l with
                | [ k; v ] when k = name -> int_of_string_opt v
                | _ -> None)
              payload
          in
          Alcotest.(check bool) "deadline_exceeded in telemetry" true
            (match field "telemetry.server.deadline_exceeded" with
            | Some n -> n > 0
            | None -> false);
          Alcotest.(check bool) "faults were injected" true
            (match field "telemetry.server.faults.injected" with
            | Some n -> n > 0
            | None -> false)
      | Protocol.Err e -> Alcotest.failf "STATS after chaos: %s" e);
  Client.with_connection ~port (fun c ->
      match Client.request_line c "METRICS" with
      | Protocol.Ok_ _ -> ()
      | Protocol.Err e -> Alcotest.failf "METRICS after chaos: %s" e)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "governance"
    [
      ( "budget",
        [
          Alcotest.test_case "basics" `Quick test_budget_basics;
          Alcotest.test_case "expiry" `Quick test_budget_expiry;
          Alcotest.test_case "cancels every engine" `Quick
            test_budget_cancels_every_engine;
          Alcotest.test_case "transparent when unexercised" `Quick
            test_budget_transparent_when_unexercised;
        ] );
      ( "guard",
        [
          Alcotest.test_case "bounded line reader" `Quick test_guard_reader;
          Alcotest.test_case "idle detection" `Quick test_guard_idle;
          Alcotest.test_case "accept backoff" `Quick test_accept_backoff;
        ] );
      ("faults", [ Alcotest.test_case "config" `Quick test_fault_config ]);
      ( "plan cache",
        [ Alcotest.test_case "failed build" `Quick test_cache_failed_build ] );
      ( "session limits",
        [
          Alcotest.test_case "deadline" `Quick test_session_deadline;
          Alcotest.test_case "row truncation" `Quick test_session_truncation;
        ] );
      ("fuzz", [ test_protocol_fuzz ]);
      ( "server",
        [
          Alcotest.test_case "deadline acceptance" `Slow
            test_deadline_acceptance;
          Alcotest.test_case "internal error survival" `Quick
            test_internal_error_survival;
          Alcotest.test_case "oversize line" `Quick
            test_oversize_line_over_the_wire;
          Alcotest.test_case "idle timeout" `Quick
            test_idle_timeout_over_the_wire;
          Alcotest.test_case "graceful stop aborts stragglers" `Quick
            test_graceful_stop_aborts_stragglers;
          Alcotest.test_case "chaos" `Slow test_chaos;
        ] );
    ]
