(* The lib/cluster subsystem: consistent-hashing ring, hash
   partitioning, BULK framing, and the coordinator end-to-end — every
   answer compared bit-for-bit against a single-node server over the
   same facts, plus the failure paths (replica failover, clean ERR with
   no replica, admission control). *)

module Ring = Paradb_cluster.Ring
module Partition = Paradb_cluster.Partition
module Coordinator = Paradb_cluster.Coordinator
module Server = Paradb_server.Server
module Client = Paradb_server.Client
module Protocol = Paradb_server.Protocol
module Session = Paradb_server.Session
module Metrics = Paradb_telemetry.Metrics
module Relation = Paradb_relational.Relation
module Database = Paradb_relational.Database
module Tuple = Paradb_relational.Tuple
module Value = Paradb_relational.Value
module Source = Paradb_query.Source
module TSet = Paradb_relational.Tuple.Set

let contains hay sub =
  let nh = String.length hay and ns = String.length sub in
  let rec go i = i + ns <= nh && (String.sub hay i ns = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Ring *)

let test_ring_owner_range () =
  List.iter
    (fun shards ->
      let ring = Ring.create ~shards () in
      for i = 0 to 999 do
        let s = Ring.owner_of_value ring (Value.int (i * 7919)) in
        if s < 0 || s >= shards then
          Alcotest.failf "owner %d out of range for %d shards" s shards
      done)
    [ 1; 2; 3; 5; 8 ]

let test_ring_deterministic () =
  let a = Ring.create ~shards:4 () in
  let b = Ring.create ~shards:4 () in
  for i = 0 to 999 do
    List.iter
      (fun v ->
        Alcotest.(check int)
          "same owner across ring instances"
          (Ring.owner_of_value a v) (Ring.owner_of_value b v))
      [ Value.int i; Value.str (string_of_int i) ]
  done

let test_ring_balance () =
  let shards = 4 in
  let ring = Ring.create ~shards () in
  let counts = Array.make shards 0 in
  let n = 8000 in
  for i = 0 to n - 1 do
    let s = Ring.owner_of_value ring (Value.int i) in
    counts.(s) <- counts.(s) + 1
  done;
  Array.iteri
    (fun s c ->
      if c = 0 then Alcotest.failf "shard %d owns nothing" s;
      if c > n * 6 / 10 then
        Alcotest.failf "shard %d owns %d of %d values — no smoothing" s c n)
    counts

let test_ring_replica_placement () =
  let ring = Ring.create ~shards:3 () in
  Alcotest.(check int) "rank 0 is the shard itself" 1
    (Ring.replica_shard ring ~shard:1 ~rank:0);
  Alcotest.(check int) "rank 1 is the successor" 2
    (Ring.replica_shard ring ~shard:1 ~rank:1);
  Alcotest.(check int) "ranks wrap around" 0
    (Ring.replica_shard ring ~shard:2 ~rank:1)

let test_ring_value_tagging () =
  (* Int 1 and Str "1" must not alias: the hash tags the value kind. *)
  Alcotest.(check bool)
    "Int and Str never alias" false
    (Ring.hash_value (Value.int 1) = Ring.hash_value (Value.str "1"))

let test_ring_validation () =
  let rejects f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  rejects (fun () -> Ring.create ~shards:0 ());
  rejects (fun () -> Ring.create ~vnodes:0 ~shards:2 ())

(* ------------------------------------------------------------------ *)
(* Partition: the satellite property — for every arity and key
   position, the slices are pairwise disjoint and their union
   round-trips the relation. *)

let tuple_set r =
  List.fold_left
    (fun acc t -> TSet.add t acc)
    TSet.empty (Relation.tuples r)

let qcheck_partition_roundtrip =
  let open QCheck in
  let value_gen =
    Gen.oneof
      [
        Gen.map Value.int (Gen.int_range (-50) 50);
        Gen.map
          (fun i -> Value.str (Printf.sprintf "v%d" i))
          (Gen.int_range 0 20);
      ]
  in
  let case_gen =
    let open Gen in
    int_range 1 4 >>= fun arity ->
    int_range 0 (arity - 1) >>= fun key ->
    int_range 1 5 >>= fun shards ->
    list_size (int_range 0 40) (array_size (return arity) value_gen)
    >>= fun rows -> return (arity, key, shards, rows)
  in
  let print (arity, key, shards, rows) =
    Printf.sprintf "arity=%d key=%d shards=%d rows=[%s]" arity key shards
      (String.concat "; " (List.map Paradb_relational.Tuple.to_string rows))
  in
  Test.make ~count:200
    ~name:"split_relation: slices disjoint, union round-trips"
    (make ~print case_gen)
    (fun (arity, key, shards, rows) ->
      let schema = List.init arity (fun i -> Printf.sprintf "c%d" i) in
      let r = Relation.create ~name:"r" ~schema rows in
      let ring = Ring.create ~shards () in
      let slices = Partition.split_relation ring ~key r in
      if Array.length slices <> shards then
        Test.fail_reportf "expected %d slices, got %d" shards
          (Array.length slices);
      (* Pairwise disjoint. *)
      Array.iteri
        (fun i si ->
          Array.iteri
            (fun j sj ->
              if i < j then
                let inter = TSet.inter (tuple_set si) (tuple_set sj) in
                if not (TSet.is_empty inter) then
                  Test.fail_reportf "slices %d and %d overlap" i j)
            slices)
        slices;
      (* Union round-trips. *)
      let union =
        Array.fold_left
          (fun acc s -> TSet.union acc (tuple_set s))
          TSet.empty slices
      in
      if not (TSet.equal union (tuple_set r)) then
        Test.fail_reportf "union of slices differs from the relation";
      (* Placement follows the ring. *)
      Array.iteri
        (fun s slice ->
          Relation.iter
            (fun t ->
              if Ring.owner_of_value ring t.(key) <> s then
                Test.fail_reportf "row on shard %d but ring disagrees" s)
            slice)
        slices;
      true)

let test_partition_split_keeps_all_relations () =
  let db =
    Database.empty
    |> Database.add
         (Relation.create ~name:"e" ~schema:[ "a"; "b" ]
            (List.map Tuple.of_ints [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ] ]))
    |> Database.add
         (Relation.create ~name:"lonely" ~schema:[ "a" ]
            [ Tuple.of_ints [ 7 ] ])
  in
  let ring = Ring.create ~shards:3 () in
  let slices = Partition.split ring db in
  Array.iter
    (fun slice ->
      (* Every slice names every relation, empty or not — the
         coordinator relies on this to treat missing-on-shard as an
         empty contribution. *)
      List.iter
        (fun name ->
          match Database.find_opt slice name with
          | Some _ -> ()
          | None -> Alcotest.failf "slice lost relation %s" name)
        [ "e"; "lonely" ])
    slices;
  let total =
    Array.fold_left
      (fun acc slice ->
        acc
        + Relation.cardinality (Option.get (Database.find_opt slice "e")))
      0 slices
  in
  Alcotest.(check int) "e rows conserved" 3 total

(* ------------------------------------------------------------------ *)
(* BULK framing through the session state machine *)

let test_bulk_framing () =
  let shared = Session.make_shared ~cache_capacity:4 () in
  let s = Session.create shared in
  let expect_silent line =
    match Session.handle_line s line with
    | None, `Continue -> ()
    | Some _, _ -> Alcotest.failf "%s: expected no response mid-BULK" line
    | None, `Quit -> Alcotest.failf "%s: unexpected quit" line
  in
  let expect_ok line =
    match Session.handle_line s line with
    | Some (Protocol.Ok_ { summary; _ }), `Continue -> summary
    | Some (Protocol.Err e), _ -> Alcotest.failf "%s: ERR %s" line e
    | _ -> Alcotest.failf "%s: expected a response" line
  in
  expect_silent "BULK g 3";
  expect_silent "e(1, 2).";
  expect_silent "e(2, 3).";
  let summary = expect_ok "e(1, 2)." in
  Alcotest.(check bool)
    ("batch summary: " ^ summary)
    true
    (String.length summary >= 4 && String.sub summary 0 4 = "bulk");
  (* Duplicate fact merged under set semantics: 2 tuples, queryable. *)
  (match Session.handle_line s "EVAL g auto ans(X, Y) :- e(X, Y)." with
  | Some (Protocol.Ok_ { payload; _ }), `Continue ->
      Alcotest.(check int) "rows after BULK" 2 (List.length payload)
  | _ -> Alcotest.fail "EVAL after BULK failed");
  (* A zero-count frame answers immediately. *)
  let summary = expect_ok "BULK g 0" in
  Alcotest.(check bool) "zero-count immediate" true
    (String.length summary >= 4 && String.sub summary 0 4 = "bulk")

(* ------------------------------------------------------------------ *)
(* Coordinator end-to-end *)

let with_servers n f =
  let servers =
    Array.init n (fun _ -> Server.start ~port:0 ~workers:1 ~cache_capacity:16 ())
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun s -> try Server.stop s with _ -> ()) servers)
    (fun () -> f servers)

let with_cluster ?(shards = 2) ?(replicas = 1) ?(tweak = fun c -> c) f =
  with_servers shards @@ fun shard_servers ->
  let addrs =
    Array.to_list
      (Array.map (fun s -> ("127.0.0.1", Server.port s)) shard_servers)
  in
  let coord =
    Coordinator.create (tweak { (Coordinator.default_config addrs) with replicas })
  in
  let front = Coordinator.serve coord ~port:0 ~workers:1 in
  Fun.protect ~finally:(fun () -> try Server.stop front with _ -> ())
  @@ fun () ->
  Client.with_connection ~timeout:30.0 ~retries:3 ~port:(Server.port front)
    (fun client -> f ~shard_servers ~client)

let facts =
  [
    "FACT g e(1, 2).";
    "FACT g e(1, 3).";
    "FACT g e(2, 3).";
    "FACT g e(3, 1).";
    "FACT g f(2, 10).";
    "FACT g f(3, 30).";
    "FACT g f(3, 31).";
  ]

let load_facts client =
  List.iter
    (fun line ->
      match Client.request_line client line with
      | Protocol.Ok_ _ -> ()
      | Protocol.Err e -> Alcotest.failf "%s: ERR %s" line e)
    facts

let queries =
  [
    (* scatter: every atom starts with X — co-partitioned *)
    "ans(X, Y) :- e(X, Y), e(X, Z), Y != Z.";
    (* exchange: join variable sits in different positions *)
    "ans(X, Z) :- e(X, Y), f(Y, Z).";
    (* constants and constraints *)
    "ans(Y) :- e(1, Y), Y < 3.";
    (* boolean *)
    "ans() :- e(X, Y), f(Y, Z).";
    (* empty answer *)
    "ans(X, Y) :- e(X, Y), X < Y, Y < X.";
    (* single atom, full scan *)
    "ans(A, B) :- f(A, B).";
  ]

let eval_on client q =
  match Client.request_line client ("EVAL g auto " ^ q) with
  | Protocol.Ok_ { payload; _ } -> Ok payload
  | Protocol.Err e -> Error e

let test_cluster_matches_single_node () =
  with_servers 1 @@ fun single ->
  Client.with_connection ~timeout:30.0 ~port:(Server.port single.(0))
  @@ fun single_client ->
  load_facts single_client;
  with_cluster ~shards:3 ~replicas:1 @@ fun ~shard_servers:_ ~client ->
  load_facts client;
  List.iter
    (fun q ->
      match (eval_on single_client q, eval_on client q) with
      | Ok expected, Ok got ->
          Alcotest.(check (list string)) ("payload: " ^ q) expected got
      | Error e, _ -> Alcotest.failf "%s: single-node ERR %s" q e
      | _, Error e -> Alcotest.failf "%s: cluster ERR %s" q e)
    queries

let test_cluster_load_file_matches_single_node () =
  let path = Filename.temp_file "paradb_test_cluster" ".facts" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with _ -> ())
  @@ fun () ->
  Out_channel.with_open_text path (fun oc ->
      output_string oc "e(1, 2). e(2, 3). e(3, 4). e(4, 1).\n";
      output_string oc "f(2, 20). f(4, 40). g(20).\n");
  let load client =
    match Client.request_line client ("LOAD g " ^ path) with
    | Protocol.Ok_ { summary; _ } -> summary
    | Protocol.Err e -> Alcotest.failf "LOAD: %s" e
  in
  with_servers 1 @@ fun single ->
  Client.with_connection ~timeout:30.0 ~port:(Server.port single.(0))
  @@ fun single_client ->
  ignore (load single_client);
  with_cluster ~shards:2 ~replicas:2 @@ fun ~shard_servers:_ ~client ->
  let summary = load client in
  Alcotest.(check bool)
    ("LOAD summary names shards: " ^ summary)
    true (contains summary "shards=2");
  List.iter
    (fun q ->
      match (eval_on single_client q, eval_on client q) with
      | Ok expected, Ok got ->
          Alcotest.(check (list string)) ("payload: " ^ q) expected got
      | Error e, _ -> Alcotest.failf "%s: single-node ERR %s" q e
      | _, Error e -> Alcotest.failf "%s: cluster ERR %s" q e)
    [
      "ans(X, Z) :- e(X, Y), e(Y, Z).";
      "ans(X, W) :- e(X, Y), f(Y, Z), g(Z), e(W, X).";
    ]

let test_cluster_gather_payload_parses () =
  with_cluster ~shards:2 @@ fun ~shard_servers:_ ~client ->
  load_facts client;
  match Client.request_line client "GATHER g ans(X, Y) :- e(X, Y)." with
  | Protocol.Err e -> Alcotest.failf "GATHER: %s" e
  | Protocol.Ok_ { payload; _ } -> (
      Alcotest.(check int) "gathered rows" 4 (List.length payload);
      match Source.parse_facts (String.concat "\n" payload) with
      | Error e -> Alcotest.failf "payload is not fact syntax: %s" e
      | Ok db -> (
          match Database.find_opt db "ans" with
          | Some r -> Alcotest.(check int) "parsed rows" 4 (Relation.cardinality r)
          | None -> Alcotest.fail "payload lost the head relation"))

let test_cluster_errors () =
  with_cluster ~shards:2 @@ fun ~shard_servers:_ ~client ->
  load_facts client;
  let expect_err line sub =
    match Client.request_line client line with
    | Protocol.Ok_ _ -> Alcotest.failf "%s: expected ERR" line
    | Protocol.Err e ->
        if not (contains e sub) then
          Alcotest.failf "%s: ERR %S lacks %S" line e sub
  in
  expect_err "EVAL nope auto ans(X) :- e(X, Y)." "no database";
  expect_err "EVAL g auto ans(X) :- r(X, Y)." "missing";
  expect_err "EVAL g frobnicate ans(X) :- e(X, Y)." "unknown engine";
  expect_err "EVAL g auto ans(X) :- e(X Y)." "parse"

let test_cluster_stats () =
  with_cluster ~shards:2 @@ fun ~shard_servers:_ ~client ->
  load_facts client;
  match Client.request_line client "STATS" with
  | Protocol.Err e -> Alcotest.failf "STATS: %s" e
  | Protocol.Ok_ { payload; _ } ->
      let has sub =
        if not (List.exists (fun l -> contains l sub) payload)
        then Alcotest.failf "STATS payload lacks %S" sub
      in
      has "cluster.shards 2";
      has "db.g 7";
      has "db.g.relations 2"

let test_cluster_admission_limit () =
  with_cluster ~shards:2 ~tweak:(fun c -> { c with max_inflight = Some 0 })
  @@ fun ~shard_servers:_ ~client ->
  load_facts client;
  match eval_on client "ans(X, Y) :- e(X, Y)." with
  | Ok _ -> Alcotest.fail "expected admission rejection"
  | Error e ->
      Alcotest.(check bool) ("admission error: " ^ e) true
        (contains e "admission-limited")

let test_cluster_failover () =
  let m_failover = Metrics.counter "cluster.failover" in
  with_cluster ~shards:2 ~replicas:2 @@ fun ~shard_servers ~client ->
  load_facts client;
  let q = "ans(X, Z) :- e(X, Y), f(Y, Z)." in
  let before =
    match eval_on client q with
    | Ok p -> p
    | Error e -> Alcotest.failf "pre-failure EVAL: %s" e
  in
  let failovers = Metrics.counter_value m_failover in
  Server.stop shard_servers.(1);
  (match eval_on client q with
  | Ok after ->
      Alcotest.(check (list string)) "answers survive a shard loss" before
        after
  | Error e -> Alcotest.failf "post-failure EVAL: %s" e);
  Alcotest.(check bool) "failover counted" true
    (Metrics.counter_value m_failover > failovers)

let count_on client q =
  match Client.request_line client ("COUNT g auto " ^ q) with
  | Protocol.Ok_ { payload; _ } -> Ok payload
  | Protocol.Err e -> Error e

(* COUNT payloads (one bare-count line) must be bit-identical to a
   single-node server's across both distribution strategies: the query
   list covers scatter (co-partitioned), exchange (misaligned join
   variable), constants, boolean heads, and empty answers. *)
let test_cluster_count_matches_single_node () =
  with_servers 1 @@ fun single ->
  Client.with_connection ~timeout:30.0 ~port:(Server.port single.(0))
  @@ fun single_client ->
  load_facts single_client;
  with_cluster ~shards:3 ~replicas:1 @@ fun ~shard_servers:_ ~client ->
  load_facts client;
  List.iter
    (fun q ->
      match (count_on single_client q, count_on client q) with
      | Ok expected, Ok got ->
          Alcotest.(check (list string)) ("count payload: " ^ q) expected got;
          (match got with
          | [ n ] ->
              if int_of_string_opt n = None then
                Alcotest.failf "%s: payload %S is not an int" q n
          | _ -> Alcotest.failf "%s: expected one payload line" q)
      | Error e, _ -> Alcotest.failf "%s: single-node ERR %s" q e
      | _, Error e -> Alcotest.failf "%s: cluster ERR %s" q e)
    queries

let test_cluster_count_rejects_fpt () =
  with_cluster ~shards:2 @@ fun ~shard_servers:_ ~client ->
  load_facts client;
  match Client.request_line client "COUNT g fpt ans(X, Y) :- e(X, Y)." with
  | Protocol.Ok_ _ -> Alcotest.fail "expected ERR for COUNT with fpt"
  | Protocol.Err e ->
      Alcotest.(check bool) ("fpt rejection: " ^ e) true
        (contains e "cannot count")

(* Shard loss with a surviving replica: COUNT fails over and keeps
   returning the pre-failure totals on both strategies. *)
let test_cluster_count_failover () =
  let m_failover = Metrics.counter "cluster.failover" in
  with_cluster ~shards:2 ~replicas:2 @@ fun ~shard_servers ~client ->
  load_facts client;
  let scatter_q = "ans(X, Y) :- e(X, Y), e(X, Z), Y != Z." in
  let exchange_q = "ans(X, Z) :- e(X, Y), f(Y, Z)." in
  let before q =
    match count_on client q with
    | Ok p -> p
    | Error e -> Alcotest.failf "pre-failure COUNT %s: %s" q e
  in
  let scatter_before = before scatter_q in
  let exchange_before = before exchange_q in
  let failovers = Metrics.counter_value m_failover in
  Server.stop shard_servers.(1);
  (match count_on client scatter_q with
  | Ok after ->
      Alcotest.(check (list string)) "scatter count survives a shard loss"
        scatter_before after
  | Error e -> Alcotest.failf "post-failure scatter COUNT: %s" e);
  (match count_on client exchange_q with
  | Ok after ->
      Alcotest.(check (list string)) "exchange count survives a shard loss"
        exchange_before after
  | Error e -> Alcotest.failf "post-failure exchange COUNT: %s" e);
  Alcotest.(check bool) "failover counted" true
    (Metrics.counter_value m_failover > failovers)

let test_cluster_shard_loss_without_replica () =
  with_cluster ~shards:2 ~replicas:1 @@ fun ~shard_servers ~client ->
  load_facts client;
  Server.stop shard_servers.(1);
  match eval_on client "ans(X, Y) :- e(X, Y)." with
  | Ok _ -> Alcotest.fail "expected a clean ERR with no replica left"
  | Error e ->
      Alcotest.(check bool) ("shard-down error: " ^ e) true
        (contains e "shard 1"
        && contains e "unreachable")

(* ------------------------------------------------------------------ *)
(* Replica self-healing: miss accounting, hinted handoff, REPAIR *)

(* Smallest non-negative int whose first-column placement is [shard],
   under the same ring parameters the coordinator uses. *)
let value_on_shard ~shards ~shard =
  let ring = Ring.create ~shards () in
  let rec go i =
    if i > 10_000 then Alcotest.fail "no value maps to the shard"
    else if Ring.owner_of_value ring (Value.int i) = shard then i
    else go (i + 1)
  in
  go 0

let request_ok client line =
  match Client.request_line client line with
  | Protocol.Ok_ { summary; payload } -> (summary, payload)
  | Protocol.Err e -> Alcotest.failf "%s: ERR %s" line e

(* A write whose primary is reachable succeeds even when the replica's
   shard is down — counted on cluster.write.replica_miss. *)
let test_cluster_replica_miss_counted () =
  let m_miss = Metrics.counter "cluster.write.replica_miss" in
  with_cluster ~shards:2 ~replicas:2 @@ fun ~shard_servers ~client ->
  Server.stop shard_servers.(1);
  let before = Metrics.counter_value m_miss in
  let v = value_on_shard ~shards:2 ~shard:0 in
  let summary, _ =
    request_ok client (Printf.sprintf "FACT g e(%d, 100)." v)
  in
  Alcotest.(check bool) ("fact acked: " ^ summary) true (contains summary "shard");
  Alcotest.(check bool) "replica miss counted" true
    (Metrics.counter_value m_miss > before)

(* With a hints dir, the missed replica write is journaled and replayed
   once the shard is back: DIGEST then sees identical replicas. *)
let test_cluster_hinted_handoff () =
  let m_journaled = Metrics.counter "cluster.hints.journaled" in
  let m_replayed = Metrics.counter "cluster.hints.replayed" in
  let hints_dir = Filename.temp_file "paradb_test_hints" "" in
  Sys.remove hints_dir;
  let rec remove_tree path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter
          (fun f -> remove_tree (Filename.concat path f))
          (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> remove_tree hints_dir) @@ fun () ->
  with_cluster ~shards:2 ~replicas:2
    ~tweak:(fun c -> { c with Coordinator.hints_dir = Some hints_dir })
  @@ fun ~shard_servers ~client ->
  let port1 = Server.port shard_servers.(1) in
  Server.stop shard_servers.(1);
  let v = value_on_shard ~shards:2 ~shard:0 in
  let journaled = Metrics.counter_value m_journaled in
  ignore (request_ok client (Printf.sprintf "FACT g e(%d, 100)." v));
  ignore (request_ok client (Printf.sprintf "FACT g e(%d, 200)." v));
  Alcotest.(check bool) "hints journaled" true
    (Metrics.counter_value m_journaled >= journaled + 2);
  (* the shard returns (same port, empty state is fine: it missed only
     these hinted writes) and the next write replays the journal first *)
  let revived = Server.start ~port:port1 ~workers:1 ~cache_capacity:16 () in
  Fun.protect ~finally:(fun () -> try Server.stop revived with _ -> ())
  @@ fun () ->
  let replayed = Metrics.counter_value m_replayed in
  ignore (request_ok client (Printf.sprintf "FACT g e(%d, 300)." v));
  Alcotest.(check bool) "hints replayed" true
    (Metrics.counter_value m_replayed >= replayed + 2);
  let summary, _ = request_ok client "DIGEST g" in
  Alcotest.(check bool)
    ("replicas converge after handoff: " ^ summary)
    true
    (contains summary "divergent=0")

(* Losing a shard's disk entirely (restart with empty state) diverges
   the replicas; DIGEST reports it and REPAIR re-ships the union of the
   readable ranks, after which DIGEST is clean and answers match the
   pre-crash ones. *)
let test_cluster_repair_converges () =
  let m_divergent = Metrics.counter "cluster.replica.divergent" in
  let m_reshipped = Metrics.counter "cluster.repair.reshipped" in
  with_cluster ~shards:2 ~replicas:2 @@ fun ~shard_servers ~client ->
  load_facts client;
  let q = "ans(X, Z) :- e(X, Y), f(Y, Z)." in
  let before =
    match eval_on client q with
    | Ok p -> p
    | Error e -> Alcotest.failf "pre-crash EVAL: %s" e
  in
  let port1 = Server.port shard_servers.(1) in
  Server.stop shard_servers.(1);
  let revived = Server.start ~port:port1 ~workers:1 ~cache_capacity:16 () in
  Fun.protect ~finally:(fun () -> try Server.stop revived with _ -> ())
  @@ fun () ->
  let divergent = Metrics.counter_value m_divergent in
  let summary, _ = request_ok client "DIGEST g" in
  Alcotest.(check bool)
    ("amnesiac shard detected: " ^ summary)
    true
    (not (contains summary "divergent=0"));
  Alcotest.(check bool) "divergence counted" true
    (Metrics.counter_value m_divergent > divergent);
  let reshipped = Metrics.counter_value m_reshipped in
  let summary, _ = request_ok client "REPAIR g" in
  Alcotest.(check bool)
    ("repair re-shipped: " ^ summary)
    true
    (contains summary "repaired" && Metrics.counter_value m_reshipped > reshipped);
  let summary, _ = request_ok client "DIGEST g" in
  Alcotest.(check bool)
    ("replicas converge after repair: " ^ summary)
    true
    (contains summary "divergent=0");
  match eval_on client q with
  | Ok after ->
      Alcotest.(check (list string)) "answers survive disk loss + repair"
        before after
  | Error e -> Alcotest.failf "post-repair EVAL: %s" e

let test_coordinator_validation () =
  let rejects config =
    match Coordinator.create config with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  rejects (Coordinator.default_config []);
  rejects
    { (Coordinator.default_config [ ("127.0.0.1", 1) ]) with replicas = 2 };
  rejects
    { (Coordinator.default_config [ ("127.0.0.1", 1) ]) with replicas = 0 }

let () =
  Alcotest.run "cluster"
    [
      ( "ring",
        [
          Alcotest.test_case "owner in range" `Quick test_ring_owner_range;
          Alcotest.test_case "deterministic" `Quick test_ring_deterministic;
          Alcotest.test_case "balanced" `Quick test_ring_balance;
          Alcotest.test_case "replica placement" `Quick
            test_ring_replica_placement;
          Alcotest.test_case "value tagging" `Quick test_ring_value_tagging;
          Alcotest.test_case "validation" `Quick test_ring_validation;
        ] );
      ( "partition",
        Alcotest.test_case "split keeps all relations" `Quick
          test_partition_split_keeps_all_relations
        :: List.map QCheck_alcotest.to_alcotest [ qcheck_partition_roundtrip ]
      );
      ("bulk", [ Alcotest.test_case "framing" `Quick test_bulk_framing ]);
      ( "coordinator",
        [
          Alcotest.test_case "matches single node (FACT)" `Quick
            test_cluster_matches_single_node;
          Alcotest.test_case "matches single node (LOAD)" `Quick
            test_cluster_load_file_matches_single_node;
          Alcotest.test_case "GATHER payload parses" `Quick
            test_cluster_gather_payload_parses;
          Alcotest.test_case "clean errors" `Quick test_cluster_errors;
          Alcotest.test_case "stats" `Quick test_cluster_stats;
          Alcotest.test_case "admission limit" `Quick
            test_cluster_admission_limit;
          Alcotest.test_case "replica failover" `Quick test_cluster_failover;
          Alcotest.test_case "COUNT matches single node" `Quick
            test_cluster_count_matches_single_node;
          Alcotest.test_case "COUNT rejects fpt" `Quick
            test_cluster_count_rejects_fpt;
          Alcotest.test_case "COUNT replica failover" `Quick
            test_cluster_count_failover;
          Alcotest.test_case "shard loss without replica" `Quick
            test_cluster_shard_loss_without_replica;
          Alcotest.test_case "config validation" `Quick
            test_coordinator_validation;
        ] );
      ( "self-healing",
        [
          Alcotest.test_case "replica miss counted" `Quick
            test_cluster_replica_miss_counted;
          Alcotest.test_case "hinted handoff" `Quick
            test_cluster_hinted_handoff;
          Alcotest.test_case "repair converges" `Quick
            test_cluster_repair_converges;
        ] );
    ]
