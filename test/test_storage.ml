(* The storage engine: segment format round-trips, checksum robustness
   under byte flips and truncation, manifest validation, delta-segment
   union, streaming ingest equivalence, and catalog durability.

   The corruption tests work on real files written by the real writer:
   every single-byte flip and every truncation of a segment must raise
   [Corrupt] (or produce a clean [Error]) — never a crash and never a
   silently different relation. *)

module Value = Paradb_relational.Value
module Relation = Paradb_relational.Relation
module Database = Paradb_relational.Database
module Dictionary = Paradb_relational.Dictionary
module Source = Paradb_query.Source
module Segment = Paradb_storage.Segment
module Store = Paradb_storage.Store
module Catalog = Paradb_server.Catalog
open Test_support

(* ------------------------------------------------------------------ *)
(* Scratch directories *)

let counter = ref 0

let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter
        (fun f -> remove_tree (Filename.concat path f))
        (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_dir f =
  incr counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "paradb-test-storage-%d-%d" (Unix.getpid ()) !counter)
  in
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> remove_tree dir) (fun () -> f dir)

let check_rel want got =
  Alcotest.(check string) "name" (Relation.name want) (Relation.name got);
  Alcotest.(check (list string))
    "schema" (Relation.schema_list want) (Relation.schema_list got);
  Alcotest.(check (list string)) "rows" (sorted_rows want) (sorted_rows got)

let check_db want got =
  Alcotest.(check (list string)) "relation names" (Database.names want)
    (Database.names got);
  List.iter
    (fun r -> check_rel r (Database.find got (Relation.name r)))
    (Database.relations want)

(* ------------------------------------------------------------------ *)
(* Segment round-trips *)

let mixed_db () =
  Database.of_relations
    [
      Relation.create ~name:"e" ~schema:[ "a"; "b" ]
        (List.init 60 (fun i -> [| Value.Int i; Value.Int ((i * 7) mod 20) |]));
      Relation.create ~name:"tag" ~schema:[ "x"; "label" ]
        [
          [| Value.Int 1; Value.Str "plain" |];
          [| Value.Int 2; Value.Str "" |];
          [| Value.Int 3; Value.Str "with space" |];
          [| Value.Int 4; Value.Str "dot. inside" |];
          [| Value.Int 5; Value.Str "quote\"s and \\ slashes" |];
          [| Value.Int 6; Value.Str "newline\nand tab\t" |];
          [| Value.Int 7; Value.Int (-42) |];
          [| Value.Int 8; Value.Int max_int |];
          [| Value.Int 9; Value.Int min_int |];
        ];
      Relation.create ~name:"empty" ~schema:[ "only" ] [];
    ]

let test_segment_round_trip () =
  with_dir @@ fun dir ->
  let db = mixed_db () in
  let bytes = Store.compact ~dir db in
  Alcotest.(check bool) "wrote bytes" true (bytes > 0);
  check_db db (Store.open_dir dir)

let test_segment_openf_accessors () =
  with_dir @@ fun dir ->
  let r =
    Relation.create ~name:"r" ~schema:[ "u"; "v"; "w" ]
      [
        [| Value.Int 1; Value.Str "a"; Value.Int 2 |];
        [| Value.Int 1; Value.Str "b"; Value.Int 3 |];
      ]
  in
  let path = Filename.concat dir "one.seg" in
  ignore (Segment.write ~path r);
  let seg = Segment.openf path in
  Alcotest.(check string) "name" "r" (Segment.name seg);
  Alcotest.(check (list string)) "schema" [ "u"; "v"; "w" ] (Segment.schema seg);
  Alcotest.(check int) "arity" 3 (Segment.arity seg);
  Alcotest.(check int) "rows" 2 (Segment.rows seg);
  check_rel r (Segment.to_relation seg)

(* Duplicate rows across segments must collapse (set semantics). *)
let test_delta_union () =
  with_dir @@ fun dir ->
  let base =
    Relation.create ~name:"e" ~schema:[ "a"; "b" ]
      [ [| Value.Int 1; Value.Int 2 |]; [| Value.Int 2; Value.Int 3 |] ]
  in
  ignore (Store.compact ~dir (Database.of_relations [ base ]));
  let delta =
    Relation.create ~name:"e" ~schema:[ "a"; "b" ]
      [ [| Value.Int 2; Value.Int 3 |]; [| Value.Int 3; Value.Int 4 |] ]
  in
  Store.append ~dir delta;
  let got = Database.find (Store.open_dir dir) "e" in
  Alcotest.(check (list string))
    "union of base and delta"
    (sorted_rows (Relation.union base delta))
    (sorted_rows got);
  (* a new relation arrives via append as well *)
  let extra =
    Relation.create ~name:"f" ~schema:[ "x" ] [ [| Value.Str "hi" |] ]
  in
  Store.append ~dir extra;
  check_rel extra (Database.find (Store.open_dir dir) "f");
  (* compacting the opened store squashes back to one segment per relation *)
  let db = Store.open_dir dir in
  ignore (Store.compact ~dir db);
  Alcotest.(check int) "segments after compact" 2
    (List.length (Store.entries dir));
  check_db db (Store.open_dir dir)

(* ------------------------------------------------------------------ *)
(* Corruption: every byte flip must be a clean [Corrupt] *)

let read_bytes path = In_channel.with_open_bin path In_channel.input_all

let write_bytes path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let small_segment dir =
  let r =
    Relation.create ~name:"e" ~schema:[ "a"; "b" ]
      [
        [| Value.Int 1; Value.Str "x" |];
        [| Value.Int 2; Value.Str "y" |];
        [| Value.Int 3; Value.Str "x" |];
      ]
  in
  let path = Filename.concat dir "flip.seg" in
  ignore (Segment.write ~path r);
  path

let test_bit_flip_sweep () =
  with_dir @@ fun dir ->
  let path = small_segment dir in
  let original = read_bytes path in
  let n = String.length original in
  for i = 0 to n - 1 do
    let mutated = Bytes.of_string original in
    Bytes.set mutated i (Char.chr (Char.code original.[i] lxor 0xFF));
    write_bytes path (Bytes.to_string mutated);
    match Segment.openf path with
    | exception Segment.Corrupt msg ->
        if not (contains msg "flip.seg") then
          Alcotest.failf "byte %d: Corrupt does not name the file: %s" i msg
    | exception e ->
        Alcotest.failf "byte %d: expected Corrupt, got %s" i
          (Printexc.to_string e)
    | _ -> Alcotest.failf "byte %d: corruption opened cleanly" i
  done;
  write_bytes path original;
  ignore (Segment.openf path)

let test_truncation_and_garbage () =
  with_dir @@ fun dir ->
  let path = small_segment dir in
  let original = read_bytes path in
  let expect_corrupt label content =
    write_bytes path content;
    match Segment.openf path with
    | exception Segment.Corrupt _ -> ()
    | exception e ->
        Alcotest.failf "%s: expected Corrupt, got %s" label
          (Printexc.to_string e)
    | _ -> Alcotest.failf "%s: opened cleanly" label
  in
  List.iter
    (fun len ->
      expect_corrupt
        (Printf.sprintf "truncated to %d" len)
        (String.sub original 0 len))
    [ 0; 1; 8; 47; 48; String.length original - 1 ];
  expect_corrupt "trailing garbage" (original ^ "\x00");
  expect_corrupt "doubled" (original ^ original)

let test_missing_file () =
  match Segment.openf "/nonexistent/paradb.seg" with
  | exception Sys_error _ -> ()
  | exception e -> Alcotest.failf "expected Sys_error, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "opened a nonexistent file"

(* ------------------------------------------------------------------ *)
(* Manifest validation *)

let expect_storage_error label path =
  match Store.load_database path with
  | Error msg when contains msg "storage:" -> msg
  | Error msg -> Alcotest.failf "%s: unprefixed error %S" label msg
  | Ok _ -> Alcotest.failf "%s: loaded cleanly" label

let test_manifest_validation () =
  with_dir @@ fun dir ->
  ignore (Store.compact ~dir (mixed_db ()));
  let manifest = Filename.concat dir Store.manifest_file in
  let original = read_bytes manifest in
  (* bad magic line *)
  write_bytes manifest ("paradb-segments 99\n" ^ original);
  ignore (expect_storage_error "bad magic" dir);
  (* unparsable entry *)
  write_bytes manifest (original ^ "segment only-two-fields\n");
  ignore (expect_storage_error "bad entry" dir);
  (* row-count disagreement with the segment itself.  Written as a v1
     manifest (no trailer): under v2 the rewritten entry lines would be
     caught by the trailer checksum before the segment check runs, and
     this test is about the manifest-vs-segment cross-check. *)
  let lied =
    String.split_on_char '\n' original
    |> List.filter_map (fun line ->
           match String.split_on_char ' ' line with
           | [ "segment"; file; rel; _rows ] ->
               Some (Printf.sprintf "segment %s %s %d" file rel 12345)
           | "end" :: _ -> None
           | _ when String.trim line = "paradb-segments 2" ->
               Some "paradb-segments 1"
           | _ -> Some line)
    |> String.concat "\n"
  in
  write_bytes manifest lied;
  let msg = expect_storage_error "row mismatch" dir in
  Alcotest.(check bool) "names the mismatch" true (contains msg "12345");
  write_bytes manifest original;
  (* a listed segment file that is gone *)
  let e = List.hd (Store.entries dir) in
  Sys.remove (Filename.concat dir e.Store.file);
  match Store.load_database dir with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loaded with a missing segment"

let test_directory_without_manifest () =
  with_dir @@ fun dir ->
  match Store.load_database dir with
  | Error msg ->
      Alcotest.(check bool) "mentions MANIFEST" true (contains msg "MANIFEST")
  | Ok _ -> Alcotest.fail "opened a bare directory"

(* ------------------------------------------------------------------ *)
(* Streaming ingest *)

let load_text text =
  let path = write_temp_facts text in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () -> Source.load_database path)

let test_streaming_matches_in_memory () =
  (* dots inside strings, comments, clauses spanning lines *)
  let text =
    "e(1, 2). e(2,\n 3).\n% a comment. with dots. e(9, 9).\n\
     tag(1, \"a. string % with tricks\").\n\
     tag(2, \"\").\ne(3, 1)."
  in
  match (load_text text, Source.parse_facts text) with
  | Ok a, Ok b -> check_db b a
  | Error e, _ | _, Error e -> Alcotest.failf "parse failed: %s" e

let test_streaming_chunk_boundaries () =
  (* a comment and a quoted string that straddle the 64 KiB read chunk *)
  let pad = String.make 65_000 'x' in
  let text =
    Printf.sprintf "e(1, 2).\n%% %s\ne(2, 3). tag(1, \"%s\"). e(3, 4).\n" pad
      pad
  in
  match (load_text text, Source.parse_facts text) with
  | Ok a, Ok b ->
      check_db b a;
      Alcotest.(check int) "tuples" 4 (Database.size a)
  | Error e, _ | _, Error e -> Alcotest.failf "parse failed: %s" e

let test_oversized_clause () =
  let huge = Printf.sprintf "tag(1, \"%s\")." (String.make (2 * 1024 * 1024) 'y') in
  match load_text huge with
  | Error msg ->
      Alcotest.(check bool) "names the limit" true (contains msg "clause")
  | Ok _ -> Alcotest.fail "accepted a 2 MiB clause"

let test_unterminated_string () =
  match load_text "tag(1, \"never closed." with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted an unterminated string"

(* ------------------------------------------------------------------ *)
(* Catalog durability *)

let test_catalog_durability () =
  with_dir @@ fun root ->
  let cat = Catalog.create ~data_dir:root () in
  let db1 =
    match Source.parse_facts "e(1, 2). e(2, 3)." with
    | Ok db -> db
    | Error e -> Alcotest.fail e
  in
  (match Catalog.load cat "g" db1 with
  | Ok (_, `Created) -> ()
  | Ok _ -> Alcotest.fail "first load should create"
  | Error e -> Alcotest.fail e);
  let db2 =
    match Source.parse_facts "e(3, 4)." with
    | Ok db -> db
    | Error e -> Alcotest.fail e
  in
  (match Catalog.load cat "g" db2 with
  | Ok (merged, `Appended) ->
      Alcotest.(check int) "merged tuples" 3 (Database.size merged)
  | Ok _ -> Alcotest.fail "second load should append"
  | Error e -> Alcotest.fail e);
  (match Catalog.add_fact cat "g" "e(4, 5)." with
  | Ok merged -> Alcotest.(check int) "after fact" 4 (Database.size merged)
  | Error e -> Alcotest.fail e);
  (* generations strictly increase across mutations *)
  let g1 = match Catalog.find cat "g" with Some (_, g) -> g | None -> -1 in
  (match Catalog.add_fact cat "g" "e(5, 6)." with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let g2 = match Catalog.find cat "g" with Some (_, g) -> g | None -> -1 in
  Alcotest.(check bool) "generation bumped" true (g2 > g1);
  (* a fresh catalog over the same data dir sees everything *)
  let cat' = Catalog.create ~data_dir:root () in
  (match Catalog.attach cat' with
  | [ ("g", 5) ] -> ()
  | attached ->
      Alcotest.failf "attach: %s"
        (String.concat ","
           (List.map (fun (n, s) -> Printf.sprintf "%s=%d" n s) attached)));
  match (Catalog.find cat "g", Catalog.find cat' "g") with
  | Some (want, _), Some (got, _) -> check_db want got
  | _ -> Alcotest.fail "catalog entry missing"

(* The background compactor's entry points: fragmented stores are
   found, folded off the request path, and the fold preserves content
   while collapsing to one segment per relation. *)
let test_background_compaction () =
  with_dir @@ fun root ->
  let cat = Catalog.create ~data_dir:root () in
  let db text =
    match Source.parse_facts text with Ok db -> db | Error e -> Alcotest.fail e
  in
  (match Catalog.load cat "g" (db "e(1, 2). e(2, 3).") with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  List.iter
    (fun f ->
      match Catalog.add_fact cat "g" f with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)
    [ "e(3, 4)."; "e(4, 5)."; "f(1, 10)." ];
  let dir = Filename.concat root "g" in
  Alcotest.(check bool) "fragmented before fold" true
    (List.length (Store.entries dir) > 2);
  Alcotest.(check (list string)) "candidate found" [ "g" ]
    (List.map fst (Catalog.compact_candidates cat ~min_segments:2));
  let want =
    match Catalog.find cat "g" with
    | Some (d, _) -> d
    | None -> Alcotest.fail "entry missing"
  in
  Alcotest.(check int) "one store folded" 1
    (Paradb_server.Compactor.run_once ~catalog:cat ~min_segments:2);
  Alcotest.(check int) "one segment per relation" 2
    (List.length (Store.entries dir));
  (match Catalog.find cat "g" with
  | Some (got, _) -> check_db want got
  | None -> Alcotest.fail "entry lost by fold");
  (* a fresh catalog over the folded store sees the same database *)
  let cat' = Catalog.create ~data_dir:root () in
  ignore (Catalog.attach cat');
  (match Catalog.find cat' "g" with
  | Some (got, _) -> check_db want got
  | None -> Alcotest.fail "folded store unreadable");
  Alcotest.(check (list string)) "no candidates left" []
    (List.map fst (Catalog.compact_candidates cat ~min_segments:2))

let test_catalog_without_data_dir_replaces () =
  let cat = Catalog.create () in
  let db text =
    match Source.parse_facts text with Ok db -> db | Error e -> Alcotest.fail e
  in
  (match Catalog.load cat "g" (db "e(1, 2). e(2, 3).") with
  | Ok (_, `Replaced) -> ()
  | _ -> Alcotest.fail "in-memory load should replace");
  match Catalog.load cat "g" (db "e(9, 9).") with
  | Ok (merged, `Replaced) ->
      Alcotest.(check int) "replaced, not merged" 1 (Database.size merged)
  | _ -> Alcotest.fail "in-memory reload should replace"

(* ------------------------------------------------------------------ *)
(* Recovery: orphan quarantine, injected crashes, durability modes *)

module Io_fault = Paradb_storage.Io_fault
module Durability = Paradb_storage.Durability

let with_faults config f =
  Io_fault.set (Some config);
  Fun.protect ~finally:(fun () -> Io_fault.set None) f

let test_orphan_quarantine () =
  with_dir @@ fun dir ->
  let db = mixed_db () in
  ignore (Store.compact ~dir db);
  (* plant the debris a crash mid-publish leaves behind: a half-written
     manifest swap, a torn segment temp file, and a fully-written
     segment whose manifest swap never happened *)
  write_bytes (Filename.concat dir "MANIFEST.tmp") "half a manifest";
  write_bytes (Filename.concat dir "seg-000099-e.seg.tmp") "half a segment";
  let stray =
    Relation.create ~name:"stray" ~schema:[ "x" ] [ [| Value.Int 1 |] ]
  in
  ignore (Segment.write ~path:(Filename.concat dir "seg-000042-stray.seg") stray);
  let got = Store.open_dir dir in
  (* the stray relation never leaks into the opened database *)
  check_db db got;
  let orphans = Filename.concat dir Store.orphans_dir in
  Alcotest.(check bool) "orphans dir exists" true (Sys.is_directory orphans);
  Alcotest.(check (list string))
    "debris quarantined"
    [ "MANIFEST.tmp"; "seg-000042-stray.seg"; "seg-000099-e.seg.tmp" ]
    (List.sort compare (Array.to_list (Sys.readdir orphans)));
  List.iter
    (fun f ->
      Alcotest.(check bool) (f ^ " gone from store") false
        (Sys.file_exists (Filename.concat dir f)))
    [ "MANIFEST.tmp"; "seg-000042-stray.seg"; "seg-000099-e.seg.tmp" ];
  (* recovery is idempotent *)
  Alcotest.(check int) "second recover is a no-op" 0 (Store.recover dir)

(* A torn segment write crashes mid-append: the store must reopen with
   the pre-append contents and the torn file must be quarantined, never
   read. *)
let test_torn_write_recovers () =
  with_dir @@ fun dir ->
  let db = mixed_db () in
  ignore (Store.compact ~dir db);
  let delta =
    Relation.create ~name:"d" ~schema:[ "x" ] [ [| Value.Int 7 |] ]
  in
  (match
     with_faults
       { Io_fault.torn_write = 1.0; crash_after_write = 0.0; seed = 7 }
       (fun () -> Store.append ~dir delta)
   with
  | exception Io_fault.Crash _ -> ()
  | () -> Alcotest.fail "torn_write:1.0 did not crash the append");
  let got = Store.open_dir dir in
  check_db db got;
  Alcotest.(check bool) "torn relation absent" false
    (List.mem "d" (Database.names got))

(* A crash after the segment write but before the manifest swap: the
   segment is complete on disk but unpublished, so reopening yields the
   old contents and quarantines it. *)
let test_crash_after_segment_write () =
  with_dir @@ fun dir ->
  let db = mixed_db () in
  ignore (Store.compact ~dir db);
  let delta =
    Relation.create ~name:"d" ~schema:[ "x" ] [ [| Value.Int 7 |] ]
  in
  (match
     with_faults
       { Io_fault.torn_write = 0.0; crash_after_write = 1.0; seed = 7 }
       (fun () -> Store.append ~dir delta)
   with
  | exception Io_fault.Crash _ -> ()
  | () -> Alcotest.fail "crash_after_write:1.0 did not crash the append");
  let got = Store.open_dir dir in
  check_db db got;
  Alcotest.(check bool) "unpublished relation absent" false
    (List.mem "d" (Database.names got));
  let orphans = Filename.concat dir Store.orphans_dir in
  Alcotest.(check bool) "unpublished segment quarantined" true
    (Sys.file_exists orphans && Array.length (Sys.readdir orphans) > 0)

let test_durability_modes () =
  List.iter
    (fun m ->
      Alcotest.(check bool)
        ("of_string/to_string " ^ Durability.to_string m)
        true
        (Durability.of_string (Durability.to_string m) = Some m))
    [ Durability.Full; Durability.Async; Durability.Off ];
  Alcotest.(check bool) "bad mode rejected" true
    (Durability.of_string "fast" = None);
  let prev = Durability.mode () in
  Fun.protect ~finally:(fun () -> Durability.set prev) @@ fun () ->
  List.iter
    (fun m ->
      Durability.set m;
      with_dir @@ fun dir ->
      let db = mixed_db () in
      ignore (Store.compact ~dir db);
      Store.append ~dir
        (Relation.create ~name:"d" ~schema:[ "x" ] [ [| Value.Int 1 |] ]);
      (* async mode queues fsyncs to a background domain; drain before
         checking so the test also exercises the flusher *)
      Durability.drain ();
      Alcotest.(check bool)
        ("append visible under " ^ Durability.to_string m)
        true
        (List.mem "d" (Database.names (Store.open_dir dir))))
    [ Durability.Full; Durability.Async; Durability.Off ]

(* ------------------------------------------------------------------ *)
(* QCheck: .facts -> compact -> open -> to_string round-trip *)

(* [quotable] restricts strings to what fact syntax can re-read (the
   text format has no escape sequences); the binary format itself takes
   arbitrary bytes, covered by the direct property below. *)
let random_value ?(quotable = false) rng ~domain_size =
  if Random.State.bool rng then Value.Int (Random.State.int rng domain_size)
  else
    Value.Str
      (String.init
         (Random.State.int rng 5)
         (fun _ ->
           if quotable then Char.chr (97 + Random.State.int rng 26)
           else Char.chr (32 + Random.State.int rng 95)))

let random_db ?quotable rng =
  let domain_size = 1 + Random.State.int rng 8 in
  let n_rels = 1 + Random.State.int rng 3 in
  Database.of_relations
    (List.init n_rels (fun i ->
         let arity = 1 + Random.State.int rng 3 in
         let tuples = Random.State.int rng 30 in
         Relation.create
           ~name:(Printf.sprintf "r%d" i)
           ~schema:(List.init arity (Printf.sprintf "a%d"))
           (List.init tuples (fun _ ->
                Array.init arity (fun _ ->
                    random_value ?quotable rng ~domain_size)))))

let qcheck_tests =
  [
    Qgen.seeded_property ~name:"compact/open round-trips any database"
      ~count:60 (fun rng ->
        let db = random_db rng in
        with_dir @@ fun dir ->
        ignore (Store.compact ~dir db);
        let got = Store.open_dir dir in
        List.for_all
          (fun want ->
            let g = Database.find got (Relation.name want) in
            Relation.to_string want = Relation.to_string g
            && sorted_rows want = sorted_rows g)
          (Database.relations db));
    Qgen.seeded_property ~name:"facts -> compact -> open = parse" ~count:40
      (fun rng ->
        let db = random_db ~quotable:true rng in
        let text = Paradb_query.Fact_format.to_string db in
        match Source.parse_facts text with
        | Error _ -> false
        | Ok parsed ->
            with_dir @@ fun dir ->
            ignore (Store.compact ~dir parsed);
            let got = Store.open_dir dir in
            List.for_all
              (fun want ->
                sorted_rows want
                = sorted_rows (Database.find got (Relation.name want)))
              (Database.relations parsed));
    (* Satellite of the durability work: truncation at EVERY prefix
       length must be a clean refusal, never a wrong answer.  The prefix
       sweep is exhaustive per generated store; QCheck varies the
       store. *)
    Qgen.seeded_property ~name:"every segment prefix refuses cleanly" ~count:8
      (fun rng ->
        let db = random_db rng in
        with_dir @@ fun dir ->
        ignore (Store.compact ~dir db);
        let es = Store.entries dir in
        let e = List.nth es (Random.State.int rng (List.length es)) in
        let path = Filename.concat dir e.Store.file in
        let original = read_bytes path in
        let ok = ref true in
        for len = 0 to String.length original - 1 do
          write_bytes path (String.sub original 0 len);
          match Segment.openf path with
          | exception Segment.Corrupt _ -> ()
          | exception _ -> ok := false
          | _ -> ok := false
        done;
        write_bytes path original;
        (* the restored file still opens *)
        (match Segment.openf path with
        | exception _ -> ok := false
        | _ -> ());
        !ok);
    Qgen.seeded_property ~name:"every manifest prefix refuses or answers exactly"
      ~count:8 (fun rng ->
        let db = random_db rng in
        with_dir @@ fun dir ->
        ignore (Store.compact ~dir db);
        let render d =
          List.map
            (fun r -> Relation.name r :: sorted_rows r)
            (List.sort
               (fun a b -> compare (Relation.name a) (Relation.name b))
               (Database.relations d))
        in
        let want = render db in
        let manifest = Filename.concat dir Store.manifest_file in
        let original = read_bytes manifest in
        let ok = ref true in
        (* every prefix either refuses cleanly or answers the original
           database exactly — never a crash, never a wrong answer.  (A
           cut that only drops the final newline still carries a valid
           trailer and the full entry set, so accepting it is correct;
           the v2 trailer is what rules out the silently-shortened
           answers v1 allowed on line-boundary cuts.)  The full length
           must load. *)
        for len = 0 to String.length original do
          write_bytes manifest (String.sub original 0 len);
          match Store.load_database dir with
          | Error _ -> if len = String.length original then ok := false
          | Ok got -> if render got <> want then ok := false
          | exception _ -> ok := false
        done;
        !ok);
  ]

let () =
  Alcotest.run "storage"
    [
      ( "segment",
        [
          Alcotest.test_case "round trip" `Quick test_segment_round_trip;
          Alcotest.test_case "openf accessors" `Quick
            test_segment_openf_accessors;
          Alcotest.test_case "delta union" `Quick test_delta_union;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "every byte flip" `Quick test_bit_flip_sweep;
          Alcotest.test_case "truncation and garbage" `Quick
            test_truncation_and_garbage;
          Alcotest.test_case "missing file" `Quick test_missing_file;
          Alcotest.test_case "manifest validation" `Quick
            test_manifest_validation;
          Alcotest.test_case "bare directory" `Quick
            test_directory_without_manifest;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "matches in-memory parse" `Quick
            test_streaming_matches_in_memory;
          Alcotest.test_case "chunk boundaries" `Quick
            test_streaming_chunk_boundaries;
          Alcotest.test_case "oversized clause" `Quick test_oversized_clause;
          Alcotest.test_case "unterminated string" `Quick
            test_unterminated_string;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "durability across restart" `Quick
            test_catalog_durability;
          Alcotest.test_case "in-memory load replaces" `Quick
            test_catalog_without_data_dir_replaces;
          Alcotest.test_case "background compaction" `Quick
            test_background_compaction;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "orphan quarantine" `Quick test_orphan_quarantine;
          Alcotest.test_case "torn write recovers" `Quick
            test_torn_write_recovers;
          Alcotest.test_case "crash after segment write" `Quick
            test_crash_after_segment_write;
          Alcotest.test_case "durability modes" `Quick test_durability_modes;
        ] );
      ("round-trip properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
