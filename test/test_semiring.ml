(* Semiring laws, the annotated-relation algebra, and the counting
   contract (DESIGN.md §17): ⊕/⊗ satisfy the commutative-semiring
   axioms on every instance the engine ships, projection ⊕-merges and
   join ⊗-multiplies annotations, and the Nat-semiring total agrees
   with both the brute-force valuation count and — for duplicate-free
   full-head queries — the plain answer-set cardinality. *)

module Semiring = Paradb_relational.Semiring
module Annotated = Paradb_relational.Annotated
module Relation = Paradb_relational.Relation
module Cq = Paradb_query.Cq
module Term = Paradb_query.Term
module Cq_naive = Paradb_eval.Cq_naive
module Compile = Paradb_eval.Compile
module Yannakakis = Paradb_yannakakis.Yannakakis
module Color_coding = Paradb_core.Color_coding
module Graph = Paradb_graph.Graph

(* ------------------------------------------------------------------ *)
(* Semiring laws *)

(* Element generators stay well under overflow territory: Nat's + and ×
   are machine ints, and the Tropical ⊗ only saturates at [max_int]
   itself (the +∞ element, produced here with probability 1/8). *)
let bool_elt rng = Random.State.bool rng
let nat_elt rng = Random.State.int rng 1000

let tropical_elt rng =
  if Random.State.int rng 8 = 0 then max_int else Random.State.int rng 1000

let laws_hold (type a) (sr : a Semiring.t) a b c =
  let ( === ) = sr.Semiring.equal in
  sr.plus a (sr.plus b c) === sr.plus (sr.plus a b) c
  && sr.plus a b === sr.plus b a
  && sr.plus a sr.zero === a
  && sr.times a (sr.times b c) === sr.times (sr.times a b) c
  && sr.times a b === sr.times b a
  && sr.times a sr.one === a
  && sr.times sr.one a === a
  && sr.times a sr.zero === sr.zero
  && sr.times a (sr.plus b c) === sr.plus (sr.times a b) (sr.times a c)

let law_property name sr elt =
  Qgen.seeded_property ~name ~count:300 (fun rng ->
      laws_hold sr (elt rng) (elt rng) (elt rng))

(* ------------------------------------------------------------------ *)
(* Annotated-relation algebra, hand instances *)

let nat = Semiring.nat

let test_of_rows_merges_duplicates () =
  let t =
    Annotated.of_rows nat ~schema:[ "x" ]
      [ ([| 1 |], 2); ([| 1 |], 3); ([| 2 |], 1) ]
  in
  Alcotest.(check int) "two distinct rows" 2 (Annotated.cardinality t);
  Alcotest.(check (option int)) "duplicates ⊕-merged" (Some 5)
    (Annotated.find t [| 1 |]);
  Alcotest.(check int) "total" 6 (Annotated.total nat t)

let test_project_plus_merges () =
  let t =
    Annotated.of_rows nat ~schema:[ "x"; "y" ]
      [ ([| 1; 2 |], 2); ([| 1; 3 |], 3); ([| 4; 5 |], 7) ]
  in
  let p = Annotated.project nat [ "x" ] t in
  Alcotest.(check int) "merged cardinality" 2 (Annotated.cardinality p);
  Alcotest.(check (option int)) "colliding rows sum" (Some 5)
    (Annotated.find p [| 1 |]);
  Alcotest.(check (option int)) "lone row unchanged" (Some 7)
    (Annotated.find p [| 4 |]);
  Alcotest.(check int) "projection preserves the total" (Annotated.total nat t)
    (Annotated.total nat p)

let test_join_times_multiplies () =
  let a = Annotated.of_rows nat ~schema:[ "x"; "y" ] [ ([| 1; 2 |], 2) ] in
  let b =
    Annotated.of_rows nat ~schema:[ "y"; "z" ]
      [ ([| 2; 7 |], 3); ([| 2; 8 |], 5); ([| 9; 9 |], 100) ]
  in
  let j = Annotated.natural_join nat a b in
  Alcotest.(check (list string)) "schema" [ "x"; "y"; "z" ] (Annotated.schema j);
  Alcotest.(check (option int)) "2*3" (Some 6) (Annotated.find j [| 1; 2; 7 |]);
  Alcotest.(check (option int)) "2*5" (Some 10) (Annotated.find j [| 1; 2; 8 |]);
  Alcotest.(check int) "only matching rows" 2 (Annotated.cardinality j)

let test_semijoin_preserves_annotations () =
  let a =
    Annotated.of_rows nat ~schema:[ "x"; "y" ]
      [ ([| 1; 2 |], 41); ([| 3; 4 |], 5) ]
  in
  let b = Annotated.of_rows nat ~schema:[ "y" ] [ ([| 2 |], 999) ] in
  let s = Annotated.semijoin a b in
  Alcotest.(check int) "pruned" 1 (Annotated.cardinality s);
  Alcotest.(check (option int)) "annotation untouched" (Some 41)
    (Annotated.find s [| 1; 2 |])

(* ------------------------------------------------------------------ *)
(* The counting contract *)

(* Rebuild a query to retain every variable in the head: then each
   satisfying valuation produces a distinct answer tuple, so (relations
   being duplicate-free sets) count = answer-set cardinality. *)
let full_head q =
  Cq.make ~name:q.Cq.name ~constraints:q.Cq.constraints
    ~head:(List.map Term.var (Cq.vars q))
    q.Cq.body

let random_query rng ~neq_tries =
  let db = Qgen.tree_cq_database rng ~max_arity:3 ~domain_size:4 ~tuples:10 in
  let q =
    Qgen.random_tree_cq rng ~max_atoms:4 ~max_arity:3 ~neq_tries ~domain_size:4
  in
  (db, q)

let count_properties =
  [
    Qgen.seeded_property ~name:"count = |answers| on full-head queries"
      ~count:150 (fun rng ->
        let db, q = random_query rng ~neq_tries:4 in
        let q = full_head q in
        let n = Relation.cardinality (Cq_naive.evaluate db q) in
        Cq_naive.count db q = n && Compile.count db q = n);
    Qgen.seeded_property ~name:"compiled count = naive count" ~count:150
      (fun rng ->
        let db, q = random_query rng ~neq_tries:4 in
        Compile.count db q = Cq_naive.count db q);
    Qgen.seeded_property ~name:"yannakakis count = naive count" ~count:150
      (fun rng ->
        let db, q = random_query rng ~neq_tries:0 in
        Yannakakis.count db q = Cq_naive.count db q);
  ]

(* ------------------------------------------------------------------ *)
(* Color-coding DP aggregation *)

(* Brute force: every directed vertex sequence of length [k] whose
   successive vertices are adjacent and whose colors are pairwise
   distinct.  (Distinct colors imply distinct vertices.) *)
let brute_colorful g colors k =
  let paths = ref [] in
  let rec go path used len v =
    let c = 1 lsl colors.(v) in
    if used land c = 0 then begin
      let path = v :: path and used = used lor c and len = len + 1 in
      if len = k then paths := List.rev path :: !paths
      else List.iter (go path used len) (Graph.neighbors g v)
    end
  in
  List.iter (go [] 0 0) (Graph.vertices g);
  !paths

let path_cost wt p = List.fold_left (fun acc v -> acc + wt v) 0 p

let colorful_properties =
  [
    Qgen.seeded_property ~name:"nat DP counts colorful paths" ~count:80
      (fun rng ->
        let n = 4 + Random.State.int rng 4 in
        let g = Graph.gnp rng n 0.4 in
        let k = 2 + Random.State.int rng 3 in
        let colors = Array.init n (fun _ -> Random.State.int rng k) in
        Color_coding.colorful_path_aggregate Semiring.nat g colors k
        = List.length (brute_colorful g colors k));
    Qgen.seeded_property ~name:"tropical DP finds the cheapest colorful path"
      ~count:80 (fun rng ->
        let n = 4 + Random.State.int rng 4 in
        let g = Graph.gnp rng n 0.4 in
        let k = 2 + Random.State.int rng 3 in
        let colors = Array.init n (fun _ -> Random.State.int rng k) in
        let wt v = 1 + ((v * 7) mod 5) in
        let got =
          Color_coding.colorful_path_aggregate (Semiring.tropical ()) ~weight:wt
            g colors k
        in
        match brute_colorful g colors k with
        | [] -> got = max_int
        | paths ->
            got
            = List.fold_left
                (fun acc p -> min acc (path_cost wt p))
                max_int paths);
    Qgen.seeded_property ~name:"bool DP = colorful-path reachability" ~count:80
      (fun rng ->
        let n = 4 + Random.State.int rng 4 in
        let g = Graph.gnp rng n 0.4 in
        let k = 2 + Random.State.int rng 3 in
        let colors = Array.init n (fun _ -> Random.State.int rng k) in
        Color_coding.colorful_path_aggregate Semiring.bool g colors k
        = (Color_coding.colorful_path g colors k <> None));
  ]

let () =
  Alcotest.run "semiring"
    [
      ( "laws",
        List.map QCheck_alcotest.to_alcotest
          [
            law_property "bool semiring laws" Semiring.bool bool_elt;
            law_property "nat semiring laws" Semiring.nat nat_elt;
            law_property "tropical semiring laws" (Semiring.tropical ())
              tropical_elt;
          ] );
      ( "annotated",
        [
          Alcotest.test_case "of_rows merges duplicates" `Quick
            test_of_rows_merges_duplicates;
          Alcotest.test_case "project ⊕-merges" `Quick
            test_project_plus_merges;
          Alcotest.test_case "join ⊗-multiplies" `Quick
            test_join_times_multiplies;
          Alcotest.test_case "semijoin preserves annotations" `Quick
            test_semijoin_preserves_annotations;
        ] );
      ("counting", List.map QCheck_alcotest.to_alcotest count_properties);
      ( "color coding",
        List.map QCheck_alcotest.to_alcotest colorful_properties );
    ]
