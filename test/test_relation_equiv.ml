(* Randomized equivalence suite for the dictionary-encoded relation
   backend.  Each operator is checked against a straight-line reference
   implementation over [Tuple.Set] (the seed's AVL-backed representation)
   on random relations, and the Domains-parallel trial driver is checked
   to return bit-identical answers to the sequential one. *)

module Value = Paradb_relational.Value
module Tuple = Paradb_relational.Tuple
module Relation = Paradb_relational.Relation
module Database = Paradb_relational.Database
module Engine = Paradb_core.Engine
module Hashing = Paradb_core.Hashing
module Generators = Paradb_workload.Generators

(* ------------------------------------------------------------------ *)
(* Reference implementations: nested loops and ordered sets, no
   dictionaries, no indexes. *)

let ref_project attrs r =
  let pos = Relation.positions r attrs in
  let rows =
    Relation.fold (fun t acc -> Tuple.Set.add (Tuple.sub t pos) acc) r
      Tuple.Set.empty
  in
  Relation.of_set ~schema:attrs rows

let ref_natural_join r s =
  let common = Relation.common_attrs r s in
  let pr = Relation.positions r common and ps = Relation.positions s common in
  let extra =
    List.filter (fun a -> not (Relation.has_attr r a)) (Relation.schema_list s)
  in
  let pe = Relation.positions s extra in
  let rows =
    Relation.fold
      (fun t1 acc ->
        Relation.fold
          (fun t2 acc ->
            if Tuple.equal (Tuple.sub t1 pr) (Tuple.sub t2 ps) then
              Tuple.Set.add (Tuple.append t1 (Tuple.sub t2 pe)) acc
            else acc)
          s acc)
      r Tuple.Set.empty
  in
  Relation.of_set ~schema:(Relation.schema_list r @ extra) rows

let ref_semijoin r s =
  let common = Relation.common_attrs r s in
  let pr = Relation.positions r common and ps = Relation.positions s common in
  let rows =
    Relation.fold
      (fun t1 acc ->
        let matched =
          Relation.fold
            (fun t2 found ->
              found || Tuple.equal (Tuple.sub t1 pr) (Tuple.sub t2 ps))
            s false
        in
        if matched then Tuple.Set.add t1 acc else acc)
      r Tuple.Set.empty
  in
  Relation.of_set ~schema:(Relation.schema_list r) rows

let ref_union r s =
  let pos = Relation.positions s (Relation.schema_list r) in
  let rows =
    Relation.fold
      (fun t acc -> Tuple.Set.add (Tuple.sub t pos) acc)
      s (Relation.tuple_set r)
  in
  Relation.of_set ~schema:(Relation.schema_list r) rows

(* ------------------------------------------------------------------ *)
(* Random relations: varying arity, domain size and cardinality
   (including frequent empty relations via [tuples = 0]). *)

let random_rel rng ~schema ~domain_size =
  let arity = List.length schema in
  let tuples = Random.State.int rng 16 in
  if tuples = 0 then Relation.create ~schema []
  else
    Qgen.random_relation rng ~name:"r" ~arity ~domain_size ~tuples
    |> Relation.rename_positional schema

let schemas rng =
  (* Overlapping schemas with 0, 1 or 2 shared attributes. *)
  match Random.State.int rng 3 with
  | 0 -> ([ "a"; "b" ], [ "c"; "d" ])
  | 1 -> ([ "a"; "b" ], [ "b"; "c" ])
  | _ -> ([ "a"; "b"; "c" ], [ "b"; "c"; "d" ])

let equivalence_tests =
  let pair rng =
    let s1, s2 = schemas rng in
    let domain_size = 1 + Random.State.int rng 6 in
    (random_rel rng ~schema:s1 ~domain_size, random_rel rng ~schema:s2 ~domain_size)
  in
  [
    Qgen.seeded_property ~name:"natural_join matches reference" ~count:300
      (fun rng ->
        let r, s = pair rng in
        Relation.set_equal (Relation.natural_join r s) (ref_natural_join r s));
    Qgen.seeded_property ~name:"semijoin matches reference" ~count:300
      (fun rng ->
        let r, s = pair rng in
        Relation.set_equal (Relation.semijoin r s) (ref_semijoin r s));
    Qgen.seeded_property ~name:"sort_merge_join matches reference" ~count:150
      (fun rng ->
        let r, s = pair rng in
        Relation.set_equal (Relation.sort_merge_join r s) (ref_natural_join r s));
    Qgen.seeded_property ~name:"project matches reference" ~count:150
      (fun rng ->
        let r = random_rel rng ~schema:[ "a"; "b"; "c" ] ~domain_size:4 in
        let attrs =
          match Random.State.int rng 3 with
          | 0 -> [ "b" ]
          | 1 -> [ "c"; "a" ]
          | _ -> []
        in
        Relation.set_equal (Relation.project attrs r) (ref_project attrs r));
    Qgen.seeded_property ~name:"union matches reference" ~count:150 (fun rng ->
        let r = random_rel rng ~schema:[ "a"; "b" ] ~domain_size:4 in
        let s = random_rel rng ~schema:[ "b"; "a" ] ~domain_size:4 in
        Relation.set_equal (Relation.union r s) (ref_union r s));
    Qgen.seeded_property ~name:"decoded tuples round-trip" ~count:150
      (fun rng ->
        let r = random_rel rng ~schema:[ "a"; "b" ] ~domain_size:5 in
        let back =
          Relation.create ~schema:(Relation.schema_list r) (Relation.tuples r)
        in
        Relation.set_equal r back
        && Relation.cardinality r = List.length (Relation.tuples r));
  ]

(* ------------------------------------------------------------------ *)
(* Parallel trials must give bit-identical answers to sequential ones. *)

let with_domains n f =
  let old = Sys.getenv_opt "PARADB_DOMAINS" in
  Unix.putenv "PARADB_DOMAINS" (string_of_int n);
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "PARADB_DOMAINS" (match old with Some s -> s | None -> ""))
    f

let family = Hashing.Random_trials { trials = 40; seed = 11 }

let determinism_instances () =
  (* One unsatisfiable and one satisfiable instance: the early-exit path
     of the satisfiability driver and the union path of evaluation both
     get exercised. *)
  let q =
    Generators.chain_query ~length:3
      ~neq:[ (0, 1); (1, 2); (2, 3); (0, 2); (1, 3); (0, 3) ]
  in
  let unsat_db = Generators.two_cycle_database ~pairs:12 in
  let path_db =
    Database.of_relations
      [
        Relation.create ~name:"e" ~schema:[ "a"; "b" ]
          (List.init 8 (fun i -> [| Value.Int i; Value.Int (i + 1) |]));
      ]
  in
  (q, unsat_db, path_db)

let test_parallel_satisfiable_deterministic () =
  let q, unsat_db, path_db = determinism_instances () in
  List.iter
    (fun db ->
      let seq = with_domains 1 (fun () -> Engine.is_satisfiable ~family db q) in
      let par = with_domains 4 (fun () -> Engine.is_satisfiable ~family db q) in
      Alcotest.(check bool) "same verdict" seq par)
    [ unsat_db; path_db ]

let test_parallel_evaluate_deterministic () =
  let q, unsat_db, path_db = determinism_instances () in
  List.iter
    (fun db ->
      let seq = with_domains 1 (fun () -> Engine.evaluate ~family db q) in
      let par = with_domains 4 (fun () -> Engine.evaluate ~family db q) in
      Alcotest.(check bool) "identical answer relation" true
        (Relation.set_equal seq par))
    [ unsat_db; path_db ];
  (* The satisfiable instance must actually produce rows. *)
  let rows = with_domains 4 (fun () -> Engine.evaluate ~family path_db q) in
  Alcotest.(check bool) "satisfiable instance nonempty" false
    (Relation.is_empty rows)

let () =
  Alcotest.run "relation-equiv"
    [
      ("equivalence", List.map QCheck_alcotest.to_alcotest equivalence_tests);
      ( "parallel determinism",
        [
          Alcotest.test_case "satisfiable verdict" `Quick
            test_parallel_satisfiable_deterministic;
          Alcotest.test_case "evaluate answers" `Quick
            test_parallel_evaluate_deterministic;
        ] );
    ]
