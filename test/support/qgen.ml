(* Random instance generators shared by the test suites.  All take an
   explicit [Random.State.t] so failures are reproducible from the seed.

   The query/database generators live in [Paradb_workload.Generators]
   (shared with the differential oracle); only the circuit generator and
   the QCheck seed adapter are test-specific. *)

module Generators = Paradb_workload.Generators
module Relation = Paradb_relational.Relation
module Value = Paradb_relational.Value
module Circuit = Paradb_wsat.Circuit

let random_relation rng ~name ~arity ~domain_size ~tuples =
  let rows =
    List.init tuples (fun _ ->
        Array.init arity (fun _ -> Value.Int (Random.State.int rng domain_size)))
  in
  Relation.create ~name ~schema:(List.init arity (Printf.sprintf "a%d")) rows

let random_database rng ~schema ~domain_size ~tuples =
  Paradb_relational.Database.of_relations
    (List.map
       (fun (name, arity) ->
         random_relation rng ~name ~arity ~domain_size
           ~tuples:(1 + Random.State.int rng tuples))
       schema)

let random_tree_cq rng ~max_atoms ~max_arity ~neq_tries ~domain_size =
  Generators.random_tree_cq rng ~max_atoms ~max_arity ~neq_tries ~domain_size

let tree_cq_database rng ~max_arity ~domain_size ~tuples =
  Generators.tree_cq_database rng ~max_arity ~domain_size ~tuples

let random_positive_sentence rng ~relations ~domain_size ~depth =
  Generators.random_positive_sentence rng ~relations ~domain_size ~depth

(* Random monotone circuit built bottom-up over a growing gate pool. *)
let random_monotone_circuit rng ~n_inputs ~n_gates =
  let gates = ref [] in
  let count = ref 0 in
  let emit g =
    gates := g :: !gates;
    incr count;
    !count - 1
  in
  let inputs = List.init n_inputs (fun i -> emit (Circuit.G_input i)) in
  let pool = ref inputs in
  for _ = 1 to n_gates do
    let pick () = List.nth !pool (Random.State.int rng (List.length !pool)) in
    let width = 1 + Random.State.int rng 3 in
    let children =
      List.sort_uniq Int.compare (List.init width (fun _ -> pick ()))
    in
    let id =
      emit
        (if Random.State.bool rng then Circuit.G_and children
         else Circuit.G_or children)
    in
    pool := id :: !pool
  done;
  Circuit.make ~n_inputs
    (Array.of_list (List.rev !gates))
    ~output:(List.hd !pool)

(* Wrap a deterministic seeded property as a QCheck test over seeds. *)
let seeded_property ~name ~count f =
  QCheck.Test.make ~name ~count QCheck.small_int (fun seed ->
      f (Random.State.make [| seed |]))
