(* Helpers every [test_*.ml] suite used to carry its own copy of:
   substring checks on error messages and summaries, temp fact files,
   canonical answer-set serialization, database pretty-printing, and
   seeded RNG setup. *)

module Relation = Paradb_relational.Relation
module Tuple = Paradb_relational.Tuple

(* Substring check without a string-library dependency. *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

(* Write [text] to a fresh temp file; the caller removes it (usually via
   [Fun.protect]). *)
let write_temp_facts ?(prefix = "paradb_facts") text =
  let path = Filename.temp_file prefix ".facts" in
  Out_channel.with_open_text path (fun oc -> output_string oc text);
  path

(* Canonical answer set: sorted tuple strings, the cross-engine
   comparison currency (same serialization as the server's EVAL
   payload). *)
let sorted_rows rel =
  List.map Tuple.to_string (List.sort Tuple.compare (Relation.tuples rel))

(* A database as re-parseable fact syntax, for failure messages. *)
let db_to_string db = Paradb_query.Fact_format.to_string db

(* Seeded RNG; 17 is the suites' traditional default. *)
let rng ?(seed = 17) () = Random.State.make [| seed |]
