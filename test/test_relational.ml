module Value = Paradb_relational.Value
module Tuple = Paradb_relational.Tuple
module Relation = Paradb_relational.Relation
module Database = Paradb_relational.Database

let rel name schema rows =
  Relation.create ~name ~schema (List.map Tuple.of_ints rows)

let r_edges =
  rel "e" [ "a"; "b" ] [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ]; [ 1; 3 ] ]

let check_cardinality = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Value *)

let test_value_order () =
  Alcotest.(check bool) "int < str" true (Value.compare (Value.Int 5) (Value.Str "a") < 0);
  Alcotest.(check bool) "int order" true (Value.compare (Value.Int 1) (Value.Int 2) < 0);
  Alcotest.(check bool) "str order" true (Value.compare (Value.Str "a") (Value.Str "b") < 0);
  Alcotest.(check bool) "equal" true (Value.equal (Value.Int 3) (Value.Int 3))

let test_value_of_string () =
  Alcotest.(check bool) "parses int" true (Value.equal (Value.of_string "42") (Value.Int 42));
  Alcotest.(check bool) "parses neg" true (Value.equal (Value.of_string "-7") (Value.Int (-7)));
  Alcotest.(check bool) "parses str" true (Value.equal (Value.of_string "x1") (Value.Str "x1"));
  Alcotest.(check string) "to_string int" "42" (Value.to_string (Value.Int 42))

let test_value_to_int () =
  Alcotest.(check int) "payload" 9 (Value.to_int (Value.Int 9));
  Alcotest.check_raises "str payload" (Invalid_argument "Value.to_int: not an integer: a")
    (fun () -> ignore (Value.to_int (Value.Str "a")))

(* ------------------------------------------------------------------ *)
(* Tuple *)

let test_tuple_compare () =
  let t1 = Tuple.of_ints [ 1; 2 ] and t2 = Tuple.of_ints [ 1; 3 ] in
  Alcotest.(check bool) "lt" true (Tuple.compare t1 t2 < 0);
  Alcotest.(check bool) "eq" true (Tuple.equal t1 (Tuple.of_ints [ 1; 2 ]));
  Alcotest.(check bool) "arity sorts first" true
    (Tuple.compare (Tuple.of_ints [ 9 ]) (Tuple.of_ints [ 1; 1 ]) < 0)

let test_tuple_sub_append () =
  let t = Tuple.of_ints [ 10; 20; 30 ] in
  Alcotest.(check bool) "sub" true
    (Tuple.equal (Tuple.sub t [| 2; 0; 2 |]) (Tuple.of_ints [ 30; 10; 30 ]));
  Alcotest.(check bool) "append" true
    (Tuple.equal
       (Tuple.append (Tuple.of_ints [ 1 ]) (Tuple.of_ints [ 2 ]))
       (Tuple.of_ints [ 1; 2 ]))

(* ------------------------------------------------------------------ *)
(* Relation basics *)

let test_create_dedups () =
  let r = rel "r" [ "x" ] [ [ 1 ]; [ 1 ]; [ 2 ] ] in
  check_cardinality "dedup" 2 (Relation.cardinality r)

let test_create_validates () =
  Alcotest.check_raises "duplicate attr"
    (Invalid_argument "Relation: duplicate attribute a") (fun () ->
      ignore (rel "r" [ "a"; "a" ] []));
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Relation r: row arity 1, schema arity 2") (fun () ->
      ignore (rel "r" [ "a"; "b" ] [ [ 1 ] ]))

let test_project () =
  let p = Relation.project [ "b" ] r_edges in
  check_cardinality "projected" 3 (Relation.cardinality p);
  Alcotest.(check (list string)) "schema" [ "b" ] (Relation.schema_list p);
  (* reorder *)
  let swapped = Relation.project [ "b"; "a" ] r_edges in
  Alcotest.(check bool) "reordered row" true
    (Relation.mem (Tuple.of_ints [ 2; 1 ]) swapped)

let test_rename () =
  let r = Relation.rename [ ("a", "x") ] r_edges in
  Alcotest.(check (list string)) "renamed" [ "x"; "b" ] (Relation.schema_list r);
  let r2 = Relation.rename_positional [ "u"; "v" ] r_edges in
  Alcotest.(check (list string)) "positional" [ "u"; "v" ] (Relation.schema_list r2)

let test_select_restrict () =
  let big = Relation.restrict r_edges "a" (fun v -> Value.to_int v >= 2) in
  check_cardinality "restricted" 2 (Relation.cardinality big);
  let none = Relation.select (fun _ -> false) r_edges in
  Alcotest.(check bool) "empty" true (Relation.is_empty none)

(* ------------------------------------------------------------------ *)
(* Joins *)

let test_natural_join_chain () =
  let r2 = Relation.rename_positional [ "b"; "c" ] r_edges in
  let j = Relation.natural_join r_edges r2 in
  (* paths of length 2: 1-2-3, 2-3-4, 1-3-4 *)
  check_cardinality "join size" 3 (Relation.cardinality j);
  Alcotest.(check (list string)) "join schema" [ "a"; "b"; "c" ]
    (Relation.schema_list j);
  Alcotest.(check bool) "has 1-2-3" true
    (Relation.mem (Tuple.of_ints [ 1; 2; 3 ]) j)

let test_join_no_common_is_product () =
  let s = rel "s" [ "c" ] [ [ 7 ]; [ 8 ] ] in
  let j = Relation.natural_join r_edges s in
  check_cardinality "product size" 8 (Relation.cardinality j);
  let p = Relation.product r_edges s in
  Alcotest.(check bool) "same as product" true (Relation.set_equal j p)

let test_product_rejects_shared () =
  Alcotest.check_raises "shared attr"
    (Invalid_argument "Relation.product: shared attribute a") (fun () ->
      ignore (Relation.product r_edges r_edges))

let test_sort_merge_join () =
  let r2 = Relation.rename_positional [ "b"; "c" ] r_edges in
  let hash = Relation.natural_join r_edges r2 in
  let merge = Relation.sort_merge_join r_edges r2 in
  Alcotest.(check bool) "agree" true (Relation.set_equal hash merge);
  (* no common attributes: product *)
  let s = rel "s" [ "z" ] [ [ 7 ]; [ 8 ] ] in
  Alcotest.(check bool) "product" true
    (Relation.set_equal (Relation.sort_merge_join r_edges s)
       (Relation.product r_edges s))

let test_semijoin () =
  let s = rel "s" [ "b" ] [ [ 2 ]; [ 4 ] ] in
  let sj = Relation.semijoin r_edges s in
  check_cardinality "semijoin" 2 (Relation.cardinality sj);
  Alcotest.(check bool) "kept 1-2" true (Relation.mem (Tuple.of_ints [ 1; 2 ]) sj);
  Alcotest.(check bool) "kept 3-4" true (Relation.mem (Tuple.of_ints [ 3; 4 ]) sj);
  (* no common attributes: semijoin keeps all iff other side nonempty *)
  let t = rel "t" [ "z" ] [ [ 0 ] ] in
  Alcotest.(check bool) "nonempty other side" true
    (Relation.set_equal (Relation.semijoin r_edges t) r_edges);
  let empty_t = rel "t" [ "z" ] [] in
  Alcotest.(check bool) "empty other side" true
    (Relation.is_empty (Relation.semijoin r_edges empty_t))

(* Degenerate shapes: empty sides, empty common-attribute sets, 0-ary
   operands.  These are the cartesian-guard corners of semijoin /
   natural_join / product. *)
let test_degenerate_cases () =
  let empty_edges = rel "e" [ "a"; "b" ] [] in
  (* semijoin: common attributes present but other side empty *)
  let s_empty = rel "s" [ "b" ] [] in
  Alcotest.(check bool) "semijoin vs empty (common attrs)" true
    (Relation.is_empty (Relation.semijoin r_edges s_empty));
  Alcotest.(check (list string)) "semijoin keeps left schema" [ "a"; "b" ]
    (Relation.schema_list (Relation.semijoin r_edges s_empty));
  (* semijoin: empty left side *)
  let s = rel "s" [ "b" ] [ [ 2 ] ] in
  Alcotest.(check bool) "empty left semijoin" true
    (Relation.is_empty (Relation.semijoin empty_edges s));
  (* semijoin: 0-ary other side acts as a boolean guard *)
  let t_true = rel "t" [] [ [] ] and t_false = rel "t" [] [] in
  Alcotest.(check bool) "0-ary guard true" true
    (Relation.set_equal (Relation.semijoin r_edges t_true) r_edges);
  Alcotest.(check bool) "0-ary guard false" true
    (Relation.is_empty (Relation.semijoin r_edges t_false));
  (* natural_join: empty side kills the join but keeps the merged schema *)
  let r2 = Relation.rename_positional [ "b"; "c" ] empty_edges in
  let j = Relation.natural_join r_edges r2 in
  Alcotest.(check bool) "join vs empty" true (Relation.is_empty j);
  Alcotest.(check (list string)) "join schema survives" [ "a"; "b"; "c" ]
    (Relation.schema_list j);
  let j2 = Relation.natural_join r2 r_edges in
  Alcotest.(check bool) "empty probe side" true (Relation.is_empty j2);
  (* natural_join with no common attributes and an empty side: empty
     product, not the left operand *)
  let z_empty = rel "z" [ "z" ] [] in
  Alcotest.(check bool) "product join vs empty" true
    (Relation.is_empty (Relation.natural_join r_edges z_empty));
  (* product: empty and 0-ary operands *)
  Alcotest.(check bool) "product vs empty" true
    (Relation.is_empty (Relation.product r_edges z_empty));
  Alcotest.(check bool) "product with 0-ary unit" true
    (Relation.set_equal (Relation.product r_edges t_true) r_edges);
  Alcotest.(check bool) "product with 0-ary zero" true
    (Relation.is_empty (Relation.product r_edges t_false));
  (* full projection: nonempty relation projects to the single 0-ary row *)
  Alcotest.(check int) "project-to-unit cardinality" 1
    (Relation.cardinality (Relation.project [] r_edges));
  Alcotest.(check bool) "project-to-unit of empty" true
    (Relation.is_empty (Relation.project [] empty_edges))

let test_set_ops () =
  let r1 = rel "r" [ "a"; "b" ] [ [ 1; 2 ]; [ 3; 4 ] ] in
  (* same attribute set, different column order *)
  let r2 = rel "r" [ "b"; "a" ] [ [ 2; 1 ]; [ 9; 9 ] ] in
  let u = Relation.union r1 r2 in
  check_cardinality "union" 3 (Relation.cardinality u);
  let i = Relation.inter r1 r2 in
  check_cardinality "inter" 1 (Relation.cardinality i);
  Alcotest.(check bool) "inter row" true (Relation.mem (Tuple.of_ints [ 1; 2 ]) i);
  let d = Relation.diff r1 r2 in
  check_cardinality "diff" 1 (Relation.cardinality d);
  Alcotest.(check bool) "diff row" true (Relation.mem (Tuple.of_ints [ 3; 4 ]) d)

let test_extend () =
  let r = Relation.extend "sum" (fun row ->
      Value.Int (Value.to_int row.(0) + Value.to_int row.(1))) r_edges in
  Alcotest.(check (list string)) "schema" [ "a"; "b"; "sum" ]
    (Relation.schema_list r);
  Alcotest.(check bool) "computed" true (Relation.mem (Tuple.of_ints [ 1; 2; 3 ]) r)

let test_arity_zero () =
  let t = rel "t" [] [ [] ] in
  check_cardinality "one empty tuple" 1 (Relation.cardinality t);
  let f = rel "f" [] [] in
  Alcotest.(check bool) "empty 0-ary" true (Relation.is_empty f);
  (* joining with a 0-ary relation acts as a boolean guard *)
  let j = Relation.natural_join r_edges t in
  Alcotest.(check bool) "guard true" true (Relation.set_equal j r_edges);
  let j2 = Relation.natural_join r_edges f in
  Alcotest.(check bool) "guard false" true (Relation.is_empty j2)

let test_domain () =
  let d = Relation.domain r_edges in
  Alcotest.(check int) "domain size" 4 (Value.Set.cardinal d)

(* ------------------------------------------------------------------ *)
(* Database *)

let test_database () =
  let db = Database.of_relations [ r_edges; rel "s" [ "x" ] [ [ 9 ] ] ] in
  Alcotest.(check (list string)) "names" [ "e"; "s" ] (Database.names db);
  Alcotest.(check int) "size" 5 (Database.size db);
  Alcotest.(check int) "cells" 9 (Database.cells db);
  Alcotest.(check int) "arity" 2 (Database.arity_of db "e");
  Alcotest.(check int) "domain" 5 (Value.Set.cardinal (Database.domain db));
  Alcotest.(check bool) "find_opt none" true (Database.find_opt db "zzz" = None)

let test_database_unnamed () =
  Alcotest.check_raises "unnamed"
    (Invalid_argument "Database.add: relation has no name") (fun () ->
      ignore (Database.add (Relation.create ~schema:[ "x" ] []) Database.empty))

(* ------------------------------------------------------------------ *)
(* Properties *)

let qcheck_tests =
  let random_rel rng ~schema =
    Qgen.random_relation rng ~name:"r" ~arity:(List.length schema)
      ~domain_size:4
      ~tuples:(1 + Random.State.int rng 12)
    |> Relation.rename_positional schema
  in
  [
    Qgen.seeded_property ~name:"join is commutative (as sets)" ~count:100
      (fun rng ->
        let r = random_rel rng ~schema:[ "a"; "b" ] in
        let s = random_rel rng ~schema:[ "b"; "c" ] in
        Relation.set_equal (Relation.natural_join r s)
          (Relation.natural_join s r));
    Qgen.seeded_property ~name:"join is associative (as sets)" ~count:100
      (fun rng ->
        let r = random_rel rng ~schema:[ "a"; "b" ] in
        let s = random_rel rng ~schema:[ "b"; "c" ] in
        let t = random_rel rng ~schema:[ "c"; "d" ] in
        Relation.set_equal
          (Relation.natural_join (Relation.natural_join r s) t)
          (Relation.natural_join r (Relation.natural_join s t)));
    Qgen.seeded_property ~name:"sort-merge join = hash join" ~count:100
      (fun rng ->
        let r = random_rel rng ~schema:[ "a"; "b" ] in
        let s = random_rel rng ~schema:[ "b"; "c" ] in
        Relation.set_equal (Relation.sort_merge_join r s)
          (Relation.natural_join r s));
    Qgen.seeded_property ~name:"semijoin = project of join" ~count:100
      (fun rng ->
        let r = random_rel rng ~schema:[ "a"; "b" ] in
        let s = random_rel rng ~schema:[ "b"; "c" ] in
        Relation.set_equal (Relation.semijoin r s)
          (Relation.project [ "a"; "b" ] (Relation.natural_join r s)));
    Qgen.seeded_property ~name:"semijoin shrinks" ~count:100 (fun rng ->
        let r = random_rel rng ~schema:[ "a"; "b" ] in
        let s = random_rel rng ~schema:[ "b"; "c" ] in
        Relation.cardinality (Relation.semijoin r s) <= Relation.cardinality r);
    Qgen.seeded_property ~name:"union/inter/diff partition" ~count:100
      (fun rng ->
        let r = random_rel rng ~schema:[ "a"; "b" ] in
        let s = random_rel rng ~schema:[ "a"; "b" ] in
        Relation.cardinality (Relation.union r s)
        = Relation.cardinality (Relation.diff r s)
          + Relation.cardinality (Relation.inter r s)
          + Relation.cardinality (Relation.diff s r));
    Qgen.seeded_property ~name:"projection is monotone" ~count:100 (fun rng ->
        let r = random_rel rng ~schema:[ "a"; "b"; "c" ] in
        let s = Relation.select (fun row -> Value.to_int row.(0) < 2) r in
        Relation.cardinality (Relation.project [ "a"; "c" ] s)
        <= Relation.cardinality (Relation.project [ "a"; "c" ] r));
    Qgen.seeded_property ~name:"double rename is identity" ~count:100
      (fun rng ->
        let r = random_rel rng ~schema:[ "a"; "b" ] in
        let there = Relation.rename [ ("a", "z") ] r in
        let back = Relation.rename [ ("z", "a") ] there in
        Relation.set_equal r back);
  ]

let () =
  Alcotest.run "relational"
    [
      ( "value",
        [
          Alcotest.test_case "order" `Quick test_value_order;
          Alcotest.test_case "of_string" `Quick test_value_of_string;
          Alcotest.test_case "to_int" `Quick test_value_to_int;
        ] );
      ( "tuple",
        [
          Alcotest.test_case "compare" `Quick test_tuple_compare;
          Alcotest.test_case "sub/append" `Quick test_tuple_sub_append;
        ] );
      ( "relation",
        [
          Alcotest.test_case "dedup" `Quick test_create_dedups;
          Alcotest.test_case "validation" `Quick test_create_validates;
          Alcotest.test_case "project" `Quick test_project;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "select" `Quick test_select_restrict;
          Alcotest.test_case "natural join" `Quick test_natural_join_chain;
          Alcotest.test_case "sort-merge join" `Quick test_sort_merge_join;
          Alcotest.test_case "join as product" `Quick test_join_no_common_is_product;
          Alcotest.test_case "product guard" `Quick test_product_rejects_shared;
          Alcotest.test_case "semijoin" `Quick test_semijoin;
          Alcotest.test_case "degenerate cases" `Quick test_degenerate_cases;
          Alcotest.test_case "set ops" `Quick test_set_ops;
          Alcotest.test_case "extend" `Quick test_extend;
          Alcotest.test_case "0-ary relations" `Quick test_arity_zero;
          Alcotest.test_case "domain" `Quick test_domain;
        ] );
      ( "database",
        [
          Alcotest.test_case "basics" `Quick test_database;
          Alcotest.test_case "unnamed rejected" `Quick test_database_unnamed;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
