module Value = Paradb_relational.Value
module Tuple = Paradb_relational.Tuple
open Paradb_query

module Astring_free = struct
  let contains = Test_support.contains
end

let x = Term.var "x"
let y = Term.var "y"
let z = Term.var "z"
let c1 = Term.int 1
let c2 = Term.int 2

(* ------------------------------------------------------------------ *)
(* Terms and bindings *)

let test_term_vars () =
  Alcotest.(check (list string)) "dedup ordered" [ "x"; "y" ]
    (Term.vars [ x; c1; y; x ])

let test_binding () =
  let b = Binding.of_list [ ("x", Value.Int 1) ] in
  Alcotest.(check bool) "find" true (Binding.find "x" b = Some (Value.Int 1));
  Alcotest.(check bool) "extend same ok" true
    (Binding.extend "x" (Value.Int 1) b <> None);
  Alcotest.(check bool) "extend conflict" true
    (Binding.extend "x" (Value.Int 2) b = None);
  let b2 = Binding.of_list [ ("y", Value.Int 3) ] in
  (match Binding.merge b b2 with
  | Some m -> Alcotest.(check int) "merged" 2 (Binding.cardinal m)
  | None -> Alcotest.fail "merge failed");
  Alcotest.(check bool) "merge conflict" true
    (Binding.merge b (Binding.of_list [ ("x", Value.Int 9) ]) = None);
  Alcotest.(check int) "image" 1
    (Value.Set.cardinal (Binding.image b [ "x"; "zzz" ]))

(* ------------------------------------------------------------------ *)
(* Atoms *)

let test_atom_matches () =
  let a = Atom.make "r" [ x; y; x; c1 ] in
  (* consistent: repeated var equal, constant matches *)
  (match Atom.matches a (Tuple.of_ints [ 5; 6; 5; 1 ]) with
  | Some b ->
      Alcotest.(check bool) "x" true (Binding.find "x" b = Some (Value.Int 5));
      Alcotest.(check bool) "y" true (Binding.find "y" b = Some (Value.Int 6))
  | None -> Alcotest.fail "expected match");
  Alcotest.(check bool) "repeated var mismatch" true
    (Atom.matches a (Tuple.of_ints [ 5; 6; 7; 1 ]) = None);
  Alcotest.(check bool) "constant mismatch" true
    (Atom.matches a (Tuple.of_ints [ 5; 6; 5; 2 ]) = None);
  Alcotest.(check bool) "arity mismatch" true
    (Atom.matches a (Tuple.of_ints [ 5; 6; 5 ]) = None)

let test_atom_substitute () =
  let a = Atom.make "r" [ x; y ] in
  let b = Binding.of_list [ ("x", Value.Int 7) ] in
  let a' = Atom.substitute b a in
  Alcotest.(check string) "grounded" "r(7, y)" (Atom.to_string a')

(* ------------------------------------------------------------------ *)
(* Constraints *)

let test_constr () =
  let b = Binding.of_list [ ("x", Value.Int 1); ("y", Value.Int 2) ] in
  Alcotest.(check bool) "neq" true (Constr.holds b (Constr.neq x y));
  Alcotest.(check bool) "lt" true (Constr.holds b (Constr.lt x y));
  Alcotest.(check bool) "le" true (Constr.holds b (Constr.le x y));
  Alcotest.(check bool) "not lt" false (Constr.holds b (Constr.lt y x));
  Alcotest.(check bool) "var const" false (Constr.holds b (Constr.neq x c1));
  Alcotest.(check bool) "ground" true (Constr.holds Binding.empty (Constr.lt c1 c2));
  Alcotest.check_raises "unbound" (Invalid_argument "Constr.holds: unbound variable z")
    (fun () -> ignore (Constr.holds b (Constr.neq x z)))

(* ------------------------------------------------------------------ *)
(* Conjunctive queries *)

let test_cq_safety () =
  Alcotest.(check bool) "head var must be in body" true
    (try
       ignore (Cq.make ~head:[ x ] [ Atom.make "r" [ y ] ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "constraint var must be in body" true
    (try
       ignore
         (Cq.make ~head:[] ~constraints:[ Constr.neq x z ]
            [ Atom.make "r" [ x ] ]);
       false
     with Invalid_argument _ -> true)

let test_cq_measures () =
  let q =
    Cq.make ~head:[ x ]
      ~constraints:[ Constr.neq x y ]
      [ Atom.make "r" [ x; y ]; Atom.make "s" [ y; z ] ]
  in
  Alcotest.(check int) "v" 3 (Cq.num_vars q);
  Alcotest.(check (list string)) "vars" [ "x"; "y"; "z" ] (Cq.vars q);
  Alcotest.(check int) "q size" (2 + 3 + 3 + 3) (Cq.size q);
  Alcotest.(check bool) "not boolean" false (Cq.is_boolean q);
  Alcotest.(check bool) "neq only" true (Cq.neq_only q)

let test_close_with_tuple () =
  let q = Cq.make ~head:[ x; y; x ] [ Atom.make "r" [ x; y ] ] in
  (match Cq.close_with_tuple q (Tuple.of_ints [ 1; 2; 1 ]) with
  | Some closed ->
      Alcotest.(check bool) "boolean" true (Cq.is_boolean closed);
      Alcotest.(check string) "substituted" "ans() :- r(1, 2)"
        (Cq.to_string closed)
  | None -> Alcotest.fail "expected close");
  Alcotest.(check bool) "repeated head var conflict" true
    (Cq.close_with_tuple q (Tuple.of_ints [ 1; 2; 3 ]) = None);
  let qc = Cq.make ~head:[ c1 ] [ Atom.make "r" [ x ] ] in
  Alcotest.(check bool) "head const mismatch" true
    (Cq.close_with_tuple qc (Tuple.of_ints [ 2 ]) = None);
  Alcotest.(check bool) "head const match" true
    (Cq.close_with_tuple qc (Tuple.of_ints [ 1 ]) <> None)

let test_cq_rename () =
  let q = Cq.make ~head:[ x ] [ Atom.make "r" [ x; y ] ] in
  let q' = Cq.rename (fun v -> v ^ "_0") q in
  Alcotest.(check (list string)) "renamed" [ "x_0"; "y_0" ] (Cq.vars q')

let test_cq_alpha_normalize () =
  (* variables are renamed V0, V1, ... in first-occurrence order, so any
     two alpha-equivalent queries normalize — and cache-key — identically *)
  let q1 = Parser.parse_cq "ans(X, Y) :- e(X, Z), e(Z, Y), X != Y." in
  let q2 = Parser.parse_cq "ans(Foo, Bar) :- e(Foo, Mid), e(Mid, Bar), Foo != Bar." in
  Alcotest.(check string) "normal form" "ans(V0, V2) :- e(V0, V1), e(V1, V2), V0 != V2"
    (Cq.to_string (Cq.alpha_normalize q1));
  Alcotest.(check string) "cache key agrees" (Cq.cache_key q1) (Cq.cache_key q2);
  (* constants are untouched *)
  let q3 = Parser.parse_cq "ans(X) :- e(X, 3), X != alice." in
  Alcotest.(check string) "constants preserved" "ans(V0) :- e(V0, 3), V0 != alice"
    (Cq.to_string (Cq.alpha_normalize q3));
  (* structurally different queries keep distinct keys *)
  let q4 = Parser.parse_cq "ans(X, Y) :- e(Y, Z), e(Z, X), X != Y." in
  Alcotest.(check bool) "different structure, different key" false
    (Cq.cache_key q1 = Cq.cache_key q4)

(* ------------------------------------------------------------------ *)
(* First-order formulas *)

let test_fo_vars () =
  let f = Fo.exists [ "x" ] (Fo.conj [ Fo.atom "r" [ x; y ]; Fo.neg (Fo.atom "s" [ x ]) ]) in
  Alcotest.(check (list string)) "free" [ "y" ] (Fo.free_vars f);
  Alcotest.(check int) "all" 2 (Fo.num_vars f);
  Alcotest.(check bool) "not sentence" false (Fo.is_sentence f);
  Alcotest.(check bool) "not positive" false (Fo.is_positive f)

let test_fo_variable_reuse_counts_once () =
  (* The subtlety of the parameter v: a reused quantified name counts once. *)
  let f =
    Fo.conj
      [
        Fo.exists [ "x" ] (Fo.atom "r" [ x ]);
        Fo.exists [ "x" ] (Fo.atom "s" [ x ]);
      ]
  in
  Alcotest.(check int) "v = 1" 1 (Fo.num_vars f);
  (* ... and prenexing renames apart, increasing v: *)
  let prefix, _ = Fo.prenex f in
  Alcotest.(check int) "prenex has 2 quantifiers" 2 (List.length prefix)

let test_nnf () =
  let f = Fo.neg (Fo.conj [ Fo.atom "r" [ x ]; Fo.neg (Fo.atom "s" [ x ]) ]) in
  let n = Fo.nnf f in
  Alcotest.(check string) "pushed" "(!r(x) | s(x))" (Fo.to_string n)

let test_prenex () =
  let f =
    Fo.conj
      [
        Fo.exists [ "x" ] (Fo.atom "r" [ x ]);
        Fo.neg (Fo.exists [ "y" ] (Fo.atom "s" [ y ]));
      ]
  in
  let prefix, matrix = Fo.prenex f in
  Alcotest.(check int) "two quantifiers" 2 (List.length prefix);
  Alcotest.(check bool) "one forall" true
    (List.exists (fun (q, _) -> q = Fo.Q_forall) prefix);
  (* matrix must be quantifier-free *)
  let rec qfree = function
    | Fo.Exists _ | Fo.Forall _ -> false
    | Fo.Not g -> qfree g
    | Fo.And gs | Fo.Or gs -> List.for_all qfree gs
    | Fo.True | Fo.False | Fo.Rel _ | Fo.Eq _ -> true
  in
  Alcotest.(check bool) "matrix qfree" true (qfree matrix)

let test_positive_to_cqs () =
  let f =
    Fo.exists [ "x" ]
      (Fo.disj [ Fo.atom "r" [ x; c1 ]; Fo.conj [ Fo.atom "s" [ x ]; Fo.atom "t" [ x ] ] ])
  in
  let cqs = Fo.positive_to_cqs f in
  Alcotest.(check int) "two disjuncts" 2 (List.length cqs);
  List.iter (fun q -> Alcotest.(check bool) "boolean" true (Cq.is_boolean q)) cqs

let test_positive_to_cqs_equalities () =
  (* x = 1 in a disjunct gets substituted away *)
  let f = Fo.exists [ "x" ] (Fo.conj [ Fo.atom "r" [ x ]; Fo.eq x c1 ]) in
  (match Fo.positive_to_cqs f with
  | [ q ] -> Alcotest.(check string) "substituted" "ans() :- r(1)" (Cq.to_string q)
  | other -> Alcotest.fail (Printf.sprintf "expected 1 cq, got %d" (List.length other)));
  (* contradictory constants drop the disjunct *)
  let contradiction = Fo.conj [ Fo.atom "r" [ c1 ]; Fo.eq c1 c2 ] in
  Alcotest.(check int) "dropped" 0 (List.length (Fo.positive_to_cqs contradiction))

let test_fo_guards () =
  Alcotest.(check bool) "reject non-positive" true
    (try ignore (Fo.positive_to_cqs (Fo.neg Fo.True)); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "reject open" true
    (try ignore (Fo.positive_to_cqs (Fo.atom "r" [ x ])); false
     with Invalid_argument _ -> true)

let test_of_boolean_cq () =
  let q =
    Cq.make ~head:[] ~constraints:[ Constr.neq x y ]
      [ Atom.make "r" [ x; y ] ]
  in
  let f = Fo.of_boolean_cq q in
  Alcotest.(check bool) "sentence" true (Fo.is_sentence f)

(* ------------------------------------------------------------------ *)
(* Ineq formulas *)

let test_ineq_formula () =
  let f =
    Ineq_formula.disj
      [
        Ineq_formula.atom (Constr.neq x y);
        Ineq_formula.conj
          [ Ineq_formula.atom (Constr.neq x c1); Ineq_formula.atom (Constr.neq y c2) ];
      ]
  in
  Alcotest.(check (list string)) "vars" [ "x"; "y" ] (Ineq_formula.vars f);
  Alcotest.(check int) "consts" 2 (List.length (Ineq_formula.constants f));
  Alcotest.(check bool) "neq only" true (Ineq_formula.neq_only f);
  let b = Binding.of_list [ ("x", Value.Int 1); ("y", Value.Int 1) ] in
  (* x = y, so first disjunct false; x = 1 so second false *)
  Alcotest.(check bool) "holds" false (Ineq_formula.holds b f);
  let b2 = Binding.of_list [ ("x", Value.Int 3); ("y", Value.Int 1) ] in
  Alcotest.(check bool) "holds2" true (Ineq_formula.holds b2 f)

(* ------------------------------------------------------------------ *)
(* Datalog rules and programs *)

let test_rule () =
  let r = Rule.make (Atom.make "p" [ x ]) [ Atom.make "e" [ x; y ] ] in
  Alcotest.(check int) "vars" 2 (Rule.num_vars r);
  Alcotest.(check bool) "not fact" false (Rule.is_fact r);
  Alcotest.(check bool) "range restriction" true
    (try ignore (Rule.make (Atom.make "p" [ z ]) [ Atom.make "e" [ x; y ] ]); false
     with Invalid_argument _ -> true)

let test_program () =
  let p =
    Program.make
      [
        Rule.make (Atom.make "tc" [ x; y ]) [ Atom.make "e" [ x; y ] ];
        Rule.make (Atom.make "tc" [ x; z ])
          [ Atom.make "e" [ x; y ]; Atom.make "tc" [ y; z ] ];
      ]
      ~goal:"tc"
  in
  Alcotest.(check (list string)) "idb" [ "tc" ] (Program.idb_predicates p);
  Alcotest.(check (list string)) "edb" [ "e" ] (Program.edb_predicates p);
  Alcotest.(check int) "arity" 2 (Program.arity p "tc");
  Alcotest.(check int) "max idb arity" 2 (Program.max_idb_arity p);
  Alcotest.(check bool) "arity consistency" true
    (try
       ignore
         (Program.make
            [ Rule.make (Atom.make "p" [ x ]) [ Atom.make "e" [ x; x ] ];
              Rule.make (Atom.make "p" [ x; y ]) [ Atom.make "e" [ x; y ] ] ]
            ~goal:"p");
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "goal must be idb" true
    (try
       ignore
         (Program.make
            [ Rule.make (Atom.make "p" [ x ]) [ Atom.make "e" [ x; x ] ] ]
            ~goal:"e");
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Parser *)

let test_parse_cq () =
  let q = Parser.parse_cq "ans(X, Y) :- e(X, Z), e(Z, Y), X != Y, Z < 3." in
  Alcotest.(check int) "atoms" 2 (List.length q.Cq.body);
  Alcotest.(check int) "constraints" 2 (List.length q.Cq.constraints);
  Alcotest.(check (list string)) "head vars" [ "X"; "Y" ] (Cq.head_vars q);
  Alcotest.(check int) "vars" 3 (Cq.num_vars q)

let test_parse_constants () =
  let q = Parser.parse_cq "ans(X) :- r(X, 7, foo, \"bar baz\")." in
  match (List.hd q.Cq.body).Atom.args with
  | [ _; Term.Const (Value.Int 7); Term.Const (Value.Str "foo");
      Term.Const (Value.Str "bar baz") ] -> ()
  | _ -> Alcotest.fail "wrong constants"

let test_parse_boolean_head () =
  let q = Parser.parse_cq "goal :- e(X, X)." in
  Alcotest.(check bool) "boolean" true (Cq.is_boolean q);
  Alcotest.(check string) "name" "goal" q.Cq.name

let test_parse_fo () =
  let f = Parser.parse_fo "exists X Y. (e(X, Y) & !(X = Y))" in
  Alcotest.(check bool) "sentence" true (Fo.is_sentence f);
  let g = Parser.parse_fo "forall X. (e(X, X) -> false)" in
  Alcotest.(check bool) "forall parsed" true
    (match g with Fo.Forall _ -> true | _ -> false);
  let h = Parser.parse_fo "X != Y" in
  Alcotest.(check bool) "neq sugar" true
    (match h with Fo.Not (Fo.Eq _) -> true | _ -> false)

let test_parse_precedence () =
  (* & binds tighter than | *)
  let f = Parser.parse_fo "r(X) | s(X) & t(X)" in
  (match f with
  | Fo.Or [ Fo.Rel _; Fo.And _ ] -> ()
  | _ -> Alcotest.fail (Fo.to_string f));
  (* exists extends to the right *)
  let g = Parser.parse_fo "exists X. r(X) & s(X)" in
  match g with
  | Fo.Exists (_, Fo.And _) -> ()
  | _ -> Alcotest.fail (Fo.to_string g)

let test_parse_facts () =
  let db = Parser.parse_facts "% comment\ne(1, 2). e(2, 3).\nname(1, alice)." in
  let module Database = Paradb_relational.Database in
  Alcotest.(check int) "relations" 2 (List.length (Database.names db));
  Alcotest.(check int) "e rows" 2
    (Paradb_relational.Relation.cardinality (Database.find db "e"));
  Alcotest.(check bool) "mixed arity rejected" true
    (try ignore (Parser.parse_facts "e(1). e(1, 2)."); false
     with Parser.Parse_error _ -> true);
  Alcotest.(check bool) "vars rejected" true
    (try ignore (Parser.parse_facts "e(X)."); false
     with Parser.Parse_error _ -> true)

let test_parse_program () =
  let p =
    Parser.parse_program
      "tc(X, Y) :- e(X, Y). tc(X, Z) :- e(X, Y), tc(Y, Z)." ~goal:"tc"
  in
  Alcotest.(check int) "rules" 2 (List.length p.Program.rules)

let test_parse_error_positions () =
  (try
     ignore (Parser.parse_cq "ans(X) :- e(X,\n  Y) e(Y).");
     Alcotest.fail "expected parse error"
   with Parser.Parse_error msg ->
     Alcotest.(check bool) "mentions line 2" true
       (Astring_free.contains msg "line 2"));
  try
    ignore (Parser.parse_fo "exists X. (e(X, X) &");
    Alcotest.fail "expected parse error"
  with Parser.Parse_error msg ->
    Alcotest.(check bool) "mentions a position" true
      (Astring_free.contains msg "line 1")

let test_parse_errors () =
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejects " ^ s) true
        (try ignore (Parser.parse_cq s); false
         with Parser.Parse_error _ | Invalid_argument _ -> true))
    [ "ans(X)"; "ans(X) :- e(X,"; "ans(X) :- e(X, Y) e"; "ans(X) :- X != " ]

let test_parse_malformed_atoms () =
  (* syntactically broken atoms must raise [Parse_error], never produce
     a silently different query *)
  List.iter
    (fun s ->
      Alcotest.(check bool) ("malformed " ^ s) true
        (try ignore (Parser.parse_cq s); false
         with Parser.Parse_error _ -> true))
    [
      "ans(X) :- e(X Y).";        (* missing comma *)
      "ans(X) :- e(X,, Y).";      (* doubled comma *)
      "ans(X) :- e(X, Y)), e(Y, Z)."; (* stray close paren *)
      "ans(X) :- (X, Y).";        (* atom with no relation name *)
      "ans(X) :- e(X, Y), .";     (* trailing comma before period *)
      "ans(X) :- e(X, !Y).";      (* bad token inside an atom *)
    ]

let test_parse_unbound_head_vars () =
  (* Safety violations surface as [Invalid_argument] from [Cq.make]:
     every head and constraint variable must occur in a relational
     atom. *)
  List.iter
    (fun s ->
      Alcotest.(check bool) ("unsafe " ^ s) true
        (try ignore (Parser.parse_cq s); false
         with Invalid_argument _ -> true))
    [
      "ans(Z) :- e(X, Y).";             (* head var not in body *)
      "ans(X, Z) :- e(X, Y).";          (* one bound, one not *)
      "ans(X) :- e(X, Y), X != Z.";     (* constraint var unbound *)
      "ans(X) :- e(X, Y), Z < 3.";      (* comparison var unbound *)
    ];
  (* and the same names are fine once the body binds them *)
  let q = Parser.parse_cq "ans(Z) :- e(X, Y), e(Y, Z), X != Z." in
  Alcotest.(check int) "three vars" 3 (Cq.num_vars q)

(* ------------------------------------------------------------------ *)
(* Fact format *)

let test_fact_format () =
  let db =
    Parser.parse_facts "e(1, 2). name(1, alice). quoted(1, \"two words\")."
  in
  let back = Fact_format.roundtrip db in
  let module Database = Paradb_relational.Database in
  let module Relation = Paradb_relational.Relation in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " preserved") true
        (Relation.set_equal (Database.find db name) (Database.find back name)))
    (Database.names db);
  (* numeric strings must round-trip as strings, hence get quoted *)
  Alcotest.(check string) "digit string quoted" "\"42\""
    (Fact_format.value_to_syntax (Value.Str "42"));
  Alcotest.(check string) "int bare" "42"
    (Fact_format.value_to_syntax (Value.Int 42));
  Alcotest.(check string) "keyword quoted" "\"exists\""
    (Fact_format.value_to_syntax (Value.Str "exists"))

(* print-parse roundtrip on random tree queries *)
let qcheck_tests =
  [
    Qgen.seeded_property ~name:"cq print/parse roundtrip" ~count:100
      (fun rng ->
        let q = Qgen.random_tree_cq rng ~max_atoms:4 ~max_arity:3 ~neq_tries:3 ~domain_size:5 in
        (* our variables are lowercase; uppercase them for the parser *)
        let q = Cq.rename String.capitalize_ascii q in
        let q' = Parser.parse_cq (Cq.to_string q) in
        Cq.equal q q');
    (* print∘parse is the identity up to variable renaming, and the
       alpha-normal form is a fixpoint of the parser *)
    Qgen.seeded_property ~name:"parse/print identity up to renaming" ~count:100
      (fun rng ->
        let q = Qgen.random_tree_cq rng ~max_atoms:4 ~max_arity:3 ~neq_tries:3 ~domain_size:5 in
        let q = Cq.rename String.capitalize_ascii q in
        let q' = Parser.parse_cq (Cq.to_string q) in
        (* a systematic injective renaming must not change the normal form *)
        let scrambled = Cq.rename (fun v -> "Z" ^ v ^ "q") q in
        let norm = Cq.alpha_normalize q in
        Cq.equal (Cq.alpha_normalize q') norm
        && Cq.equal (Cq.alpha_normalize scrambled) norm
        && Cq.cache_key scrambled = Cq.cache_key q
        && Cq.equal (Parser.parse_cq (Cq.to_string norm)) norm);
    QCheck.Test.make ~name:"parser never crashes on garbage" ~count:300
      QCheck.(string_of_size (Gen.int_range 0 40))
      (fun s ->
        let safe parse =
          try
            ignore (parse s);
            true
          with
          | Parser.Parse_error _ | Invalid_argument _ -> true
          | _ -> false
        in
        safe Parser.parse_cq && safe Parser.parse_fo && safe Parser.parse_facts);
    Qgen.seeded_property ~name:"fact-format roundtrip" ~count:60 (fun rng ->
        let db =
          Qgen.random_database rng ~schema:[ ("r1", 1); ("r2", 2) ]
            ~domain_size:5 ~tuples:10
        in
        let back = Fact_format.roundtrip db in
        let module Database = Paradb_relational.Database in
        let module Relation = Paradb_relational.Relation in
        List.for_all
          (fun name ->
            Relation.set_equal (Database.find db name) (Database.find back name))
          (Database.names db));
    Qgen.seeded_property ~name:"prenex preserves truth" ~count:60 (fun rng ->
        let db =
          Qgen.random_database rng ~schema:[ ("r1", 1); ("r2", 2) ]
            ~domain_size:3 ~tuples:6
        in
        let f =
          Qgen.random_positive_sentence rng
            ~relations:[ ("r1", 1); ("r2", 2) ]
            ~domain_size:3 ~depth:3
        in
        let prefix, matrix = Fo.prenex f in
        let pf =
          List.fold_right
            (fun (q, v) acc ->
              match q with
              | Fo.Q_exists -> Fo.exists [ v ] acc
              | Fo.Q_forall -> Fo.forall [ v ] acc)
            prefix matrix
        in
        Paradb_eval.Fo_naive.sentence_holds db f
        = Paradb_eval.Fo_naive.sentence_holds db pf);
    Qgen.seeded_property ~name:"positive_to_cqs preserves truth" ~count:60
      (fun rng ->
        let db =
          Qgen.random_database rng ~schema:[ ("r1", 1); ("r2", 2) ]
            ~domain_size:3 ~tuples:6
        in
        let f =
          Qgen.random_positive_sentence rng
            ~relations:[ ("r1", 1); ("r2", 2) ]
            ~domain_size:3 ~depth:3
        in
        let cqs = Fo.positive_to_cqs f in
        let union_sat =
          List.exists (fun q -> Paradb_eval.Cq_naive.is_satisfiable db q) cqs
        in
        union_sat = Paradb_eval.Fo_naive.sentence_holds db f);
  ]

let () =
  Alcotest.run "query"
    [
      ( "terms",
        [
          Alcotest.test_case "vars" `Quick test_term_vars;
          Alcotest.test_case "bindings" `Quick test_binding;
        ] );
      ( "atoms",
        [
          Alcotest.test_case "matches" `Quick test_atom_matches;
          Alcotest.test_case "substitute" `Quick test_atom_substitute;
        ] );
      ("constraints", [ Alcotest.test_case "holds" `Quick test_constr ]);
      ( "cq",
        [
          Alcotest.test_case "safety" `Quick test_cq_safety;
          Alcotest.test_case "measures" `Quick test_cq_measures;
          Alcotest.test_case "close with tuple" `Quick test_close_with_tuple;
          Alcotest.test_case "rename" `Quick test_cq_rename;
          Alcotest.test_case "alpha normalize" `Quick test_cq_alpha_normalize;
        ] );
      ( "fo",
        [
          Alcotest.test_case "vars" `Quick test_fo_vars;
          Alcotest.test_case "variable reuse" `Quick test_fo_variable_reuse_counts_once;
          Alcotest.test_case "nnf" `Quick test_nnf;
          Alcotest.test_case "prenex" `Quick test_prenex;
          Alcotest.test_case "positive to cqs" `Quick test_positive_to_cqs;
          Alcotest.test_case "equality elimination" `Quick test_positive_to_cqs_equalities;
          Alcotest.test_case "guards" `Quick test_fo_guards;
          Alcotest.test_case "of boolean cq" `Quick test_of_boolean_cq;
        ] );
      ("ineq formula", [ Alcotest.test_case "eval" `Quick test_ineq_formula ]);
      ( "datalog ast",
        [
          Alcotest.test_case "rule" `Quick test_rule;
          Alcotest.test_case "program" `Quick test_program;
        ] );
      ( "parser",
        [
          Alcotest.test_case "cq" `Quick test_parse_cq;
          Alcotest.test_case "constants" `Quick test_parse_constants;
          Alcotest.test_case "boolean head" `Quick test_parse_boolean_head;
          Alcotest.test_case "fo" `Quick test_parse_fo;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "facts" `Quick test_parse_facts;
          Alcotest.test_case "programs" `Quick test_parse_program;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "malformed atoms" `Quick test_parse_malformed_atoms;
          Alcotest.test_case "unbound head vars" `Quick
            test_parse_unbound_head_vars;
          Alcotest.test_case "error positions" `Quick test_parse_error_positions;
        ] );
      ("fact format", [ Alcotest.test_case "roundtrip" `Quick test_fact_format ]);
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
