(* The structure-aware planner and the compiled push-based pipeline:
   classification (GYO acyclic / low-width / cyclic), plan shape, the
   compiled engine's exact agreement with the interpreters on random
   acyclic and cyclic instances, and Budget cancellation inside compiled
   pipelines. *)

module Planner = Paradb_planner.Planner
module Compile = Paradb_eval.Compile
module Cq_naive = Paradb_eval.Cq_naive
module Join_eval = Paradb_eval.Join_eval
module Yannakakis = Paradb_yannakakis.Yannakakis
module Relation = Paradb_relational.Relation
module Database = Paradb_relational.Database
module Value = Paradb_relational.Value
module Budget = Paradb_telemetry.Budget
module Generators = Paradb_workload.Generators
open Paradb_query

let plan text = Planner.plan (Parser.parse_cq text)

let edge rows =
  Database.of_relations
    [
      Relation.create ~name:"e" ~schema:[ "a"; "b" ]
        (List.map
           (fun (a, b) -> [| Value.Int a; Value.Int b |])
           rows);
    ]

let triangle_db = edge [ (1, 2); (2, 3); (3, 1); (2, 2); (4, 5) ]

(* ------------------------------------------------------------------ *)
(* Classification *)

let test_classification () =
  let p = plan "ans(X, Z) :- e(X, Y), e(Y, Z)." in
  Alcotest.(check bool) "chain acyclic" true
    (p.Planner.classification = Planner.Acyclic);
  Alcotest.(check int) "chain width 1" 1 p.Planner.width;
  Alcotest.(check bool) "chain has a join tree" true (p.Planner.tree <> None);
  Alcotest.(check bool) "chain has a semijoin program" true
    (p.Planner.reduce <> []);
  let t = plan "ans(X) :- e(X, Y), e(Y, Z), e(Z, X)." in
  Alcotest.(check bool) "triangle low-width" true
    (t.Planner.classification = Planner.Low_width 2);
  Alcotest.(check int) "triangle width 2" 2 t.Planner.width;
  Alcotest.(check bool) "triangle has no tree" true (t.Planner.tree = None);
  Alcotest.(check bool) "triangle has no semijoin program" true
    (t.Planner.reduce = []);
  (* 5-clique: 10 binary atoms, every elimination bag is the whole
     vertex set, greedy edge cover needs 3 atoms > threshold 2 *)
  let clique =
    let atoms = ref [] in
    for i = 0 to 4 do
      for j = i + 1 to 4 do
        atoms :=
          Printf.sprintf "e(X%d, X%d)" i j :: !atoms
      done
    done;
    Printf.sprintf "ans(X0) :- %s." (String.concat ", " (List.rev !atoms))
  in
  let c = plan clique in
  (match c.Planner.classification with
  | Planner.Cyclic w ->
      Alcotest.(check bool) "5-clique width estimate >= 3" true (w >= 3)
  | _ -> Alcotest.fail "5-clique should be classified cyclic");
  Alcotest.(check bool) "threshold separates the classes" true
    (Planner.low_width_threshold = 2)

let test_plan_shape () =
  let p = plan "ans(X, Z) :- e(X, Y), e(Y, Z), X != Z." in
  (match p.Planner.steps with
  | Planner.Scan _ :: rest ->
      Alcotest.(check bool) "later steps probe or exists" true
        (List.for_all
           (function Planner.Scan _ -> false | _ -> true)
           rest)
  | _ -> Alcotest.fail "plan must open with a scan");
  Alcotest.(check int) "one filter placed" 1 (List.length p.Planner.filters);
  (* constants and repeated variables become scan-level selections *)
  let s = plan "ans(X) :- e(1, X), e(X, X)." in
  Alcotest.(check int) "constant pinned" 1
    (List.length s.Planner.scans.(0).Planner.selections);
  Alcotest.(check int) "repeated var equality" 1
    (List.length s.Planner.scans.(1).Planner.equalities);
  (* explain renders every structural element *)
  let lines = Planner.explain p in
  let has needle = List.exists (fun l -> Test_support.contains l needle) lines in
  Alcotest.(check bool) "explain: class line" true (has "class: acyclic");
  Alcotest.(check bool) "explain: width line" true (has "width: 1");
  Alcotest.(check bool) "explain: scan step" true (has "scan e");
  Alcotest.(check bool) "explain: probe step" true (has "probe e")

(* ------------------------------------------------------------------ *)
(* Compiled pipeline: hand-picked edge cases *)

let rows rel = Test_support.sorted_rows rel

let same text db =
  let q = Parser.parse_cq text in
  Alcotest.(check (list string)) text
    (rows (Cq_naive.evaluate db q))
    (rows (Compile.evaluate db q))

let test_compiled_edge_cases () =
  same "ans(X, Y) :- e(X, Y)." triangle_db;
  same "ans(X) :- e(X, X)." triangle_db;
  same "ans(X) :- e(1, X)." triangle_db;
  same "ans(Y, X) :- e(X, Y), X != Y." triangle_db;
  same "ans(X, Z) :- e(X, Y), e(Y, Z), X < Z." triangle_db;
  same "ans(X) :- e(X, Y), e(Y, Z), e(Z, X)." triangle_db;
  (* constants in the head *)
  same "ans(X, 7) :- e(X, 2)." triangle_db;
  (* boolean (empty head) and empty body, built directly *)
  let boolean = Cq.make ~name:"q" ~head:[] [ Atom.make "e" [ Term.var "X"; Term.var "Y" ] ] in
  Alcotest.(check (list string)) "boolean head"
    (rows (Cq_naive.evaluate triangle_db boolean))
    (rows (Compile.evaluate triangle_db boolean));
  let empty_body = Cq.make ~name:"q" ~head:[ Term.Const (Value.Int 3) ] [] in
  Alcotest.(check (list string)) "empty body, const head"
    (rows (Cq_naive.evaluate triangle_db empty_body))
    (rows (Compile.evaluate triangle_db empty_body));
  (* a relation missing from the db raises like the interpreters *)
  (try
     ignore (Compile.evaluate triangle_db (Parser.parse_cq "ans(X) :- r9(X)."));
     Alcotest.fail "missing relation should raise"
   with Invalid_argument msg ->
     Alcotest.(check bool) "error names the relation" true
       (Test_support.contains msg "r9"))

(* ------------------------------------------------------------------ *)
(* Budget cancellation in compiled pipelines *)

let test_budget_cancellation () =
  let q = Parser.parse_cq "ans(X, Z) :- e(X, Y), e(Y, Z)." in
  let p = Planner.plan q in
  (* a cancelled budget stops compilation at its entry checkpoint *)
  let b = Budget.start ~deadline_ns:max_int in
  Budget.cancel b;
  (try
     ignore (Compile.compile ~budget:b p triangle_db);
     Alcotest.fail "compile under a cancelled budget should raise"
   with Budget.Exhausted _ -> ());
  (* compiling without a budget, then running with a cancelled one:
     the pipeline's strided checkpoint must fire *)
  let exec = Compile.compile p triangle_db in
  (try
     ignore (Compile.run ~budget:b exec);
     Alcotest.fail "run under a cancelled budget should raise"
   with Budget.Exhausted _ -> ());
  (* an expired deadline on a large scan trips the strided poll even
     without an explicit cancel *)
  let rng = Test_support.rng ~seed:23 () in
  let big = Generators.edge_database rng ~nodes:200 ~edges:8000 in
  let tiny = Budget.start ~deadline_ns:1 in
  while Budget.remaining_ns tiny > 0 do
    ignore (Sys.opaque_identity (Budget.elapsed_ns tiny))
  done;
  (try
     ignore
       (Compile.evaluate ~budget:tiny big
          (Parser.parse_cq "ans(X, W) :- e(X, Y), e(Y, Z), e(Z, W)."));
     Alcotest.fail "expired deadline should raise in the pipeline"
   with Budget.Exhausted _ -> ());
  (* and an untouched generous budget changes nothing *)
  let roomy = Budget.start ~deadline_ns:(30 * 1_000_000_000) in
  let q3 = Parser.parse_cq "ans(X, Z) :- e(X, Y), e(Y, Z)." in
  Alcotest.(check (list string)) "budgeted = unbudgeted"
    (rows (Compile.evaluate triangle_db q3))
    (rows (Compile.evaluate ~budget:roomy triangle_db q3))

(* ------------------------------------------------------------------ *)
(* Properties: compiled agrees exactly with the interpreters *)

let qcheck_tests =
  [
    Qgen.seeded_property ~name:"compiled = naive on random acyclic CQs"
      ~count:150 (fun rng ->
        let db = Qgen.tree_cq_database rng ~max_arity:3 ~domain_size:4 ~tuples:10 in
        let q =
          Generators.random_tree_cq rng ~cmp_tries:2 ~max_atoms:4 ~max_arity:3
            ~neq_tries:3 ~domain_size:4
        in
        rows (Compile.evaluate db q) = rows (Cq_naive.evaluate db q));
    Qgen.seeded_property ~name:"compiled = hash join on acyclic CQs" ~count:100
      (fun rng ->
        let db = Qgen.tree_cq_database rng ~max_arity:3 ~domain_size:4 ~tuples:10 in
        let q =
          Qgen.random_tree_cq rng ~max_atoms:4 ~max_arity:3 ~neq_tries:2
            ~domain_size:4
        in
        rows (Compile.evaluate db q)
        = rows (Join_eval.evaluate ~algorithm:Join_eval.Hash_join db q));
    Qgen.seeded_property
      ~name:"compiled = yannakakis on acyclic constraint-free CQs" ~count:100
      (fun rng ->
        let db = Qgen.tree_cq_database rng ~max_arity:3 ~domain_size:4 ~tuples:10 in
        let q =
          Qgen.random_tree_cq rng ~max_atoms:4 ~max_arity:3 ~neq_tries:0
            ~domain_size:4
        in
        rows (Compile.evaluate db q) = rows (Yannakakis.evaluate db q));
    Qgen.seeded_property ~name:"compiled = naive on random cyclic CQs"
      ~count:80 (fun rng ->
        let db =
          Generators.edge_database rng ~nodes:8
            ~edges:(12 + Random.State.int rng 20)
        in
        let q =
          Generators.random_cyclic_cq rng
            ~cycle:(3 + Random.State.int rng 2)
            ~neq:(Random.State.bool rng)
        in
        rows (Compile.evaluate db q) = rows (Cq_naive.evaluate db q));
  ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "planner"
    [
      ( "planner",
        [
          Alcotest.test_case "classification" `Quick test_classification;
          Alcotest.test_case "plan shape and explain" `Quick test_plan_shape;
        ] );
      ( "compiled",
        [
          Alcotest.test_case "edge cases = naive" `Quick
            test_compiled_edge_cases;
          Alcotest.test_case "budget cancellation" `Quick
            test_budget_cancellation;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
