module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Tuple = Paradb_relational.Tuple
module Value = Paradb_relational.Value
module Dictionary = Paradb_relational.Dictionary
module Join_tree = Paradb_hypergraph.Join_tree
module SS = Paradb_hypergraph.Hypergraph.String_set
module Yannakakis = Paradb_yannakakis.Yannakakis
module Metrics = Paradb_telemetry.Metrics
module Trace = Paradb_telemetry.Trace
module Tel_clock = Paradb_telemetry.Clock
open Paradb_query

let log_src = Logs.Src.create "paradb.engine" ~doc:"Theorem-2 engine"

module Log = (val Logs.src_log log_src)

(* Global telemetry, merged across domains on snapshot (the [stats]
   record remains the per-call API). *)
let m_tasks = Metrics.counter "engine.tasks"
let m_trials = Metrics.counter "engine.trials"
let m_successes = Metrics.counter "engine.trial_successes"
let m_trial_ns = Metrics.histogram "engine.trial_ns"
let m_peak_rows = Metrics.gauge "engine.peak_rows"

exception Cyclic_query

type stats = {
  mutable trials : int;
  mutable successes : int;
  mutable peak_rows : int;
}

let new_stats () = { trials = 0; successes = 0; peak_rows = 0 }

let merge_stats into s =
  into.trials <- into.trials + s.trials;
  into.successes <- into.successes + s.successes;
  if s.peak_rows > into.peak_rows then into.peak_rows <- s.peak_rows

let observe stats rel =
  let n = Relation.cardinality rel in
  if n > stats.peak_rows then stats.peak_rows <- n;
  Metrics.set_max m_peak_rows n

(* Shadow ("primed") attribute for a variable.  '$' cannot appear in
   parsed variable names, so no collision with real attributes. *)
let primed x = "$" ^ x

(* Everything about a query that does not depend on the coloring. *)
type task = {
  tree : Join_tree.t;
  base_rels : Relation.t array;   (* S_j with I2 selections applied *)
  prime_vars : SS.t;              (* variables with shadow attributes *)
  y_sets : SS.t array;            (* Y_j, over attribute names *)
  u_sets : SS.t array;            (* U_j, variable names *)
  pairs : (string * string) list; (* I1 pairs *)
  formula : Ineq_formula.t option;
  formula_consts : Value.t list;
  head : Term.t list;
  head_vars : string list;
  name : string;
  separation : int;               (* hash range parameter k *)
}

let dedup = Paradb_relational.Listx.dedup

(* W_j of Lemma 1, extended for the formula variables (which must survive
   to the root).  For x in V1 \ U_j occurring in T[j], x belongs to W_j
   iff some inequality partner of x does not occur in the child subtree
   through which x reaches j. *)
let w_set tree ~prime_vars ~formula_vars ~pairs j u_j =
  SS.filter
    (fun x ->
      (not (SS.mem x u_j))
      && SS.mem x tree.Join_tree.subtree_vars.(j)
      &&
      if List.mem x formula_vars then true
      else
        let child_with_x =
          List.find_opt
            (fun c -> SS.mem x tree.Join_tree.subtree_vars.(c))
            tree.Join_tree.children.(j)
        in
        match child_with_x with
        | None -> false (* unreachable: x not in U_j but in subtree *)
        | Some c ->
            List.exists
              (fun (a, b) ->
                (a = x && not (SS.mem b tree.Join_tree.subtree_vars.(c)))
                || (b = x && not (SS.mem a tree.Join_tree.subtree_vars.(c))))
              pairs)
    prime_vars

(* An h-independent semijoin pass over the base relations: dangling
   tuples can never contribute to any Q_h, so removing them up front
   shrinks every subsequent coloring's work. *)
let prereduce_base ?budget tree base_rels =
  if Array.exists Relation.is_empty base_rels then base_rels
  else
    Trace.with_span "engine.prereduce" (fun () ->
        Yannakakis.full_reducer ?budget tree base_rels)

let build_task ?budget ?(prereduce = true) db q formula =
  Metrics.incr m_tasks;
  Budget.poll budget;
  Trace.with_span "engine.build_task" @@ fun () ->
  (match formula with
  | Some f when not (Ineq_formula.neq_only f) ->
      invalid_arg "Engine: formula must use only != atoms"
  | _ -> ());
  let part = Ineq.partition q in
  match Trace.with_span "join_tree.build" (fun () -> Join_tree.of_cq q) with
  | None -> raise Cyclic_query
  | Some tree ->
      let pairs = Ineq.i1_pairs part in
      let formula_vars =
        match formula with Some f -> Ineq_formula.vars f | None -> []
      in
      let formula_consts =
        match formula with Some f -> Ineq_formula.constants f | None -> []
      in
      let prime_vars = SS.of_list (part.Ineq.v1 @ formula_vars) in
      let n = Join_tree.n_nodes tree in
      let u_sets = tree.Join_tree.node_vars in
      let y_sets =
        Array.init n (fun j ->
            let w = w_set tree ~prime_vars ~formula_vars ~pairs j u_sets.(j) in
            let prime_of s =
              SS.fold
                (fun x acc ->
                  if SS.mem x prime_vars then SS.add (primed x) acc else acc)
                s SS.empty
            in
            SS.union u_sets.(j)
              (SS.union (prime_of u_sets.(j))
                 (SS.fold (fun x acc -> SS.add (primed x) acc) w SS.empty)))
      in
      let base_rels =
        Yannakakis.atom_relations ?budget
          ~filter:(fun binding ->
            Ineq.i2_filter part
              (List.map fst (Binding.bindings binding))
              binding)
          db q
      in
      let base_rels =
        if prereduce then prereduce_base ?budget tree base_rels else base_rels
      in
      {
        tree;
        base_rels;
        prime_vars;
        y_sets;
        u_sets;
        pairs;
        formula;
        formula_consts;
        head = q.Cq.head;
        head_vars = Cq.head_vars q;
        name = q.Cq.name;
        separation =
          (let k = SS.cardinal prime_vars + List.length formula_consts in
           (* Mutation hook: under-count the hash range by one; at k = 2
              that degrades to a single constant coloring, so every I1
              pair collides and answers vanish. *)
           if k > 1 && Paradb_telemetry.Mutate.enabled "color_count" then k - 1
           else k);
      }

let task_dict task = Relation.dict task.base_rels.(0)

(* ------------------------------------------------------------------ *)
(* Per-coloring machinery.

   A prepared [trial] carries everything interning-related so the trial
   body itself is dictionary-write-free and can run on any domain:
   [color_code.(c)] is the dictionary code of [Value.Int c] (interned
   sequentially during preparation), and [color_of_code] maps every
   dictionary code to its color under [h] (read-only to build).  The hot
   loop is then pure int-array work. *)

type trial = {
  h : Hashing.fn;
  color_code : int array; (* color -> code of [Value.Int color] *)
}

let prep_trial task h =
  let dict = task_dict task in
  {
    h;
    color_code =
      Array.init h.Hashing.range (fun c -> Dictionary.intern dict (Value.Int c));
  }

(* Color of every dictionary code under [h]; -1 marks values outside [h]'s
   domain (codes that never occur in the base relations). *)
let color_table task h =
  let dict = task_dict task in
  Array.init (Dictionary.size dict) (fun c ->
      match h.Hashing.apply (Dictionary.value dict c) with
      | color -> color
      | exception Invalid_argument _ -> -1)

(* Extend S_j with the shadow attributes x' = h(x), working entirely on
   code rows: shadow cell = code of [Value.Int (h x)]. *)
let prime_relation task trial colors j =
  let rel = task.base_rels.(j) in
  let vars =
    List.filter (fun x -> SS.mem x task.prime_vars) (Relation.schema_list rel)
  in
  match vars with
  | [] -> rel
  | _ ->
      let positions = Relation.positions rel vars in
      let color_code = trial.color_code in
      Relation.extend_codes
        (List.map primed vars)
        (fun row -> Array.map (fun i -> color_code.(colors.(row.(i)))) positions)
        rel

(* The selection F of Algorithm 1 at the moment child j is merged into
   parent u: for every I1 pair {x, y} with x' in Y_j \ U'_u and y' among
   the parent's current attributes but outside Y_j, require x' <> y'. *)
let f_checks task ~proj_attrs ~parent_attrs j u =
  let parent_has a = List.mem a parent_attrs in
  let proj_has a = List.mem a proj_attrs in
  let oriented (x, y) =
    let px = primed x and py = primed y in
    if
      proj_has px
      && (not (SS.mem x task.u_sets.(u)))
      && parent_has py
      && not (SS.mem py task.y_sets.(j))
    then Some (px, py)
    else None
  in
  let checks =
    dedup
      (List.filter_map
         (fun (x, y) ->
           match oriented (x, y) with
           | Some c -> Some c
           | None -> oriented (y, x))
         task.pairs)
  in
  (* Mutation hook: lose the first F selection, admitting rows whose
     colors collide on an I1 pair. *)
  if Paradb_telemetry.Mutate.enabled "drop_neq" then
    match checks with [] -> [] | _ :: rest -> rest
  else checks

(* Evaluate the root formula on a row of colors.  Variables read their
   shadow attribute (decoding the color code); constants are hashed with
   the same h. *)
let root_filter task trial rel =
  match task.formula with
  | None -> rel
  | Some f ->
      let pos = Relation.position rel in
      let var_pos =
        List.map (fun x -> (x, pos (primed x))) (Ineq_formula.vars f)
      in
      let resolve row = function
        | Term.Var x ->
            Value.to_int (Relation.decode_value rel row.(List.assoc x var_pos))
        | Term.Const c -> trial.h.Hashing.apply c
      in
      let rec holds row = function
        | Ineq_formula.True -> true
        | Ineq_formula.False -> false
        | Ineq_formula.Atom c ->
            let l = resolve row c.Constr.lhs and r = resolve row c.Constr.rhs in
            (match c.Constr.op with
            | Constr.Neq -> l <> r
            | Constr.Lt | Constr.Le -> assert false)
        | Ineq_formula.And fs -> List.for_all (holds row) fs
        | Ineq_formula.Or fs -> List.exists (holds row) fs
      in
      Relation.select_codes (fun row -> holds row f) rel

(* Algorithm 1: bottom-up pass.  Returns the final P array if Q_h(d) is
   nonempty, None otherwise. *)
let algorithm1_trial ?stats task trial =
  let observe rel =
    match stats with Some s -> observe s rel | None -> ()
  in
  let colors = color_table task trial.h in
  let tree = task.tree in
  let n = Join_tree.n_nodes tree in
  let p = Array.init n (prime_relation task trial colors) in
  Array.iter observe p;
  let failed = ref false in
  Array.iter
    (fun j ->
      let u = tree.Join_tree.parent.(j) in
      if (not !failed) && u >= 0 then begin
        let proj_attrs =
          List.filter
            (fun a -> SS.mem a task.y_sets.(u))
            (Relation.schema_list p.(j))
        in
        let parent_attrs = Relation.schema_list p.(u) in
        let proj = Relation.project proj_attrs p.(j) in
        let checks = f_checks task ~proj_attrs ~parent_attrs j u in
        let filtered =
          match checks with
          | [] -> Relation.natural_join p.(u) proj
          | _ ->
              (* The join's output schema is the parent's attributes
                 followed by the projection's non-common ones, so check
                 positions are known before the join runs; the filter
                 fuses into the probe loop.  Shadow cells are codes of
                 the same dictionary, so color inequality is plain code
                 inequality. *)
              let out_attrs =
                parent_attrs
                @ List.filter
                    (fun a -> not (List.mem a parent_attrs))
                    proj_attrs
              in
              let pos a =
                let rec go i = function
                  | [] -> raise Not_found
                  | b :: rest -> if String.equal a b then i else go (i + 1) rest
                in
                go 0 out_attrs
              in
              let positions =
                List.map (fun (a, b) -> (pos a, pos b)) checks
              in
              Relation.natural_join
                ~keep:(fun row ->
                  List.for_all (fun (i, l) -> row.(i) <> row.(l)) positions)
                p.(u) proj
        in
        observe filtered;
        p.(u) <- filtered;
        if Relation.is_empty filtered then failed := true
      end)
    tree.Join_tree.bottom_up;
  if !failed then None
  else begin
    let root = tree.Join_tree.root in
    p.(root) <- root_filter task trial p.(root);
    if Relation.is_empty p.(root) then None else Some p
  end

let algorithm1 ?stats task h = algorithm1_trial ?stats task (prep_trial task h)

(* Algorithm 2: top-down semijoin pass, then bottom-up join-and-project;
   returns Q_h(d)'s projection onto the head variables. *)
let algorithm2 task p =
  let tree = task.tree in
  Trace.with_span "engine.semijoin_top_down" (fun () ->
      Array.iter
        (fun j ->
          let u = tree.Join_tree.parent.(j) in
          if u >= 0 then p.(j) <- Relation.semijoin p.(j) p.(u))
        tree.Join_tree.top_down);
  let head_set = SS.of_list task.head_vars in
  Trace.with_span "engine.join_bottom_up" (fun () ->
      Array.iter
        (fun j ->
          let u = tree.Join_tree.parent.(j) in
          if u >= 0 then begin
            let keep =
              List.filter
                (fun a -> SS.mem a task.y_sets.(u) || SS.mem a head_set)
                (Relation.schema_list p.(j))
            in
            p.(u) <- Relation.natural_join p.(u) (Relation.project keep p.(j))
          end)
        tree.Join_tree.bottom_up);
  Relation.project task.head_vars p.(tree.Join_tree.root)

let head_schema task = List.mapi (fun i _ -> Printf.sprintf "a%d" i) task.head

let head_rows task proj =
  let positions =
    List.map
      (function
        | Term.Var x -> `Var (Relation.position proj x)
        | Term.Const v -> `Const v)
      task.head
  in
  Relation.fold
    (fun row acc ->
      let out =
        Array.of_list
          (List.map (function `Var i -> row.(i) | `Const v -> v) positions)
      in
      Tuple.Set.add out acc)
    proj Tuple.Set.empty

let hash_domain db task =
  Value.Set.elements
    (Value.Set.union (Database.domain db)
       (Value.Set.of_list task.formula_consts))

let default_family = Hashing.Multiplicative_sweep

(* ------------------------------------------------------------------ *)
(* The trial driver.

   Independent colorings fan out across domains: trials are prepared
   (= dictionary-interning) sequentially in chunks, then each chunk is
   drained by [domain_count] workers pulling trial indexes off an atomic
   counter.  Merging is a set union (evaluation) or a disjunction
   (satisfiability), both order-insensitive, so parallel runs return
   bit-identical answers to sequential ones.  [PARADB_DOMAINS=1] opts
   out. *)

let domain_count () = Paradb_telemetry.Env.domains ()

let rec seq_take n acc seq =
  if n = 0 then (List.rev acc, seq)
  else
    match Seq.uncons seq with
    | None -> (List.rev acc, Seq.empty)
    | Some (x, rest) -> seq_take (n - 1) (x :: acc) rest

(* Run [run] over every coloring of [functions].  [run st trial] returns
   [Some r] on a successful trial; results are folded with [merge] into
   [init].  With [stop_on_hit] the remaining trials are abandoned after
   the first success (one witness settles satisfiability). *)
let run_trials ?budget ~stats ~stop_on_hit task functions ~init ~merge ~run =
  (* Instrument every coloring uniformly, sequential or fanned out:
     a span (free when tracing is off) plus global trial counters and a
     per-trial latency histogram. *)
  let run st trial =
    let sp = Trace.start "engine.trial" in
    let t0 = Tel_clock.now_ns () in
    let r = run st trial in
    Metrics.observe m_trial_ns (Tel_clock.now_ns () - t0);
    Metrics.incr m_trials;
    let hit = Option.is_some r in
    if hit then Metrics.incr m_successes;
    Trace.finish ~attrs:[ ("nonempty", string_of_bool hit) ] sp;
    r
  in
  let nd = domain_count () in
  let acc = ref init in
  (* Non-raising per-trial test for the parallel drain loops: helper
     domains must exit cleanly (an exception crossing [Domain.join]
     would leak its siblings), so they only observe expiry here and the
     coordinator raises after joining. *)
  let budget_expired () =
    match budget with Some b -> Budget.expired b | None -> false
  in
  if nd <= 1 then begin
    (try
       Seq.iter
         (fun h ->
           Budget.poll budget;
           let trial = prep_trial task h in
           stats.trials <- stats.trials + 1;
           match run stats trial with
           | Some r ->
               stats.successes <- stats.successes + 1;
               acc := merge !acc r;
               if stop_on_hit then raise Exit
           | None -> ())
         functions
     with Exit -> ());
    !acc
  end
  else begin
    let chunk_size = nd * 4 in
    let rec loop fns =
      match seq_take chunk_size [] fns with
      | [], _ -> ()
      | batch, rest ->
          let work = Array.of_list (List.map (prep_trial task) batch) in
          let next = Atomic.make 0 in
          let found = Atomic.make false in
          let worker () =
            let st = new_stats () in
            let out = ref [] in
            let rec drain () =
              if not (stop_on_hit && Atomic.get found) && not (budget_expired ())
              then begin
                let i = Atomic.fetch_and_add next 1 in
                if i < Array.length work then begin
                  st.trials <- st.trials + 1;
                  (match run st work.(i) with
                  | Some r ->
                      st.successes <- st.successes + 1;
                      out := r :: !out;
                      if stop_on_hit then Atomic.set found true
                  | None -> ());
                  drain ()
                end
              end
            in
            drain ();
            (st, !out)
          in
          let helpers =
            Array.init
              (min (nd - 1) (max 0 (Array.length work - 1)))
              (fun _ -> Domain.spawn worker)
          in
          let mine = worker () in
          let results = mine :: Array.to_list (Array.map Domain.join helpers) in
          List.iter
            (fun (st, out) ->
              merge_stats stats st;
              List.iter (fun r -> acc := merge !acc r) out)
            results;
          if not (stop_on_hit && Atomic.get found) then begin
            (* With a witness in hand the answer is already valid; an
               incomplete sweep is only wrong when we must union every
               trial (evaluation) or report a definitive "no". *)
            Budget.poll budget;
            loop rest
          end
    in
    loop functions;
    if not (stop_on_hit && !acc <> init) then Budget.poll budget;
    !acc
  end

let run_satisfiable ?budget ?prereduce ~family ~stats db q formula =
  if q.Cq.body = [] then
    (* No atoms, hence no variables (Cq.make safety): the formula, if any,
       is ground and can be evaluated directly. *)
    (match formula with
    | None -> true
    | Some f -> Ineq_formula.holds Binding.empty f)
  else begin
    let task = build_task ?budget ?prereduce db q formula in
    if Array.exists Relation.is_empty task.base_rels then false
    else begin
      let domain = hash_domain db task in
      let functions =
        Hashing.functions family ~domain ~k:task.separation
      in
      let found =
        run_trials ?budget ~stats ~stop_on_hit:true task functions ~init:false
          ~merge:(fun _ _ -> true)
          ~run:(fun st trial ->
            match algorithm1_trial ~stats:st task trial with
            | Some _ -> Some ()
            | None -> None)
      in
      if found then
        Log.debug (fun m ->
            m "satisfiable after %d coloring(s) (k = %d)" stats.trials
              task.separation)
      else
        Log.debug (fun m ->
            m "no coloring succeeded after %d trial(s) (k = %d)" stats.trials
              task.separation);
      found
    end
  end

let run_evaluate ?budget ?prereduce ~family ~stats db q formula =
  let task =
    if q.Cq.body = [] then None
    else Some (build_task ?budget ?prereduce db q formula)
  in
  match task with
  | None ->
      let head =
        List.map
          (function Term.Const v -> v | Term.Var _ -> assert false)
          q.Cq.head
      in
      let schema = List.mapi (fun i _ -> Printf.sprintf "a%d" i) head in
      let holds =
        match formula with
        | None -> true
        | Some f -> Ineq_formula.holds Binding.empty f
      in
      if holds then
        Relation.create ~name:q.Cq.name ~schema [ Array.of_list head ]
      else Relation.create ~name:q.Cq.name ~schema []
  | Some task ->
      let schema = head_schema task in
      if Array.exists Relation.is_empty task.base_rels then
        Relation.create ~name:task.name ~schema []
      else begin
        let domain = hash_domain db task in
        let functions =
          Hashing.functions family ~domain ~k:task.separation
        in
        let rows =
          run_trials ?budget ~stats ~stop_on_hit:false task functions
            ~init:Tuple.Set.empty ~merge:Tuple.Set.union
            ~run:(fun st trial ->
              match algorithm1_trial ~stats:st task trial with
              | None -> None
              | Some p -> Some (head_rows task (algorithm2 task p)))
        in
        Relation.of_set ~name:task.name ~schema rows
      end

let is_satisfiable ?budget ?prereduce ?(family = default_family) ?stats db q =
  let stats = match stats with Some s -> s | None -> new_stats () in
  run_satisfiable ?budget ?prereduce ~family ~stats db q None

let evaluate ?budget ?prereduce ?(family = default_family) ?stats db q =
  let stats = match stats with Some s -> s | None -> new_stats () in
  run_evaluate ?budget ?prereduce ~family ~stats db q None

let decide ?budget ?family ?stats db q tuple =
  match Cq.close_with_tuple q tuple with
  | None -> false
  | Some closed -> is_satisfiable ?budget ?family ?stats db closed

let is_satisfiable_formula ?budget ?(family = default_family) ?stats db q f =
  let stats = match stats with Some s -> s | None -> new_stats () in
  run_satisfiable ?budget ~family ~stats db q (Some f)

let evaluate_formula ?budget ?(family = default_family) ?stats db q f =
  let stats = match stats with Some s -> s | None -> new_stats () in
  run_evaluate ?budget ~family ~stats db q (Some f)

let split_constant_conjuncts f =
  let is_var_const c =
    match c.Constr.lhs, c.Constr.rhs with
    | Term.Var _, Term.Const _ | Term.Const _, Term.Var _ -> true
    | _ -> false
  in
  match f with
  | Ineq_formula.Atom c when is_var_const c -> ([ c ], Ineq_formula.True)
  | Ineq_formula.And fs ->
      let consts, rest =
        List.partition
          (function
            | Ineq_formula.Atom c -> is_var_const c
            | _ -> false)
          fs
      in
      ( List.map
          (function Ineq_formula.Atom c -> c | _ -> assert false)
          consts,
        Ineq_formula.conj rest )
  | _ -> ([], f)

let push_constant_conjuncts q f =
  let consts, rest = split_constant_conjuncts f in
  let q' =
    Cq.make ~name:q.Cq.name
      ~constraints:(q.Cq.constraints @ consts)
      ~head:q.Cq.head q.Cq.body
  in
  (q', if rest = Ineq_formula.True then None else Some rest)

let evaluate_formula_v ?budget ?(family = default_family) ?stats db q f =
  let stats = match stats with Some s -> s | None -> new_stats () in
  let q', rest = push_constant_conjuncts q f in
  run_evaluate ?budget ~family ~stats db q' rest

let is_satisfiable_formula_v ?budget ?(family = default_family) ?stats db q f =
  let stats = match stats with Some s -> s | None -> new_stats () in
  let q', rest = push_constant_conjuncts q f in
  run_satisfiable ?budget ~family ~stats db q' rest

let satisfiable_with db q h =
  if q.Cq.body = [] then true
  else
    let task = build_task db q None in
    (not (Array.exists Relation.is_empty task.base_rels))
    && algorithm1 task h <> None

let evaluate_with db q h =
  if q.Cq.body = [] then
    let stats = new_stats () in
    run_evaluate ~family:default_family ~stats db q None
  else begin
    let task = build_task db q None in
    let schema = head_schema task in
    if Array.exists Relation.is_empty task.base_rels then
      Relation.create ~name:task.name ~schema []
    else
      match algorithm1 task h with
      | None -> Relation.create ~name:task.name ~schema []
      | Some p ->
          Relation.of_set ~name:task.name ~schema
            (head_rows task (algorithm2 task p))
  end
