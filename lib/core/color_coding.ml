module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Tuple = Paradb_relational.Tuple
module Value = Paradb_relational.Value
module Graph = Paradb_graph.Graph
module Metrics = Paradb_telemetry.Metrics
module Trace = Paradb_telemetry.Trace
module Budget = Paradb_telemetry.Budget
open Paradb_query

let m_dp_trials = Metrics.counter "color_coding.dp_trials"
let m_dp_hits = Metrics.counter "color_coding.dp_hits"

let graph_database g =
  let vertices =
    List.map (fun v -> [| Value.Int v |]) (Graph.vertices g)
  in
  let edges =
    List.concat_map
      (fun (u, v) ->
        let a = Value.Int u and b = Value.Int v in
        if u = v then [ [| a; b |] ] else [ [| a; b |]; [| b; a |] ])
      (Graph.edges g)
  in
  Database.of_relations
    [
      Relation.create ~name:"v" ~schema:[ "x" ] vertices;
      Relation.create ~name:"e" ~schema:[ "x"; "y" ] edges;
    ]

let path_query ~k =
  if k < 1 then invalid_arg "Color_coding.path_query: k must be positive";
  let var i = Term.var (Printf.sprintf "x%d" i) in
  let head = List.init k var in
  if k = 1 then Cq.make ~head [ Atom.make "v" [ var 0 ] ]
  else begin
    let body =
      List.init (k - 1) (fun i -> Atom.make "e" [ var i; var (i + 1) ])
    in
    let constraints =
      List.concat
        (List.init k (fun i ->
             List.filteri (fun j _ -> j > i) (List.init k Fun.id)
             |> List.map (fun j -> Constr.neq (var i) (var j))))
    in
    Cq.make ~constraints ~head body
  end

let has_simple_path ?budget ?family g k =
  if k = 0 then true
  else if k > Graph.n_vertices g then false
  else
    Engine.is_satisfiable ?budget ?family (graph_database g) (path_query ~k)

(* Colorful-path DP: state (v, mask) = "a path ends at v whose vertices
   use exactly the colors in mask".  Parents are remembered for witness
   recovery.  O(2^k * (n + m)) states/transitions. *)
let colorful_path ?budget g colors k =
  if k < 1 then invalid_arg "Color_coding.colorful_path: k must be positive";
  let n = Graph.n_vertices g in
  Array.iter
    (fun c ->
      if c < 0 || c >= k then
        invalid_arg "Color_coding.colorful_path: color out of range")
    colors;
  if Array.length colors <> n then
    invalid_arg "Color_coding.colorful_path: one color per vertex";
  let parent : (int * int, (int * int) option) Hashtbl.t =
    Hashtbl.create 1024
  in
  let frontier = ref [] in
  for v = 0 to n - 1 do
    let mask = 1 lsl colors.(v) in
    if not (Hashtbl.mem parent (v, mask)) then begin
      Hashtbl.add parent (v, mask) None;
      frontier := (v, mask) :: !frontier
    end
  done;
  let full = (1 lsl k) - 1 in
  let answer = ref None in
  let steps = ref 1 in
  while !answer = None && !steps < k && !frontier <> [] do
    Budget.poll budget;
    incr steps;
    let next = ref [] in
    List.iter
      (fun (v, mask) ->
        List.iter
          (fun w ->
            let bit = 1 lsl colors.(w) in
            if mask land bit = 0 then begin
              let state = (w, mask lor bit) in
              if not (Hashtbl.mem parent state) then begin
                Hashtbl.add parent state (Some (v, mask));
                next := state :: !next
              end
            end)
          (Graph.neighbors g v))
      !frontier;
    frontier := !next;
    if !steps = k then
      answer :=
        List.find_opt (fun (_, mask) -> mask = full) !next
  done;
  let final =
    if k = 1 then
      (* single-vertex paths: any vertex works *)
      if n > 0 then Some (0, 1 lsl colors.(0)) else None
    else !answer
  in
  match final with
  | None -> None
  | Some state ->
      let rec walk state acc =
        match Hashtbl.find parent state with
        | None -> fst state :: acc
        | Some prev -> walk prev (fst state :: acc)
      in
      Some (walk state [])

(* Semiring generalization of the colorful-path DP: instead of
   remembering one parent per (v, mask) state, carry an annotation —
   ann(v, mask) = ⊕ over colorful paths ending at v with color set mask
   of the ⊗-product of their vertex weights.  Extending a path
   ⊗-multiplies by the new vertex's weight; two paths meeting at a state
   ⊕-merge.  Nat with unit weights counts colorful k-paths (as directed
   vertex sequences); Tropical with vertex costs yields the cheapest
   colorful path.  The Bool instance degenerates to exactly the
   reachability computed by [colorful_path], which keeps its dedicated
   witness-recovering implementation as the trusted fast path. *)
let colorful_path_aggregate ?budget (sr : 'a Paradb_relational.Semiring.t)
    ?weight g colors k =
  if k < 1 then
    invalid_arg "Color_coding.colorful_path_aggregate: k must be positive";
  let n = Graph.n_vertices g in
  Array.iter
    (fun c ->
      if c < 0 || c >= k then
        invalid_arg "Color_coding.colorful_path_aggregate: color out of range")
    colors;
  if Array.length colors <> n then
    invalid_arg "Color_coding.colorful_path_aggregate: one color per vertex";
  let wt = match weight with Some f -> f | None -> fun _ -> sr.one in
  let layer : (int * int, 'a) Hashtbl.t = Hashtbl.create 1024 in
  let merge tbl state ann =
    match Hashtbl.find_opt tbl state with
    | None -> Hashtbl.replace tbl state ann
    | Some prev -> Hashtbl.replace tbl state (sr.plus prev ann)
  in
  for v = 0 to n - 1 do
    merge layer (v, 1 lsl colors.(v)) (wt v)
  done;
  let current = ref layer in
  for _step = 2 to k do
    Budget.poll budget;
    let next = Hashtbl.create (Hashtbl.length !current) in
    Hashtbl.iter
      (fun (v, mask) ann ->
        List.iter
          (fun w ->
            let bit = 1 lsl colors.(w) in
            if mask land bit = 0 then
              merge next (w, mask lor bit) (sr.times ann (wt w)))
          (Graph.neighbors g v))
      !current;
    current := next
  done;
  (* After k layers every surviving mask has k distinct colors, i.e. is
     full; the filter is belt and braces. *)
  let full = (1 lsl k) - 1 in
  Hashtbl.fold
    (fun (_, mask) ann acc -> if mask = full then sr.plus acc ann else acc)
    !current sr.zero

let find_simple_path_dp ?budget ?trials ?(seed = 0) g k =
  if k = 0 then Some []
  else if k > Graph.n_vertices g then None
  else if k = 1 then
    if Graph.n_vertices g > 0 then Some [ 0 ] else None
  else begin
    let trials =
      match trials with
      | Some t -> t
      | None -> Hashing.default_trials ~c:3.0 ~k
    in
    let rng = Random.State.make [| seed; k; Graph.n_vertices g |] in
    let n = Graph.n_vertices g in
    let rec try_trial remaining =
      if remaining = 0 then None
      else begin
        Budget.poll budget;
        let colors = Array.init n (fun _ -> Random.State.int rng k) in
        Metrics.incr m_dp_trials;
        let hit =
          Trace.with_span "color_coding.dp_trial" @@ fun () ->
          colorful_path ?budget g colors k
        in
        match hit with
        | Some path ->
            Metrics.incr m_dp_hits;
            Some path
        | None -> try_trial (remaining - 1)
      end
    in
    try_trial trials
  end

let has_simple_path_dp ?budget ?trials ?seed g k =
  find_simple_path_dp ?budget ?trials ?seed g k <> None

let find_simple_path ?budget ?family g k =
  if k = 0 then Some []
  else if k > Graph.n_vertices g then None
  else begin
    (* One witness suffices, so stop at the first coloring whose Q_h is
       nonempty instead of unioning every trial's answer as [evaluate]
       would. *)
    let family =
      match family with Some f -> f | None -> Hashing.Multiplicative_sweep
    in
    let db = graph_database g in
    let q = path_query ~k in
    let domain = Value.Set.elements (Database.domain db) in
    Seq.find_map
      (fun h ->
        Budget.poll budget;
        let result = Engine.evaluate_with db q h in
        match Relation.tuples result with
        | [] -> None
        | row :: _ -> Some (List.map Value.to_int (Tuple.to_list row)))
      (Hashing.functions family ~domain ~k)
  end
