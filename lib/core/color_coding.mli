(** Simple paths of a specified length by color coding — the special case
    (Monien; Alon–Yuster–Zwick) that Theorem 2 generalizes.

    A simple path on [k] vertices is exactly the acyclic query
    [e(x1,x2), ..., e(x_{k-1},x_k)] with [x_i ≠ x_j] for all [i < j]:
    adjacent pairs fall into [I2], non-adjacent pairs into [I1], and the
    engine's hashing is literally the color-coding of the graph. *)

(** [graph_database g] — relations [v(x)] (vertices) and [e(x,y)]
    (edges, both directions). *)
val graph_database : Paradb_graph.Graph.t -> Paradb_relational.Database.t

(** The path query on [k] vertices with all-pairs inequalities; head
    [ans(x1, ..., xk)]. *)
val path_query : k:int -> Paradb_query.Cq.t

(** [budget], here and on every search below, is polled per coloring
    trial and per DP step ({!Budget.Exhausted} propagates). *)
val has_simple_path :
  ?budget:Budget.t ->
  ?family:Hashing.family -> Paradb_graph.Graph.t -> int -> bool

(** A witness path (any), found by full evaluation. *)
val find_simple_path :
  ?budget:Budget.t ->
  ?family:Hashing.family -> Paradb_graph.Graph.t -> int -> int list option

(** {1 The direct Alon–Yuster–Zwick dynamic program}

    The specialized algorithm the paper cites ([3]): color the vertices
    with [k] colors and look for a {e colorful} path by dynamic
    programming over color subsets — [O(2^k · m)] per coloring instead
    of the engine's relational passes.  An independent implementation,
    used to cross-check the engine and to measure the cost of
    generality. *)

(** [colorful_path g colors k] — a path on [k] vertices using [k]
    pairwise-distinct colors, under the given vertex coloring
    ([colors.(v) ∈ [0..k-1]]), or [None]. *)
val colorful_path :
  ?budget:Budget.t ->
  Paradb_graph.Graph.t -> int array -> int -> int list option

(** [colorful_path_aggregate sr g colors k] — semiring aggregation over
    all colorful paths on [k] vertices (as directed vertex sequences):
    ⊕ over paths of the ⊗-product of per-vertex weights (default
    [sr.one]).  [Semiring.nat] counts colorful [k]-paths; tropical with
    vertex costs yields the cheapest one.  Bool degenerates to
    {!colorful_path}'s reachability, which keeps its dedicated
    witness-recovering implementation. *)
val colorful_path_aggregate :
  ?budget:Budget.t ->
  'a Paradb_relational.Semiring.t ->
  ?weight:(int -> 'a) ->
  Paradb_graph.Graph.t -> int array -> int -> 'a

(** [find_simple_path_dp ?trials ?seed g k] — random colorings (default
    [3·e^k] trials) + the colorful-path DP; one-sided error like the
    paper's randomized driver. *)
val find_simple_path_dp :
  ?budget:Budget.t ->
  ?trials:int -> ?seed:int -> Paradb_graph.Graph.t -> int -> int list option

val has_simple_path_dp :
  ?budget:Budget.t ->
  ?trials:int -> ?seed:int -> Paradb_graph.Graph.t -> int -> bool
