(** The Theorem-2 engine: fixed-parameter tractable evaluation of acyclic
    conjunctive queries with [≠] inequalities.

    Pipeline, following Section 5 of the paper:
    + partition the [≠] atoms into [I1] (variables never co-occurring in a
      relational atom) and [I2] (pushed into the per-atom selections);
    + for each hash function [h : D → [1..k]] from a family
      (see {!Hashing}), extend the per-atom relations with shadow
      attributes [x' = h(x)] for the [I1] variables;
    + run Algorithm 1 — a bottom-up pass over a join tree computing
      [P_u := σ_F (P_u ⋈ π_{Y_j ∩ Y_u} P_j)], where the [Y_j] attribute
      sets (Lemma 1) carry each shadow attribute exactly from its variable's
      subtree up to the meeting point with its inequality partners, and
      the selection [F] checks [x' ≠ y'] at that meeting point;
    + (evaluation) run Algorithm 2 — a top-down semijoin pass followed by
      a bottom-up join-and-project pass, output-sensitive;
    + take the union of [Q_h(d)] over the family.

    The same machinery implements the Section-5 extension where an
    arbitrary monotone Boolean formula [φ] of [≠] atoms accompanies the
    conjunction: [φ]'s variables keep their shadow attributes all the way
    to the root, where [φ] is evaluated on colors (sound because
    [h x ≠ h y] implies [x ≠ y] and [φ] is monotone; complete whenever
    [h] separates the relevant values, which the family guarantees). *)

exception Cyclic_query

type stats = {
  mutable trials : int;      (** hash functions actually run *)
  mutable successes : int;   (** trials with [Q_h(d) ≠ ∅] *)
  mutable peak_rows : int;
      (** largest intermediate relation built across all colorings — the
          observable counterpart of the paper's [q·k^k·n] bound *)
}

val new_stats : unit -> stats

(** [is_satisfiable db q] — is [Q(d)] nonempty?  [q]'s constraints must
    all be [≠] and its hypergraph acyclic ([Cyclic_query] otherwise).
    [family] defaults to the deterministic {!Hashing.Multiplicative_sweep}
    (exact); pass a [Random_trials] family for the paper's randomized
    one-sided-error driver.

    [budget] (here and on every driver below) is polled once per
    coloring trial and inside the task build's semijoin passes; expiry
    raises {!Budget.Exhausted} — except that a satisfiability run which
    has already found a witness returns it, since an incomplete sweep
    only invalidates full unions and definitive "no"s.  Parallel trial
    workers observe expiry with a non-raising check and exit their drain
    loops; the coordinating domain raises after joining them, so no
    helper domain is ever leaked. *)
val is_satisfiable :
  ?budget:Budget.t ->
  ?prereduce:bool -> ?family:Hashing.family -> ?stats:stats ->
  Paradb_relational.Database.t -> Paradb_query.Cq.t -> bool

(** Full evaluation [Q(d)] (union of [Q_h(d)] over the family).
    [prereduce] (default true) runs one h-independent semijoin reducer
    pass over the base relations before any coloring — dangling tuples
    never contribute to any [Q_h], so this is sound and pays for itself
    whenever the family runs more than a few colorings. *)
val evaluate :
  ?budget:Budget.t ->
  ?prereduce:bool -> ?family:Hashing.family -> ?stats:stats ->
  Paradb_relational.Database.t -> Paradb_query.Cq.t ->
  Paradb_relational.Relation.t

(** [t ∈ Q(d)]? *)
val decide :
  ?budget:Budget.t ->
  ?family:Hashing.family -> ?stats:stats ->
  Paradb_relational.Database.t -> Paradb_query.Cq.t ->
  Paradb_relational.Tuple.t -> bool

(** {1 The Boolean-formula extension}

    The query's own [≠] constraints are handled as above; the extra
    formula [φ] (monotone in [≠] atoms, over the query's variables) is
    enforced at the root.  The hash range grows to
    [|V1 ∪ vars φ| + |consts φ|], exactly as in the paper. *)

val is_satisfiable_formula :
  ?budget:Budget.t ->
  ?family:Hashing.family -> ?stats:stats ->
  Paradb_relational.Database.t -> Paradb_query.Cq.t ->
  Paradb_query.Ineq_formula.t -> bool

val evaluate_formula :
  ?budget:Budget.t ->
  ?family:Hashing.family -> ?stats:stats ->
  Paradb_relational.Database.t -> Paradb_query.Cq.t ->
  Paradb_query.Ineq_formula.t -> Paradb_relational.Relation.t

(** Split a formula's top-level conjunction into [x ≠ c] atoms (which the
    parameter-[v] variant pushes into the relation selections, keeping the
    hash range bounded by [v]) and the residual formula. *)
val split_constant_conjuncts :
  Paradb_query.Ineq_formula.t ->
  Paradb_query.Constr.t list * Paradb_query.Ineq_formula.t

(** The paper's parameter-[v] variant of the extension: top-level
    conjunctive [x ≠ c] atoms are pushed into the per-atom selections
    (joining the query's own [I2]) before the residual formula is
    root-checked, so the hash range stays bounded by the variable count
    whenever the residual formula is constant-free. *)
val evaluate_formula_v :
  ?budget:Budget.t ->
  ?family:Hashing.family -> ?stats:stats ->
  Paradb_relational.Database.t -> Paradb_query.Cq.t ->
  Paradb_query.Ineq_formula.t -> Paradb_relational.Relation.t

val is_satisfiable_formula_v :
  ?budget:Budget.t ->
  ?family:Hashing.family -> ?stats:stats ->
  Paradb_relational.Database.t -> Paradb_query.Cq.t ->
  Paradb_query.Ineq_formula.t -> bool

(** {1 Single-coloring runs (exposed for tests and benchmarks)} *)

(** [satisfiable_with db q h] — is [Q_h(d)] nonempty for this specific
    coloring? *)
val satisfiable_with :
  Paradb_relational.Database.t -> Paradb_query.Cq.t -> Hashing.fn -> bool

(** [evaluate_with db q h] — [Q_h(d)]. *)
val evaluate_with :
  Paradb_relational.Database.t -> Paradb_query.Cq.t -> Hashing.fn ->
  Paradb_relational.Relation.t
