(** Per-request evaluation budgets — deadline + cooperative cancellation,
    polled at every engine's loop checkpoints.

    This is {!Paradb_telemetry.Budget} re-exported under the core
    library: the type lives in the telemetry layer (next to the
    monotonic clock, below every evaluator in the dependency order) so
    the naive/FO/Datalog/Yannakakis evaluators and the Theorem-2 trial
    driver can all poll one budget value. *)

include module type of Paradb_telemetry.Budget
  with type t = Paradb_telemetry.Budget.t
