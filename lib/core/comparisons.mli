(** Comparison-constraint preprocessing (Section 5, "Comparison
    Constraints").

    Before asking whether a query with [<] / [≤] atoms is acyclic, one
    must check the constraint system for consistency and collapse the
    implied equalities (Klug's method, as the paper prescribes): build the
    digraph on the variables and constants of the comparisons, with an arc
    per constraint (and the fixed order among the constants); the system
    is consistent (over a dense order) iff no strong component contains a
    strict arc; all members of a strong component are equal and get
    collapsed.

    Theorem 3 shows the collapsed acyclic class is W[1]-complete, so
    there is no FPT engine to dispatch to: {!evaluate} falls back to the
    naive evaluator when genuine comparisons remain. *)

type outcome =
  | Inconsistent
      (** the constraints (or a [≠] atom between identified terms) are
          unsatisfiable: [Q(d) = ∅] for every [d] *)
  | Collapsed of Paradb_query.Cq.t
      (** equalities collapsed; the remaining comparison graph is acyclic *)

val preprocess : Paradb_query.Cq.t -> outcome

(** Is the query acyclic *in the paper's sense* for comparison queries:
    after collapsing, is the hypergraph of the relational atoms acyclic? *)
val is_acyclic_with_comparisons : Paradb_query.Cq.t -> bool

(** Best-effort evaluation: preprocess; use the Theorem-2 engine when
    only [≠] constraints remain on an acyclic body; otherwise fall back
    to naive evaluation (inherently [n^{O(q)}]: Theorem 3). *)
val evaluate :
  ?budget:Budget.t ->
  Paradb_relational.Database.t -> Paradb_query.Cq.t ->
  Paradb_relational.Relation.t

val is_satisfiable :
  ?budget:Budget.t ->
  Paradb_relational.Database.t -> Paradb_query.Cq.t -> bool
