(* The cooperative-cancellation core, re-exported from the telemetry
   layer (which owns the monotonic clock and has no dependencies, so the
   evaluators below [lib/core] can poll the same budget type). *)

include Paradb_telemetry.Budget
