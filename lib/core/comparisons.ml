module Relation = Paradb_relational.Relation
module Value = Paradb_relational.Value
module Digraph = Paradb_graph.Digraph
open Paradb_query

type outcome =
  | Inconsistent
  | Collapsed of Cq.t

let dedup = Paradb_relational.Listx.dedup

let preprocess q =
  let comparisons = Cq.comparison_constraints q in
  (* Nodes: every term occurring in a comparison atom. *)
  let nodes =
    dedup
      (List.concat_map (fun c -> [ c.Constr.lhs; c.Constr.rhs ]) comparisons)
  in
  let node_id t =
    let rec go i = function
      | [] -> assert false
      | n :: rest -> if Term.equal n t then i else go (i + 1) rest
    in
    go 0 nodes
  in
  let constants =
    List.filter (function Term.Const _ -> true | Term.Var _ -> false) nodes
  in
  (* Arcs: one per comparison; plus the fixed order among the constants. *)
  let arcs =
    List.map
      (fun c ->
        (node_id c.Constr.lhs, node_id c.Constr.rhs, c.Constr.op = Constr.Lt))
      comparisons
    @ List.concat_map
        (fun c1 ->
          List.filter_map
            (fun c2 ->
              match c1, c2 with
              | Term.Const v1, Term.Const v2 when Value.compare v1 v2 < 0 ->
                  Some (node_id c1, node_id c2, true)
              | _ -> None)
            constants)
        constants
  in
  let g = Digraph.create (List.length nodes) in
  List.iter (fun (u, v, _) -> Digraph.add_edge g u v) arcs;
  let comp, n_comps = Digraph.sccs g in
  let strict_in_scc =
    List.exists (fun (u, v, strict) -> strict && comp.(u) = comp.(v)) arcs
  in
  if strict_in_scc then Inconsistent
  else begin
    (* Representative per component: a constant if one is present. *)
    let reps = Array.make n_comps None in
    List.iteri
      (fun i t ->
        match reps.(comp.(i)), t with
        | None, _ -> reps.(comp.(i)) <- Some t
        | Some (Term.Var _), Term.Const _ -> reps.(comp.(i)) <- Some t
        | _ -> ())
      nodes;
    let map_term t =
      match t with
      | Term.Const _ -> t
      | Term.Var _ ->
          if List.exists (Term.equal t) nodes then
            match reps.(comp.(node_id t)) with
            | Some r -> r
            | None -> t
          else t
    in
    let head = List.map map_term q.Cq.head in
    let body =
      List.map
        (fun a -> Atom.make a.Atom.rel (List.map map_term a.Atom.args))
        q.Cq.body
    in
    (* Re-examine every constraint under the substitution. *)
    let exception Unsat in
    try
      let constraints =
        dedup
          (List.filter_map
             (fun c ->
               let lhs = map_term c.Constr.lhs
               and rhs = map_term c.Constr.rhs in
               match lhs, rhs with
               | Term.Const a, Term.Const b ->
                   if Constr.eval_op c.Constr.op a b then None else raise Unsat
               | _ ->
                   if Term.equal lhs rhs then
                     match c.Constr.op with
                     | Constr.Le -> None (* x <= x: trivial *)
                     | Constr.Lt | Constr.Neq -> raise Unsat
                   else Some (Constr.make c.Constr.op lhs rhs))
             q.Cq.constraints)
      in
      Collapsed (Cq.make ~name:q.Cq.name ~constraints ~head body)
    with Unsat -> Inconsistent
  end

let is_acyclic_with_comparisons q =
  match preprocess q with
  | Inconsistent -> true
  | Collapsed q' ->
      Paradb_hypergraph.Hypergraph.is_acyclic
        (Paradb_hypergraph.Hypergraph.of_cq q')

let empty_result q =
  Relation.create ~name:q.Cq.name
    ~schema:(List.mapi (fun i _ -> Printf.sprintf "a%d" i) q.Cq.head)
    []

let evaluate ?budget db q =
  match preprocess q with
  | Inconsistent -> empty_result q
  | Collapsed q' ->
      let acyclic =
        Paradb_hypergraph.Hypergraph.is_acyclic
          (Paradb_hypergraph.Hypergraph.of_cq q')
      in
      if Cq.comparison_constraints q' = [] && acyclic && q'.Cq.body <> [] then
        Engine.evaluate ?budget db q'
      else Paradb_eval.Cq_naive.evaluate ?budget db q'

let is_satisfiable ?budget db q =
  match preprocess q with
  | Inconsistent -> false
  | Collapsed q' ->
      let acyclic =
        Paradb_hypergraph.Hypergraph.is_acyclic
          (Paradb_hypergraph.Hypergraph.of_cq q')
      in
      if Cq.comparison_constraints q' = [] && acyclic && q'.Cq.body <> [] then
        Engine.is_satisfiable ?budget db q'
      else Paradb_eval.Cq_naive.is_satisfiable ?budget db q'
