(* Commutative semirings for annotated relations.

   The Bool instance is the engine's implicit default and never pays for
   this abstraction: the set-semantics kernel (Row_set dedup, semijoins)
   *is* the Bool semiring, so the trusted fast path stays untouched and
   annotated evaluation is an opt-in layer on top. *)

type 'a t = {
  name : string;
  zero : 'a;
  one : 'a;
  plus : 'a -> 'a -> 'a;
  times : 'a -> 'a -> 'a;
  equal : 'a -> 'a -> bool;
  to_string : 'a -> string;
}

let bool =
  {
    name = "bool";
    zero = false;
    one = true;
    plus = ( || );
    times = ( && );
    equal = Bool.equal;
    to_string = string_of_bool;
  }

let nat =
  {
    name = "nat";
    zero = 0;
    one = 1;
    plus = ( + );
    times = ( * );
    equal = Int.equal;
    to_string = string_of_int;
  }

(* min-plus with [max_int] as +inf.  [times] saturates so inf + w = inf
   rather than wrapping around. *)
let sat_add a b = if a = max_int || b = max_int then max_int else a + b

let tropical () =
  (* Mutation hook (see Mutate): [sum_instead_of_max] replaces the ⊕
     selection operator (min over alternatives) with arithmetic sum —
     the classic bug of accumulating over all witnesses instead of
     keeping the best one.  Read once at construction: hook sites run
     once per pass, never per tuple. *)
  let plus =
    if Paradb_telemetry.Mutate.enabled "sum_instead_of_max" then sat_add
    else Stdlib.min
  in
  {
    name = "tropical";
    zero = max_int;
    one = 0;
    plus;
    times = sat_add;
    equal = Int.equal;
    to_string = (fun c -> if c = max_int then "inf" else string_of_int c);
  }
