(* Semiring-annotated relations: a map from code rows to annotations.

   This is the opt-in layer over the plain set-semantics kernel.  The
   Bool engine never allocates one of these — [Relation.t]'s dedup and
   semijoins already implement the Bool semiring — so the trusted fast
   path is untouched.  Counting (Nat) and min-cost (Tropical) evaluation
   build annotated copies of the per-atom relations and push them
   through project/join, which ⊕-sum and ⊗-multiply annotations where
   the set kernel would dedup and intersect. *)

type 'a t = {
  name : string;
  schema : string array;
  rows : 'a Code_row.Table.t;
}

let name t = t.name
let schema t = Array.to_list t.schema
let cardinality t = Code_row.Table.length t.rows
let is_empty t = Code_row.Table.length t.rows = 0
let iter f t = Code_row.Table.iter f t.rows
let fold f t init = Code_row.Table.fold f t.rows init
let find t row = Code_row.Table.find_opt t.rows row

let position t attr =
  let n = Array.length t.schema in
  let rec go i =
    if i >= n then raise Not_found
    else if String.equal t.schema.(i) attr then i
    else go (i + 1)
  in
  go 0

let positions t attrs = Array.of_list (List.map (position t) attrs)

let check_schema name schema =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun a ->
      if Hashtbl.mem seen a then
        invalid_arg
          (Printf.sprintf "Annotated.%s: duplicate attribute %S" name a)
      else Hashtbl.add seen a ())
    schema

(* Merge [ann] into the slot for [row], ⊕-summing with any previous
   annotation.  [dedup_drop] is the armed-once-per-call value of the
   [count_dedup_drop] mutation hook: when set, duplicates keep their
   first annotation — multiplicities silently collapse toward set
   semantics, which is exactly the bug the counting oracle must catch. *)
let merge_row (sr : 'a Semiring.t) ~dedup_drop rows row ann =
  match Code_row.Table.find_opt rows row with
  | None -> Code_row.Table.replace rows row ann
  | Some prev ->
      if not dedup_drop then Code_row.Table.replace rows row (sr.plus prev ann)

let of_rows (sr : 'a Semiring.t) ?(name = "") ~schema pairs =
  check_schema "of_rows" schema;
  let arity = List.length schema in
  let rows = Code_row.Table.create (List.length pairs + 1) in
  List.iter
    (fun (row, ann) ->
      if Array.length row <> arity then
        invalid_arg "Annotated.of_rows: row arity mismatch";
      merge_row sr ~dedup_drop:false rows row ann)
    pairs;
  { name; schema = Array.of_list schema; rows }

let of_relation (sr : 'a Semiring.t) ?weight rel =
  let rows = Code_row.Table.create (Relation.cardinality rel + 1) in
  let ann =
    match weight with Some f -> f | None -> fun _ -> sr.one
  in
  Relation.iter_codes (fun row -> Code_row.Table.replace rows row (ann row)) rel;
  { name = Relation.name rel; schema = Relation.schema rel; rows }

let project (sr : 'a Semiring.t) attrs t =
  check_schema "project" attrs;
  let pos = positions t attrs in
  let dedup_drop = Paradb_telemetry.Mutate.enabled "count_dedup_drop" in
  let rows = Code_row.Table.create (Code_row.Table.length t.rows + 1) in
  Code_row.Table.iter
    (fun row ann ->
      merge_row sr ~dedup_drop rows (Code_row.sub row pos) ann)
    t.rows;
  { name = t.name; schema = Array.of_list attrs; rows }

let common_attrs a b =
  List.filter (fun attr -> Array.exists (String.equal attr) b.schema)
    (Array.to_list a.schema)

let natural_join (sr : 'a Semiring.t) a b =
  let common = common_attrs a b in
  let rest_b =
    List.filter
      (fun attr -> not (List.mem attr common))
      (Array.to_list b.schema)
  in
  let out_schema = Array.to_list a.schema @ rest_b in
  let key_a = positions a common and key_b = positions b common in
  let rest_pos = positions b rest_b in
  (* index the smaller work: one pass over b keyed on the join columns *)
  let index : (Code_row.t, (Code_row.t * 'a) list) Hashtbl.t =
    Hashtbl.create (Code_row.Table.length b.rows + 1)
  in
  Code_row.Table.iter
    (fun row ann ->
      let k = Code_row.sub row key_b in
      let prev = Option.value (Hashtbl.find_opt index k) ~default:[] in
      Hashtbl.replace index k ((row, ann) :: prev))
    b.rows;
  let rows = Code_row.Table.create (Code_row.Table.length a.rows + 1) in
  Code_row.Table.iter
    (fun ra ann_a ->
      match Hashtbl.find_opt index (Code_row.sub ra key_a) with
      | None -> ()
      | Some matches ->
          List.iter
            (fun (rb, ann_b) ->
              let out = Code_row.append ra (Code_row.sub rb rest_pos) in
              merge_row sr ~dedup_drop:false rows out (sr.times ann_a ann_b))
            matches)
    a.rows;
  { name = a.name; schema = Array.of_list out_schema; rows }

(* a ⋉ b: rows of [a] with a join partner in [b], annotations preserved
   — semijoin reduction is pure pruning and must not touch multiplicity
   (the dropped rows contribute 0 to any aggregate anyway). *)
let semijoin a b =
  let common = common_attrs a b in
  match common with
  | [] ->
      if is_empty b then { a with rows = Code_row.Table.create 1 } else a
  | _ ->
      let key_a = positions a common and key_b = positions b common in
      let keys = Code_row.Table.create (Code_row.Table.length b.rows + 1) in
      Code_row.Table.iter
        (fun row _ -> Code_row.Table.replace keys (Code_row.sub row key_b) ())
        b.rows;
      let rows = Code_row.Table.create (Code_row.Table.length a.rows + 1) in
      Code_row.Table.iter
        (fun row ann ->
          if Code_row.Table.mem keys (Code_row.sub row key_a) then
            Code_row.Table.replace rows row ann)
        a.rows;
      { a with rows }

let total (sr : 'a Semiring.t) t =
  Code_row.Table.fold (fun _ ann acc -> sr.plus acc ann) t.rows sr.zero
