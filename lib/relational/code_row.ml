type t = int array

let equal (a : t) (b : t) =
  let la = Array.length a in
  la = Array.length b
  &&
  let rec go i = i >= la || (a.(i) = b.(i) && go (i + 1)) in
  go 0

(* FNV-1a over the cells; int codes are immediate so this never follows a
   pointer. *)
let hash (a : t) =
  let h = ref 0x811c9dc5 in
  for i = 0 to Array.length a - 1 do
    h := (!h lxor a.(i)) * 0x01000193
  done;
  !h land max_int

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else
    let rec go i =
      if i >= la then 0
      else
        let c = Int.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let sub (row : t) (positions : int array) =
  Array.map (fun i -> row.(i)) positions

(* Hash and equality of the sub-row at [positions] without materialising
   it — the allocation-free primitives behind key indexes. *)
let hash_sub (row : t) (positions : int array) =
  let h = ref 0x811c9dc5 in
  for i = 0 to Array.length positions - 1 do
    h := (!h lxor row.(positions.(i))) * 0x01000193
  done;
  !h land max_int

let equal_sub (a : t) (pa : int array) (b : t) (pb : int array) =
  let la = Array.length pa in
  la = Array.length pb
  &&
  let rec go i = i >= la || (a.(pa.(i)) = b.(pb.(i)) && go (i + 1)) in
  go 0

let append = Array.append

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
