type t = {
  mutable values : Value.t array; (* code -> value; grown geometrically *)
  mutable size : int;
  codes : int Value.Table.t; (* value -> code *)
  lock : Mutex.t;
}

let create ?(size_hint = 1024) () =
  {
    values = Array.make (max 16 size_hint) (Value.Int 0);
    size = 0;
    codes = Value.Table.create (max 16 size_hint);
    lock = Mutex.create ();
  }

let global = create ()
let size d = d.size

let intern d v =
  (* Fast path: already interned.  Safe only because codes are never
     removed or reassigned, and the slow path double-checks under the
     lock. *)
  match Value.Table.find_opt d.codes v with
  | Some c -> c
  | None ->
      Mutex.protect d.lock (fun () ->
          match Value.Table.find_opt d.codes v with
          | Some c -> c
          | None ->
              let c = d.size in
              if c = Array.length d.values then begin
                let bigger = Array.make (2 * c) (Value.Int 0) in
                Array.blit d.values 0 bigger 0 c;
                (* Publish the grown array before the new size so a
                   concurrent [value] never reads past the array. *)
                d.values <- bigger
              end;
              d.values.(c) <- v;
              d.size <- c + 1;
              Value.Table.add d.codes v c;
              c)

let code_opt d v = Value.Table.find_opt d.codes v

let value d c =
  if c < 0 || c >= d.size then
    invalid_arg (Printf.sprintf "Dictionary.value: unknown code %d" c)
  else d.values.(c)
