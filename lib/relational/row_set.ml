(* Open-addressing hash set with a dense side array of rows.  [table]
   holds indexes into [rows] (-1 = empty slot); linear probing; row
   hashes are cached in [hashes] so resizing never rehashes a row.  Rows
   are kept in insertion order, which gives O(1) [get] and cheap dense
   iteration.

   A set built by [of_unique_array] starts SEALED: [mask = -1] and the
   table/hash arrays empty.  Dense reads work as usual; the first
   operation that needs the probe table ([add]/[mem]) builds it then.
   The cold-open path of the segment store depends on this — decoding a
   10M-row segment must not pay a hash insert per row that evaluation
   will never look at. *)

type t = {
  mutable rows : Code_row.t array;
  mutable hashes : int array;
  mutable size : int;
  mutable table : int array;
  mutable mask : int; (* -1: probe table not built yet *)
}

let rec pow2 n c = if c >= n then c else pow2 n (c * 2)

let create n =
  let cap = pow2 (2 * max 8 n) 16 in
  {
    rows = Array.make (max 8 n) [||];
    hashes = Array.make (max 8 n) 0;
    size = 0;
    table = Array.make cap (-1);
    mask = cap - 1;
  }

let of_unique_array rows size =
  { rows; hashes = [||]; size; table = [||]; mask = -1 }

let ensure_table s =
  if s.mask < 0 then begin
    let cap = pow2 (2 * max 8 s.size) 16 in
    let table = Array.make cap (-1) in
    let mask = cap - 1 in
    let hashes = Array.make (max 8 (Array.length s.rows)) 0 in
    for i = 0 to s.size - 1 do
      let h = Code_row.hash s.rows.(i) in
      hashes.(i) <- h;
      let j = ref (h land mask) in
      while table.(!j) >= 0 do
        j := (!j + 1) land mask
      done;
      table.(!j) <- i
    done;
    s.hashes <- hashes;
    s.table <- table;
    s.mask <- mask
  end

let cardinal s = s.size
let is_empty s = s.size = 0
let get s i = s.rows.(i)

let grow_dense s =
  let n = Array.length s.rows in
  let rows = Array.make (2 * n) [||] and hashes = Array.make (2 * n) 0 in
  Array.blit s.rows 0 rows 0 n;
  Array.blit s.hashes 0 hashes 0 n;
  s.rows <- rows;
  s.hashes <- hashes

let resize_table s =
  let cap = 2 * (s.mask + 1) in
  let table = Array.make cap (-1) in
  let mask = cap - 1 in
  for i = 0 to s.size - 1 do
    let j = ref (s.hashes.(i) land mask) in
    while table.(!j) >= 0 do
      j := (!j + 1) land mask
    done;
    table.(!j) <- i
  done;
  s.table <- table;
  s.mask <- mask

let add s row =
  ensure_table s;
  let h = Code_row.hash row in
  let j = ref (h land s.mask) in
  let i = ref s.table.(!j) in
  let dup = ref false in
  while (not !dup) && !i >= 0 do
    if s.hashes.(!i) = h && Code_row.equal s.rows.(!i) row then dup := true
    else begin
      j := (!j + 1) land s.mask;
      i := s.table.(!j)
    end
  done;
  if not !dup then begin
    if s.size = Array.length s.rows then grow_dense s;
    s.rows.(s.size) <- row;
    s.hashes.(s.size) <- h;
    s.table.(!j) <- s.size;
    s.size <- s.size + 1;
    (* Keep load factor under 3/4. *)
    if 4 * s.size > 3 * (s.mask + 1) then resize_table s
  end

let mem s row =
  ensure_table s;
  let h = Code_row.hash row in
  let j = ref (h land s.mask) in
  let i = ref s.table.(!j) in
  let found = ref false in
  while (not !found) && !i >= 0 do
    if s.hashes.(!i) = h && Code_row.equal s.rows.(!i) row then found := true
    else begin
      j := (!j + 1) land s.mask;
      i := s.table.(!j)
    end
  done;
  !found

let iter f s =
  for i = 0 to s.size - 1 do
    f s.rows.(i)
  done

let fold f s init =
  let acc = ref init in
  for i = 0 to s.size - 1 do
    acc := f s.rows.(i) !acc
  done;
  !acc

let copy s =
  {
    rows = Array.copy s.rows;
    hashes = Array.copy s.hashes;
    size = s.size;
    table = Array.copy s.table;
    mask = s.mask;
  }

let equal a b =
  cardinal a = cardinal b
  &&
  try
    iter (fun row -> if not (mem b row) then raise Exit) a;
    true
  with Exit -> false
