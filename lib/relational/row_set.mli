(** Hash-backed sets of code rows: the relation row store.

    Replaces the former AVL-tree [Tuple.Set] store on the hot path: an
    open-addressing table of indexes into a dense row array, so
    [add]/[mem] are expected O(1) with no per-entry allocation and
    [cardinal] is O(1).  Sets are mutable during construction; relational
    operators treat a set as frozen once its relation is built (they
    always build a fresh set rather than mutating a published one). *)

type t

val create : int -> t

(** [get s i] is the [i]th row in insertion order, [0 <= i < cardinal s].
    Do not mutate the returned array. *)
val get : t -> int -> Code_row.t

(** [add s row] inserts [row], deduplicating. *)
val add : t -> Code_row.t -> unit

val mem : t -> Code_row.t -> bool
val cardinal : t -> int
val is_empty : t -> bool
val iter : (Code_row.t -> unit) -> t -> unit
val fold : (Code_row.t -> 'a -> 'a) -> t -> 'a -> 'a
val copy : t -> t

(** [equal a b] — same rows. *)
val equal : t -> t -> bool
