(** Hash-backed sets of code rows: the relation row store.

    Replaces the former AVL-tree [Tuple.Set] store on the hot path: an
    open-addressing table of indexes into a dense row array, so
    [add]/[mem] are expected O(1) with no per-entry allocation and
    [cardinal] is O(1).  Sets are mutable during construction; relational
    operators treat a set as frozen once its relation is built (they
    always build a fresh set rather than mutating a published one). *)

type t

val create : int -> t

(** [of_unique_array rows size] takes ownership of [rows] (whose first
    [size] entries must be pairwise-distinct code rows) and wraps it as
    a set WITHOUT building the probe table: the table and cached hashes
    are materialized lazily on the first [add]/[mem]/[equal].  Dense
    iteration ([get]/[iter]/[fold]) never needs them, so a bulk loader
    whose consumers only scan pays nothing beyond the array itself.
    The uniqueness precondition is the caller's to uphold — the segment
    reader derives it from the writer's set semantics. *)
val of_unique_array : Code_row.t array -> int -> t

(** [get s i] is the [i]th row in insertion order, [0 <= i < cardinal s].
    Do not mutate the returned array. *)
val get : t -> int -> Code_row.t

(** [add s row] inserts [row], deduplicating. *)
val add : t -> Code_row.t -> unit

val mem : t -> Code_row.t -> bool
val cardinal : t -> int
val is_empty : t -> bool
val iter : (Code_row.t -> unit) -> t -> unit
val fold : (Code_row.t -> 'a -> 'a) -> t -> 'a -> 'a
val copy : t -> t

(** [equal a b] — same rows. *)
val equal : t -> t -> bool
