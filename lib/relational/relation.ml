(* Rows are stored dictionary-encoded: each cell is a dense int code from
   [dict], and the row store is a hash set of flat [int array]s.  All
   operators work directly on code rows; [Value.t] tuples only appear at
   the construction/observation boundary.  Per-relation key indexes
   (key-position vector -> hash index from key to rows) are built lazily
   and memoized, so repeated joins/semijoins against the same relation pay
   for the index once. *)

(* A hash join index: bucket heads + per-row chain links over the dense
   row array of the owning [Row_set].  Probing hashes the probe row's key
   cells in place ([Code_row.hash_sub]) and walks the chain comparing
   cells positionally, so neither building nor probing allocates keys. *)
type key_index = {
  kpos : int array; (* key column positions in the owner *)
  ktable : int array; (* hash slot -> first row id, -1 = empty *)
  knext : int array; (* row id -> next row id in the same slot *)
  kmask : int;
}

type t = {
  name : string;
  schema : string array;
  index : (string, int) Hashtbl.t; (* attribute -> column *)
  dict : Dictionary.t;
  rows : Row_set.t;
  key_indexes : key_index Code_row.Table.t; (* positions -> index, lazy *)
  mutable decoded : Tuple.t array option; (* memoized decoded rows *)
  lock : Mutex.t; (* guards [key_indexes] and [decoded] *)
}

let build_index schema =
  let index = Hashtbl.create (Array.length schema) in
  Array.iteri
    (fun i attr ->
      if Hashtbl.mem index attr then
        invalid_arg ("Relation: duplicate attribute " ^ attr);
      Hashtbl.add index attr i)
    schema;
  index

let make ?(name = "") ~schema_array:schema ~dict rows =
  let index = build_index schema in
  { name; schema; index; dict; rows; key_indexes = Code_row.Table.create 2;
    decoded = None; lock = Mutex.create () }

let dict r = r.dict
let encode_row dict row = Array.map (Dictionary.intern dict) row
let decode_row dict row = Array.map (Dictionary.value dict) row

let check_arity name arity row =
  if Array.length row <> arity then
    invalid_arg
      (Printf.sprintf "Relation %s: row arity %d, schema arity %d" name
         (Array.length row) arity)

let of_seq ?(name = "") ?(dict = Dictionary.global) ~schema rows =
  let schema = Array.of_list schema in
  let arity = Array.length schema in
  let store = Row_set.create 16 in
  Seq.iter
    (fun row ->
      check_arity name arity row;
      Row_set.add store (encode_row dict row))
    rows;
  make ~name ~schema_array:schema ~dict store

let create ?name ?dict ~schema rows = of_seq ?name ?dict ~schema (List.to_seq rows)
let of_set ?name ?dict ~schema rows = of_seq ?name ?dict ~schema (Tuple.Set.to_seq rows)

let name r = r.name
let with_name name r = { r with name }
let schema r = r.schema
let schema_list r = Array.to_list r.schema
let arity r = Array.length r.schema
let cardinality r = Row_set.cardinal r.rows
let is_empty r = Row_set.is_empty r.rows

let mem row r =
  Array.length row = arity r
  &&
  let encoded =
    try Some (Array.map (fun v ->
        match Dictionary.code_opt r.dict v with
        | Some c -> c
        | None -> raise Exit) row)
    with Exit -> None
  in
  match encoded with None -> false | Some codes -> Row_set.mem r.rows codes

(* Decoded rows are memoized: evaluators that repeatedly iterate the same
   relation at the [Value.t] level (the naive backtracking baseline above
   all) decode each row once, not once per pass. *)
let decoded_rows r =
  match r.decoded with
  | Some a -> a
  | None ->
      Mutex.protect r.lock (fun () ->
          match r.decoded with
          | Some a -> a
          | None ->
              let a = Array.make (cardinality r) [||] in
              let i = ref 0 in
              Row_set.iter
                (fun row ->
                  a.(!i) <- decode_row r.dict row;
                  incr i)
                r.rows;
              r.decoded <- Some a;
              a)

let fold f r init = Array.fold_left (fun acc row -> f row acc) init (decoded_rows r)
let iter f r = Array.iter f (decoded_rows r)
let tuples r = fold List.cons r []
let tuple_set r = fold Tuple.Set.add r Tuple.Set.empty

let fold_codes f r init = Row_set.fold f r.rows init
let iter_codes f r = Row_set.iter f r.rows
let decode_value r code = Dictionary.value r.dict code
let code_of_value r v = Dictionary.code_opt r.dict v

let add row r =
  if Array.length row <> arity r then invalid_arg "Relation.add: arity";
  let rows = Row_set.copy r.rows in
  Row_set.add rows (encode_row r.dict row);
  make ~name:r.name ~schema_array:r.schema ~dict:r.dict rows

let position r attr = Hashtbl.find r.index attr
let positions r attrs = Array.of_list (List.map (position r) attrs)
let has_attr r attr = Hashtbl.mem r.index attr
let common_attrs r1 r2 = List.filter (has_attr r2) (schema_list r1)

(* Re-encode [r] into [dict] (identity when the dictionaries coincide,
   which they do for every relation built without an explicit
   dictionary). *)
let recode_into dict r =
  if r.dict == dict then r
  else
    let rows = Row_set.create (cardinality r) in
    Row_set.iter
      (fun row ->
        Row_set.add rows
          (Array.map (fun c -> Dictionary.intern dict (Dictionary.value r.dict c)) row))
      r.rows;
    make ~name:r.name ~schema_array:r.schema ~dict rows

(* The memoized key index for [positions].  Guarded by [r.lock] so
   concurrent domains sharing a relation build it once. *)
let rec index_cap n c = if c >= n then c else index_cap n (c * 2)

let key_index r (positions : int array) =
  let build () =
    let n = cardinality r in
    let cap = index_cap (2 * max 8 n) 16 in
    let ktable = Array.make cap (-1) in
    let knext = Array.make (max 1 n) (-1) in
    let kmask = cap - 1 in
    for i = 0 to n - 1 do
      let slot = Code_row.hash_sub (Row_set.get r.rows i) positions land kmask in
      knext.(i) <- ktable.(slot);
      ktable.(slot) <- i
    done;
    { kpos = positions; ktable; knext; kmask }
  in
  Mutex.protect r.lock (fun () ->
      match Code_row.Table.find_opt r.key_indexes positions with
      | Some idx -> idx
      | None ->
          let idx = build () in
          Code_row.Table.add r.key_indexes positions idx;
          idx)

(* [probe_iter owner idx row key f] calls [f row2] for every row2 of
   [owner] whose key cells (at [idx.kpos]) equal [row]'s cells at [key]. *)
let probe_iter owner idx row (key : int array) f =
  let slot = Code_row.hash_sub row key land idx.kmask in
  let i = ref idx.ktable.(slot) in
  while !i >= 0 do
    let row2 = Row_set.get owner.rows !i in
    if Code_row.equal_sub row2 idx.kpos row key then f row2;
    i := idx.knext.(!i)
  done

let probe_mem owner idx row (key : int array) =
  let slot = Code_row.hash_sub row key land idx.kmask in
  let rec go i =
    i >= 0
    && (Code_row.equal_sub (Row_set.get owner.rows i) idx.kpos row key
        || go idx.knext.(i))
  in
  go idx.ktable.(slot)

type hash_index = key_index

let hash_index = key_index

let of_codes ?(name = "") ?(dict = Dictionary.global) ?(size_hint = 16) ~schema rows =
  let schema = Array.of_list schema in
  let arity = Array.length schema in
  let store = Row_set.create (max 16 size_hint) in
  Seq.iter
    (fun row ->
      check_arity name arity row;
      Row_set.add store (Array.copy row))
    rows;
  make ~name ~schema_array:schema ~dict store

let of_unique_codes ?(name = "") ?(dict = Dictionary.global) ~schema rows =
  let schema = Array.of_list schema in
  let arity = Array.length schema in
  Array.iter (check_arity name arity) rows;
  make ~name ~schema_array:schema ~dict
    (Row_set.of_unique_array rows (Array.length rows))

let project attrs r =
  let pos = positions r attrs in
  let rows = Row_set.create (cardinality r) in
  Row_set.iter (fun row -> Row_set.add rows (Code_row.sub row pos)) r.rows;
  make ~name:r.name ~schema_array:(Array.of_list attrs) ~dict:r.dict rows

let rename pairs r =
  let fresh attr =
    match List.assoc_opt attr pairs with Some nu -> nu | None -> attr
  in
  let schema = Array.map fresh r.schema in
  (* Rows and cached indexes are position-based, hence schema-independent:
     share them. *)
  { r with schema; index = build_index schema }

let rename_positional new_schema r =
  if List.length new_schema <> arity r then
    invalid_arg "Relation.rename_positional: arity";
  let schema = Array.of_list new_schema in
  { r with schema; index = build_index schema }

let select_codes pred r =
  let rows = Row_set.create (cardinality r) in
  Row_set.iter (fun row -> if pred row then Row_set.add rows row) r.rows;
  make ~name:r.name ~schema_array:r.schema ~dict:r.dict rows

let select pred r = select_codes (fun row -> pred (decode_row r.dict row)) r

let restrict r attr pred =
  let i = position r attr in
  select_codes (fun row -> pred (Dictionary.value r.dict row.(i))) r

let extend_codes extra_attrs f r =
  let schema = Array.append r.schema (Array.of_list extra_attrs) in
  let rows = Row_set.create (cardinality r) in
  Row_set.iter (fun row -> Row_set.add rows (Code_row.append row (f row))) r.rows;
  make ~name:r.name ~schema_array:schema ~dict:r.dict rows

let extend attr f r =
  extend_codes [ attr ]
    (fun row -> [| Dictionary.intern r.dict (f (decode_row r.dict row)) |])
    r

(* Hash join.  The probe side is [r1]; the build side [r2] is indexed on
   the common attributes (via the memoized key index).  Result schema:
   r1's attributes followed by r2's attributes that are not common.
   [keep], when given, filters output rows before they are stored — a
   fused join-then-select that skips materialising the unfiltered
   result. *)
let natural_join ?keep r1 r2 =
  let r2 = recode_into r1.dict r2 in
  let common = common_attrs r1 r2 in
  let extra = List.filter (fun a -> not (has_attr r1 a)) (schema_list r2) in
  let key1 = positions r1 common and key2 = positions r2 common in
  let extra2 = positions r2 extra in
  let idx = key_index r2 key2 in
  let rows = Row_set.create (max (cardinality r1) 16) in
  let n1 = Array.length r1.schema and nx = Array.length extra2 in
  let emit =
    match keep with
    | None -> Row_set.add rows
    | Some pred -> fun out -> if pred out then Row_set.add rows out
  in
  Row_set.iter
    (fun row ->
      probe_iter r2 idx row key1 (fun row2 ->
          let out = Array.make (n1 + nx) 0 in
          Array.blit row 0 out 0 n1;
          for i = 0 to nx - 1 do
            out.(n1 + i) <- row2.(extra2.(i))
          done;
          emit out))
    r1.rows;
  make ~name:r1.name
    ~schema_array:(Array.append r1.schema (Array.of_list extra))
    ~dict:r1.dict rows

(* Same result as [natural_join], computed by sorting both sides on the
   common attributes and merging (the [|P| log |P|] implementation the
   paper's accounting assumes).  Code order is not value order, but any
   total order consistent with equality groups correctly. *)
let sort_merge_join r1 r2 =
  let r2 = recode_into r1.dict r2 in
  let common = common_attrs r1 r2 in
  let key1 = positions r1 common and key2 = positions r2 common in
  let extra = List.filter (fun a -> not (has_attr r1 a)) (schema_list r2) in
  let extra2 = positions r2 extra in
  let keyed store keypos =
    let rows =
      Row_set.fold (fun row acc -> (Code_row.sub row keypos, row) :: acc) store []
    in
    List.sort (fun (k1, _) (k2, _) -> Code_row.compare k1 k2) rows
  in
  let left = keyed r1.rows key1 and right = keyed r2.rows key2 in
  let rows = Row_set.create (max (cardinality r1) 16) in
  (* Advance both sorted lists; on equal keys, emit the group product. *)
  let rec take_group key acc = function
    | (k, row) :: rest when Code_row.equal k key -> take_group key (row :: acc) rest
    | rest -> (acc, rest)
  in
  let rec merge left right =
    match left, right with
    | [], _ | _, [] -> ()
    | (k1, _) :: _, (k2, _) :: _ ->
        let c = Code_row.compare k1 k2 in
        if c < 0 then merge (snd (take_group k1 [] left)) right
        else if c > 0 then merge left (snd (take_group k2 [] right))
        else begin
          let group1, left' = take_group k1 [] left in
          let group2, right' = take_group k1 [] right in
          List.iter
            (fun row1 ->
              List.iter
                (fun row2 ->
                  Row_set.add rows
                    (Code_row.append row1 (Code_row.sub row2 extra2)))
                group2)
            group1;
          merge left' right'
        end
  in
  merge left right;
  make ~name:r1.name
    ~schema_array:(Array.append r1.schema (Array.of_list extra))
    ~dict:r1.dict rows

let semijoin r1 r2 =
  let r2 = recode_into r1.dict r2 in
  let common = common_attrs r1 r2 in
  match common with
  | [] ->
      (* Degenerate cartesian case: with no shared attributes, r1 x r2
         restricted to r1's columns is r1 itself when r2 has at least one
         row, and empty (with r1's schema) when r2 is empty.  This holds
         for 0-ary r2 too: a 0-ary relation with the empty tuple counts as
         nonempty. *)
      if is_empty r2 then
        make ~name:r1.name ~schema_array:r1.schema ~dict:r1.dict (Row_set.create 1)
      else r1
  | _ ->
      let key1 = positions r1 common and key2 = positions r2 common in
      let idx = key_index r2 key2 in
      select_codes (fun row -> probe_mem r2 idx row key1) r1

(* Reorder r2's columns to match r1's schema; fail if attribute sets
   differ. *)
let align_rows op_name r1 r2 =
  let r2 = recode_into r1.dict r2 in
  if arity r1 <> arity r2 then invalid_arg (op_name ^ ": schemas differ");
  let pos =
    try positions r2 (schema_list r1)
    with Not_found -> invalid_arg (op_name ^ ": schemas differ")
  in
  let rows = Row_set.create (cardinality r2) in
  Row_set.iter (fun row -> Row_set.add rows (Code_row.sub row pos)) r2.rows;
  rows

let union r1 r2 =
  let rows2 = align_rows "Relation.union" r1 r2 in
  let rows = Row_set.copy r1.rows in
  Row_set.iter (fun row -> Row_set.add rows row) rows2;
  make ~name:r1.name ~schema_array:r1.schema ~dict:r1.dict rows

let diff r1 r2 =
  let rows2 = align_rows "Relation.diff" r1 r2 in
  let rows = Row_set.create (cardinality r1) in
  Row_set.iter
    (fun row -> if not (Row_set.mem rows2 row) then Row_set.add rows row)
    r1.rows;
  make ~name:r1.name ~schema_array:r1.schema ~dict:r1.dict rows

let inter r1 r2 =
  let rows2 = align_rows "Relation.inter" r1 r2 in
  let rows = Row_set.create 16 in
  Row_set.iter
    (fun row -> if Row_set.mem rows2 row then Row_set.add rows row)
    r1.rows;
  make ~name:r1.name ~schema_array:r1.schema ~dict:r1.dict rows

let product r1 r2 =
  (match common_attrs r1 r2 with
  | [] -> ()
  | a :: _ -> invalid_arg ("Relation.product: shared attribute " ^ a));
  let r2 = recode_into r1.dict r2 in
  let rows = Row_set.create (max (cardinality r1) 16) in
  Row_set.iter
    (fun row1 ->
      Row_set.iter
        (fun row2 -> Row_set.add rows (Code_row.append row1 row2))
        r2.rows)
    r1.rows;
  make ~name:r1.name
    ~schema_array:(Array.append r1.schema r2.schema)
    ~dict:r1.dict rows

let set_equal r1 r2 =
  arity r1 = arity r2
  && List.for_all (has_attr r2) (schema_list r1)
  && Row_set.equal r1.rows (align_rows "Relation.set_equal" r1 r2)

let domain r =
  (* Collect distinct codes first so each value is decoded once. *)
  let seen = Hashtbl.create 64 in
  Row_set.iter
    (fun row -> Array.iter (fun c -> Hashtbl.replace seen c ()) row)
    r.rows;
  Hashtbl.fold
    (fun c () acc -> Value.Set.add (Dictionary.value r.dict c) acc)
    seen Value.Set.empty

(* Printing is capped so that accidentally formatting a large relation
   stays readable; [set_equal] and friends are the programmatic API. *)
let pp_row_cap = 50

let pp ppf r =
  Format.fprintf ppf "@[<v>%s(%s) [%d rows]"
    (if r.name = "" then "_" else r.name)
    (String.concat ", " (schema_list r))
    (cardinality r);
  let shown = ref 0 in
  (try
     iter
       (fun row ->
         if !shown >= pp_row_cap then raise Exit;
         incr shown;
         Format.fprintf ppf "@,  %a" Tuple.pp row)
       r
   with Exit ->
     Format.fprintf ppf "@,  ... (%d more)" (cardinality r - pp_row_cap));
  Format.fprintf ppf "@]"

let to_string r = Format.asprintf "%a" pp r
