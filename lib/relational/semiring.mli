(** Commutative semirings for annotated relations (K-relations in the
    provenance-semiring sense).

    A semiring [(K, ⊕, ⊗, 0, 1)] annotates each row of a relation with an
    element of [K]; projection ⊕-sums the annotations of rows that merge,
    natural join ⊗-multiplies the annotations of joined rows.  Three
    instances cover the engine's scenarios:

    - {!bool} — ∨/∧: set semantics, exactly today's engine.  The plain
      [Relation] kernel *is* this semiring (dedup = ⊕, semijoin survival
      = ⊗), so the Bool path never goes through this module.
    - {!nat} — +/×: answer counting.  The total annotation of a query's
      (deduplicated) answer is its number of satisfying valuations.
    - {!tropical} — min/+ with [max_int] as +∞: min-cost witness. *)

type 'a t = {
  name : string;
  zero : 'a;  (** ⊕ identity; annotation of an absent row. *)
  one : 'a;  (** ⊗ identity; default annotation of a base-table row. *)
  plus : 'a -> 'a -> 'a;  (** ⊕: combine alternative derivations. *)
  times : 'a -> 'a -> 'a;  (** ⊗: combine joint derivations. *)
  equal : 'a -> 'a -> bool;
  to_string : 'a -> string;
}

val bool : bool t
val nat : int t

(** [tropical ()] is min-plus over [int] with [max_int] = +∞ and
    saturating ⊗.  A constructor rather than a value because it reads the
    [sum_instead_of_max] mutation hook once at construction time. *)
val tropical : unit -> int t
