(** Relations with named attributes and set semantics.

    A relation is a set of tuples over a schema (an ordered list of distinct
    attribute names).  All relational-algebra operators used in the paper
    are provided: selection, projection, renaming, natural join, semijoin,
    union, difference, intersection, product, and column extension (used by
    the Theorem-2 engine to add hashed shadow attributes).

    Internally rows are dictionary-encoded (see {!Dictionary}): each cell
    is a dense int code and the row store is a hash set of flat
    [int array]s, so membership, joins and semijoins never compare boxed
    values.  Key indexes (from key-position vectors to hash indexes) are
    built lazily per relation and memoized, so repeated joins/semijoins
    against the same relation reuse them.  The [Value.t]-level API below
    encodes/decodes at the boundary; the [_codes] API exposes the raw code
    rows for performance-critical callers. *)

type t

(** [create ~name ~schema rows] builds a relation.  Raises
    [Invalid_argument] if attribute names repeat or a row has the wrong
    arity.  Duplicate rows are merged (set semantics).  All relations use
    {!Dictionary.global} unless [dict] is given; binary operators
    re-encode their right argument when dictionaries differ. *)
val create :
  ?name:string -> ?dict:Dictionary.t -> schema:string list -> Tuple.t list -> t

val of_set :
  ?name:string -> ?dict:Dictionary.t -> schema:string list -> Tuple.Set.t -> t

val of_seq :
  ?name:string -> ?dict:Dictionary.t -> schema:string list -> Tuple.t Seq.t -> t

val name : t -> string
val with_name : string -> t -> t
val schema : t -> string array
val schema_list : t -> string list
val arity : t -> int
val cardinality : t -> int
val is_empty : t -> bool
val mem : Tuple.t -> t -> bool
val tuples : t -> Tuple.t list
val tuple_set : t -> Tuple.Set.t
val iter : (Tuple.t -> unit) -> t -> unit
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val add : Tuple.t -> t -> t

(** [position r attr] is the column index of [attr].  Raises [Not_found]
    if absent. *)
val position : t -> string -> int

val positions : t -> string list -> int array
val has_attr : t -> string -> bool

(** [common_attrs r1 r2] lists attributes present in both, in [r1]'s
    schema order. *)
val common_attrs : t -> t -> string list

(** [project attrs r] keeps exactly [attrs] (which may reorder columns);
    duplicates rows are merged. *)
val project : string list -> t -> t

(** [rename pairs r] renames attributes according to the association list
    [(old, new)].  Unmentioned attributes are kept. *)
val rename : (string * string) list -> t -> t

(** [rename_positional new_schema r] replaces the whole schema. *)
val rename_positional : string list -> t -> t

val select : (Tuple.t -> bool) -> t -> t

(** [restrict r attr pred] selects rows whose [attr] value satisfies
    [pred]. *)
val restrict : t -> string -> (Value.t -> bool) -> t

(** [natural_join r s] hash-joins on the common attributes; result schema
    is [r]'s attributes followed by [s]'s non-common ones.  [keep], when
    given, filters output code rows before they are stored (a fused
    join-then-select). *)
val natural_join : ?keep:(Code_row.t -> bool) -> t -> t -> t

(** [sort_merge_join r s] — same result as {!natural_join}, computed by
    sorting both sides on the common attributes and merging (the
    [|P| log |P|] implementation the paper's accounting assumes). *)
val sort_merge_join : t -> t -> t

(** [semijoin r s] is [r ⋉ s]: the rows of [r] that join with some row of
    [s] on their common attributes.  With no common attributes this
    degenerates to the cartesian guard: [r] itself when [s] is nonempty
    (including 0-ary [s] holding the empty tuple), the empty relation over
    [r]'s schema when [s] is empty. *)
val semijoin : t -> t -> t

val union : t -> t -> t
val diff : t -> t -> t
val inter : t -> t -> t

(** [product r s] requires disjoint schemas. *)
val product : t -> t -> t

(** [extend attr f r] appends a column [attr] computed from each row. *)
val extend : string -> (Tuple.t -> Value.t) -> t -> t

(** [set_equal r s] — same attribute set and same tuples (column order may
    differ). *)
val set_equal : t -> t -> bool

(** Active domain of the relation. *)
val domain : t -> Value.Set.t

(** {2 Code-level API}

    Raw access to the dictionary-encoded rows, for hot paths (the
    Theorem-2 engine's per-coloring loop).  Code rows handed to callbacks
    are the stored arrays: do not mutate them. *)

val dict : t -> Dictionary.t
val fold_codes : (Code_row.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter_codes : (Code_row.t -> unit) -> t -> unit

(** [select_codes pred r] keeps the rows whose code row satisfies [pred].
    Code equality coincides with value equality within one dictionary. *)
val select_codes : (Code_row.t -> bool) -> t -> t

(** [extend_codes attrs f r] appends the code cells computed by [f] under
    the new attributes [attrs].  The returned cells must be codes of [dict
    r]. *)
val extend_codes : string list -> (Code_row.t -> int array) -> t -> t

(** [decode_value r c] is the value behind code [c] in [r]'s dictionary. *)
val decode_value : t -> int -> Value.t

val code_of_value : t -> Value.t -> int option

(** [of_codes ~schema rows] builds a relation directly from code rows.
    Every cell must already be a code of [dict] (defaults to
    {!Dictionary.global}); no encoding or validation beyond arity is
    performed.  Duplicate rows are merged.  The rows are copied into a
    fresh store, so the sequence may reuse buffers.  [size_hint]
    presizes the store (bulk loaders pass the known row count to skip
    growth doublings). *)
val of_codes :
  ?name:string -> ?dict:Dictionary.t -> ?size_hint:int ->
  schema:string list -> Code_row.t Seq.t -> t

(** [of_unique_codes ~schema rows] — the trusted bulk constructor.
    Takes ownership of [rows], whose entries must be pairwise-distinct
    code rows over [dict]; no dedup hashing happens here, and the row
    store's probe table is built lazily on first [mem]/[add].  This is
    the segment store's cold-open path: a mmap'd segment decodes
    straight into the relation at memory speed, because the writer
    already guaranteed set semantics. *)
val of_unique_codes :
  ?name:string -> ?dict:Dictionary.t -> schema:string list ->
  Code_row.t array -> t

(** {2 Probe API}

    Direct access to the memoized per-relation key indexes, for compiled
    pipelines that probe the same relation many times.  A [hash_index] is
    built (or fetched from the memo table) once per key-position vector
    and is valid for the relation's lifetime — relations are immutable. *)

type hash_index

(** [hash_index r positions] is the hash index of [r] keyed on the column
    [positions].  The positions array is captured; do not mutate it. *)
val hash_index : t -> int array -> hash_index

(** [probe_iter r idx probe key f] calls [f row] for every row of [r]
    whose cells at the index's key columns equal, positionally, [probe]'s
    cells at [key].  [probe] can be any code row over [dict r] — e.g. a
    register file — and is read, never retained. *)
val probe_iter : t -> hash_index -> Code_row.t -> int array -> (Code_row.t -> unit) -> unit

(** [probe_mem r idx probe key] — does any row of [r] match? *)
val probe_mem : t -> hash_index -> Code_row.t -> int array -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
