(** Rows of dictionary codes: the hot-path tuple representation.

    A code row is a flat [int array] whose cells are {!Dictionary} codes.
    Equality, hashing and ordering are on the raw integers — two code rows
    over the same dictionary are equal iff the value tuples they encode
    are equal.  The ordering is {e not} the value ordering of
    {!Tuple.compare}; it is only guaranteed to be a total order consistent
    with equality (which is all grouping-based algorithms need). *)

type t = int array

val equal : t -> t -> bool
val hash : t -> int
val compare : t -> t -> int

(** [sub row positions] extracts cells at [positions], in order (positions
    may repeat). *)
val sub : t -> int array -> t

(** [hash_sub row positions] = [hash (sub row positions)], without
    allocating the sub-row. *)
val hash_sub : t -> int array -> int

(** [equal_sub a pa b pb] = [equal (sub a pa) (sub b pb)], without
    allocating. *)
val equal_sub : t -> int array -> t -> int array -> bool

val append : t -> t -> t

module Table : Hashtbl.S with type key = t
