(** Value interning (dictionary encoding).

    A dictionary assigns every distinct {!Value.t} a dense integer code in
    [0 .. size - 1].  Relations store their rows as arrays of codes, so the
    hot relational operators (join, semijoin, projection) work on immediate
    integers: equality is [(=)] on ints, hashing never touches a boxed
    value, and a code row fits in one flat [int array].

    Codes are only comparable between relations sharing the same dictionary;
    {!global} is the process-wide default and every relation uses it unless
    built with an explicit dictionary.

    Concurrency contract: {!intern} is serialized by an internal mutex and
    is safe against concurrent {!intern} calls.  {!value} is safe against
    concurrent interning (codes are never reassigned and the backing array
    is replaced wholesale on growth).  {!code_opt} is a plain hash-table
    read and must not race with {!intern}; the engine pre-interns every
    value a parallel region can see before fanning out. *)

type t

val create : ?size_hint:int -> unit -> t

(** The process-wide dictionary used by default for every relation. *)
val global : t

(** Number of codes assigned so far. *)
val size : t -> int

(** [intern d v] returns the code of [v], assigning the next free code on
    first sight. *)
val intern : t -> Value.t -> int

(** [code_opt d v] is the code of [v] if it has been interned, without
    interning it. *)
val code_opt : t -> Value.t -> int option

(** [value d c] decodes a code.  Raises [Invalid_argument] on a code never
    returned by [intern d]. *)
val value : t -> int -> Value.t
