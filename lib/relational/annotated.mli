(** Semiring-annotated relations (K-relations).

    An annotated relation maps each (dictionary-encoded) row to an
    annotation in a {!Semiring}.  Projection ⊕-sums the annotations of
    rows that merge; natural join ⊗-multiplies the annotations of joined
    rows; semijoin prunes without touching annotations.  Under
    {!Semiring.nat} with all base annotations 1, the total annotation of
    a query's answer is its number of satisfying valuations; under
    {!Semiring.tropical} it is the minimum cost over witnesses.

    The Bool engine never uses this module: [Relation.t]'s set semantics
    {e is} the Bool semiring, so the trusted fast path stays on the plain
    kernel and annotated evaluation is an opt-in layer (see DESIGN.md
    §17). *)

type 'a t

val name : 'a t -> string
val schema : 'a t -> string list
val cardinality : 'a t -> int
val is_empty : 'a t -> bool
val iter : (Code_row.t -> 'a -> unit) -> 'a t -> unit
val fold : (Code_row.t -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
val find : 'a t -> Code_row.t -> 'a option

(** [of_relation sr rel] annotates every row of [rel] — with [sr.one], or
    with [weight row] when given (rows are [rel]'s stored code rows; use
    [Relation.decode_value rel] to look at values). *)
val of_relation :
  'a Semiring.t -> ?weight:(Code_row.t -> 'a) -> Relation.t -> 'a t

(** [of_rows sr ~schema pairs] builds directly from [(code_row,
    annotation)] pairs; duplicate rows ⊕-merge.  Raises
    [Invalid_argument] on arity mismatch or repeated attributes. *)
val of_rows :
  'a Semiring.t -> ?name:string -> schema:string list ->
  (Code_row.t * 'a) list -> 'a t

(** [project sr attrs t] keeps exactly [attrs] (which may reorder
    columns); rows that collide ⊕-sum their annotations.  Raises
    [Not_found] if an attribute is absent. *)
val project : 'a Semiring.t -> string list -> 'a t -> 'a t

(** [natural_join sr a b] hash-joins on the common attributes; the output
    schema is [a]'s attributes followed by [b]'s non-common ones, and
    each output row carries [a_ann ⊗ b_ann] (⊕-summed should outputs
    collide). *)
val natural_join : 'a Semiring.t -> 'a t -> 'a t -> 'a t

(** [semijoin a b] keeps the rows of [a] with a join partner in [b],
    annotations untouched.  With no common attributes: [a] itself when
    [b] is nonempty, empty otherwise. *)
val semijoin : 'a t -> 'b t -> 'a t

(** [total sr t] ⊕-sums every annotation; [sr.zero] when empty. *)
val total : 'a Semiring.t -> 'a t -> 'a
