module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Budget = Paradb_telemetry.Budget
open Paradb_query

type stats = { mutable probes : int }

let new_stats () = { probes = 0 }

(* A constraint is checkable once both sides are bound; unready constraints
   pass for now and are re-checked when complete. *)
let constr_ready binding c =
  let ready = function
    | Term.Const _ -> true
    | Term.Var x -> Binding.mem x binding
  in
  ready c.Constr.lhs && ready c.Constr.rhs

let check_constraints binding cs =
  List.for_all
    (fun c -> (not (constr_ready binding c)) || Constr.holds binding c)
    cs

let bound_var_count binding atom =
  List.length (List.filter (fun x -> Binding.mem x binding) (Atom.vars atom))

(* How many probes between two deadline checks: cheap enough to leave on
   (one land + branch per probe), frequent enough that expiry surfaces
   within microseconds of real work. *)
let budget_stride = 1024

(* Backtracking enumeration of satisfying instantiations; [on_solution] may
   raise to abort the search. *)
let iter_bindings ?budget ~stats ~order_atoms db q on_solution =
  let constraints = q.Cq.constraints in
  let pick binding remaining =
    if order_atoms then begin
      match
        List.fold_left
          (fun best a ->
            match best with
            | None -> Some a
            | Some b ->
                if bound_var_count binding a > bound_var_count binding b then
                  Some a
                else best)
          None remaining
      with
      | Some a -> (a, List.filter (fun b -> b != a) remaining)
      | None -> assert false
    end
    else (List.hd remaining, List.tl remaining)
  in
  let rec search binding remaining =
    match remaining with
    | [] -> if check_constraints binding constraints then on_solution binding
    | _ ->
        let atom, rest = pick binding remaining in
        let rel = Database.find db atom.Atom.rel in
        let grounded = Atom.substitute binding atom in
        Relation.iter
          (fun tuple ->
            stats.probes <- stats.probes + 1;
            (match budget with
            | Some b when stats.probes land (budget_stride - 1) = 0 ->
                Budget.check b
            | _ -> ());
            match Atom.matches grounded tuple with
            | None -> ()
            | Some extension -> (
                match Binding.merge binding extension with
                | None -> ()
                | Some binding' ->
                    (* Prune as soon as a completed constraint fails. *)
                    if check_constraints binding' constraints then
                      search binding' rest))
          rel
  in
  search Binding.empty q.Cq.body

let all_bindings ?budget ?stats ?(order_atoms = true) db q =
  let stats = match stats with Some s -> s | None -> new_stats () in
  let results = ref [] in
  iter_bindings ?budget ~stats ~order_atoms db q (fun b ->
      results := b :: !results);
  !results

let evaluate ?budget ?stats ?order_atoms db q =
  let bindings = all_bindings ?budget ?stats ?order_atoms db q in
  let schema = List.mapi (fun i _ -> Printf.sprintf "a%d" i) q.Cq.head in
  let rows = List.map (fun b -> Cq.head_tuple b q) bindings in
  Relation.create ~name:q.Cq.name ~schema rows

(* Exact answer count under bag (Nat-semiring) semantics: the number of
   satisfying valuations of the body variables.  [iter_bindings] visits
   each valuation exactly once — relations are sets and a full binding
   pins every atom's tuple — so counting callbacks is exact.  This is
   the oracle's counting reference; every other COUNT path is checked
   against it. *)
let count ?budget ?stats ?(order_atoms = true) db q =
  let stats = match stats with Some s -> s | None -> new_stats () in
  let n = ref 0 in
  iter_bindings ?budget ~stats ~order_atoms db q (fun _ -> incr n);
  !n

exception Found

let is_satisfiable ?budget ?stats ?(order_atoms = true) db q =
  let stats = match stats with Some s -> s | None -> new_stats () in
  try
    iter_bindings ?budget ~stats ~order_atoms db q (fun _ -> raise Found);
    false
  with Found -> true

let decide ?budget ?stats ?order_atoms db q tuple =
  match Cq.close_with_tuple q tuple with
  | None -> false
  | Some closed -> is_satisfiable ?budget ?stats ?order_atoms db closed
