(** First-order (relational calculus) evaluation over the active domain —
    the [n^{O(v)}] baseline of Vardi's bounded-variable analysis and of
    Theorem 1's first-order row.

    Quantifiers range over the database's active domain plus the
    constants of the formula (standard safe/active-domain semantics). *)

type stats = { mutable extensions : int }

val new_stats : unit -> stats

(** The quantification domain used for [db] and formula [f]. *)
val active_domain :
  Paradb_relational.Database.t -> Paradb_query.Fo.t ->
  Paradb_relational.Value.t list

(** [holds db f binding] — truth of [f] under [binding], which must cover
    the free variables.  [domain] overrides the quantification domain.
    [budget] is polled every 256 quantifier extensions — the [n^{O(v)}]
    quantifier tower is Theorem 1's first-order worst case
    ({!Paradb_telemetry.Budget.Exhausted} propagates). *)
val holds :
  ?budget:Paradb_telemetry.Budget.t ->
  ?stats:stats -> ?domain:Paradb_relational.Value.t list ->
  Paradb_relational.Database.t -> Paradb_query.Fo.t ->
  Paradb_query.Binding.t -> bool

(** Truth of a sentence. *)
val sentence_holds :
  ?budget:Paradb_telemetry.Budget.t ->
  ?stats:stats -> ?domain:Paradb_relational.Value.t list ->
  Paradb_relational.Database.t -> Paradb_query.Fo.t -> bool

(** [evaluate db f ~head] — the output relation {τ(head) | db ⊨ f[τ]},
    τ ranging over assignments of the free variables of [f] (all free
    variables must be listed in [head]). *)
val evaluate :
  ?budget:Paradb_telemetry.Budget.t ->
  ?stats:stats -> ?domain:Paradb_relational.Value.t list ->
  Paradb_relational.Database.t -> Paradb_query.Fo.t ->
  head:string list -> Paradb_relational.Relation.t
