module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Tuple = Paradb_relational.Tuple
module Value = Paradb_relational.Value
open Paradb_query

type join_algorithm =
  | Hash_join
  | Sort_merge

(* One relation per atom, over the atom's variables (constants and
   repeated variables resolved by selection). *)
let atom_relation db atom =
  let vars = Atom.vars atom in
  let rel = Database.find db atom.Atom.rel in
  (* Accumulate a plain list: [Relation.create] dedups in its hash store,
     so no ordered-set intermediate is needed. *)
  let rows =
    Relation.fold
      (fun tuple acc ->
        match Atom.matches atom tuple with
        | None -> acc
        | Some binding ->
            Array.of_list
              (List.map
                 (fun x ->
                   match Binding.find x binding with
                   | Some v -> v
                   | None -> assert false)
                 vars)
            :: acc)
      rel []
  in
  Relation.create ~schema:vars rows

(* Apply every not-yet-applied constraint whose variables are all present
   in the relation. *)
let apply_constraints rel pending =
  let present c =
    List.for_all (Relation.has_attr rel) (Constr.vars c)
  in
  let ready, pending = List.partition present pending in
  let rel =
    List.fold_left
      (fun rel c ->
        let value row = function
          | Term.Var x -> row.(Relation.position rel x)
          | Term.Const v -> v
        in
        Relation.select
          (fun row ->
            Constr.eval_op c.Constr.op (value row c.Constr.lhs)
              (value row c.Constr.rhs))
          rel)
      rel ready
  in
  (rel, pending)

let shares_attrs r s = Relation.common_attrs r s <> []

(* Greedy join order: start from the smallest relation; repeatedly join
   the smallest relation sharing an attribute with the accumulated one
   (falling back to a cross product only when forced). *)
let evaluate ?(algorithm = Hash_join) db q =
  let join a b =
    match algorithm with
    | Hash_join -> Relation.natural_join a b
    | Sort_merge -> Relation.sort_merge_join a b
  in
  let head_schema = List.mapi (fun i _ -> Printf.sprintf "a%d" i) q.Cq.head in
  match q.Cq.body with
  | [] ->
      let ok =
        List.for_all (Constr.holds Binding.empty) q.Cq.constraints
      in
      let rows =
        if ok then
          [ Array.of_list
              (List.map
                 (function Term.Const v -> v | Term.Var _ -> assert false)
                 q.Cq.head) ]
        else []
      in
      Relation.create ~name:q.Cq.name ~schema:head_schema rows
  | body ->
      let rels = List.map (atom_relation db) body in
      let smallest_first =
        List.sort
          (fun a b -> Int.compare (Relation.cardinality a) (Relation.cardinality b))
          rels
      in
      let acc, rest =
        match smallest_first with
        | first :: rest -> (first, rest)
        | [] -> assert false
      in
      let acc, pending = apply_constraints acc q.Cq.constraints in
      let rec fold acc pending rest =
        match rest with
        | [] -> (acc, pending)
        | _ ->
            let connected, disconnected =
              List.partition (shares_attrs acc) rest
            in
            let pick, others =
              match
                List.sort
                  (fun a b ->
                    Int.compare (Relation.cardinality a) (Relation.cardinality b))
                  (if connected <> [] then connected else disconnected)
              with
              | pick :: others ->
                  ( pick,
                    others
                    @ (if connected <> [] then disconnected else connected) )
              | [] -> assert false
            in
            let acc = join acc pick in
            let acc, pending = apply_constraints acc pending in
            fold acc pending others
      in
      let joined, pending = fold acc pending rest in
      assert (pending = []);
      let head_vars = Cq.head_vars q in
      let proj = Relation.project head_vars joined in
      let positions =
        List.map
          (function
            | Term.Var x -> `Var (Relation.position proj x)
            | Term.Const v -> `Const v)
          q.Cq.head
      in
      let rows =
        Relation.fold
          (fun row acc ->
            Tuple.Set.add
              (Array.of_list
                 (List.map
                    (function `Var i -> row.(i) | `Const v -> v)
                    positions))
              acc)
          proj Tuple.Set.empty
      in
      Relation.of_set ~name:q.Cq.name ~schema:head_schema rows

let is_satisfiable ?algorithm db q =
  not (Relation.is_empty (evaluate ?algorithm db q))

let decide ?algorithm db q tuple =
  match Cq.close_with_tuple q tuple with
  | None -> false
  | Some closed -> is_satisfiable ?algorithm db closed
