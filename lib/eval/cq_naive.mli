(** Naive conjunctive-query evaluation by backtracking over atoms — the
    [n^{O(q)}] baseline whose exponent Theorem 1 says is inherent.

    Constraint atoms ([≠], [<], [≤]) are checked as soon as both sides are
    bound, so this evaluator also serves as the reference semantics for
    the Theorem-2 and Theorem-3 query classes. *)

(** Number of atom-tuple probes made since creation — the work measure
    used by the scaling benchmarks. *)
type stats = { mutable probes : int }

val new_stats : unit -> stats

(** All satisfying instantiations of the query's variables.
    [order_atoms] (default [true]) greedily picks the next atom with the
    most bound variables; set it to [false] for the strict left-to-right
    baseline.  [budget], when given, is polled every 1024 probes — this
    evaluator is the [n^{O(q)}] worst case Theorem 1 promises, so it is
    the one most in need of a deadline
    ({!Paradb_telemetry.Budget.Exhausted} propagates to the caller). *)
val all_bindings :
  ?budget:Paradb_telemetry.Budget.t -> ?stats:stats -> ?order_atoms:bool ->
  Paradb_relational.Database.t -> Paradb_query.Cq.t ->
  Paradb_query.Binding.t list

(** The output relation [Q(d)], with positional attributes
    ["a0", "a1", ...]. *)
val evaluate :
  ?budget:Paradb_telemetry.Budget.t -> ?stats:stats -> ?order_atoms:bool ->
  Paradb_relational.Database.t -> Paradb_query.Cq.t ->
  Paradb_relational.Relation.t

(** Exact answer count: the number of satisfying valuations of the body
    variables (Nat-semiring semantics — NOT the cardinality of the
    deduplicated output unless the head retains every variable).  The
    enumeration visits each valuation exactly once, so this is the
    brute-force counting reference the differential oracle trusts. *)
val count :
  ?budget:Paradb_telemetry.Budget.t -> ?stats:stats -> ?order_atoms:bool ->
  Paradb_relational.Database.t -> Paradb_query.Cq.t -> int

(** Emptiness of the output (for Boolean queries: truth). *)
val is_satisfiable :
  ?budget:Paradb_telemetry.Budget.t -> ?stats:stats -> ?order_atoms:bool ->
  Paradb_relational.Database.t -> Paradb_query.Cq.t -> bool

(** The decision problem: [t ∈ Q(d)]?  Implemented as the paper
    prescribes, by substituting [t]'s constants into the query. *)
val decide :
  ?budget:Paradb_telemetry.Budget.t -> ?stats:stats -> ?order_atoms:bool ->
  Paradb_relational.Database.t -> Paradb_query.Cq.t ->
  Paradb_relational.Tuple.t -> bool
