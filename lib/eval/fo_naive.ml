module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Value = Paradb_relational.Value
module Budget = Paradb_telemetry.Budget
open Paradb_query

(* Quantifier extensions between two deadline checks. *)
let budget_stride = 256

type stats = { mutable extensions : int }

let new_stats () = { extensions = 0 }

let rec formula_constants = function
  | Fo.True | Fo.False -> Value.Set.empty
  | Fo.Rel a -> Value.Set.of_list (Atom.constants a)
  | Fo.Eq (l, r) ->
      Value.Set.of_list
        (List.filter_map
           (function Term.Const v -> Some v | Term.Var _ -> None)
           [ l; r ])
  | Fo.Not f -> formula_constants f
  | Fo.And fs | Fo.Or fs ->
      List.fold_left
        (fun acc f -> Value.Set.union acc (formula_constants f))
        Value.Set.empty fs
  | Fo.Exists (_, f) | Fo.Forall (_, f) -> formula_constants f

let active_domain db f =
  Value.Set.elements
    (Value.Set.union (Database.domain db) (formula_constants f))

let resolve binding t =
  match Binding.apply_term binding t with
  | Some v -> v
  | None ->
      invalid_arg
        ("Fo_naive: unbound free variable " ^ Term.to_string t)

let holds ?budget ?stats ?domain db f binding =
  let stats = match stats with Some s -> s | None -> new_stats () in
  let domain =
    match domain with Some d -> d | None -> active_domain db f
  in
  let rec eval binding = function
    | Fo.True -> true
    | Fo.False -> false
    | Fo.Rel a ->
        let rel = Database.find db a.Atom.rel in
        let row =
          Array.of_list (List.map (resolve binding) a.Atom.args)
        in
        Relation.mem row rel
    | Fo.Eq (l, r) -> Value.equal (resolve binding l) (resolve binding r)
    | Fo.Not g -> not (eval binding g)
    | Fo.And gs -> List.for_all (eval binding) gs
    | Fo.Or gs -> List.exists (eval binding) gs
    | Fo.Exists (xs, g) -> quantify true binding xs g
    | Fo.Forall (xs, g) -> quantify false binding xs g
  and quantify existential binding xs g =
    match xs with
    | [] -> eval binding g
    | x :: rest ->
        let try_value v =
          stats.extensions <- stats.extensions + 1;
          (match budget with
          | Some b when stats.extensions land (budget_stride - 1) = 0 ->
              Budget.check b
          | _ -> ());
          quantify existential (Binding.bind x v binding) rest g
        in
        if existential then List.exists try_value domain
        else List.for_all try_value domain
  in
  eval binding f

let sentence_holds ?budget ?stats ?domain db f =
  if not (Fo.is_sentence f) then
    invalid_arg "Fo_naive.sentence_holds: formula has free variables";
  holds ?budget ?stats ?domain db f Binding.empty

let evaluate ?budget ?stats ?domain db f ~head =
  let free = Fo.free_vars f in
  List.iter
    (fun x ->
      if not (List.mem x head) then
        invalid_arg ("Fo_naive.evaluate: free variable " ^ x ^ " not in head"))
    free;
  let domain =
    match domain with Some d -> d | None -> active_domain db f
  in
  let schema = List.mapi (fun i _ -> Printf.sprintf "a%d" i) head in
  let rows = ref [] in
  let rec assign binding = function
    | [] ->
        Budget.poll budget;
        if holds ?budget ?stats ~domain db f binding then
          rows :=
            Array.of_list
              (List.map
                 (fun x ->
                   match Binding.find x binding with
                   | Some v -> v
                   | None -> assert false)
                 head)
            :: !rows
    | x :: rest ->
        List.iter (fun v -> assign (Binding.bind x v binding) rest) domain
  in
  assign Binding.empty head;
  Relation.create ~name:"ans" ~schema !rows
