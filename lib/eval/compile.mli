(** Compiled push-based evaluation of planner plans.

    [compile] lowers a {!Paradb_planner.Planner.t} against one database
    snapshot into a pipeline of fused OCaml closures over the
    dictionary-encoded code rows: per-atom selections and projections are
    materialized once, acyclic plans are fully semijoin-reduced (the
    Yannakakis guarantee: enumeration from the root never dead-ends), and
    each plan step becomes a scan / hash-probe / membership closure
    writing variable codes into a flat register file.  Running the
    compiled pipeline does no planning, no [Value.t] decoding on the join
    path, no binding allocation and no per-tuple variant dispatch — the
    warm-path contract the server's plan cache relies on.

    The compiled value is bound to the snapshot it was compiled against;
    the server keys its cache on the catalog generation so a stale
    pipeline is never reused after LOAD/FACT.

    Budget discipline matches the interpreted engines: [compile] polls
    while materializing and reducing, and the pipeline polls at a strided
    checkpoint ({!Paradb_telemetry.Budget.Exhausted} propagates). *)

type exec

(** [compile plan db] materializes and reduces the per-atom relations and
    fuses the pipeline.  Raises [Invalid_argument] if the database lacks
    a relation named in the query (the interpreters' behaviour). *)
val compile :
  ?budget:Paradb_telemetry.Budget.t ->
  Paradb_planner.Planner.t -> Paradb_relational.Database.t -> exec

(** [run exec] executes the pipeline and returns the result relation
    (head schema [a0..an], name = query name), deduplicated.  Safe to
    call concurrently from several domains: all per-run state is local. *)
val run : ?budget:Paradb_telemetry.Budget.t -> exec -> Paradb_relational.Relation.t

(** [evaluate db q] = plan, compile, run — the one-shot convenience used
    by the CLI and the differential oracle. *)
val evaluate :
  ?budget:Paradb_telemetry.Budget.t ->
  Paradb_relational.Database.t -> Paradb_query.Cq.t -> Paradb_relational.Relation.t

(** {2 Counting}

    The same plan lowered to a counting sink: the number of satisfying
    valuations of the body variables (Nat-semiring semantics — matches
    {!Paradb_eval.Cq_naive.count}, not the cardinality of the
    deduplicated output).  Where the Bool pipeline dedups at a
    dead-variable barrier, the counting pipeline memoizes the downstream
    count per live register prefix, so counting stays within the same
    complexity envelope as deduplicated enumeration. *)

type count_exec

val compile_count :
  ?budget:Paradb_telemetry.Budget.t ->
  Paradb_planner.Planner.t -> Paradb_relational.Database.t -> count_exec

(** [run_count cexec] executes the counting pipeline.  Safe to call
    concurrently from several domains: all per-run state is local. *)
val run_count : ?budget:Paradb_telemetry.Budget.t -> count_exec -> int

(** [count db q] = plan, compile, run — one-shot counting. *)
val count :
  ?budget:Paradb_telemetry.Budget.t ->
  Paradb_relational.Database.t -> Paradb_query.Cq.t -> int
