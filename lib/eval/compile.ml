module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Dictionary = Paradb_relational.Dictionary
module Row_set = Paradb_relational.Row_set
module Code_row = Paradb_relational.Code_row
module Planner = Paradb_planner.Planner
module Budget = Paradb_telemetry.Budget
module Metrics = Paradb_telemetry.Metrics
module Mutate = Paradb_telemetry.Mutate
open Paradb_query

let m_pipelines = Metrics.counter "compile.pipelines"

(* Per-run state: a flat register file (one slot per query variable,
   holding dictionary codes), the output store, and the strided budget
   checkpoint.  Allocated fresh by [run], so one compiled [exec] can be
   executed concurrently from several domains. *)
type state = {
  regs : int array;
  mutable ticks : int;
  budget : Budget.t option;
  out : Row_set.t;
  dedup : Row_set.t array;
      (** one distinct-prefix set per dead-variable barrier *)
}

type exec = {
  name : string;
  head_schema : string list;
  nregs : int;
  ndedup : int;
  pipeline : state -> unit;
}

(* Same order of magnitude as the interpreters' probe stride: cheap
   enough to leave on, frequent enough that expiry surfaces fast. *)
let budget_stride = 512

let tick st =
  st.ticks <- st.ticks + 1;
  if st.ticks land (budget_stride - 1) = 0 then Budget.poll st.budget

(* Materialize one atom: select rows matching the constant and
   repeated-variable pattern, project to the distinct variables (schema =
   variable names), into the global dictionary. *)
let materialize ?budget db scan atom =
  let rel = Database.find db scan.Planner.rel in
  (* Code-level work assumes the shared dictionary; re-encode the odd
     relation built against a private one. *)
  let rel =
    if Relation.dict rel == Dictionary.global then rel
    else
      Relation.create ~name:(Relation.name rel)
        ~schema:(Relation.schema_list rel) (Relation.tuples rel)
  in
  let arity = Atom.arity atom in
  if Relation.arity rel <> arity then
    (* Interpreters treat arity-mismatched tuples as non-matching. *)
    Relation.of_codes ~name:scan.Planner.rel ~schema:scan.Planner.vars Seq.empty
  else begin
    let sels =
      Array.of_list
        (List.map
           (fun (pos, v) -> (pos, Dictionary.intern Dictionary.global v))
           scan.Planner.selections)
    in
    let eqs = Array.of_list scan.Planner.equalities in
    (* First-occurrence position of each distinct variable, in [vars]
       order: the projection that turns a stored row into a plan row. *)
    let fpos =
      let first = Hashtbl.create 4 in
      List.iteri
        (fun i t ->
          match t with
          | Term.Var x when not (Hashtbl.mem first x) -> Hashtbl.add first x i
          | _ -> ())
        atom.Atom.args;
      Array.of_list (List.map (Hashtbl.find first) scan.Planner.vars)
    in
    let keep row =
      Array.for_all (fun (pos, c) -> row.(pos) = c) sels
      && Array.for_all (fun (a, b) -> row.(a) = row.(b)) eqs
    in
    let n = ref 0 in
    let rows =
      Relation.fold_codes
        (fun row acc ->
          incr n;
          if !n land (budget_stride - 1) = 0 then Budget.poll budget;
          if keep row then Code_row.sub row fpos :: acc else acc)
        rel []
    in
    Relation.of_codes ~name:scan.Planner.rel ~schema:scan.Planner.vars
      (List.to_seq rows)
  end

let ground_holds c =
  match (c.Constr.lhs, c.Constr.rhs) with
  | Term.Const a, Term.Const b -> Constr.eval_op c.Constr.op a b
  | _ -> invalid_arg "Compile: ground constraint with a variable"

(* One fused register-level check per constraint.  Shared by the Bool
   and counting pipelines. *)
let compile_constraint reg_of c =
  let operand = function
    | Term.Var x -> `Reg (reg_of x)
    | Term.Const v -> `Const (Dictionary.intern Dictionary.global v, v)
  in
  let l = operand c.Constr.lhs and r = operand c.Constr.rhs in
  match c.Constr.op with
  | Constr.Neq -> (
      match (l, r) with
      | `Reg a, `Reg b -> fun regs -> regs.(a) <> regs.(b)
      | `Reg a, `Const (c, _) -> fun regs -> regs.(a) <> c
      | `Const (c, _), `Reg b -> fun regs -> c <> regs.(b)
      | `Const (c1, _), `Const (c2, _) ->
          let v = c1 <> c2 in
          fun _ -> v)
  | (Constr.Lt | Constr.Le) as op ->
      let value = function
        | `Reg a -> fun regs -> Dictionary.value Dictionary.global regs.(a)
        | `Const (_, v) -> fun _ -> v
      in
      let lv = value l and rv = value r in
      fun regs -> Constr.eval_op op (lv regs) (rv regs)

(* Materialize every atom and apply the plan's semijoin program (full
   reduction for acyclic plans).  Count-preserving: materialization's
   projection to first-occurrence variable positions is injective on the
   rows matching the selection pattern, and semijoins only drop rows that
   join with nothing.  Shared by the Bool and counting pipelines. *)
let reduced_mats ?budget plan db atoms =
  let mats =
    Array.mapi
      (fun i scan -> materialize ?budget db scan atoms.(i))
      plan.Planner.scans
  in
  List.iter
    (fun (target, filter) ->
      Budget.poll budget;
      mats.(target) <- Relation.semijoin mats.(target) mats.(filter))
    plan.Planner.reduce;
  mats

let compile ?budget plan db =
  Budget.poll budget;
  let q = plan.Planner.query in
  let vars = Cq.vars q in
  let nregs = List.length vars in
  let reg_of =
    let tbl = Hashtbl.create 8 in
    List.iteri (fun i x -> Hashtbl.add tbl x i) vars;
    Hashtbl.find tbl
  in
  let head_schema = List.mapi (fun i _ -> Printf.sprintf "a%d" i) q.Cq.head in
  let hspec =
    Array.of_list
      (List.map
         (function
           | Term.Var x -> `Reg (reg_of x)
           | Term.Const v -> `Const (Dictionary.intern Dictionary.global v))
         q.Cq.head)
  in
  let emit st =
    tick st;
    let row =
      Array.map (function `Reg r -> st.regs.(r) | `Const c -> c) hspec
    in
    Row_set.add st.out row
  in
  let ground_ok = List.for_all ground_holds plan.Planner.ground in
  let ndedup, pipeline =
    if not ground_ok then (0, fun _ -> ())
    else if q.Cq.body = [] then (0, emit)
    else begin
      let atoms = Array.of_list q.Cq.body in
      (* Acyclic plans: full semijoin reduction at compile time, so the
         pipeline below enumerates without dead ends (Yannakakis). *)
      let mats = reduced_mats ?budget plan db atoms in
      let filters_at i =
        match
          List.filter_map
            (fun (j, c) -> if j = i then Some (compile_constraint reg_of c) else None)
            plan.Planner.filters
        with
        | [] -> None
        | checks ->
            let checks = Array.of_list checks in
            Some (fun regs -> Array.for_all (fun f -> f regs) checks)
      in
      let with_filters i next =
        match filters_at i with
        | None -> next
        | Some check -> fun st -> if check st.regs then next st
      in
      (* Dead-variable barriers (planned by {!Planner.barrier_spec}): a
         distinct-prefix set on the live registers prunes duplicate
         continuation subtrees, which turns e.g. long-chain walk
         enumeration from exponential in the chain length into
         output-bounded work. *)
      let ndedup = ref 0 in
      let dedup_spec =
        Array.map
          (function
            | None -> None
            | Some live ->
                let k = !ndedup in
                incr ndedup;
                Some (k, Array.of_list (List.map reg_of live)))
          plan.Planner.barriers
      in
      let with_dedup i next =
        match dedup_spec.(i) with
        | None -> next
        | Some (k, proj) ->
            fun st ->
              let seen = st.dedup.(k) in
              let before = Row_set.cardinal seen in
              Row_set.add seen (Code_row.sub st.regs proj);
              if Row_set.cardinal seen > before then next st
      in
      let rec build steps i =
        match steps with
        | [] -> emit
        | step :: rest -> (
            let next = with_filters i (with_dedup i (build rest (i + 1))) in
            match step with
            | Planner.Scan { atom } ->
                let rel = mats.(atom) in
                let dst =
                  Array.of_list (List.map reg_of plan.Planner.scans.(atom).vars)
                in
                let n = Array.length dst in
                fun st ->
                  Relation.iter_codes
                    (fun row ->
                      tick st;
                      for k = 0 to n - 1 do
                        st.regs.(dst.(k)) <- row.(k)
                      done;
                      next st)
                    rel
            | Planner.Probe { atom; key; bind } ->
                let rel = mats.(atom) in
                let key_pos = Relation.positions rel key in
                let key_regs = Array.of_list (List.map reg_of key) in
                let idx = Relation.hash_index rel key_pos in
                let bind_src = Relation.positions rel bind in
                let bind_dst = Array.of_list (List.map reg_of bind) in
                (* Mutation hook: bind the first output column from the
                   probe key's first column instead of its own — a
                   single-point bug the differential oracle must catch. *)
                if
                  Mutate.enabled "probe_key_swap"
                  && Array.length bind_src > 0
                  && Array.length key_pos > 0
                then bind_src.(0) <- key_pos.(0);
                let n = Array.length bind_dst in
                fun st ->
                  Relation.probe_iter rel idx st.regs key_regs (fun row ->
                      tick st;
                      for k = 0 to n - 1 do
                        st.regs.(bind_dst.(k)) <- row.(bind_src.(k))
                      done;
                      next st)
            | Planner.Exists { atom; key } ->
                let rel = mats.(atom) in
                let key_pos = Relation.positions rel key in
                let key_regs = Array.of_list (List.map reg_of key) in
                let idx = Relation.hash_index rel key_pos in
                fun st ->
                  tick st;
                  if Relation.probe_mem rel idx st.regs key_regs then next st)
      in
      let pipeline = build plan.Planner.steps 0 in
      (!ndedup, pipeline)
    end
  in
  Metrics.incr m_pipelines;
  { name = q.Cq.name; head_schema; nregs; ndedup; pipeline }

let run ?budget exec =
  Budget.poll budget;
  let st =
    {
      regs = Array.make (max exec.nregs 1) (-1);
      ticks = 0;
      budget;
      out = Row_set.create 64;
      dedup = Array.init exec.ndedup (fun _ -> Row_set.create 64);
    }
  in
  exec.pipeline st;
  Relation.of_codes ~name:exec.name ~schema:exec.head_schema
    (List.to_seq (Row_set.fold List.cons st.out []))

let evaluate ?budget db q = run ?budget (compile ?budget (Planner.plan q) db)

(* {2 Counting pipeline}

   Same plan, same materialization, same probe order — but the sink
   counts satisfying valuations of the body variables (Nat-semiring
   semantics) instead of collecting deduplicated head rows.  The two
   sinks are kept as separate pipelines on purpose: the Bool path above
   is the trusted fast path and must stay bit-identical, and a counting
   run must NOT dedup — dedup is the Bool semiring's ⊕, and collapsing
   multiplicities is precisely the bug the counting oracle exists to
   catch.

   Where the Bool pipeline dedups at a dead-variable barrier, the
   counting pipeline memoizes: past a barrier the downstream count is a
   function of the live registers alone (later steps read only
   already-bound key registers or registers they bind themselves, and
   the emit reads none), so each distinct live prefix runs the subtree
   once and replays its count from the memo thereafter.  That keeps
   counting within the same complexity envelope as the deduplicated
   enumeration instead of paying the full (possibly exponential)
   valuation tree. *)

type count_state = {
  cregs : int array;
  mutable cticks : int;
  cbudget : Budget.t option;
  mutable acc : int;
  memo : int Code_row.Table.t array;
      (** one live-prefix memo per dead-variable barrier *)
}

type count_exec = {
  cname : string;
  cnregs : int;
  nmemo : int;
  cpipeline : count_state -> unit;
}

let m_count_pipelines = Metrics.counter "compile.count_pipelines"

let ctick st =
  st.cticks <- st.cticks + 1;
  if st.cticks land (budget_stride - 1) = 0 then Budget.poll st.cbudget

let compile_count ?budget plan db =
  Budget.poll budget;
  let q = plan.Planner.query in
  let vars = Cq.vars q in
  let cnregs = List.length vars in
  let reg_of =
    let tbl = Hashtbl.create 8 in
    List.iteri (fun i x -> Hashtbl.add tbl x i) vars;
    Hashtbl.find tbl
  in
  let emit st =
    ctick st;
    st.acc <- st.acc + 1
  in
  let ground_ok = List.for_all ground_holds plan.Planner.ground in
  let nmemo, cpipeline =
    if not ground_ok then (0, fun _ -> ())
    else if q.Cq.body = [] then (0, emit)
    else begin
      let atoms = Array.of_list q.Cq.body in
      let mats = reduced_mats ?budget plan db atoms in
      let filters_at i =
        match
          List.filter_map
            (fun (j, c) -> if j = i then Some (compile_constraint reg_of c) else None)
            plan.Planner.filters
        with
        | [] -> None
        | checks ->
            let checks = Array.of_list checks in
            Some (fun regs -> Array.for_all (fun f -> f regs) checks)
      in
      let with_filters i next =
        match filters_at i with
        | None -> next
        | Some check -> fun st -> if check st.cregs then next st
      in
      let nmemo = ref 0 in
      let memo_spec =
        Array.map
          (function
            | None -> None
            | Some live ->
                let k = !nmemo in
                incr nmemo;
                Some (k, Array.of_list (List.map reg_of live)))
          plan.Planner.barriers
      in
      let with_memo i next =
        match memo_spec.(i) with
        | None -> next
        | Some (k, proj) ->
            fun st ->
              let key = Code_row.sub st.cregs proj in
              (match Code_row.Table.find_opt st.memo.(k) key with
              | Some c -> st.acc <- st.acc + c
              | None ->
                  let saved = st.acc in
                  st.acc <- 0;
                  next st;
                  Code_row.Table.replace st.memo.(k) key st.acc;
                  st.acc <- saved + st.acc)
      in
      let rec build steps i =
        match steps with
        | [] -> emit
        | step :: rest -> (
            let next = with_filters i (with_memo i (build rest (i + 1))) in
            match step with
            | Planner.Scan { atom } ->
                let rel = mats.(atom) in
                let dst =
                  Array.of_list (List.map reg_of plan.Planner.scans.(atom).vars)
                in
                let n = Array.length dst in
                fun st ->
                  Relation.iter_codes
                    (fun row ->
                      ctick st;
                      for k = 0 to n - 1 do
                        st.cregs.(dst.(k)) <- row.(k)
                      done;
                      next st)
                    rel
            | Planner.Probe { atom; key; bind } ->
                let rel = mats.(atom) in
                let key_pos = Relation.positions rel key in
                let key_regs = Array.of_list (List.map reg_of key) in
                let idx = Relation.hash_index rel key_pos in
                let bind_src = Relation.positions rel bind in
                let bind_dst = Array.of_list (List.map reg_of bind) in
                let n = Array.length bind_dst in
                fun st ->
                  Relation.probe_iter rel idx st.cregs key_regs (fun row ->
                      ctick st;
                      for k = 0 to n - 1 do
                        st.cregs.(bind_dst.(k)) <- row.(bind_src.(k))
                      done;
                      next st)
            | Planner.Exists { atom; key } ->
                let rel = mats.(atom) in
                let key_pos = Relation.positions rel key in
                let key_regs = Array.of_list (List.map reg_of key) in
                let idx = Relation.hash_index rel key_pos in
                fun st ->
                  ctick st;
                  if Relation.probe_mem rel idx st.cregs key_regs then next st)
      in
      let cpipeline = build plan.Planner.steps 0 in
      (!nmemo, cpipeline)
    end
  in
  Metrics.incr m_count_pipelines;
  { cname = q.Cq.name; cnregs; nmemo; cpipeline }

let run_count ?budget cexec =
  Budget.poll budget;
  let st =
    {
      cregs = Array.make (max cexec.cnregs 1) (-1);
      cticks = 0;
      cbudget = budget;
      acc = 0;
      memo = Array.init cexec.nmemo (fun _ -> Code_row.Table.create 64);
    }
  in
  cexec.cpipeline st;
  st.acc

let count ?budget db q =
  run_count ?budget (compile_count ?budget (Planner.plan q) db)
