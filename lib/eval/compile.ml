module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Dictionary = Paradb_relational.Dictionary
module Row_set = Paradb_relational.Row_set
module Code_row = Paradb_relational.Code_row
module Planner = Paradb_planner.Planner
module Budget = Paradb_telemetry.Budget
module Metrics = Paradb_telemetry.Metrics
module Mutate = Paradb_telemetry.Mutate
open Paradb_query

let m_pipelines = Metrics.counter "compile.pipelines"

(* Per-run state: a flat register file (one slot per query variable,
   holding dictionary codes), the output store, and the strided budget
   checkpoint.  Allocated fresh by [run], so one compiled [exec] can be
   executed concurrently from several domains. *)
type state = {
  regs : int array;
  mutable ticks : int;
  budget : Budget.t option;
  out : Row_set.t;
  dedup : Row_set.t array;
      (** one distinct-prefix set per dead-variable barrier *)
}

type exec = {
  name : string;
  head_schema : string list;
  nregs : int;
  ndedup : int;
  pipeline : state -> unit;
}

(* Same order of magnitude as the interpreters' probe stride: cheap
   enough to leave on, frequent enough that expiry surfaces fast. *)
let budget_stride = 512

let tick st =
  st.ticks <- st.ticks + 1;
  if st.ticks land (budget_stride - 1) = 0 then Budget.poll st.budget

(* Materialize one atom: select rows matching the constant and
   repeated-variable pattern, project to the distinct variables (schema =
   variable names), into the global dictionary. *)
let materialize ?budget db scan atom =
  let rel = Database.find db scan.Planner.rel in
  (* Code-level work assumes the shared dictionary; re-encode the odd
     relation built against a private one. *)
  let rel =
    if Relation.dict rel == Dictionary.global then rel
    else
      Relation.create ~name:(Relation.name rel)
        ~schema:(Relation.schema_list rel) (Relation.tuples rel)
  in
  let arity = Atom.arity atom in
  if Relation.arity rel <> arity then
    (* Interpreters treat arity-mismatched tuples as non-matching. *)
    Relation.of_codes ~name:scan.Planner.rel ~schema:scan.Planner.vars Seq.empty
  else begin
    let sels =
      Array.of_list
        (List.map
           (fun (pos, v) -> (pos, Dictionary.intern Dictionary.global v))
           scan.Planner.selections)
    in
    let eqs = Array.of_list scan.Planner.equalities in
    (* First-occurrence position of each distinct variable, in [vars]
       order: the projection that turns a stored row into a plan row. *)
    let fpos =
      let first = Hashtbl.create 4 in
      List.iteri
        (fun i t ->
          match t with
          | Term.Var x when not (Hashtbl.mem first x) -> Hashtbl.add first x i
          | _ -> ())
        atom.Atom.args;
      Array.of_list (List.map (Hashtbl.find first) scan.Planner.vars)
    in
    let keep row =
      Array.for_all (fun (pos, c) -> row.(pos) = c) sels
      && Array.for_all (fun (a, b) -> row.(a) = row.(b)) eqs
    in
    let n = ref 0 in
    let rows =
      Relation.fold_codes
        (fun row acc ->
          incr n;
          if !n land (budget_stride - 1) = 0 then Budget.poll budget;
          if keep row then Code_row.sub row fpos :: acc else acc)
        rel []
    in
    Relation.of_codes ~name:scan.Planner.rel ~schema:scan.Planner.vars
      (List.to_seq rows)
  end

let ground_holds c =
  match (c.Constr.lhs, c.Constr.rhs) with
  | Term.Const a, Term.Const b -> Constr.eval_op c.Constr.op a b
  | _ -> invalid_arg "Compile: ground constraint with a variable"

let compile ?budget plan db =
  Budget.poll budget;
  let q = plan.Planner.query in
  let vars = Cq.vars q in
  let nregs = List.length vars in
  let reg_of =
    let tbl = Hashtbl.create 8 in
    List.iteri (fun i x -> Hashtbl.add tbl x i) vars;
    Hashtbl.find tbl
  in
  let head_schema = List.mapi (fun i _ -> Printf.sprintf "a%d" i) q.Cq.head in
  let hspec =
    Array.of_list
      (List.map
         (function
           | Term.Var x -> `Reg (reg_of x)
           | Term.Const v -> `Const (Dictionary.intern Dictionary.global v))
         q.Cq.head)
  in
  let emit st =
    tick st;
    let row =
      Array.map (function `Reg r -> st.regs.(r) | `Const c -> c) hspec
    in
    Row_set.add st.out row
  in
  let ground_ok = List.for_all ground_holds plan.Planner.ground in
  let ndedup, pipeline =
    if not ground_ok then (0, fun _ -> ())
    else if q.Cq.body = [] then (0, emit)
    else begin
      let atoms = Array.of_list q.Cq.body in
      let mats =
        Array.mapi
          (fun i scan -> materialize ?budget db scan atoms.(i))
          plan.Planner.scans
      in
      (* Acyclic plans: full semijoin reduction at compile time, so the
         pipeline below enumerates without dead ends (Yannakakis). *)
      List.iter
        (fun (target, filter) ->
          Budget.poll budget;
          mats.(target) <- Relation.semijoin mats.(target) mats.(filter))
        plan.Planner.reduce;
      (* One fused constraint check per step index. *)
      let compile_constraint c =
        let operand = function
          | Term.Var x -> `Reg (reg_of x)
          | Term.Const v -> `Const (Dictionary.intern Dictionary.global v, v)
        in
        let l = operand c.Constr.lhs and r = operand c.Constr.rhs in
        match c.Constr.op with
        | Constr.Neq -> (
            match (l, r) with
            | `Reg a, `Reg b -> fun regs -> regs.(a) <> regs.(b)
            | `Reg a, `Const (c, _) -> fun regs -> regs.(a) <> c
            | `Const (c, _), `Reg b -> fun regs -> c <> regs.(b)
            | `Const (c1, _), `Const (c2, _) ->
                let v = c1 <> c2 in
                fun _ -> v)
        | (Constr.Lt | Constr.Le) as op ->
            let value = function
              | `Reg a -> fun regs -> Dictionary.value Dictionary.global regs.(a)
              | `Const (_, v) -> fun _ -> v
            in
            let lv = value l and rv = value r in
            fun regs -> Constr.eval_op op (lv regs) (rv regs)
      in
      let filters_at i =
        match
          List.filter_map
            (fun (j, c) -> if j = i then Some (compile_constraint c) else None)
            plan.Planner.filters
        with
        | [] -> None
        | checks ->
            let checks = Array.of_list checks in
            Some (fun regs -> Array.for_all (fun f -> f regs) checks)
      in
      let with_filters i next =
        match filters_at i with
        | None -> next
        | Some check -> fun st -> if check st.regs then next st
      in
      (* Dead-variable barriers (the push-based analogue of the
         Yannakakis intermediate projection): once a variable can no
         longer influence the output — it is not in the head and no
         later step or filter reads it — two register states agreeing on
         the still-live variables have identical continuations.  A
         distinct-prefix set on the live registers prunes the duplicate
         subtrees, which turns e.g. long-chain walk enumeration from
         exponential in the chain length into output-bounded work. *)
      let step_arr = Array.of_list plan.Planner.steps in
      let nsteps = Array.length step_arr in
      let module SS = Set.Make (String) in
      let step_vars = function
        | Planner.Scan { atom } -> plan.Planner.scans.(atom).Planner.vars
        | Planner.Probe { key; bind; _ } -> key @ bind
        | Planner.Exists { key; _ } -> key
      in
      let constr_vars c =
        List.filter_map
          (function Term.Var x -> Some x | Term.Const _ -> None)
          [ c.Constr.lhs; c.Constr.rhs ]
      in
      let filter_vars_at =
        let a = Array.make nsteps SS.empty in
        List.iter
          (fun (j, c) -> a.(j) <- SS.union a.(j) (SS.of_list (constr_vars c)))
          plan.Planner.filters;
        a
      in
      let head_vars =
        SS.of_list
          (List.filter_map
             (function Term.Var x -> Some x | Term.Const _ -> None)
             q.Cq.head)
      in
      (* needed_after.(i): variables read by anything downstream of the
         barrier point (step i+1.., filters placed there, the emit). *)
      let needed_after = Array.make nsteps head_vars in
      for i = nsteps - 2 downto 0 do
        needed_after.(i) <-
          SS.union needed_after.(i + 1)
            (SS.union
               (SS.of_list (step_vars step_arr.(i + 1)))
               filter_vars_at.(i + 1))
      done;
      let ndedup = ref 0 in
      let dedup_spec =
        let bound = ref SS.empty in
        Array.mapi
          (fun i step ->
            bound := SS.union !bound (SS.of_list (step_vars step));
            let live = SS.inter !bound needed_after.(i) in
            if i < nsteps - 1 && SS.cardinal live < SS.cardinal !bound then begin
              let k = !ndedup in
              incr ndedup;
              Some
                (k, Array.of_list (List.map reg_of (SS.elements live)))
            end
            else None)
          step_arr
      in
      let with_dedup i next =
        match dedup_spec.(i) with
        | None -> next
        | Some (k, proj) ->
            fun st ->
              let seen = st.dedup.(k) in
              let before = Row_set.cardinal seen in
              Row_set.add seen (Code_row.sub st.regs proj);
              if Row_set.cardinal seen > before then next st
      in
      let rec build steps i =
        match steps with
        | [] -> emit
        | step :: rest -> (
            let next = with_filters i (with_dedup i (build rest (i + 1))) in
            match step with
            | Planner.Scan { atom } ->
                let rel = mats.(atom) in
                let dst =
                  Array.of_list (List.map reg_of plan.Planner.scans.(atom).vars)
                in
                let n = Array.length dst in
                fun st ->
                  Relation.iter_codes
                    (fun row ->
                      tick st;
                      for k = 0 to n - 1 do
                        st.regs.(dst.(k)) <- row.(k)
                      done;
                      next st)
                    rel
            | Planner.Probe { atom; key; bind } ->
                let rel = mats.(atom) in
                let key_pos = Relation.positions rel key in
                let key_regs = Array.of_list (List.map reg_of key) in
                let idx = Relation.hash_index rel key_pos in
                let bind_src = Relation.positions rel bind in
                let bind_dst = Array.of_list (List.map reg_of bind) in
                (* Mutation hook: bind the first output column from the
                   probe key's first column instead of its own — a
                   single-point bug the differential oracle must catch. *)
                if
                  Mutate.enabled "probe_key_swap"
                  && Array.length bind_src > 0
                  && Array.length key_pos > 0
                then bind_src.(0) <- key_pos.(0);
                let n = Array.length bind_dst in
                fun st ->
                  Relation.probe_iter rel idx st.regs key_regs (fun row ->
                      tick st;
                      for k = 0 to n - 1 do
                        st.regs.(bind_dst.(k)) <- row.(bind_src.(k))
                      done;
                      next st)
            | Planner.Exists { atom; key } ->
                let rel = mats.(atom) in
                let key_pos = Relation.positions rel key in
                let key_regs = Array.of_list (List.map reg_of key) in
                let idx = Relation.hash_index rel key_pos in
                fun st ->
                  tick st;
                  if Relation.probe_mem rel idx st.regs key_regs then next st)
      in
      let pipeline = build plan.Planner.steps 0 in
      (!ndedup, pipeline)
    end
  in
  Metrics.incr m_pipelines;
  { name = q.Cq.name; head_schema; nregs; ndedup; pipeline }

let run ?budget exec =
  Budget.poll budget;
  let st =
    {
      regs = Array.make (max exec.nregs 1) (-1);
      ticks = 0;
      budget;
      out = Row_set.create 64;
      dedup = Array.init exec.ndedup (fun _ -> Row_set.create 64);
    }
  in
  exec.pipeline st;
  Relation.of_codes ~name:exec.name ~schema:exec.head_schema
    (List.to_seq (Row_set.fold List.cons st.out []))

let evaluate ?budget db q = run ?budget (compile ?budget (Planner.plan q) db)
