(** A blocking client for the {!Protocol} wire format, shared by
    [paradb client] and the server-throughput bench. *)

type t

(** [connect ?host ?timeout ?retries ?backoff ~port ()] — TCP connect;
    [host] defaults to ["127.0.0.1"].

    [timeout] (seconds) bounds the connect {e and} every subsequent
    request on the connection (via [SO_RCVTIMEO]/[SO_SNDTIMEO]);
    unbounded when omitted.  A refused/reset/timed-out connect is
    retried up to [retries] times (default 0) with exponential backoff
    starting at [backoff] seconds (default 0.05), jittered by a factor
    in [0.5, 1.5).  Raises [Unix.Unix_error] once retries are
    exhausted. *)
val connect :
  ?host:string ->
  ?timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  port:int ->
  unit ->
  t

(** [request t req] sends one request and reads its framed response.
    Raises [Failure] if the server hangs up before responding or the
    request timeout expires. *)
val request : t -> Protocol.request -> Protocol.response

(** [request_line t line] — same over a raw command line. *)
val request_line : t -> string -> Protocol.response

(** Sends [QUIT] (best effort) and closes the socket. *)
val close : t -> unit

(** [with_connection ?host ?timeout ?retries ?backoff ~port f] —
    connect, run, always close. *)
val with_connection :
  ?host:string ->
  ?timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  port:int ->
  (t -> 'a) ->
  'a
