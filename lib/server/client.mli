(** A blocking client for the {!Protocol} wire format, shared by
    [paradb client] and the server-throughput bench. *)

type t

(** [connect ?host ~port ()] — TCP connect; [host] defaults to
    ["127.0.0.1"].  Raises [Unix.Unix_error] on refusal. *)
val connect : ?host:string -> port:int -> unit -> t

(** [request t req] sends one request and reads its framed response.
    Raises [Failure] if the server hangs up before responding. *)
val request : t -> Protocol.request -> Protocol.response

(** [request_line t line] — same over a raw command line. *)
val request_line : t -> string -> Protocol.response

(** Sends [QUIT] (best effort) and closes the socket. *)
val close : t -> unit

(** [with_connection ?host ~port f] — connect, run, always close. *)
val with_connection : ?host:string -> port:int -> (t -> 'a) -> 'a
