(** A blocking client for the {!Protocol} wire format, shared by
    [paradb client] and the server-throughput bench. *)

type t

(** [connect ?host ?timeout ?retries ?backoff ~port ()] — TCP connect;
    [host] defaults to ["127.0.0.1"].

    [timeout] (seconds) bounds the connect {e and} every subsequent
    request on the connection (via [SO_RCVTIMEO]/[SO_SNDTIMEO]);
    unbounded when omitted.  A refused/reset/timed-out connect is
    retried up to [retries] times (default 0) with exponential backoff
    starting at [backoff] seconds (default 0.05), jittered by a factor
    in [0.5, 1.5).  Raises [Unix.Unix_error] once retries are
    exhausted. *)
val connect :
  ?host:string ->
  ?timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  port:int ->
  unit ->
  t

(** [connect_any ?timeout ?retries ?backoff addrs ()] — failover
    connect over a non-empty [(host, port)] list: attempt [i] dials
    address [i mod length addrs], so a dead server is skipped instead
    of erroring the client; the jittered exponential backoff of
    {!connect} is applied once per full cycle through the list.
    [retries] bounds the total extra attempts across all addresses.
    Raises [Invalid_argument] on an empty list, [Unix.Unix_error] once
    retries are exhausted. *)
val connect_any :
  ?timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  (string * int) list ->
  unit ->
  t

(** [parse_addrs s] parses a comma-separated ["host:port,..."] list;
    a bare port means [default_host] (default 127.0.0.1). *)
val parse_addrs :
  ?default_host:string -> string -> ((string * int) list, string) result

(** [set_timeout t seconds] re-arms [SO_RCVTIMEO]/[SO_SNDTIMEO] on the
    live connection (floored at 1ms) — how the cluster coordinator
    propagates its remaining request deadline to each shard
    sub-request. *)
val set_timeout : t -> float -> unit

(** [request t req] sends one request and reads its framed response.
    Raises [Failure] if the server hangs up before responding or the
    request timeout expires. *)
val request : t -> Protocol.request -> Protocol.response

(** [request_line t line] — same over a raw command line. *)
val request_line : t -> string -> Protocol.response

(** [request_bulk t ~header lines] — send a multi-line request (the
    [BULK <db> <n>] header followed by its [n] fact lines) in one
    buffered write, then read the single batch response. *)
val request_bulk : t -> header:string -> string list -> Protocol.response

(** Sends [QUIT] (best effort) and closes the socket. *)
val close : t -> unit

(** [with_connection ?host ?timeout ?retries ?backoff ~port f] —
    connect, run, always close. *)
val with_connection :
  ?host:string ->
  ?timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  port:int ->
  (t -> 'a) ->
  'a
