type request =
  | Load of { db : string; path : string }
  | Fact of { db : string; fact : string }
  | Bulk of { db : string; count : int }
  | Eval of { db : string; engine : string; query : string }
  | Count of { db : string; engine : string; query : string }
  | Gather of { db : string; query : string }
  | Check of string
  | Explain of string
  | Digest of string
  | Repair of string
  | Stats
  | Metrics
  | Quit

type response =
  | Ok_ of { summary : string; payload : string list }
  | Err of string

let verb_name = function
  | Load _ -> "load"
  | Fact _ -> "fact"
  | Bulk _ -> "bulk"
  | Eval _ -> "eval"
  | Count _ -> "count"
  | Gather _ -> "gather"
  | Check _ -> "check"
  | Explain _ -> "explain"
  | Digest _ -> "digest"
  | Repair _ -> "repair"
  | Stats -> "stats"
  | Metrics -> "metrics"
  | Quit -> "quit"

let is_blank c = c = ' ' || c = '\t' || c = '\r'

let trim = String.trim

(* [split_word s] — (first token, rest with leading blanks dropped). *)
let split_word s =
  let s = trim s in
  let n = String.length s in
  let rec find_blank i = if i < n && not (is_blank s.[i]) then find_blank (i + 1) else i in
  let cut = find_blank 0 in
  let rec skip i = if i < n && is_blank s.[i] then skip (i + 1) else i in
  (String.sub s 0 cut, String.sub s (skip cut) (n - skip cut))

(* A defensive ceiling on OK-n frames and BULK-n headers: a hostile or
   corrupted peer must not be able to park the reader in a
   [List.init n] loop (or the server in a fact-collection loop) with an
   absurd count.  Far above any legitimate result (the server truncates
   at --max-rows), far below overflow territory. *)
let max_payload_lines = 10_000_000

let parse_request line =
  let keyword, rest = split_word line in
  let need what tok = Error (Printf.sprintf "%s: missing %s" tok what) in
  match String.uppercase_ascii keyword with
  | "" -> Error "empty request"
  | "LOAD" -> (
      match split_word rest with
      | "", _ -> need "database name" "LOAD"
      | db, path when trim path <> "" -> Ok (Load { db; path = trim path })
      | _ -> need "file path" "LOAD")
  | "FACT" -> (
      match split_word rest with
      | "", _ -> need "database name" "FACT"
      | db, fact when trim fact <> "" -> Ok (Fact { db; fact = trim fact })
      | _ -> need "fact" "FACT")
  | "BULK" -> (
      match split_word rest with
      | "", _ -> need "database name" "BULK"
      | db, count -> (
          match int_of_string_opt (trim count) with
          | Some n when n >= 0 && n <= max_payload_lines ->
              Ok (Bulk { db; count = n })
          | Some _ -> Error "BULK: fact count out of range"
          | None -> need "fact count" "BULK"))
  | "EVAL" -> (
      match split_word rest with
      | "", _ -> need "database name" "EVAL"
      | db, rest -> (
          match split_word rest with
          | "", _ -> need "engine" "EVAL"
          | engine, query when trim query <> "" ->
              Ok (Eval { db; engine; query = trim query })
          | _ -> need "query" "EVAL"))
  | "COUNT" -> (
      match split_word rest with
      | "", _ -> need "database name" "COUNT"
      | db, rest -> (
          match split_word rest with
          | "", _ -> need "engine" "COUNT"
          | engine, query when trim query <> "" ->
              Ok (Count { db; engine; query = trim query })
          | _ -> need "query" "COUNT"))
  | "GATHER" -> (
      match split_word rest with
      | "", _ -> need "database name" "GATHER"
      | db, query when trim query <> "" -> Ok (Gather { db; query = trim query })
      | _ -> need "query" "GATHER")
  | "CHECK" ->
      if trim rest = "" then need "query" "CHECK" else Ok (Check (trim rest))
  | "EXPLAIN" ->
      if trim rest = "" then need "query" "EXPLAIN" else Ok (Explain (trim rest))
  | "DIGEST" ->
      if trim rest = "" then need "database name" "DIGEST"
      else Ok (Digest (trim rest))
  | "REPAIR" ->
      if trim rest = "" then need "database name" "REPAIR"
      else Ok (Repair (trim rest))
  | "STATS" -> Ok Stats
  | "METRICS" -> Ok Metrics
  | "QUIT" -> Ok Quit
  | other -> Error (Printf.sprintf "unknown request %s" other)

let request_to_line = function
  | Load { db; path } -> Printf.sprintf "LOAD %s %s" db path
  | Fact { db; fact } -> Printf.sprintf "FACT %s %s" db fact
  | Bulk { db; count } -> Printf.sprintf "BULK %s %d" db count
  | Eval { db; engine; query } -> Printf.sprintf "EVAL %s %s %s" db engine query
  | Count { db; engine; query } ->
      Printf.sprintf "COUNT %s %s %s" db engine query
  | Gather { db; query } -> Printf.sprintf "GATHER %s %s" db query
  | Check query -> "CHECK " ^ query
  | Explain query -> "EXPLAIN " ^ query
  | Digest db -> "DIGEST " ^ db
  | Repair db -> "REPAIR " ^ db
  | Stats -> "STATS"
  | Metrics -> "METRICS"
  | Quit -> "QUIT"

let response_to_lines = function
  | Ok_ { summary; payload } ->
      Printf.sprintf "OK %d %s" (List.length payload) summary :: payload
  | Err msg -> [ "ERR " ^ msg ]

let write_response oc r =
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    (response_to_lines r);
  flush oc

let read_response ic =
  match In_channel.input_line ic with
  | None -> None
  | Some line -> (
      let keyword, rest = split_word line in
      match String.uppercase_ascii keyword with
      | "ERR" -> Some (Err rest)
      | "OK" -> (
          let count, summary = split_word rest in
          match int_of_string_opt count with
          | None -> failwith ("malformed response line: " ^ line)
          | Some n when n < 0 ->
              failwith ("negative payload count in response: " ^ line)
          | Some n when n > max_payload_lines ->
              failwith
                (Printf.sprintf
                   "oversized payload count in response (%d > %d): %s" n
                   max_payload_lines line)
          | Some n ->
              let payload =
                List.init n (fun _ ->
                    match In_channel.input_line ic with
                    | Some l -> l
                    | None -> failwith "truncated response payload")
              in
              Some (Ok_ { summary; payload }))
      | _ -> failwith ("malformed response line: " ^ line))
