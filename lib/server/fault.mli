(** Fault injection for chaos testing the server's failure handling.

    Off by default — every injection point costs one [Atomic.get] when
    disabled.  Enable explicitly with {!set} (tests) or from the
    [PARADB_FAULTS] environment variable with {!init_from_env}
    ([paradb serve] does this at startup).  Each fired fault increments
    the [server.faults.injected] counter. *)

(** Raised by {!injected_raise} — deliberately an exception the session
    dispatcher does not handle, to exercise the server's catch-all. *)
exception Injected of string

type config = {
  short_read : float;  (** P(cap a socket read to a few bytes) *)
  write_delay : float;  (** P(sleep 1–5ms before a response write) *)
  disconnect : float;  (** P(shut the socket down instead of responding) *)
  raise_eval : float;  (** P(raise {!Injected} from request dispatch) *)
  shard_loss : float;
      (** P(the coordinator drops a pooled shard connection before a
          scatter round — exercising redial and replica failover) *)
  straggler_delay : float;  (** P(sleep 10-50ms before a shard sub-request) *)
  torn_write : float;
      (** P(a storage file write is truncated to a random prefix and the
          writer dies there) — forwarded to
          {!Paradb_storage.Io_fault}, which raises
          [Io_fault.Crash] at the injection point *)
  crash_after_write : float;
      (** P(the writer dies right after a complete storage file write,
          before publishing it) — forwarded like [torn_write] *)
  seed : int;  (** RNG seed (per-domain states derive from it) *)
}

(** All probabilities 0, seed 0. *)
val default : config

(** [set (Some c)] enables injection with [c]; [set None] disables it
    and resets the config.  Takes effect on all worker domains. *)
val set : config option -> unit

val active : unit -> bool

(** [parse kvs] builds a config from [PARADB_FAULTS]-style key/value
    pairs (see {!Paradb_telemetry.Env.faults}).  [Invalid_argument] on
    unknown keys or probabilities outside [0,1]. *)
val parse : (string * float) list -> config

(** Reads [PARADB_FAULTS] and calls {!set}; a no-op when unset.
    [Invalid_argument] on malformed values. *)
val init_from_env : unit -> unit

(** [read_cap n] — the byte count a socket read should request: [n], or
    a few bytes when a short-read fault fires. *)
val read_cap : int -> int

(** Maybe sleep 1–5ms (write-delay fault). *)
val write_delay : unit -> unit

(** Should the server drop this connection instead of responding? *)
val disconnect_now : unit -> bool

(** Maybe raise {!Injected} (raise_eval fault). *)
val injected_raise : unit -> unit

(** Should the coordinator drop its pooled connection to the next shard
    it talks to (shard_loss fault)?  The shard process itself stays up,
    so the forced redial succeeds and answers stay bit-for-bit. *)
val shard_loss_now : unit -> bool

(** Maybe sleep 10-50ms before a shard sub-request (straggler fault). *)
val straggler_sleep : unit -> unit
