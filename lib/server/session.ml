module Cq = Paradb_query.Cq
module Source = Paradb_query.Source
module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Hypergraph = Paradb_hypergraph.Hypergraph
module Join_tree = Paradb_hypergraph.Join_tree
module Planner = Paradb_planner.Planner
module Metrics = Paradb_telemetry.Metrics
module Trace = Paradb_telemetry.Trace
module Export = Paradb_telemetry.Export
module Clock = Paradb_telemetry.Clock
module Budget = Paradb_telemetry.Budget

let m_deadline = Metrics.counter "server.deadline_exceeded"

(* Warm-path accounting: how often an EVAL ran a cached compiled
   pipeline, vs. how often it fell back to an interpreted engine. *)
let m_compiled_hits = Metrics.counter "planner.compiled.cache_hits"
let m_interp_fallback = Metrics.counter "planner.fallback.interpreter"

(* Per-verb latency histograms, prebuilt so the hot path is one assoc
   lookup over a short fixed list.  "invalid" times unparseable lines. *)
let verb_hist =
  List.map
    (fun v -> (v, Metrics.histogram (Printf.sprintf "server.verb.%s.ns" v)))
    [
      "load"; "fact"; "bulk"; "eval"; "count"; "gather"; "check"; "explain";
      "digest"; "repair"; "stats"; "metrics"; "quit"; "invalid";
    ]

let observe_verb verb ns =
  match List.assoc_opt verb verb_hist with
  | Some h -> Metrics.observe h ns
  | None -> ()

type shared = {
  catalog : Catalog.t;
  cache : Plan_cache.t;
  stats : Stats.t;
  family : Paradb_core.Hashing.family option;
  limits : Guard.limits;
}

let make_shared ?family ?(limits = Guard.default_limits) ?data_dir
    ~cache_capacity () =
  {
    catalog = Catalog.create ?data_dir ();
    cache = Plan_cache.create ~capacity:cache_capacity ();
    stats = Stats.create ();
    family;
    limits;
  }

(* In-flight BULK framing: after a [BULK db n] header the next [n]
   lines are fact lines, collected here and applied as one batch (one
   generation bump) when the count runs out. *)
type bulk = { bulk_db : string; mutable remaining : int; buf : Buffer.t }

type t = {
  shared : shared;
  stats : Stats.t; (* this session only *)
  mutable bulk : bulk option;
}

let create (shared : shared) =
  Stats.incr_connections shared.stats;
  let stats = Stats.create () in
  Stats.incr_connections stats;
  { shared; stats; bulk = None }

let err s msg =
  Stats.incr_errors s.shared.stats;
  Stats.incr_errors s.stats;
  Protocol.Err msg

let ok ?(payload = []) summary = Protocol.Ok_ { summary; payload }

let now_ns = Clock.now_ns

(* ------------------------------------------------------------------ *)

(* [Store.load_database] accepts both text fact files and segment
   directories; the catalog persists deltas when it owns a data dir. *)
let do_load s ~db ~path =
  match Paradb_storage.Store.load_database path with
  | Error e -> err s e
  | Ok database -> (
      match Catalog.load s.shared.catalog db database with
      | Error e -> err s e
      | Ok (merged, mode) ->
          ok
            (Printf.sprintf "loaded %s mode=%s relations=%d tuples=%d" db
               (match mode with
               | `Replaced -> "replace"
               | `Appended -> "append"
               | `Created -> "create")
               (List.length (Database.relations merged))
               (Database.size merged)))

let do_fact s ~db ~fact =
  match Catalog.add_fact s.shared.catalog db fact with
  | Error e -> err s e
  | Ok database ->
      ok (Printf.sprintf "%s tuples=%d" db (Database.size database))

(* Shared EVAL/GATHER core: resolve the snapshot, arm the budget, hit
   the plan cache, evaluate, record stats.  Only the payload rendering
   differs between the two verbs. *)
let run_eval s ~db ~kind q =
  match Catalog.find s.shared.catalog db with
  | None -> Error (Printf.sprintf "no database %s (use LOAD or FACT)" db)
  | Some (database, generation) -> (
      (* Scoped by snapshot generation: a LOAD/FACT that swapped
         the snapshot makes every older entry unreachable, so a
         compiled pipeline is never reused against data it was
         not compiled for. *)
      let key = Plan.scoped_key ~db ~generation kind q in
      let budget =
        Option.map
          (fun deadline_ns -> Budget.start ~deadline_ns)
          s.shared.limits.Guard.deadline_ns
      in
      let t0 = now_ns () in
      match
        (* The budget covers the whole request: planning and
           pipeline compilation on a miss, then evaluation. *)
        let plan, outcome =
          Plan_cache.find_or_build s.shared.cache ~key (fun () ->
              Plan.prepare ?budget (Plan.analyze kind q) database ~generation)
        in
        ( plan,
          outcome,
          Plan.evaluate ?budget ?family:s.shared.family plan database q )
      with
      | exception
          ( Paradb_yannakakis.Yannakakis.Cyclic_query
          | Paradb_core.Engine.Cyclic_query ) ->
          Error "the query hypergraph is cyclic; use engine naive"
      | exception Invalid_argument msg -> Error msg
      | exception Not_found ->
          Error (Printf.sprintf "query names a relation missing from %s" db)
      | exception Budget.Exhausted { elapsed_ns; _ } ->
          Metrics.incr m_deadline;
          Error (Printf.sprintf "deadline-exceeded after %dns" elapsed_ns)
      | plan, outcome, result ->
          let ns = now_ns () - t0 in
          let hit = outcome = `Hit in
          (if plan.Plan.engine = Plan.E_compiled then begin
             if hit then Metrics.incr m_compiled_hits
           end
           else Metrics.incr m_interp_fallback);
          Stats.record s.shared.stats
            ~engine:(Plan.engine_name plan.Plan.engine) ~hit ~ns;
          Stats.record s.stats
            ~engine:(Plan.engine_name plan.Plan.engine) ~hit ~ns;
          Ok (plan, hit, result, ns))

(* COUNT twin of [run_eval]: same catalog/budget/cache/stats discipline,
   but builds and runs the counting pipeline, cached under the COUNT
   keyspace ([Plan.scoped_count_key]). *)
let run_count s ~db ~kind q =
  match Catalog.find s.shared.catalog db with
  | None -> Error (Printf.sprintf "no database %s (use LOAD or FACT)" db)
  | Some (database, generation) -> (
      let key = Plan.scoped_count_key ~db ~generation kind q in
      let budget =
        Option.map
          (fun deadline_ns -> Budget.start ~deadline_ns)
          s.shared.limits.Guard.deadline_ns
      in
      let t0 = now_ns () in
      match
        let plan, outcome =
          Plan_cache.find_or_build s.shared.cache ~key (fun () ->
              Plan.prepare_count ?budget (Plan.analyze kind q) database
                ~generation)
        in
        (plan, outcome, Plan.count ?budget plan database q)
      with
      | exception
          ( Paradb_yannakakis.Yannakakis.Cyclic_query
          | Paradb_core.Engine.Cyclic_query ) ->
          Error "the query hypergraph is cyclic; use engine naive"
      | exception Invalid_argument msg -> Error msg
      | exception Not_found ->
          Error (Printf.sprintf "query names a relation missing from %s" db)
      | exception Budget.Exhausted { elapsed_ns; _ } ->
          Metrics.incr m_deadline;
          Error (Printf.sprintf "deadline-exceeded after %dns" elapsed_ns)
      | plan, outcome, n ->
          let ns = now_ns () - t0 in
          let hit = outcome = `Hit in
          (if plan.Plan.engine = Plan.E_compiled then begin
             if hit then Metrics.incr m_compiled_hits
           end
           else Metrics.incr m_interp_fallback);
          Stats.record s.shared.stats
            ~engine:(Plan.engine_name plan.Plan.engine) ~hit ~ns;
          Stats.record s.stats
            ~engine:(Plan.engine_name plan.Plan.engine) ~hit ~ns;
          Ok (plan, hit, n, ns))

let truncate_rows s lines rows =
  match s.shared.limits.Guard.max_rows with
  | Some m when rows > m -> (List.filteri (fun i _ -> i < m) lines, true)
  | _ -> (lines, false)

let do_eval s ~db ~engine ~query =
  match Plan.engine_kind_of_string engine with
  | None -> err s (Printf.sprintf "unknown engine %s" engine)
  | Some kind -> (
      match Source.parse_query query with
      | Error e -> err s e
      | Ok q -> (
          match run_eval s ~db ~kind q with
          | Error e -> err s e
          | Ok (plan, hit, result, ns) ->
              let rows = Relation.cardinality result in
              let lines = Plan.sorted_tuples result in
              let payload, truncated = truncate_rows s lines rows in
              ok ~payload
                (Printf.sprintf "engine=%s cache=%s rows=%d ns=%d%s"
                   (Plan.engine_name plan.Plan.engine)
                   (if hit then "hit" else "miss")
                   rows ns
                   (if truncated then " truncated=true" else ""))))

(* COUNT: like EVAL, but the answer is a single number — the summary
   carries [count=<n>] and the payload is one line holding the bare
   count, so both a human and the coordinator's partial-sum gather can
   read it without parsing the summary. *)
let do_count s ~db ~engine ~query =
  match Plan.engine_kind_of_string engine with
  | None -> err s (Printf.sprintf "unknown engine %s" engine)
  | Some kind -> (
      match Source.parse_query query with
      | Error e -> err s e
      | Ok q -> (
          match run_count s ~db ~kind q with
          | Error e -> err s e
          | Ok (plan, hit, n, ns) ->
              ok
                ~payload:[ string_of_int n ]
                (Printf.sprintf "engine=%s cache=%s count=%d ns=%d"
                   (Plan.engine_name plan.Plan.engine)
                   (if hit then "hit" else "miss")
                   n ns)))

(* GATHER: evaluate like EVAL (engine auto) but answer the rows as fact
   lines [head(v1, v2).] — the only line format whose values survive a
   round-trip through [Source.parse_facts], which is what the
   coordinator feeds the payload to.  A truncated reducer would be
   silently wrong at the coordinator, so truncation keeps EVAL's
   explicit [truncated=true] marker for the coordinator to reject. *)
let fact_line name tuple =
  Printf.sprintf "%s(%s)." name
    (String.concat ", "
       (List.map Paradb_query.Fact_format.value_to_syntax
          (Paradb_relational.Tuple.to_list tuple)))

let do_gather s ~db ~query =
  match Source.parse_query query with
  | Error e -> err s e
  | Ok q -> (
      match run_eval s ~db ~kind:Plan.Auto q with
      | Error e -> err s e
      | Ok (_plan, hit, result, ns) ->
          let rows = Relation.cardinality result in
          let name = Relation.name result in
          let lines =
            List.map (fact_line name)
              (List.sort Paradb_relational.Tuple.compare
                 (Relation.tuples result))
          in
          let payload, truncated = truncate_rows s lines rows in
          ok ~payload
            (Printf.sprintf "gathered %s cache=%s rows=%d ns=%d%s" name
               (if hit then "hit" else "miss")
               rows ns
               (if truncated then " truncated=true" else "")))

let finish_bulk s b =
  match Catalog.bulk_set s.shared.catalog b.bulk_db (Buffer.contents b.buf) with
  | Error e -> err s e
  | Ok db ->
      ok
        (Printf.sprintf "bulk %s relations=%d tuples=%d" b.bulk_db
           (List.length (Database.relations db))
           (Database.size db))

let do_bulk s ~db ~count =
  if count = 0 then (Some (finish_bulk s { bulk_db = db; remaining = 0; buf = Buffer.create 0 }), `Continue)
  else begin
    s.bulk <- Some { bulk_db = db; remaining = count; buf = Buffer.create (count * 16) };
    (None, `Continue)
  end

let bulk_line s b line =
  Buffer.add_string b.buf line;
  Buffer.add_char b.buf '\n';
  b.remaining <- b.remaining - 1;
  if b.remaining = 0 then begin
    s.bulk <- None;
    (Some (finish_bulk s b), `Continue)
  end
  else (None, `Continue)

(* DIGEST: a content fingerprint of one catalog entry, built for
   replica comparison — one [relation <name> <arity> <rows> <crc32hex>]
   line per relation, sorted by name, with the checksum taken over the
   relation's fact lines in sorted-tuple order.  Two stores holding the
   same logical rows answer bit-identically regardless of segment
   layout, insertion order, or interning history; the arity rides along
   so a repairer can build the full-scan GATHER that re-ships a
   divergent relation without knowing the schema. *)
let do_digest s db =
  match Catalog.find s.shared.catalog db with
  | None -> err s (Printf.sprintf "no database %s (use LOAD or FACT)" db)
  | Some (database, generation) ->
      let payload =
        Database.relations database
        |> List.map (fun r ->
               let name = Relation.name r in
               let crc =
                 List.fold_left
                   (fun c t ->
                     Paradb_storage.Crc32.feed_string c (fact_line name t ^ "\n"))
                   Paradb_storage.Crc32.init
                   (List.sort Paradb_relational.Tuple.compare
                      (Relation.tuples r))
                 |> Paradb_storage.Crc32.finish
               in
               Printf.sprintf "relation %s %d %d %08x" name (Relation.arity r)
                 (Relation.cardinality r) crc)
        |> List.sort compare
      in
      ok ~payload
        (Printf.sprintf "digest %s generation=%d relations=%d" db generation
           (List.length payload))

let do_check s query =
  match Source.parse_query query with
  | Error e -> err s e
  | Ok q ->
      let plan = Plan.analyze Plan.Auto q in
      let pplan = plan.Plan.pplan in
      let payload =
        [
          Printf.sprintf "query: %s" (Cq.to_string q);
          Printf.sprintf "size %d vars %d" (Cq.size q) (Cq.num_vars q);
          Printf.sprintf "acyclic: %b" plan.Plan.acyclic;
          Printf.sprintf "class: %s"
            (Planner.classification_name pplan.Planner.classification);
          Printf.sprintf "width: %d" pplan.Planner.width;
          Printf.sprintf "join_tree: %s"
            (match plan.Plan.tree with
            | Some t -> Printf.sprintf "%d nodes" (Join_tree.n_nodes t)
            | None -> "none");
          Printf.sprintf "neq_partition_k: %d" plan.Plan.neq_k;
          Printf.sprintf "recommended_engine: %s"
            (Plan.engine_name plan.Plan.engine);
        ]
      in
      ok ~payload (Printf.sprintf "checked size=%d" (Cq.size q))

let do_explain s query =
  match Source.parse_query query with
  | Error e -> err s e
  | Ok q ->
      let pplan = Planner.plan q in
      ok
        ~payload:(Planner.explain pplan)
        (Printf.sprintf "plan class=%s width=%d steps=%d"
           (Planner.classification_name pplan.Planner.classification)
           pplan.Planner.width
           (List.length pplan.Planner.steps))

let do_stats s =
  let cache = Plan_cache.counters s.shared.cache in
  let payload =
    Stats.report ~prefix:"session." s.stats
    @ Stats.report ~prefix:"server." s.shared.stats
    @ [
        Printf.sprintf "server.cache.size %d" cache.Plan_cache.size;
        Printf.sprintf "server.cache.capacity %d"
          (Plan_cache.capacity s.shared.cache);
        Printf.sprintf "server.cache.evictions %d" cache.Plan_cache.evictions;
      ]
    @ List.concat_map
        (fun e ->
          Printf.sprintf "db.%s %d" e.Catalog.name e.Catalog.tuples
          :: Printf.sprintf "db.%s.generation %d" e.Catalog.name
               e.Catalog.generation
          ::
          (match e.Catalog.segments with
          | Some k -> [ Printf.sprintf "db.%s.segments %d" e.Catalog.name k ]
          | None -> []))
        (Catalog.entries_stats s.shared.catalog)
    @ Export.to_table ~prefix:"telemetry." (Metrics.snapshot ())
  in
  ok ~payload "stats"

let do_metrics () =
  ok ~payload:[ Export.to_json (Metrics.snapshot ()) ] "metrics"

let dispatch s req =
  match req with
  | Protocol.Load { db; path } -> (Some (do_load s ~db ~path), `Continue)
  | Protocol.Fact { db; fact } -> (Some (do_fact s ~db ~fact), `Continue)
  | Protocol.Bulk { db; count } -> do_bulk s ~db ~count
  | Protocol.Eval { db; engine; query } ->
      (Some (do_eval s ~db ~engine ~query), `Continue)
  | Protocol.Count { db; engine; query } ->
      (Some (do_count s ~db ~engine ~query), `Continue)
  | Protocol.Gather { db; query } -> (Some (do_gather s ~db ~query), `Continue)
  | Protocol.Check query -> (Some (do_check s query), `Continue)
  | Protocol.Explain query -> (Some (do_explain s query), `Continue)
  | Protocol.Digest db -> (Some (do_digest s db), `Continue)
  | Protocol.Repair _ ->
      (* repair compares replicas across shards; only the coordinator
         has the vantage point to do it *)
      (Some (err s "REPAIR is a coordinator verb"), `Continue)
  | Protocol.Stats -> (Some (do_stats s), `Continue)
  | Protocol.Metrics -> (Some (do_metrics ()), `Continue)
  | Protocol.Quit -> (Some (ok "bye"), `Quit)

let handle s req =
  let verb = Protocol.verb_name req in
  Trace.with_span ("server." ^ verb) @@ fun () ->
  (* deliberately outside the dispatcher's error handling: exercises the
     server loop's catch-all (chaos tests) *)
  Fault.injected_raise ();
  let t0 = now_ns () in
  let r = dispatch s req in
  observe_verb verb (now_ns () - t0);
  r

let handle_line s line =
  let t0 = now_ns () in
  match s.bulk with
  | Some b ->
      (* mid-BULK: the raw line is a fact line, not a request *)
      let r = bulk_line s b line in
      observe_verb "bulk" (now_ns () - t0);
      r
  | None -> (
      match Protocol.parse_request line with
      | Error e ->
          let r = (Some (err s e), `Continue) in
          observe_verb "invalid" (now_ns () - t0);
          r
      | Ok req -> handle s req)
