(* Fault injection for chaos testing.  Disabled by default: the hot-path
   cost is one [Atomic.get] per injection point.  Enabled either
   programmatically ([set], used by tests) or from [PARADB_FAULTS]
   ([init_from_env], used by [paradb serve]); never enabled implicitly. *)

module Metrics = Paradb_telemetry.Metrics
module Env = Paradb_telemetry.Env

exception Injected of string

type config = {
  short_read : float;
  write_delay : float;
  disconnect : float;
  raise_eval : float;
  shard_loss : float;
  straggler_delay : float;
  torn_write : float;
  crash_after_write : float;
  seed : int;
}

let default =
  { short_read = 0.0; write_delay = 0.0; disconnect = 0.0; raise_eval = 0.0;
    shard_loss = 0.0; straggler_delay = 0.0; torn_write = 0.0;
    crash_after_write = 0.0; seed = 0 }

let enabled = Atomic.make false
let current = Atomic.make default

let m_injected = Metrics.counter "server.faults.injected"

(* Worker domains must not share one RNG: a per-domain state keyed off
   the configured seed keeps runs reproducible per (seed, domain). *)
let rng_key =
  Domain.DLS.new_key (fun () ->
      Random.State.make
        [| (Atomic.get current).seed; (Domain.self () :> int); 0x9e3779 |])

(* The storage write-path faults live in [Paradb_storage.Io_fault]
   (storage cannot depend on this library); this registry owns the
   PARADB_FAULTS spec and forwards the storage keys there. *)
let forward_storage c =
  Paradb_storage.Io_fault.set
    (if c.torn_write > 0.0 || c.crash_after_write > 0.0 then
       Some
         {
           Paradb_storage.Io_fault.torn_write = c.torn_write;
           crash_after_write = c.crash_after_write;
           seed = c.seed;
         }
     else None)

let set = function
  | None ->
      Atomic.set enabled false;
      Atomic.set current default;
      Paradb_storage.Io_fault.set None
  | Some c ->
      Atomic.set current c;
      Atomic.set enabled true;
      forward_storage c

let active () = Atomic.get enabled

let parse kvs =
  let prob name v =
    if v < 0.0 || v > 1.0 then
      invalid_arg
        (Printf.sprintf "PARADB_FAULTS: %s=%g is not a probability in [0,1]"
           name v)
    else v
  in
  List.fold_left
    (fun c (k, v) ->
      match k with
      | "short_read" -> { c with short_read = prob k v }
      | "write_delay" -> { c with write_delay = prob k v }
      | "disconnect" -> { c with disconnect = prob k v }
      | "raise_eval" -> { c with raise_eval = prob k v }
      | "shard_loss" -> { c with shard_loss = prob k v }
      | "straggler_delay" -> { c with straggler_delay = prob k v }
      | "torn_write" -> { c with torn_write = prob k v }
      | "crash_after_write" -> { c with crash_after_write = prob k v }
      | "seed" -> { c with seed = int_of_float v }
      | _ ->
          invalid_arg
            (Printf.sprintf
               "PARADB_FAULTS: unknown fault %S (expected short_read, \
                write_delay, disconnect, raise_eval, shard_loss, \
                straggler_delay, torn_write, crash_after_write or seed)"
               k))
    default kvs

let init_from_env () =
  match Env.faults () with
  | None -> ()
  | Some kvs -> set (Some (parse kvs))

let rng () = Domain.DLS.get rng_key

let roll p = p > 0.0 && Random.State.float (rng ()) 1.0 < p

let read_cap n =
  if not (Atomic.get enabled) then n
  else if roll (Atomic.get current).short_read then begin
    Metrics.incr m_injected;
    1 + Random.State.int (rng ()) (max 1 (n / 8))
  end
  else n

let write_delay () =
  if Atomic.get enabled && roll (Atomic.get current).write_delay then begin
    Metrics.incr m_injected;
    Unix.sleepf (0.001 +. Random.State.float (rng ()) 0.004)
  end

let disconnect_now () =
  Atomic.get enabled
  && roll (Atomic.get current).disconnect
  &&
  (Metrics.incr m_injected;
   true)

(* Cluster faults: [shard_loss_now] tells the coordinator to drop its
   pooled shard connection before a round (forcing a redial, and a
   replica failover if the redial fails); [straggler_sleep] delays one
   sub-request by 10-50ms so the per-shard latency histograms grow a
   visible tail. *)
let shard_loss_now () =
  Atomic.get enabled
  && roll (Atomic.get current).shard_loss
  &&
  (Metrics.incr m_injected;
   true)

let straggler_sleep () =
  if Atomic.get enabled && roll (Atomic.get current).straggler_delay then begin
    Metrics.incr m_injected;
    Unix.sleepf (0.01 +. Random.State.float (rng ()) 0.04)
  end

let injected_raise () =
  if Atomic.get enabled && roll (Atomic.get current).raise_eval then begin
    Metrics.incr m_injected;
    raise (Injected "injected raise_eval fault")
  end
