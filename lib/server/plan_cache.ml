(* Classic hash-table-plus-intrusive-doubly-linked-list LRU; the list
   head is the most recently used entry.  All structure mutations happen
   under [lock]. *)

type node = {
  key : string;
  mutable plan : Plan.t;
  mutable prev : node option; (* towards the head (more recent) *)
  mutable next : node option; (* towards the tail (less recent) *)
}

type counters = { hits : int; misses : int; evictions : int; size : int }

module Metrics = Paradb_telemetry.Metrics

let m_hits = Metrics.counter "server.plan_cache.hits"
let m_misses = Metrics.counter "server.plan_cache.misses"
let m_evictions = Metrics.counter "server.plan_cache.evictions"
let m_build_failures = Metrics.counter "server.plan_cache.build_failures"

type t = {
  capacity : int;
  table : (string, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  lock : Mutex.t;
}

let create ~capacity () =
  if capacity <= 0 then invalid_arg "Plan_cache.create: capacity must be positive";
  {
    capacity;
    table = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    lock = Mutex.create ();
  }

let capacity c = c.capacity

let unlink c n =
  (match n.prev with Some p -> p.next <- n.next | None -> c.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> c.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front c n =
  n.next <- c.head;
  (match c.head with Some h -> h.prev <- Some n | None -> c.tail <- Some n);
  c.head <- Some n

let evict_lru c =
  match c.tail with
  | None -> ()
  | Some n ->
      unlink c n;
      Hashtbl.remove c.table n.key;
      c.evictions <- c.evictions + 1;
      Metrics.incr m_evictions

let find_or_build c ~key build =
  let cached =
    Mutex.protect c.lock (fun () ->
        match Hashtbl.find_opt c.table key with
        | Some n ->
            c.hits <- c.hits + 1;
            Metrics.incr m_hits;
            unlink c n;
            push_front c n;
            Some n.plan
        | None ->
            c.misses <- c.misses + 1;
            Metrics.incr m_misses;
            None)
  in
  match cached with
  | Some plan -> (plan, `Hit)
  | None ->
      (* [build] runs outside the lock and may raise ([Plan.analyze] on a
         hostile query, an injected fault): nothing was inserted yet, so
         re-raising leaves the table and LRU list untouched — the key
         stays absent and the next request retries the build. *)
      let plan =
        match build () with
        | exception e ->
            Metrics.incr m_build_failures;
            raise e
        | plan -> plan
      in
      Mutex.protect c.lock (fun () ->
          match Hashtbl.find_opt c.table key with
          | Some n ->
              (* a racing session inserted first; keep one entry *)
              n.plan <- plan;
              unlink c n;
              push_front c n
          | None ->
              if Hashtbl.length c.table >= c.capacity then evict_lru c;
              let n = { key; plan; prev = None; next = None } in
              Hashtbl.replace c.table key n;
              push_front c n);
      (plan, `Miss)

let mem c key = Mutex.protect c.lock (fun () -> Hashtbl.mem c.table key)

let counters c =
  Mutex.protect c.lock (fun () ->
      {
        hits = c.hits;
        misses = c.misses;
        evictions = c.evictions;
        size = Hashtbl.length c.table;
      })

let keys c =
  Mutex.protect c.lock (fun () ->
      let rec go acc = function
        | None -> List.rev acc
        | Some n -> go (n.key :: acc) n.next
      in
      go [] c.head)
