(** The resident TCP server: a listening socket drained by a pool of
    worker {!Domain}s.

    Each worker accepts connections directly off the shared listening
    socket (the kernel serializes [accept]) and runs one blocking
    session at a time, so up to [workers] sessions progress in parallel.
    Parallelism across queries comes from the pool; by default the fpt
    engine's own trial parallelism is left to [PARADB_DOMAINS] exactly
    as in one-shot mode — [paradb serve] sets it to 1 unless the user
    overrides, keeping the domain count bounded by the pool size.

    Safety of concurrent sessions rests on three facts: database
    snapshots are immutable (see {!Catalog}), the plan cache and stats
    are mutex-protected, and plans pre-intern query constants per the
    dictionary's concurrency contract. *)

type t

(** [start ?host ?family ~port ~workers ~cache_capacity ()] binds and
    listens (port [0] picks an ephemeral port — see {!port}) and spawns
    the worker pool.  [host] defaults to ["127.0.0.1"]. *)
val start :
  ?host:string ->
  ?family:Paradb_core.Hashing.family ->
  port:int ->
  workers:int ->
  cache_capacity:int ->
  unit ->
  t

(** The actual bound port (useful after [~port:0]). *)
val port : t -> int

val shared : t -> Session.shared

(** [stop t] closes the listening socket and joins every worker; idle
    workers exit immediately, busy ones after their current session
    ends.  Idempotent. *)
val stop : t -> unit

(** Block until every worker has exited (i.e. until {!stop} is called
    from a signal handler or another domain). *)
val wait : t -> unit
