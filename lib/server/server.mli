(** The resident TCP server: a listening socket drained by a pool of
    worker {!Domain}s.

    Each worker accepts connections directly off the shared listening
    socket (the kernel serializes [accept]) and runs one blocking
    session at a time, so up to [workers] sessions progress in parallel.
    Parallelism across queries comes from the pool; by default the fpt
    engine's own trial parallelism is left to [PARADB_DOMAINS] exactly
    as in one-shot mode — [paradb serve] sets it to 1 unless the user
    overrides, keeping the domain count bounded by the pool size.

    Safety of concurrent sessions rests on three facts: database
    snapshots are immutable (see {!Catalog}), the plan cache and stats
    are mutex-protected, and plans pre-intern query constants per the
    dictionary's concurrency contract.

    Robustness: request lines are read by {!Guard}'s bounded reader
    (oversized lines answer [ERR] without unbounded buffering), idle
    connections are reaped via [SO_RCVTIMEO], any exception escaping the
    dispatcher answers [ERR internal] and leaves the worker alive, and
    transient [accept] failures ([EMFILE], [ENFILE], ...) retry with
    exponential backoff instead of killing the domain.  Each condition
    has a counter: [server.internal_errors], [server.rejected.oversize],
    [server.idle_closed], [server.accept.retries]. *)

type t

(** [start ?host ?family ?limits ?data_dir ~port ~workers ~cache_capacity ()]
    binds and listens (port [0] picks an ephemeral port — see {!port})
    and spawns the worker pool.  [host] defaults to ["127.0.0.1"];
    [limits] to {!Guard.default_limits}.  With [data_dir], every segment
    store under it is attached as a catalog entry before the first
    connection is accepted, and mutations persist (see {!Catalog}); a
    corrupt store raises {!Paradb_storage.Segment.Corrupt} out of
    [start] — the server never comes up over bad data. *)
val start :
  ?host:string ->
  ?family:Paradb_core.Hashing.family ->
  ?limits:Guard.limits ->
  ?data_dir:string ->
  port:int ->
  workers:int ->
  cache_capacity:int ->
  unit ->
  t

(** One accepted connection's request processor, for {!start_handler}
    servers.  [on_line] receives each non-blank request line and
    returns the response to frame ([None] withholds the response — the
    mid-[BULK] convention, see {!Session.handle_line}) plus the
    keep/close verdict; [on_close] runs exactly once when the
    connection ends (any path: QUIT, EOF, idle, error), so handlers
    owning upstream sockets — the cluster coordinator's shard pool —
    can release them. *)
type handler = {
  on_line : string -> Protocol.response option * [ `Continue | `Quit ];
  on_close : unit -> unit;
}

(** [start_handler ?host ?limits ~port ~workers ~handler ()] — the same
    accept loop, bounded reader, idle reaping, catch-all and graceful
    drain as {!start}, but each accepted connection talks to
    [handler ()] (called once per connection) instead of a catalog
    session.  This is how the cluster coordinator front end reuses the
    server's robustness machinery.  Such a server owns no
    {!Session.shared}; calling {!shared} on it raises
    [Invalid_argument]. *)
val start_handler :
  ?host:string ->
  ?limits:Guard.limits ->
  port:int ->
  workers:int ->
  handler:(unit -> handler) ->
  unit ->
  t

(** The actual bound port (useful after [~port:0]). *)
val port : t -> int

(** The session state of a {!start} server.  Raises [Invalid_argument]
    for {!start_handler} servers. *)
val shared : t -> Session.shared

(** Connections currently being served (tests, shutdown progress). *)
val active_connections : t -> int

(** [stop ?grace t] shuts down gracefully: stops accepting, lets
    in-flight sessions finish their current request (counted in
    [server.shutdown.drained]), and after [grace] seconds (default 0.5)
    forcibly shuts the sockets of any stragglers (counted in
    [server.shutdown.aborted]) so every worker can be joined.
    Idempotent. *)
val stop : ?grace:float -> t -> unit

(** Block until every worker has exited (i.e. until {!stop} is called
    from a signal handler or another domain). *)
val wait : t -> unit
