(** Query plans: the parameter-dependent part of evaluation (PAPER.md,
    Theorem 2's f(k) preprocessing), computed once per normalized query
    and cached by {!Plan_cache}.

    A plan fixes the engine dispatch decision, the structural
    classification ({!Paradb_planner.Planner.t}: class, width, join
    order, semijoin program), the I1/I2 inequality partition's hash range
    [k] — and, for the compiled engine, the fused pipeline itself.
    {!analyze} is database-independent; {!prepare} binds an [E_compiled]
    plan to one catalog snapshot by compiling the pipeline, which is why
    the server keys cache entries on the snapshot generation
    ({!scoped_key}). *)

module Cq = Paradb_query.Cq
module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation

type engine_kind = Auto | Naive | Yannakakis | Fpt | Compiled

type engine = E_naive | E_yannakakis | E_comparisons | E_fpt | E_compiled

type t = {
  query : Cq.t;  (** the alpha-normalized query the plan was built from *)
  key : string;  (** {!cache_key} of the query and requested engine *)
  requested : engine_kind;
  engine : engine;  (** resolved dispatch decision *)
  acyclic : bool;
  neq_k : int;  (** [|V1|] of the Ineq partition; 0 unless [E_fpt] *)
  tree : Paradb_hypergraph.Join_tree.t option;
  pplan : Paradb_planner.Planner.t;  (** physical plan and classification *)
  exec : Paradb_eval.Compile.exec option;
      (** compiled pipeline; [Some] only after {!prepare} *)
  count_exec : Paradb_eval.Compile.count_exec option;
      (** compiled counting pipeline; [Some] only after {!prepare_count} *)
  generation : int;
      (** catalog generation [exec] was compiled against; [-1] when
          unprepared *)
}

val engine_kind_of_string : string -> engine_kind option
val engine_kind_name : engine_kind -> string
val engine_name : engine -> string

(** [cache_key kind q] — the database-independent part of the plan-cache
    key: the requested engine's name and [Cq.cache_key q]. *)
val cache_key : engine_kind -> Cq.t -> string

(** [scoped_key ~db ~generation kind q] — the full plan-cache key the
    server uses: {!cache_key} scoped by database name and catalog
    snapshot generation, so no cache entry (in particular no compiled
    pipeline) survives a snapshot swap. *)
val scoped_key : db:string -> generation:int -> engine_kind -> Cq.t -> string

(** [scoped_count_key] — same discipline for COUNT plans, under a
    distinct keyspace so an EVAL and a COUNT of the same query never
    share a cache entry (they carry different compiled artifacts). *)
val scoped_count_key :
  db:string -> generation:int -> engine_kind -> Cq.t -> string

(** [analyze kind q] resolves the dispatch ([Auto] and [Compiled] go to
    the compiled pipeline engine; the named interpreters are forced by
    name) and precomputes the cacheable, database-independent analysis,
    including the {!Paradb_planner.Planner} classification.  All
    constants of [q] are interned into the global dictionary here, per
    the {!Paradb_relational.Dictionary} concurrency contract. *)
val analyze : engine_kind -> Cq.t -> t

(** [prepare plan db ~generation] compiles an [E_compiled] plan against
    the snapshot [db], recording the compile time in the
    [planner.compile_ns] histogram; other engines pass through
    unchanged.  Raises [Not_found] if [db] lacks a relation the query
    names, and {!Paradb_telemetry.Budget.Exhausted} if [budget] expires
    mid-compile. *)
val prepare :
  ?budget:Paradb_telemetry.Budget.t -> t -> Database.t -> generation:int -> t

(** [prepare_count] — {!prepare} for the counting pipeline. *)
val prepare_count :
  ?budget:Paradb_telemetry.Budget.t -> t -> Database.t -> generation:int -> t

(** [evaluate plan db q] runs the plan's engine on [q] — which must be
    alpha-equivalent to [plan.query]; the fresh parse is used directly so
    head attribute names are preserved.  [E_compiled] plans run their
    prepared pipeline (compiling on the fly against [db] when
    unprepared).  [family], when given, overrides the deterministic sweep
    family of the fpt engine.  [budget] is threaded into whichever engine
    runs; expiry raises {!Paradb_telemetry.Budget.Exhausted}.  Raises the
    engines' exceptions ([Cyclic_query], [Invalid_argument]) unchanged. *)
val evaluate :
  ?budget:Paradb_telemetry.Budget.t ->
  ?family:Paradb_core.Hashing.family -> t -> Database.t -> Cq.t -> Relation.t

(** [count plan db q] — the exact answer count (number of satisfying
    valuations of the body variables, Nat-semiring semantics).
    [E_compiled] plans run their prepared counting pipeline (compiling
    on the fly when unprepared); [E_naive] and [E_yannakakis] dispatch
    to their interpreters' counting entry points.  Raises
    [Invalid_argument] for [E_fpt]/[E_comparisons] — the fpt engine's
    randomized trials only witness satisfiability and cannot produce
    exact multiplicities. *)
val count :
  ?budget:Paradb_telemetry.Budget.t -> t -> Database.t -> Cq.t -> int

(** [sorted_tuples r] — the result rows rendered one per line, sorted
    with {!Paradb_relational.Tuple.compare}.  This is the canonical
    answer-set serialization: identical relations always print
    identically, whatever the row-store iteration order. *)
val sorted_tuples : Relation.t -> string list
