(** Query plans: the parameter-dependent, database-independent part of
    evaluation (PAPER.md, Theorem 2's f(k) preprocessing), computed once
    per normalized query and cached by {!Plan_cache}.

    A plan fixes the engine dispatch decision, the acyclicity verdict,
    the I1/I2 inequality partition's hash range [k], and the join tree —
    everything {!evaluate} needs besides the database and the (alpha-
    equivalent) parsed query itself. *)

module Cq = Paradb_query.Cq
module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation

type engine_kind = Auto | Naive | Yannakakis | Fpt

type engine = E_naive | E_yannakakis | E_comparisons | E_fpt

type t = {
  query : Cq.t;  (** the alpha-normalized query the plan was built from *)
  key : string;  (** {!cache_key} of the query and requested engine *)
  requested : engine_kind;
  engine : engine;  (** resolved dispatch decision *)
  acyclic : bool;
  neq_k : int;  (** [|V1|] of the Ineq partition; 0 unless [E_fpt] *)
  tree : Paradb_hypergraph.Join_tree.t option;
}

val engine_kind_of_string : string -> engine_kind option
val engine_name : engine -> string

(** [cache_key kind q] — the plan-cache key: the requested engine's name
    and [Cq.cache_key q]. *)
val cache_key : engine_kind -> Cq.t -> string

(** [analyze kind q] resolves the dispatch (for [Auto]: cyclic queries go
    to the naive engine, acyclic constraint-free ones to Yannakakis,
    [!=]-only ones to the Theorem-2 engine, comparison queries to the
    Theorem-3 preprocessing) and precomputes the cacheable analysis.  All
    constants of [q] are interned into the global dictionary here, per
    the {!Paradb_relational.Dictionary} concurrency contract. *)
val analyze : engine_kind -> Cq.t -> t

(** [evaluate plan db q] runs the plan's engine on [q] — which must be
    alpha-equivalent to [plan.query]; the fresh parse is used directly so
    head attribute names are preserved.  [family], when given, overrides
    the deterministic sweep family of the fpt engine.  [budget] is
    threaded into whichever engine runs; expiry raises
    {!Paradb_telemetry.Budget.Exhausted}.  Raises the engines'
    exceptions ([Cyclic_query], [Invalid_argument]) unchanged. *)
val evaluate :
  ?budget:Paradb_telemetry.Budget.t ->
  ?family:Paradb_core.Hashing.family -> t -> Database.t -> Cq.t -> Relation.t

(** [sorted_tuples r] — the result rows rendered one per line, sorted
    with {!Paradb_relational.Tuple.compare}.  This is the canonical
    answer-set serialization: identical relations always print
    identically, whatever the row-store iteration order. *)
val sorted_tuples : Relation.t -> string list
