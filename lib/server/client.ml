type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

(* Non-blocking connect + select gives a bounded connect; the socket is
   switched back to blocking with SO_RCVTIMEO/SO_SNDTIMEO so each
   request is bounded by the same [timeout]. *)
let connect_once ?(host = "127.0.0.1") ?timeout ~port () =
  let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
  try
    (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ());
    let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
    (match timeout with
    | None -> Unix.connect fd addr
    | Some seconds ->
        Unix.set_nonblock fd;
        (try Unix.connect fd addr with
        | Unix.Unix_error ((EINPROGRESS | EWOULDBLOCK | EAGAIN), _, _) -> (
            match Unix.select [] [ fd ] [] seconds with
            | _, [], _ ->
                raise (Unix.Unix_error (ETIMEDOUT, "connect", ""))
            | _ -> (
                match Unix.getsockopt_error fd with
                | None -> ()
                | Some err -> raise (Unix.Unix_error (err, "connect", "")))));
        Unix.clear_nonblock fd;
        Unix.setsockopt_float fd SO_RCVTIMEO seconds;
        Unix.setsockopt_float fd SO_SNDTIMEO seconds);
    { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
  with e ->
    Unix.close fd;
    raise e

let retriable = function
  | Unix.Unix_error
      ( ( ECONNREFUSED | ECONNRESET | ETIMEDOUT | EHOSTUNREACH | ENETUNREACH
        | EAGAIN | EPIPE ),
        _,
        _ ) ->
      true
  | _ -> false

(* Private RNG for backoff jitter: the global [Random] state is left
   untouched so library users (and the deterministic generators in
   [Paradb_workload]) never see their random streams perturbed by a
   reconnect. *)
let jitter_rng = lazy (Random.State.make_self_init ())

let backoff_sleep ~backoff attempt =
  (* exponential backoff with jitter in [0.5, 1.5) so synchronized
     clients don't re-stampede a recovering server *)
  let jitter = 0.5 +. Random.State.float (Lazy.force jitter_rng) 1.0 in
  Unix.sleepf (backoff *. (2.0 ** float_of_int attempt) *. jitter)

let connect ?host ?timeout ?(retries = 0) ?(backoff = 0.05) ~port () =
  let rec go attempt =
    match connect_once ?host ?timeout ~port () with
    | t -> t
    | exception e when retriable e && attempt < retries ->
        backoff_sleep ~backoff attempt;
        go (attempt + 1)
  in
  go 0

(* Failover connect: walk the address list in order inside the same
   jittered-backoff retry loop — attempt [i] dials address [i mod n], so
   one dead server costs a connect failure, not the whole client.  The
   backoff exponent grows per full cycle through the list (every address
   down is the "recovering server" case; a mere failover shouldn't
   stall). *)
let connect_any ?timeout ?(retries = 0) ?(backoff = 0.05) addrs () =
  match addrs with
  | [] -> invalid_arg "Client.connect_any: empty address list"
  | addrs ->
      let n = List.length addrs in
      let rec go attempt =
        let host, port = List.nth addrs (attempt mod n) in
        match connect_once ~host ?timeout ~port () with
        | t -> t
        | exception e when retriable e && attempt < retries ->
            if (attempt + 1) mod n = 0 then backoff_sleep ~backoff (attempt / n);
            go (attempt + 1)
      in
      go 0

(* "host:port,host:port,..." (bare ports mean 127.0.0.1). *)
let parse_addrs ?(default_host = "127.0.0.1") s =
  let parse_one tok =
    match String.rindex_opt tok ':' with
    | None -> (
        match int_of_string_opt tok with
        | Some p when p > 0 && p < 65536 -> Ok (default_host, p)
        | _ -> Error (Printf.sprintf "bad address %S (expected host:port)" tok))
    | Some i -> (
        let host = String.sub tok 0 i in
        let port = String.sub tok (i + 1) (String.length tok - i - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 && host <> "" -> Ok (host, p)
        | _ -> Error (Printf.sprintf "bad address %S (expected host:port)" tok))
  in
  let toks =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun t -> t <> "")
  in
  if toks = [] then Error "empty address list"
  else
    List.fold_left
      (fun acc tok ->
        match (acc, parse_one tok) with
        | Error _, _ -> acc
        | _, (Error _ as e) -> e
        | Ok addrs, Ok a -> Ok (addrs @ [ a ]))
      (Ok []) toks

(* Tighten (or relax) the per-request budget on a live connection —
   the coordinator propagates its remaining deadline to each shard
   sub-request this way. *)
let set_timeout t seconds =
  let seconds = Float.max 0.001 seconds in
  try
    Unix.setsockopt_float t.fd SO_RCVTIMEO seconds;
    Unix.setsockopt_float t.fd SO_SNDTIMEO seconds
  with Unix.Unix_error _ | Invalid_argument _ -> ()

let send_line t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

let request_line t line =
  (* with SO_RCVTIMEO/SO_SNDTIMEO set, a stalled server surfaces as
     Sys_error or Sys_blocked_io (EAGAIN under the channel); report
     either as a timeout, not a crash *)
  match
    send_line t line;
    Protocol.read_response t.ic
  with
  | Some r -> r
  | None -> failwith "connection closed by server"
  | exception Sys_error msg -> failwith ("request failed: " ^ msg)
  | exception Sys_blocked_io -> failwith "request failed: timed out"

let request t req = request_line t (Protocol.request_to_line req)

(* The BULK framing: header plus payload written in one buffered burst
   (a fact line is tiny; per-line flushes would syscall-storm the slice
   transfer), then a single framed response. *)
let request_bulk t ~header lines =
  match
    output_string t.oc header;
    output_char t.oc '\n';
    List.iter
      (fun line ->
        output_string t.oc line;
        output_char t.oc '\n')
      lines;
    flush t.oc;
    Protocol.read_response t.ic
  with
  | Some r -> r
  | None -> failwith "connection closed by server"
  | exception Sys_error msg -> failwith ("request failed: " ^ msg)
  | exception Sys_blocked_io -> failwith "request failed: timed out"

let close t =
  (try send_line t "QUIT" with Sys_error _ | Sys_blocked_io -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_connection ?host ?timeout ?retries ?backoff ~port f =
  let t = connect ?host ?timeout ?retries ?backoff ~port () in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
