type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

(* Non-blocking connect + select gives a bounded connect; the socket is
   switched back to blocking with SO_RCVTIMEO/SO_SNDTIMEO so each
   request is bounded by the same [timeout]. *)
let connect_once ?(host = "127.0.0.1") ?timeout ~port () =
  let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
  try
    (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ());
    let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
    (match timeout with
    | None -> Unix.connect fd addr
    | Some seconds ->
        Unix.set_nonblock fd;
        (try Unix.connect fd addr with
        | Unix.Unix_error ((EINPROGRESS | EWOULDBLOCK | EAGAIN), _, _) -> (
            match Unix.select [] [ fd ] [] seconds with
            | _, [], _ ->
                raise (Unix.Unix_error (ETIMEDOUT, "connect", ""))
            | _ -> (
                match Unix.getsockopt_error fd with
                | None -> ()
                | Some err -> raise (Unix.Unix_error (err, "connect", "")))));
        Unix.clear_nonblock fd;
        Unix.setsockopt_float fd SO_RCVTIMEO seconds;
        Unix.setsockopt_float fd SO_SNDTIMEO seconds);
    { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
  with e ->
    Unix.close fd;
    raise e

let retriable = function
  | Unix.Unix_error
      ( ( ECONNREFUSED | ECONNRESET | ETIMEDOUT | EHOSTUNREACH | ENETUNREACH
        | EAGAIN | EPIPE ),
        _,
        _ ) ->
      true
  | _ -> false

(* Private RNG for backoff jitter: the global [Random] state is left
   untouched so library users (and the deterministic generators in
   [Paradb_workload]) never see their random streams perturbed by a
   reconnect. *)
let jitter_rng = lazy (Random.State.make_self_init ())

let connect ?host ?timeout ?(retries = 0) ?(backoff = 0.05) ~port () =
  let rec go attempt =
    match connect_once ?host ?timeout ~port () with
    | t -> t
    | exception e when retriable e && attempt < retries ->
        (* exponential backoff with jitter in [0.5, 1.5) so synchronized
           clients don't re-stampede a recovering server *)
        let jitter = 0.5 +. Random.State.float (Lazy.force jitter_rng) 1.0 in
        Unix.sleepf (backoff *. (2.0 ** float_of_int attempt) *. jitter);
        go (attempt + 1)
  in
  go 0

let send_line t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

let request_line t line =
  send_line t line;
  (* with SO_RCVTIMEO set, a stalled server surfaces as Sys_error
     (EAGAIN under the channel); report it as a timeout, not a crash *)
  match Protocol.read_response t.ic with
  | Some r -> r
  | None -> failwith "connection closed by server"
  | exception Sys_error msg -> failwith ("request failed: " ^ msg)

let request t req = request_line t (Protocol.request_to_line req)

let close t =
  (try send_line t "QUIT" with Sys_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_connection ?host ?timeout ?retries ?backoff ~port f =
  let t = connect ?host ?timeout ?retries ?backoff ~port () in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
