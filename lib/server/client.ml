type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
  (try Unix.connect fd (ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     Unix.close fd;
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let send_line t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

let request_line t line =
  send_line t line;
  match Protocol.read_response t.ic with
  | Some r -> r
  | None -> failwith "connection closed by server"

let request t req = request_line t (Protocol.request_to_line req)

let close t =
  (try send_line t "QUIT" with Sys_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_connection ?host ~port f =
  let t = connect ?host ~port () in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
