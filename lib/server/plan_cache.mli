(** A mutex-protected LRU cache of query {!Plan.t}s, shared by every
    server session.

    Keys are {!Plan.scoped_key} strings (database name, catalog snapshot
    generation, requested engine, alpha-normalized query text), so
    queries differing only in variable names — or whitespace — hit the
    same entry, while any snapshot swap strands the old entries (in
    particular, a compiled pipeline can never run against data it was
    not compiled for).  Capacity is a hard
    bound: inserting into a full cache evicts the least recently used
    plan.  Hit/miss/eviction counters feed the [STATS] report and the
    server-throughput bench. *)

type t

type counters = { hits : int; misses : int; evictions : int; size : int }

(** [create ~capacity ()] — [capacity] must be positive. *)
val create : capacity:int -> unit -> t

val capacity : t -> int

(** [find_or_build cache ~key build] returns the cached plan for [key],
    bumping its recency, or runs [build ()], inserts the result and
    returns it.  [build] runs outside the lock: two sessions racing on a
    cold key may both build; the last insert wins (plans for one key are
    interchangeable).  A raising [build] propagates without inserting
    anything — the miss is still counted, the
    [server.plan_cache.build_failures] counter is bumped, and the next
    request for [key] retries the build. *)
val find_or_build : t -> key:string -> (unit -> Plan.t) -> Plan.t * [ `Hit | `Miss ]

(** Peek without counting or bumping recency (tests). *)
val mem : t -> string -> bool

val counters : t -> counters

(** Keys from most to least recently used (tests). *)
val keys : t -> string list
