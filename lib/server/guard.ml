(* Resource-governance primitives for the server: per-session limits and
   a bounded line reader that replaces [In_channel.input_line] on the
   request path (which would buffer an arbitrarily long line). *)

type limits = {
  deadline_ns : int option;
  max_line : int;
  max_rows : int option;
  idle_timeout : float option;
}

let default_limits =
  { deadline_ns = None; max_line = 65536; max_rows = None; idle_timeout = None }

type event = Line of string | Too_long | Closed | Idle

type reader = {
  fd : Unix.file_descr;
  max_line : int;
  chunk : Bytes.t;
  mutable pos : int;  (* first unconsumed byte in [chunk] *)
  mutable len : int;  (* valid bytes in [chunk] *)
  line : Buffer.t;
  mutable overflow : bool;  (* discarding an oversized line up to '\n' *)
}

let chunk_size = 4096

let reader ?(max_line = default_limits.max_line) fd =
  if max_line < 1 then invalid_arg "Guard.reader: max_line must be positive";
  {
    fd;
    max_line;
    chunk = Bytes.create chunk_size;
    pos = 0;
    len = 0;
    line = Buffer.create 256;
    overflow = false;
  }

let refill r =
  match Unix.read r.fd r.chunk 0 (Fault.read_cap chunk_size) with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
      (* SO_RCVTIMEO expired with no data: the peer is idle *)
      `Idle
  | exception Unix.Unix_error (EINTR, _, _) -> `Retry
  | exception
      Unix.Unix_error
        ((ECONNRESET | EPIPE | EBADF | ENOTCONN | ETIMEDOUT | ESHUTDOWN), _, _)
    ->
      `Eof
  | 0 -> `Eof
  | n ->
      r.pos <- 0;
      r.len <- n;
      `Ok

let read_line r =
  let rec scan () =
    if r.pos >= r.len then
      match refill r with
      | `Idle -> Idle
      | `Eof -> Closed
      | `Retry | `Ok -> scan ()
    else begin
      let i = ref r.pos in
      while !i < r.len && Bytes.get r.chunk !i <> '\n' do
        incr i
      done;
      let seg = !i - r.pos in
      if !i < r.len then
        (* newline at !i: one full line is available *)
        if (not r.overflow) && Buffer.length r.line + seg <= r.max_line then begin
          Buffer.add_subbytes r.line r.chunk r.pos seg;
          r.pos <- !i + 1;
          let s = Buffer.contents r.line in
          Buffer.clear r.line;
          Line s
        end
        else begin
          (* the offending bytes are consumed through the newline, so the
             connection stays usable for subsequent requests *)
          r.pos <- !i + 1;
          Buffer.clear r.line;
          r.overflow <- false;
          Too_long
        end
      else begin
        if not r.overflow then
          if Buffer.length r.line + seg <= r.max_line then
            Buffer.add_subbytes r.line r.chunk r.pos seg
          else begin
            Buffer.clear r.line;
            r.overflow <- true
          end;
        r.pos <- r.len;
        scan ()
      end
    end
  in
  scan ()

let accept_backoff attempt =
  Float.min 1.0 (0.01 *. (2.0 ** float_of_int (max 0 attempt)))
