module Metrics = Paradb_telemetry.Metrics

let m_bytes_in = Metrics.counter "server.bytes_in"
let m_bytes_out = Metrics.counter "server.bytes_out"
let m_internal = Metrics.counter "server.internal_errors"
let m_oversize = Metrics.counter "server.rejected.oversize"
let m_idle_closed = Metrics.counter "server.idle_closed"
let m_accept_retries = Metrics.counter "server.accept.retries"
let m_drained = Metrics.counter "server.shutdown.drained"
let m_aborted = Metrics.counter "server.shutdown.aborted"

type handler = {
  on_line : string -> Protocol.response option * [ `Continue | `Quit ];
  on_close : unit -> unit;
}

(* What a freshly accepted connection talks to: a catalog-backed
   [Session] (the classic server) or an arbitrary per-connection
   handler (the cluster coordinator front end).  Both inherit the same
   loop below — bounded reader, idle reaping, catch-all, drain. *)
type source =
  | Session_source of Session.shared
  | Handler_source of (unit -> handler)

type t = {
  listen_fd : Unix.file_descr;
  bound_port : int;
  source : source;
  limits : Guard.limits;
  workers : unit Domain.t array;
  stopping : bool Atomic.t;
  conns : (Unix.file_descr, unit) Hashtbl.t; (* in-flight connections *)
  conns_lock : Mutex.t;
  stopped : Mutex.t; (* serializes [stop] so joins happen once *)
  mutable joined : bool;
}

let port t = t.bound_port

let shared t =
  match t.source with
  | Session_source s -> s
  | Handler_source _ ->
      invalid_arg "Server.shared: handler-based server owns no session state"

let handler_of_source = function
  | Session_source shared ->
      fun () ->
        let session = Session.create shared in
        { on_line = Session.handle_line session; on_close = ignore }
  | Handler_source make -> make

let send oc response =
  Metrics.incr
    ~by:
      (List.fold_left
         (fun n l -> n + String.length l + 1)
         0
         (Protocol.response_to_lines response))
    m_bytes_out;
  Fault.write_delay ();
  Protocol.write_response oc response

(* One connection: line in, framed response out, until QUIT/EOF/idle.
   The bounded reader enforces [max_line]; [SO_RCVTIMEO] enforces
   [idle_timeout]; a catch-all around the dispatcher turns any escaped
   exception into [ERR internal] instead of a dead worker.  Socket-level
   write failures (peer gone) end the loop. *)
let serve_connection ~limits make_handler stopping fd =
  (* request/response is strictly ping-pong, so Nagle only adds delayed-ACK
     stalls on the response's final partial segment *)
  (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ());
  (match limits.Guard.idle_timeout with
  | Some seconds -> (
      try Unix.setsockopt_float fd SO_RCVTIMEO seconds
      with Unix.Unix_error _ | Invalid_argument _ -> ())
  | None -> ());
  let oc = Unix.out_channel_of_descr fd in
  let reader = Guard.reader ~max_line:limits.Guard.max_line fd in
  let handler = make_handler () in
  let rec loop () =
    match Guard.read_line reader with
    | Guard.Closed -> ()
    | Guard.Idle ->
        Metrics.incr m_idle_closed;
        send oc (Protocol.Err "idle timeout; closing connection")
    | Guard.Too_long ->
        Metrics.incr m_oversize;
        send oc
          (Protocol.Err
             (Printf.sprintf "request line exceeds %d bytes"
                limits.Guard.max_line));
        continue ()
    | Guard.Line line when String.trim line = "" -> loop ()
    | Guard.Line line -> (
        Metrics.incr ~by:(String.length line + 1) m_bytes_in;
        match handler.on_line line with
        | exception e ->
            (* the dispatcher answers [Err] itself for every expected
               failure; anything arriving here is a server bug (or an
               injected fault) — answer, count, survive *)
            Metrics.incr m_internal;
            send oc (Protocol.Err ("internal: " ^ Printexc.to_string e));
            continue ()
        | None, _ ->
            (* a response is withheld only mid-BULK; keep reading *)
            loop ()
        | Some response, verdict ->
            if Fault.disconnect_now () then (
              try Unix.shutdown fd SHUTDOWN_ALL with Unix.Unix_error _ -> ())
            else begin
              send oc response;
              match verdict with `Continue -> continue () | `Quit -> ()
            end)
  and continue () =
    (* graceful shutdown: finish the request in flight, then close *)
    if Atomic.get stopping then Metrics.incr m_drained else loop ()
  in
  Fun.protect
    ~finally:(fun () -> try handler.on_close () with _ -> ())
    (fun () -> try loop () with Sys_error _ | End_of_file -> ())

let worker_loop stopping ~limits make_handler conns conns_lock listen_fd () =
  let register fd =
    Mutex.protect conns_lock (fun () -> Hashtbl.replace conns fd ())
  in
  let unregister fd =
    Mutex.protect conns_lock (fun () -> Hashtbl.remove conns fd)
  in
  let rec loop backoff =
    if not (Atomic.get stopping) then begin
      match Unix.accept ~cloexec:true listen_fd with
      | exception Unix.Unix_error ((EBADF | EINVAL | ECONNABORTED), _, _) ->
          (* EBADF/EINVAL: [stop] closed the listening socket under us;
             ECONNABORTED: the peer vanished between accept queuing and
             now — only the latter leaves the socket usable. *)
          if not (Atomic.get stopping) then loop 0
      | exception Unix.Unix_error (EINTR, _, _) -> loop 0
      | exception
          Unix.Unix_error ((EMFILE | ENFILE | ENOBUFS | ENOMEM), _, _) ->
          (* descriptor/buffer exhaustion is transient: back off and
             retry rather than letting the exception kill the domain *)
          Metrics.incr m_accept_retries;
          Unix.sleepf (Guard.accept_backoff backoff);
          loop (backoff + 1)
      | fd, _peer ->
          register fd;
          Fun.protect
            ~finally:(fun () ->
              unregister fd;
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              (* belt and braces: nothing may kill the worker domain *)
              try serve_connection ~limits make_handler stopping fd
              with _ -> ());
          loop 0
    end
  in
  loop 0

let start_common ~host ~limits ~port ~workers source =
  if workers < 1 then invalid_arg "Server.start: need at least one worker";
  (* a peer that disconnects mid-response must surface as EPIPE, not
     kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let addr = Unix.inet_addr_of_string host in
  let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd SO_REUSEADDR true;
     Unix.bind fd (ADDR_INET (addr, port));
     Unix.listen fd 64
   with e ->
     Unix.close fd;
     raise e);
  let bound_port =
    match Unix.getsockname fd with
    | ADDR_INET (_, p) -> p
    | ADDR_UNIX _ -> assert false
  in
  (* for a session server: attach before accepting — a corrupt store
     must fail startup, not the first query.  [Segment.Corrupt]
     propagates after the socket closes. *)
  (match source with
  | Handler_source _ -> ()
  | Session_source shared -> (
      match Catalog.attach shared.Session.catalog with
      | _ -> ()
      | exception e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          raise e));
  let stopping = Atomic.make false in
  let conns = Hashtbl.create 64 in
  let conns_lock = Mutex.create () in
  let make_handler = handler_of_source source in
  let pool =
    Array.init workers (fun _ ->
        Domain.spawn
          (worker_loop stopping ~limits make_handler conns conns_lock fd))
  in
  {
    listen_fd = fd;
    bound_port;
    source;
    limits;
    workers = pool;
    stopping;
    conns;
    conns_lock;
    stopped = Mutex.create ();
    joined = false;
  }

let start ?(host = "127.0.0.1") ?family ?limits ?data_dir ~port ~workers
    ~cache_capacity () =
  let shared =
    Session.make_shared ?family ?limits ?data_dir ~cache_capacity ()
  in
  start_common ~host ~limits:shared.Session.limits ~port ~workers
    (Session_source shared)

let start_handler ?(host = "127.0.0.1") ?(limits = Guard.default_limits) ~port
    ~workers ~handler () =
  start_common ~host ~limits ~port ~workers (Handler_source handler)

let join_all t =
  Mutex.protect t.stopped (fun () ->
      if not t.joined then begin
        Array.iter Domain.join t.workers;
        t.joined <- true
      end)

let active_connections t =
  Mutex.protect t.conns_lock (fun () -> Hashtbl.length t.conns)

let stop ?(grace = 0.5) t =
  Atomic.set t.stopping true;
  (* [shutdown] — not [close] — wakes workers blocked in [accept] (they
     get EINVAL); the fd is closed only after every worker has exited,
     so its number cannot be recycled under a racing accept. *)
  (try Unix.shutdown t.listen_fd SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (* drain: sessions notice [stopping] after their in-flight request and
     close; past the grace period, shut the stragglers' sockets so their
     blocked reads return and the workers can exit. *)
  let deadline = Unix.gettimeofday () +. Float.max 0.0 grace in
  let rec drain () =
    if active_connections t > 0 then
      if Unix.gettimeofday () >= deadline then
        Mutex.protect t.conns_lock (fun () ->
            Hashtbl.iter
              (fun fd () ->
                Metrics.incr m_aborted;
                try Unix.shutdown fd SHUTDOWN_ALL with Unix.Unix_error _ -> ())
              t.conns)
      else begin
        Unix.sleepf 0.01;
        drain ()
      end
  in
  drain ();
  join_all t;
  try Unix.close t.listen_fd with Unix.Unix_error _ -> ()

let wait = join_all
