module Metrics = Paradb_telemetry.Metrics

let m_bytes_in = Metrics.counter "server.bytes_in"
let m_bytes_out = Metrics.counter "server.bytes_out"

type t = {
  listen_fd : Unix.file_descr;
  bound_port : int;
  shared : Session.shared;
  workers : unit Domain.t array;
  stopping : bool Atomic.t;
  stopped : Mutex.t; (* serializes [stop] so joins happen once *)
  mutable joined : bool;
}

let port t = t.bound_port
let shared t = t.shared

(* One connection: line in, framed response out, until QUIT/EOF.  Every
   escape is a socket-level failure; the session dispatcher itself never
   raises. *)
let serve_connection shared fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let session = Session.create shared in
  let rec loop () =
    match In_channel.input_line ic with
    | None -> ()
    | Some line when String.trim line = "" -> loop ()
    | Some line ->
        Metrics.incr ~by:(String.length line + 1) m_bytes_in;
        let response, verdict = Session.handle_line session line in
        Metrics.incr
          ~by:
            (List.fold_left
               (fun n l -> n + String.length l + 1)
               0
               (Protocol.response_to_lines response))
          m_bytes_out;
        Protocol.write_response oc response;
        (match verdict with `Continue -> loop () | `Quit -> ())
  in
  (try loop () with Sys_error _ | End_of_file -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let worker_loop stopping shared listen_fd () =
  let rec loop () =
    if not (Atomic.get stopping) then begin
      match Unix.accept ~cloexec:true listen_fd with
      | exception Unix.Unix_error ((EBADF | EINVAL | ECONNABORTED), _, _) ->
          (* EBADF/EINVAL: [stop] closed the listening socket under us;
             ECONNABORTED: the peer vanished between accept queuing and
             now — only the latter leaves the socket usable. *)
          if not (Atomic.get stopping) then loop ()
      | exception Unix.Unix_error (EINTR, _, _) -> loop ()
      | fd, _peer ->
          serve_connection shared fd;
          loop ()
    end
  in
  loop ()

let start ?(host = "127.0.0.1") ?family ~port ~workers ~cache_capacity () =
  if workers < 1 then invalid_arg "Server.start: need at least one worker";
  (* a peer that disconnects mid-response must surface as EPIPE, not
     kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let addr = Unix.inet_addr_of_string host in
  let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd SO_REUSEADDR true;
     Unix.bind fd (ADDR_INET (addr, port));
     Unix.listen fd 64
   with e ->
     Unix.close fd;
     raise e);
  let bound_port =
    match Unix.getsockname fd with
    | ADDR_INET (_, p) -> p
    | ADDR_UNIX _ -> assert false
  in
  let shared = Session.make_shared ?family ~cache_capacity () in
  let stopping = Atomic.make false in
  let pool =
    Array.init workers (fun _ -> Domain.spawn (worker_loop stopping shared fd))
  in
  {
    listen_fd = fd;
    bound_port;
    shared;
    workers = pool;
    stopping;
    stopped = Mutex.create ();
    joined = false;
  }

let join_all t =
  Mutex.protect t.stopped (fun () ->
      if not t.joined then begin
        Array.iter Domain.join t.workers;
        t.joined <- true
      end)

let stop t =
  Atomic.set t.stopping true;
  (* [shutdown] — not [close] — wakes workers blocked in [accept] (they
     get EINVAL); the fd is closed only after every worker has exited,
     so its number cannot be recycled under a racing accept. *)
  (try Unix.shutdown t.listen_fd SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  join_all t;
  try Unix.close t.listen_fd with Unix.Unix_error _ -> ()

let wait = join_all
