(** Resource governance for the server: per-session limits and a bounded
    request-line reader.

    The limits are all opt-in; {!default_limits} reproduces the
    ungoverned behaviour except for [max_line], which always bounds
    request-line memory (the reader never buffers more than
    [max_line + 4096] bytes, where [In_channel.input_line] would buffer
    the whole line). *)

type limits = {
  deadline_ns : int option;
      (** per-request evaluation budget ([EVAL] only); expiry yields
          [ERR deadline-exceeded] *)
  max_line : int;  (** max request-line bytes (excluding the newline) *)
  max_rows : int option;
      (** max result rows sent per response; excess rows are dropped and
          the summary gains [truncated=true] *)
  idle_timeout : float option;
      (** seconds a connection may sit idle between requests *)
}

(** No deadline, 64 KiB lines, unlimited rows, no idle timeout. *)
val default_limits : limits

(** One read event: a complete line (newline stripped), an oversized
    line (its bytes consumed through the newline, so the connection can
    continue), end of stream, or an idle timeout (no bytes before
    [SO_RCVTIMEO] expired). *)
type event = Line of string | Too_long | Closed | Idle

type reader

(** [reader ?max_line fd] — a buffered bounded line reader over [fd]
    (raw [Unix.read], 4 KiB chunks). *)
val reader : ?max_line:int -> Unix.file_descr -> reader

val read_line : reader -> event

(** [accept_backoff attempt] — seconds to sleep before retrying a failed
    [accept] ([EMFILE]/[ENFILE]/...): [0.01 · 2^attempt], capped at 1s. *)
val accept_backoff : int -> float
