(** The catalog: named databases shared by every session, optionally
    backed by on-disk segment stores.

    {!Paradb_relational.Database.t} values are immutable, so the catalog
    is just a mutex-protected table from names to the current snapshot.
    Mutations ([LOAD], [FACT]) replace the binding; an evaluation that
    already fetched a snapshot keeps running on the database it saw —
    readers never block writers and answers are always computed against
    one consistent database value.

    Every snapshot carries a {e generation}: a catalog-wide counter
    bumped on each mutation.  A (name, generation) pair denotes one
    immutable snapshot, which is what the server's plan cache keys
    compiled pipelines on — a reload can never be served a pipeline
    compiled against superseded data.

    With a [data_dir], each entry also owns the segment directory
    [data_dir/<name>]: a mutation first persists the delta as immutable
    segment files (the first [LOAD] compacts a fresh store, later ones
    append delta segments), then swaps the in-memory snapshot under a
    fresh generation.  A failed persist leaves both the entry and the
    old generation untouched — memory never claims more than the disk
    holds. *)

module Database = Paradb_relational.Database

type t

(** [create ?data_dir ()] — with [data_dir], entries persist to segment
    stores under it (see {!attach} for opening existing ones). *)
val create : ?data_dir:string -> unit -> t

val data_dir : t -> string option

(** [set cat name db] binds (or replaces) a catalog entry under a fresh
    generation.  In-memory only — persistence goes through {!load} and
    {!add_fact}. *)
val set : t -> string -> Database.t -> unit

(** [find cat name] — the current snapshot and its generation. *)
val find : t -> string -> (Database.t * int) option

(** [load cat name db] — the [LOAD] verb.  Without a data dir this
    replaces the entry.  With one, [db] is persisted as delta segments
    (the incremental-load path) and unioned with the existing snapshot;
    the returned tag says which happened.  Storage failures return
    [Error "storage: ..."] and leave the entry unchanged. *)
val load :
  t -> string -> Database.t ->
  (Database.t * [ `Replaced | `Appended | `Created ], string) result

(** [add_fact cat name atom] parses one ground fact (e.g. ["edge(1, 2)."])
    and adds it to the named database, creating the entry if absent.
    Returns the new snapshot, or an error message for unparsable input.
    The parse-and-replace runs under the catalog lock, so concurrent
    [FACT]s to one entry never lose updates.  With a data dir the fact
    is persisted as a delta segment before the snapshot swaps. *)
val add_fact : t -> string -> string -> (Database.t, string) result

(** [bulk_set cat name text] — the [BULK] verb: parse [text] as a fact
    file fragment and {e replace} entry [name] with it under a fresh
    generation.  In-memory only, even with a data dir: a bulk batch is
    one shard's slice of a snapshot the cluster coordinator already
    holds durably, not an independent mutation.  Errors are parse
    errors. *)
val bulk_set : t -> string -> string -> (Database.t, string) result

(** [attach cat] scans the data dir and opens every segment store found
    as a catalog entry, returning [(name, tuples)] per database loaded.
    Raises {!Paradb_storage.Segment.Corrupt} if any store fails
    validation — callers treat that as a fatal startup error. *)
val attach : t -> (string * int) list

(** Entry names with their tuple counts, sorted by name. *)
val entries : t -> (string * int) list

(** [compact_candidates cat ~min_segments] — entries whose store holds
    at least [min_segments] live segment files and more segments than
    relations (so a freshly folded store is never a candidate and the
    sweeper converges), most-fragmented first.  What the background
    {!Compactor} polls. *)
val compact_candidates : t -> min_segments:int -> (string * int) list

(** [compact_entry cat name] folds the entry's store in place
    ({!Paradb_storage.Store.fold_in_place}) under the catalog's IO lock,
    serialized against LOAD/FACT persists but never blocking readers —
    the fold changes the disk layout, not the visible rows, so the
    in-memory snapshot and its generation stay untouched.  Returns
    (segments before, after, bytes written). *)
val compact_entry : t -> string -> (int * int * int, string) result

type entry_stats = {
  name : string;
  tuples : int;
  generation : int;  (** the snapshot generation the plan cache keys on *)
  segments : int option;
      (** live segment-file count of the entry's store — [None] without
          a data dir (or when the manifest cannot be read) *)
}

(** Per-entry operator stats, sorted by name — the payload behind the
    [db.<name>.generation] / [db.<name>.segments] STATS lines.  Each
    segment count observed is also published to the
    [store.<name>.segments] high-watermark gauge, so METRICS scrapes
    see delta accumulation between STATS calls. *)
val entries_stats : t -> entry_stats list
