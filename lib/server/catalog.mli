(** The catalog: named in-memory databases shared by every session.

    {!Paradb_relational.Database.t} values are immutable, so the catalog
    is just a mutex-protected table from names to the current snapshot.
    Mutations ([LOAD], [FACT]) replace the binding; an evaluation that
    already fetched a snapshot keeps running on the database it saw —
    readers never block writers and answers are always computed against
    one consistent database value.

    Every snapshot carries a {e generation}: a catalog-wide counter
    bumped on each [set]/[add_fact].  A (name, generation) pair denotes
    one immutable snapshot, which is what the server's plan cache keys
    compiled pipelines on — a reload can never be served a pipeline
    compiled against superseded data. *)

module Database = Paradb_relational.Database

type t

val create : unit -> t

(** [set cat name db] binds (or replaces) a catalog entry under a fresh
    generation. *)
val set : t -> string -> Database.t -> unit

(** [find cat name] — the current snapshot and its generation. *)
val find : t -> string -> (Database.t * int) option

(** [add_fact cat name atom] parses one ground fact (e.g. ["edge(1, 2)."])
    and adds it to the named database, creating the entry if absent.
    Returns the new snapshot, or an error message for unparsable input.
    The parse-and-replace runs under the catalog lock, so concurrent
    [FACT]s to one entry never lose updates. *)
val add_fact : t -> string -> string -> (Database.t, string) result

(** Entry names with their tuple counts, sorted by name. *)
val entries : t -> (string * int) list
