module Cq = Paradb_query.Cq
module Atom = Paradb_query.Atom
module Constr = Paradb_query.Constr
module Term = Paradb_query.Term
module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Dictionary = Paradb_relational.Dictionary
module Tuple = Paradb_relational.Tuple
module Hypergraph = Paradb_hypergraph.Hypergraph
module Join_tree = Paradb_hypergraph.Join_tree
module Engine = Paradb_core.Engine
module Ineq = Paradb_core.Ineq

type engine_kind = Auto | Naive | Yannakakis | Fpt

type engine = E_naive | E_yannakakis | E_comparisons | E_fpt

type t = {
  query : Cq.t;
  key : string;
  requested : engine_kind;
  engine : engine;
  acyclic : bool;
  neq_k : int;
  tree : Join_tree.t option;
}

let engine_kind_of_string s =
  match String.lowercase_ascii s with
  | "auto" -> Some Auto
  | "naive" -> Some Naive
  | "yannakakis" -> Some Yannakakis
  | "fpt" -> Some Fpt
  | _ -> None

let engine_kind_name = function
  | Auto -> "auto"
  | Naive -> "naive"
  | Yannakakis -> "yannakakis"
  | Fpt -> "fpt"

let engine_name = function
  | E_naive -> "naive"
  | E_yannakakis -> "yannakakis"
  | E_comparisons -> "comparisons"
  | E_fpt -> "fpt"

let cache_key kind q =
  engine_kind_name kind ^ "|" ^ Cq.cache_key q

let constants q =
  List.concat_map Atom.constants q.Cq.body
  @ List.concat_map Constr.constants q.Cq.constraints
  @ List.filter_map
      (function Term.Const v -> Some v | Term.Var _ -> None)
      q.Cq.head

let analyze requested q =
  let nq = Cq.alpha_normalize q in
  let acyclic = Hypergraph.is_acyclic (Hypergraph.of_cq nq) in
  let engine =
    match requested with
    | Naive -> E_naive
    | Yannakakis -> E_yannakakis
    | Fpt -> E_fpt
    | Auto ->
        if not acyclic then E_naive
        else if Cq.has_constraints nq then
          if Cq.neq_only nq then E_fpt else E_comparisons
        else E_yannakakis
  in
  let neq_k =
    if engine = E_fpt && Cq.neq_only nq then (Ineq.partition nq).Ineq.k else 0
  in
  (* Pre-intern the query's constants: evaluation then only reads the
     dictionary, which is the discipline the engine's parallel trials
     already rely on (Dictionary's concurrency contract). *)
  List.iter (fun v -> ignore (Dictionary.intern Dictionary.global v)) (constants q);
  {
    query = nq;
    key = cache_key requested q;
    requested;
    engine;
    acyclic;
    neq_k;
    tree = Join_tree.of_cq nq;
  }

let evaluate ?budget ?family plan db q =
  match plan.engine with
  | E_naive -> Paradb_eval.Cq_naive.evaluate ?budget db q
  | E_yannakakis -> Paradb_yannakakis.Yannakakis.evaluate ?budget db q
  | E_comparisons -> Paradb_core.Comparisons.evaluate ?budget db q
  | E_fpt -> Engine.evaluate ?budget ?family db q

let sorted_tuples r =
  List.map Tuple.to_string (List.sort Tuple.compare (Relation.tuples r))
