module Cq = Paradb_query.Cq
module Atom = Paradb_query.Atom
module Constr = Paradb_query.Constr
module Term = Paradb_query.Term
module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Dictionary = Paradb_relational.Dictionary
module Tuple = Paradb_relational.Tuple
module Hypergraph = Paradb_hypergraph.Hypergraph
module Join_tree = Paradb_hypergraph.Join_tree
module Engine = Paradb_core.Engine
module Ineq = Paradb_core.Ineq
module Planner = Paradb_planner.Planner
module Compile = Paradb_eval.Compile
module Metrics = Paradb_telemetry.Metrics
module Clock = Paradb_telemetry.Clock

type engine_kind = Auto | Naive | Yannakakis | Fpt | Compiled

type engine = E_naive | E_yannakakis | E_comparisons | E_fpt | E_compiled

type t = {
  query : Cq.t;
  key : string;
  requested : engine_kind;
  engine : engine;
  acyclic : bool;
  neq_k : int;
  tree : Join_tree.t option;
  pplan : Planner.t;
  exec : Compile.exec option;
  count_exec : Compile.count_exec option;
  generation : int;
}

let m_compile_ns = Metrics.histogram "planner.compile_ns"

let engine_kind_of_string s =
  match String.lowercase_ascii s with
  | "auto" -> Some Auto
  | "naive" -> Some Naive
  | "yannakakis" -> Some Yannakakis
  | "fpt" -> Some Fpt
  | "compiled" -> Some Compiled
  | _ -> None

let engine_kind_name = function
  | Auto -> "auto"
  | Naive -> "naive"
  | Yannakakis -> "yannakakis"
  | Fpt -> "fpt"
  | Compiled -> "compiled"

let engine_name = function
  | E_naive -> "naive"
  | E_yannakakis -> "yannakakis"
  | E_comparisons -> "comparisons"
  | E_fpt -> "fpt"
  | E_compiled -> "compiled"

let cache_key kind q =
  engine_kind_name kind ^ "|" ^ Cq.cache_key q

(* Compiled pipelines are bound to one catalog snapshot, so their cache
   entries must be too: scope the key by database name and snapshot
   generation.  Interpreted plans would be reusable across snapshots, but
   one keying discipline for every entry keeps the invalidation story
   trivially auditable. *)
let scoped_key ~db ~generation kind q =
  Printf.sprintf "%s#%d|%s" db generation (cache_key kind q)

(* COUNT plans carry a different compiled artifact (the counting
   pipeline), so they live under their own keyspace — an EVAL and a
   COUNT of the same query never alias. *)
let scoped_count_key ~db ~generation kind q =
  Printf.sprintf "%s#%d|count|%s" db generation (cache_key kind q)

let constants q =
  List.concat_map Atom.constants q.Cq.body
  @ List.concat_map Constr.constants q.Cq.constraints
  @ List.filter_map
      (function Term.Const v -> Some v | Term.Var _ -> None)
      q.Cq.head

let analyze requested q =
  let nq = Cq.alpha_normalize q in
  let pplan = Planner.plan nq in
  let acyclic = pplan.Planner.classification = Planner.Acyclic in
  let engine =
    match requested with
    | Naive -> E_naive
    | Yannakakis -> E_yannakakis
    | Fpt -> E_fpt
    | Compiled -> E_compiled
    | Auto -> E_compiled
  in
  let neq_k =
    if engine = E_fpt && Cq.neq_only nq then (Ineq.partition nq).Ineq.k else 0
  in
  (* Pre-intern the query's constants: evaluation then only reads the
     dictionary, which is the discipline the engine's parallel trials
     already rely on (Dictionary's concurrency contract). *)
  List.iter (fun v -> ignore (Dictionary.intern Dictionary.global v)) (constants q);
  {
    query = nq;
    key = cache_key requested q;
    requested;
    engine;
    acyclic;
    neq_k;
    tree = pplan.Planner.tree;
    pplan;
    exec = None;
    count_exec = None;
    generation = -1;
  }

(* [prepare plan db ~generation] binds an [E_compiled] plan to a snapshot
   by compiling the pipeline now (other engines pass through).  The
   server calls this inside the cache-build closure, so a warm hit skips
   planning and compilation entirely. *)
let prepare ?budget plan db ~generation =
  match plan.engine with
  | E_compiled ->
      let t0 = Clock.now_ns () in
      let exec = Compile.compile ?budget plan.pplan db in
      Metrics.observe m_compile_ns (Clock.now_ns () - t0);
      { plan with exec = Some exec; generation }
  | _ -> plan

(* [prepare_count] is [prepare] for the counting pipeline. *)
let prepare_count ?budget plan db ~generation =
  match plan.engine with
  | E_compiled ->
      let t0 = Clock.now_ns () in
      let count_exec = Compile.compile_count ?budget plan.pplan db in
      Metrics.observe m_compile_ns (Clock.now_ns () - t0);
      { plan with count_exec = Some count_exec; generation }
  | _ -> plan

let evaluate ?budget ?family plan db q =
  match plan.engine with
  | E_naive -> Paradb_eval.Cq_naive.evaluate ?budget db q
  | E_yannakakis -> Paradb_yannakakis.Yannakakis.evaluate ?budget db q
  | E_comparisons -> Paradb_core.Comparisons.evaluate ?budget db q
  | E_fpt -> Engine.evaluate ?budget ?family db q
  | E_compiled -> (
      match plan.exec with
      | Some exec -> Compile.run ?budget exec
      | None ->
          (* Unprepared plan (one-shot CLI, tests): compile on the fly
             against the database at hand. *)
          Compile.run ?budget (Compile.compile ?budget plan.pplan db))

let count ?budget plan db q =
  match plan.engine with
  | E_naive -> Paradb_eval.Cq_naive.count ?budget db q
  | E_yannakakis -> Paradb_yannakakis.Yannakakis.count ?budget db q
  | E_compiled -> (
      match plan.count_exec with
      | Some cexec -> Compile.run_count ?budget cexec
      | None ->
          Compile.run_count ?budget (Compile.compile_count ?budget plan.pplan db))
  | E_fpt | E_comparisons ->
      invalid_arg
        (Printf.sprintf
           "COUNT: engine %s cannot count (use auto, naive, yannakakis, or \
            compiled)"
           (engine_name plan.engine))

let sorted_tuples r =
  List.map Tuple.to_string (List.sort Tuple.compare (Relation.tuples r))
