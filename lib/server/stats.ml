type t = {
  mutable connections : int;
  mutable queries : int;
  mutable errors : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  by_engine : (string, int * int) Hashtbl.t; (* engine -> queries, ns sum *)
  lock : Mutex.t;
}

let create () =
  {
    connections = 0;
    queries = 0;
    errors = 0;
    cache_hits = 0;
    cache_misses = 0;
    by_engine = Hashtbl.create 8;
    lock = Mutex.create ();
  }

let record t ~engine ~hit ~ns =
  Mutex.protect t.lock (fun () ->
      t.queries <- t.queries + 1;
      if hit then t.cache_hits <- t.cache_hits + 1
      else t.cache_misses <- t.cache_misses + 1;
      let n, total =
        Option.value (Hashtbl.find_opt t.by_engine engine) ~default:(0, 0)
      in
      Hashtbl.replace t.by_engine engine (n + 1, total + ns))

let incr_connections t =
  Mutex.protect t.lock (fun () -> t.connections <- t.connections + 1)

let incr_errors t = Mutex.protect t.lock (fun () -> t.errors <- t.errors + 1)

type snapshot = {
  connections : int;
  queries : int;
  errors : int;
  cache_hits : int;
  cache_misses : int;
  by_engine : (string * int * int) list;
}

let snapshot t =
  Mutex.protect t.lock (fun () ->
      {
        connections = t.connections;
        queries = t.queries;
        errors = t.errors;
        cache_hits = t.cache_hits;
        cache_misses = t.cache_misses;
        by_engine =
          List.sort compare
            (Hashtbl.fold
               (fun e (n, ns) acc -> (e, n, ns) :: acc)
               t.by_engine []);
      })

let report ~prefix t =
  let s = snapshot t in
  let line k v = Printf.sprintf "%s%s %d" prefix k v in
  [
    line "connections" s.connections;
    line "queries" s.queries;
    line "errors" s.errors;
    line "cache_hits" s.cache_hits;
    line "cache_misses" s.cache_misses;
  ]
  @ List.concat_map
      (fun (e, n, ns) ->
        [ line (Printf.sprintf "engine.%s.queries" e) n;
          line (Printf.sprintf "engine.%s.ns" e) ns ])
      s.by_engine
