(** The wire protocol of [paradb serve] — a line-based text codec.

    Requests are single lines; the first whitespace-separated token is a
    case-insensitive keyword:

    {v
      LOAD <db> <path>            load a fact file into catalog entry <db>
      FACT <db> <fact>            add one ground fact, e.g. edge(1, 2).
      BULK <db> <n>               cluster exchange framing: the next <n>
                                  lines are fact lines replacing entry <db>
      EVAL <db> <engine> <query>  evaluate; engine is auto | naive |
                                  yannakakis | fpt | compiled
      COUNT <db> <engine> <query> exact answer count (satisfying
                                  valuations, Nat semiring); payload is
                                  one line holding the bare count;
                                  engine is auto | naive | yannakakis |
                                  compiled
      GATHER <db> <query>         evaluate and answer the result as fact
                                  lines (the cluster reducer exchange)
      CHECK <query>               static analysis (no database touched)
      EXPLAIN <query>             physical plan: class, width, join order
                                  (no database touched)
      DIGEST <db>                 per-relation content fingerprint lines
                                  [relation <name> <arity> <rows> <crc32>]
                                  (replica comparison / REPAIR)
      REPAIR <db>                 coordinator-only: compare replica
                                  digests, re-ship divergent slices
      STATS                       session and server counters
      METRICS                     process telemetry snapshot as one JSON line
      QUIT                        close the session
    v}

    [BULK] is the only multi-line request: after the header line the
    session consumes exactly [n] fact lines (responses are withheld
    while collecting), then answers once for the whole batch.  The
    count is capped at {!max_payload_lines}.  [GATHER] payload lines
    are [name(v1, v2).] facts (see {!Paradb_query.Fact_format}), so
    values survive the round-trip that bare tuple lines would not.

    Responses are framed so a client never guesses where a reply ends:

    {v
      OK <n> <summary>            followed by exactly <n> payload lines
      ERR <message>               a single line
    v}

    Payload lines never start with [OK] or [ERR] (answers are tuples,
    [key value] counter pairs, or indented report lines), but the framing
    never relies on that: the [<n>] count is authoritative. *)

type request =
  | Load of { db : string; path : string }
  | Fact of { db : string; fact : string }
  | Bulk of { db : string; count : int }
  | Eval of { db : string; engine : string; query : string }
  | Count of { db : string; engine : string; query : string }
  | Gather of { db : string; query : string }
  | Check of string
  | Explain of string
  | Digest of string
  | Repair of string
  | Stats
  | Metrics
  | Quit

type response =
  | Ok_ of { summary : string; payload : string list }
  | Err of string

(** Lowercase verb keyword of a request, the label used in per-verb
    telemetry metric names ([server.verb.<verb>.ns]). *)
val verb_name : request -> string

(** [parse_request line] — [Error] carries a human-readable message
    (unknown keyword, missing operand).  Leading/trailing blanks are
    ignored. *)
val parse_request : string -> (request, string) result

(** Render a request as its wire line (inverse of {!parse_request}). *)
val request_to_line : request -> string

(** [write_response oc r] emits the framing line and the payload,
    flushing at the end. *)
val write_response : out_channel -> response -> unit

(** Defensive ceiling on the [OK <n>] payload count accepted by
    {!read_response} and on the [BULK <n>] fact count accepted by
    {!parse_request} — far above any legitimate result, far below what
    would let a hostile peer park either side in a counted loop. *)
val max_payload_lines : int

(** [read_response ic] reads one framed response; [None] on EOF.
    Raises [Failure] on a malformed framing line — including a negative
    or implausibly large ([> 10^7]) [OK-n] payload count — and on a
    mid-frame EOF (fewer than [n] payload lines before disconnect). *)
val read_response : in_channel -> response option

val response_to_lines : response -> string list
