(** Background delta-segment compaction: a domain that periodically
    folds any catalog store holding at least [min_segments] live
    segments ({!Catalog.compact_entry}), off the session hot path.

    Publishes only through the storage layer's atomic-rename + fsync
    protocol, so it is safe to [kill -9] mid-fold; progress is exposed
    as [storage.compaction.*] counters and a [storage.compaction.ns]
    histogram. *)

type t

(** [start ~catalog ~min_segments ~interval] spawns the sweeper domain;
    it scans every [interval] seconds. *)
val start : catalog:Catalog.t -> min_segments:int -> interval:float -> t

(** Signal the sweeper and join its domain (any in-flight fold
    completes first). *)
val stop : t -> unit

(** One synchronous sweep — fold every store at or past the threshold
    now, returning how many were folded.  Storage errors are counted on
    [storage.compaction.errors] and logged, never raised. *)
val run_once : catalog:Catalog.t -> min_segments:int -> int
