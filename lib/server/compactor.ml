(* Background delta-segment compaction.

   Incremental LOADs and FACTs append delta segments; reads union them
   with set semantics, so correctness never needs a fold — but every
   delta adds a segment open, a CRC pass and a dedup hash to the next
   cold start, and the STATS segment counts grow without bound.  This
   domain watches the catalog and folds any store that has accumulated
   [min_segments] live segments, off the session hot path.

   Crash safety is inherited, not implemented here: the fold publishes
   through the same write-segments → sync → swap-manifest protocol as
   every other mutation ([Store.fold_in_place]), so a kill -9 at any
   point leaves either the delta'd store or the folded one, and
   [Store.recover] quarantines whichever half-written files the death
   stranded.  The fold holds the catalog's IO lock (it must not
   interleave with a LOAD's manifest read-modify-write) but never the
   table lock, so EVALs are not stalled. *)

module Metrics = Paradb_telemetry.Metrics
module Clock = Paradb_telemetry.Clock

let m_runs = Metrics.counter "storage.compaction.runs"
let m_folded = Metrics.counter "storage.compaction.folded"
let m_segments_in = Metrics.counter "storage.compaction.segments_in"
let m_segments_out = Metrics.counter "storage.compaction.segments_out"
let m_bytes = Metrics.counter "storage.compaction.bytes_written"
let m_errors = Metrics.counter "storage.compaction.errors"
let m_ns = Metrics.histogram "storage.compaction.ns"

type t = {
  stop : bool Atomic.t;
  domain : unit Domain.t;
}

(* One scan: fold every entry at or past the threshold.  Also the
   synchronous entry point tests and [paradb compact]-style tools use;
   returns the number of stores folded.  Errors are counted and logged,
   never raised — one corrupt store must not kill the sweeper. *)
let run_once ~catalog ~min_segments =
  Metrics.incr m_runs;
  List.fold_left
    (fun folded (name, _segments) ->
      let t0 = Clock.now_ns () in
      match Catalog.compact_entry catalog name with
      | Ok (before, after, bytes) ->
          Metrics.incr m_folded;
          Metrics.incr ~by:before m_segments_in;
          Metrics.incr ~by:after m_segments_out;
          Metrics.incr ~by:bytes m_bytes;
          Metrics.observe m_ns (Clock.now_ns () - t0);
          folded + 1
      | Error msg ->
          Metrics.incr m_errors;
          Printf.eprintf "paradb: compaction of %s failed: %s\n%!" name msg;
          folded)
    0
    (Catalog.compact_candidates catalog ~min_segments)

let start ~catalog ~min_segments ~interval =
  let stop = Atomic.make false in
  let domain =
    Domain.spawn (fun () ->
        (* Sleep in short slices so [Compactor.stop] takes effect
           promptly even under a long interval. *)
        let rec pause left =
          if left > 0.0 && not (Atomic.get stop) then begin
            let slice = Float.min 0.05 left in
            Unix.sleepf slice;
            pause (left -. slice)
          end
        in
        while not (Atomic.get stop) do
          pause interval;
          if not (Atomic.get stop) then
            ignore (run_once ~catalog ~min_segments : int)
        done)
  in
  { stop; domain }

let stop t =
  Atomic.set t.stop true;
  Domain.join t.domain
