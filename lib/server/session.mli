(** One client session: request dispatch over the shared server state.

    A session owns no socket — the server (or a test) feeds it parsed
    {!Protocol.request}s and writes the returned {!Protocol.response}s
    wherever it likes.  All catalog/cache/stats state lives in
    {!shared}; a session adds only its private counters, reported by
    [STATS] next to the server-wide ones. *)

type shared = {
  catalog : Catalog.t;
  cache : Plan_cache.t;
  stats : Stats.t;  (** server-wide *)
  family : Paradb_core.Hashing.family option;
      (** fpt-engine hash family override; [None] = deterministic sweep *)
  limits : Guard.limits;
      (** resource governance: per-request deadline, result-row cap (the
          server loop applies the line and idle limits) *)
}

(** [limits] defaults to {!Guard.default_limits} (governance off).
    [data_dir] makes the catalog persist every [LOAD]/[FACT] to segment
    stores under it (see {!Catalog}); existing stores are attached by
    {!Server.start}, or explicitly via {!Catalog.attach}. *)
val make_shared :
  ?family:Paradb_core.Hashing.family ->
  ?limits:Guard.limits ->
  ?data_dir:string -> cache_capacity:int -> unit -> shared

type t

(** Registers the connection in the server-wide counters. *)
val create : shared -> t

(** [handle session req] — dispatch one request.  [`Quit] is returned
    for [QUIT] (after its farewell response); every error is an [Err]
    response, never an exception — except for deliberately injected
    {!Fault.Injected} faults, which propagate so the server loop's
    catch-all can be exercised.  An [EVAL]/[GATHER] that outlives
    [limits.deadline_ns] answers [ERR deadline-exceeded after <ns>ns]
    and bumps [server.deadline_exceeded]; a result wider than
    [limits.max_rows] is truncated, marked by [truncated=true] in the
    summary (the [rows=] field keeps the full cardinality).

    The response is [None] exactly while a [BULK] frame is open: a
    [BULK db n] header with [n > 0] arms fact-collection mode and the
    batch is answered once, on its [n]-th fact line. *)
val handle :
  t -> Protocol.request -> Protocol.response option * [ `Continue | `Quit ]

(** Convenience for tests and the server loop: parse a raw line and
    dispatch it ([Err] on parse failure).  Mid-[BULK] the line is
    consumed as a fact line instead of being parsed as a request. *)
val handle_line :
  t -> string -> Protocol.response option * [ `Continue | `Quit ]
