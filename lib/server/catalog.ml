module Database = Paradb_relational.Database
module Source = Paradb_query.Source

type entry = { db : Database.t; generation : int }

type t = {
  table : (string, entry) Hashtbl.t;
  lock : Mutex.t;
  mutable next_generation : int;
}

let create () = { table = Hashtbl.create 16; lock = Mutex.create (); next_generation = 0 }

(* Every mutation gets a fresh generation from a catalog-wide counter, so
   a (name, generation) pair identifies one immutable snapshot for the
   catalog's lifetime — the token the plan cache keys compiled pipelines
   on. *)
let fresh_generation cat =
  let g = cat.next_generation in
  cat.next_generation <- g + 1;
  g

let set cat name db =
  Mutex.protect cat.lock (fun () ->
      Hashtbl.replace cat.table name { db; generation = fresh_generation cat })

let find cat name =
  Mutex.protect cat.lock (fun () ->
      Option.map
        (fun e -> (e.db, e.generation))
        (Hashtbl.find_opt cat.table name))

let add_fact cat name fact =
  (* parse_facts accepts any fact-file fragment, so one ill-formed or
     non-ground "fact" fails here rather than corrupting the entry *)
  match Source.parse_facts fact with
  | Error e -> Error e
  | Ok additions -> (
      try
      Mutex.protect cat.lock (fun () ->
          let base =
            match Hashtbl.find_opt cat.table name with
            | Some e -> e.db
            | None -> Database.empty
          in
          let merged =
            List.fold_left
              (fun db r ->
                match Database.find_opt db (Paradb_relational.Relation.name r) with
                | None -> Database.add r db
                | Some existing ->
                    Database.add (Paradb_relational.Relation.union existing r) db)
              base (Database.relations additions)
          in
          Hashtbl.replace cat.table name
            { db = merged; generation = fresh_generation cat };
          Ok merged)
      with Invalid_argument msg ->
        (* e.g. an arity clash with the relation already in the entry *)
        Error msg)

let entries cat =
  Mutex.protect cat.lock (fun () ->
      Hashtbl.fold
        (fun name e acc -> (name, Database.size e.db) :: acc)
        cat.table [])
  |> List.sort compare
