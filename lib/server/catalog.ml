module Database = Paradb_relational.Database
module Source = Paradb_query.Source

type t = { table : (string, Database.t) Hashtbl.t; lock : Mutex.t }

let create () = { table = Hashtbl.create 16; lock = Mutex.create () }

let set cat name db =
  Mutex.protect cat.lock (fun () -> Hashtbl.replace cat.table name db)

let find cat name =
  Mutex.protect cat.lock (fun () -> Hashtbl.find_opt cat.table name)

let add_fact cat name fact =
  (* parse_facts accepts any fact-file fragment, so one ill-formed or
     non-ground "fact" fails here rather than corrupting the entry *)
  match Source.parse_facts fact with
  | Error e -> Error e
  | Ok additions -> (
      try
      Mutex.protect cat.lock (fun () ->
          let base =
            Option.value (Hashtbl.find_opt cat.table name) ~default:Database.empty
          in
          let merged =
            List.fold_left
              (fun db r ->
                match Database.find_opt db (Paradb_relational.Relation.name r) with
                | None -> Database.add r db
                | Some existing ->
                    Database.add (Paradb_relational.Relation.union existing r) db)
              base (Database.relations additions)
          in
          Hashtbl.replace cat.table name merged;
          Ok merged)
      with Invalid_argument msg ->
        (* e.g. an arity clash with the relation already in the entry *)
        Error msg)

let entries cat =
  Mutex.protect cat.lock (fun () ->
      Hashtbl.fold (fun name db acc -> (name, Database.size db) :: acc) cat.table [])
  |> List.sort compare
