module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Source = Paradb_query.Source
module Store = Paradb_storage.Store
module Segment = Paradb_storage.Segment

type entry = { db : Database.t; generation : int }

(* Two locks with distinct jobs:

   [lock]  protects the in-memory table and generation counter.  Held
           only for table reads and swaps — microseconds, never across
           disk IO, so readers are never blocked behind a write.

   [io]    serializes every disk mutation of the data dir (persist on
           LOAD/FACT, the background compactor's fold).  Manifest
           read-modify-write must not interleave, and a fold must not
           race an append.  Always acquired BEFORE [lock] when both are
           needed.

   Before the background compactor existed one lock covered both; that
   was fine while the longest hold was a delta append, but a fold of a
   10M-tuple store runs for seconds and must not stall EVALs. *)
type t = {
  table : (string, entry) Hashtbl.t;
  lock : Mutex.t;
  io : Mutex.t;
  mutable next_generation : int;
  data_dir : string option;
}

let create ?data_dir () =
  {
    table = Hashtbl.create 16;
    lock = Mutex.create ();
    io = Mutex.create ();
    next_generation = 0;
    data_dir;
  }

let data_dir cat = cat.data_dir

(* Directory names come from protocol tokens; keep them from escaping
   the data dir (or colliding) by the same sanitization segment files
   use. *)
let dir_for cat name =
  Option.map
    (fun d -> Filename.concat d (Store.sanitize_name name))
    cat.data_dir

(* Every mutation gets a fresh generation from a catalog-wide counter, so
   a (name, generation) pair identifies one immutable snapshot for the
   catalog's lifetime — the token the plan cache keys compiled pipelines
   on. *)
let fresh_generation cat =
  let g = cat.next_generation in
  cat.next_generation <- g + 1;
  g

let set cat name db =
  Mutex.protect cat.lock (fun () ->
      Hashtbl.replace cat.table name { db; generation = fresh_generation cat })

let find cat name =
  Mutex.protect cat.lock (fun () ->
      Option.map
        (fun e -> (e.db, e.generation))
        (Hashtbl.find_opt cat.table name))

let merge base additions =
  List.fold_left
    (fun db r ->
      match Database.find_opt db (Relation.name r) with
      | None -> Database.add r db
      | Some existing -> Database.add (Relation.union existing r) db)
    base (Database.relations additions)

(* Persistence failures surface as [Error "storage: ..."]; the entry is
   left as it was, so a failed write never publishes a snapshot the disk
   does not hold. *)
let wrap_storage f =
  match f () with
  | v -> Ok v
  | exception Segment.Corrupt msg -> Error ("storage: " ^ msg)
  | exception Sys_error msg -> Error ("storage: " ^ msg)
  | exception Unix.Unix_error (e, _, _) ->
      Error ("storage: " ^ Unix.error_message e)
  | exception Paradb_storage.Io_fault.Crash msg ->
      (* an injected crash point fired mid-write: the publish never
         happened, so the entry stays as it was — exactly the contract a
         real kill would leave, minus the dead process *)
      Error ("storage: " ^ msg)

(* Persist [additions] under the entry's segment directory: the first
   write compacts a fresh store, every later one appends delta
   segments.  Runs under the io lock — manifest read-modify-write must
   not interleave with another write or a compaction fold. *)
let persist ~dir additions =
  if Store.is_store dir then
    List.iter (fun r -> Store.append ~dir r) (Database.relations additions)
  else ignore (Store.compact ~dir additions)

(* A durable mutation, two-phase: persist under [io] (slow, disk), then
   merge-and-swap under [lock] (fast, memory).  The merge is validated
   BEFORE the disk write — an arity clash must not leave segments
   behind — and revalidated inside the swap, since another writer may
   have changed the base while we held only [io].  Both writers hold
   [io] for their whole mutation, so in practice the base cannot change
   under us; the revalidation is belt and braces. *)
let durable_mutation cat ~dir ~name ~additions ~mode_of =
  Mutex.protect cat.io (fun () ->
      let base0 =
        Mutex.protect cat.lock (fun () ->
            Option.map (fun e -> e.db) (Hashtbl.find_opt cat.table name))
      in
      let mode = mode_of base0 in
      let base = Option.value base0 ~default:Database.empty in
      match
        try Ok (merge base additions) with Invalid_argument msg -> Error msg
      with
      | Error _ as e -> e
      | Ok merged -> (
          match wrap_storage (fun () -> persist ~dir additions) with
          | Error _ as e -> e
          | Ok () ->
              Mutex.protect cat.lock (fun () ->
                  Hashtbl.replace cat.table name
                    { db = merged; generation = fresh_generation cat });
              Ok (merged, mode)))

let load cat name additions =
  match dir_for cat name with
  | None ->
      set cat name additions;
      Ok (additions, `Replaced)
  | Some dir ->
      durable_mutation cat ~dir ~name ~additions ~mode_of:(function
        | Some _ -> `Appended
        | None -> `Created)

let add_fact cat name fact =
  (* parse_facts accepts any fact-file fragment, so one ill-formed or
     non-ground "fact" fails here rather than corrupting the entry *)
  match Source.parse_facts fact with
  | Error e -> Error e
  | Ok additions -> (
      match dir_for cat name with
      | Some dir ->
          Result.map fst
            (durable_mutation cat ~dir ~name ~additions ~mode_of:(fun _ -> ()))
      | None -> (
          try
            Mutex.protect cat.lock (fun () ->
                let base =
                  match Hashtbl.find_opt cat.table name with
                  | Some e -> e.db
                  | None -> Database.empty
                in
                let merged = merge base additions in
                Hashtbl.replace cat.table name
                  { db = merged; generation = fresh_generation cat };
                Ok merged)
          with Invalid_argument msg ->
            (* e.g. an arity clash with the relation already in the entry *)
            Error msg))

(* The cluster exchange framing: replace entry [name] with a parsed
   fact-file fragment in one generation bump.  Deliberately in-memory
   only — a BULK carries one shard's slice of a snapshot the
   coordinator already holds durably; shard-local persistence of
   exchange traffic would just duplicate it. *)
let bulk_set cat name text =
  match Source.parse_facts text with
  | Error e -> Error e
  | Ok db ->
      set cat name db;
      Ok db

let attach cat =
  match cat.data_dir with
  | None -> []
  | Some root ->
      if not (Sys.file_exists root && Sys.is_directory root) then []
      else
        Sys.readdir root |> Array.to_list |> List.sort compare
        |> List.filter_map (fun name ->
               let dir = Filename.concat root name in
               if Store.is_store dir then begin
                 let db = Store.open_dir dir in
                 set cat name db;
                 Some (name, Database.size db)
               end
               else None)

let entries cat =
  Mutex.protect cat.lock (fun () ->
      Hashtbl.fold
        (fun name e acc -> (name, Database.size e.db) :: acc)
        cat.table [])
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Background compaction support.  The fold reorganizes the disk layout
   only — every relation's visible rows are unchanged — so the
   in-memory snapshot, its generation, and the plan cache all stay
   valid; nothing under [lock] is touched. *)

let segment_count cat name =
  match dir_for cat name with
  | Some dir when Store.is_store dir -> (
      match Store.entries dir with
      | es -> Some (List.length es)
      | exception (Segment.Corrupt _ | Sys_error _) -> None)
  | _ -> None

(* Entries whose store has accumulated at least [min_segments] segments
   AND holds more segments than relations, worst first.  The second
   condition is what lets the sweeper converge: a freshly folded store
   has exactly one segment per relation, and without it any store with
   [min_segments] relations would be refolded on every scan. *)
let compact_candidates cat ~min_segments =
  let names =
    Mutex.protect cat.lock (fun () ->
        Hashtbl.fold (fun name _ acc -> name :: acc) cat.table [])
  in
  List.filter_map
    (fun name ->
      match dir_for cat name with
      | Some dir when Store.is_store dir -> (
          match Store.entries dir with
          | es ->
              let n = List.length es in
              let rels =
                List.sort_uniq compare
                  (List.map (fun e -> e.Store.relation) es)
              in
              if n >= min_segments && n > List.length rels then Some (name, n)
              else None
          | exception (Segment.Corrupt _ | Sys_error _) -> None)
      | _ -> None)
    (List.sort compare names)
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let compact_entry cat name =
  match dir_for cat name with
  | None -> Error "storage: no data dir"
  | Some dir ->
      Mutex.protect cat.io (fun () ->
          if Store.is_store dir then
            wrap_storage (fun () -> Store.fold_in_place ~dir)
          else Error (Printf.sprintf "storage: %s is not a store" dir))

type entry_stats = {
  name : string;
  tuples : int;
  generation : int;
  segments : int option;
}

let m_segments name =
  Paradb_telemetry.Metrics.gauge (Printf.sprintf "store.%s.segments" name)

(* Per-entry operator view: snapshot generation always, on-disk segment
   count when the entry owns a store directory (the delta-accumulation
   signal `paradb compact` folds away).  Counting re-reads the manifest,
   which is a few lines — STATS is not a hot path.  Each count is also
   published as a [store.<name>.segments] high-watermark gauge so
   METRICS scrapes see delta growth between STATS calls. *)
let entries_stats cat =
  let snap =
    Mutex.protect cat.lock (fun () ->
        Hashtbl.fold
          (fun name e acc -> (name, Database.size e.db, e.generation) :: acc)
          cat.table [])
  in
  List.sort compare snap
  |> List.map (fun (name, tuples, generation) ->
         let segments = segment_count cat name in
         Option.iter
           (fun n -> Paradb_telemetry.Metrics.set_max (m_segments name) n)
           segments;
         { name; tuples; generation; segments })
