(** Monotone counters, kept per session and globally for the server.

    Everything is mutated under one mutex ({!record} and friends) and
    snapshotted by {!report}; the [STATS] response concatenates the
    session report with the server-wide one, so tests and the bench can
    assert cache behavior — not just liveness — over the wire. *)

type t

val create : unit -> t

(** One query served: which engine ran, whether the plan cache hit, and
    the evaluation latency in nanoseconds. *)
val record : t -> engine:string -> hit:bool -> ns:int -> unit

val incr_connections : t -> unit
val incr_errors : t -> unit

type snapshot = {
  connections : int;
  queries : int;
  errors : int;
  cache_hits : int;
  cache_misses : int;
  by_engine : (string * int * int) list;
      (** engine, queries served, summed latency in ns — sorted by name *)
}

val snapshot : t -> snapshot

(** Render as [key value] lines (the [STATS] payload format):
    [connections], [queries], [errors], [cache_hits], [cache_misses],
    then per engine [engine.<name>.queries] and [engine.<name>.ns]. *)
val report : prefix:string -> t -> string list
