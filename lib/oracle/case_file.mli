(** Replayable [.case] counterexample files.

    The format is line-oriented and human-editable: [#] comments (the
    writer records seed, case class and the two disagreeing outcomes),
    an [engine <name>] line, a [query <cq>] or [sentence <fo>] line in
    the repo's standard query syntax, then a [facts] marker followed by
    the database as fact lines — exactly what [LOAD] accepts. *)

type t = {
  engine : string;
  shape : Gen.shape;
  db : Paradb_relational.Database.t;
}

(** Write the shrunk instance under [dir] (created if missing) as
    [case-s<seed>-i<index>-<engine>.case]; returns the path. *)
val write :
  dir:string -> engine:string -> expected:string -> got:string ->
  Gen.instance -> string

(** Parse a [.case] file.  Raises [Failure] on a malformed file and
    lets {!Paradb_query.Parser.Parse_error} propagate for bad query or
    fact syntax. *)
val read : string -> t

val to_instance : t -> Gen.instance
