(** A live [paradb serve] instance as an oracle engine: every case is
    round-tripped over the wire protocol (LOAD of a fact file, then an
    EVAL with the [auto] engine) and the framed payload — already the
    canonical sorted answer set — is compared against the reference. *)

type t

(** Start an in-process server on an ephemeral port and connect. *)
val start : unit -> t

val stop : t -> unit

(** [eval t db q] — sorted answer rows, or [Error] carrying the server's
    [ERR] reply. *)
val eval :
  t -> Paradb_relational.Database.t -> Paradb_query.Cq.t ->
  (string list, string) result

(** [count t db q] — the COUNT verb's bare-count payload, parsed. *)
val count :
  t -> Paradb_relational.Database.t -> Paradb_query.Cq.t ->
  (int, string) result

(** A live sharded cluster as an oracle engine: [shards] in-process
    servers behind a {!Paradb_cluster.Coordinator} front end, driven
    through the same LOAD/EVAL round-trip as {!eval}.  Every case
    exercises partitioning, the BULK exchange, scatter/exchange
    strategy choice and the gather merge; under [PARADB_FAULTS]
    [shard_loss]/[straggler_delay] it additionally exercises redial and
    replica failover — in every case the payload must stay bit-for-bit
    equal to the single-node reference. *)
type cluster

val start_cluster : ?shards:int -> ?replicas:int -> unit -> cluster
val stop_cluster : cluster -> unit

val eval_cluster :
  cluster -> Paradb_relational.Database.t -> Paradb_query.Cq.t ->
  (string list, string) result

(** [count_cluster t db q] — COUNT through the coordinator (per-shard
    partial counts summed under scatter, reducer exchange otherwise);
    the payload must parse to the same integer a single node answers. *)
val count_cluster :
  cluster -> Paradb_relational.Database.t -> Paradb_query.Cq.t ->
  (int, string) result
