(** A live [paradb serve] instance as an oracle engine: every case is
    round-tripped over the wire protocol (LOAD of a fact file, then an
    EVAL with the [auto] engine) and the framed payload — already the
    canonical sorted answer set — is compared against the reference. *)

type t

(** Start an in-process server on an ephemeral port and connect. *)
val start : unit -> t

val stop : t -> unit

(** [eval t db q] — sorted answer rows, or [Error] carrying the server's
    [ERR] reply. *)
val eval :
  t -> Paradb_relational.Database.t -> Paradb_query.Cq.t ->
  (string list, string) result
