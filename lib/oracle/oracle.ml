module Metrics = Paradb_telemetry.Metrics
module Mutate = Paradb_telemetry.Mutate

let m_cases = Metrics.counter "oracle.cases"
let m_comparisons = Metrics.counter "oracle.comparisons"
let m_divergences = Metrics.counter "oracle.divergences"

type config = {
  seed : int;
  cases : int;
  max_vars : int;
  max_tuples : int;
  engines : string list option;
  out_dir : string option;
}

let default_config =
  {
    seed = 42;
    cases = 500;
    max_vars = 8;
    max_tuples = 16;
    engines = None;
    out_dir = None;
  }

type divergence = {
  engine : string;
  index : int;
  label : string;
  expected : Engines.outcome;
  got : Engines.outcome;
  shrunk : Gen.instance;
  shrink_steps : int;
  case_path : string option;
}

type report = {
  cases_run : int;
  comparisons : int;
  divergences : divergence list;
  shrink_steps : int;
}

let validate_engine_names names =
  List.iter
    (fun n ->
      if not (List.mem n Engines.names) then
        invalid_arg
          (Printf.sprintf "unknown engine %S (known: %s)" n
             (String.concat ", " Engines.names)))
    names

(* Per-query trial fan-out is pure overhead on thousands of tiny
   instances; keep the engine sequential unless the caller insists. *)
let pin_domains () =
  if Sys.getenv_opt "PARADB_DOMAINS" = None then Unix.putenv "PARADB_DOMAINS" "1"

let wanted cfg name =
  match cfg.engines with None -> true | Some names -> List.mem name names

(* Rerun one engine against the reference on a candidate instance — the
   shrinker's divergence predicate.  Outcomes that move out of the
   engine's applicability (a merge making the query cyclic, say) read as
   agreement, so shrinking never wanders outside the engine's domain. *)
let check_one (engine : Engines.t) inst =
  let reference = Engines.reference engine.mode inst in
  let got = engine.run inst in
  (reference, got, Engines.agrees ~mode:engine.mode ~reference got)

(* The contracts share three reference computations (Exact and Subset
   compare against the same answer set); memoize per instance so a
   case fuzzed against many engines runs each brute-force pass once —
   and the count/cost references only when a matching engine is in
   play. *)
let ref_slot (mode : Engines.mode) =
  match mode with
  | Engines.Exact | Engines.Subset -> 0
  | Engines.Exact_count -> 1
  | Engines.Exact_cost -> 2

let run ?(progress = fun _ -> ()) cfg =
  Option.iter validate_engine_names cfg.engines;
  Mutate.validate ();
  pin_domains ();
  let with_serve = wanted cfg "serve" || wanted cfg "count-serve" in
  let serve = if with_serve then Some (Serve.start ()) else None in
  let with_cluster = wanted cfg "cluster" || wanted cfg "count-cluster" in
  let cluster = if with_cluster then Some (Serve.start_cluster ()) else None in
  Fun.protect ~finally:(fun () ->
      Option.iter Serve.stop serve;
      Option.iter Serve.stop_cluster cluster)
  @@ fun () ->
  let engines =
    List.filter (fun (e : Engines.t) -> wanted cfg e.name)
      (Engines.all ?serve ?cluster ())
  in
  let divergences = ref [] in
  let comparisons = ref 0 in
  let shrink_total = ref 0 in
  for index = 0 to cfg.cases - 1 do
    progress index;
    Metrics.incr m_cases;
    let inst =
      Gen.instance ~seed:cfg.seed ~index ~max_vars:cfg.max_vars
        ~max_tuples:cfg.max_tuples
    in
    let refs = Array.make 3 None in
    let reference_for mode =
      let slot = ref_slot mode in
      match refs.(slot) with
      | Some r -> r
      | None ->
          let r = Engines.reference mode inst in
          refs.(slot) <- Some r;
          r
    in
    List.iter
      (fun (engine : Engines.t) ->
        let got = engine.run inst in
        if got <> Engines.Not_applicable then begin
          incr comparisons;
          Metrics.incr m_comparisons;
          let reference = reference_for engine.mode in
          if not (Engines.agrees ~mode:engine.mode ~reference got) then begin
            Metrics.incr m_divergences;
            let diverges cand =
              let _, _, ok = check_one engine cand in
              not ok
            in
            let shrunk, steps = Shrink.minimize ~diverges inst in
            shrink_total := !shrink_total + steps;
            let expected, got =
              let reference, got, _ = check_one engine shrunk in
              (reference, got)
            in
            let case_path =
              Option.map
                (fun dir ->
                  Case_file.write ~dir ~engine:engine.name
                    ~expected:(Engines.outcome_to_string expected)
                    ~got:(Engines.outcome_to_string got) shrunk)
                cfg.out_dir
            in
            divergences :=
              {
                engine = engine.name;
                index;
                label = inst.Gen.label;
                expected;
                got;
                shrunk;
                shrink_steps = steps;
                case_path;
              }
              :: !divergences
          end
        end)
      engines
  done;
  {
    cases_run = cfg.cases;
    comparisons = !comparisons;
    divergences = List.rev !divergences;
    shrink_steps = !shrink_total;
  }

(* Replay a [.case] file: rebuild the instance, rerun its engine (and,
   for "serve", a fresh in-process server) against the reference. *)
let replay path =
  Mutate.validate ();
  pin_domains ();
  let case = Case_file.read path in
  let inst = Case_file.to_instance case in
  let with_serve =
    List.mem case.Case_file.engine [ "serve"; "count-serve" ]
  in
  let serve = if with_serve then Some (Serve.start ()) else None in
  let with_cluster =
    List.mem case.Case_file.engine [ "cluster"; "count-cluster" ]
  in
  let cluster = if with_cluster then Some (Serve.start_cluster ()) else None in
  Fun.protect ~finally:(fun () ->
      Option.iter Serve.stop serve;
      Option.iter Serve.stop_cluster cluster)
  @@ fun () ->
  match
    List.find_opt
      (fun (e : Engines.t) -> e.name = case.Case_file.engine)
      (Engines.all ?serve ?cluster ())
  with
  | None ->
      invalid_arg
        (Printf.sprintf "case file names unknown engine %S"
           case.Case_file.engine)
  | Some engine ->
      let reference, got, ok = check_one engine inst in
      (inst, engine.name, reference, got, ok)
