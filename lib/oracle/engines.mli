(** The engine registry of the differential oracle: every evaluation
    path in the repo, wrapped behind one interface with an applicability
    guard and a comparison contract.

    Contracts: [Exact] engines must reproduce the reference answer set
    (or satisfiability bit) bit-for-bit; [Subset] engines are allowed to
    miss answers but never to invent them — the contract of the
    Monte-Carlo [Random_trials] coloring family, whose error is
    one-sided.  [Exact_count] engines answer the number of satisfying
    valuations (Nat semiring) and must match the brute-force counting
    reference exactly; [Exact_cost] engines answer the min-cost witness
    (Tropical semiring over deterministic per-row weights) and must
    match a brute-force minimum that hardcodes [min]. *)

type mode = Exact | Subset | Exact_count | Exact_cost

type outcome =
  | Rows of string list  (** canonical sorted tuple strings *)
  | Sat of bool
  | Count of int  (** satisfying valuations, Nat semiring *)
  | Cost of int option  (** min witness cost; [None] when unsatisfiable *)
  | Not_applicable  (** instance outside the engine's guard — skipped *)
  | Engine_error of string  (** raised past the guard — a finding *)

type t = {
  name : string;
  mode : mode;
  run : Gen.instance -> outcome;
}

(** The reference path for a contract: naive backtracking CQ evaluation
    ({!Paradb_eval.Cq_naive}) / active-domain FO evaluation for the
    set-semantics contracts, [Cq_naive.count] for [Exact_count], a
    brute-force minimum over all bindings for [Exact_cost]. *)
val reference : mode -> Gen.instance -> outcome

(** [agrees ~mode ~reference got] — does [got] honor its contract
    against the reference?  [Not_applicable] always agrees;
    [Engine_error] never does. *)
val agrees : mode:mode -> reference:outcome -> outcome -> bool

(** All registered engines; the live-server round-trip engines
    (["serve"], ["count-serve"]) are included only when [serve] is
    given, the sharded-cluster engines (["cluster"], ["count-cluster"])
    only when [cluster] is. *)
val all : ?serve:Serve.t -> ?cluster:Serve.cluster -> unit -> t list

(** Every acceptable engine name, including the serve- and
    cluster-backed ones. *)
val names : string list

val outcome_to_string : outcome -> string
