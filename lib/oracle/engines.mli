(** The engine registry of the differential oracle: every evaluation
    path in the repo, wrapped behind one interface with an applicability
    guard and a comparison contract.

    Contracts: [Exact] engines must reproduce the reference answer set
    (or satisfiability bit) bit-for-bit; [Subset] engines are allowed to
    miss answers but never to invent them — the contract of the
    Monte-Carlo [Random_trials] coloring family, whose error is
    one-sided. *)

type mode = Exact | Subset

type outcome =
  | Rows of string list  (** canonical sorted tuple strings *)
  | Sat of bool
  | Not_applicable  (** instance outside the engine's guard — skipped *)
  | Engine_error of string  (** raised past the guard — a finding *)

type t = {
  name : string;
  mode : mode;
  run : Gen.instance -> outcome;
}

(** The reference path: naive backtracking CQ evaluation
    ({!Paradb_eval.Cq_naive}) for queries, active-domain FO evaluation
    for sentences. *)
val reference : Gen.instance -> outcome

(** [agrees ~mode ~reference got] — does [got] honor its contract
    against the reference?  [Not_applicable] always agrees;
    [Engine_error] never does. *)
val agrees : mode:mode -> reference:outcome -> outcome -> bool

(** All registered engines; the live-server round-trip engine is
    included only when [serve] is given, the sharded-cluster engine
    only when [cluster] is. *)
val all : ?serve:Serve.t -> ?cluster:Serve.cluster -> unit -> t list

(** Every acceptable engine name, including ["serve"] and ["cluster"]. *)
val names : string list

val outcome_to_string : outcome -> string
