module Cq = Paradb_query.Cq
module Term = Paradb_query.Term
module Constr = Paradb_query.Constr
module Atom = Paradb_query.Atom
module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Value = Paradb_relational.Value
module Metrics = Paradb_telemetry.Metrics

let m_steps = Metrics.counter "oracle.shrink_steps"

(* Rebuild a database applying [f] to every cell. *)
let map_db f db =
  Database.of_relations
    (List.map
       (fun r ->
         Relation.create ~name:(Relation.name r)
           ~schema:(Relation.schema_list r)
           (List.map (Array.map f) (Relation.tuples r)))
       (Database.relations db))

(* Candidate moves.  Every move must keep the instance well-formed:
   [Cq.make] re-validates safety (head and constraint variables bound in
   the body), so moves that would break it are simply skipped; relations
   are never emptied (a fact file cannot express an empty relation, so a
   replayed [.case] must not need one). *)

let remove_nth i xs = List.filteri (fun j _ -> j <> i) xs

let rebuild q ?(head = q.Cq.head) ?(constraints = q.Cq.constraints)
    ?(body = q.Cq.body) () =
  match Cq.make ~name:q.Cq.name ~constraints ~head body with
  | q' -> Some q'
  | exception Invalid_argument _ -> None

let drop_constraints q =
  List.mapi
    (fun i _ -> rebuild q ~constraints:(remove_nth i q.Cq.constraints) ())
    q.Cq.constraints
  |> List.filter_map Fun.id

let drop_atoms q =
  if List.length q.Cq.body <= 1 then []
  else
    List.mapi (fun i _ -> rebuild q ~body:(remove_nth i q.Cq.body) ()) q.Cq.body
    |> List.filter_map Fun.id

let merge_vars q =
  let vars = Cq.vars q in
  List.concat_map
    (fun x ->
      List.filter_map
        (fun y ->
          if x = y then None
          else
            match Cq.rename (fun v -> if v = x then y else v) q with
            | q' -> Some q'
            | exception Invalid_argument _ -> None)
        vars)
    vars

let query_moves inst q =
  List.map
    (fun q' -> { inst with Gen.shape = Gen.Query q' })
    (drop_constraints q @ drop_atoms q @ merge_vars q)

let drop_tuples inst =
  let db = inst.Gen.db in
  List.concat_map
    (fun r ->
      let tuples = Relation.tuples r in
      if List.length tuples <= 1 then []
      else
        List.mapi
          (fun i _ ->
            let r' =
              Relation.create ~name:(Relation.name r)
                ~schema:(Relation.schema_list r)
                (remove_nth i tuples)
            in
            let db' =
              Database.of_relations
                (List.map
                   (fun s ->
                     if Relation.name s = Relation.name r then r' else s)
                   (Database.relations db))
            in
            { inst with Gen.db = db' })
          tuples)
    (Database.relations db)

(* Collapse the value domain: try rewriting each non-minimal value to
   the minimum, consistently across the database and the query's
   constants. *)
let merge_values inst =
  let values = Value.Set.elements (Database.domain inst.Gen.db) in
  match values with
  | [] | [ _ ] -> []
  | lo :: rest ->
      List.filter_map
        (fun v ->
          let subst c = if Value.equal c v then lo else c in
          let db' = map_db subst inst.Gen.db in
          let map_term = function
            | Term.Const c -> Term.Const (subst c)
            | t -> t
          in
          let shape' =
            match inst.Gen.shape with
            | Gen.Query q -> (
                let body =
                  List.map
                    (fun a ->
                      Atom.make a.Atom.rel (List.map map_term a.Atom.args))
                    q.Cq.body
                and head = List.map map_term q.Cq.head
                and constraints =
                  List.map
                    (fun c ->
                      {
                        Constr.op = c.Constr.op;
                        lhs = map_term c.Constr.lhs;
                        rhs = map_term c.Constr.rhs;
                      })
                    q.Cq.constraints
                in
                match Cq.make ~name:q.Cq.name ~constraints ~head body with
                | q' -> Some (Gen.Query q')
                | exception Invalid_argument _ -> None)
            | Gen.Sentence _ as s -> Some s
          in
          Option.map
            (fun shape' -> { inst with Gen.db = db'; Gen.shape = shape' })
            shape')
        rest

let candidates inst =
  let shape_moves =
    match inst.Gen.shape with
    | Gen.Query q -> query_moves inst q
    | Gen.Sentence _ -> []
  in
  shape_moves @ drop_tuples inst @ merge_values inst

(* Greedy first-improvement descent to a fixpoint: any candidate that
   still diverges becomes the new instance.  [max_steps] is a backstop,
   not a tuning knob — instances are a handful of atoms and tuples. *)
let minimize ?(max_steps = 1_000) ~diverges inst =
  let rec go inst steps =
    if steps >= max_steps then (inst, steps)
    else
      match List.find_opt diverges (candidates inst) with
      | None -> (inst, steps)
      | Some smaller ->
          Metrics.incr m_steps;
          go smaller (steps + 1)
  in
  go inst 0
