module Cq = Paradb_query.Cq
module Fo = Paradb_query.Fo
module Atom = Paradb_query.Atom
module Rule = Paradb_query.Rule
module Program = Paradb_query.Program
module Binding = Paradb_query.Binding
module Relation = Paradb_relational.Relation
module Tuple = Paradb_relational.Tuple
module Semiring = Paradb_relational.Semiring
module Hypergraph = Paradb_hypergraph.Hypergraph
module Cq_naive = Paradb_eval.Cq_naive
module Join_eval = Paradb_eval.Join_eval
module Fo_naive = Paradb_eval.Fo_naive
module Yannakakis = Paradb_yannakakis.Yannakakis
module Engine = Paradb_core.Engine
module Comparisons = Paradb_core.Comparisons
module Ineq = Paradb_core.Ineq
module Hashing = Paradb_core.Hashing
module Datalog = Paradb_datalog.Engine

type mode = Exact | Subset | Exact_count | Exact_cost

type outcome =
  | Rows of string list
  | Sat of bool
  | Count of int
  | Cost of int option
  | Not_applicable
  | Engine_error of string

type t = {
  name : string;
  mode : mode;
  run : Gen.instance -> outcome;
}

(* Canonical answer set: sorted tuple strings — the same serialization
   the server frames in EVAL payloads. *)
let canon rel =
  List.map Tuple.to_string (List.sort Tuple.compare (Relation.tuples rel))

let acyclic q = Hypergraph.is_acyclic (Hypergraph.of_cq q)

(* Deterministic per-row weight for the Tropical (min-cost witness)
   engines: a small positive hash of the atom index and the row's
   values over the atom's variables.  Value-based rather than
   code-based, so the engine side (pricing reduced code rows) and the
   brute-force reference (pricing bindings) agree in any process,
   replay included. *)
let cost_of_values i values =
  List.fold_left
    (fun acc v -> ((acc * 131) + Hashtbl.hash v) land 0x3f)
    (17 + (31 * i))
    values
  + 1

(* Engine side: [Yannakakis.aggregate] annotates the semijoin-reduced
   atom relations, whose schema is the atom's variables in [Atom.vars]
   order — decode the row back to values and price it. *)
let tropical_weight i rel row =
  cost_of_values i
    (Array.to_list (Array.map (Relation.decode_value rel) row))

(* Reference side: every satisfying binding prices each atom by the
   same variables in the same order, and [min] is hardcoded — a mutant
   that turns the Tropical ⊕ into a sum cannot hide in the reference. *)
let min_cost db q =
  let indexed = List.mapi (fun i a -> (i, Atom.vars a)) q.Cq.body in
  let binding_cost b =
    List.fold_left
      (fun acc (i, vars) ->
        acc
        + cost_of_values i
            (List.map
               (fun x ->
                 match Binding.find x b with
                 | Some v -> v
                 | None -> assert false)
               vars))
      0 indexed
  in
  List.fold_left
    (fun best b ->
      let c = binding_cost b in
      match best with
      | Some best -> Some (Stdlib.min best c)
      | None -> Some c)
    None
    (Cq_naive.all_bindings db q)

(* The reference path is per-contract: the answer set (or truth bit)
   for the set-semantics contracts, the brute-force valuation count for
   [Exact_count], the brute-force min-cost witness for [Exact_cost].
   Count and cost are query-only notions; a sentence instance reads as
   [Not_applicable] (and every count/cost engine guards on queries, so
   the comparison never reaches that pairing). *)
let reference mode inst =
  match (mode, inst.Gen.shape) with
  | (Exact | Subset), Gen.Query q ->
      Rows (canon (Cq_naive.evaluate inst.Gen.db q))
  | (Exact | Subset), Gen.Sentence f ->
      Sat (Fo_naive.sentence_holds inst.Gen.db f)
  | Exact_count, Gen.Query q -> Count (Cq_naive.count inst.Gen.db q)
  | Exact_cost, Gen.Query q -> Cost (min_cost inst.Gen.db q)
  | (Exact_count | Exact_cost), Gen.Sentence _ -> Not_applicable

(* [agrees] is where the one-sided engines are handled: a
   [Random_trials] coloring family may miss answers (probability ~e^-c
   per answer) but never invents them, so its contract is [Subset], not
   [Exact]. *)
let agrees ~mode ~reference got =
  match (got, reference) with
  | Not_applicable, _ -> true
  | Engine_error _, _ -> false
  | _, Engine_error _ -> false
  | Rows got, Rows want -> (
      match mode with
      | Exact -> got = want
      | Subset -> List.for_all (fun r -> List.mem r want) got
      | Exact_count | Exact_cost -> false)
  | Sat b, Rows want -> (
      match mode with
      | Exact -> b = (want <> [])
      | Subset -> (not b) || want <> []
      | Exact_count | Exact_cost -> false)
  | Sat b, Sat want -> (
      match mode with
      | Exact -> b = want
      | Subset -> (not b) || want
      | Exact_count | Exact_cost -> false)
  | Count got, Count want -> got = want
  | Cost got, Cost want -> got = want
  | (Rows _ | Sat _ | Count _ | Cost _), _ -> false

(* Adapter combinators: applicability guards run first (so an engine
   that cannot take the instance reports [Not_applicable] instead of an
   error); anything the engine raises past its guard is a finding. *)
let query_engine ~name ~mode ?(guard = fun _ -> true) f =
  let run inst =
    match inst.Gen.shape with
    | Gen.Sentence _ -> Not_applicable
    | Gen.Query q ->
        if not (guard q) then Not_applicable
        else (
          try f inst.Gen.db q
          with e -> Engine_error (Printexc.to_string e))
  in
  { name; mode; run }

let sentence_engine ~name f =
  let run inst =
    match inst.Gen.shape with
    | Gen.Query _ -> Not_applicable
    | Gen.Sentence s -> (
        try f inst.Gen.db s with e -> Engine_error (Printexc.to_string e))
  in
  { name; mode = Exact; run }

let no_constraints q = not (Cq.has_constraints q)
let acyclic_neq q = acyclic q && Cq.neq_only q

let sweep = Hashing.Multiplicative_sweep

let random_family q seed =
  let k = max 1 (Ineq.partition q).Ineq.k in
  Hashing.Random_trials { trials = Hashing.default_trials ~c:3.0 ~k; seed }

(* The goal predicate for the Datalog path; must not collide with the
   generated EDB names (r1/r2/r3, e). *)
let datalog_goal = "fz_goal"

(* Scratch directories for the storage round-trip path: one per call,
   removed afterwards even when the engine raises. *)
let segment_counter = Atomic.make 0

let with_scratch_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "paradb-oracle-seg-%d-%d" (Unix.getpid ())
         (Atomic.fetch_and_add segment_counter 1))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

let all ?serve ?cluster () =
  [
    query_engine ~name:"naive-unordered" ~mode:Exact (fun db q ->
        Rows (canon (Cq_naive.evaluate ~order_atoms:false db q)));
    query_engine ~name:"join-hash" ~mode:Exact (fun db q ->
        Rows (canon (Join_eval.evaluate ~algorithm:Join_eval.Hash_join db q)));
    query_engine ~name:"join-merge" ~mode:Exact (fun db q ->
        Rows (canon (Join_eval.evaluate ~algorithm:Join_eval.Sort_merge db q)));
    query_engine ~name:"yannakakis" ~mode:Exact
      ~guard:(fun q -> acyclic q && no_constraints q)
      (fun db q -> Rows (canon (Yannakakis.evaluate db q)));
    query_engine ~name:"yannakakis-sat" ~mode:Exact
      ~guard:(fun q -> acyclic q && no_constraints q)
      (fun db q -> Sat (Yannakakis.is_satisfiable db q));
    query_engine ~name:"fpt" ~mode:Exact ~guard:acyclic_neq (fun db q ->
        Rows (canon (Engine.evaluate ~family:sweep db q)));
    query_engine ~name:"fpt-sat" ~mode:Exact ~guard:acyclic_neq (fun db q ->
        Sat (Engine.is_satisfiable ~family:sweep db q));
    query_engine ~name:"fpt-random" ~mode:Subset ~guard:acyclic_neq
      (fun db q ->
        Rows (canon (Engine.evaluate ~family:(random_family q 0x0dd5) db q)));
    query_engine ~name:"comparisons" ~mode:Exact (fun db q ->
        Rows (canon (Comparisons.evaluate db q)));
    (* The compiled planner pipeline: no guard — it must take every
       query class (acyclic, cyclic, constraints, comparisons) and agree
       exactly with the naive reference. *)
    query_engine ~name:"compiled" ~mode:Exact (fun db q ->
        Rows (canon (Paradb_eval.Compile.evaluate db q)));
    (* The storage round-trip: compact the database to a scratch segment
       directory, reopen it by mmap, evaluate with the naive engine.
       Both sides run the same evaluator, so any divergence (or raised
       [Corrupt]) isolates a storage bug — writer, checksum, mmap decode
       or manifest — never an engine bug. *)
    query_engine ~name:"segment" ~mode:Exact (fun db q ->
        with_scratch_dir (fun dir ->
            ignore (Paradb_storage.Store.compact ~dir db);
            Rows (canon (Cq_naive.evaluate (Paradb_storage.Store.open_dir dir) q))));
    query_engine ~name:"datalog" ~mode:Exact
      ~guard:(fun q -> no_constraints q && q.Cq.body <> [])
      (fun db q ->
        let rule = Rule.make (Atom.make datalog_goal q.Cq.head) q.Cq.body in
        let program = Program.make [ rule ] ~goal:datalog_goal in
        Rows (canon (Datalog.evaluate db program)));
    (* Counting engines ([Exact_count]): the number of satisfying
       valuations under the Nat semiring, against the brute-force
       counting reference.  [count-compiled] is the warm path and must
       take every query class; [count-yannakakis] is join-tree message
       passing, acyclic and constraint-free only. *)
    query_engine ~name:"count-compiled" ~mode:Exact_count (fun db q ->
        Count (Paradb_eval.Compile.count db q));
    query_engine ~name:"count-yannakakis" ~mode:Exact_count
      ~guard:(fun q -> acyclic q && no_constraints q)
      (fun db q -> Count (Yannakakis.count db q));
    (* Min-cost witness ([Exact_cost]): the Tropical semiring over the
       deterministic per-row weights, against the brute-force min. *)
    query_engine ~name:"tropical-yannakakis" ~mode:Exact_cost
      ~guard:(fun q -> acyclic q && no_constraints q)
      (fun db q ->
        let sr = Semiring.tropical () in
        let c = Yannakakis.aggregate sr ~weight:tropical_weight db q in
        Cost (if c = max_int then None else Some c));
    query_engine ~name:"fo-sat" ~mode:Exact ~guard:Cq.neq_only (fun db q ->
        let boolean =
          Cq.make ~name:q.Cq.name ~constraints:q.Cq.constraints ~head:[]
            q.Cq.body
        in
        Sat (Fo_naive.sentence_holds db (Fo.of_boolean_cq boolean)));
    sentence_engine ~name:"positive-cqs" (fun db f ->
        Sat
          (List.exists
             (fun cq -> Cq_naive.is_satisfiable db cq)
             (Fo.positive_to_cqs f)));
  ]
  @ (match serve with
    | None -> []
    | Some live ->
        [
          query_engine ~name:"serve" ~mode:Exact (fun db q ->
              match Serve.eval live db q with
              | Ok rows -> Rows rows
              | Error e -> Engine_error e);
          query_engine ~name:"count-serve" ~mode:Exact_count (fun db q ->
              match Serve.count live db q with
              | Ok n -> Count n
              | Error e -> Engine_error e);
        ])
  @
  (* The sharded path: hash-partition, scatter-gather, merge — must be
     bit-for-bit with the single node, including under injected shard
     loss and stragglers (the coordinator's failover machinery has to
     hide them, not merely survive them).  COUNT rides the same wire:
     per-shard partial counts summed under scatter, reducer exchange
     otherwise. *)
  match cluster with
  | None -> []
  | Some live ->
      [
        query_engine ~name:"cluster" ~mode:Exact (fun db q ->
            match Serve.eval_cluster live db q with
            | Ok rows -> Rows rows
            | Error e -> Engine_error e);
        query_engine ~name:"count-cluster" ~mode:Exact_count (fun db q ->
            match Serve.count_cluster live db q with
            | Ok n -> Count n
            | Error e -> Engine_error e);
      ]

(* Every engine name the CLI accepts; the serve- and cluster-backed
   engines are only instantiated when the live servers are wired in. *)
let names =
  List.map (fun e -> e.name) (all ())
  @ [ "serve"; "count-serve"; "cluster"; "count-cluster" ]

let outcome_to_string = function
  | Rows rows ->
      let shown = List.filteri (fun i _ -> i < 8) rows in
      Printf.sprintf "rows=%d [%s%s]" (List.length rows)
        (String.concat "; " shown)
        (if List.length rows > 8 then "; ..." else "")
  | Sat b -> Printf.sprintf "sat=%b" b
  | Count n -> Printf.sprintf "count=%d" n
  | Cost None -> "cost=unsat"
  | Cost (Some c) -> Printf.sprintf "cost=%d" c
  | Not_applicable -> "n/a"
  | Engine_error e -> "error: " ^ e
