module Cq = Paradb_query.Cq
module Fo = Paradb_query.Fo
module Atom = Paradb_query.Atom
module Rule = Paradb_query.Rule
module Program = Paradb_query.Program
module Relation = Paradb_relational.Relation
module Tuple = Paradb_relational.Tuple
module Hypergraph = Paradb_hypergraph.Hypergraph
module Cq_naive = Paradb_eval.Cq_naive
module Join_eval = Paradb_eval.Join_eval
module Fo_naive = Paradb_eval.Fo_naive
module Yannakakis = Paradb_yannakakis.Yannakakis
module Engine = Paradb_core.Engine
module Comparisons = Paradb_core.Comparisons
module Ineq = Paradb_core.Ineq
module Hashing = Paradb_core.Hashing
module Datalog = Paradb_datalog.Engine

type mode = Exact | Subset

type outcome =
  | Rows of string list
  | Sat of bool
  | Not_applicable
  | Engine_error of string

type t = {
  name : string;
  mode : mode;
  run : Gen.instance -> outcome;
}

(* Canonical answer set: sorted tuple strings — the same serialization
   the server frames in EVAL payloads. *)
let canon rel =
  List.map Tuple.to_string (List.sort Tuple.compare (Relation.tuples rel))

let acyclic q = Hypergraph.is_acyclic (Hypergraph.of_cq q)

let reference inst =
  match inst.Gen.shape with
  | Gen.Query q -> Rows (canon (Cq_naive.evaluate inst.Gen.db q))
  | Gen.Sentence f -> Sat (Fo_naive.sentence_holds inst.Gen.db f)

(* [agrees] is where the one-sided engines are handled: a
   [Random_trials] coloring family may miss answers (probability ~e^-c
   per answer) but never invents them, so its contract is [Subset], not
   [Exact]. *)
let agrees ~mode ~reference got =
  match (got, reference) with
  | Not_applicable, _ -> true
  | Engine_error _, _ -> false
  | _, Engine_error _ -> false
  | Rows got, Rows want -> (
      match mode with
      | Exact -> got = want
      | Subset -> List.for_all (fun r -> List.mem r want) got)
  | Sat b, Rows want -> (
      match mode with
      | Exact -> b = (want <> [])
      | Subset -> (not b) || want <> [])
  | Sat b, Sat want -> ( match mode with Exact -> b = want | Subset -> (not b) || want)
  | Rows _, Sat _ | _, Not_applicable -> false

(* Adapter combinators: applicability guards run first (so an engine
   that cannot take the instance reports [Not_applicable] instead of an
   error); anything the engine raises past its guard is a finding. *)
let query_engine ~name ~mode ?(guard = fun _ -> true) f =
  let run inst =
    match inst.Gen.shape with
    | Gen.Sentence _ -> Not_applicable
    | Gen.Query q ->
        if not (guard q) then Not_applicable
        else (
          try f inst.Gen.db q
          with e -> Engine_error (Printexc.to_string e))
  in
  { name; mode; run }

let sentence_engine ~name f =
  let run inst =
    match inst.Gen.shape with
    | Gen.Query _ -> Not_applicable
    | Gen.Sentence s -> (
        try f inst.Gen.db s with e -> Engine_error (Printexc.to_string e))
  in
  { name; mode = Exact; run }

let no_constraints q = not (Cq.has_constraints q)
let acyclic_neq q = acyclic q && Cq.neq_only q

let sweep = Hashing.Multiplicative_sweep

let random_family q seed =
  let k = max 1 (Ineq.partition q).Ineq.k in
  Hashing.Random_trials { trials = Hashing.default_trials ~c:3.0 ~k; seed }

(* The goal predicate for the Datalog path; must not collide with the
   generated EDB names (r1/r2/r3, e). *)
let datalog_goal = "fz_goal"

(* Scratch directories for the storage round-trip path: one per call,
   removed afterwards even when the engine raises. *)
let segment_counter = Atomic.make 0

let with_scratch_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "paradb-oracle-seg-%d-%d" (Unix.getpid ())
         (Atomic.fetch_and_add segment_counter 1))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

let all ?serve ?cluster () =
  [
    query_engine ~name:"naive-unordered" ~mode:Exact (fun db q ->
        Rows (canon (Cq_naive.evaluate ~order_atoms:false db q)));
    query_engine ~name:"join-hash" ~mode:Exact (fun db q ->
        Rows (canon (Join_eval.evaluate ~algorithm:Join_eval.Hash_join db q)));
    query_engine ~name:"join-merge" ~mode:Exact (fun db q ->
        Rows (canon (Join_eval.evaluate ~algorithm:Join_eval.Sort_merge db q)));
    query_engine ~name:"yannakakis" ~mode:Exact
      ~guard:(fun q -> acyclic q && no_constraints q)
      (fun db q -> Rows (canon (Yannakakis.evaluate db q)));
    query_engine ~name:"yannakakis-sat" ~mode:Exact
      ~guard:(fun q -> acyclic q && no_constraints q)
      (fun db q -> Sat (Yannakakis.is_satisfiable db q));
    query_engine ~name:"fpt" ~mode:Exact ~guard:acyclic_neq (fun db q ->
        Rows (canon (Engine.evaluate ~family:sweep db q)));
    query_engine ~name:"fpt-sat" ~mode:Exact ~guard:acyclic_neq (fun db q ->
        Sat (Engine.is_satisfiable ~family:sweep db q));
    query_engine ~name:"fpt-random" ~mode:Subset ~guard:acyclic_neq
      (fun db q ->
        Rows (canon (Engine.evaluate ~family:(random_family q 0x0dd5) db q)));
    query_engine ~name:"comparisons" ~mode:Exact (fun db q ->
        Rows (canon (Comparisons.evaluate db q)));
    (* The compiled planner pipeline: no guard — it must take every
       query class (acyclic, cyclic, constraints, comparisons) and agree
       exactly with the naive reference. *)
    query_engine ~name:"compiled" ~mode:Exact (fun db q ->
        Rows (canon (Paradb_eval.Compile.evaluate db q)));
    (* The storage round-trip: compact the database to a scratch segment
       directory, reopen it by mmap, evaluate with the naive engine.
       Both sides run the same evaluator, so any divergence (or raised
       [Corrupt]) isolates a storage bug — writer, checksum, mmap decode
       or manifest — never an engine bug. *)
    query_engine ~name:"segment" ~mode:Exact (fun db q ->
        with_scratch_dir (fun dir ->
            ignore (Paradb_storage.Store.compact ~dir db);
            Rows (canon (Cq_naive.evaluate (Paradb_storage.Store.open_dir dir) q))));
    query_engine ~name:"datalog" ~mode:Exact
      ~guard:(fun q -> no_constraints q && q.Cq.body <> [])
      (fun db q ->
        let rule = Rule.make (Atom.make datalog_goal q.Cq.head) q.Cq.body in
        let program = Program.make [ rule ] ~goal:datalog_goal in
        Rows (canon (Datalog.evaluate db program)));
    query_engine ~name:"fo-sat" ~mode:Exact ~guard:Cq.neq_only (fun db q ->
        let boolean =
          Cq.make ~name:q.Cq.name ~constraints:q.Cq.constraints ~head:[]
            q.Cq.body
        in
        Sat (Fo_naive.sentence_holds db (Fo.of_boolean_cq boolean)));
    sentence_engine ~name:"positive-cqs" (fun db f ->
        Sat
          (List.exists
             (fun cq -> Cq_naive.is_satisfiable db cq)
             (Fo.positive_to_cqs f)));
  ]
  @ (match serve with
    | None -> []
    | Some live ->
        [
          query_engine ~name:"serve" ~mode:Exact (fun db q ->
              match Serve.eval live db q with
              | Ok rows -> Rows rows
              | Error e -> Engine_error e);
        ])
  @
  (* The sharded path: hash-partition, scatter-gather, merge — must be
     bit-for-bit with the single node, including under injected shard
     loss and stragglers (the coordinator's failover machinery has to
     hide them, not merely survive them). *)
  match cluster with
  | None -> []
  | Some live ->
      [
        query_engine ~name:"cluster" ~mode:Exact (fun db q ->
            match Serve.eval_cluster live db q with
            | Ok rows -> Rows rows
            | Error e -> Engine_error e);
      ]

(* Every engine name the CLI accepts; "serve" and "cluster" are only
   instantiated when the live servers are wired in. *)
let names = List.map (fun e -> e.name) (all ()) @ [ "serve"; "cluster" ]

let outcome_to_string = function
  | Rows rows ->
      let shown = List.filteri (fun i _ -> i < 8) rows in
      Printf.sprintf "rows=%d [%s%s]" (List.length rows)
        (String.concat "; " shown)
        (if List.length rows > 8 then "; ..." else "")
  | Sat b -> Printf.sprintf "sat=%b" b
  | Not_applicable -> "n/a"
  | Engine_error e -> "error: " ^ e
