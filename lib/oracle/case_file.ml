module Parser = Paradb_query.Parser
module Fact_format = Paradb_query.Fact_format

type t = {
  engine : string;
  shape : Gen.shape;
  db : Paradb_relational.Database.t;
}

let write ~dir ~engine ~expected ~got (inst : Gen.instance) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path =
    Filename.concat dir
      (Printf.sprintf "case-s%d-i%d-%s.case" inst.seed inst.index engine)
  in
  Out_channel.with_open_text path (fun oc ->
      let line fmt = Printf.fprintf oc (fmt ^^ "\n") in
      line "# paradb fuzz counterexample — replay: paradb fuzz --replay %s"
        (Filename.basename path);
      line "# seed %d case %d class %s" inst.seed inst.index inst.label;
      line "# expected %s" expected;
      line "# got      %s" got;
      line "engine %s" engine;
      (match inst.shape with
      | Gen.Query q -> line "query %s" (Paradb_query.Cq.to_string q)
      | Gen.Sentence f -> line "sentence %s" (Paradb_query.Fo.to_string f));
      line "facts";
      output_string oc (Fact_format.to_string inst.db));
  path

let read path =
  let lines = In_channel.with_open_text path In_channel.input_lines in
  let fail fmt = Printf.ksprintf failwith ("malformed case file: " ^^ fmt) in
  let strip_prefix p s =
    let lp = String.length p in
    if String.length s >= lp && String.sub s 0 lp = p then
      Some (String.trim (String.sub s lp (String.length s - lp)))
    else None
  in
  let engine = ref None and shape = ref None and facts = ref None in
  let rec go = function
    | [] -> ()
    | line :: rest -> (
        let line' = String.trim line in
        if line' = "" || String.length line' > 0 && line'.[0] = '#' then
          go rest
        else
          match strip_prefix "engine" line' with
          | Some e ->
              engine := Some e;
              go rest
          | None -> (
              match strip_prefix "query" line' with
              | Some q ->
                  shape := Some (Gen.Query (Parser.parse_cq q));
                  go rest
              | None -> (
                  match strip_prefix "sentence" line' with
                  | Some f ->
                      shape := Some (Gen.Sentence (Parser.parse_fo f));
                      go rest
                  | None ->
                      if line' = "facts" then
                        facts :=
                          Some (Parser.parse_facts (String.concat "\n" rest))
                      else fail "unexpected line %S" line)))
  in
  go lines;
  match (!engine, !shape, !facts) with
  | Some engine, Some shape, Some db -> { engine; shape; db }
  | None, _, _ -> fail "missing 'engine' line"
  | _, None, _ -> fail "missing 'query' or 'sentence' line"
  | _, _, None -> fail "missing 'facts' section"

let to_instance c =
  { Gen.seed = 0; index = 0; label = "replay"; db = c.db; shape = c.shape }
