module Database = Paradb_relational.Database
module Generators = Paradb_workload.Generators
open Paradb_query

type shape = Query of Cq.t | Sentence of Fo.t

type instance = {
  seed : int;
  index : int;
  label : string;
  db : Database.t;
  shape : shape;
}

let classes =
  [
    "acyclic";
    "acyclic-neq";
    "chain-neq";
    "cyclic";
    "acyclic-cmp";
    "acyclic-mixed";
    "sentence";
    "boolean-neq";
  ]

(* Per-case RNG: independent of every other case, reproducible from
   (seed, index) alone.  The leading literal keeps the stream disjoint
   from other [Random.State.make [| seed |]] users. *)
let case_rng ~seed ~index = Random.State.make [| 0x5eed; seed; index |]

let booleanize q =
  Cq.make ~name:q.Cq.name ~constraints:q.Cq.constraints ~head:[] q.Cq.body

(* Chain query with far-apart [<>] pairs — the I1-rich instances the
   Theorem-2 engine's color separation actually works for. *)
let chain_instance rng ~max_tuples =
  let length = 2 + Random.State.int rng 3 in
  let candidates = [ (0, length); (1, length); (0, length - 1) ] in
  let neq =
    List.filter
      (fun (i, j) -> i < j && Random.State.bool rng)
      candidates
  in
  let neq = if neq = [] then [ (0, length) ] else neq in
  let nodes = 2 + Random.State.int rng 5 in
  let edges = 1 + Random.State.int rng max_tuples in
  let db = Generators.edge_database rng ~nodes ~edges in
  (db, Generators.chain_query ~length ~neq)

let instance ~seed ~index ~max_vars ~max_tuples =
  let rng = case_rng ~seed ~index in
  let label = List.nth classes (index mod List.length classes) in
  let max_atoms = max 1 (min 4 (max_vars / 2)) in
  let domain_size = 2 + Random.State.int rng 6 in
  let tuples = 1 + Random.State.int rng (max 1 max_tuples) in
  let tree ?(cmp_tries = 0) ~neq_tries () =
    let q =
      Generators.random_tree_cq ~cmp_tries rng ~max_atoms ~max_arity:3
        ~neq_tries ~domain_size
    in
    let db =
      Generators.tree_cq_database rng ~max_arity:3 ~domain_size ~tuples
    in
    (db, q)
  in
  let db, shape =
    match label with
    | "acyclic" ->
        let db, q = tree ~neq_tries:0 () in
        (db, Query q)
    | "acyclic-neq" ->
        let db, q = tree ~neq_tries:3 () in
        (db, Query q)
    | "chain-neq" ->
        let db, q = chain_instance rng ~max_tuples in
        (db, Query q)
    | "cyclic" ->
        let nodes = 2 + Random.State.int rng 5 in
        let db = Generators.edge_database rng ~nodes ~edges:tuples in
        let q =
          Generators.random_cyclic_cq rng
            ~cycle:(3 + Random.State.int rng 2)
            ~neq:(Random.State.bool rng)
        in
        (db, Query q)
    | "acyclic-cmp" ->
        let db, q = tree ~cmp_tries:2 ~neq_tries:0 () in
        (db, Query q)
    | "acyclic-mixed" ->
        let db, q = tree ~cmp_tries:2 ~neq_tries:2 () in
        (db, Query q)
    | "sentence" ->
        let db =
          Generators.tree_cq_database rng ~max_arity:2 ~domain_size ~tuples
        in
        let f =
          Generators.random_positive_sentence rng
            ~relations:[ ("r1", 1); ("r2", 2) ]
            ~domain_size
            ~depth:(2 + Random.State.int rng 2)
        in
        (db, Sentence f)
    | _ ->
        (* boolean-neq *)
        let db, q = tree ~neq_tries:3 () in
        (db, Query (booleanize q))
  in
  { seed; index; label; db; shape }

let pp_shape ppf = function
  | Query q -> Cq.pp ppf q
  | Sentence f -> Fo.pp ppf f

let shape_to_string = function
  | Query q -> Cq.to_string q
  | Sentence f -> Fo.to_string f

(* Size of an instance, in the units of the shrink targets. *)
let atoms = function
  | Query q -> List.length q.Cq.body
  | Sentence _ -> 0

let tuple_count inst = Database.size inst.db
