(** Seeded random (query, database) instances for the differential
    oracle, layered on {!Paradb_workload.Generators}.

    Case classes cycle deterministically with the case index so every
    run of [n] cases covers the same mix: acyclic CQs (bare, with [<>],
    with comparisons, mixed), far-apart-[<>] chain queries (I1-rich, the
    Theorem-2 core), cyclic CQs, closed positive FO sentences, and
    Boolean [<>] queries. *)

type shape = Query of Paradb_query.Cq.t | Sentence of Paradb_query.Fo.t

type instance = {
  seed : int;
  index : int;
  label : string;  (** case class, one of {!classes} *)
  db : Paradb_relational.Database.t;
  shape : shape;
}

val classes : string list

(** [instance ~seed ~index ~max_vars ~max_tuples] — deterministic in
    [(seed, index)]; every case draws from an independent RNG, so case
    [i] is reproducible without generating cases [0..i-1]. *)
val instance :
  seed:int -> index:int -> max_vars:int -> max_tuples:int -> instance

val pp_shape : Format.formatter -> shape -> unit
val shape_to_string : shape -> string

(** Relational atoms of the query ([0] for sentences) — the shrink
    target's size unit. *)
val atoms : shape -> int

(** Total tuples across the database. *)
val tuple_count : instance -> int
