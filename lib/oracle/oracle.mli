(** The differential oracle driver (see DESIGN.md §12): generate seeded
    instances, fan each through every applicable engine, compare against
    the naive reference under each engine's contract, and shrink any
    divergence to a replayable [.case] file.

    Telemetry: [oracle.cases], [oracle.comparisons],
    [oracle.divergences], [oracle.shrink_steps]. *)

type config = {
  seed : int;
  cases : int;
  max_vars : int;
  max_tuples : int;
  engines : string list option;
      (** subset of {!Engines.names} to run; [None] = all (including
          the live-server round-trip) *)
  out_dir : string option;
      (** where shrunk [.case] files go; [None] = don't write *)
}

val default_config : config

type divergence = {
  engine : string;
  index : int;  (** the case index that diverged *)
  label : string;  (** its case class *)
  expected : Engines.outcome;  (** reference outcome on the shrunk case *)
  got : Engines.outcome;
  shrunk : Gen.instance;
  shrink_steps : int;
  case_path : string option;
}

type report = {
  cases_run : int;
  comparisons : int;
  divergences : divergence list;
  shrink_steps : int;
}

(** Run the campaign.  Sets [PARADB_DOMAINS=1] unless already set (the
    per-query trial fan-out is pure overhead on thousands of tiny
    instances), validates [PARADB_MUTATE] and engine names
    ([Invalid_argument] on a typo), and starts/stops an in-process
    server when the ["serve"] engine is selected.  [progress] is called
    with each case index before it runs. *)
val run : ?progress:(int -> unit) -> config -> report

(** Replay a [.case] file: returns the instance, engine name, reference
    and engine outcomes, and whether they now agree. *)
val replay :
  string ->
  Gen.instance * string * Engines.outcome * Engines.outcome * bool
