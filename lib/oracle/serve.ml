module Server = Paradb_server.Server
module Client = Paradb_server.Client
module Protocol = Paradb_server.Protocol
module Fact_format = Paradb_query.Fact_format

type t = {
  server : Server.t;
  client : Client.t;
  facts_path : string;
}

(* The round-trip is strictly synchronous — one LOAD, one EVAL, one
   response each — so the oracle's main loop never races the worker
   domains on the dictionary (interning happens on the server side of
   the wire). *)
let start () =
  let server = Server.start ~port:0 ~workers:2 ~cache_capacity:64 () in
  let client =
    Client.connect ~timeout:30.0 ~retries:3 ~port:(Server.port server) ()
  in
  let facts_path = Filename.temp_file "paradb_fuzz" ".facts" in
  { server; client; facts_path }

let stop t =
  (try Client.close t.client with _ -> ());
  (try Server.stop t.server with _ -> ());
  try Sys.remove t.facts_path with _ -> ()

let eval t db q =
  Out_channel.with_open_text t.facts_path (fun oc ->
      Fact_format.print oc db);
  match
    Client.request_line t.client (Printf.sprintf "LOAD fz %s" t.facts_path)
  with
  | Protocol.Err e -> Error ("LOAD: " ^ e)
  | Protocol.Ok_ _ -> (
      match
        Client.request_line t.client
          ("EVAL fz auto " ^ Paradb_query.Cq.to_string q)
      with
      | Protocol.Err e -> Error ("EVAL: " ^ e)
      | Protocol.Ok_ { payload; _ } -> Ok payload)

(* COUNT round-trip, shared by the single-node and cluster engines:
   both answer the same one-line bare-count payload. *)
let count_round_trip client facts db q =
  Out_channel.with_open_text facts (fun oc -> Fact_format.print oc db);
  match Client.request_line client (Printf.sprintf "LOAD fz %s" facts) with
  | Protocol.Err e -> Error ("LOAD: " ^ e)
  | Protocol.Ok_ _ -> (
      match
        Client.request_line client
          ("COUNT fz auto " ^ Paradb_query.Cq.to_string q)
      with
      | Protocol.Err e -> Error ("COUNT: " ^ e)
      | Protocol.Ok_ { payload = [ n ]; _ } -> (
          match int_of_string_opt (String.trim n) with
          | Some c -> Ok c
          | None -> Error ("COUNT: malformed payload " ^ String.trim n))
      | Protocol.Ok_ _ -> Error "COUNT: expected one payload line")

let count t db q = count_round_trip t.client t.facts_path db q

(* --- sharded cluster -------------------------------------------- *)

module Coordinator = Paradb_cluster.Coordinator

(* A whole cluster in one process: [shards] ordinary servers, a
   coordinator front end over them, one client into the coordinator.
   Every component gets one worker — the oracle drives the cluster
   strictly synchronously, so extra domains would only add GC overhead
   to the fuzz loop. *)
type cluster = {
  shard_servers : Server.t array;
  front : Server.t;
  cluster_client : Client.t;
  cluster_facts : string;
}

let start_cluster ?(shards = 3) ?(replicas = 2) () =
  let shard_servers =
    Array.init shards (fun _ ->
        Server.start ~port:0 ~workers:1 ~cache_capacity:64 ())
  in
  let addrs =
    Array.to_list
      (Array.map (fun s -> ("127.0.0.1", Server.port s)) shard_servers)
  in
  let coord =
    Coordinator.create
      { (Coordinator.default_config addrs) with replicas; retries = 3 }
  in
  let front = Coordinator.serve coord ~port:0 ~workers:1 in
  let cluster_client =
    Client.connect ~timeout:30.0 ~retries:3 ~port:(Server.port front) ()
  in
  let cluster_facts = Filename.temp_file "paradb_fuzz_cluster" ".facts" in
  { shard_servers; front; cluster_client; cluster_facts }

let stop_cluster t =
  (try Client.close t.cluster_client with _ -> ());
  (try Server.stop t.front with _ -> ());
  Array.iter (fun s -> try Server.stop s with _ -> ()) t.shard_servers;
  try Sys.remove t.cluster_facts with _ -> ()

let eval_cluster t db q =
  Out_channel.with_open_text t.cluster_facts (fun oc ->
      Fact_format.print oc db);
  match
    Client.request_line t.cluster_client
      (Printf.sprintf "LOAD fz %s" t.cluster_facts)
  with
  | Protocol.Err e -> Error ("LOAD: " ^ e)
  | Protocol.Ok_ _ -> (
      match
        Client.request_line t.cluster_client
          ("EVAL fz auto " ^ Paradb_query.Cq.to_string q)
      with
      | Protocol.Err e -> Error ("EVAL: " ^ e)
      | Protocol.Ok_ { payload; _ } -> Ok payload)

let count_cluster t db q =
  count_round_trip t.cluster_client t.cluster_facts db q
