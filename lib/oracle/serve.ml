module Server = Paradb_server.Server
module Client = Paradb_server.Client
module Protocol = Paradb_server.Protocol
module Fact_format = Paradb_query.Fact_format

type t = {
  server : Server.t;
  client : Client.t;
  facts_path : string;
}

(* The round-trip is strictly synchronous — one LOAD, one EVAL, one
   response each — so the oracle's main loop never races the worker
   domains on the dictionary (interning happens on the server side of
   the wire). *)
let start () =
  let server = Server.start ~port:0 ~workers:2 ~cache_capacity:64 () in
  let client =
    Client.connect ~timeout:30.0 ~retries:3 ~port:(Server.port server) ()
  in
  let facts_path = Filename.temp_file "paradb_fuzz" ".facts" in
  { server; client; facts_path }

let stop t =
  (try Client.close t.client with _ -> ());
  (try Server.stop t.server with _ -> ());
  try Sys.remove t.facts_path with _ -> ()

let eval t db q =
  Out_channel.with_open_text t.facts_path (fun oc ->
      Fact_format.print oc db);
  match
    Client.request_line t.client (Printf.sprintf "LOAD fz %s" t.facts_path)
  with
  | Protocol.Err e -> Error ("LOAD: " ^ e)
  | Protocol.Ok_ _ -> (
      match
        Client.request_line t.client
          ("EVAL fz auto " ^ Paradb_query.Cq.to_string q)
      with
      | Protocol.Err e -> Error ("EVAL: " ^ e)
      | Protocol.Ok_ { payload; _ } -> Ok payload)
