(** Counterexample shrinking: greedy first-improvement descent over the
    classic reduction moves — drop a constraint, drop an atom, merge two
    variables, drop a tuple, collapse a domain value into the minimum —
    accepting any candidate on which [diverges] still holds, until no
    move applies.

    Moves preserve well-formedness: [Cq.make] re-validates safety and
    relations are never emptied (fact files cannot express empty
    relations, so replayed cases must not need them). *)

val minimize :
  ?max_steps:int ->
  diverges:(Gen.instance -> bool) ->
  Gen.instance ->
  Gen.instance * int
(** Returns the shrunk instance and the number of accepted shrink steps
    (also counted on the [oracle.shrink_steps] telemetry counter). *)
