(** Crash-point fault injection for the storage write path.

    Two faults, both raising {!Crash} to simulate the process dying at
    the injection point: [torn_write] first truncates the file in
    flight to a random prefix (the torn page a power cut leaves),
    [crash_after_write] leaves the file complete but abandons whatever
    publication step should follow.  Callers never catch [Crash] on the
    write path — it propagates like a real death; tests catch it at the
    top, reopen the store, and assert recovery.

    Disabled by default (one [Atomic.get] per injection point when
    off).  [Paradb_server.Fault] forwards the [torn_write:<p>] and
    [crash_after_write:<p>] keys of PARADB_FAULTS here. *)

exception Crash of string

type config = { torn_write : float; crash_after_write : float; seed : int }

val default : config

(** [set (Some c)] arms the faults; [set None] disarms them. *)
val set : config option -> unit

val active : unit -> bool

(** [maybe_torn_write path] — with probability [torn_write], truncate
    [path] to a uniformly random proper prefix and raise {!Crash}. *)
val maybe_torn_write : string -> unit

(** [maybe_crash_after_write path] — with probability
    [crash_after_write], raise {!Crash}. *)
val maybe_crash_after_write : string -> unit
