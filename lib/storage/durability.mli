(** Process-global fsync discipline for store publishes (see DESIGN.md
    §16 "Durability model").

    [Full] syncs in write order before a publish is acknowledged
    (segment fd → MANIFEST.tmp fd → directory fd after the rename);
    [Async] queues the same syncs to a background flusher domain and
    returns immediately; [Off] never syncs.  All three keep the
    atomic-rename protocol, so a [kill -9] at any point leaves either
    the old store or the new one; the modes only differ in the
    power-loss window. *)

type mode = Full | Async | Off

val to_string : mode -> string
val of_string : string -> mode option

val mode : unit -> mode
val set : mode -> unit

(** Reads [PARADB_DURABILITY]; raises [Invalid_argument] on a value
    outside full/async/off.  Leaves the mode untouched when unset. *)
val init_from_env : unit -> unit

val env_var : string

(** [file_sync path] — fsync [path] now ([Full]), queue it ([Async]),
    or skip it ([Off]).  Best-effort: sync errors on a vanished file
    are swallowed (the file was superseded, nothing left to protect). *)
val file_sync : string -> unit

(** [dir_sync dir] — same, for a directory (persists the rename). *)
val dir_sync : string -> unit

(** Block until the async flusher queue is empty (no-op when the
    flusher never started).  For tests and benches. *)
val drain : unit -> unit
