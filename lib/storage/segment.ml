module Value = Paradb_relational.Value
module Dictionary = Paradb_relational.Dictionary
module Relation = Paradb_relational.Relation

exception Corrupt of string

let corrupt path fmt =
  Format.kasprintf (fun s -> raise (Corrupt (Printf.sprintf "segment %s: %s" path s))) fmt

let magic = "PDBSEG1\n"
let version = 1

(* Fixed header: magic(8) version(4) arity(4) rows(8) dict_count(8)
   dict_len(8) name_len(4) schema_len(4). *)
let fixed_header_len = 48

(* ------------------------------------------------------------------ *)
(* Little-endian scalar helpers over Bytes (writer side). *)

let put_u16 b pos v =
  Bytes.unsafe_set b pos (Char.unsafe_chr (v land 0xFF));
  Bytes.unsafe_set b (pos + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF))

let put_u32 b pos v =
  Bytes.unsafe_set b pos (Char.unsafe_chr (v land 0xFF));
  Bytes.unsafe_set b (pos + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF));
  Bytes.unsafe_set b (pos + 2) (Char.unsafe_chr ((v lsr 16) land 0xFF));
  Bytes.unsafe_set b (pos + 3) (Char.unsafe_chr ((v lsr 24) land 0xFF))

let put_u64 b pos v =
  put_u32 b pos (v land 0xFFFFFFFF);
  put_u32 b (pos + 4) ((v lsr 32) land 0xFFFFFFFF)

let buf_u16 buf v =
  let b = Bytes.create 2 in
  put_u16 b 0 v;
  Buffer.add_bytes buf b

let buf_u32 buf v =
  let b = Bytes.create 4 in
  put_u32 b 0 v;
  Buffer.add_bytes buf b

(* ------------------------------------------------------------------ *)
(* Writer *)

let dict_tag_int = 0
let dict_tag_str = 1

let serialize_value buf = function
  | Value.Int i ->
      Buffer.add_char buf (Char.chr dict_tag_int);
      Buffer.add_int64_le buf (Int64.of_int i)
  | Value.Str s ->
      Buffer.add_char buf (Char.chr dict_tag_str);
      buf_u32 buf (String.length s);
      Buffer.add_string buf s

let output_section oc payload =
  output_bytes oc payload;
  let crc = Bytes.create 4 in
  put_u32 crc 0 (Crc32.of_bytes payload 0 (Bytes.length payload));
  output_bytes oc crc;
  Bytes.length payload + 4

let write ~path r =
  let name = Relation.name r in
  let schema = Relation.schema_list r in
  let arity = Relation.arity r in
  let n_rows = Relation.cardinality r in
  let dict = Relation.dict r in
  (* Pass 1: assign local codes in first-seen row order and serialize the
     local dictionary; keep the (shared, immutable) code rows for the
     column pass. *)
  let trans = Array.make (max 1 (Dictionary.size dict)) (-1) in
  let dict_buf = Buffer.create 1024 in
  let dict_count = ref 0 in
  let rows_arr = Array.make (max 1 n_rows) [||] in
  let i = ref 0 in
  Relation.iter_codes
    (fun row ->
      rows_arr.(!i) <- row;
      incr i;
      Array.iter
        (fun g ->
          if trans.(g) < 0 then begin
            trans.(g) <- !dict_count;
            incr dict_count;
            serialize_value dict_buf (Dictionary.value dict g)
          end)
        row)
    r;
  if !dict_count > 0xFFFFFFFF then
    invalid_arg "Segment.write: more than 2^32 distinct values";
  (* Variable header tail: name, then u16-length-prefixed attributes. *)
  let schema_buf = Buffer.create 64 in
  List.iter
    (fun attr ->
      if String.length attr > 0xFFFF then
        invalid_arg ("Segment.write: attribute name too long: " ^ attr);
      buf_u16 schema_buf (String.length attr);
      Buffer.add_string schema_buf attr)
    schema;
  let schema_bytes = Buffer.to_bytes schema_buf in
  let dict_bytes = Buffer.to_bytes dict_buf in
  let header =
    Bytes.create (fixed_header_len + String.length name + Bytes.length schema_bytes)
  in
  Bytes.blit_string magic 0 header 0 8;
  put_u32 header 8 version;
  put_u32 header 12 arity;
  put_u64 header 16 n_rows;
  put_u64 header 24 !dict_count;
  put_u64 header 32 (Bytes.length dict_bytes);
  put_u32 header 40 (String.length name);
  put_u32 header 44 (Bytes.length schema_bytes);
  Bytes.blit_string name 0 header fixed_header_len (String.length name);
  Bytes.blit schema_bytes 0 header
    (fixed_header_len + String.length name)
    (Bytes.length schema_bytes);
  let written =
    Out_channel.with_open_bin path (fun oc ->
        let written = ref 0 in
        written := !written + output_section oc header;
        written := !written + output_section oc dict_bytes;
        let page = Bytes.create (n_rows * 4) in
        for c = 0 to arity - 1 do
          for j = 0 to n_rows - 1 do
            put_u32 page (4 * j) trans.(Array.unsafe_get rows_arr.(j) c)
          done;
          written := !written + output_section oc page
        done;
        !written)
  in
  Io_fault.maybe_torn_write path;
  written

(* ------------------------------------------------------------------ *)
(* Reader *)

type mapped = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  path : string;
  name : string;
  schema : string list;
  arity : int;
  rows : int;
  dict_vals : Value.t array; (* local code -> value *)
  col_offset : int array; (* byte offset of each column page in [map] *)
  map : mapped;
}

let name t = t.name
let schema t = t.schema
let arity t = t.arity
let rows t = t.rows

let byte (map : mapped) i = Char.code (Bigarray.Array1.unsafe_get map i)

let get_u16 map i = byte map i lor (byte map (i + 1) lsl 8)

let get_u32 map i =
  byte map i
  lor (byte map (i + 1) lsl 8)
  lor (byte map (i + 2) lsl 16)
  lor (byte map (i + 3) lsl 24)

(* u64 fields must fit a non-negative OCaml int; anything larger is a
   corruption by construction (the writer never emits it). *)
let get_u64 path map i =
  let lo = get_u32 map i and hi = get_u32 map (i + 4) in
  if hi >= 0x40000000 then corrupt path "header field exceeds 2^62";
  (hi lsl 32) lor lo

let get_i64 map i =
  let v = ref 0L in
  for k = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (byte map (i + k)))
  done;
  Int64.to_int !v

let map_file path =
  let fd =
    try Unix.openfile path [ Unix.O_RDONLY ] 0
    with Unix.Unix_error (e, _, _) ->
      raise (Sys_error (Printf.sprintf "%s: %s" path (Unix.error_message e)))
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let size = (Unix.fstat fd).Unix.st_size in
      if size < fixed_header_len + 4 then
        corrupt path "truncated: %d bytes, need at least %d" size
          (fixed_header_len + 4);
      let g =
        Unix.map_file fd Bigarray.char Bigarray.c_layout false [| size |]
      in
      Bigarray.array1_of_genarray g)

let check_crc path map ~pos ~len section =
  let stored = get_u32 map (pos + len) in
  let computed = Crc32.of_bigarray map pos len in
  if stored <> computed then
    corrupt path "%s checksum mismatch (stored %08x, computed %08x)" section
      stored computed

let parse_string path map pos len =
  if len < 0 then corrupt path "negative string length";
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.unsafe_set b i (Bigarray.Array1.unsafe_get map (pos + i))
  done;
  Bytes.unsafe_to_string b

let openf path =
  let map = map_file path in
  let size = Bigarray.Array1.dim map in
  if parse_string path map 0 8 <> magic then corrupt path "bad magic";
  let v = get_u32 map 8 in
  if v <> version then corrupt path "unsupported version %d (expected %d)" v version;
  let arity = get_u32 map 12 in
  let n_rows = get_u64 path map 16 in
  let dict_count = get_u64 path map 24 in
  let dict_len = get_u64 path map 32 in
  let name_len = get_u32 map 40 in
  let schema_len = get_u32 map 44 in
  if arity > 0xFFFF then corrupt path "implausible arity %d" arity;
  (* every section length must fit the file before any offset arithmetic *)
  if name_len > size || schema_len > size || dict_len > size then
    corrupt path "section length exceeds file size";
  if n_rows > (size / 4) / max 1 arity then
    corrupt path "row count %d exceeds file size" n_rows;
  let hdr_end = fixed_header_len + name_len + schema_len in
  let expected =
    hdr_end + 4 + dict_len + 4 + (arity * ((n_rows * 4) + 4))
  in
  if expected <> size then
    corrupt path "size mismatch: file %d bytes, layout needs %d" size expected;
  check_crc path map ~pos:0 ~len:hdr_end "header";
  let name = parse_string path map fixed_header_len name_len in
  let schema =
    let pos = ref (fixed_header_len + name_len) in
    let limit = hdr_end in
    let attrs = ref [] in
    for _ = 1 to arity do
      if !pos + 2 > limit then corrupt path "schema section truncated";
      let len = get_u16 map !pos in
      if !pos + 2 + len > limit then corrupt path "schema section truncated";
      attrs := parse_string path map (!pos + 2) len :: !attrs;
      pos := !pos + 2 + len
    done;
    if !pos <> limit then corrupt path "schema section has trailing bytes";
    List.rev !attrs
  in
  let dict_off = hdr_end + 4 in
  check_crc path map ~pos:dict_off ~len:dict_len "dictionary";
  let dict_vals = Array.make (max 1 dict_count) (Value.Int 0) in
  let pos = ref dict_off in
  let dict_end = dict_off + dict_len in
  for k = 0 to dict_count - 1 do
    if !pos >= dict_end then corrupt path "dictionary truncated at entry %d" k;
    let tag = byte map !pos in
    if tag = dict_tag_int then begin
      if !pos + 9 > dict_end then corrupt path "dictionary truncated at entry %d" k;
      dict_vals.(k) <- Value.Int (get_i64 map (!pos + 1));
      pos := !pos + 9
    end
    else if tag = dict_tag_str then begin
      if !pos + 5 > dict_end then corrupt path "dictionary truncated at entry %d" k;
      let len = get_u32 map (!pos + 1) in
      if !pos + 5 + len > dict_end then
        corrupt path "dictionary truncated at entry %d" k;
      dict_vals.(k) <- Value.Str (parse_string path map (!pos + 5) len);
      pos := !pos + 5 + len
    end
    else corrupt path "unknown dictionary tag %d at entry %d" tag k
  done;
  if !pos <> dict_end then corrupt path "dictionary has trailing bytes";
  (* Distinct entries keep local->global translation injective, which is
     what lets [to_relation] skip dedup: distinct local rows stay
     distinct after translation.  The writer never emits duplicates. *)
  let seen = Hashtbl.create (max 16 dict_count) in
  Array.iteri
    (fun k v ->
      if k < dict_count then begin
        if Hashtbl.mem seen v then corrupt path "duplicate dictionary entry %d" k;
        Hashtbl.add seen v ()
      end)
    dict_vals;
  let col_offset = Array.make (max 1 arity) 0 in
  let off = ref (dict_end + 4) in
  for c = 0 to arity - 1 do
    check_crc path map ~pos:!off ~len:(n_rows * 4)
      (Printf.sprintf "column %d" c);
    col_offset.(c) <- !off;
    off := !off + (n_rows * 4) + 4
  done;
  { path; name; schema; arity; rows = n_rows; dict_vals; col_offset; map }

(* Local code -> code in [dict]; interning happens once per distinct
   value, then column translation is an array read per cell. *)
let translation seg dict =
  Array.map (Dictionary.intern dict) seg.dict_vals

let dict_count seg = Array.length seg.dict_vals

let fill_row seg local2global scratch i =
  for c = 0 to seg.arity - 1 do
    let lc = get_u32 seg.map (seg.col_offset.(c) + (4 * i)) in
    if lc >= dict_count seg then
      corrupt seg.path "row %d column %d: code %d out of range" i c lc;
    Array.unsafe_set scratch c (Array.unsafe_get local2global lc)
  done

let append_rows seg ~dict ~store =
  let local2global = translation seg dict in
  let scratch = Array.make seg.arity 0 in
  for i = 0 to seg.rows - 1 do
    fill_row seg local2global scratch i;
    store scratch
  done

let rows_seq seg ~dict =
  let local2global = translation seg dict in
  let scratch = Array.make seg.arity 0 in
  Seq.init seg.rows (fun i ->
      fill_row seg local2global scratch i;
      scratch)

(* Bulk decode for the cold-open path: the writer serialized a relation
   with set semantics and the dictionary is duplicate-free (checked at
   [openf]), so the decoded rows are pairwise distinct and the relation
   can be built through the trusted constructor — no dedup hashing, no
   probe table until something asks for membership.  The small arities
   that dominate real schemas get dedicated loops whose row allocation
   is an inline array literal; the generic loop pays a [caml_make_vect]
   call per row, which is most of the decode cost at 10M rows. *)
let oob seg i c lc =
  corrupt seg.path "row %d column %d: code %d out of range" i c lc

let to_relation ?(dict = Dictionary.global) seg =
  let l2g = translation seg dict in
  let dict_n = Array.length l2g in
  let map = seg.map in
  let n = seg.rows in
  let rows_a = Array.make n [||] in
  (match seg.col_offset with
  | [| o0 |] when seg.arity = 1 ->
      for i = 0 to n - 1 do
        let lc0 = get_u32 map (o0 + (4 * i)) in
        if lc0 >= dict_n then oob seg i 0 lc0;
        Array.unsafe_set rows_a i [| Array.unsafe_get l2g lc0 |]
      done
  | [| o0; o1 |] ->
      for i = 0 to n - 1 do
        let b = 4 * i in
        let lc0 = get_u32 map (o0 + b) and lc1 = get_u32 map (o1 + b) in
        if lc0 >= dict_n then oob seg i 0 lc0;
        if lc1 >= dict_n then oob seg i 1 lc1;
        Array.unsafe_set rows_a i
          [| Array.unsafe_get l2g lc0; Array.unsafe_get l2g lc1 |]
      done
  | [| o0; o1; o2 |] ->
      for i = 0 to n - 1 do
        let b = 4 * i in
        let lc0 = get_u32 map (o0 + b)
        and lc1 = get_u32 map (o1 + b)
        and lc2 = get_u32 map (o2 + b) in
        if lc0 >= dict_n then oob seg i 0 lc0;
        if lc1 >= dict_n then oob seg i 1 lc1;
        if lc2 >= dict_n then oob seg i 2 lc2;
        Array.unsafe_set rows_a i
          [|
            Array.unsafe_get l2g lc0;
            Array.unsafe_get l2g lc1;
            Array.unsafe_get l2g lc2;
          |]
      done
  | _ ->
      for i = 0 to n - 1 do
        let row = Array.make seg.arity 0 in
        fill_row seg l2g row i;
        Array.unsafe_set rows_a i row
      done);
  Relation.of_unique_codes ~name:seg.name ~dict ~schema:seg.schema rows_a
