(* The fsync discipline.

   A store publishes state by writing immutable files and renaming a
   fresh MANIFEST over the old one.  Rename gives atomicity against
   process death (kill -9): a reader sees the old manifest or the new
   one, never half of either.  It does NOT give durability against
   power loss — the rename, the manifest bytes and the segment bytes
   all live in the page cache until the kernel flushes them, and they
   can reach disk out of order (a manifest naming a segment whose bytes
   never landed is exactly the torn state the CRCs then refuse).

   Three modes close that window to taste:

     Full   every publish syncs in write order before it is
            acknowledged: segment file fd, then MANIFEST.tmp fd, then
            the directory fd after the rename.  An acknowledged write
            survives power loss.
     Async  the same sync requests are queued to a background flusher
            domain and the acknowledgement does not wait.  Process
            death loses nothing (the rename already happened); power
            loss can lose the last few acknowledged writes, never
            tear the store.
     Off    no syncing at all.  Same crash-atomicity as Async, widest
            power-loss window; for throwaway stores and benches.

   The mode is process-global (one knob, like the fault registry):
   storage has many entry points (server catalog, CLI compact, the
   background compactor) and they must agree. *)

module Metrics = Paradb_telemetry.Metrics

type mode = Full | Async | Off

let to_string = function Full -> "full" | Async -> "async" | Off -> "off"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "full" -> Some Full
  | "async" -> Some Async
  | "off" -> Some Off
  | _ -> None

let current = Atomic.make Full

let mode () = Atomic.get current

let m_fsync = Metrics.counter "storage.fsync.calls"
let m_async_queued = Metrics.counter "storage.fsync.async_queued"

let env_var = "PARADB_DURABILITY"

let init_from_env () =
  match Sys.getenv_opt env_var with
  | None -> ()
  | Some raw -> (
      match of_string raw with
      | Some m -> Atomic.set current m
      | None ->
          invalid_arg
            (Printf.sprintf "%s: expected full, async or off, got %S" env_var
               raw))

(* ------------------------------------------------------------------ *)
(* The sync primitive: open read-only, fsync, close.  Path-based on
   purpose — the writers use buffered channels whose fds are private,
   and fsync flushes the file's dirty pages whichever fd names it.
   Directories sync the same way (O_RDONLY on a directory is the one
   portable way to get a directory fd). *)

let fsync_path path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> () (* vanished: nothing left to sync *)
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Metrics.incr m_fsync;
          try Unix.fsync fd with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Async flusher: one lazily spawned domain draining a queue of paths.
   The queue deduplicates nothing — fsync on a clean file is cheap and
   correctness never depends on the flusher at all (it only narrows
   the power-loss window). *)

type flusher = {
  mu : Mutex.t;
  nonempty : Condition.t;
  idle : Condition.t;
  queue : string Queue.t;
  mutable in_flight : int;
}

let flusher =
  lazy
    (let f =
       {
         mu = Mutex.create ();
         nonempty = Condition.create ();
         idle = Condition.create ();
         queue = Queue.create ();
         in_flight = 0;
       }
     in
     let _domain =
       Domain.spawn (fun () ->
           while true do
             let path =
               Mutex.protect f.mu (fun () ->
                   while Queue.is_empty f.queue do
                     Condition.wait f.nonempty f.mu
                   done;
                   f.in_flight <- f.in_flight + 1;
                   Queue.pop f.queue)
             in
             fsync_path path;
             Mutex.protect f.mu (fun () ->
                 f.in_flight <- f.in_flight - 1;
                 if f.in_flight = 0 && Queue.is_empty f.queue then
                   Condition.broadcast f.idle)
           done)
     in
     f)

let enqueue path =
  let f = Lazy.force flusher in
  Metrics.incr m_async_queued;
  Mutex.protect f.mu (fun () ->
      Queue.push path f.queue;
      Condition.signal f.nonempty)

let drain () =
  if Lazy.is_val flusher then begin
    let f = Lazy.force flusher in
    Mutex.protect f.mu (fun () ->
        while not (Queue.is_empty f.queue && f.in_flight = 0) do
          Condition.wait f.idle f.mu
        done)
  end

(* ------------------------------------------------------------------ *)

let file_sync path =
  match Atomic.get current with
  | Full -> fsync_path path
  | Async -> enqueue path
  | Off -> ()

let dir_sync = file_sync

let set m = Atomic.set current m
