(** The binary columnar segment: one relation's rows, dictionary-encoded
    and checksummed, in an mmap-able file.

    Layout (all integers little-endian; see DESIGN.md §14 for the byte
    diagram):

    {v
      fixed header (48 B): magic "PDBSEG1\n", version u32, arity u32,
                           rows u64, dict_count u64, dict_len u64,
                           name_len u32, schema_len u32
      name bytes, schema bytes (u16-length-prefixed attribute names)
      header crc32 (u32)                 — covers everything above
      dictionary payload (dict_len B)    — entries: tag u8 (0 = Int,
                                           1 = Str), i64 / u32 len + bytes
      dictionary crc32 (u32)
      arity x column page:
        rows x u32 local codes, then the page's crc32 (u32)
    v}

    Codes inside a segment are {e local}: the dictionary section assigns
    local code [i] to its [i]th entry, in first-seen row order.  Opening
    translates local codes to the process dictionary, so a segment file
    is position-independent — it can be copied between machines and
    opened into any process.

    Every read validates magic, version, section bounds and all four
    checksum classes before any row is decoded: a flipped byte anywhere
    in the file raises {!Corrupt} with the path and section, never a
    crash or a silently wrong relation. *)

(** Raised on any validation failure; the message names the file and the
    failing section. *)
exception Corrupt of string

(** An opened, fully checksum-validated segment. *)
type t

val name : t -> string
val schema : t -> string list
val arity : t -> int
val rows : t -> int

(** [write ~path r] serializes [r] to [path] (written in full before
    this returns; the caller sequences any manifest update after).
    Returns the byte size of the file.  Raises [Sys_error] on I/O
    failure and [Invalid_argument] on an unrepresentable relation
    (name or attribute longer than the format's length fields). *)
val write : path:string -> Paradb_relational.Relation.t -> int

(** [openf path] maps the file and validates it.  Raises {!Corrupt} on
    any malformation and [Sys_error] if the file cannot be opened. *)
val openf : string -> t

(** [to_relation seg] decodes the segment into a relation over [dict]
    (default {!Paradb_relational.Dictionary.global}): dictionary entries
    are interned once, then column pages are translated code-for-code —
    no text parsing, no per-cell boxing. *)
val to_relation : ?dict:Paradb_relational.Dictionary.t -> t -> Paradb_relational.Relation.t

(** [append_rows seg ~dict ~store] decodes [seg]'s rows into an existing
    row accumulator via [store] (called once per row with a scratch
    buffer the callee must copy).  Lets the caller union several
    segments of one relation without intermediate relations. *)
val append_rows :
  t -> dict:Paradb_relational.Dictionary.t ->
  store:(Paradb_relational.Code_row.t -> unit) -> unit

(** [rows_seq seg ~dict] — the rows as code rows over [dict].  Every
    element is the same scratch buffer, overwritten between elements;
    consumers must copy what they keep (as {!Relation.of_codes} does). *)
val rows_seq :
  t -> dict:Paradb_relational.Dictionary.t ->
  Paradb_relational.Code_row.t Seq.t
