(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320) — the per-section
    checksum of the segment format.

    Checksums are returned as non-negative OCaml ints in
    [0 .. 0xFFFFFFFF].  The incremental API threads a running state so a
    section can be checksummed as it is written; [finish] applies the
    final complement. *)

type state

val init : state

(** Feed a slice of bytes into the running checksum. *)
val feed_bytes : state -> Bytes.t -> int -> int -> state

val feed_string : state -> string -> state
val feed_byte : state -> int -> state

(** The checksum of everything fed so far. *)
val finish : state -> int

(** One-shot checksum of [len] bytes of [b] starting at [pos]. *)
val of_bytes : Bytes.t -> int -> int -> int

(** One-shot checksum over a mapped file region. *)
val of_bigarray :
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t ->
  int -> int -> int
