(* Table-driven CRC-32 of the reflected polynomial 0xEDB88320.  All
   arithmetic stays in the low 32 bits of the native int, so no boxing
   on the hot path.  Incremental feeds go one byte per step; the bulk
   entry points below use slicing-by-8 — eight independent table
   lookups per 8-byte group, which breaks the per-byte dependency chain
   and roughly halves the cost of checksumming a mmap'd column page. *)

let table =
  let t = Array.make 256 0 in
  for n = 0 to 255 do
    let c = ref n in
    for _ = 0 to 7 do
      c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
    done;
    t.(n) <- !c
  done;
  t

(* slice.(k) is the CRC contribution of a byte [k] positions before the
   end of its 8-byte group: slice.(0) = [table], and each further level
   folds one more zero byte through the base table. *)
let slice =
  let s = Array.make_matrix 8 256 0 in
  Array.blit table 0 s.(0) 0 256;
  for k = 1 to 7 do
    for n = 0 to 255 do
      let c = s.(k - 1).(n) in
      s.(k).(n) <- (c lsr 8) lxor Array.unsafe_get table (c land 0xFF)
    done
  done;
  s

type state = int

let init = 0xFFFFFFFF

let feed_byte crc b =
  (crc lsr 8) lxor Array.unsafe_get table ((crc lxor b) land 0xFF)

let feed_bytes crc b pos len =
  let crc = ref crc in
  for i = pos to pos + len - 1 do
    crc := feed_byte !crc (Char.code (Bytes.unsafe_get b i))
  done;
  !crc

let feed_string crc s =
  let crc = ref crc in
  for i = 0 to String.length s - 1 do
    crc := feed_byte !crc (Char.code (String.unsafe_get s i))
  done;
  !crc

let finish crc = crc lxor 0xFFFFFFFF

let t0 = slice.(0)
and t1 = slice.(1)
and t2 = slice.(2)
and t3 = slice.(3)
and t4 = slice.(4)
and t5 = slice.(5)
and t6 = slice.(6)
and t7 = slice.(7)

let of_bytes b pos len =
  let crc = ref init in
  let i = ref pos in
  let stop = pos + len in
  while !i + 8 <= stop do
    let p = !i in
    let byte k = Char.code (Bytes.unsafe_get b (p + k)) in
    let c = !crc lxor (byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24)) in
    crc :=
      Array.unsafe_get t7 (c land 0xFF)
      lxor Array.unsafe_get t6 ((c lsr 8) land 0xFF)
      lxor Array.unsafe_get t5 ((c lsr 16) land 0xFF)
      lxor Array.unsafe_get t4 ((c lsr 24) land 0xFF)
      lxor Array.unsafe_get t3 (byte 4)
      lxor Array.unsafe_get t2 (byte 5)
      lxor Array.unsafe_get t1 (byte 6)
      lxor Array.unsafe_get t0 (byte 7);
    i := p + 8
  done;
  crc := feed_bytes !crc b !i (stop - !i);
  finish !crc

let of_bigarray (a : (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t)
    pos len =
  let crc = ref init in
  let i = ref pos in
  let stop = pos + len in
  while !i + 8 <= stop do
    let p = !i in
    let byte k = Char.code (Bigarray.Array1.unsafe_get a (p + k)) in
    let c = !crc lxor (byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24)) in
    crc :=
      Array.unsafe_get t7 (c land 0xFF)
      lxor Array.unsafe_get t6 ((c lsr 8) land 0xFF)
      lxor Array.unsafe_get t5 ((c lsr 16) land 0xFF)
      lxor Array.unsafe_get t4 ((c lsr 24) land 0xFF)
      lxor Array.unsafe_get t3 (byte 4)
      lxor Array.unsafe_get t2 (byte 5)
      lxor Array.unsafe_get t1 (byte 6)
      lxor Array.unsafe_get t0 (byte 7);
    i := p + 8
  done;
  while !i < stop do
    crc := feed_byte !crc (Char.code (Bigarray.Array1.unsafe_get a !i));
    incr i
  done;
  finish !crc
