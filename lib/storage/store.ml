module Dictionary = Paradb_relational.Dictionary
module Relation = Paradb_relational.Relation
module Database = Paradb_relational.Database

type entry = { file : string; relation : string; rows : int }

let manifest_file = "MANIFEST"
let manifest_magic = "paradb-segments 1"

let corrupt path fmt =
  Format.kasprintf
    (fun s -> raise (Segment.Corrupt (Printf.sprintf "manifest %s: %s" path s)))
    fmt

let is_store path =
  Sys.file_exists path
  && Sys.is_directory path
  && Sys.file_exists (Filename.concat path manifest_file)

(* ------------------------------------------------------------------ *)
(* Manifest *)

let entries dir =
  let path = Filename.concat dir manifest_file in
  let text = In_channel.with_open_bin path In_channel.input_all in
  match String.split_on_char '\n' text with
  | [] -> corrupt path "empty manifest"
  | first :: rest ->
      if String.trim first <> manifest_magic then
        corrupt path "bad first line %S (expected %S)" first manifest_magic;
      List.filter_map
        (fun line ->
          let line = String.trim line in
          if line = "" then None
          else
            match String.split_on_char ' ' line with
            | [ "segment"; file; relation; rows ] -> (
                match int_of_string_opt rows with
                | Some rows when rows >= 0 -> Some { file; relation; rows }
                | _ -> corrupt path "bad row count in line %S" line)
            | _ -> corrupt path "unparsable line %S" line)
        rest

let write_manifest dir es =
  let buf = Buffer.create 256 in
  Buffer.add_string buf manifest_magic;
  Buffer.add_char buf '\n';
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "segment %s %s %d\n" e.file e.relation e.rows))
    es;
  let tmp = Filename.concat dir (manifest_file ^ ".tmp") in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf));
  Sys.rename tmp (Filename.concat dir manifest_file)

(* Relation names are parser identifiers, but keep file names safe
   against anything unexpected. *)
let sanitize_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> c
      | _ -> '_')
    name

let seq_of_file file =
  try Scanf.sscanf file "seg-%d-" (fun n -> n) with Scanf.Scan_failure _ | Failure _ | End_of_file -> 0

let next_seq es = 1 + List.fold_left (fun acc e -> max acc (seq_of_file e.file)) 0 es

let segment_file seq name =
  Printf.sprintf "seg-%06d-%s.seg" seq (sanitize_name name)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* ------------------------------------------------------------------ *)
(* Writing *)

let write_segment dir seq r =
  let file = segment_file seq (Relation.name r) in
  let bytes = Segment.write ~path:(Filename.concat dir file) r in
  ({ file; relation = Relation.name r; rows = Relation.cardinality r }, bytes)

let compact ~dir db =
  mkdir_p dir;
  let _, entries, total =
    List.fold_left
      (fun (seq, es, total) r ->
        let e, bytes = write_segment dir seq r in
        (seq + 1, e :: es, total + bytes))
      (1, [], 0) (Database.relations db)
  in
  write_manifest dir (List.rev entries);
  total

let append ~dir r =
  let es = entries dir in
  let e, _bytes = write_segment dir (next_seq es) r in
  write_manifest dir (es @ [ e ])


(* ------------------------------------------------------------------ *)
(* Opening *)

let open_entry ~dir e =
  let path = Filename.concat dir e.file in
  let seg = Segment.openf path in
  if Segment.name seg <> e.relation then
    corrupt
      (Filename.concat dir manifest_file)
      "segment %s holds relation %S, manifest says %S" e.file
      (Segment.name seg) e.relation;
  if Segment.rows seg <> e.rows then
    corrupt
      (Filename.concat dir manifest_file)
      "segment %s holds %d rows, manifest says %d" e.file (Segment.rows seg)
      e.rows;
  seg

(* Union of one relation's segments in manifest order.  A single
   segment (the common case: every relation right after a compact)
   takes the trusted bulk-decode path — no dedup, lazy probe table.
   Multi-segment relations may repeat rows across deltas, so they go
   through [of_codes]'s set semantics. *)
let relation_of_segments ~dict = function
  | [] -> assert false
  | [ seg ] -> Segment.to_relation ~dict seg
  | first :: rest as segs ->
      let schema = Segment.schema first in
      List.iter
        (fun s ->
          if Segment.schema s <> schema then
            raise
              (Segment.Corrupt
                 (Printf.sprintf
                    "relation %s: segments disagree on schema (arity %d vs %d)"
                    (Segment.name first) (Segment.arity first)
                    (Segment.arity s))))
        rest;
      let total = List.fold_left (fun acc s -> acc + Segment.rows s) 0 segs in
      let rows =
        Seq.concat_map (fun seg -> Segment.rows_seq seg ~dict) (List.to_seq segs)
      in
      Relation.of_codes ~name:(Segment.name first) ~dict ~size_hint:total
        ~schema rows

let open_dir ?(dict = Dictionary.global) dir =
  let es = entries dir in
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let seg = open_entry ~dir e in
      match Hashtbl.find_opt tbl e.relation with
      | Some segs -> segs := seg :: !segs
      | None ->
          Hashtbl.add tbl e.relation (ref [ seg ]);
          order := e.relation :: !order)
    es;
  List.fold_left
    (fun db name ->
      let segs = List.rev !(Hashtbl.find tbl name) in
      Database.add (relation_of_segments ~dict segs) db)
    Database.empty (List.rev !order)

(* In-place fold of an existing store: union every relation's delta
   segments, write one fresh segment per relation (under sequence
   numbers above every live one), swap the manifest, then delete the
   superseded files.  Crash-safe at every step: until the manifest
   rename the old segment set is live and the new files are orphans;
   after it the old files are orphans and removal is best-effort
   cleanup.  Returns (segments before, segments after, bytes
   written). *)
let fold_in_place ~dir =
  let old_entries = entries dir in
  let db = open_dir dir in
  let seq0 = next_seq old_entries in
  let _, fresh, bytes =
    List.fold_left
      (fun (seq, es, total) r ->
        let e, b = write_segment dir seq r in
        (seq + 1, e :: es, total + b))
      (seq0, [], 0) (Database.relations db)
  in
  write_manifest dir (List.rev fresh);
  List.iter
    (fun e -> try Sys.remove (Filename.concat dir e.file) with Sys_error _ -> ())
    old_entries;
  (List.length old_entries, List.length fresh, bytes)

let load_database path =
  if is_store path then
    match open_dir path with
    | db -> Ok db
    | exception Segment.Corrupt msg -> Error ("storage: " ^ msg)
    | exception Sys_error msg -> Error msg
  else if Sys.file_exists path && Sys.is_directory path && path <> "-" then
    Error (Printf.sprintf "storage: %s is a directory with no %s" path manifest_file)
  else Paradb_query.Source.load_database path
