module Dictionary = Paradb_relational.Dictionary
module Relation = Paradb_relational.Relation
module Database = Paradb_relational.Database

module Metrics = Paradb_telemetry.Metrics

type entry = { file : string; relation : string; rows : int }

let manifest_file = "MANIFEST"
let orphans_dir = "orphans"

(* v1 manifests had no trailer, so a truncation that happens to land on
   a line boundary parses cleanly and silently forgets relations.  v2
   closes that hole with a mandatory [end <count> <crc32>] trailer over
   the entry lines; v1 stores are still readable (and upgraded to v2 on
   their next manifest swap). *)
let manifest_magic_v1 = "paradb-segments 1"
let manifest_magic = "paradb-segments 2"

let m_orphans = Metrics.counter "storage.orphans.cleaned"

let corrupt path fmt =
  Format.kasprintf
    (fun s -> raise (Segment.Corrupt (Printf.sprintf "manifest %s: %s" path s)))
    fmt

let is_store path =
  Sys.file_exists path
  && Sys.is_directory path
  && Sys.file_exists (Filename.concat path manifest_file)

(* ------------------------------------------------------------------ *)
(* Manifest *)

let entry_line e = Printf.sprintf "segment %s %s %d\n" e.file e.relation e.rows

let parse_entry path line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "segment"; file; relation; rows ] -> (
      match int_of_string_opt rows with
      | Some rows when rows >= 0 -> { file; relation; rows }
      | _ -> corrupt path "bad row count in line %S" line)
  | _ -> corrupt path "unparsable line %S" line

(* v1 body: entry lines to end of file, blank lines ignored.  No
   integrity check beyond per-line syntax — which is exactly why v2
   exists. *)
let parse_v1 path lines =
  List.filter_map
    (fun line ->
      if String.trim line = "" then None else Some (parse_entry path line))
    lines

(* v2 body: entry lines, then an [end <count> <crc32hex>] trailer whose
   checksum covers the raw entry-line bytes.  Anything cut off before
   the trailer — including a cut exactly on a line boundary, which v1
   accepted — fails as truncated; bytes after the trailer fail too. *)
let parse_v2 path lines =
  let rec go acc crc = function
    | [] -> corrupt path "truncated: missing end trailer"
    | line :: rest -> (
        match String.split_on_char ' ' (String.trim line) with
        | [ "end"; count; stored ] ->
            List.iter
              (fun l ->
                if String.trim l <> "" then
                  corrupt path "bytes after end trailer: %S" l)
              rest;
            let count =
              match int_of_string_opt count with
              | Some n when n >= 0 -> n
              | _ -> corrupt path "bad entry count in trailer %S" line
            in
            let stored =
              match int_of_string_opt ("0x" ^ stored) with
              | Some c -> c
              | None -> corrupt path "bad checksum in trailer %S" line
            in
            if List.length acc <> count then
              corrupt path "trailer says %d entries, found %d" count
                (List.length acc);
            let computed = Crc32.finish crc in
            if computed <> stored then
              corrupt path "entry checksum mismatch (stored %08x, computed %08x)"
                stored computed;
            List.rev acc
        | _ ->
            go
              (parse_entry path line :: acc)
              (Crc32.feed_string crc (line ^ "\n"))
              rest)
  in
  go [] Crc32.init lines

let entries dir =
  let path = Filename.concat dir manifest_file in
  let text = In_channel.with_open_bin path In_channel.input_all in
  match String.split_on_char '\n' text with
  | [] -> corrupt path "empty manifest"
  | first :: rest ->
      let first = String.trim first in
      if first = manifest_magic then parse_v2 path rest
      else if first = manifest_magic_v1 then parse_v1 path rest
      else
        corrupt path "bad first line %S (expected %S)" first manifest_magic

(* The publish protocol, in write order (see DESIGN.md §16):
   1. segment bytes reach their files (callers sync them first),
   2. MANIFEST.tmp is written and synced,
   3. the rename swaps it live,
   4. the directory entry is synced.
   Under [Durability.Full] each sync completes before the next step; a
   kill at any point leaves either the old manifest or the new one, and
   the new one never names unsynced segment bytes. *)
let write_manifest dir es =
  let buf = Buffer.create 256 in
  Buffer.add_string buf manifest_magic;
  Buffer.add_char buf '\n';
  let crc =
    List.fold_left
      (fun crc e ->
        let line = entry_line e in
        Buffer.add_string buf line;
        Crc32.feed_string crc line)
      Crc32.init es
  in
  Buffer.add_string buf
    (Printf.sprintf "end %d %08x\n" (List.length es) (Crc32.finish crc));
  let tmp = Filename.concat dir (manifest_file ^ ".tmp") in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf));
  Io_fault.maybe_torn_write tmp;
  Durability.file_sync tmp;
  Io_fault.maybe_crash_after_write tmp;
  Sys.rename tmp (Filename.concat dir manifest_file);
  Durability.dir_sync dir

(* Relation names are parser identifiers, but keep file names safe
   against anything unexpected. *)
let sanitize_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> c
      | _ -> '_')
    name

let seq_of_file file =
  try Scanf.sscanf file "seg-%d-" (fun n -> n) with Scanf.Scan_failure _ | Failure _ | End_of_file -> 0

let next_seq es = 1 + List.fold_left (fun acc e -> max acc (seq_of_file e.file)) 0 es

let segment_file seq name =
  Printf.sprintf "seg-%06d-%s.seg" seq (sanitize_name name)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* ------------------------------------------------------------------ *)
(* Writing *)

(* Segment bytes are synced before the manifest can name them — step 1
   of the publish protocol in [write_manifest]'s comment. *)
let write_segment dir seq r =
  let file = segment_file seq (Relation.name r) in
  let path = Filename.concat dir file in
  let bytes = Segment.write ~path r in
  Durability.file_sync path;
  Io_fault.maybe_crash_after_write path;
  ({ file; relation = Relation.name r; rows = Relation.cardinality r }, bytes)

let compact ~dir db =
  mkdir_p dir;
  let _, entries, total =
    List.fold_left
      (fun (seq, es, total) r ->
        let e, bytes = write_segment dir seq r in
        (seq + 1, e :: es, total + bytes))
      (1, [], 0) (Database.relations db)
  in
  write_manifest dir (List.rev entries);
  total

let append ~dir r =
  let es = entries dir in
  let e, _bytes = write_segment dir (next_seq es) r in
  write_manifest dir (es @ [ e ])


(* ------------------------------------------------------------------ *)
(* Opening *)

let open_entry ~dir e =
  let path = Filename.concat dir e.file in
  let seg = Segment.openf path in
  if Segment.name seg <> e.relation then
    corrupt
      (Filename.concat dir manifest_file)
      "segment %s holds relation %S, manifest says %S" e.file
      (Segment.name seg) e.relation;
  if Segment.rows seg <> e.rows then
    corrupt
      (Filename.concat dir manifest_file)
      "segment %s holds %d rows, manifest says %d" e.file (Segment.rows seg)
      e.rows;
  seg

(* Union of one relation's segments in manifest order.  A single
   segment (the common case: every relation right after a compact)
   takes the trusted bulk-decode path — no dedup, lazy probe table.
   Multi-segment relations may repeat rows across deltas, so they go
   through [of_codes]'s set semantics. *)
let relation_of_segments ~dict = function
  | [] -> assert false
  | [ seg ] -> Segment.to_relation ~dict seg
  | first :: rest as segs ->
      let schema = Segment.schema first in
      List.iter
        (fun s ->
          if Segment.schema s <> schema then
            raise
              (Segment.Corrupt
                 (Printf.sprintf
                    "relation %s: segments disagree on schema (arity %d vs %d)"
                    (Segment.name first) (Segment.arity first)
                    (Segment.arity s))))
        rest;
      let total = List.fold_left (fun acc s -> acc + Segment.rows s) 0 segs in
      let rows =
        Seq.concat_map (fun seg -> Segment.rows_seq seg ~dict) (List.to_seq segs)
      in
      Relation.of_codes ~name:(Segment.name first) ~dict ~size_hint:total
        ~schema rows

(* ------------------------------------------------------------------ *)
(* Recovery: quarantine anything a crash left behind.

   Every failure mode of the publish protocol leaves exactly one kind
   of debris — files in the store directory the live manifest does not
   reference: a MANIFEST.tmp from a death between write and rename, or
   segment files whose manifest swap never happened (and, after an
   interrupted [fold_in_place], superseded segments whose removal never
   ran).  None of it is ever read, but it accumulates forever and a
   later writer could collide with a stale [.tmp], so recovery moves it
   into [orphans/] (rename, no copy) where an operator can inspect or
   delete it.  Quarantine rather than delete: if the manifest itself is
   the casualty, the orphans are the only surviving copy of the data.

   Best-effort by design — a read-only store just skips recovery. *)

let quarantine dir file =
  let dst_dir = Filename.concat dir orphans_dir in
  (try mkdir_p dst_dir with Sys_error _ | Unix.Unix_error _ -> ());
  let dst =
    let base = Filename.concat dst_dir file in
    if not (Sys.file_exists base) then base
    else
      let rec fresh k =
        let p = Printf.sprintf "%s.%d" base k in
        if Sys.file_exists p then fresh (k + 1) else p
      in
      fresh 1
  in
  match Sys.rename (Filename.concat dir file) dst with
  | () ->
      Metrics.incr m_orphans;
      true
  | exception Sys_error _ -> false

let recover dir =
  let es = entries dir in
  let live = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace live e.file ()) es;
  let cleaned = ref 0 in
  (match Sys.readdir dir with
  | files ->
      Array.iter
        (fun file ->
          let orphan =
            file <> manifest_file
            && file <> orphans_dir
            && (Filename.check_suffix file ".tmp"
               || (Filename.check_suffix file ".seg"
                  && not (Hashtbl.mem live file)))
          in
          if orphan && quarantine dir file then incr cleaned)
        files
  | exception Sys_error _ -> ());
  !cleaned

let open_dir ?(dict = Dictionary.global) dir =
  let (_ : int) = recover dir in
  let es = entries dir in
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let seg = open_entry ~dir e in
      match Hashtbl.find_opt tbl e.relation with
      | Some segs -> segs := seg :: !segs
      | None ->
          Hashtbl.add tbl e.relation (ref [ seg ]);
          order := e.relation :: !order)
    es;
  List.fold_left
    (fun db name ->
      let segs = List.rev !(Hashtbl.find tbl name) in
      Database.add (relation_of_segments ~dict segs) db)
    Database.empty (List.rev !order)

(* In-place fold of an existing store: union every relation's delta
   segments, write one fresh segment per relation (under sequence
   numbers above every live one), swap the manifest, then delete the
   superseded files.  Crash-safe at every step: until the manifest
   rename the old segment set is live and the new files are orphans;
   after it the old files are orphans and removal is best-effort
   cleanup.  Returns (segments before, segments after, bytes
   written). *)
let fold_in_place ~dir =
  let old_entries = entries dir in
  let db = open_dir dir in
  let seq0 = next_seq old_entries in
  let _, fresh, bytes =
    List.fold_left
      (fun (seq, es, total) r ->
        let e, b = write_segment dir seq r in
        (seq + 1, e :: es, total + b))
      (seq0, [], 0) (Database.relations db)
  in
  write_manifest dir (List.rev fresh);
  List.iter
    (fun e -> try Sys.remove (Filename.concat dir e.file) with Sys_error _ -> ())
    old_entries;
  (List.length old_entries, List.length fresh, bytes)

let load_database path =
  if is_store path then
    match open_dir path with
    | db -> Ok db
    | exception Segment.Corrupt msg -> Error ("storage: " ^ msg)
    | exception Sys_error msg -> Error msg
  else if Sys.file_exists path && Sys.is_directory path && path <> "-" then
    Error (Printf.sprintf "storage: %s is a directory with no %s" path manifest_file)
  else Paradb_query.Source.load_database path
