(** A segment directory: one database as a set of immutable segment
    files plus a [MANIFEST] naming the live ones.

    The manifest is a text file — [paradb-segments 2] on the first line,
    one [segment <file> <relation> <rows>] line per live segment in load
    order, and an [end <count> <crc32hex>] trailer checksumming the
    entry lines, so any truncation (even one landing exactly on a line
    boundary) is detected rather than silently dropping relations.
    Version-1 manifests (no trailer) remain readable and upgrade to v2
    on their next swap.  Updates write [MANIFEST.tmp] and [Sys.rename]
    it over the old manifest, so a reader always sees a complete segment
    set: either the old one or the new one, never a half-written list.

    Durability follows the process-global {!Durability} mode: under
    [Full], segment bytes, the manifest tmp and the directory entry are
    fsynced in write order before a publish returns, so an acknowledged
    write survives power loss; [Async]/[Off] keep the same
    crash-atomicity with a wider power-loss window.

    Segment files themselves are never rewritten; incremental [LOAD]
    appends delta segments, and a relation's rows are the set union of
    its segments in manifest order.  Files a crash stranded — a stale
    [MANIFEST.tmp], segment files the live manifest does not reference —
    are quarantined into [orphans/] by {!recover}, which {!open_dir}
    runs automatically. *)

type entry = { file : string; relation : string; rows : int }

val manifest_file : string

(** Subdirectory quarantined crash debris is moved into by {!recover}. *)
val orphans_dir : string

(** [sanitize_name s] maps a relation or database name to a filesystem-
    safe token (anything outside [[A-Za-z0-9_-]] becomes ['_']). *)
val sanitize_name : string -> string

(** [is_store path] — does [path] look like a segment directory (a
    directory containing a manifest)? *)
val is_store : string -> bool

(** [entries dir] parses the manifest.  Raises {!Segment.Corrupt} on a
    malformed manifest and [Sys_error] if it cannot be read. *)
val entries : string -> entry list

(** [compact ~dir db] writes one segment per relation of [db] into
    [dir] (created if missing) and swaps in a manifest listing exactly
    those segments.  Returns the total byte size written.  Compacting
    over an existing store replaces its manifest; superseded segment
    files are left behind as orphans. *)
val compact : dir:string -> Paradb_relational.Database.t -> int

(** [append ~dir r] writes [r] as a delta segment and atomically extends
    the manifest.  The relation's visible rows become the union of all
    its segments. *)
val append : dir:string -> Paradb_relational.Relation.t -> unit

(** [fold_in_place ~dir] compacts an existing store in place: unions
    each relation's delta segments, writes one fresh segment per
    relation, atomically swaps the manifest, and removes the superseded
    files.  Crash-safe: a reader sees either the old segment set or the
    new one.  Returns (segments before, segments after, bytes written).
    Raises {!Segment.Corrupt} / [Sys_error] like {!open_dir}. *)
val fold_in_place : dir:string -> int * int * int

(** [recover dir] quarantines crash debris — a leftover [MANIFEST.tmp],
    any [.tmp] file, and segment files the live manifest does not
    reference — into [dir]/[orphans/], counting each move on the
    [storage.orphans.cleaned] metric.  Returns the number of files
    moved.  Best-effort: unmovable files are skipped, a read-only store
    recovers nothing.  Raises like {!entries} if the manifest itself is
    unreadable. *)
val recover : string -> int

(** [open_dir dir] runs {!recover}, then opens and validates every live
    segment and builds the database (multi-segment relations are
    unioned with set semantics).  Raises {!Segment.Corrupt} on any
    validation failure — including a manifest/segment disagreement on
    name or row count. *)
val open_dir :
  ?dict:Paradb_relational.Dictionary.t -> string -> Paradb_relational.Database.t

(** [load_database path] — the one entry point front ends use: a
    directory is opened as a segment store, anything else is streamed as
    a text fact file via {!Paradb_query.Source.load_database}.  Storage
    failures come back as [Error ("storage: ...")], never exceptions. *)
val load_database :
  string -> (Paradb_relational.Database.t, string) result
