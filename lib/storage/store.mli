(** A segment directory: one database as a set of immutable segment
    files plus a [MANIFEST] naming the live ones.

    The manifest is a text file — [paradb-segments 1] on the first line,
    then one [segment <file> <relation> <rows>] line per live segment in
    load order.  Updates write [MANIFEST.tmp] and [Sys.rename] it over
    the old manifest, so a reader always sees a complete segment set:
    either the old one or the new one, never a half-written list.
    Segment files themselves are never rewritten; incremental [LOAD]
    appends delta segments, and a relation's rows are the set union of
    its segments in manifest order.  Orphaned segment files (from a
    crash between segment write and manifest swap) are ignored. *)

type entry = { file : string; relation : string; rows : int }

val manifest_file : string

(** [sanitize_name s] maps a relation or database name to a filesystem-
    safe token (anything outside [[A-Za-z0-9_-]] becomes ['_']). *)
val sanitize_name : string -> string

(** [is_store path] — does [path] look like a segment directory (a
    directory containing a manifest)? *)
val is_store : string -> bool

(** [entries dir] parses the manifest.  Raises {!Segment.Corrupt} on a
    malformed manifest and [Sys_error] if it cannot be read. *)
val entries : string -> entry list

(** [compact ~dir db] writes one segment per relation of [db] into
    [dir] (created if missing) and swaps in a manifest listing exactly
    those segments.  Returns the total byte size written.  Compacting
    over an existing store replaces its manifest; superseded segment
    files are left behind as orphans. *)
val compact : dir:string -> Paradb_relational.Database.t -> int

(** [append ~dir r] writes [r] as a delta segment and atomically extends
    the manifest.  The relation's visible rows become the union of all
    its segments. *)
val append : dir:string -> Paradb_relational.Relation.t -> unit

(** [fold_in_place ~dir] compacts an existing store in place: unions
    each relation's delta segments, writes one fresh segment per
    relation, atomically swaps the manifest, and removes the superseded
    files.  Crash-safe: a reader sees either the old segment set or the
    new one.  Returns (segments before, segments after, bytes written).
    Raises {!Segment.Corrupt} / [Sys_error] like {!open_dir}. *)
val fold_in_place : dir:string -> int * int * int

(** [open_dir dir] opens and validates every live segment and builds the
    database (multi-segment relations are unioned with set semantics).
    Raises {!Segment.Corrupt} on any validation failure — including a
    manifest/segment disagreement on name or row count. *)
val open_dir :
  ?dict:Paradb_relational.Dictionary.t -> string -> Paradb_relational.Database.t

(** [load_database path] — the one entry point front ends use: a
    directory is opened as a segment store, anything else is streamed as
    a text fact file via {!Paradb_query.Source.load_database}.  Storage
    failures come back as [Error ("storage: ...")], never exceptions. *)
val load_database :
  string -> (Paradb_relational.Database.t, string) result
