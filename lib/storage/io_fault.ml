(* Write-path fault injection for crash testing the storage engine.

   [Crash] simulates the process dying at an injection point: the write
   in flight is abandoned exactly as [kill -9] would abandon it — after
   [maybe_torn_write] the file on disk holds a random prefix of what
   was written (the torn page a power cut leaves), after
   [maybe_crash_after_write] the file is complete but nothing that
   should follow it (manifest swap, directory sync) has happened.
   Recovery code is then exercised in-process: the caller catches
   [Crash], reopens the store, and asserts the acknowledged state.

   Configured through the same PARADB_FAULTS variable as the server
   faults ([Paradb_server.Fault] parses the spec and forwards the
   storage keys here — this module cannot live there because storage
   must not depend on the server). *)

module Metrics = Paradb_telemetry.Metrics

exception Crash of string

type config = { torn_write : float; crash_after_write : float; seed : int }

let default = { torn_write = 0.0; crash_after_write = 0.0; seed = 0 }
let enabled = Atomic.make false
let current = Atomic.make default

let m_injected = Metrics.counter "storage.faults.injected"

(* Per-domain RNG keyed on the configured seed, mirroring
   [Paradb_server.Fault]: the background compactor domain and the
   session workers must not share one state. *)
let rng_key =
  Domain.DLS.new_key (fun () ->
      Random.State.make
        [| (Atomic.get current).seed; (Domain.self () :> int); 0x51ed |])

let set = function
  | None ->
      Atomic.set enabled false;
      Atomic.set current default
  | Some c ->
      Atomic.set current c;
      Atomic.set enabled (c.torn_write > 0.0 || c.crash_after_write > 0.0)

let active () = Atomic.get enabled

let rng () = Domain.DLS.get rng_key
let roll p = p > 0.0 && Random.State.float (rng ()) 1.0 < p

(* Tear the freshly written [path] to a random proper prefix, then
   crash.  The prefix can be empty: a create-then-crash leaves a
   zero-byte file, which recovery must also survive. *)
let maybe_torn_write path =
  if Atomic.get enabled && roll (Atomic.get current).torn_write then begin
    Metrics.incr m_injected;
    let size =
      match (Unix.stat path).Unix.st_size with
      | n -> n
      | exception Unix.Unix_error _ -> 0
    in
    let keep = if size = 0 then 0 else Random.State.int (rng ()) size in
    (try Unix.truncate path keep with Unix.Unix_error _ -> ());
    raise (Crash (Printf.sprintf "injected torn write: %s cut to %d bytes" path keep))
  end

let maybe_crash_after_write path =
  if Atomic.get enabled && roll (Atomic.get current).crash_after_write then begin
    Metrics.incr m_injected;
    raise (Crash ("injected crash after writing " ^ path))
  end
