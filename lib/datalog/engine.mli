(** Bottom-up Datalog evaluation — "the ordinary bottom-up evaluation
    algorithm for Datalog that applies repeatedly the rules until a
    fixpoint is reached" (Section 4).

    With IDB arity [r], at most [n^r] tuples exist and the fixpoint is
    reached within [n^r] stages; each stage evaluates conjunctive
    queries.  This is exactly the argument for fixed-arity Datalog's
    W[1] membership, and the instrumentation below exposes the [n^r]
    growth for the Vardi-style benchmark. *)

type strategy =
  | Naive      (** re-derive everything each round *)
  | Seminaive  (** delta-driven rule variants *)

type stats = {
  mutable rounds : int;
  mutable derived : int;  (** tuples derived, including duplicates *)
}

val new_stats : unit -> stats

(** [fixpoint db p] — the database extended with all IDB relations at the
    least fixpoint.  Raises [Invalid_argument] if an IDB predicate name
    collides with an EDB relation.  [budget] is polled once per round and
    per rule, and threaded into the per-rule conjunctive evaluation
    ({!Paradb_telemetry.Budget.Exhausted} propagates): with IDB arity
    [r] the fixpoint needs up to [n^r] rounds, so unbounded runs are a
    real hazard, not a theoretical one. *)
val fixpoint :
  ?budget:Paradb_telemetry.Budget.t ->
  ?strategy:strategy -> ?stats:stats ->
  Paradb_relational.Database.t -> Paradb_query.Program.t ->
  Paradb_relational.Database.t

(** The goal relation at the fixpoint. *)
val evaluate :
  ?budget:Paradb_telemetry.Budget.t ->
  ?strategy:strategy -> ?stats:stats ->
  Paradb_relational.Database.t -> Paradb_query.Program.t ->
  Paradb_relational.Relation.t

(** For a 0-ary goal: is it derivable? *)
val goal_holds :
  ?budget:Paradb_telemetry.Budget.t ->
  ?strategy:strategy -> ?stats:stats ->
  Paradb_relational.Database.t -> Paradb_query.Program.t -> bool
