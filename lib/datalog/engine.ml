module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Tuple = Paradb_relational.Tuple
module Metrics = Paradb_telemetry.Metrics
module Trace = Paradb_telemetry.Trace
module Budget = Paradb_telemetry.Budget
open Paradb_query

type strategy =
  | Naive
  | Seminaive

let m_naive_derived = Metrics.counter "datalog.naive.derived"
let m_seminaive_derived = Metrics.counter "datalog.seminaive.derived"
let m_round_delta = Metrics.histogram "datalog.round_delta_rows"

type stats = {
  mutable rounds : int;
  mutable derived : int;
}

let new_stats () = { rounds = 0; derived = 0 }

let positional_schema arity = List.init arity (Printf.sprintf "a%d")

let empty_idb_relations db p =
  List.map
    (fun name ->
      if Database.mem db name then
        invalid_arg
          ("Datalog: IDB predicate " ^ name ^ " collides with an EDB relation");
      Relation.create ~name ~schema:(positional_schema (Program.arity p name)) [])
    (Program.idb_predicates p)

(* Evaluate one rule body against [db] and return the derived head
   tuples.  [m_derived] is the per-strategy work counter, so naive vs
   semi-naive derivation counts stay comparable in a metrics snapshot. *)
let derive_rule ?budget m_derived stats db rule =
  Budget.poll budget;
  let cq = Rule.to_cq rule in
  let bindings = Paradb_eval.Cq_naive.all_bindings ?budget db cq in
  List.fold_left
    (fun acc b ->
      stats.derived <- stats.derived + 1;
      Metrics.incr m_derived;
      Tuple.Set.add (Cq.head_tuple b cq) acc)
    Tuple.Set.empty bindings

let add_tuples db name rows =
  let rel = Database.find db name in
  let merged =
    Relation.of_set ~name ~schema:(Relation.schema_list rel)
      (Tuple.Set.union (Relation.tuple_set rel) rows)
  in
  Database.add merged db

let fixpoint_naive ?budget stats db0 p =
  let rec loop db =
    stats.rounds <- stats.rounds + 1;
    Budget.poll budget;
    let db', grown =
      Trace.with_span "datalog.round" @@ fun () ->
      List.fold_left
        (fun (db', grown) rule ->
          let name = rule.Rule.head.Atom.rel in
          let fresh = derive_rule ?budget m_naive_derived stats db rule in
          let before = Relation.cardinality (Database.find db' name) in
          let db' = add_tuples db' name fresh in
          let after = Relation.cardinality (Database.find db' name) in
          (db', grown + (after - before)))
        (db, 0) p.Program.rules
    in
    Metrics.observe m_round_delta grown;
    if grown > 0 then loop db' else db'
  in
  loop (List.fold_left (fun db r -> Database.add r db) db0 (empty_idb_relations db0 p))

(* Semi-naive evaluation, the textbook discipline: for each rule and each
   IDB atom occurrence i, a variant is evaluated in which occurrence i
   reads the last round's delta, IDB occurrences before i read the
   relation as it was *before* that delta ("old"), and occurrences after
   i read the full current relation.  Every derivation therefore uses the
   new tuples at least once and is produced by exactly one variant. *)
let fixpoint_seminaive ?budget stats db0 p =
  let idb = Program.idb_predicates p in
  let delta_name name = "$delta_" ^ name in
  let old_name name = "$old_" ^ name in
  let rename_variant rule i =
    let body =
      List.mapi
        (fun j a ->
          if not (List.mem a.Atom.rel idb) then a
          else if j = i then { a with Atom.rel = delta_name a.Atom.rel }
          else if j < i then { a with Atom.rel = old_name a.Atom.rel }
          else a)
        rule.Rule.body
    in
    { rule with Rule.body = body }
  in
  let variants rule =
    let with_idb =
      List.filteri (fun _ i -> i >= 0)
        (List.mapi
           (fun i a -> if List.mem a.Atom.rel idb then i else -1)
           rule.Rule.body)
      |> List.filter (fun i -> i >= 0)
    in
    if with_idb = [] then [ (rule, false) ]
      (* EDB-only body: fires in round one only. *)
    else List.map (fun i -> (rename_variant rule i, true)) with_idb
  in
  let initial_db =
    List.fold_left (fun db r -> Database.add r db) db0 (empty_idb_relations db0 p)
  in
  (* Round 0: fire all rules once on the (empty-IDB) database. *)
  stats.rounds <- stats.rounds + 1;
  let first_deltas =
    Trace.with_span "datalog.round" @@ fun () ->
    List.fold_left
      (fun acc rule ->
        let name = rule.Rule.head.Atom.rel in
        let fresh =
          derive_rule ?budget m_seminaive_derived stats initial_db rule
        in
        let prev =
          match List.assoc_opt name acc with
          | Some s -> s
          | None -> Tuple.Set.empty
        in
        (name, Tuple.Set.union prev fresh) :: List.remove_assoc name acc)
      [] p.Program.rules
  in
  let apply_deltas db deltas =
    List.fold_left (fun db (name, rows) -> add_tuples db name rows) db deltas
  in
  let delta_relations ~old_db db deltas =
    (* Register $delta_R (this round's new tuples) and $old_R (the
       relation before this round) for every IDB predicate. *)
    List.fold_left
      (fun db name ->
        let rows =
          match List.assoc_opt name deltas with
          | Some s -> s
          | None -> Tuple.Set.empty
        in
        let schema = positional_schema (Program.arity p name) in
        let db =
          Database.add
            (Relation.of_set ~name:(delta_name name) ~schema rows)
            db
        in
        Database.add
          (Relation.with_name (old_name name) (Database.find old_db name))
          db)
      db idb
  in
  let rec loop db deltas =
    let truly_new =
      List.filter_map
        (fun (name, rows) ->
          let existing = Relation.tuple_set (Database.find db name) in
          let fresh = Tuple.Set.diff rows existing in
          if Tuple.Set.is_empty fresh then None else Some (name, fresh))
        deltas
    in
    Metrics.observe m_round_delta
      (List.fold_left
         (fun n (_, rows) -> n + Tuple.Set.cardinal rows)
         0 truly_new);
    if truly_new = [] then db
    else begin
      stats.rounds <- stats.rounds + 1;
      Budget.poll budget;
      let db, next_deltas =
        Trace.with_span "datalog.round" @@ fun () ->
        let old_db = db in
        let db = apply_deltas db truly_new in
        let db_with_deltas = delta_relations ~old_db db truly_new in
        let next_deltas =
          List.fold_left
            (fun acc rule ->
              List.fold_left
                (fun acc (variant, uses_delta) ->
                  if not uses_delta then acc
                  else begin
                    let name = variant.Rule.head.Atom.rel in
                    let fresh =
                      derive_rule ?budget m_seminaive_derived stats
                        db_with_deltas variant
                    in
                    let prev =
                      match List.assoc_opt name acc with
                      | Some s -> s
                      | None -> Tuple.Set.empty
                    in
                    (name, Tuple.Set.union prev fresh)
                    :: List.remove_assoc name acc
                  end)
                acc (variants rule))
            [] p.Program.rules
        in
        (db, next_deltas)
      in
      loop db next_deltas
    end
  in
  loop initial_db first_deltas

let fixpoint ?budget ?(strategy = Seminaive) ?stats db p =
  let stats = match stats with Some s -> s | None -> new_stats () in
  let label = match strategy with Naive -> "naive" | Seminaive -> "seminaive" in
  Trace.with_span ~attrs:[ ("strategy", label) ] "datalog.fixpoint"
  @@ fun () ->
  match strategy with
  | Naive -> fixpoint_naive ?budget stats db p
  | Seminaive -> fixpoint_seminaive ?budget stats db p

let evaluate ?budget ?strategy ?stats db p =
  Database.find (fixpoint ?budget ?strategy ?stats db p) p.Program.goal

let goal_holds ?budget ?strategy ?stats db p =
  not (Relation.is_empty (evaluate ?budget ?strategy ?stats db p))
