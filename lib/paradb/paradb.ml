(** Umbrella module: one [open Paradb] (or dune library [paradb]) brings
    the whole system into scope under stable names.

    {2 Relational substrate}                                          *)

module Value = Paradb_relational.Value
module Tuple = Paradb_relational.Tuple
module Relation = Paradb_relational.Relation
module Database = Paradb_relational.Database

(** {2 Graphs} *)

module Graph = Paradb_graph.Graph
module Digraph = Paradb_graph.Digraph

(** {2 Queries} *)

module Term = Paradb_query.Term
module Atom = Paradb_query.Atom
module Binding = Paradb_query.Binding
module Constr = Paradb_query.Constr
module Cq = Paradb_query.Cq
module Fo = Paradb_query.Fo
module Ineq_formula = Paradb_query.Ineq_formula
module Rule = Paradb_query.Rule
module Program = Paradb_query.Program
module Parser = Paradb_query.Parser
module Fact_format = Paradb_query.Fact_format
module Source = Paradb_query.Source

(** {2 Hypergraphs and join trees} *)

module Hypergraph = Paradb_hypergraph.Hypergraph
module Join_tree = Paradb_hypergraph.Join_tree

(** {2 Evaluators} *)

module Cq_naive = Paradb_eval.Cq_naive
module Fo_naive = Paradb_eval.Fo_naive
module Join_eval = Paradb_eval.Join_eval
module Yannakakis = Paradb_yannakakis.Yannakakis
module Datalog = Paradb_datalog.Engine

(** {2 Weighted satisfiability (the W and AW hierarchies)} *)

module Circuit = Paradb_wsat.Circuit
module Formula = Paradb_wsat.Formula
module Cnf = Paradb_wsat.Cnf
module Alternating = Paradb_wsat.Alternating

(** {2 The paper's contribution (Theorem 2)} *)

module Hashing = Paradb_core.Hashing
module Ineq = Paradb_core.Ineq
module Engine = Paradb_core.Engine
module Comparisons = Paradb_core.Comparisons
module Color_coding = Paradb_core.Color_coding

(** {2 Reductions (Theorems 1 and 3, Sections 4-5)} *)

module Reductions = struct
  module Clique_to_cq = Paradb_reductions.Clique_to_cq
  module Cq_to_wsat = Paradb_reductions.Cq_to_wsat
  module Bounded_vars = Paradb_reductions.Bounded_vars
  module Cqs_to_clique = Paradb_reductions.Cqs_to_clique
  module Wformula_to_positive = Paradb_reductions.Wformula_to_positive
  module Positive_to_wformula = Paradb_reductions.Positive_to_wformula
  module Circuit_to_fo = Paradb_reductions.Circuit_to_fo
  module Alternating_to_fo = Paradb_reductions.Alternating_to_fo
  module Fo_to_awsat = Paradb_reductions.Fo_to_awsat
  module Clique_to_comparisons = Paradb_reductions.Clique_to_comparisons
  module Hamiltonian_to_neq = Paradb_reductions.Hamiltonian_to_neq
  module Dominating_to_fo = Paradb_reductions.Dominating_to_fo
  module Fixed_schema = Paradb_reductions.Fixed_schema
end

(** {2 The query server ([paradb serve])} *)

module Server = struct
  module Protocol = Paradb_server.Protocol
  module Plan = Paradb_server.Plan
  module Plan_cache = Paradb_server.Plan_cache
  module Catalog = Paradb_server.Catalog
  module Stats = Paradb_server.Stats
  module Session = Paradb_server.Session
  module Server = Paradb_server.Server
  module Client = Paradb_server.Client
end

(** {2 Sharded execution ([paradb coordinator])} *)

module Cluster = struct
  module Ring = Paradb_cluster.Ring
  module Partition = Paradb_cluster.Partition
  module Coordinator = Paradb_cluster.Coordinator
end

(** {2 Chandra–Merlin containment} *)

module Containment = Paradb_containment.Containment

(** {2 Workloads} *)

module Generators = Paradb_workload.Generators
module Vardi = Paradb_workload.Vardi
module Bench_util = Paradb_workload.Bench_util
