let time f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let time_median ~runs f =
  if runs < 1 then invalid_arg "Bench_util.time_median: runs must be positive";
  let samples = ref [] in
  let result = ref None in
  for _ = 1 to runs do
    let r, t = time f in
    samples := t :: !samples;
    result := Some r
  done;
  let sorted = List.sort Float.compare !samples in
  let median = List.nth sorted (runs / 2) in
  match !result with
  | Some r -> (r, median)
  | None -> assert false

let table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let render_row row =
    "| "
    ^ String.concat " | "
        (List.mapi
           (fun c cell ->
             let w = List.nth widths c in
             cell ^ String.make (w - String.length cell) ' ')
           (List.mapi
              (fun c _ ->
                match List.nth_opt row c with Some s -> s | None -> "")
              header))
    ^ " |"
  in
  let separator =
    "|" ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "|"
  in
  String.concat "\n" (render_row header :: separator :: List.map render_row rows)

let print_table ~header rows = print_endline (table ~header rows)

(* Machine-readable results: experiments append flat records and the
   driver dumps them as a JSON array (hand-rolled writer — no JSON
   dependency in the toolchain). *)
type json_value =
  | J_int of int
  | J_float of float
  | J_string of string
  | J_bool of bool
  | J_raw of string

let json_records : (string * json_value) list list ref = ref []
let json_enabled = ref false

let record fields =
  if !json_enabled then begin
    let fields =
      fields
      @ [
          ( "telemetry",
            J_raw
              (Paradb_telemetry.Export.to_json
                 (Paradb_telemetry.Metrics.snapshot ())) );
        ]
    in
    json_records := fields :: !json_records
  end

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_value_to_string = function
  | J_int i -> string_of_int i
  | J_float f -> Printf.sprintf "%.6g" f
  | J_string s -> "\"" ^ json_escape s ^ "\""
  | J_bool b -> string_of_bool b
  | J_raw s -> s

let write_json path =
  let oc = open_out path in
  output_string oc "[\n";
  let records = List.rev !json_records in
  List.iteri
    (fun i fields ->
      if i > 0 then output_string oc ",\n";
      output_string oc "  {";
      output_string oc
        (String.concat ", "
           (List.map
              (fun (k, v) ->
                Printf.sprintf "\"%s\": %s" (json_escape k)
                  (json_value_to_string v))
              fields));
      output_string oc "}")
    records;
  output_string oc "\n]\n";
  close_out oc

let pretty_seconds s =
  if s < 1e-6 then Printf.sprintf "%.0fns" (s *. 1e9)
  else if s < 1e-3 then Printf.sprintf "%.1fus" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.2fs" s

let ratio_string a b =
  if a <= 0.0 then "-" else Printf.sprintf "x%.1f" (b /. a)
