module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Value = Paradb_relational.Value
open Paradb_query

let random_database rng ~schema ~domain_size ~tuples =
  let relation (name, arity) =
    let rows =
      List.init tuples (fun _ ->
          Array.init arity (fun _ ->
              Value.Int (Random.State.int rng domain_size)))
    in
    Relation.create ~name
      ~schema:(List.init arity (Printf.sprintf "a%d"))
      rows
  in
  Database.of_relations (List.map relation schema)

let edge_database rng ~nodes ~edges =
  let rows =
    List.init edges (fun _ ->
        [|
          Value.Int (Random.State.int rng nodes);
          Value.Int (Random.State.int rng nodes);
        |])
  in
  Database.of_relations
    [ Relation.create ~name:"e" ~schema:[ "a"; "b" ] rows ]

let two_cycle_database ~pairs =
  let rows =
    List.concat
      (List.init pairs (fun i ->
           let a = Value.Int (2 * i) and b = Value.Int ((2 * i) + 1) in
           [ [| a; b |]; [| b; a |] ]))
  in
  Database.of_relations
    [ Relation.create ~name:"e" ~schema:[ "a"; "b" ] rows ]

let chain_query ~length ~neq =
  let var i = Term.var (Printf.sprintf "X%d" i) in
  let body =
    List.init length (fun i -> Atom.make "e" [ var i; var (i + 1) ])
  in
  let constraints = List.map (fun (i, j) -> Constr.neq (var i) (var j)) neq in
  Cq.make ~constraints ~head:[ var 0; var length ] body

(* A random acyclic conjunctive query, acyclic by construction: each new
   atom shares exactly one variable with the variables introduced so far
   (so the atom hypergraph is a tree of "ears").  Relations are named by
   arity: r1, r2, r3.  [neq_tries] / [cmp_tries] attempt that many
   random [<>] / [<], [<=] constraints (some attempts are no-ops, so the
   counts are upper bounds). *)
let random_tree_cq ?(cmp_tries = 0) rng ~max_atoms ~max_arity ~neq_tries
    ~domain_size =
  let n_atoms = 1 + Random.State.int rng max_atoms in
  let fresh = ref 0 in
  let new_var () =
    incr fresh;
    Printf.sprintf "V%d" (!fresh - 1)
  in
  let all_vars = ref [] in
  let atoms = ref [] in
  for i = 0 to n_atoms - 1 do
    let arity = 1 + Random.State.int rng max_arity in
    let shared =
      if i = 0 then new_var ()
      else List.nth !all_vars (Random.State.int rng (List.length !all_vars))
    in
    let rest =
      List.init (arity - 1) (fun _ ->
          (* occasionally a constant or a repeated variable *)
          match Random.State.int rng 6 with
          | 0 -> Term.int (Random.State.int rng domain_size)
          | 1 when !all_vars <> [] -> Term.var shared
          | _ -> Term.var (new_var ()))
    in
    let args = Term.var shared :: rest in
    let name = Printf.sprintf "r%d" arity in
    atoms := Atom.make name args :: !atoms;
    List.iter
      (fun v -> if not (List.mem v !all_vars) then all_vars := v :: !all_vars)
      (Term.vars args)
  done;
  let vars = Array.of_list !all_vars in
  let nv = Array.length vars in
  let constraints = ref [] in
  for _ = 1 to neq_tries do
    match Random.State.int rng 3 with
    | 0 when nv >= 2 ->
        let a = Random.State.int rng nv and b = Random.State.int rng nv in
        if a <> b then
          constraints :=
            Constr.neq (Term.var vars.(a)) (Term.var vars.(b)) :: !constraints
    | 1 ->
        let a = Random.State.int rng nv in
        constraints :=
          Constr.neq (Term.var vars.(a))
            (Term.int (Random.State.int rng domain_size))
          :: !constraints
    | _ -> ()
  done;
  for _ = 1 to cmp_tries do
    let op = if Random.State.bool rng then Constr.lt else Constr.le in
    match Random.State.int rng 3 with
    | 0 when nv >= 2 ->
        let a = Random.State.int rng nv and b = Random.State.int rng nv in
        if a <> b then
          constraints :=
            op (Term.var vars.(a)) (Term.var vars.(b)) :: !constraints
    | 1 ->
        let a = Random.State.int rng nv in
        let c = Term.int (Random.State.int rng domain_size) in
        let v = Term.var vars.(a) in
        constraints :=
          (if Random.State.bool rng then op v c else op c v) :: !constraints
    | _ -> ()
  done;
  let head_vars =
    List.filteri (fun i _ -> i mod 2 = 0) (Array.to_list vars)
  in
  Cq.make ~constraints:!constraints
    ~head:(List.map Term.var head_vars)
    !atoms

(* Database matching the r1/r2/r3 schema of [random_tree_cq]; every
   relation gets an independent random cardinality in [1, tuples]. *)
let tree_cq_database rng ~max_arity ~domain_size ~tuples =
  let relation i =
    let name = Printf.sprintf "r%d" (i + 1) and arity = i + 1 in
    let rows =
      List.init
        (1 + Random.State.int rng tuples)
        (fun _ ->
          Array.init arity (fun _ ->
              Value.Int (Random.State.int rng domain_size)))
    in
    Relation.create ~name
      ~schema:(List.init arity (Printf.sprintf "a%d"))
      rows
  in
  Database.of_relations (List.init max_arity relation)

(* A cyclic query over the binary ["e"] relation: a k-cycle of edge
   atoms (its hypergraph has no ears, so GYO rejects it), plus an
   optional random [<>]. *)
let random_cyclic_cq rng ~cycle ~neq =
  let cycle = max 3 cycle in
  let var i = Term.var (Printf.sprintf "C%d" i) in
  let body =
    List.init cycle (fun i -> Atom.make "e" [ var i; var ((i + 1) mod cycle) ])
  in
  let constraints =
    if neq then
      let a = Random.State.int rng cycle in
      let b = (a + 1 + Random.State.int rng (cycle - 1)) mod cycle in
      [ Constr.neq (var a) (var b) ]
    else []
  in
  Cq.make ~constraints ~head:[ var 0 ] body

(* Random positive FO sentence over the given [(name, arity)] relations:
   closed by construction (every variable is generated under its
   quantifier). *)
let random_positive_sentence rng ~relations ~domain_size ~depth =
  let rels = Array.of_list relations in
  let bound = ref [] in
  let fresh = ref 0 in
  let rec go depth =
    if depth = 0 || (Random.State.int rng 3 = 0 && !bound <> []) then begin
      let name, arity = rels.(Random.State.int rng (Array.length rels)) in
      let args =
        List.init arity (fun _ ->
            if !bound <> [] && Random.State.bool rng then
              Term.var
                (List.nth !bound (Random.State.int rng (List.length !bound)))
            else Term.int (Random.State.int rng domain_size))
      in
      Fo.atom name args
    end
    else
      match Random.State.int rng 3 with
      | 0 ->
          let width = 2 + Random.State.int rng 2 in
          Fo.conj (List.init width (fun _ -> go (depth - 1)))
      | 1 ->
          let width = 2 + Random.State.int rng 2 in
          Fo.disj (List.init width (fun _ -> go (depth - 1)))
      | _ ->
          let x =
            incr fresh;
            Printf.sprintf "Q%d" !fresh
          in
          bound := x :: !bound;
          let body = go (depth - 1) in
          bound := List.tl !bound;
          Fo.exists [ x ] body
  in
  go depth

let employees_multi_project rng ~employees ~projects ~assignments =
  let rows =
    List.init assignments (fun _ ->
        [|
          Value.Str (Printf.sprintf "emp%d" (Random.State.int rng employees));
          Value.Str (Printf.sprintf "proj%d" (Random.State.int rng projects));
        |])
  in
  let db =
    Database.of_relations
      [ Relation.create ~name:"ep" ~schema:[ "e"; "p" ] rows ]
  in
  let e = Term.var "e" and p = Term.var "p" and p' = Term.var "p2" in
  let q =
    Cq.make ~name:"g" ~head:[ e ]
      ~constraints:[ Constr.neq p p' ]
      [ Atom.make "ep" [ e; p ]; Atom.make "ep" [ e; p' ] ]
  in
  (db, q)

let students_outside_department rng ~students ~courses ~departments
    ~enrollments =
  let student i = Value.Str (Printf.sprintf "s%d" i)
  and course i = Value.Str (Printf.sprintf "c%d" i)
  and dept i = Value.Str (Printf.sprintf "d%d" i) in
  let sd_rows =
    List.init students (fun s ->
        [| student s; dept (Random.State.int rng departments) |])
  in
  let cd_rows =
    List.init courses (fun c ->
        [| course c; dept (Random.State.int rng departments) |])
  in
  let sc_rows =
    List.init enrollments (fun _ ->
        [|
          student (Random.State.int rng students);
          course (Random.State.int rng courses);
        |])
  in
  let db =
    Database.of_relations
      [
        Relation.create ~name:"sd" ~schema:[ "s"; "d" ] sd_rows;
        Relation.create ~name:"cd" ~schema:[ "c"; "d" ] cd_rows;
        Relation.create ~name:"sc" ~schema:[ "s"; "c" ] sc_rows;
      ]
  in
  let s = Term.var "s" and d = Term.var "d" and c = Term.var "c" in
  let d' = Term.var "d2" in
  let q =
    Cq.make ~name:"g" ~head:[ s ]
      ~constraints:[ Constr.neq d d' ]
      [
        Atom.make "sd" [ s; d ];
        Atom.make "sc" [ s; c ];
        Atom.make "cd" [ c; d' ];
      ]
  in
  (db, q)

let employees_higher_salary rng ~employees ~max_salary =
  let emp i = Value.Str (Printf.sprintf "emp%d" i) in
  (* Everyone except employee 0 has a random manager with a smaller id
     (an arbitrary hierarchy). *)
  let em_rows =
    List.init (employees - 1) (fun i ->
        let e = i + 1 in
        [| emp e; emp (Random.State.int rng e) |])
  in
  let es_rows =
    List.init employees (fun e ->
        [| emp e; Value.Int (1 + Random.State.int rng max_salary) |])
  in
  let db =
    Database.of_relations
      [
        Relation.create ~name:"em" ~schema:[ "e"; "m" ] em_rows;
        Relation.create ~name:"es" ~schema:[ "e"; "s" ] es_rows;
      ]
  in
  let e = Term.var "e" and m = Term.var "m" in
  let s = Term.var "s" and s' = Term.var "s2" in
  let q =
    Cq.make ~name:"g" ~head:[ e ]
      ~constraints:[ Constr.lt s' s ]
      [
        Atom.make "em" [ e; m ];
        Atom.make "es" [ e; s ];
        Atom.make "es" [ m; s' ];
      ]
  in
  (db, q)
