(** Workload generators for the experiments: random databases plus the
    paper's three running example scenarios (Section 5). *)

(** [random_database rng ~schema ~domain_size ~tuples] — for every
    [(name, arity)] in [schema], a relation of [tuples] uniform random
    tuples over an integer domain of the given size. *)
val random_database :
  Random.State.t -> schema:(string * int) list -> domain_size:int ->
  tuples:int -> Paradb_relational.Database.t

(** A random binary ["e"] relation (directed edges with replacement),
    the substrate of the chain/path queries. *)
val edge_database :
  Random.State.t -> nodes:int -> edges:int -> Paradb_relational.Database.t

(** The chain query [ans(x0,xl) :- e(x0,x1), ..., e(x_{l-1},x_l)] with
    the given extra [≠] constraints between variable indices. *)
val chain_query :
  length:int -> neq:(int * int) list -> Paradb_query.Cq.t

(** A graph of [pairs] disjoint 2-cycles ([2i ↔ 2i+1], both directions):
    every walk alternates between two vertices, so a chain query with
    all-pairs [≠] over 4+ variables is unsatisfiable — the
    guaranteed-negative, full-search instances of the Theorem-2 scaling
    experiment. *)
val two_cycle_database : pairs:int -> Paradb_relational.Database.t

(** {1 Random query generators}

    Shared by the test suites' [Qgen] and the differential oracle
    ([lib/oracle]).  Everything takes an explicit [Random.State.t]: a
    fixed seed reproduces the same instance on any domain, in any
    process. *)

(** A random acyclic CQ over relations [r1 .. r{max_arity}] (named by
    arity), acyclic by ear construction.  [neq_tries] / [cmp_tries]
    (default 0) are upper bounds on random [<>] / [<], [<=]
    constraints. *)
val random_tree_cq :
  ?cmp_tries:int ->
  Random.State.t -> max_atoms:int -> max_arity:int -> neq_tries:int ->
  domain_size:int -> Paradb_query.Cq.t

(** A database matching {!random_tree_cq}'s [r1 .. r{max_arity}]
    schema. *)
val tree_cq_database :
  Random.State.t -> max_arity:int -> domain_size:int -> tuples:int ->
  Paradb_relational.Database.t

(** A [cycle]-cycle of ["e"] atoms ([cycle] clamped to >= 3; the
    hypergraph is cyclic, so GYO rejects it), optionally with one random
    [<>] between cycle variables. *)
val random_cyclic_cq :
  Random.State.t -> cycle:int -> neq:bool -> Paradb_query.Cq.t

(** A random closed positive FO sentence over the given [(name, arity)]
    relations. *)
val random_positive_sentence :
  Random.State.t -> relations:(string * int) list -> domain_size:int ->
  depth:int -> Paradb_query.Fo.t

(** {1 The paper's example scenarios} *)

(** "Find the employees that work on more than one project":
    [g(e) :- ep(e,p), ep(e,p'), p ≠ p'].  Returns the database (relation
    [ep]) together with the query.  Acyclic with one [I1] inequality. *)
val employees_multi_project :
  Random.State.t -> employees:int -> projects:int -> assignments:int ->
  Paradb_relational.Database.t * Paradb_query.Cq.t

(** "Find the students that take courses outside their department":
    [g(s) :- sd(s,d), sc(s,c), cd(c,d'), d ≠ d']. *)
val students_outside_department :
  Random.State.t -> students:int -> courses:int -> departments:int ->
  enrollments:int ->
  Paradb_relational.Database.t * Paradb_query.Cq.t

(** "Find the employees that have higher salary than their manager":
    [g(e) :- em(e,m), es(e,s), es(m,s'), s' < s] — the comparison query
    of Section 5. *)
val employees_higher_salary :
  Random.State.t -> employees:int -> max_salary:int ->
  Paradb_relational.Database.t * Paradb_query.Cq.t
