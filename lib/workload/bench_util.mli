(** Timing and table helpers shared by the experiment harness. *)

(** Wall-clock time of a thunk, in seconds, together with its result. *)
val time : (unit -> 'a) -> 'a * float

(** Median wall-clock time over [runs] executions (the result of the
    last run is returned). *)
val time_median : runs:int -> (unit -> 'a) -> 'a * float

(** Render an aligned text table (also valid Markdown). *)
val table : header:string list -> string list list -> string

val print_table : header:string list -> string list list -> unit

(** {2 Machine-readable results}

    Experiments append flat records via {!record}; when {!json_enabled}
    is set, the driver dumps them with {!write_json} as a JSON array of
    objects (hand-rolled writer — no JSON dependency). *)

type json_value =
  | J_int of int
  | J_float of float
  | J_string of string
  | J_bool of bool
  | J_raw of string  (** emitted verbatim — must already be valid JSON *)

(** Enables {!record}; set by the driver when [--json FILE] is given. *)
val json_enabled : bool ref

(** [record fields] appends one record; no-op unless [json_enabled].
    A ["telemetry"] field holding the current {!Paradb_telemetry.Metrics}
    snapshot (as rendered by {!Paradb_telemetry.Export.to_json}) is
    appended to every record, so bench JSON carries the engine's own
    counters next to the wall-clock numbers. *)
val record : (string * json_value) list -> unit

val write_json : string -> unit

(** Format seconds adaptively (ns/µs/ms/s). *)
val pretty_seconds : float -> string

(** [ratio_string a b] — ["×%.1f"] of [b/a], or ["-"] when [a] is 0. *)
val ratio_string : float -> float -> string
