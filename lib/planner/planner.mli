(** Structure-aware physical planning for conjunctive queries.

    The paper's dichotomy is structural: acyclic queries (and their
    bounded-width relatives) are tractable, everything else is not.  The
    planner makes that structure explicit {e before} any engine runs: it
    classifies the query — acyclic via the GYO {!Paradb_hypergraph.Join_tree},
    low-width cyclic via a greedy hypertree-decomposition heuristic, or
    genuinely cyclic — and produces a physical plan value (join order,
    semijoin program, per-atom selections, constraint placement,
    projection) that {!Paradb_eval} can lower to a compiled pipeline and
    the server can render through [EXPLAIN].

    Plans are database-independent: they mention atom indexes and
    variable names, never relation contents.  Classification counts are
    recorded under the [planner.class.*] telemetry counters. *)

module Cq = Paradb_query.Cq
module Constr = Paradb_query.Constr
module Join_tree = Paradb_hypergraph.Join_tree

type classification =
  | Acyclic  (** GYO succeeds; width 1 by convention *)
  | Low_width of int
      (** cyclic, but the greedy decomposition found generalized
          hypertree width [<= low_width_threshold] *)
  | Cyclic of int  (** genuinely cyclic; payload is the width estimate *)

(** Width bound separating [Low_width] from [Cyclic]. *)
val low_width_threshold : int

(** Database-independent description of one atom scan: which argument
    positions are pinned to constants, which positions must carry equal
    values (repeated variables), and the distinct variables produced, in
    first-occurrence order. *)
type scan = {
  rel : string;  (** relation name of the atom *)
  selections : (int * Paradb_relational.Value.t) list;
      (** argument position [->] required constant *)
  equalities : (int * int) list;
      (** (first occurrence, later occurrence) of a repeated variable *)
  vars : string list;  (** distinct variables, first-occurrence order *)
}

(** One node of the push-based pipeline.  [atom] indexes the query body
    (and {!scans}).  [key] lists the atom's variables already bound by
    earlier steps — the hash-probe key; [bind] the variables this step
    binds for the first time. *)
type step =
  | Scan of { atom : int }  (** first step: full scan, binds all vars *)
  | Probe of { atom : int; key : string list; bind : string list }
  | Exists of { atom : int; key : string list }
      (** all variables already bound: a pure membership check *)

type t = {
  query : Cq.t;  (** alpha-normalized *)
  classification : classification;
  width : int;  (** 1 for acyclic (0 for an empty body); the estimate otherwise *)
  tree : Join_tree.t option;  (** present iff acyclic with a nonempty body *)
  scans : scan array;  (** one per body atom, in body order *)
  steps : step list;
      (** join order: join-tree preorder when acyclic, greedy
          bound-variable order otherwise *)
  reduce : (int * int) list;
      (** Yannakakis semijoin program as (target, filter) atom pairs:
          bottom-up pass then top-down pass; empty when cyclic *)
  filters : (int * Constr.t) list;
      (** constraint [c] runs immediately after step index [i] — the
          earliest step at which all its variables are bound *)
  ground : Constr.t list;  (** variable-free constraints *)
  barriers : string list option array;
      (** one slot per step: [Some live] marks a dead-variable barrier
          after that step, listing the still-live bound variables in
          lexicographic order.  Past a barrier, register states agreeing
          on the live variables have identical continuations — the
          compiler dedups them under set semantics and memoizes the
          downstream count under counting semantics *)
}

(** [plan q] classifies and orders [q] (alpha-normalizing it first) and
    bumps the matching [planner.class.*] counter. *)
val plan : Cq.t -> t

val classification_name : classification -> string

(** How a cluster should distribute this plan, given relations
    hash-partitioned on their first column.  [Copartitioned v]: every
    body atom carries variable [v] in argument position 0, so each
    satisfying assignment is witnessed entirely on the shard owning
    [v]'s value — the plan can run shard-locally (scatter) and the
    answers unioned.  [Rekey k] requires a reducer exchange; [k] is the
    variable occurring in the most atoms (first-occurrence order breaks
    ties; [None] for a variable-free body), the attribute a
    repartitioning pass would key on. *)
type shard_choice = Copartitioned of string | Rekey of string option

val shard_choice : t -> shard_choice

(** Human-readable plan rendering, one line per element — the payload of
    the server's [EXPLAIN] verb. *)
val explain : t -> string list
