module Cq = Paradb_query.Cq
module Atom = Paradb_query.Atom
module Term = Paradb_query.Term
module Constr = Paradb_query.Constr
module Hypergraph = Paradb_hypergraph.Hypergraph
module Join_tree = Paradb_hypergraph.Join_tree
module Metrics = Paradb_telemetry.Metrics
module SS = Hypergraph.String_set

type classification = Acyclic | Low_width of int | Cyclic of int

let low_width_threshold = 2

type scan = {
  rel : string;
  selections : (int * Paradb_relational.Value.t) list;
  equalities : (int * int) list;
  vars : string list;
}

type step =
  | Scan of { atom : int }
  | Probe of { atom : int; key : string list; bind : string list }
  | Exists of { atom : int; key : string list }

type t = {
  query : Cq.t;
  classification : classification;
  width : int;
  tree : Join_tree.t option;
  scans : scan array;
  steps : step list;
  reduce : (int * int) list;
  filters : (int * Constr.t) list;
  ground : Constr.t list;
  barriers : string list option array;
}

let m_acyclic = Metrics.counter "planner.class.acyclic"
let m_low_width = Metrics.counter "planner.class.low_width"
let m_cyclic = Metrics.counter "planner.class.cyclic"

let scan_of_atom atom =
  let first = Hashtbl.create 4 in
  let selections = ref [] and equalities = ref [] and vars = ref [] in
  List.iteri
    (fun i t ->
      match t with
      | Term.Const v -> selections := (i, v) :: !selections
      | Term.Var x -> (
          match Hashtbl.find_opt first x with
          | Some j -> equalities := (j, i) :: !equalities
          | None ->
              Hashtbl.add first x i;
              vars := x :: !vars))
    atom.Atom.args;
  {
    rel = atom.Atom.rel;
    selections = List.rev !selections;
    equalities = List.rev !equalities;
    vars = List.rev !vars;
  }

(* Greedy width estimate for cyclic queries: min-fill vertex elimination
   on the primal variable graph, each elimination bag covered greedily by
   atom variable sets.  The result is an upper bound on the generalized
   hypertree width; it is exact on the small motifs we care to separate
   (triangles and short cycles give 2, dense cliques grow as n/2). *)
let width_estimate q =
  let atom_var_sets = List.map (fun a -> SS.of_list (Atom.vars a)) q.Cq.body in
  let all_vars = List.fold_left SS.union SS.empty atom_var_sets in
  let adj = Hashtbl.create 16 in
  let nbrs v = Option.value ~default:SS.empty (Hashtbl.find_opt adj v) in
  let connect u v =
    if u <> v then begin
      Hashtbl.replace adj u (SS.add v (nbrs u));
      Hashtbl.replace adj v (SS.add u (nbrs v))
    end
  in
  let clique s =
    let l = SS.elements s in
    List.iter (fun u -> List.iter (connect u) l) l
  in
  List.iter clique atom_var_sets;
  let cover bag =
    let rec go uncovered count =
      if SS.is_empty uncovered then count
      else
        let best =
          List.fold_left
            (fun best s ->
              let gain = SS.cardinal (SS.inter s uncovered) in
              match best with
              | Some (g, _) when g >= gain -> best
              | _ -> if gain > 0 then Some (gain, s) else best)
            None atom_var_sets
        in
        match best with
        | None -> count + SS.cardinal uncovered (* vars outside every atom *)
        | Some (_, s) -> go (SS.diff uncovered s) (count + 1)
    in
    go bag 0
  in
  let remaining = ref all_vars in
  let width = ref 1 in
  while not (SS.is_empty !remaining) do
    let live v = SS.inter (nbrs v) !remaining in
    let fill v =
      let l = SS.elements (live v) in
      let missing = ref 0 in
      List.iter
        (fun u ->
          List.iter
            (fun w ->
              if String.compare u w < 0 && not (SS.mem w (nbrs u)) then
                incr missing)
            l)
        l;
      !missing
    in
    let v =
      match
        SS.fold
          (fun v best ->
            let cost = (fill v, SS.cardinal (live v)) in
            match best with
            | Some (bc, _) when compare bc cost <= 0 -> best
            | _ -> Some (cost, v))
          !remaining None
      with
      | Some (_, v) -> v
      | None -> assert false
    in
    let bag = SS.add v (live v) in
    width := max !width (cover bag);
    clique (live v);
    remaining := SS.remove v !remaining
  done;
  !width

(* Join order.  With a join tree: preorder ([top_down]), so by the
   running-intersection property every already-bound variable of a node
   is shared with its parent and the probe key is exactly the connector.
   Without one: greedy — start from the statically most selective atom
   (most constants and repeated variables), then repeatedly take the atom
   sharing the most bound variables. *)
let order_atoms tree scans =
  let n = Array.length scans in
  match tree with
  | Some t -> Array.to_list t.Join_tree.top_down
  | None ->
      let var_sets = Array.map (fun s -> SS.of_list s.vars) scans in
      let selectivity i =
        List.length scans.(i).selections + List.length scans.(i).equalities
      in
      let used = Array.make n false in
      let bound = ref SS.empty in
      let pick score =
        let best = ref None in
        for i = n - 1 downto 0 do
          if not used.(i) then
            let s = score i in
            match !best with
            | Some (bs, _) when compare bs s >= 0 -> ()
            | _ -> best := Some (s, i)
        done;
        match !best with Some (_, i) -> i | None -> assert false
      in
      let order = ref [] in
      for k = 0 to n - 1 do
        let i =
          if k = 0 then
            pick (fun i -> (selectivity i, - SS.cardinal var_sets.(i), -i))
          else
            pick (fun i ->
                let shared = SS.cardinal (SS.inter var_sets.(i) !bound) in
                let unbound = SS.cardinal var_sets.(i) - shared in
                (shared, -unbound, -i))
        in
        used.(i) <- true;
        bound := SS.union !bound var_sets.(i);
        order := i :: !order
      done;
      List.rev !order

let steps_of_order scans order =
  let bound = ref SS.empty in
  let steps, bound_after =
    List.fold_left
      (fun (steps, bounds) i ->
        let vars = scans.(i).vars in
        let key = List.filter (fun v -> SS.mem v !bound) vars in
        let bind = List.filter (fun v -> not (SS.mem v !bound)) vars in
        bound := List.fold_left (fun s v -> SS.add v s) !bound vars;
        let step =
          if steps = [] then Scan { atom = i }
          else if bind = [] then Exists { atom = i; key }
          else Probe { atom = i; key; bind }
        in
        (step :: steps, !bound :: bounds))
      ([], []) order
  in
  (List.rev steps, Array.of_list (List.rev bound_after))

(* Semijoin program: full reducer order — bottom-up child-into-parent,
   then top-down parent-into-child — as (target, filter) pairs. *)
let reduce_program tree =
  match tree with
  | None -> []
  | Some t ->
      let pairs dir =
        Array.to_list dir
        |> List.filter_map (fun j ->
               let u = t.Join_tree.parent.(j) in
               if u >= 0 then Some (j, u) else None)
      in
      List.map (fun (j, u) -> (u, j)) (pairs t.Join_tree.bottom_up)
      @ pairs t.Join_tree.top_down

(* Dead-variable barriers: after step [i], a bound variable that is not
   in the head and that no later step or filter reads can no longer
   influence the output — two register states agreeing on the still-live
   variables have identical continuations.  The compiler exploits each
   barrier twice: under set semantics a distinct-prefix set prunes the
   duplicate subtrees (the push-based analogue of the Yannakakis
   intermediate projection), and under counting semantics the same live
   prefix keys a memo of downstream counts.  [Some live] marks a barrier
   after step [i] with the live variables in lexicographic order. *)
let barrier_spec q scans steps filters =
  let step_arr = Array.of_list steps in
  let nsteps = Array.length step_arr in
  let step_vars = function
    | Scan { atom } -> scans.(atom).vars
    | Probe { key; bind; _ } -> key @ bind
    | Exists { key; _ } -> key
  in
  let filter_vars_at =
    let a = Array.make (max nsteps 1) SS.empty in
    List.iter
      (fun (j, c) -> a.(j) <- SS.union a.(j) (SS.of_list (Constr.vars c)))
      filters;
    a
  in
  (* needed_after.(i): variables read by anything downstream of the
     barrier point (steps i+1.., filters placed there, the emit). *)
  let head_vars = SS.of_list (Cq.head_vars q) in
  let needed_after = Array.make (max nsteps 1) head_vars in
  for i = nsteps - 2 downto 0 do
    needed_after.(i) <-
      SS.union needed_after.(i + 1)
        (SS.union
           (SS.of_list (step_vars step_arr.(i + 1)))
           filter_vars_at.(i + 1))
  done;
  let bound = ref SS.empty in
  Array.mapi
    (fun i step ->
      bound := SS.union !bound (SS.of_list (step_vars step));
      let live = SS.inter !bound needed_after.(i) in
      if i < nsteps - 1 && SS.cardinal live < SS.cardinal !bound then
        Some (SS.elements live)
      else None)
    step_arr

let place_constraints constraints bound_after =
  let n = Array.length bound_after in
  let ground = ref [] and placed = ref [] in
  List.iter
    (fun c ->
      match Constr.vars c with
      | [] -> ground := c :: !ground
      | vars ->
          let need = SS.of_list vars in
          let rec find i =
            if i >= n then
              (* Unsafe constraints are rejected by [Cq.make]; with a
                 nonempty body every variable gets bound. *)
              invalid_arg "Planner: constraint variable never bound"
            else if SS.subset need bound_after.(i) then i
            else find (i + 1)
          in
          placed := (find 0, c) :: !placed)
    constraints;
  (List.rev !placed, List.rev !ground)

let plan q =
  let q = Cq.alpha_normalize q in
  let scans = Array.of_list (List.map scan_of_atom q.Cq.body) in
  let tree = if q.Cq.body = [] then None else Join_tree.of_cq q in
  let classification, width =
    if q.Cq.body = [] then (Acyclic, 0)
    else if tree <> None then (Acyclic, 1)
    else
      let w = width_estimate q in
      if w <= low_width_threshold then (Low_width w, w) else (Cyclic w, w)
  in
  Metrics.incr
    (match classification with
    | Acyclic -> m_acyclic
    | Low_width _ -> m_low_width
    | Cyclic _ -> m_cyclic);
  let order = order_atoms tree scans in
  let steps, bound_after = steps_of_order scans order in
  let filters, ground = place_constraints q.Cq.constraints bound_after in
  {
    query = q;
    classification;
    width;
    tree;
    scans;
    steps;
    reduce = reduce_program tree;
    filters;
    ground;
    barriers = barrier_spec q scans steps filters;
  }

let classification_name = function
  | Acyclic -> "acyclic"
  | Low_width _ -> "low-width"
  | Cyclic _ -> "cyclic"

type shard_choice = Copartitioned of string | Rekey of string option

(* Shard-key selection off the plan IR.  Relations are hash-partitioned
   on their first column, so a query whose every atom carries one and
   the same variable in argument position 0 is co-partitioned: any
   satisfying assignment binds that variable to a single value, whose
   rows all live on one shard — a cluster can evaluate such a plan
   shard-locally and union the answers.  Everything else must go
   through a reducer exchange; the [Rekey] payload (the variable
   touching the most atoms, first-occurrence order breaking ties) is
   the attribute a repartitioning pass would key on. *)
let shard_choice p =
  let body = p.query.Cq.body in
  let first_var atom =
    match atom.Paradb_query.Atom.args with
    | Paradb_query.Term.Var v :: _ -> Some v
    | _ -> None
  in
  let copartitioned =
    match body with
    | [] -> None
    | a0 :: rest -> (
        match first_var a0 with
        | None -> None
        | Some v ->
            if List.for_all (fun a -> first_var a = Some v) rest then Some v
            else None)
  in
  match copartitioned with
  | Some v -> Copartitioned v
  | None ->
      let best = Hashtbl.create 8 in
      List.iter
        (fun a ->
          List.iter
            (fun v ->
              Hashtbl.replace best v
                (1 + Option.value ~default:0 (Hashtbl.find_opt best v)))
            (Paradb_query.Atom.vars a))
        body;
      let pick =
        List.fold_left
          (fun acc v ->
            let n = Option.value ~default:0 (Hashtbl.find_opt best v) in
            match acc with
            | Some (_, m) when m >= n -> acc
            | _ -> Some (v, n))
          None (Cq.vars p.query)
      in
      Rekey (Option.map fst pick)

let explain p =
  let buf = ref [] in
  let line fmt = Format.kasprintf (fun s -> buf := s :: !buf) fmt in
  line "query: %s" (Cq.to_string p.query);
  line "class: %s" (classification_name p.classification);
  line "width: %d" p.width;
  (match p.tree with
  | Some t ->
      line "join_tree: %d nodes, root atom %d" (Join_tree.n_nodes t)
        t.Join_tree.root
  | None -> line "join_tree: none");
  if p.reduce <> [] then line "semijoin program: %d steps" (List.length p.reduce);
  let vars = String.concat " " in
  List.iteri
    (fun i step ->
      match step with
      | Scan { atom } ->
          line "step %d: scan %s -> [%s]" i p.scans.(atom).rel
            (vars p.scans.(atom).vars)
      | Probe { atom; key; bind } ->
          line "step %d: probe %s key=[%s] bind=[%s]" i p.scans.(atom).rel
            (vars key) (vars bind)
      | Exists { atom; key } ->
          line "step %d: exists %s key=[%s]" i p.scans.(atom).rel (vars key))
    p.steps;
  Array.iteri
    (fun i s ->
      if s.selections <> [] || s.equalities <> [] then
        line "atom %d (%s): %s" i s.rel
          (String.concat ", "
             (List.map
                (fun (pos, v) ->
                  Format.asprintf "arg%d = %a" pos Paradb_relational.Value.pp v)
                s.selections
             @ List.map
                 (fun (a, b) -> Printf.sprintf "arg%d = arg%d" a b)
                 s.equalities)))
    p.scans;
  List.iter
    (fun (i, c) -> line "filter after step %d: %s" i (Constr.to_string c))
    p.filters;
  Array.iteri
    (fun i b ->
      match b with
      | Some live -> line "barrier after step %d: live=[%s]" i (vars live)
      | None -> ())
    p.barriers;
  List.iter (fun c -> line "ground constraint: %s" (Constr.to_string c)) p.ground;
  (match shard_choice p with
  | Copartitioned v -> line "shard key: %s (copartitioned scatter)" v
  | Rekey (Some v) -> line "shard key: %s (reducer exchange)" v
  | Rekey None -> line "shard key: none (reducer exchange)");
  List.rev !buf
