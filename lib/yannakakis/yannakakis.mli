(** Yannakakis' algorithm for acyclic conjunctive queries (VLDB 1981) —
    the "major exception" of Section 5 that Theorem 2 extends: evaluation
    in time polynomial in the database and the output.

    The pipeline is the one described in the paper: per-atom relations
    [S_j = π_{U_j} σ_{F_j} (R_{i_j})], a join tree from GYO, a semijoin
    full reducer, then an output-sensitive bottom-up join-and-project
    pass. *)

exception Cyclic_query

(** [atom_relations db q] computes [S_j] for every relational atom of the
    body: schema = the atom's distinct variables; selections enforce the
    atom's constants and repeated variables.  [filter] (used by the
    Theorem-2 engine for intra-atom [≠] atoms) additionally restricts the
    admitted variable instantiations. *)
val atom_relations :
  ?budget:Paradb_telemetry.Budget.t ->
  ?filter:(Paradb_query.Binding.t -> bool) ->
  Paradb_relational.Database.t -> Paradb_query.Cq.t ->
  Paradb_relational.Relation.t array

(** Bottom-up then top-down semijoin passes over the join tree; the result
    is globally consistent (every tuple participates in the full join).
    Relations are indexed by tree node.  [budget], here and below, is
    polled once per tree node / per atom
    ({!Paradb_telemetry.Budget.Exhausted} propagates). *)
val full_reducer :
  ?budget:Paradb_telemetry.Budget.t ->
  Paradb_hypergraph.Join_tree.t ->
  Paradb_relational.Relation.t array ->
  Paradb_relational.Relation.t array

(** Emptiness of the full join, via the bottom-up semijoin pass only. *)
val join_nonempty :
  ?budget:Paradb_telemetry.Budget.t ->
  Paradb_hypergraph.Join_tree.t ->
  Paradb_relational.Relation.t array -> bool

(** [evaluate db q] for an acyclic [q] without constraint atoms.
    Raises [Cyclic_query] if the query hypergraph is cyclic, and
    [Invalid_argument] if [q] has constraints (use the Theorem-2 engine
    for those). *)
val evaluate :
  ?budget:Paradb_telemetry.Budget.t ->
  Paradb_relational.Database.t -> Paradb_query.Cq.t ->
  Paradb_relational.Relation.t

(** [aggregate sr db q] — semiring aggregation over the full join by
    message passing on the join tree: every atom-relation row is
    annotated (with [sr.one], or with [weight atom_index atom_rel row]
    when given), children are ⊕-projected onto their connector and
    ⊗-joined into their parent, and the result is the ⊕-total at the
    root.  Runs in time polynomial in the (semijoin-reduced) atom
    relations.  Same guards as {!evaluate}: raises [Cyclic_query] /
    [Invalid_argument] on constraints; an empty body yields [sr.one]. *)
val aggregate :
  ?budget:Paradb_telemetry.Budget.t ->
  'a Paradb_relational.Semiring.t ->
  ?weight:
    (int -> Paradb_relational.Relation.t ->
     Paradb_relational.Code_row.t -> 'a) ->
  Paradb_relational.Database.t -> Paradb_query.Cq.t -> 'a

(** [count db q] = [aggregate Semiring.nat db q]: the number of
    satisfying valuations of the body variables, matching
    {!Paradb_eval.Cq_naive.count} — in polynomial time for acyclic
    queries, where the naive reference pays the full valuation tree. *)
val count :
  ?budget:Paradb_telemetry.Budget.t ->
  Paradb_relational.Database.t -> Paradb_query.Cq.t -> int

val is_satisfiable :
  ?budget:Paradb_telemetry.Budget.t ->
  Paradb_relational.Database.t -> Paradb_query.Cq.t -> bool

val decide :
  ?budget:Paradb_telemetry.Budget.t ->
  Paradb_relational.Database.t -> Paradb_query.Cq.t ->
  Paradb_relational.Tuple.t -> bool
