module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Tuple = Paradb_relational.Tuple
module Join_tree = Paradb_hypergraph.Join_tree
module Trace = Paradb_telemetry.Trace
module Metrics = Paradb_telemetry.Metrics
module Budget = Paradb_telemetry.Budget
open Paradb_query

exception Cyclic_query

let m_full_reduce = Metrics.counter "yannakakis.full_reduce"

let atom_relations ?budget ?(filter = fun _ -> true) db q =
  let per_atom atom =
    Budget.poll budget;
    let vars = Atom.vars atom in
    let rel = Database.find db atom.Atom.rel in
    (* Accumulate a plain list: [Relation.of_seq] dedups in its hash
       store, so no ordered-set intermediate is needed. *)
    let rows =
      Relation.fold
        (fun tuple acc ->
          match Atom.matches atom tuple with
          | None -> acc
          | Some binding ->
              if filter binding then
                Array.of_list
                  (List.map
                     (fun x ->
                       match Binding.find x binding with
                       | Some v -> v
                       | None -> assert false)
                     vars)
                :: acc
              else acc)
        rel []
    in
    Relation.create ~name:atom.Atom.rel ~schema:vars rows
  in
  Array.of_list (List.map per_atom q.Cq.body)

let semijoin_bottom_up ?budget tree rels =
  Trace.with_span "yannakakis.semijoin_bottom_up" @@ fun () ->
  let rels = Array.copy rels in
  (* Mutation hook: skip the first semijoin of the pass, leaving the
     reduction one edge short — [join_nonempty] then trusts a root that
     was never filtered against that subtree. *)
  let skip =
    ref (if Paradb_telemetry.Mutate.enabled "semijoin_off_by_one" then 1 else 0)
  in
  Array.iter
    (fun j ->
      Budget.poll budget;
      let u = tree.Join_tree.parent.(j) in
      if u >= 0 then
        if !skip > 0 then decr skip
        else rels.(u) <- Relation.semijoin rels.(u) rels.(j))
    tree.Join_tree.bottom_up;
  rels

let semijoin_top_down ?budget tree rels =
  Trace.with_span "yannakakis.semijoin_top_down" @@ fun () ->
  let rels = Array.copy rels in
  Array.iter
    (fun j ->
      Budget.poll budget;
      let u = tree.Join_tree.parent.(j) in
      if u >= 0 then rels.(j) <- Relation.semijoin rels.(j) rels.(u))
    tree.Join_tree.top_down;
  rels

let full_reducer ?budget tree rels =
  Metrics.incr m_full_reduce;
  semijoin_top_down ?budget tree (semijoin_bottom_up ?budget tree rels)

let join_nonempty ?budget tree rels =
  let reduced = semijoin_bottom_up ?budget tree rels in
  not (Relation.is_empty reduced.(tree.Join_tree.root))

let head_schema q = List.mapi (fun i _ -> Printf.sprintf "a%d" i) q.Cq.head

(* Instantiate the head terms from a row of the projection onto the head
   variables. *)
let head_rows q proj =
  let positions =
    List.map
      (function
        | Term.Var x -> `Var (Relation.position proj x)
        | Term.Const v -> `Const v)
      q.Cq.head
  in
  Relation.fold
    (fun row acc ->
      let out =
        Array.of_list
          (List.map
             (function `Var i -> row.(i) | `Const v -> v)
             positions)
      in
      Tuple.Set.add out acc)
    proj Tuple.Set.empty

let evaluate ?budget db q =
  if Cq.has_constraints q then
    invalid_arg
      "Yannakakis.evaluate: query has constraint atoms; use Paradb_core";
  let empty_result () = Relation.create ~name:q.Cq.name ~schema:(head_schema q) [] in
  match q.Cq.body with
  | [] ->
      (* No atoms: the head is all constants; the query holds trivially. *)
      let row =
        Array.of_list
          (List.map
             (function
               | Term.Const v -> v
               | Term.Var _ -> assert false (* unsafe, rejected by Cq.make *))
             q.Cq.head)
      in
      Relation.create ~name:q.Cq.name ~schema:(head_schema q) [ row ]
  | _ -> (
      match Join_tree.of_cq q with
      | None -> raise Cyclic_query
      | Some tree ->
          let rels = atom_relations ?budget db q in
          if Array.exists Relation.is_empty rels then empty_result ()
          else begin
            let rels = full_reducer ?budget tree rels in
            if Relation.is_empty rels.(tree.Join_tree.root) then empty_result ()
            else begin
              let head_vars = Cq.head_vars q in
              let module SS = Paradb_hypergraph.Hypergraph.String_set in
              let head_set = SS.of_list head_vars in
              (* Bottom-up join-and-project: fold each child into its parent,
                 keeping only join attributes and head attributes. *)
              let acc = Array.copy rels in
              Array.iter
                (fun j ->
                  Budget.poll budget;
                  let u = tree.Join_tree.parent.(j) in
                  if u >= 0 then begin
                    let connectors =
                      SS.inter tree.Join_tree.node_vars.(j)
                        tree.Join_tree.node_vars.(u)
                    in
                    let keep =
                      SS.union connectors
                        (SS.inter head_set tree.Join_tree.subtree_vars.(j))
                    in
                    let child =
                      Relation.project
                        (List.filter
                           (fun a -> SS.mem a keep)
                           (Relation.schema_list acc.(j)))
                        acc.(j)
                    in
                    acc.(u) <- Relation.natural_join acc.(u) child
                  end)
                tree.Join_tree.bottom_up;
              let proj =
                Relation.project head_vars acc.(tree.Join_tree.root)
              in
              Relation.of_set ~name:q.Cq.name ~schema:(head_schema q)
                (head_rows q proj)
            end
          end)

(* Semiring aggregation by message passing on the join tree.  Each atom
   relation is annotated (with [sr.one], or with [weight] when given),
   then folded bottom-up: a child is ⊕-projected onto its connector with
   the parent and ⊗-joined in; the answer is the ⊕-total at the root.
   The running-intersection property is what makes this correct — a
   child's private variables are shared with nothing above it, so
   ⊕-summing them out at the connector loses no information, and each
   atom's annotation enters the product exactly once.  With [Semiring.nat]
   and unit weights this computes the number of satisfying valuations in
   time polynomial in the reduced relations, where the naive reference
   pays the full valuation tree.

   The Bool full reducer still runs first: dropping rows that join with
   nothing is pure pruning (they contribute ⊕-zero), so the trusted set
   kernel does the cheap filtering and the annotated passes only touch
   what survives. *)
let aggregate ?budget (sr : 'a Paradb_relational.Semiring.t) ?weight db q =
  if Cq.has_constraints q then
    invalid_arg
      "Yannakakis.aggregate: query has constraint atoms; use Paradb_core";
  match q.Cq.body with
  | [] -> sr.one
  | _ -> (
      match Join_tree.of_cq q with
      | None -> raise Cyclic_query
      | Some tree ->
          Trace.with_span "yannakakis.aggregate" @@ fun () ->
          let rels = atom_relations ?budget db q in
          if Array.exists Relation.is_empty rels then sr.zero
          else begin
            let rels = full_reducer ?budget tree rels in
            if Relation.is_empty rels.(tree.Join_tree.root) then sr.zero
            else begin
              let module Annotated = Paradb_relational.Annotated in
              let module SS = Paradb_hypergraph.Hypergraph.String_set in
              let acc =
                Array.mapi
                  (fun i rel ->
                    let weight = Option.map (fun f -> f i rel) weight in
                    Annotated.of_relation sr ?weight rel)
                  rels
              in
              Array.iter
                (fun j ->
                  Budget.poll budget;
                  let u = tree.Join_tree.parent.(j) in
                  if u >= 0 then begin
                    let connectors =
                      SS.elements
                        (SS.inter tree.Join_tree.node_vars.(j)
                           tree.Join_tree.node_vars.(u))
                    in
                    let msg = Annotated.project sr connectors acc.(j) in
                    acc.(u) <- Annotated.natural_join sr acc.(u) msg
                  end)
                tree.Join_tree.bottom_up;
              Annotated.total sr acc.(tree.Join_tree.root)
            end
          end)

let count ?budget db q = aggregate ?budget Paradb_relational.Semiring.nat db q

let is_satisfiable ?budget db q =
  if Cq.has_constraints q then
    invalid_arg
      "Yannakakis.is_satisfiable: query has constraint atoms; use Paradb_core";
  match q.Cq.body with
  | [] -> true
  | _ -> (
      match Join_tree.of_cq q with
      | None -> raise Cyclic_query
      | Some tree ->
          let rels = atom_relations ?budget db q in
          (not (Array.exists Relation.is_empty rels))
          && join_nonempty ?budget tree rels)

let decide ?budget db q tuple =
  match Cq.close_with_tuple q tuple with
  | None -> false
  | Some closed -> is_satisfiable ?budget db closed
