module Value = Paradb_relational.Value
module Tuple = Paradb_relational.Tuple
module Relation = Paradb_relational.Relation
module Database = Paradb_relational.Database
module Source = Paradb_query.Source
module Cq = Paradb_query.Cq
module Atom = Paradb_query.Atom
module Term = Paradb_query.Term
module Constr = Paradb_query.Constr
module Fact_format = Paradb_query.Fact_format
module Planner = Paradb_planner.Planner
module Protocol = Paradb_server.Protocol
module Client = Paradb_server.Client
module Server = Paradb_server.Server
module Guard = Paradb_server.Guard
module Plan = Paradb_server.Plan
module Fault = Paradb_server.Fault
module Metrics = Paradb_telemetry.Metrics
module Export = Paradb_telemetry.Export
module Budget = Paradb_telemetry.Budget
module Clock = Paradb_telemetry.Clock

(* Cluster telemetry.  Counters are cumulative over the process;
   [cluster.inflight] is a high-watermark gauge (see Metrics.set_max).
   Straggler visibility comes from the per-shard round histograms
   [cluster.shard<i>.round.ns] — their p99 against [cluster.round.ns]'s
   is the straggler signal STATS surfaces. *)
let m_rounds = Metrics.counter "cluster.rounds"
let m_bytes_out = Metrics.counter "cluster.bytes_out"
let m_bytes_in = Metrics.counter "cluster.bytes_in"
let m_scatter = Metrics.counter "cluster.eval.scatter"
let m_exchange = Metrics.counter "cluster.eval.exchange"
let m_failover = Metrics.counter "cluster.failover"
let m_redial = Metrics.counter "cluster.redial"
let m_admission = Metrics.counter "cluster.admission.rejected"
let m_deadline = Metrics.counter "cluster.deadline_exceeded"
let h_round = Metrics.histogram "cluster.round.ns"
let g_inflight = Metrics.gauge "cluster.inflight"

(* Replica-health telemetry: a replica write that could not be
   delivered counts on [cluster.write.replica_miss] (and is journaled
   for handoff when a hints dir is configured); DIGEST/REPAIR count
   divergent slices and repair work. *)
let m_replica_miss = Metrics.counter "cluster.write.replica_miss"
let m_divergent = Metrics.counter "cluster.replica.divergent"
let m_repair_runs = Metrics.counter "cluster.repair.runs"
let m_repair_reshipped = Metrics.counter "cluster.repair.reshipped"
let m_repair_rows = Metrics.counter "cluster.repair.rows"

type config = {
  addrs : (string * int) array;
  replicas : int;
  vnodes : int;
  timeout : float option;
  retries : int;
  limits : Guard.limits;
  max_inflight : int option;
  hints_dir : string option;
}

let default_config addrs =
  {
    addrs = Array.of_list addrs;
    replicas = 1;
    vnodes = Ring.default_vnodes;
    timeout = Some 30.0;
    retries = 2;
    limits = Guard.default_limits;
    max_inflight = None;
    hints_dir = None;
  }

module StringSet = Set.Make (String)

(* What the coordinator remembers about a distributed database: the
   full relation-name set (shards drop empty slices, so only the
   coordinator can distinguish "relation exists but this slice is
   empty" from "no such relation") and the total tuple count. *)
type db_info = { rels : StringSet.t; tuples : int }

type t = {
  config : config;
  ring : Ring.t;
  dbs : (string, db_info) Hashtbl.t;
  mu : Mutex.t;
  inflight : int Atomic.t;
  shard_hist : Metrics.histogram array;
  hints : Hints.t option;
}

let create config =
  let n = Array.length config.addrs in
  if n < 1 then invalid_arg "Coordinator.create: need at least one shard";
  if config.replicas < 1 || config.replicas > n then
    invalid_arg "Coordinator.create: replicas must be in [1, shards]";
  {
    config;
    ring = Ring.create ~vnodes:config.vnodes ~shards:n ();
    dbs = Hashtbl.create 8;
    mu = Mutex.create ();
    inflight = Atomic.make 0;
    shard_hist =
      Array.init n (fun i ->
          Metrics.histogram (Printf.sprintf "cluster.shard%d.round.ns" i));
    hints = Option.map Hints.create config.hints_dir;
  }

let shards t = Array.length t.config.addrs

let find_db t db =
  Mutex.lock t.mu;
  let r = Hashtbl.find_opt t.dbs db in
  Mutex.unlock t.mu;
  r

let set_db t db info =
  Mutex.lock t.mu;
  Hashtbl.replace t.dbs db info;
  Mutex.unlock t.mu

(* Early exit from deep inside a fan-out with a ready-made response. *)
exception Reply of Protocol.response

(* Raised when a shard cannot be reached even after a redial; carries
   the shard index so the final error names the dead server. *)
exception Shard_down of int

let shard_down_msg t s =
  let host, port = t.config.addrs.(s) in
  Printf.sprintf "shard %d (%s:%d) unreachable" s host port

(* Replica [rank] of database [db]'s slice [s] lives on shard
   [(s + rank) mod n] under the name [db@r<rank>]; rank 0 is the
   primary under the plain name.  Shard j can hold [db@r1] for exactly
   one slice (j - 1 mod n), so the name is unambiguous per shard. *)
let replica_name db ~rank =
  if rank = 0 then db else Printf.sprintf "%s@r%d" db rank

let resp_bytes = function
  | Protocol.Ok_ { summary; payload } ->
      List.fold_left
        (fun a l -> a + String.length l + 1)
        (String.length summary + 6)
        payload
  | Protocol.Err e -> String.length e + 5

(* One sub-request to one shard over this connection's pooled client.
   A transport failure on a pooled connection redials once (the shard
   may just have restarted); a failure on a fresh connection means the
   shard is down.  The injected faults ride here: [shard_loss] drops
   the pooled socket first (forcing the redial, and the failover above
   us if the shard really is gone), [straggler_delay] stalls the
   sub-request. *)
let raw_call t conns budget shard ~bytes (f : Client.t -> Protocol.response) =
  Fault.straggler_sleep ();
  if Fault.shard_loss_now () then (
    match conns.(shard) with
    | Some c ->
        (try Client.close c with _ -> ());
        conns.(shard) <- None
    | None -> ());
  let arm c =
    match budget with
    | None -> ()
    | Some b ->
        let remaining = Budget.remaining_ns b in
        if remaining <= 0 then
          raise
            (Budget.Exhausted
               {
                 budget_ns = Budget.budget_ns b;
                 elapsed_ns = Budget.elapsed_ns b;
               });
        let secs = float_of_int remaining /. 1e9 in
        Client.set_timeout c
          (match t.config.timeout with
          | Some tmo -> Float.min secs tmo
          | None -> secs)
  in
  let dial () =
    let host, port = t.config.addrs.(shard) in
    match
      Client.connect ~host ?timeout:t.config.timeout ~retries:t.config.retries
        ~port ()
    with
    | c ->
        conns.(shard) <- Some c;
        c
    | exception (Unix.Unix_error _ | Failure _ | Sys_error _) ->
        raise (Shard_down shard)
  in
  let attempt c =
    arm c;
    match f c with
    | r -> r
    | exception ((Failure _ | Unix.Unix_error _ | Sys_error _ | End_of_file) as e)
      ->
        (try Client.close c with _ -> ());
        conns.(shard) <- None;
        raise e
  in
  let t0 = Clock.now_ns () in
  let resp =
    match conns.(shard) with
    | Some c -> (
        match attempt c with
        | r -> r
        | exception (Failure _ | Unix.Unix_error _ | Sys_error _ | End_of_file)
          ->
            (* stale pooled connection; redial once *)
            Metrics.incr m_redial;
            let c = dial () in
            (try attempt c
             with Failure _ | Unix.Unix_error _ | Sys_error _ | End_of_file ->
               raise (Shard_down shard)))
    | None -> (
        let c = dial () in
        try attempt c
        with Failure _ | Unix.Unix_error _ | Sys_error _ | End_of_file ->
          raise (Shard_down shard))
  in
  Metrics.observe t.shard_hist.(shard) (Clock.now_ns () - t0);
  Metrics.incr ~by:bytes m_bytes_out;
  Metrics.incr ~by:(resp_bytes resp) m_bytes_in;
  resp

(* A data request addressed to slice [shard] of [db]: try the primary,
   then walk the replica ranks.  Each rank is a different server AND a
   different entry name, so a half-loaded replica never shadows the
   primary silently. *)
let rec data_call t conns budget ~shard ~rank ~db mk =
  let target = Ring.replica_shard t.ring ~shard ~rank in
  let line = mk (replica_name db ~rank) in
  match
    raw_call t conns budget target ~bytes:(String.length line + 1) (fun c ->
        Client.request_line c line)
  with
  | r -> r
  | exception (Shard_down _ as e) ->
      if rank + 1 >= t.config.replicas then raise e
      else begin
        Metrics.incr m_failover;
        data_call t conns budget ~shard ~rank:(rank + 1) ~db mk
      end

(* One scatter-gather round: a wave of sub-requests whose wall time is
   the straggler's. *)
let round f =
  let t0 = Clock.now_ns () in
  let r = f () in
  Metrics.incr m_rounds;
  Metrics.observe h_round (Clock.now_ns () - t0);
  r

(* Fact-file serialization of one slice, one [name(v1, v2).] line per
   tuple — the exact format [Source.parse_facts] reads back on the
   shard.  Empty relations vanish here; the coordinator's [db_info]
   keeps the full schema so queries over empty slices still resolve. *)
let fact_line name tuple =
  Printf.sprintf "%s(%s)." name
    (String.concat ", "
       (List.map Fact_format.value_to_syntax (Tuple.to_list tuple)))

let slice_lines db =
  List.concat_map
    (fun r ->
      let name = Relation.name r in
      List.map (fact_line name) (Relation.tuples r))
    (Database.relations db)

(* A replica write (rank >= 1) that could not be delivered.  The write
   as a whole still succeeds — the primary has the data — but the miss
   is never silent: it is counted, logged, and (with a hints dir)
   journaled as a frame to replay when the replica's shard is back. *)
let replica_missed t ~target ~rank ~reason frame =
  Metrics.incr m_replica_miss;
  let host, port = t.config.addrs.(target) in
  Printf.eprintf
    "paradb-cluster: replica write miss: rank %d on shard %d (%s:%d): %s%s\n%!"
    rank target host port reason
    (match t.hints with
    | Some _ -> " (journaled for handoff)"
    | None -> " (NO hints dir: replica will diverge until REPAIR)");
  Option.iter (fun h -> Hints.journal h ~shard:target frame) t.hints

(* Deliver one journaled frame to its shard.  [`Delivered] clears it;
   [`Unreachable] keeps it (and stops the replay — the shard is still
   down); a shard-side [ERR] means the frame itself is bad (it will
   never succeed), so it is dropped and counted. *)
let deliver_frame t conns shard (f : Hints.frame) =
  let bytes =
    List.fold_left
      (fun a l -> a + String.length l + 1)
      (String.length f.Hints.header + 1)
      f.Hints.payload
  in
  match
    raw_call t conns None shard ~bytes (fun c ->
        match f.Hints.payload with
        | [] -> Client.request_line c f.Hints.header
        | payload -> Client.request_bulk c ~header:f.Hints.header payload)
  with
  | Protocol.Ok_ _ -> `Delivered
  | Protocol.Err e ->
      Printf.eprintf "paradb-cluster: dropping bad hint for shard %d: %s\n%!"
        shard e;
      `Bad
  | exception Shard_down _ -> `Unreachable

(* Replay every shard's pending hints, in journal order, stopping at
   the first shard that is still unreachable.  Runs BEFORE any new
   write fans out, so a recovered replica applies the missed writes
   before the new one — order-preserving per shard. *)
let replay_hints t conns =
  match t.hints with
  | None -> ()
  | Some h ->
      for shard = 0 to shards t - 1 do
        if Hints.pending h ~shard then begin
          let frames = Hints.read_frames h ~shard in
          let rec go delivered dropped = function
            | [] -> (delivered, dropped, [])
            | f :: rest -> (
                match deliver_frame t conns shard f with
                | `Delivered -> go (delivered + 1) dropped rest
                | `Bad -> go delivered (dropped + 1) rest
                | `Unreachable -> (delivered, dropped, f :: rest))
          in
          let delivered, dropped, undelivered = go 0 0 frames in
          if delivered > 0 then Hints.count_replayed delivered;
          if dropped > 0 then Hints.count_dropped dropped;
          if delivered > 0 || dropped > 0 then
            Hints.rewrite h ~shard undelivered
        end
      done

(* Partition [database] and ship every slice to its owner shard and
   each replica rank as one BULK frame per (shard, entry).  Loading
   cannot fail over — a slice must land on its owner — so a dead owner
   (rank 0) fails the LOAD with its name.  A dead {e replica} does not:
   the primary write is acknowledged and the replica copy goes through
   {!replica_missed} (counted, logged, journaled for handoff). *)
let distribute t conns ~db database =
  replay_hints t conns;
  let slices = Partition.split t.ring database in
  round (fun () ->
      Array.iteri
        (fun s slice ->
          let lines = slice_lines slice in
          for rank = 0 to t.config.replicas - 1 do
            let target = Ring.replica_shard t.ring ~shard:s ~rank in
            let header =
              Printf.sprintf "BULK %s %d" (replica_name db ~rank)
                (List.length lines)
            in
            let bytes =
              List.fold_left
                (fun a l -> a + String.length l + 1)
                (String.length header + 1)
                lines
            in
            let frame = { Hints.header; payload = lines } in
            match
              raw_call t conns None target ~bytes (fun c ->
                  Client.request_bulk c ~header lines)
            with
            | Protocol.Ok_ _ -> ()
            | Protocol.Err e when rank = 0 ->
                raise
                  (Reply
                     (Protocol.Err (Printf.sprintf "shard %d: %s" target e)))
            | Protocol.Err e -> replica_missed t ~target ~rank ~reason:e frame
            | exception Shard_down s when rank > 0 ->
                replica_missed t ~target ~rank ~reason:(shard_down_msg t s)
                  frame
          done)
        slices);
  let rels =
    List.fold_left
      (fun acc r -> StringSet.add (Relation.name r) acc)
      StringSet.empty (Database.relations database)
  in
  set_db t db { rels; tuples = Database.size database };
  Protocol.Ok_
    {
      summary =
        Printf.sprintf "%s shards=%d replicas=%d relations=%d tuples=%d" db
          (shards t) t.config.replicas
          (StringSet.cardinal rels)
          (Database.size database);
      payload = [];
    }

let do_load t conns ~db ~path =
  match Source.load_database path with
  | Error e -> Protocol.Err e
  | Ok database -> distribute t conns ~db database

let do_bulk_text t conns ~db text =
  match Source.parse_facts text with
  | Error e -> Protocol.Err e
  | Ok database -> distribute t conns ~db database

(* FACT routes the one tuple to its owner (and the owner's replica
   entries).  Writes do not fail over — a fact must land on its owning
   replicas — but like LOAD, only a {e primary} (rank 0) failure fails
   the request; a missed replica copy is counted, logged, and journaled
   for handoff. *)
let do_fact t conns ~db ~fact =
  match Source.parse_facts fact with
  | Error e -> Protocol.Err e
  | Ok parsed -> (
      match Database.relations parsed with
      | [ r ] when Relation.cardinality r = 1 ->
          replay_hints t conns;
          let tup = List.hd (Relation.tuples r) in
          let owner =
            if Tuple.arity tup = 0 then 0
            else Ring.owner_of_value t.ring tup.(0)
          in
          (try
             round (fun () ->
                 for rank = 0 to t.config.replicas - 1 do
                   let target = Ring.replica_shard t.ring ~shard:owner ~rank in
                   let line =
                     Printf.sprintf "FACT %s %s" (replica_name db ~rank) fact
                   in
                   let frame = { Hints.header = line; payload = [] } in
                   match
                     raw_call t conns None target
                       ~bytes:(String.length line + 1) (fun c ->
                         Client.request_line c line)
                   with
                   | Protocol.Ok_ _ -> ()
                   | Protocol.Err e when rank = 0 ->
                       raise
                         (Reply
                            (Protocol.Err
                               (Printf.sprintf "shard %d: %s" target e)))
                   | Protocol.Err e ->
                       replica_missed t ~target ~rank ~reason:e frame
                   | exception Shard_down s when rank > 0 ->
                       replica_missed t ~target ~rank
                         ~reason:(shard_down_msg t s) frame
                 done);
             let info =
               match find_db t db with
               | Some i -> i
               | None -> { rels = StringSet.empty; tuples = 0 }
             in
             set_db t db
               {
                 rels = StringSet.add (Relation.name r) info.rels;
                 tuples = info.tuples + 1;
               };
             Protocol.Ok_
               {
                 summary = Printf.sprintf "%s shard=%d" db owner;
                 payload = [];
               }
           with
          | Reply r -> r
          | Shard_down s -> Protocol.Err (shard_down_msg t s))
      | _ -> Protocol.Err "FACT: expected exactly one ground fact")

(* --- EVAL ------------------------------------------------------- *)

let positional_schema m = List.init m (fun i -> Printf.sprintf "a%d" i)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* A shard that never received a slice of some relation (its slice was
   empty, so BULK carried no line for it) answers a missing-relation
   error — "query names a relation missing from ..." out of the plan
   path, "Database.find: no relation ..." out of an engine.  A shard
   that never received any fact of the database at all (the FACT path
   creates shard-side catalog entries lazily, on the owning replicas
   only) answers "no database ...".  After the coordinator's own
   precheck (the database and every body relation provably exist
   cluster-wide), any of the three can only mean an empty
   contribution. *)
let is_missing_relation e =
  starts_with ~prefix:"query names a relation" e
  || starts_with ~prefix:"Database.find: no relation" e
  || starts_with ~prefix:"no database " e

(* Gather the answer of [query_text] (a GATHER-able query whose head
   relation is [head_name]) from every shard and union the parsed fact
   payloads.  Each (slice, rank-failover) response contributes its
   rows; set semantics of [parse_facts] dedups. *)
let gather_all t conns budget ~db ~head_name ~arity query_text =
  let chunks =
    List.init (shards t) (fun s ->
        match
          data_call t conns budget ~shard:s ~rank:0 ~db (fun name ->
              Printf.sprintf "GATHER %s %s" name query_text)
        with
        | Protocol.Ok_ { summary; payload } ->
            if contains_sub summary "truncated=true" then
              raise
                (Reply
                   (Protocol.Err
                      (Printf.sprintf
                         "shard %d truncated its answer; raise max-rows on \
                          the shards"
                         s)))
            else payload
        | Protocol.Err e when is_missing_relation e -> []
        | Protocol.Err e ->
            raise (Reply (Protocol.Err (Printf.sprintf "shard %d: %s" s e))))
  in
  let text = String.concat "\n" (List.concat chunks) ^ "\n" in
  match Source.parse_facts text with
  | Error e ->
      raise
        (Reply (Protocol.Err (Printf.sprintf "shard payload invalid: %s" e)))
  | Ok gdb -> (
      match Database.find_opt gdb head_name with
      | Some r -> r
      | None ->
          Relation.create ~name:head_name ~schema:(positional_schema arity) [])

(* Scatter fast path: every atom's first argument is the same variable,
   so the whole query is co-partitioned — each answer is witnessed
   entirely on the shard owning that variable's value.  One round:
   evaluate the original query on every shard, union. *)
let scatter_eval t conns budget ~db ~query q =
  round (fun () ->
      gather_all t conns budget ~db ~head_name:q.Cq.name
        ~arity:(List.length q.Cq.head) query)

(* Scatter counting: under co-partitioning every satisfying valuation's
   witness tuples all carry the same first value, so the valuation is
   counted on exactly one shard — per-shard counts partition the total
   and the coordinator just sums them.  A shard whose slice of some
   body relation is empty (never shipped) contributes zero. *)
let scatter_count t conns budget ~db ~query =
  round (fun () ->
      List.fold_left ( + ) 0
        (List.init (shards t) (fun s ->
             match
               data_call t conns budget ~shard:s ~rank:0 ~db (fun name ->
                   Printf.sprintf "COUNT %s auto %s" name query)
             with
             | Protocol.Ok_ { payload = [ n ]; _ }
               when int_of_string_opt (String.trim n) <> None ->
                 int_of_string (String.trim n)
             | Protocol.Ok_ _ ->
                 raise
                   (Reply
                      (Protocol.Err
                         (Printf.sprintf "shard %d: malformed COUNT payload" s)))
             | Protocol.Err e when is_missing_relation e -> 0
             | Protocol.Err e ->
                 raise
                   (Reply (Protocol.Err (Printf.sprintf "shard %d: %s" s e))))))

(* --- reducer exchange ------------------------------------------- *)

let term_to_source = function
  | Term.Var v -> v
  | Term.Const c -> Fact_format.value_to_syntax c

let atom_to_source a =
  Printf.sprintf "%s(%s)" a.Atom.rel
    (String.concat ", " (List.map term_to_source a.Atom.args))

let op_to_source = function
  | Constr.Neq -> "!="
  | Constr.Lt -> "<"
  | Constr.Le -> "<="

let constr_to_source c =
  Printf.sprintf "%s %s %s"
    (term_to_source c.Constr.lhs)
    (op_to_source c.Constr.op)
    (term_to_source c.Constr.rhs)

let first_var a =
  match a.Atom.args with Term.Var v :: _ -> Some v | _ -> None

(* The reducer for body atom [i]: its matching tuples, semijoin-reduced
   against whatever of the rest of the query is provably co-located.
   An atom [j] whose first argument is the same variable is
   co-partitioned with atom [i] (any joint witness puts both tuples on
   the owner of that variable's value), so it can prune shard-side;
   constraints whose variables all occur in the included atoms prune
   too.  The head repeats the atom's arguments verbatim — constants
   and repeated variables included — so the gathered relation is
   exactly a reduced copy of the atom's relation, and the coordinator
   can re-join by renaming the atom to [gx<i>]. *)
let reducer_source q i =
  let atom = List.nth q.Cq.body i in
  let partners =
    match first_var atom with
    | None -> []
    | Some v ->
        List.filteri
          (fun j a -> j <> i && first_var a = Some v)
          q.Cq.body
  in
  let body = atom :: partners in
  let bound =
    List.fold_left
      (fun acc a -> StringSet.union acc (StringSet.of_list (Atom.vars a)))
      StringSet.empty body
  in
  let constraints =
    List.filter
      (fun c ->
        List.for_all (fun v -> StringSet.mem v bound) (Constr.vars c))
      q.Cq.constraints
  in
  Printf.sprintf "gx%d(%s) :- %s." i
    (String.concat ", " (List.map term_to_source atom.Atom.args))
    (String.concat ", "
       (List.map atom_to_source body
       @ List.map constr_to_source constraints))

(* A query with no relational atoms is ground: by safety its head and
   constraints are all constants, so it touches no shard at all. *)
let ground_holds q =
  List.for_all
    (fun c ->
      match (c.Constr.lhs, c.Constr.rhs) with
      | Term.Const a, Term.Const b -> Constr.eval_op c.Constr.op a b
      | _ -> false)
    q.Cq.constraints

let eval_ground q =
  let holds = ground_holds q in
  let consts =
    List.filter_map
      (function Term.Const v -> Some v | Term.Var _ -> None)
      q.Cq.head
  in
  let schema = positional_schema (List.length q.Cq.head) in
  Relation.create ~name:q.Cq.name ~schema
    (if holds && List.length consts = List.length q.Cq.head then
       [ Array.of_list consts ]
     else [])

(* General path, two rounds.  Round 1 gathers one reducer relation per
   body atom from every shard; round 2 joins them at the coordinator
   under the original head and constraints, with every atom renamed to
   its reducer.  Linear-time class is preserved: the reducers are
   selections/semijoins (linear shard-side), the exchange moves only
   reduced relations, and the final join runs the same planner the
   single node would. *)
let exchange_scratch t conns budget ~db q =
  let gname i = Printf.sprintf "gx%d" i in
  let gathered =
    round (fun () ->
        List.mapi
          (fun i atom ->
            let arity = List.length atom.Atom.args in
            (i, arity, reducer_source q i))
          q.Cq.body
        |> List.map (fun (i, arity, src) ->
               ( i,
                 gather_all t conns budget ~db ~head_name:(gname i) ~arity
                   src )))
  in
  let scratch =
    List.fold_left
      (fun acc (_, r) -> Database.add r acc)
      Database.empty gathered
  in
  let rewritten =
    Cq.make ~name:q.Cq.name ~constraints:q.Cq.constraints ~head:q.Cq.head
      (List.mapi
         (fun i atom -> Atom.make (gname i) atom.Atom.args)
         q.Cq.body)
  in
  (scratch, rewritten)

let exchange_eval t conns budget ~db q =
  if q.Cq.body = [] then eval_ground q
  else begin
    let scratch, rewritten = exchange_scratch t conns budget ~db q in
    round (fun () ->
        let plan = Plan.analyze Plan.Auto rewritten in
        Plan.evaluate ?budget plan scratch rewritten)
  end

(* COUNT over the exchange: the same round-1 reducers (semijoin
   reduction is count-preserving — a dropped tuple takes part in no
   satisfying valuation), then the exact count computed locally on the
   scratch database.  A ground query has exactly one, empty, valuation
   when its constraints hold. *)
let exchange_count t conns budget ~db q =
  if q.Cq.body = [] then if ground_holds q then 1 else 0
  else begin
    let scratch, rewritten = exchange_scratch t conns budget ~db q in
    round (fun () ->
        let plan = Plan.analyze Plan.Auto rewritten in
        Plan.count ?budget plan scratch rewritten)
  end

let truncate_rows t lines rows =
  match t.config.limits.Guard.max_rows with
  | Some m when rows > m -> (List.filteri (fun i _ -> i < m) lines, true)
  | _ -> (lines, false)

(* Shared EVAL/GATHER/COUNT core: parse, precheck the relation names
   against the coordinator's recorded schema, arm the deadline, pick
   the distribution strategy, fan out.  [scatter]/[exchange] are the
   verb's two strategies (relation-valued for EVAL/GATHER, int-valued
   for COUNT); [render] turns the result into the verb's payload and
   summary. *)
let guarded t ~db ~engine ~query ~scatter ~exchange render =
  match Plan.engine_kind_of_string engine with
  | None -> Protocol.Err (Printf.sprintf "unknown engine %s" engine)
  | Some _kind -> (
      (* The engine token is validated for wire compatibility but the
         cluster always dispatches auto: shard-side engines are a
         shard-local concern, and every engine computes the same
         answer set (the differential oracle's invariant). *)
      match Source.parse_query query with
      | Error e -> Protocol.Err e
      | Ok q -> (
          match find_db t db with
          | None ->
              Protocol.Err
                (Printf.sprintf "no database %s (use LOAD or FACT)" db)
          | Some info ->
              if
                List.exists
                  (fun a -> not (StringSet.mem a.Atom.rel info.rels))
                  q.Cq.body
              then
                Protocol.Err
                  (Printf.sprintf "query names a relation missing from %s" db)
              else begin
                let budget =
                  Option.map
                    (fun deadline_ns -> Budget.start ~deadline_ns)
                    t.config.limits.Guard.deadline_ns
                in
                let t0 = Clock.now_ns () in
                try
                  let mode, result =
                    match
                      Planner.shard_choice (Plan.analyze Plan.Auto q).Plan.pplan
                    with
                    | Planner.Copartitioned _ when q.Cq.body <> [] ->
                        Metrics.incr m_scatter;
                        ("scatter", scatter budget q)
                    | _ ->
                        Metrics.incr m_exchange;
                        ("exchange", exchange budget q)
                  in
                  render ~mode ~ns:(Clock.now_ns () - t0) result
                with
                | Reply r -> r
                | Shard_down s -> Protocol.Err (shard_down_msg t s)
                | Budget.Exhausted { elapsed_ns; _ } ->
                    Metrics.incr m_deadline;
                    Protocol.Err
                      (Printf.sprintf "deadline-exceeded after %dns" elapsed_ns)
                | Invalid_argument msg -> Protocol.Err msg
              end))

let guarded_eval t conns ~db ~engine ~query render =
  guarded t ~db ~engine ~query
    ~scatter:(fun budget q -> scatter_eval t conns budget ~db ~query q)
    ~exchange:(fun budget q -> exchange_eval t conns budget ~db q)
    render

let render_eval t ~mode ~ns result =
  let rows = Relation.cardinality result in
  let lines = Plan.sorted_tuples result in
  let payload, truncated = truncate_rows t lines rows in
  Protocol.Ok_
    {
      summary =
        Printf.sprintf "engine=cluster mode=%s shards=%d rows=%d ns=%d%s" mode
          (shards t) rows ns
          (if truncated then " truncated=true" else "");
      payload;
    }

(* GATHER at the coordinator answers fact lines exactly like a shard
   would, so coordinators can themselves be gathered from (tiered
   topologies). *)
let render_gather t ~mode:_ ~ns result =
  let rows = Relation.cardinality result in
  let name = Relation.name result in
  let lines =
    List.map (fact_line name)
      (List.sort Tuple.compare (Relation.tuples result))
  in
  let payload, truncated = truncate_rows t lines rows in
  Protocol.Ok_
    {
      summary =
        Printf.sprintf "gathered %s cache=miss rows=%d ns=%d%s" name rows ns
          (if truncated then " truncated=true" else "");
      payload;
    }

(* Admission control: the inflight count is tracked (and its
   high-watermark published) unconditionally; the limit only rejects
   when configured.  Layered on the Guard limits rather than replacing
   them — deadline and row caps still apply to admitted requests. *)
let admitted t f =
  let cur = Atomic.fetch_and_add t.inflight 1 + 1 in
  Metrics.set_max g_inflight cur;
  Fun.protect
    ~finally:(fun () -> ignore (Atomic.fetch_and_add t.inflight (-1)))
    (fun () ->
      match t.config.max_inflight with
      | Some cap when cur > cap ->
          Metrics.incr m_admission;
          Protocol.Err
            (Printf.sprintf "admission-limited: %d requests in flight (max %d)"
               cur cap)
      | _ -> f ())

let do_eval t conns ~db ~engine ~query =
  admitted t (fun () -> guarded_eval t conns ~db ~engine ~query (render_eval t))

let do_gather t conns ~db ~query =
  admitted t (fun () ->
      guarded_eval t conns ~db ~engine:"auto" ~query (render_gather t))

(* COUNT at the coordinator: the payload is the same single bare-count
   line a single node answers, so clients (and the differential
   oracle's count engines) read both identically. *)
let render_count t ~mode ~ns n =
  Protocol.Ok_
    {
      summary =
        Printf.sprintf "engine=cluster mode=%s shards=%d count=%d ns=%d" mode
          (shards t) n ns;
      payload = [ string_of_int n ];
    }

let do_count t conns ~db ~engine ~query =
  admitted t (fun () ->
      match Plan.engine_kind_of_string engine with
      | Some Plan.Fpt ->
          (* Match the single-node refusal: the fpt engine's randomized
             trials witness satisfiability, not multiplicities. *)
          Protocol.Err
            "COUNT: engine fpt cannot count (use auto, naive, yannakakis, or \
             compiled)"
      | _ ->
          guarded t ~db ~engine ~query
            ~scatter:(fun budget _q -> scatter_count t conns budget ~db ~query)
            ~exchange:(fun budget q -> exchange_count t conns budget ~db q)
            (render_count t))

(* CHECK and EXPLAIN are static analysis; the coordinator answers them
   locally (same code path as a single node, including the planner's
   shard-key line in EXPLAIN). *)
let do_check query =
  match Source.parse_query query with
  | Error e -> Protocol.Err e
  | Ok q ->
      let plan = Plan.analyze Plan.Auto q in
      let pplan = plan.Plan.pplan in
      Protocol.Ok_
        {
          summary = Printf.sprintf "checked size=%d" (Cq.size q);
          payload =
            [
              Printf.sprintf "query: %s" (Cq.to_string q);
              Printf.sprintf "size %d vars %d" (Cq.size q) (Cq.num_vars q);
              Printf.sprintf "acyclic: %b" plan.Plan.acyclic;
              Printf.sprintf "class: %s"
                (Planner.classification_name pplan.Planner.classification);
              Printf.sprintf "width: %d" pplan.Planner.width;
              Printf.sprintf "join_tree: %s"
                (match plan.Plan.tree with
                | Some tr ->
                    Printf.sprintf "%d nodes"
                      (Paradb_hypergraph.Join_tree.n_nodes tr)
                | None -> "none");
              Printf.sprintf "neq_partition_k: %d" plan.Plan.neq_k;
              Printf.sprintf "recommended_engine: %s"
                (Plan.engine_name plan.Plan.engine);
            ];
        }

let do_explain query =
  match Source.parse_query query with
  | Error e -> Protocol.Err e
  | Ok q ->
      let pplan = Planner.plan q in
      Protocol.Ok_
        {
          summary =
            Printf.sprintf "plan class=%s width=%d steps=%d"
              (Planner.classification_name pplan.Planner.classification)
              pplan.Planner.width
              (List.length pplan.Planner.steps);
          payload = Planner.explain pplan;
        }

(* --- replica digests and repair --------------------------------- *)

(* The digest of replica [rank] of slice [slice]: the shard's sorted
   per-relation fingerprint lines.  A replica that never received the
   entry digests as empty rather than as an error — an empty slice and
   a missing entry are the same logical content. *)
let rank_digest t conns ~db ~slice ~rank =
  let target = Ring.replica_shard t.ring ~shard:slice ~rank in
  let line = Printf.sprintf "DIGEST %s" (replica_name db ~rank) in
  match
    raw_call t conns None target ~bytes:(String.length line + 1) (fun c ->
        Client.request_line c line)
  with
  | Protocol.Ok_ { payload; _ } -> Ok (List.sort compare payload)
  | Protocol.Err e when is_missing_relation e -> Ok []
  | Protocol.Err e -> Error e
  | exception Shard_down s -> Error (shard_down_msg t s)

let slice_digests t conns ~db ~slice =
  List.init t.config.replicas (fun rank ->
      (rank, rank_digest t conns ~db ~slice ~rank))

(* Divergent = two readable ranks disagree.  Unreachable ranks are not
   comparable (and not divergent by themselves — they may come back
   bit-identical). *)
let slice_divergent digests =
  let oks =
    List.filter_map (function _, Ok d -> Some d | _, Error _ -> None) digests
  in
  match oks with
  | [] | [ _ ] -> false
  | first :: rest -> List.exists (fun d -> d <> first) rest

let digest_report digests =
  List.concat_map
    (fun (rank, d) ->
      match d with
      | Ok [] -> [ Printf.sprintf "  rank %d (empty)" rank ]
      | Ok lines -> List.map (Printf.sprintf "  rank %d %s" rank) lines
      | Error e -> [ Printf.sprintf "  rank %d unreachable: %s" rank e ])
    digests

(* [relation <name> <arity> <rows> <crc>] — the session's DIGEST line. *)
let parse_digest_line l =
  match String.split_on_char ' ' (String.trim l) with
  | [ "relation"; name; arity; _rows; _crc ] ->
      Option.map (fun a -> (name, a)) (int_of_string_opt arity)
  | _ -> None

let full_scan_query name arity =
  let vars = List.init arity (Printf.sprintf "V%d") in
  Printf.sprintf "%s(%s) :- %s(%s)." name
    (String.concat ", " vars)
    name (String.concat ", " vars)

(* Repair one divergent slice: take the set union of every readable
   rank's content and re-ship it to every rank as a fresh BULK.

   Union, not owner-wins: writes here are monotone (LOAD appends, FACT
   adds), so the true content is a superset of every rank's copy and
   the union reconstructs it even when the owner itself restarted
   empty and only a replica still holds older facts.  The trade-off is
   that a rank holding rows the others never saw (which monotone
   writes cannot produce, short of a torn BULK) has those rows spread
   rather than deleted. *)
let repair_slice t conns ~db ~slice digests =
  let specs = Hashtbl.create 8 in
  List.iter
    (function
      | _, Ok lines ->
          List.iter
            (fun l ->
              match parse_digest_line l with
              | Some (name, arity) -> Hashtbl.replace specs name arity
              | None -> ())
            lines
      | _, Error _ -> ())
    digests;
  let buf = Buffer.create 1024 in
  let truncated = ref false in
  List.iter
    (fun (rank, d) ->
      match d with
      | Error _ -> ()
      | Ok _ ->
          let target = Ring.replica_shard t.ring ~shard:slice ~rank in
          Hashtbl.iter
            (fun name arity ->
              if arity >= 1 then
                let line =
                  Printf.sprintf "GATHER %s %s" (replica_name db ~rank)
                    (full_scan_query name arity)
                in
                match
                  raw_call t conns None target ~bytes:(String.length line + 1)
                    (fun c -> Client.request_line c line)
                with
                | Protocol.Ok_ { summary; payload } ->
                    if contains_sub summary "truncated=true" then
                      truncated := true
                    else
                      List.iter
                        (fun l ->
                          Buffer.add_string buf l;
                          Buffer.add_char buf '\n')
                        payload
                | Protocol.Err _ -> ()
                | exception Shard_down _ -> ())
            specs)
    digests;
  if !truncated then
    Error "a rank truncated its scan; raise max-rows on the shards"
  else
    match Source.parse_facts (Buffer.contents buf) with
    | Error e -> Error ("union of rank contents failed to parse: " ^ e)
    | Ok udb ->
        let lines = slice_lines udb in
        let rows = Database.size udb in
        let shipped = ref 0 in
        for rank = 0 to t.config.replicas - 1 do
          let target = Ring.replica_shard t.ring ~shard:slice ~rank in
          let header =
            Printf.sprintf "BULK %s %d" (replica_name db ~rank)
              (List.length lines)
          in
          let bytes =
            List.fold_left
              (fun a l -> a + String.length l + 1)
              (String.length header + 1)
              lines
          in
          let frame = { Hints.header; payload = lines } in
          match
            raw_call t conns None target ~bytes (fun c ->
                Client.request_bulk c ~header lines)
          with
          | Protocol.Ok_ _ ->
              incr shipped;
              Metrics.incr m_repair_reshipped
          | Protocol.Err e -> replica_missed t ~target ~rank ~reason:e frame
          | exception Shard_down s ->
              replica_missed t ~target ~rank ~reason:(shard_down_msg t s) frame
        done;
        Metrics.incr ~by:rows m_repair_rows;
        Ok (!shipped, rows)

(* DIGEST at the coordinator: the dry run — compare every slice's
   replica digests and report divergence without touching anything. *)
let do_digest t conns ~db =
  match find_db t db with
  | None -> Protocol.Err (Printf.sprintf "no database %s (use LOAD or FACT)" db)
  | Some _ ->
      round (fun () ->
          let divergent = ref 0 in
          let payload =
            List.concat_map
              (fun slice ->
                let digests = slice_digests t conns ~db ~slice in
                if slice_divergent digests then begin
                  incr divergent;
                  Metrics.incr m_divergent;
                  Printf.sprintf "slice %d divergent" slice
                  :: digest_report digests
                end
                else [])
              (List.init (shards t) Fun.id)
          in
          Protocol.Ok_
            {
              summary =
                Printf.sprintf "digest %s slices=%d replicas=%d divergent=%d"
                  db (shards t) t.config.replicas !divergent;
              payload;
            })

(* REPAIR: replay any pending hints first (handoff may already close
   the gap), then re-ship every slice whose replicas still disagree. *)
let do_repair t conns ~db =
  match find_db t db with
  | None -> Protocol.Err (Printf.sprintf "no database %s (use LOAD or FACT)" db)
  | Some _ ->
      Metrics.incr m_repair_runs;
      replay_hints t conns;
      round (fun () ->
          let divergent = ref 0 and reshipped = ref 0 and rows = ref 0 in
          let payload =
            List.concat_map
              (fun slice ->
                let digests = slice_digests t conns ~db ~slice in
                if slice_divergent digests then begin
                  incr divergent;
                  Metrics.incr m_divergent;
                  match repair_slice t conns ~db ~slice digests with
                  | Ok (shipped, r) ->
                      reshipped := !reshipped + shipped;
                      rows := !rows + r;
                      [
                        Printf.sprintf "slice %d repaired ranks=%d rows=%d"
                          slice shipped r;
                      ]
                  | Error e ->
                      [ Printf.sprintf "slice %d repair failed: %s" slice e ]
                end
                else [])
              (List.init (shards t) Fun.id)
          in
          Protocol.Ok_
            {
              summary =
                Printf.sprintf
                  "repaired %s slices=%d divergent=%d reshipped=%d rows=%d" db
                  (shards t) !divergent !reshipped !rows;
              payload;
            })

let do_stats t =
  let dbs =
    Mutex.lock t.mu;
    let l =
      Hashtbl.fold (fun name info acc -> (name, info) :: acc) t.dbs []
    in
    Mutex.unlock t.mu;
    List.sort compare l
  in
  Protocol.Ok_
    {
      summary = "stats";
      payload =
        [
          Printf.sprintf "cluster.shards %d" (shards t);
          Printf.sprintf "cluster.replicas %d" t.config.replicas;
          Printf.sprintf "cluster.vnodes %d" t.config.vnodes;
        ]
        @ (match t.hints with
          | None -> []
          | Some h ->
              [
                Printf.sprintf "cluster.hints.pending %d"
                  (List.fold_left
                     (fun acc s ->
                       acc + if Hints.pending h ~shard:s then
                               Hints.pending_frames h ~shard:s
                             else 0)
                     0
                     (List.init (shards t) Fun.id));
              ])
        @ List.concat_map
            (fun (name, info) ->
              [
                Printf.sprintf "db.%s %d" name info.tuples;
                Printf.sprintf "db.%s.relations %d" name
                  (StringSet.cardinal info.rels);
              ])
            dbs
        @ Export.to_table ~prefix:"telemetry." (Metrics.snapshot ());
    }

let do_metrics () =
  Protocol.Ok_
    { summary = "metrics"; payload = [ Export.to_json (Metrics.snapshot ()) ] }

(* --- the per-connection front end ------------------------------- *)

type bulk = { bulk_db : string; mutable remaining : int; buf : Buffer.t }

let handler t () =
  let conns = Array.make (shards t) None in
  let bulk = ref None in
  let dispatch req =
    match req with
    | Protocol.Load { db; path } ->
        (Some (do_load t conns ~db ~path), `Continue)
    | Protocol.Fact { db; fact } ->
        (Some (do_fact t conns ~db ~fact), `Continue)
    | Protocol.Bulk { db; count } ->
        if count = 0 then (Some (do_bulk_text t conns ~db ""), `Continue)
        else begin
          bulk :=
            Some { bulk_db = db; remaining = count; buf = Buffer.create 256 };
          (None, `Continue)
        end
    | Protocol.Eval { db; engine; query } ->
        (Some (do_eval t conns ~db ~engine ~query), `Continue)
    | Protocol.Count { db; engine; query } ->
        (Some (do_count t conns ~db ~engine ~query), `Continue)
    | Protocol.Gather { db; query } ->
        (Some (do_gather t conns ~db ~query), `Continue)
    | Protocol.Check query -> (Some (do_check query), `Continue)
    | Protocol.Explain query -> (Some (do_explain query), `Continue)
    | Protocol.Digest db -> (Some (do_digest t conns ~db), `Continue)
    | Protocol.Repair db -> (Some (do_repair t conns ~db), `Continue)
    | Protocol.Stats -> (Some (do_stats t), `Continue)
    | Protocol.Metrics -> (Some (do_metrics ()), `Continue)
    | Protocol.Quit ->
        (Some (Protocol.Ok_ { summary = "bye"; payload = [] }), `Quit)
  in
  let on_line line =
    match !bulk with
    | Some b ->
        Buffer.add_string b.buf line;
        Buffer.add_char b.buf '\n';
        b.remaining <- b.remaining - 1;
        if b.remaining = 0 then begin
          bulk := None;
          ( Some (do_bulk_text t conns ~db:b.bulk_db (Buffer.contents b.buf)),
            `Continue )
        end
        else (None, `Continue)
    | None -> (
        match Protocol.parse_request line with
        | Error e -> (Some (Protocol.Err e), `Continue)
        | Ok req -> dispatch req)
  in
  let on_close () =
    Array.iteri
      (fun i c ->
        match c with
        | Some c ->
            (try Client.close c with _ -> ());
            conns.(i) <- None
        | None -> ())
      conns
  in
  { Server.on_line; on_close }

(* Convenience: a coordinator listening on its own port. *)
let serve ?host t ~port ~workers =
  Server.start_handler ?host ~limits:t.config.limits ~port ~workers
    ~handler:(handler t) ()
