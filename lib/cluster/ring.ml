module Value = Paradb_relational.Value

(* FNV-1a (64-bit), masked to a nonnegative OCaml int.  The point is
   stability: coordinator and shards are separate processes (and may be
   separate binaries across a rolling restart), so the partitioning
   hash must be a function of the value's bytes alone — never
   [Hashtbl.hash] or anything seeded per-process. *)
let fnv_prime = 0x100000001b3L
let fnv_offset = 0xcbf29ce484222325L

let hash_bytes s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  Int64.to_int !h land max_int

(* Tag by constructor so [Int 1] and [Str "1"] (distinct domain values)
   never alias. *)
let hash_value = function
  | Value.Int i -> hash_bytes ("i\x00" ^ string_of_int i)
  | Value.Str s -> hash_bytes ("s\x00" ^ s)

type t = {
  points : (int * int) array;  (** (point hash, shard), sorted by hash *)
  shards : int;
}

let default_vnodes = 64

let create ?(vnodes = default_vnodes) ~shards () =
  if shards < 1 then invalid_arg "Ring.create: need at least one shard";
  if vnodes < 1 then invalid_arg "Ring.create: need at least one vnode";
  let points =
    Array.init (shards * vnodes) (fun i ->
        let shard = i / vnodes and v = i mod vnodes in
        (hash_bytes (Printf.sprintf "vnode:%d:%d" shard v), shard))
  in
  Array.sort compare points;
  { points; shards }

let shards t = t.shards

(* First ring point clockwise from [h] (wrapping past the top). *)
let owner t h =
  let n = Array.length t.points in
  let rec search lo hi =
    (* invariant: answer index is in [lo, hi], where hi = n means wrap *)
    if lo >= hi then if lo = n then snd t.points.(0) else snd t.points.(lo)
    else
      let mid = (lo + hi) / 2 in
      if fst t.points.(mid) >= h then search lo mid else search (mid + 1) hi
  in
  search 0 n

let owner_of_value t v = owner t (hash_value v)

(* Successor shards for slice replicas: copy [r] of shard [s]'s slice
   lives on shard [(s + r) mod shards].  Slice-granular (not per-key)
   placement keeps replica fan-out a bulk transfer and makes failover
   addressing trivial: the replica of slice [s] under name [db@r<r>] is
   always exactly one hop per replica rank. *)
let replica_shard t ~shard ~rank = (shard + rank) mod t.shards
