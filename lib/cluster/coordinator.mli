(** The cluster coordinator: scatter-gather evaluation over [N] shard
    servers, each an ordinary [paradb serve] speaking the line
    protocol.

    {2 Data placement}

    [LOAD] parses the fact file locally, hash-partitions every
    relation on its first column over the consistent-hashing {!Ring},
    and ships slice [s] to shard [s] as one [BULK] frame per entry —
    plus one copy per replica rank [r] to shard [(s + r) mod N] under
    the entry name [db@r<r>].  Shards hold opaque slices; only the
    coordinator knows the full relation-name set, which is why it
    prechecks every query against its own catalog and treats a
    shard-side "missing relation" (an empty slice was never shipped —
    [BULK] carries no lines for an empty relation) as an empty
    contribution.

    {2 Evaluation}

    [EVAL]/[GATHER] pick a strategy from
    {!Paradb_planner.Planner.shard_choice}:

    - {e scatter} (co-partitioned: every atom starts with the same
      variable) — one round; each shard evaluates the original query
      over its slice via [GATHER] and the coordinator unions the fact
      payloads.  Correct because every answer's witness tuples all
      carry the same first value, hence live on one shard.
    - {e exchange} (general) — two rounds.  Round 1 gathers per-atom
      {e reducer relations} [gx<i>]: the atom's matching tuples,
      semijoin-reduced shard-side against co-partitioned partner atoms
      and locally-decidable constraints.  Round 2 joins the reducers at
      the coordinator with every atom renamed to its reducer, under the
      original head and constraints.  Reducers are selections and
      semijoins, so the paper's linear-time class survives
      distribution.

    Results are rendered with the same canonical serialization as a
    single node ([Plan.sorted_tuples] / fact lines), so answers are
    bit-for-bit identical — the property the differential oracle's
    "cluster" engine fuzzes.

    [COUNT] follows the same strategy choice: under scatter each shard
    answers its own [COUNT] and the coordinator sums the partial counts
    (co-partitioning puts every satisfying valuation on exactly one
    shard); under exchange the round-1 reducers are gathered as for
    [EVAL] — semijoin reduction is count-preserving — and the exact
    count is computed locally.  The payload is the same single
    bare-count line a single node answers.

    {2 Failure semantics}

    Per-connection shard sockets are pooled; a transport error redials
    once (counted in [cluster.redial]), then walks the replica ranks
    (counted in [cluster.failover]); with no replica left the request
    answers a clean [ERR] naming the dead shard.  Writes ([LOAD],
    [FACT]) never fail over.  The Guard deadline is owned by the
    coordinator and re-armed as a socket timeout on every sub-request
    with whatever budget remains; [max_inflight] admission-limits
    concurrent [EVAL]s on top.  [PARADB_FAULTS] [shard_loss] /
    [straggler_delay] inject pooled-connection loss and sub-request
    stalls here. *)

(** {2 Replica self-healing}

    Writes fan out to every replica rank, but only a {e primary}
    (rank 0) failure fails the request; a missed replica copy counts on
    [cluster.write.replica_miss], logs a warning, and — with
    [hints_dir] set — is journaled as a per-target-shard hint frame
    ({!Hints}) replayed in order before the next write reaches that
    shard (hinted handoff).  [DIGEST <db>] compares per-slice replica
    content fingerprints (the shards' DIGEST lines) and reports
    divergence; [REPAIR <db>] replays hints, then re-ships every
    still-divergent slice with the set union of all readable ranks'
    content — correct under monotone writes, see DESIGN.md §16.
    Divergence and repair work surface as [cluster.replica.divergent]
    and [cluster.repair.*]. *)

type config = {
  addrs : (string * int) array;  (** shard servers, index = shard id *)
  replicas : int;  (** copies per slice, in [[1, shards]] *)
  vnodes : int;  (** ring points per shard *)
  timeout : float option;  (** per-sub-request socket timeout, seconds *)
  retries : int;  (** connect retries per dial *)
  limits : Paradb_server.Guard.limits;
      (** coordinator-side limits: deadline, row cap, line cap, idle *)
  max_inflight : int option;  (** admission cap on concurrent EVALs *)
  hints_dir : string option;
      (** hinted-handoff journal directory; [None] disables journaling
          (missed replica writes are still counted and logged) *)
}

(** 1 replica, default vnodes, 30s timeout, 2 retries, default Guard
    limits, no admission cap, no hints dir. *)
val default_config : (string * int) list -> config

type t

(** Raises [Invalid_argument] on zero shards or a replica count outside
    [[1, shards]]. *)
val create : config -> t

val shards : t -> int

(** One accepted client connection's request processor; give this to
    {!Paradb_server.Server.start_handler}.  Each connection owns its
    own pool of shard sockets, released by [on_close]. *)
val handler : t -> unit -> Paradb_server.Server.handler

(** [serve ?host t ~port ~workers] — a listening front end wired to
    {!handler} via {!Paradb_server.Server.start_handler}. *)
val serve :
  ?host:string -> t -> port:int -> workers:int -> Paradb_server.Server.t
