(** Consistent hashing over [N] shards with virtual nodes.

    Each shard contributes [vnodes] points to the ring (hashes of
    ["vnode:<shard>:<i>"]); a value is owned by the shard of the first
    point clockwise from the value's hash.  Virtual nodes smooth the
    load split and keep reassignment local when the shard count
    changes.  The hash is FNV-1a over the value's tagged bytes —
    deliberately process-independent, so every coordinator and every
    test computes the same partitioning for the same data. *)

type t

val default_vnodes : int

(** Raises [Invalid_argument] unless [shards >= 1] and [vnodes >= 1]. *)
val create : ?vnodes:int -> shards:int -> unit -> t

val shards : t -> int

(** Stable nonnegative hash of a domain value ([Int] and [Str] never
    alias). *)
val hash_value : Paradb_relational.Value.t -> int

(** [owner t h] — the shard owning ring position [h]. *)
val owner : t -> int -> int

(** [owner_of_value t v] = [owner t (hash_value v)]. *)
val owner_of_value : t -> Paradb_relational.Value.t -> int

(** [replica_shard t ~shard ~rank] — where replica [rank] (1, 2, ...)
    of [shard]'s slice lives: the [rank]-th successor shard.  Rank 0 is
    the shard itself. *)
val replica_shard : t -> shard:int -> rank:int -> int
