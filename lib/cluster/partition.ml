module Relation = Paradb_relational.Relation
module Database = Paradb_relational.Database
module Tuple = Paradb_relational.Tuple

(* Hash-partition one relation on the value at column [key].  Every row
   lands on exactly one shard (pairwise-disjoint slices whose union is
   the original relation — the qcheck property in test_cluster), with
   one convention: rows too short to carry the key column — in practice
   only the 0-ary relation's empty tuple — go to shard 0. *)
let split_relation ring ~key r =
  let n = Ring.shards ring in
  if key < 0 then invalid_arg "Partition.split_relation: negative key";
  let buckets = Array.make n [] in
  Relation.iter
    (fun tup ->
      let shard =
        if key >= Tuple.arity tup then 0
        else Ring.owner_of_value ring tup.(key)
      in
      buckets.(shard) <- tup :: buckets.(shard))
    r;
  Array.map
    (fun rows ->
      Relation.create ~name:(Relation.name r)
        ~schema:(Relation.schema_list r) rows)
    buckets

(* Partition a whole database on each relation's first column — the
   convention the planner's {!Paradb_planner.Planner.shard_choice}
   assumes.  Every slice keeps every relation (possibly empty), so a
   slice is a self-contained database over the full schema. *)
let split ring db =
  let n = Ring.shards ring in
  let slices = Array.make n Database.empty in
  List.iter
    (fun r ->
      let parts = split_relation ring ~key:0 r in
      Array.iteri
        (fun s part -> slices.(s) <- Database.add part slices.(s))
        parts)
    (Database.relations db);
  slices
