(** Hash partitioning of relations across a {!Ring}. *)

(** [split_relation ring ~key r] buckets each row by the hash of its
    value at column [key].  The slices are pairwise disjoint and their
    union is [r]; rows whose arity is [<= key] (the 0-ary empty tuple)
    go to shard 0.  Raises [Invalid_argument] on a negative [key]. *)
val split_relation :
  Ring.t -> key:int -> Paradb_relational.Relation.t ->
  Paradb_relational.Relation.t array

(** [split ring db] partitions every relation on its first column (the
    cluster's placement convention).  Every slice contains every
    relation of [db], empty where no rows hash to that shard. *)
val split :
  Ring.t -> Paradb_relational.Database.t ->
  Paradb_relational.Database.t array
