(* Hinted handoff journal.

   When a replica write fails (the replica's shard is down or errored),
   the coordinator must not just drop it — that is how replicas diverge
   silently.  The frame that failed is appended to a per-target-shard
   hint file and replayed, in order, once the shard is reachable again.

   One file per target shard, [shard<k>.hints], holding raw wire frames
   back to back: a [FACT db@rN fact.] line is one frame; a
   [BULK db@rN n] header is followed by its [n] fact lines.  The format
   is exactly what goes on the wire, so replay is just resending.

   Frame order within a file is delivery order.  The coordinator
   replays a shard's hints BEFORE sending it any new write, so a
   replica that missed [v1] and then comes back receives [v1] (replay)
   then [v2] (the new write) — never the reverse, which for a
   replace-style BULK would resurrect stale data.

   The journal itself is written under the storage durability mode
   (appends are fsynced under [--durability full]), and a torn tail —
   the coordinator killed mid-append — is detected at read time: a
   trailing frame whose BULK header promises more lines than remain is
   dropped and counted, never half-replayed. *)

module Metrics = Paradb_telemetry.Metrics
module Durability = Paradb_storage.Durability

let m_journaled = Metrics.counter "cluster.hints.journaled"
let m_replayed = Metrics.counter "cluster.hints.replayed"
let m_dropped = Metrics.counter "cluster.hints.dropped"

type t = { dir : string; mu : Mutex.t }

type frame = { header : string; payload : string list }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create dir =
  mkdir_p dir;
  { dir; mu = Mutex.create () }

let file t ~shard = Filename.concat t.dir (Printf.sprintf "shard%d.hints" shard)

(* [pending] is the hot-path check (one stat per write round): anything
   in the file means there are frames to replay. *)
let pending t ~shard =
  match (Unix.stat (file t ~shard)).Unix.st_size with
  | n -> n > 0
  | exception Unix.Unix_error _ -> false

let journal t ~shard frame =
  Mutex.protect t.mu (fun () ->
      let path = file t ~shard in
      Out_channel.with_open_gen
        [ Open_append; Open_creat; Open_binary ]
        0o644 path
        (fun oc ->
          Out_channel.output_string oc (frame.header ^ "\n");
          List.iter
            (fun l -> Out_channel.output_string oc (l ^ "\n"))
            frame.payload);
      Durability.file_sync path;
      Metrics.incr m_journaled)

(* Parse the journal back into frames.  A frame whose payload was cut
   short (journal writer killed mid-append) is dropped and counted —
   half a BULK must never be replayed. *)
let parse_frames lines =
  let rec go acc = function
    | [] -> (List.rev acc, 0)
    | header :: rest -> (
        match String.split_on_char ' ' (String.trim header) with
        | [ "BULK"; _db; count ] -> (
            match int_of_string_opt count with
            | Some n when n >= 0 ->
                if List.length rest < n then (List.rev acc, 1)
                else
                  let payload = List.filteri (fun i _ -> i < n) rest in
                  let rest = List.filteri (fun i _ -> i >= n) rest in
                  go ({ header; payload } :: acc) rest
            | _ -> (List.rev acc, 1))
        | _ when String.trim header = "" -> go acc rest
        | _ -> go ({ header; payload = [] } :: acc) rest)
  in
  go [] lines

let read_frames t ~shard =
  Mutex.protect t.mu (fun () ->
      match
        In_channel.with_open_bin (file t ~shard) In_channel.input_all
      with
      | exception Sys_error _ -> []
      | text ->
          let frames, torn = parse_frames (String.split_on_char '\n' text) in
          if torn > 0 then Metrics.incr ~by:torn m_dropped;
          frames)

(* Rewrite the journal to exactly [frames] — called after a replay pass
   with whatever could not be delivered (empty list truncates).  Plain
   truncate-and-rewrite under the lock; the file is small (it only ever
   holds writes that failed). *)
let rewrite t ~shard frames =
  Mutex.protect t.mu (fun () ->
      let path = file t ~shard in
      if frames = [] then (try Sys.remove path with Sys_error _ -> ())
      else begin
        Out_channel.with_open_bin path (fun oc ->
            List.iter
              (fun f ->
                Out_channel.output_string oc (f.header ^ "\n");
                List.iter
                  (fun l -> Out_channel.output_string oc (l ^ "\n"))
                  f.payload)
              frames);
        Durability.file_sync path
      end)

let count_replayed n = Metrics.incr ~by:n m_replayed
let count_dropped n = Metrics.incr ~by:n m_dropped

let pending_frames t ~shard = List.length (read_frames t ~shard)
