(** Hinted-handoff journal: per-target-shard files of wire frames
    (failed replica writes) replayed in order when the shard is back.

    See DESIGN.md §16 for the file format and the replay-before-write
    ordering rule.  Counters: [cluster.hints.journaled] /
    [cluster.hints.replayed] / [cluster.hints.dropped]. *)

type t

(** One journaled wire frame: a request line, plus its payload lines
    for multi-line requests (BULK). *)
type frame = { header : string; payload : string list }

(** [create dir] — the journal directory, created if missing. *)
val create : string -> t

(** Does shard [shard] have undelivered frames?  One [stat]. *)
val pending : t -> shard:int -> bool

(** Number of parseable frames queued for [shard] (reads the file). *)
val pending_frames : t -> shard:int -> int

(** Append one frame to [shard]'s journal (fsynced per the storage
    durability mode). *)
val journal : t -> shard:int -> frame -> unit

(** All parseable frames queued for [shard], in journal order.  A torn
    trailing frame (writer killed mid-append) is dropped and counted on
    [cluster.hints.dropped]. *)
val read_frames : t -> shard:int -> frame list

(** Replace [shard]'s journal with exactly [frames] (empty removes the
    file) — the post-replay compaction. *)
val rewrite : t -> shard:int -> frame list -> unit

val count_replayed : int -> unit
val count_dropped : int -> unit
