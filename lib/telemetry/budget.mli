(** Cooperative request cancellation: a deadline (in {!Clock.now_ns}
    nanoseconds) polled at evaluator loop checkpoints.

    Theorem 1 says worst-case instances outside the tractable fragments
    {e will} hang an evaluator, so every long-running loop — naive
    backtracking probes, FO quantifier extensions, Datalog fixpoint
    rounds, Yannakakis semijoin passes, the Theorem-2 trial driver —
    calls {!poll} at a natural stride.  Expiry (or an explicit
    {!cancel} from another domain) raises {!Exhausted}; the caller maps
    it to a structured error and the worker survives.

    A budget is safe to share across domains: the deadline is immutable
    and cancellation is a single atomic flag. *)

(** Raised by {!check}/{!poll} once the deadline has passed (or the
    budget was cancelled).  [elapsed_ns] is measured at the raising
    checkpoint, so it exceeds [budget_ns] by at most one checkpoint
    stride. *)
exception Exhausted of { budget_ns : int; elapsed_ns : int }

type t

(** [start ~deadline_ns] — a budget expiring [deadline_ns] from now.
    Raises [Invalid_argument] if [deadline_ns <= 0]. *)
val start : deadline_ns:int -> t

val budget_ns : t -> int
val elapsed_ns : t -> int

(** Negative once expired. *)
val remaining_ns : t -> int

(** Flag the budget from any domain; the next {!check} raises. *)
val cancel : t -> unit

val is_cancelled : t -> bool

(** Non-raising test — for parallel workers that must exit their drain
    loop cleanly and let the coordinator raise after the join. *)
val expired : t -> bool

(** Raise {!Exhausted} if expired or cancelled. *)
val check : t -> unit

(** [poll (Some t)] = [check t]; [poll None] is free — the universal
    checkpoint form for [?budget] parameters. *)
val poll : t option -> unit
