(** Renderers for a {!Metrics.snapshot}.

    Two stable formats:
    - {!to_table}: one ["<prefix><name> <value>"] line per scalar, the
      format the server's [STATS] payload speaks.  Histograms expand to
      [.count], [.sum], [.min], [.max], [.p50], [.p95], [.p99] lines
      (quantiles rounded to integers — they are ns or row counts).
    - {!to_json}: a single-line JSON object
      [{"counters":{...},"gauges":{...},"histograms":{...}}] with keys
      sorted by metric name, the format [METRICS] and
      [paradb stats --json] return and [bench --json] embeds.  Empty
      histograms render quantiles as [0] (never [nan], which is not
      JSON). *)

val to_table : ?prefix:string -> Metrics.snapshot -> string list
val to_json : Metrics.snapshot -> string
