(** Domain-safe counters, gauges and log-scale-bucket histograms.

    Every metric is registered in a process-global registry under a
    dotted name ([engine.trials], [server.verb.eval.ns], ...) and fans
    its writes out to {b per-domain sinks} held in domain-local storage:
    the hot path is a DLS lookup plus a plain mutable-field update — no
    mutex, no atomic, no contention between domains.  {!snapshot} takes
    the registry lock once and merges every domain's sink; totals are
    exact for domains that have been joined (the join synchronizes) and
    at-most-slightly-stale for domains still running, which is the usual
    monitoring contract.

    Metric constructors are idempotent: [counter "x"] returns the same
    counter every time, so modules can look their metrics up at
    top-level without coordinating ownership. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Find or create the counter registered under this name. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1) to the calling domain's sink. *)

val counter_value : counter -> int
(** Sum over all domain sinks. *)

val gauge : string -> gauge
(** Find or create a high-watermark gauge: {!set_max} keeps the largest
    value ever set; merging takes the max across domains. *)

val set_max : gauge -> int -> unit
val gauge_value : gauge -> int

val histogram : string -> histogram
(** Find or create a histogram over non-negative integers (latencies in
    ns, sizes in rows or bytes).  Values land in log-scale buckets: four
    sub-buckets per power of two, so any quantile read off the buckets
    is within 1/4 of a binary order of magnitude of the true value. *)

val observe : histogram -> int -> unit

type histogram_snapshot = {
  count : int;
  sum : int;
  min : int;  (** 0 when [count = 0] *)
  max : int;
  buckets : int array;  (** merged counts, length {!n_buckets} *)
}

val histogram_read : histogram -> histogram_snapshot

(** {2 Bucket math}

    Exposed for tests and for quantile extraction from a merged bucket
    array.  Bucket [0] holds values [<= 0]; buckets [1..3] hold exactly
    1, 2, 3; from 4 upward each power of two splits into 4 sub-buckets.
    The last bucket is the overflow bucket. *)

val n_buckets : int

val bucket_of : int -> int
(** Index of the bucket a value lands in, in [0, n_buckets - 1]. *)

val bucket_lower : int -> int
(** Inclusive lower bound of bucket [i]. *)

val bucket_upper : int -> int
(** Exclusive upper bound of bucket [i]; [max_int] for the overflow
    bucket. *)

val quantile : histogram_snapshot -> float -> float
(** [quantile s q] for [q] in [[0, 1]]: linear interpolation inside the
    bucket holding rank [ceil (q * count)], clamped to the observed
    [min]/[max].  [nan] when the histogram is empty. *)

(** {2 Snapshots} *)

type snapshot = {
  counters : (string * int) list;          (** sorted by name *)
  gauges : (string * int) list;            (** sorted by name *)
  histograms : (string * histogram_snapshot) list;  (** sorted by name *)
}

val snapshot : unit -> snapshot
(** Merge every registered metric across all domain sinks. *)

val reset : unit -> unit
(** Zero every sink of every registered metric (tests, benchmarks).
    Existing counter/gauge/histogram handles stay valid. *)
