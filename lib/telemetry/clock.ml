external now_ns : unit -> int = "paradb_monotonic_ns" [@@noalloc]
