(** The single home for [PARADB_*] environment variables.

    Every reader goes through these validated accessors; a malformed
    value raises [Invalid_argument] with a message naming the variable,
    the expected shape and the offending text — instead of the ad-hoc
    silent fallbacks that [Sys.getenv_opt] call sites used to hide.

    Variables:
    - [PARADB_DOMAINS] — positive integer; the engine's per-query trial
      parallelism ([1] disables the fan-out).  Default:
      [Domain.recommended_domain_count ()].
    - [PARADB_TRACE] — path of the JSONL trace file; setting it turns
      tracing on (see {!Trace.init_from_env}).
    - [PARADB_FAULTS] — comma-separated [key:value] fault-injection
      spec, e.g. ["short_read:0.1,disconnect:0.05,seed:42"]; semantics
      (the admissible keys and probability ranges) are owned by
      [Paradb_server.Fault].
    - [PARADB_MUTATE] — name of a single-point bug to inject (the
      differential oracle's mutation-smoke hook); the admissible names
      are owned by {!Mutate}. *)

val positive_int : name:string -> default:(unit -> int) -> int
(** Read variable [name] as a positive integer; [default] when unset.
    Raises [Invalid_argument] on a malformed or non-positive value. *)

val domains : unit -> int
(** [PARADB_DOMAINS], defaulting to [Domain.recommended_domain_count]. *)

val faults : unit -> (string * float) list option
(** [PARADB_FAULTS] as validated [key:value] pairs ([None] when unset).
    Raises [Invalid_argument] on a blank value, a pair without a colon,
    or a negative/non-numeric value.  Key semantics are checked by the
    consumer ([Paradb_server.Fault]). *)

val trace_file : unit -> string option
(** [PARADB_TRACE]; raises [Invalid_argument] when set but blank. *)

val mutation : unit -> string option
(** [PARADB_MUTATE]; [None] when unset or blank.  Re-read on every call
    so tests can toggle mutants in-process. *)
