let positive_int ~name ~default =
  match Sys.getenv_opt name with
  | None -> default ()
  | Some raw -> (
      match int_of_string_opt (String.trim raw) with
      | Some n when n >= 1 -> n
      | _ ->
          invalid_arg
            (Printf.sprintf "%s: expected a positive integer, got %S" name raw))

let domains () =
  positive_int ~name:"PARADB_DOMAINS" ~default:Domain.recommended_domain_count

let faults () =
  match Sys.getenv_opt "PARADB_FAULTS" with
  | None -> None
  | Some raw ->
      let raw = String.trim raw in
      if raw = "" then
        invalid_arg
          "PARADB_FAULTS: expected a comma-separated key:value fault spec, \
           got a blank value";
      let parse_pair kv =
        match String.split_on_char ':' (String.trim kv) with
        | [ key; value ] -> (
            let key = String.trim key and value = String.trim value in
            if key = "" then
              invalid_arg "PARADB_FAULTS: empty fault name in spec";
            match float_of_string_opt value with
            | Some f when f >= 0.0 -> (key, f)
            | _ ->
                invalid_arg
                  (Printf.sprintf
                     "PARADB_FAULTS: %s: expected a non-negative number, got \
                      %S"
                     key value))
        | _ ->
            invalid_arg
              (Printf.sprintf
                 "PARADB_FAULTS: expected key:value, got %S (example: \
                  \"short_read:0.1,disconnect:0.05,seed:42\")"
                 kv)
      in
      Some (List.map parse_pair (String.split_on_char ',' raw))

let mutation () =
  (* Re-read on every call (no caching): the mutation-smoke tests toggle
     the variable with [Unix.putenv] inside one process, and the hook
     sites run once per pass/per trial, not per tuple. *)
  match Sys.getenv_opt "PARADB_MUTATE" with
  | None -> None
  | Some raw ->
      let name = String.trim raw in
      if name = "" then None else Some name

let trace_file () =
  match Sys.getenv_opt "PARADB_TRACE" with
  | None -> None
  | Some raw ->
      let file = String.trim raw in
      if file = "" then
        invalid_arg "PARADB_TRACE: expected a trace file path, got a blank value"
      else Some file
