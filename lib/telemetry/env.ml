let positive_int ~name ~default =
  match Sys.getenv_opt name with
  | None -> default ()
  | Some raw -> (
      match int_of_string_opt (String.trim raw) with
      | Some n when n >= 1 -> n
      | _ ->
          invalid_arg
            (Printf.sprintf "%s: expected a positive integer, got %S" name raw))

let domains () =
  positive_int ~name:"PARADB_DOMAINS" ~default:Domain.recommended_domain_count

let trace_file () =
  match Sys.getenv_opt "PARADB_TRACE" with
  | None -> None
  | Some raw ->
      let file = String.trim raw in
      if file = "" then
        invalid_arg "PARADB_TRACE: expected a trace file path, got a blank value"
      else Some file
