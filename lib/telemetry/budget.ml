(* Cooperative cancellation: a per-request deadline checked at loop
   checkpoints.  The struct is immutable except for the [cancelled]
   atomic, so a budget can be shared freely across domains — parallel
   trial workers read it without synchronization beyond the atomic. *)

exception Exhausted of { budget_ns : int; elapsed_ns : int }

type t = {
  started : int; (* Clock.now_ns at [start] *)
  deadline : int; (* absolute: started + budget_ns *)
  budget_ns : int;
  cancelled : bool Atomic.t;
}

let start ~deadline_ns =
  if deadline_ns <= 0 then
    invalid_arg "Budget.start: deadline_ns must be positive";
  let now = Clock.now_ns () in
  {
    started = now;
    deadline = now + deadline_ns;
    budget_ns = deadline_ns;
    cancelled = Atomic.make false;
  }

let budget_ns t = t.budget_ns
let elapsed_ns t = Clock.now_ns () - t.started
let remaining_ns t = t.deadline - Clock.now_ns ()
let cancel t = Atomic.set t.cancelled true
let is_cancelled t = Atomic.get t.cancelled

let expired t = Atomic.get t.cancelled || Clock.now_ns () > t.deadline

let check t =
  let now = Clock.now_ns () in
  if Atomic.get t.cancelled || now > t.deadline then
    raise (Exhausted { budget_ns = t.budget_ns; elapsed_ns = now - t.started })

let poll = function None -> () | Some t -> check t
