(** Monotonic-clock spans emitted as JSONL.

    Tracing is off by default and {b pay-for-what-you-use}: a disabled
    {!start} returns an immediate constant and a disabled {!with_span}
    tail-calls its thunk — no allocation, no clock read, no lock.  When
    enabled (via [--trace FILE] or [PARADB_TRACE]), every finished span
    appends one JSON object per line to the trace file:

    {v
    {"name":"engine.trial","span":7,"parent":3,"domain":0,
     "start_ns":123,"dur_ns":456,"attrs":{"success":"true"}}
    v}

    [span] ids are unique per process; [parent] is the id of the
    enclosing span {e on the same domain} (0 when the span is a root —
    spans on spawned worker domains start fresh stacks).  [start_ns] is
    a {!Clock.now_ns} reading, meaningful only relative to other spans
    of the same process.  Lines are flushed as written, so a trace is
    readable while the process lives and survives a crash. *)

type span

val enabled : unit -> bool

val enable : file:string -> unit
(** Open (truncate) [file] and start emitting spans.  Raises
    [Sys_error] if the file cannot be opened. *)

val disable : unit -> unit
(** Stop emitting and close the file.  Idempotent. *)

val init_from_env : unit -> unit
(** [enable ~file] when [PARADB_TRACE] is set (see {!Env.trace_file});
    no-op otherwise. *)

val start : ?attrs:(string * string) list -> string -> span
(** Begin a span named [name] whose parent is the innermost unfinished
    span started on this domain. *)

val finish : ?attrs:(string * string) list -> span -> unit
(** End the span and emit its line; [attrs] given here are appended to
    the ones given at {!start}.  Finishing a disabled span is a no-op. *)

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span; the span is finished even
    if [f] raises. *)
