let known =
  [
    ("semijoin_off_by_one",
     "skip the first semijoin of the Yannakakis bottom-up pass");
    ("drop_neq",
     "drop the first fused <> check (the F selection of Algorithm 1)");
    ("color_count",
     "under-count the hash range k (separation parameter) by one");
    ("probe_key_swap",
     "compiled probe binds its first output column from the probe key column");
    ("sum_instead_of_max",
     "tropical ⊕ sums alternative costs instead of keeping the best one");
    ("count_dedup_drop",
     "annotated projection keeps the first annotation, collapsing multiplicities");
  ]

let known_names = List.map fst known

let enabled name = Env.mutation () = Some name

let active = Env.mutation

let validate () =
  match Env.mutation () with
  | None -> ()
  | Some name when List.mem_assoc name known -> ()
  | Some name ->
      invalid_arg
        (Printf.sprintf "PARADB_MUTATE: unknown mutant %S (known: %s)" name
           (String.concat ", " known_names))
