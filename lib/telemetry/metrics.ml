(* One process-global registry; every metric fans writes out to
   per-domain sinks kept in domain-local storage.  The registry mutex
   guards only the name table and each metric's sink list — the write
   path (incr / set_max / observe) touches nothing but the calling
   domain's own sink record.  Sink-list registration happens once per
   (metric, domain), inside the DLS initializer, which never runs while
   the lock is held. *)

let lock = Mutex.create ()

(* ------------------------------------------------------------------ *)
(* Bucket math: bucket 0 is [<= 0]; 1, 2, 3 are exact; from 4 upward
   each power of two splits into four sub-buckets keyed by the two bits
   after the leading one.  Index of the first bucket of octave o >= 2 is
   4 (o - 1); the scheme is continuous across octave boundaries. *)

let n_buckets = 200

let bucket_of v =
  if v <= 0 then 0
  else if v < 4 then v
  else begin
    let o = ref 0 and x = ref v in
    while !x > 1 do
      x := !x lsr 1;
      incr o
    done;
    let idx = (4 * (!o - 1)) + ((v lsr (!o - 2)) land 3) in
    if idx >= n_buckets - 1 then n_buckets - 1 else idx
  end

let bucket_lower i =
  if i <= 0 then 0
  else if i < 4 then i
  else
    let o = (i / 4) + 1 and sub = i mod 4 in
    (4 + sub) lsl (o - 2)

let bucket_upper i = if i >= n_buckets - 1 then max_int else bucket_lower (i + 1)

(* ------------------------------------------------------------------ *)
(* Counters *)

type counter_sink = { mutable cn : int }

type counter = {
  c_sinks : counter_sink list ref;
  c_key : counter_sink Domain.DLS.key;
}

let make_counter () =
  let sinks = ref [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let s = { cn = 0 } in
        Mutex.protect lock (fun () -> sinks := s :: !sinks);
        s)
  in
  { c_sinks = sinks; c_key = key }

let incr ?(by = 1) c =
  let s = Domain.DLS.get c.c_key in
  s.cn <- s.cn + by

let counter_total c = List.fold_left (fun acc s -> acc + s.cn) 0 !(c.c_sinks)

let counter_value c = Mutex.protect lock (fun () -> counter_total c)

(* ------------------------------------------------------------------ *)
(* Gauges (high-watermark) *)

type gauge_sink = { mutable gv : int }

type gauge = {
  g_sinks : gauge_sink list ref;
  g_key : gauge_sink Domain.DLS.key;
}

let make_gauge () =
  let sinks = ref [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let s = { gv = 0 } in
        Mutex.protect lock (fun () -> sinks := s :: !sinks);
        s)
  in
  { g_sinks = sinks; g_key = key }

let set_max g v =
  let s = Domain.DLS.get g.g_key in
  if v > s.gv then s.gv <- v

let gauge_total g = List.fold_left (fun acc s -> max acc s.gv) 0 !(g.g_sinks)
let gauge_value g = Mutex.protect lock (fun () -> gauge_total g)

(* ------------------------------------------------------------------ *)
(* Histograms *)

type histogram_sink = {
  mutable hn : int;
  mutable hsum : int;
  mutable hmin : int;
  mutable hmax : int;
  counts : int array;
}

type histogram = {
  h_sinks : histogram_sink list ref;
  h_key : histogram_sink Domain.DLS.key;
}

let make_histogram () =
  let sinks = ref [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let s =
          { hn = 0; hsum = 0; hmin = max_int; hmax = 0;
            counts = Array.make n_buckets 0 }
        in
        Mutex.protect lock (fun () -> sinks := s :: !sinks);
        s)
  in
  { h_sinks = sinks; h_key = key }

let observe h v =
  let s = Domain.DLS.get h.h_key in
  s.hn <- s.hn + 1;
  s.hsum <- s.hsum + v;
  if v < s.hmin then s.hmin <- v;
  if v > s.hmax then s.hmax <- v;
  let b = bucket_of v in
  s.counts.(b) <- s.counts.(b) + 1

type histogram_snapshot = {
  count : int;
  sum : int;
  min : int;
  max : int;
  buckets : int array;
}

let histogram_total h =
  let buckets = Array.make n_buckets 0 in
  let count = ref 0 and sum = ref 0 and mn = ref max_int and mx = ref 0 in
  List.iter
    (fun s ->
      count := !count + s.hn;
      sum := !sum + s.hsum;
      if s.hn > 0 then begin
        if s.hmin < !mn then mn := s.hmin;
        if s.hmax > !mx then mx := s.hmax
      end;
      Array.iteri (fun i c -> buckets.(i) <- buckets.(i) + c) s.counts)
    !(h.h_sinks);
  {
    count = !count;
    sum = !sum;
    min = (if !count = 0 then 0 else !mn);
    max = !mx;
    buckets;
  }

let histogram_read h = Mutex.protect lock (fun () -> histogram_total h)

let quantile s q =
  if s.count = 0 then nan
  else begin
    let target =
      let r = int_of_float (ceil (q *. float_of_int s.count)) in
      if r < 1 then 1 else if r > s.count then s.count else r
    in
    let rec walk i before =
      if i >= n_buckets then float_of_int s.max
      else
        let c = s.buckets.(i) in
        if before + c >= target then begin
          (* interpolate within the bucket, clamped to observed extremes *)
          let lo = Stdlib.max (bucket_lower i) s.min in
          let hi = Stdlib.min (bucket_upper i) (s.max + 1) in
          let frac =
            if c = 0 then 0.0
            else float_of_int (target - before) /. float_of_int c
          in
          let v = float_of_int lo +. (float_of_int (hi - lo) *. frac) in
          Float.min (Float.max v (float_of_int s.min)) (float_of_int s.max)
        end
        else walk (i + 1) (before + c)
    in
    walk 0 0
  end

(* ------------------------------------------------------------------ *)
(* Registry *)

type metric =
  | M_counter of counter
  | M_gauge of gauge
  | M_histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let mismatch name =
  invalid_arg
    (Printf.sprintf "Metrics: %s is already registered with a different type"
       name)

let counter name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (M_counter c) -> c
      | Some _ -> mismatch name
      | None ->
          let c = make_counter () in
          Hashtbl.replace registry name (M_counter c);
          c)

let gauge name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (M_gauge g) -> g
      | Some _ -> mismatch name
      | None ->
          let g = make_gauge () in
          Hashtbl.replace registry name (M_gauge g);
          g)

let histogram name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (M_histogram h) -> h
      | Some _ -> mismatch name
      | None ->
          let h = make_histogram () in
          Hashtbl.replace registry name (M_histogram h);
          h)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * histogram_snapshot) list;
}

let snapshot () =
  Mutex.protect lock (fun () ->
      let cs = ref [] and gs = ref [] and hs = ref [] in
      Hashtbl.iter
        (fun name m ->
          match m with
          | M_counter c -> cs := (name, counter_total c) :: !cs
          | M_gauge g -> gs := (name, gauge_total g) :: !gs
          | M_histogram h -> hs := (name, histogram_total h) :: !hs)
        registry;
      let by_name (a, _) (b, _) = String.compare a b in
      {
        counters = List.sort by_name !cs;
        gauges = List.sort by_name !gs;
        histograms = List.sort by_name !hs;
      })

let reset () =
  Mutex.protect lock (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | M_counter c -> List.iter (fun s -> s.cn <- 0) !(c.c_sinks)
          | M_gauge g -> List.iter (fun s -> s.gv <- 0) !(g.g_sinks)
          | M_histogram h ->
              List.iter
                (fun s ->
                  s.hn <- 0;
                  s.hsum <- 0;
                  s.hmin <- max_int;
                  s.hmax <- 0;
                  Array.fill s.counts 0 n_buckets 0)
                !(h.h_sinks))
        registry)
