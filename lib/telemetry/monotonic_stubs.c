/* Monotonic clock for span timing.  CLOCK_MONOTONIC is immune to
   wall-clock steps (NTP, manual adjustment), so span durations are
   never negative.  Nanoseconds since an arbitrary origin fit a tagged
   63-bit OCaml int for ~146 years of uptime, so no boxing. */

#include <caml/mlvalues.h>
#include <time.h>

value paradb_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((long)ts.tv_sec * 1000000000L + ts.tv_nsec);
}
