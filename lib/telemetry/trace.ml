type active = {
  name : string;
  id : int;
  parent : int;
  start_ns : int;
  start_attrs : (string * string) list;
}

type span = No_span | Span of active

(* [on] is the fast-path switch: one atomic load decides everything.
   The channel and its mutex only matter once [on] is true. *)
let on = Atomic.make false
let out : out_channel option ref = ref None
let out_lock = Mutex.create ()
let next_id = Atomic.make 1

(* Innermost-unfinished-span id, per domain. *)
let stack_key : int list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let enabled () = Atomic.get on

let disable () =
  Atomic.set on false;
  Mutex.protect out_lock (fun () ->
      match !out with
      | None -> ()
      | Some oc ->
          out := None;
          close_out_noerr oc)

let enable ~file =
  let oc = open_out file in
  Mutex.protect out_lock (fun () ->
      (match !out with Some old -> close_out_noerr old | None -> ());
      out := Some oc);
  Atomic.set on true

let init_from_env () =
  match Env.trace_file () with None -> () | Some file -> enable ~file

let () = at_exit disable

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let start ?(attrs = []) name =
  if not (Atomic.get on) then No_span
  else begin
    let id = Atomic.fetch_and_add next_id 1 in
    let stack = Domain.DLS.get stack_key in
    let parent = match !stack with [] -> 0 | p :: _ -> p in
    stack := id :: !stack;
    Span { name; id; parent; start_ns = Clock.now_ns (); start_attrs = attrs }
  end

let emit a end_ns finish_attrs =
  let buf = Buffer.create 160 in
  Buffer.add_string buf "{\"name\":\"";
  Buffer.add_string buf (json_escape a.name);
  Buffer.add_string buf (Printf.sprintf "\",\"span\":%d," a.id);
  if a.parent = 0 then Buffer.add_string buf "\"parent\":null,"
  else Buffer.add_string buf (Printf.sprintf "\"parent\":%d," a.parent);
  Buffer.add_string buf
    (Printf.sprintf "\"domain\":%d,\"start_ns\":%d,\"dur_ns\":%d"
       (Domain.self () :> int)
       a.start_ns
       (end_ns - a.start_ns));
  (match a.start_attrs @ finish_attrs with
  | [] -> ()
  | attrs ->
      Buffer.add_string buf ",\"attrs\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
        attrs;
      Buffer.add_char buf '}');
  Buffer.add_char buf '}';
  Mutex.protect out_lock (fun () ->
      match !out with
      | None -> ()
      | Some oc ->
          output_string oc (Buffer.contents buf);
          output_char oc '\n';
          flush oc)

let finish ?(attrs = []) span =
  match span with
  | No_span -> ()
  | Span a ->
      let end_ns = Clock.now_ns () in
      let stack = Domain.DLS.get stack_key in
      (* Well-nested finishes pop the head; a mismatched finish (span
         leaked across a raise, finished out of order) drops just its
         own id, keeping ancestors intact. *)
      (match !stack with
      | top :: rest when top = a.id -> stack := rest
      | l -> stack := List.filter (fun id -> id <> a.id) l);
      if Atomic.get on then emit a end_ns attrs

let with_span ?attrs name f =
  if not (Atomic.get on) then f ()
  else begin
    let sp = start ?attrs name in
    match f () with
    | v ->
        finish sp;
        v
    | exception e ->
        finish ~attrs:[ ("raised", Printexc.to_string e) ] sp;
        raise e
  end
