let quantiles = [ ("p50", 0.50); ("p95", 0.95); ("p99", 0.99) ]

let q_int s q =
  let v = Metrics.quantile s q in
  if Float.is_nan v then 0 else int_of_float (Float.round v)

let to_table ?(prefix = "") (s : Metrics.snapshot) =
  let line name v = Printf.sprintf "%s%s %d" prefix name v in
  List.map (fun (name, v) -> line name v) s.Metrics.counters
  @ List.map (fun (name, v) -> line name v) s.Metrics.gauges
  @ List.concat_map
      (fun (name, h) ->
        [
          line (name ^ ".count") h.Metrics.count;
          line (name ^ ".sum") h.Metrics.sum;
          line (name ^ ".min") h.Metrics.min;
          line (name ^ ".max") h.Metrics.max;
        ]
        @ List.map (fun (label, q) -> line (name ^ "." ^ label) (q_int h q))
            quantiles)
      s.Metrics.histograms

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json (s : Metrics.snapshot) =
  let buf = Buffer.create 512 in
  let obj label render entries =
    Buffer.add_string buf (Printf.sprintf "\"%s\":{" label);
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "\"%s\":" (json_escape name));
        render v)
      entries;
    Buffer.add_char buf '}'
  in
  Buffer.add_char buf '{';
  obj "counters" (fun v -> Buffer.add_string buf (string_of_int v)) s.counters;
  Buffer.add_char buf ',';
  obj "gauges" (fun v -> Buffer.add_string buf (string_of_int v)) s.gauges;
  Buffer.add_char buf ',';
  obj "histograms"
    (fun (h : Metrics.histogram_snapshot) ->
      Buffer.add_string buf
        (Printf.sprintf "{\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d"
           h.count h.sum h.min h.max);
      List.iter
        (fun (label, q) ->
          Buffer.add_string buf (Printf.sprintf ",\"%s\":%d" label (q_int h q)))
        quantiles;
      Buffer.add_char buf '}')
    s.histograms;
  Buffer.add_char buf '}';
  Buffer.contents buf
