(** Seeded single-point bug injection for the differential oracle's
    mutation-smoke suite (see DESIGN.md §12).

    Setting [PARADB_MUTATE=<name>] arms exactly one known mutant; the
    engines poll {!enabled} at their hook sites and flip a single
    decision.  The point is not to model realistic bugs but to prove the
    oracle in [lib/oracle] has teeth: CI asserts every mutant is caught
    and shrunk within a bounded number of fuzz cases.  With the variable
    unset every hook is inert and costs one [getenv] per engine pass. *)

val known : (string * string) list
(** Mutant name → one-line description of the injected bug. *)

val known_names : string list

val enabled : string -> bool
(** [enabled name] — is mutant [name] armed via [PARADB_MUTATE]?  The
    environment is re-read on every call so tests can toggle mutants
    in-process with [Unix.putenv]. *)

val active : unit -> string option
(** The armed mutant, if any (not validated against {!known}). *)

val validate : unit -> unit
(** Raises [Invalid_argument] if [PARADB_MUTATE] names an unknown
    mutant — called once by [paradb fuzz] so typos fail loudly instead
    of fuzzing an unmutated binary. *)
