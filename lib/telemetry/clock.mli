(** Monotonic time source for span and latency measurement.

    Wall-clock time ([Unix.gettimeofday]) can step backwards under NTP;
    every duration in this subsystem is a difference of two
    [CLOCK_MONOTONIC] readings instead.  The origin is arbitrary (boot
    time on Linux) — only differences are meaningful. *)

val now_ns : unit -> int
(** Nanoseconds since an arbitrary fixed origin.  Allocation-free. *)
