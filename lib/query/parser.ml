module Value = Paradb_relational.Value
module Tuple = Paradb_relational.Tuple
module Relation = Paradb_relational.Relation
module Database = Paradb_relational.Database

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Lexer *)

type token =
  | T_lident of string   (* relation names, lowercase constants *)
  | T_uident of string   (* variables *)
  | T_int of int
  | T_string of string   (* quoted constant *)
  | T_lparen
  | T_rparen
  | T_comma
  | T_dot
  | T_turnstile          (* :- *)
  | T_neq                (* != *)
  | T_lt
  | T_le
  | T_eq
  | T_and                (* & *)
  | T_or                 (* | *)
  | T_not                (* ! *)
  | T_arrow              (* -> *)
  | T_exists
  | T_forall
  | T_true
  | T_false
  | T_eof

let token_to_string = function
  | T_lident s -> s
  | T_uident s -> s
  | T_int i -> string_of_int i
  | T_string s -> "\"" ^ s ^ "\""
  | T_lparen -> "("
  | T_rparen -> ")"
  | T_comma -> ","
  | T_dot -> "."
  | T_turnstile -> ":-"
  | T_neq -> "!="
  | T_lt -> "<"
  | T_le -> "<="
  | T_eq -> "="
  | T_and -> "&"
  | T_or -> "|"
  | T_not -> "!"
  | T_arrow -> "->"
  | T_exists -> "exists"
  | T_forall -> "forall"
  | T_true -> "true"
  | T_false -> "false"
  | T_eof -> "<eof>"

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let lex (s : string) : (token * int) array =
  let n = String.length s in
  let tokens = ref [] in
  let start = ref 0 in
  let emit t = tokens := (t, !start) :: !tokens in
  let i = ref 0 in
  while !i < n do
    start := !i;
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '%' then begin
      (* comment to end of line *)
      while !i < n && s.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '(' then (emit T_lparen; incr i)
    else if c = ')' then (emit T_rparen; incr i)
    else if c = ',' then (emit T_comma; incr i)
    else if c = '.' then (emit T_dot; incr i)
    else if c = '&' then (emit T_and; incr i)
    else if c = '|' then (emit T_or; incr i)
    else if c = '=' then (emit T_eq; incr i)
    else if c = ':' then
      if !i + 1 < n && s.[!i + 1] = '-' then (emit T_turnstile; i := !i + 2)
      else fail "lexer: expected ':-' at offset %d" !i
    else if c = '!' then
      if !i + 1 < n && s.[!i + 1] = '=' then (emit T_neq; i := !i + 2)
      else (emit T_not; incr i)
    else if c = '<' then
      if !i + 1 < n && s.[!i + 1] = '=' then (emit T_le; i := !i + 2)
      else (emit T_lt; incr i)
    else if c = '-' then
      if !i + 1 < n && s.[!i + 1] = '>' then (emit T_arrow; i := !i + 2)
      else if !i + 1 < n && s.[!i + 1] >= '0' && s.[!i + 1] <= '9' then begin
        let start = !i in
        incr i;
        while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
          incr i
        done;
        emit (T_int (int_of_string (String.sub s start (!i - start))))
      end
      else fail "lexer: stray '-' at offset %d" !i
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
        incr i
      done;
      emit (T_int (int_of_string (String.sub s start (!i - start))))
    end
    else if c = '"' then begin
      incr i;
      let start = !i in
      while !i < n && s.[!i] <> '"' do
        incr i
      done;
      if !i >= n then fail "lexer: unterminated string";
      emit (T_string (String.sub s start (!i - start)));
      incr i
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do
        incr i
      done;
      let word = String.sub s start (!i - start) in
      match word with
      | "exists" -> emit T_exists
      | "forall" -> emit T_forall
      | "true" -> emit T_true
      | "false" -> emit T_false
      | _ ->
          if c = '_' || (c >= 'A' && c <= 'Z') then emit (T_uident word)
          else emit (T_lident word)
    end
    else fail "lexer: unexpected character %C at offset %d" c !i
  done;
  start := n;
  emit T_eof;
  Array.of_list (List.rev !tokens)

(* 1-based line/column of a byte offset, for error messages. *)
let position source offset =
  let line = ref 1 and col = ref 1 in
  String.iteri
    (fun i c ->
      if i < offset then
        if c = '\n' then begin
          incr line;
          col := 1
        end
        else incr col)
    source;
  Printf.sprintf "line %d, column %d" !line !col

(* ------------------------------------------------------------------ *)
(* Token stream *)

type stream = {
  source : string;
  tokens : (token * int) array;
  mutable pos : int;
}

let stream_of source = { source; tokens = lex source; pos = 0 }
let peek st = fst st.tokens.(st.pos)
let peek2 st = fst st.tokens.(st.pos + 1)
let where st =
  (* clamp: an error may be reported after consuming the eof token *)
  let idx = min st.pos (Array.length st.tokens - 1) in
  position st.source (snd st.tokens.(idx))
let advance st = st.pos <- st.pos + 1

let next st =
  let t = peek st in
  advance st;
  t

let expect st t =
  (* [where] rescans the source to compute line/column, so it must only
     run on the failure path — an eager call here turns fact-file
     parsing quadratic in the file size. *)
  let at = st.pos in
  let got = next st in
  if got <> t then begin
    st.pos <- at;
    let loc = where st in
    st.pos <- at + 1;
    fail "parser: expected %s, got %s at %s" (token_to_string t)
      (token_to_string got) loc
  end

(* ------------------------------------------------------------------ *)
(* Terms and atoms *)

let parse_term st =
  match next st with
  | T_uident x -> Term.Var x
  | T_lident s -> Term.Const (Value.Str s)
  | T_int i -> Term.Const (Value.Int i)
  | T_string s -> Term.Const (Value.Str s)
  | t -> fail "parser: expected a term, got %s at %s" (token_to_string t) (where st)

let parse_term_list st =
  expect st T_lparen;
  if peek st = T_rparen then begin
    advance st;
    []
  end
  else
    let rec go acc =
      let t = parse_term st in
      match next st with
      | T_comma -> go (t :: acc)
      | T_rparen -> List.rev (t :: acc)
      | tok -> fail "parser: expected ',' or ')', got %s at %s" (token_to_string tok) (where st)
    in
    go []

(* An item in a rule body: a relational atom or a constraint. *)
type body_item =
  | B_atom of Atom.t
  | B_constr of Constr.t

let parse_body_item st =
  (* Lookahead: lident followed by '(' is a relational atom; a lident
     followed by anything other than a constraint operator is a 0-ary
     atom; otherwise we parse [term op term]. *)
  match peek st, peek2 st with
  | T_lident name, T_lparen ->
      advance st;
      B_atom (Atom.make name (parse_term_list st))
  | T_lident name, (T_comma | T_dot | T_eof) ->
      advance st;
      B_atom (Atom.make name [])
  | _ ->
      let lhs = parse_term st in
      let op =
        match next st with
        | T_neq -> Constr.Neq
        | T_lt -> Constr.Lt
        | T_le -> Constr.Le
        | t ->
            fail "parser: expected '!=', '<' or '<=', got %s at %s"
              (token_to_string t) (where st)
      in
      let rhs = parse_term st in
      B_constr (Constr.make op lhs rhs)

let parse_head st =
  match next st with
  | T_lident name ->
      let args = if peek st = T_lparen then parse_term_list st else [] in
      (name, args)
  | t -> fail "parser: expected a head atom, got %s at %s" (token_to_string t) (where st)

let parse_body st =
  let rec go acc =
    let item = parse_body_item st in
    if peek st = T_comma then begin
      advance st;
      go (item :: acc)
    end
    else List.rev (item :: acc)
  in
  go []

let parse_clause st =
  let name, head = parse_head st in
  let items =
    if peek st = T_turnstile then begin
      advance st;
      parse_body st
    end
    else []
  in
  if peek st = T_dot then advance st;
  let atoms =
    List.filter_map (function B_atom a -> Some a | B_constr _ -> None) items
  in
  let constraints =
    List.filter_map (function B_constr c -> Some c | B_atom _ -> None) items
  in
  (name, head, atoms, constraints)

let finish st =
  if peek st <> T_eof then
    fail "parser: trailing input at token %s (%s)" (token_to_string (peek st))
      (where st)

let parse_cq s =
  let st = stream_of s in
  let name, head, atoms, constraints = parse_clause st in
  finish st;
  Cq.make ~name ~constraints ~head atoms

let parse_rule s =
  let st = stream_of s in
  let name, head, atoms, constraints = parse_clause st in
  finish st;
  if constraints <> [] then fail "parser: constraints not allowed in rules";
  Rule.make (Atom.make name head) atoms

let parse_program s ~goal =
  let st = stream_of s in
  let rec go acc =
    if peek st = T_eof then List.rev acc
    else begin
      let name, head, atoms, constraints = parse_clause st in
      if constraints <> [] then
        fail "parser: constraints not allowed in Datalog rules";
      go (Rule.make (Atom.make name head) atoms :: acc)
    end
  in
  Program.make (go []) ~goal

(* ------------------------------------------------------------------ *)
(* First-order formulas *)

let rec parse_formula st = parse_quantified st

and parse_quantified st =
  match peek st with
  | T_exists | T_forall ->
      let quant = next st in
      let rec vars acc =
        match peek st with
        | T_uident x | T_lident x ->
            advance st;
            vars (x :: acc)
        | T_dot ->
            advance st;
            List.rev acc
        | t -> fail "parser: expected variable or '.', got %s at %s" (token_to_string t) (where st)
      in
      let xs = vars [] in
      if xs = [] then fail "parser: quantifier with no variables";
      let body = parse_quantified st in
      if quant = T_exists then Fo.exists xs body else Fo.forall xs body
  | _ -> parse_implies st

and parse_implies st =
  let lhs = parse_or st in
  if peek st = T_arrow then begin
    advance st;
    let rhs = parse_quantified st in
    Fo.implies lhs rhs
  end
  else lhs

and parse_or st =
  let rec go acc =
    if peek st = T_or then begin
      advance st;
      go (parse_and st :: acc)
    end
    else List.rev acc
  in
  let first = parse_and st in
  Fo.disj (go [ first ])

and parse_and st =
  let rec go acc =
    if peek st = T_and then begin
      advance st;
      go (parse_unary st :: acc)
    end
    else List.rev acc
  in
  let first = parse_unary st in
  Fo.conj (go [ first ])

and parse_unary st =
  match peek st with
  | T_not ->
      advance st;
      Fo.neg (parse_unary st)
  | T_true ->
      advance st;
      Fo.True
  | T_false ->
      advance st;
      Fo.False
  | T_lparen ->
      advance st;
      let f = parse_formula st in
      expect st T_rparen;
      f
  | T_exists | T_forall -> parse_quantified st
  | T_lident name when peek2 st = T_lparen ->
      advance st;
      Fo.Rel (Atom.make name (parse_term_list st))
  | _ -> (
      let lhs = parse_term st in
      match next st with
      | T_eq -> Fo.Eq (lhs, parse_term st)
      | T_neq -> Fo.Not (Fo.Eq (lhs, parse_term st))
      | t -> fail "parser: expected '=' or '!=', got %s at %s" (token_to_string t) (where st))

let parse_fo s =
  let st = stream_of s in
  let f = parse_formula st in
  finish st;
  f

(* ------------------------------------------------------------------ *)
(* Fact files *)

(* Shared with the streaming path ([parse_ground_fact]): one clause's
   worth of the fact-file checks, so both loaders reject the same
   inputs with the same messages. *)
let ground_row_of_clause (name, args, atoms, constraints) =
  if atoms <> [] || constraints <> [] then
    fail "parse_facts: rule bodies not allowed in fact files";
  let row =
    Array.of_list
      (List.map
         (function
           | Term.Const v -> v
           | Term.Var x -> fail "parse_facts: variable %s in a fact" x)
         args)
  in
  (name, row)

let parse_ground_fact s =
  let st = stream_of s in
  let name, args, atoms, constraints = parse_clause st in
  finish st;
  ground_row_of_clause (name, args, atoms, constraints)

let parse_facts s =
  let st = stream_of s in
  let table : (string, Tuple.t list ref) Hashtbl.t = Hashtbl.create 16 in
  let rec go () =
    if peek st <> T_eof then begin
      let name, row = ground_row_of_clause (parse_clause st) in
      let bucket =
        match Hashtbl.find_opt table name with
        | Some b -> b
        | None ->
            let b = ref [] in
            Hashtbl.add table name b;
            b
      in
      bucket := row :: !bucket;
      go ()
    end
  in
  go ();
  Hashtbl.fold
    (fun name rows db ->
      let arity =
        match !rows with
        | [] -> 0
        | row :: _ -> Array.length row
      in
      List.iter
        (fun row ->
          if Array.length row <> arity then
            fail "parse_facts: relation %s used with mixed arities" name)
        !rows;
      let schema = List.init arity (Printf.sprintf "a%d") in
      Database.add (Relation.create ~name ~schema !rows) db)
    table Database.empty
