let read_file path =
  if path = "-" then In_channel.input_all In_channel.stdin
  else In_channel.with_open_text path In_channel.input_all

let parse_facts text =
  try Ok (Parser.parse_facts text) with
  | Parser.Parse_error msg -> Error ("database: " ^ msg)
  | Invalid_argument msg -> Error ("database: " ^ msg)

let load_database path =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | text -> parse_facts text

let parse_query text =
  try Ok (Parser.parse_cq text) with
  | Parser.Parse_error msg -> Error ("query: " ^ msg)
  | Invalid_argument msg -> Error ("query: " ^ msg)

let parse_program text ~goal =
  try Ok (Parser.parse_program text ~goal) with
  | Parser.Parse_error msg -> Error ("program: " ^ msg)
  | Invalid_argument msg -> Error ("program: " ^ msg)
