module Dictionary = Paradb_relational.Dictionary
module Relation = Paradb_relational.Relation

let read_file path =
  if path = "-" then In_channel.input_all In_channel.stdin
  else In_channel.with_open_text path In_channel.input_all

let parse_facts text =
  try Ok (Parser.parse_facts text) with
  | Parser.Parse_error msg -> Error ("database: " ^ msg)
  | Invalid_argument msg -> Error ("database: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Streaming fact ingest.

   A fact file is a sequence of '.'-terminated ground clauses, so it can
   be split into clauses with a three-state scanner (normal / inside a
   quoted string / inside a '%' comment) without tokenizing the whole
   file — the loader below holds one clause of text plus the encoded
   rows in memory, never the file.  Comment bytes are dropped (a comment
   may sit mid-clause); the newline ending a comment is kept so it still
   separates tokens. *)

(* A clause longer than this is a parse error, not an OOM: the cap turns
   a lost terminating dot (or an unterminated quote swallowing the rest
   of a gigabyte file) into a clean failure. *)
let max_clause_bytes = 1 lsl 20

let iter_fact_clauses ic f =
  let chunk = Bytes.create 65536 in
  let buf = Buffer.create 256 in
  let state = ref `Normal in
  let blank = ref true in
  let emit () =
    if not !blank then f (Buffer.contents buf);
    Buffer.clear buf;
    blank := true
  in
  let put c =
    if Buffer.length buf >= max_clause_bytes then
      raise
        (Parser.Parse_error
           (Printf.sprintf "parse_facts: clause exceeds %d bytes (missing '.'?)"
              max_clause_bytes));
    Buffer.add_char buf c;
    (match c with ' ' | '\t' | '\n' | '\r' -> () | _ -> blank := false)
  in
  let rec refill () =
    let n = In_channel.input ic chunk 0 (Bytes.length chunk) in
    if n > 0 then begin
      for i = 0 to n - 1 do
        let c = Bytes.unsafe_get chunk i in
        match !state with
        | `Comment -> if c = '\n' then (state := `Normal; put '\n')
        | `String ->
            put c;
            if c = '"' then state := `Normal
        | `Normal -> (
            match c with
            | '%' -> state := `Comment
            | '"' ->
                state := `String;
                put c
            | '.' ->
                put '.';
                emit ()
            | c -> put c)
      done;
      refill ()
    end
  in
  refill ();
  if !state = `String then
    raise (Parser.Parse_error "lexer: unterminated string");
  (* a final clause without its dot parses like it does in parse_facts *)
  emit ()

(* One relation under construction: rows are interned to code rows as
   they arrive, so a large ingest holds int arrays, not boxed values or
   source text. *)
type building = { arity : int; mutable rev_rows : Paradb_relational.Code_row.t list }

let load_database_channel ic =
  let table : (string, building) Hashtbl.t = Hashtbl.create 16 in
  iter_fact_clauses ic (fun clause ->
      let name, row = Parser.parse_ground_fact clause in
      let codes = Array.map (Dictionary.intern Dictionary.global) row in
      match Hashtbl.find_opt table name with
      | None ->
          Hashtbl.add table name
            { arity = Array.length row; rev_rows = [ codes ] }
      | Some b ->
          if Array.length row <> b.arity then
            raise
              (Parser.Parse_error
                 (Printf.sprintf
                    "parse_facts: relation %s used with mixed arities" name));
          b.rev_rows <- codes :: b.rev_rows);
  Hashtbl.fold
    (fun name b db ->
      let schema = List.init b.arity (Printf.sprintf "a%d") in
      Paradb_relational.Database.add
        (Relation.of_codes ~name ~schema (List.to_seq (List.rev b.rev_rows)))
        db)
    table Paradb_relational.Database.empty

let load_database path =
  match
    if path = "-" then load_database_channel In_channel.stdin
    else In_channel.with_open_bin path load_database_channel
  with
  | db -> Ok db
  | exception Sys_error msg -> Error msg
  | exception Parser.Parse_error msg -> Error ("database: " ^ msg)
  | exception Invalid_argument msg -> Error ("database: " ^ msg)

let parse_query text =
  try Ok (Parser.parse_cq text) with
  | Parser.Parse_error msg -> Error ("query: " ^ msg)
  | Invalid_argument msg -> Error ("query: " ^ msg)

let parse_program text ~goal =
  try Ok (Parser.parse_program text ~goal) with
  | Parser.Parse_error msg -> Error ("program: " ^ msg)
  | Invalid_argument msg -> Error ("program: " ^ msg)
