module Value = Paradb_relational.Value
module Tuple = Paradb_relational.Tuple

type t = {
  name : string;
  head : Term.t list;
  body : Atom.t list;
  constraints : Constr.t list;
}

let dedup = Paradb_relational.Listx.dedup

let body_vars body = dedup (List.concat_map Atom.vars body)

let make ?(name = "ans") ?(constraints = []) ~head body =
  let bvars = body_vars body in
  let check_safe what x =
    if not (List.mem x bvars) then
      invalid_arg
        (Printf.sprintf "Cq.make: %s variable %s not in any relational atom"
           what x)
  in
  List.iter (check_safe "head") (Term.vars head);
  List.iter
    (fun c -> List.iter (check_safe "constraint") (Constr.vars c))
    constraints;
  { name; head; body; constraints }

let vars q = dedup (body_vars q.body @ Term.vars q.head)
let num_vars q = List.length (vars q)

let size q =
  let atom_size a = 1 + Atom.arity a in
  1 + List.length q.head
  + List.fold_left (fun acc a -> acc + atom_size a) 0 q.body
  + (3 * List.length q.constraints)

let head_vars q = Term.vars q.head
let is_boolean q = q.head = []
let has_constraints q = q.constraints <> []
let neq_only q = List.for_all Constr.is_neq q.constraints
let relational_atoms q = q.body
let neq_constraints q = List.filter Constr.is_neq q.constraints
let comparison_constraints q = List.filter Constr.is_comparison q.constraints

let substitute binding q =
  {
    q with
    head = List.map (Term.apply (fun x -> Binding.find x binding)) q.head;
    body = List.map (Atom.substitute binding) q.body;
    constraints = List.map (Constr.substitute binding) q.constraints;
  }

let close_with_tuple q tuple =
  if Tuple.arity tuple <> List.length q.head then None
  else
    let rec bind i acc = function
      | [] -> Some acc
      | Term.Const c :: rest ->
          if Value.equal c tuple.(i) then bind (i + 1) acc rest else None
      | Term.Var x :: rest -> (
          match Binding.extend x tuple.(i) acc with
          | Some acc -> bind (i + 1) acc rest
          | None -> None)
    in
    match bind 0 Binding.empty q.head with
    | None -> None
    | Some binding ->
        let closed = substitute binding q in
        Some { closed with head = [] }

let rename f q =
  let term = function
    | Term.Var x -> Term.Var (f x)
    | Term.Const _ as t -> t
  in
  {
    q with
    head = List.map term q.head;
    body =
      List.map (fun a -> { a with Atom.args = List.map term a.Atom.args }) q.body;
    constraints =
      List.map
        (fun c -> { c with Constr.lhs = term c.Constr.lhs; rhs = term c.Constr.rhs })
        q.constraints;
  }

let head_tuple binding q =
  Array.of_list
    (List.map
       (fun t ->
         match Binding.apply_term binding t with
         | Some v -> v
         | None -> invalid_arg "Cq.head_tuple: unbound head variable")
       q.head)

let equal a b =
  a.name = b.name
  && List.equal Term.equal a.head b.head
  && List.equal Atom.equal a.body b.body
  && List.equal Constr.equal a.constraints b.constraints

let pp ppf q =
  let pp_terms ppf ts =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      Term.pp ppf ts
  in
  Format.fprintf ppf "%s(%a) :- " q.name pp_terms q.head;
  let items =
    List.map Atom.to_string q.body @ List.map Constr.to_string q.constraints
  in
  Format.pp_print_string ppf (String.concat ", " items)

let to_string q = Format.asprintf "%a" pp q

let alpha_normalize q =
  (* First-occurrence order over the body then head (= [vars q]), so any
     two queries differing only by an injective variable renaming get the
     same normal form.  The canonical names [V0, V1, ...] start with an
     uppercase letter, hence re-parse as variables. *)
  let table = Hashtbl.create 16 in
  List.iteri
    (fun i x -> Hashtbl.replace table x (Printf.sprintf "V%d" i))
    (vars q);
  rename (fun x -> try Hashtbl.find table x with Not_found -> x) q

let cache_key q = to_string (alpha_normalize q)
