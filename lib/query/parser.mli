(** A small concrete syntax for queries, rules, formulas and fact files.

    Prolog-style lexical conventions: identifiers starting with an
    uppercase letter or [_] are variables; lowercase identifiers, integers
    and quoted strings are constants; relation names are lowercase
    identifiers.

    {v
      ans(X, Y) :- e(X, Z), e(Z, Y), X != Y, Z < 5.
      exists x y. (e(x, y) & !(x = y))
      edge(1, 2).  edge(2, 3).
    v} *)

exception Parse_error of string

(** [parse_cq s] — a conjunctive query with optional [!=], [<], [<=]
    constraint atoms, with or without the trailing dot. *)
val parse_cq : string -> Cq.t

(** [parse_rule s] — a pure Datalog rule (no constraints). *)
val parse_rule : string -> Rule.t

(** [parse_program s ~goal] — a dot-separated list of rules. *)
val parse_program : string -> goal:string -> Program.t

(** [parse_fo s] — a first-order formula.  Operators by increasing
    binding strength: [exists]/[forall] (lowest, extend right), [->],
    [|], [&], [!].  Atoms: [r(t, ...)], [t = t], [t != t]. ([!=] is sugar
    for negated equality.) *)
val parse_fo : string -> Fo.t

(** [parse_facts s] — a list of ground facts [r(c, ...).]; builds a
    database (relation schemas get positional attribute names
    ["a0", "a1", ...]).  ['%' ...] comments run to end of line. *)
val parse_facts : string -> Paradb_relational.Database.t

(** [parse_ground_fact s] — exactly one ground fact [r(c, ...).]; the
    per-clause unit of the streaming fact loader ({!Source}).  Rejects
    rule bodies and variables with the same messages as
    {!parse_facts}. *)
val parse_ground_fact : string -> string * Paradb_relational.Tuple.t
