(** Reading query and database sources — the one code path shared by the
    CLI subcommands, the server's [LOAD], and the client.

    Every function wraps parse and I/O failures into [result] values with
    a short prefixed message, so front ends never catch parser exceptions
    themselves. *)

(** [read_file path] reads a whole file; ["-"] means stdin. *)
val read_file : string -> string

(** [load_database path] parses the fact file at [path] ('-' for stdin).
    The file is streamed clause by clause — peak memory is the encoded
    database plus one clause of text, never the whole file — so ingest
    handles fact files larger than RAM's worth of source text.  Errors
    are prefixed with ["database: "] (parse) or are the raw [Sys_error]
    message (I/O). *)
val load_database :
  string -> (Paradb_relational.Database.t, string) result

(** [iter_fact_clauses ic f] splits the channel into '.'-terminated
    clauses (respecting quoted strings; ['%'] comments are dropped) and
    calls [f] on each clause's text.  Raises {!Parser.Parse_error} on an
    unterminated string or a clause longer than 1 MiB. *)
val iter_fact_clauses : In_channel.t -> (string -> unit) -> unit

(** [parse_facts text] — like {!load_database} on an in-memory string. *)
val parse_facts : string -> (Paradb_relational.Database.t, string) result

(** [parse_query text] parses a conjunctive query; errors are prefixed
    with ["query: "]. *)
val parse_query : string -> (Cq.t, string) result

(** [parse_program text ~goal] parses a Datalog program; errors are
    prefixed with ["program: "]. *)
val parse_program : string -> goal:string -> (Program.t, string) result
