(** Conjunctive queries, optionally extended with constraint atoms.

    A query is written [name(head) :- R1(t1), ..., Rs(ts), c1, ..., cm]
    where the [ci] are [≠] / [<] / [≤] atoms.  Plain conjunctive queries
    have no constraints; Theorem 2 allows [Neq] constraints; Theorem 3
    studies comparisons.  Safety: every head variable and every constraint
    variable must occur in some relational atom. *)

type t = private {
  name : string;
  head : Term.t list;
  body : Atom.t list;
  constraints : Constr.t list;
}

(** Raises [Invalid_argument] on unsafe queries. *)
val make :
  ?name:string -> ?constraints:Constr.t list -> head:Term.t list ->
  Atom.t list -> t

(** Distinct variables, in first-occurrence order over the body then
    head. *)
val vars : t -> string list

(** The parameter [v]: number of distinct variables. *)
val num_vars : t -> int

(** The parameter [q]: query size as a symbol count (head and every atom
    contribute [1 + arity]; every constraint contributes 3). *)
val size : t -> int

val head_vars : t -> string list
val is_boolean : t -> bool
val has_constraints : t -> bool

(** All constraints are [≠]. *)
val neq_only : t -> bool

val relational_atoms : t -> Atom.t list
val neq_constraints : t -> Constr.t list
val comparison_constraints : t -> Constr.t list

(** [close_with_tuple q t] implements the paper's "substitute the constants
    of the tuple [t] in the query": head variables become the corresponding
    constants of [t] throughout the query; the result is a Boolean query.
    [None] when a head constant or a repeated head variable disagrees with
    [t]. *)
val close_with_tuple : t -> Paradb_relational.Tuple.t -> t option

val substitute : Binding.t -> t -> t

(** [rename f q] applies a variable renaming (must be injective on
    [vars q] to preserve meaning; not checked). *)
val rename : (string -> string) -> t -> t

(** [alpha_normalize q] renames the variables to the canonical
    [V0, V1, ...] in first-occurrence order over the body then head
    (the order of {!vars}).  Two queries that differ only by an injective
    variable renaming have equal normal forms; the canonical names
    re-parse as variables, so
    [parse_cq (to_string (alpha_normalize q)) = alpha_normalize q]. *)
val alpha_normalize : t -> t

(** [cache_key q = to_string (alpha_normalize q)] — the renaming-invariant
    key the server's plan cache uses. *)
val cache_key : t -> string

(** [head_tuple binding q] instantiates the head under a satisfying
    binding. *)
val head_tuple : Binding.t -> t -> Paradb_relational.Tuple.t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
