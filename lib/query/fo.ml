module Value = Paradb_relational.Value

type t =
  | True
  | False
  | Rel of Atom.t
  | Eq of Term.t * Term.t
  | Not of t
  | And of t list
  | Or of t list
  | Exists of string list * t
  | Forall of string list * t

let rel a = Rel a
let atom name args = Rel (Atom.make name args)
let eq a b = Eq (a, b)
let neg f = Not f

let conj = function
  | [] -> True
  | [ f ] -> f
  | fs -> And fs

let disj = function
  | [] -> False
  | [ f ] -> f
  | fs -> Or fs

let exists xs f = if xs = [] then f else Exists (xs, f)
let forall xs f = if xs = [] then f else Forall (xs, f)
let implies a b = disj [ neg a; b ]

let dedup = Paradb_relational.Listx.dedup

let rec free_vars_in bound = function
  | True | False -> []
  | Rel a -> List.filter (fun x -> not (List.mem x bound)) (Atom.vars a)
  | Eq (l, r) ->
      List.filter (fun x -> not (List.mem x bound)) (Term.vars [ l; r ])
  | Not f -> free_vars_in bound f
  | And fs | Or fs -> List.concat_map (free_vars_in bound) fs
  | Exists (xs, f) | Forall (xs, f) -> free_vars_in (xs @ bound) f

let free_vars f = dedup (free_vars_in [] f)

let rec all_vars_raw = function
  | True | False -> []
  | Rel a -> Atom.vars a
  | Eq (l, r) -> Term.vars [ l; r ]
  | Not f -> all_vars_raw f
  | And fs | Or fs -> List.concat_map all_vars_raw fs
  | Exists (xs, f) | Forall (xs, f) -> xs @ all_vars_raw f

let all_vars f = dedup (all_vars_raw f)
let num_vars f = List.length (all_vars f)

let rec size = function
  | True | False -> 1
  | Rel a -> 1 + Atom.arity a
  | Eq _ -> 3
  | Not f -> 1 + size f
  | And fs | Or fs -> 1 + List.fold_left (fun acc f -> acc + size f) 0 fs
  | Exists (xs, f) | Forall (xs, f) -> List.length xs + size f

let is_sentence f = free_vars f = []

let rec is_positive = function
  | True | False -> true
  | Rel _ | Eq _ -> true
  | Not _ | Forall _ -> false
  | And fs | Or fs -> List.for_all is_positive fs
  | Exists (_, f) -> is_positive f

let rec is_conjunctive = function
  | True -> true
  | False -> false
  | Rel _ | Eq _ -> true
  | Not _ | Forall _ | Or _ -> false
  | And fs -> List.for_all is_conjunctive fs
  | Exists (_, f) -> is_conjunctive f

let rec substitute binding f =
  match f with
  | True | False -> f
  | Rel a -> Rel (Atom.substitute binding a)
  | Eq (l, r) ->
      let app = Term.apply (fun x -> Binding.find x binding) in
      Eq (app l, app r)
  | Not g -> Not (substitute binding g)
  | And fs -> And (List.map (substitute binding) fs)
  | Or fs -> Or (List.map (substitute binding) fs)
  | Exists (xs, g) ->
      Exists (xs, substitute (shadow xs binding) g)
  | Forall (xs, g) ->
      Forall (xs, substitute (shadow xs binding) g)

and shadow xs binding =
  (* Quantified variables hide outer bindings of the same name. *)
  List.fold_left
    (fun b x ->
      match Binding.find x b with
      | None -> b
      | Some _ ->
          Binding.of_list
            (List.filter (fun (y, _) -> y <> x) (Binding.bindings b)))
    binding xs

let rename_apart f =
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "#%d" !counter
  in
  let rec go env = function
    | (True | False) as f -> f
    | Rel a ->
        let rn = function
          | Term.Var x as t -> (
              match List.assoc_opt x env with
              | Some y -> Term.Var y
              | None -> t)
          | Term.Const _ as t -> t
        in
        Rel { a with Atom.args = List.map rn a.Atom.args }
    | Eq (l, r) ->
        let rn = function
          | Term.Var x as t -> (
              match List.assoc_opt x env with
              | Some y -> Term.Var y
              | None -> t)
          | Term.Const _ as t -> t
        in
        Eq (rn l, rn r)
    | Not g -> Not (go env g)
    | And fs -> And (List.map (go env) fs)
    | Or fs -> Or (List.map (go env) fs)
    | Exists (xs, g) ->
        let ys = List.map (fun _ -> fresh ()) xs in
        Exists (ys, go (List.combine xs ys @ env) g)
    | Forall (xs, g) ->
        let ys = List.map (fun _ -> fresh ()) xs in
        Forall (ys, go (List.combine xs ys @ env) g)
  in
  go [] f

let rec nnf = function
  | (True | False | Rel _ | Eq _) as f -> f
  | And fs -> And (List.map nnf fs)
  | Or fs -> Or (List.map nnf fs)
  | Exists (xs, f) -> Exists (xs, nnf f)
  | Forall (xs, f) -> Forall (xs, nnf f)
  | Not f -> (
      match f with
      | True -> False
      | False -> True
      | Rel _ | Eq _ -> Not f
      | Not g -> nnf g
      | And fs -> Or (List.map (fun g -> nnf (Not g)) fs)
      | Or fs -> And (List.map (fun g -> nnf (Not g)) fs)
      | Exists (xs, g) -> Forall (xs, nnf (Not g))
      | Forall (xs, g) -> Exists (xs, nnf (Not g)))

type quantifier =
  | Q_exists
  | Q_forall

let prenex f =
  let rec pull = function
    | (True | False | Rel _ | Eq _ | Not _) as f -> ([], f)
    | And fs ->
        let prefixes, matrices = List.split (List.map pull fs) in
        (List.concat prefixes, conj matrices)
    | Or fs ->
        let prefixes, matrices = List.split (List.map pull fs) in
        (List.concat prefixes, disj matrices)
    | Exists (xs, g) ->
        let prefix, matrix = pull g in
        (List.map (fun x -> (Q_exists, x)) xs @ prefix, matrix)
    | Forall (xs, g) ->
        let prefix, matrix = pull g in
        (List.map (fun x -> (Q_forall, x)) xs @ prefix, matrix)
  in
  pull (nnf (rename_apart f))

type literal =
  | L_rel of Atom.t
  | L_eq of Term.t * Term.t

(* DNF of a positive quantifier-free formula, as lists of literals. *)
let rec dnf = function
  | True -> [ [] ]
  | False -> []
  | Rel a -> [ [ L_rel a ] ]
  | Eq (l, r) -> [ [ L_eq (l, r) ] ]
  | And fs ->
      List.fold_left
        (fun acc f ->
          let ds = dnf f in
          List.concat_map (fun conjunct -> List.map (fun d -> conjunct @ d) ds) acc)
        [ [] ] fs
  | Or fs -> List.concat_map dnf fs
  | Not _ | Exists _ | Forall _ ->
      invalid_arg "Fo.dnf: not a positive quantifier-free formula"

(* Eliminate equality literals from a conjunct by unification.  Returns the
   relational atoms, or [None] if the conjunct is unsatisfiable. *)
let solve_equalities literals =
  let rec go atoms pending = function
    | [] -> Some (List.rev atoms, pending)
    | L_rel a :: rest -> go (a :: atoms) pending rest
    | L_eq (l, r) :: rest -> go atoms ((l, r) :: pending) rest
  in
  match go [] [] literals with
  | None -> None
  | Some (atoms, eqs) ->
      let substitute_var x t atoms eqs =
        let sub = function
          | Term.Var y when y = x -> t
          | other -> other
        in
        ( List.map
            (fun a -> { a with Atom.args = List.map sub a.Atom.args })
            atoms,
          List.map (fun (l, r) -> (sub l, sub r)) eqs )
      in
      let rec solve atoms = function
        | [] -> Some atoms
        | (l, r) :: rest -> (
            match l, r with
            | Term.Const a, Term.Const b ->
                if Value.equal a b then solve atoms rest else None
            | Term.Var x, t | t, Term.Var x ->
                let atoms, rest = substitute_var x t atoms rest in
                solve atoms rest)
      in
      solve atoms eqs

let positive_to_cqs f =
  if not (is_positive f) then
    invalid_arg "Fo.positive_to_cqs: formula is not positive";
  if not (is_sentence f) then
    invalid_arg "Fo.positive_to_cqs: formula is not closed";
  let prefix, matrix = prenex f in
  assert (List.for_all (fun (q, _) -> q = Q_exists) prefix);
  List.filter_map
    (fun conjunct ->
      match solve_equalities conjunct with
      | None -> None
      | Some atoms -> Some (Cq.make ~head:[] atoms))
    (dnf matrix)

let of_boolean_cq q =
  let open Cq in
  let atom_formulas = List.map rel q.body in
  let constraint_formulas =
    List.map
      (fun c ->
        match c.Constr.op with
        | Constr.Neq -> Not (Eq (c.Constr.lhs, c.Constr.rhs))
        | Constr.Lt | Constr.Le ->
            invalid_arg "Fo.of_boolean_cq: comparisons are not first-order \
                         over an uninterpreted domain")
      q.constraints
  in
  exists (Cq.vars q) (conj (atom_formulas @ constraint_formulas))

let equal (a : t) (b : t) = a = b

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Rel a -> Atom.pp ppf a
  | Eq (l, r) -> Format.fprintf ppf "%a = %a" Term.pp l Term.pp r
  | Not f -> Format.fprintf ppf "!%a" pp_delimited f
  | And fs ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " & ")
           pp_operand)
        fs
  | Or fs ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
           pp_operand)
        fs
  | Exists (xs, f) ->
      Format.fprintf ppf "exists %s. %a" (String.concat " " xs) pp f
  | Forall (xs, f) ->
      Format.fprintf ppf "forall %s. %a" (String.concat " " xs) pp f

and pp_delimited ppf f =
  match f with
  | True | False | Rel _ | Not _ -> pp ppf f
  | _ -> Format.fprintf ppf "(%a)" pp f

(* A quantifier printed bare inside an [&]/[|] list would re-parse with
   its scope extended over the rest of the list (the parser takes the
   longest body); parenthesize so [to_string] round-trips exactly. *)
and pp_operand ppf f =
  match f with
  | Exists _ | Forall _ -> Format.fprintf ppf "(%a)" pp f
  | _ -> pp ppf f

let to_string f = Format.asprintf "%a" pp f
