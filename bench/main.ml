(* The experiment harness.

   The paper's "evaluation" is its classification table (Theorem 1),
   Figure 1's partial order, the Theorem-2 algorithm, Theorem 3, and the
   Section-4/5 remarks.  Each experiment below regenerates the observable
   counterpart of one such artifact: workload generator, parameter sweep,
   baseline, and a printed table (rows recorded in EXPERIMENTS.md).

   Usage:
     dune exec bench/main.exe               # all experiment tables
     dune exec bench/main.exe -- --only t2-scaling-n
     dune exec bench/main.exe -- --list
     dune exec bench/main.exe -- --bechamel # Bechamel micro-benchmarks
                                            # (one Test.make per table/figure)
*)

module Relation = Paradb_relational.Relation
module Database = Paradb_relational.Database
module Value = Paradb_relational.Value
module Graph = Paradb_graph.Graph
module Circuit = Paradb_wsat.Circuit
module Formula = Paradb_wsat.Formula
module Cnf = Paradb_wsat.Cnf
module Cq_naive = Paradb_eval.Cq_naive
module Fo_naive = Paradb_eval.Fo_naive
module Engine = Paradb_core.Engine
module Hashing = Paradb_core.Hashing
module Color_coding = Paradb_core.Color_coding
module Generators = Paradb_workload.Generators
module Vardi = Paradb_workload.Vardi
module B = Paradb_workload.Bench_util
open Paradb_query
open Paradb_reductions

let rng seed = Random.State.make [| seed; 0xBEEF |]

let header title =
  Printf.printf "\n### %s\n\n" title

let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter
        (fun f -> remove_tree (Filename.concat path f))
        (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

(* Order-insensitive, process-independent database digest for the
   cold-load experiment: hashes tuple *values*, not dictionary codes,
   so a fresh process (whose dictionary interns in segment order)
   computes the same digest as the process that parsed the text. *)
let store_digest db =
  List.fold_left
    (fun acc r ->
      let rx =
        Relation.fold
          (fun tup x -> x lxor Paradb_relational.Tuple.hash tup)
          r 0
      in
      acc lxor Hashtbl.hash (Relation.name r, Relation.cardinality r, rx))
    0 (Database.relations db)

(* Empirical exponent between two measurements: log(y2/y1)/log(x2/x1). *)
let exponent (x1, y1) (x2, y2) =
  if y1 <= 0.0 || y2 <= 0.0 then nan
  else log (y2 /. y1) /. log (float_of_int x2 /. float_of_int x1)

let fmt_exp e = if Float.is_nan e then "-" else Printf.sprintf "%.2f" e

(* ------------------------------------------------------------------ *)
(* E-FIG1: the four parametric problems and Proposition 1 *)

let fig1_partial_order () =
  header
    "E-FIG1 — Figure 1: four parameterizations, identity reductions \
     (Prop. 1)";
  let rows = ref [] in
  List.iter
    (fun n ->
      let g = Graph.gnp (rng n) n 0.4 in
      let k = 3 in
      let q, db = Clique_to_cq.reduce g ~k in
      (* parameter q, schema as given *)
      let sat_q, t_q = B.time (fun () -> Cq_naive.is_satisfiable db q) in
      (* parameter v route: the bounded-variables rewrite (upper-bound
         construction), then the same decision problem *)
      let (q', db'), t_rw = B.time (fun () -> Bounded_vars.reduce db q) in
      let sat_v, t_v = B.time (fun () -> Cq_naive.is_satisfiable db' q') in
      (* schema axis: the same instance over the fixed tup/cell schema *)
      let (qf, dbf), t_fx = B.time (fun () -> Fixed_schema.reduce db q) in
      let sat_f, t_f =
        B.time (fun () -> Paradb_eval.Join_eval.is_satisfiable dbf qf)
      in
      rows :=
        [
          string_of_int n;
          string_of_int (Cq.size q);
          string_of_int (Cq.num_vars q);
          string_of_bool sat_q;
          B.pretty_seconds t_q;
          B.pretty_seconds (t_rw +. t_v);
          B.pretty_seconds (t_fx +. t_f);
          string_of_bool (sat_q = sat_v && sat_q = sat_f);
        ]
        :: !rows)
    [ 12; 24; 48 ];
  B.print_table
    ~header:
      [ "n"; "q"; "v"; "answer"; "t(param q)"; "t(param v route)";
        "t(fixed schema)"; "agree" ]
    (List.rev !rows);
  print_endline
    "\nThe identity map carries instances between the four regimes; the\n\
     bounded-variable rewrite and the fixed tup/cell schema encoding\n\
     both decide the same set (Proposition 1's arrows, both axes)."

(* ------------------------------------------------------------------ *)
(* E-T1-CQ: conjunctive queries, the n^k shape and the 2CNF bridge *)

let t1_conjunctive () =
  header "E-T1-CQ — Theorem 1 row 1: clique -> CQ, naive n^Theta(k) scaling";
  let rows = ref [] in
  List.iter
    (fun (k, ns) ->
      let prev = ref None in
      List.iter
        (fun n ->
          (* (k-1)-partite graphs have no k-clique by construction, which
             forces the full backtracking search (worst case) *)
          let g = Graph.multipartite_gnp (rng (n + (k * 1000))) n (k - 1) 0.5 in
          let q, db = Clique_to_cq.reduce g ~k in
          let stats = Cq_naive.new_stats () in
          let sat, t =
            B.time (fun () -> Cq_naive.is_satisfiable ~stats ~order_atoms:false db q)
          in
          let probes = float_of_int stats.Cq_naive.probes in
          let tuples = Database.size db in
          (* exponent measured against the database size, the paper's n *)
          let e =
            match !prev with
            | Some (t0, p0) -> exponent (t0, p0) (tuples, probes)
            | None -> nan
          in
          prev := Some (tuples, probes);
          rows :=
            [
              string_of_int k;
              string_of_int n;
              string_of_int tuples;
              string_of_bool sat;
              Printf.sprintf "%.0f" probes;
              fmt_exp e;
              B.pretty_seconds t;
            ]
            :: !rows)
        ns)
    [ (3, [ 12; 24; 48 ]); (4, [ 8; 16; 32 ]) ];
  B.print_table
    ~header:[ "k"; "n"; "db tuples"; "clique?"; "probes"; "exponent vs |d|"; "time" ]
    (List.rev !rows);
  print_endline
    "\nThe probe exponent climbs with k: the query size sits in the\n\
     exponent of the data complexity, as the W[1]-hardness predicts.";

  header "E-T1-CQ — the upper-bound bridge: CQ -> weighted all-negative 2-CNF";
  let rows = ref [] in
  List.iter
    (fun (n, k) ->
      let g = Graph.gnp (rng (7 * n)) n 0.5 in
      let q, db = Clique_to_cq.reduce g ~k in
      let lab, t_red = B.time (fun () -> Cq_to_wsat.reduce db q) in
      let expected = Cq_naive.is_satisfiable db q in
      let got, t_sat =
        B.time (fun () ->
            Cnf.weighted_sat_neg2cnf lab.Cq_to_wsat.cnf lab.Cq_to_wsat.k <> None)
      in
      rows :=
        [
          string_of_int n;
          string_of_int k;
          string_of_int lab.Cq_to_wsat.cnf.Cnf.n_vars;
          string_of_int (Cnf.n_clauses lab.Cq_to_wsat.cnf);
          string_of_int lab.Cq_to_wsat.k;
          string_of_bool (got = expected);
          B.pretty_seconds (t_red +. t_sat);
        ]
        :: !rows)
    [ (8, 3); (12, 3); (8, 4) ];
  B.print_table
    ~header:[ "n"; "k"; "cnf vars"; "clauses"; "weight"; "equivalent"; "time" ]
    (List.rev !rows)

let t1_conjunctive_v () =
  header
    "E-T1-CQ-v — Theorem 1 row 1, parameter v: the 2^v rewrite (Q,d) -> \
     (Q',d')";
  (* Chains with both edge orientations plus a unary atom per variable:
     many atoms share one variable set, so the rewrite genuinely
     compresses the query. *)
  let both_ways_chain v =
    let x i = Term.var (Printf.sprintf "x%d" i) in
    let binary =
      List.concat
        (List.init (v - 1) (fun i ->
             [ Atom.make "r2" [ x i; x (i + 1) ];
               Atom.make "r2" [ x (i + 1); x i ] ]))
    in
    let unary = List.init v (fun i -> Atom.make "r1" [ x i ]) in
    Cq.make ~head:[] (binary @ unary)
  in
  let rows = ref [] in
  List.iter
    (fun v ->
      let r = rng (v * 3) in
      let db = Qgen_db.tree_db r in
      let q = both_ways_chain v in
      let (q', db'), t = B.time (fun () -> Bounded_vars.reduce db q) in
      rows :=
        [
          string_of_int v;
          string_of_int (List.length q.Cq.body);
          string_of_int (List.length q'.Cq.body);
          string_of_int (1 lsl v);
          string_of_bool
            (Cq_naive.is_satisfiable db' q' = Cq_naive.is_satisfiable db q);
          B.pretty_seconds t;
        ]
        :: !rows)
    [ 2; 3; 4; 5; 6 ];
  B.print_table
    ~header:
      [ "v"; "atoms before"; "atoms after"; "2^v bound"; "equivalent"; "time" ]
    (List.rev !rows);
  print_endline
    "\nAtoms sharing a variable set merge into one intersection relation;\n\
     the rewritten query has at most 2^v atoms regardless of |Q|."

(* ------------------------------------------------------------------ *)
(* E-T1-POS: positive queries *)

let t1_positive () =
  header
    "E-T1-POS — Theorem 1 row 2: positive query -> union of CQs (2^Theta(q)) \
     -> clique (footnote 2)";
  let db =
    Generators.random_database (rng 5) ~schema:[ ("r1", 1); ("r2", 2) ]
      ~domain_size:4 ~tuples:8
  in
  (* balanced And-of-Or alternations: DNF size doubles per And level *)
  let balanced rng depth =
    let rec go depth conj =
      if depth = 0 then
        Fo.atom "r2"
          [ Term.var "x"; Term.int (Random.State.int rng 4) ]
      else
        let sub = List.init 2 (fun _ -> go (depth - 1) (not conj)) in
        if conj then Fo.conj sub else Fo.disj sub
    in
    Fo.exists [ "x" ] (go depth true)
  in
  let rows = ref [] in
  List.iter
    (fun depth ->
      let f = balanced (rng (depth * 31)) depth in
      let cqs, t_dnf = B.time (fun () -> Fo.positive_to_cqs f) in
      let truth = Fo_naive.sentence_holds db f in
      let union_sat =
        List.exists (fun q -> Cq_naive.is_satisfiable db q) cqs
      in
      let (g, k), t_clique = B.time (fun () -> Cqs_to_clique.reduce db cqs) in
      let clique_sat = Graph.has_clique g k in
      rows :=
        [
          string_of_int depth;
          string_of_int (Fo.size f);
          string_of_int (List.length cqs);
          string_of_bool (union_sat = truth);
          Printf.sprintf "%d / k=%d" (Graph.n_vertices g) k;
          string_of_bool (clique_sat = truth);
          B.pretty_seconds (t_dnf +. t_clique);
        ]
        :: !rows)
    [ 2; 3; 4; 5 ];
  B.print_table
    ~header:
      [ "depth"; "q (size)"; "disjuncts"; "union = Q"; "clique instance";
        "clique = Q"; "time" ]
    (List.rev !rows);
  print_endline
    "\nDisjunct count grows exponentially in the query size (the parametric\n\
     reduction, not a polynomial transformation) while footnote 2 then\n\
     packs the whole union back into a single clique instance."

let t1_positive_v () =
  header
    "E-T1-POS-v — Theorem 1 row 2, parameter v: weighted formula sat <-> \
     positive queries";
  let rows = ref [] in
  List.iter
    (fun k ->
      let nv = 6 in
      let phi = Formula.random (rng (k + 77)) ~n_vars:nv ~depth:3 in
      let (fo, db), t_red = B.time (fun () -> Wformula_to_positive.reduce ~n_vars:nv phi ~k) in
      let expected = Formula.weighted_sat_exists ~n_vars:nv phi k in
      let got, t_eval = B.time (fun () -> Fo_naive.sentence_holds db fo) in
      (* and back again: the W[SAT] membership construction *)
      let lab = Positive_to_wformula.reduce db fo in
      let back =
        Formula.weighted_sat_exists
          ~n_vars:(Array.length lab.Positive_to_wformula.z)
          lab.Positive_to_wformula.formula lab.Positive_to_wformula.k
      in
      rows :=
        [
          string_of_int k;
          string_of_int (Formula.size phi);
          string_of_int (Fo.size fo);
          string_of_int (Fo.num_vars fo);
          string_of_bool (got = expected);
          string_of_bool (back = expected);
          B.pretty_seconds (t_red +. t_eval);
        ]
        :: !rows)
    [ 0; 1; 2; 3; 4 ];
  B.print_table
    ~header:
      [ "k"; "|phi|"; "query size"; "v (= k)"; "reduce ok"; "membership ok";
        "time" ]
    (List.rev !rows);
  print_endline
    "\nThe query's variable count is exactly k: weighted formula\n\
     satisfiability embeds into positive queries with v as the parameter\n\
     (W[SAT]-hardness), and prenex positive queries embed back (membership)."

(* ------------------------------------------------------------------ *)
(* E-T1-FO: first-order queries *)

let t1_first_order () =
  header
    "E-T1-FO — Theorem 1 row 3: monotone circuit -> first-order query \
     (theta_2t construction)";
  let rows = ref [] in
  List.iter
    (fun (n_inputs, n_gates, k) ->
      let c = Qgen_db.monotone_circuit (rng (n_gates * 13)) ~n_inputs ~n_gates in
      let nz = Circuit_to_fo.normalize c in
      let (fo, db), t_red = B.time (fun () -> Circuit_to_fo.reduce c ~k) in
      let expected = Circuit.weighted_sat_exists c k in
      let got, t_eval = B.time (fun () -> Fo_naive.sentence_holds db fo) in
      rows :=
        [
          Printf.sprintf "%d/%d" n_inputs (Circuit.n_gates c);
          string_of_int nz.Circuit_to_fo.t;
          string_of_int k;
          string_of_int (Fo.size fo);
          string_of_int (Fo.num_vars fo);
          string_of_bool (got = expected);
          B.pretty_seconds (t_red +. t_eval);
        ]
        :: !rows)
    [ (3, 4, 1); (3, 4, 2); (4, 6, 2); (4, 8, 2); (5, 8, 3) ];
  B.print_table
    ~header:
      [ "inputs/gates"; "t (levels/2)"; "k"; "query size"; "v (= k+2)";
        "equivalent"; "time" ]
    (List.rev !rows);
  print_endline
    "\nQuery size stays O(t + k) and the variable count k + 2 — the fixed\n\
     schema, reused-variable construction behind W[t]- and W[P]-hardness."

(* ------------------------------------------------------------------ *)
(* E-DATALOG: recursion puts k in the exponent, provably *)

let datalog_vardi () =
  header
    "E-DATALOG — Section 4: recursion makes the exponent provable \
     (k-pebble product reachability)";
  let db = Vardi.layered_instance (rng 3) ~layers:5 ~width:4 ~edge_prob:0.5 in
  let rows = ref [] in
  let prev = ref None in
  List.iter
    (fun k ->
      let p = Vardi.program ~k in
      let stats = Paradb_datalog.Engine.new_stats () in
      let holds, t =
        B.time (fun () -> Paradb_datalog.Engine.goal_holds ~stats db p)
      in
      let derived = float_of_int stats.Paradb_datalog.Engine.derived in
      let growth =
        match !prev with
        | Some d0 -> Printf.sprintf "x%.1f" (derived /. d0)
        | None -> "-"
      in
      prev := Some derived;
      rows :=
        [
          string_of_int k;
          string_of_int (Program.size p);
          string_of_int (Program.max_idb_arity p);
          string_of_bool holds;
          Printf.sprintf "%.0f" derived;
          growth;
          B.pretty_seconds t;
        ]
        :: !rows)
    [ 1; 2; 3 ];
  B.print_table
    ~header:
      [ "k"; "program size"; "IDB arity"; "goal"; "derivations"; "growth";
        "time" ]
    (List.rev !rows);
  print_endline
    "\nProgram size grows linearly in k; the derivation count multiplies by\n\
     roughly n each step — Vardi's unconditional n^k, visible in the data."

(* ------------------------------------------------------------------ *)
(* E-T2: the positive result *)

let t2_scaling_n () =
  header
    "E-T2-N — Theorem 2: acyclic + != scales near-linearly in n (naive \
     does not)";
  (* Disjoint 2-cycles: every length-3 walk repeats a vertex, so the
     all-pairs-distinct chain query is unsatisfiable and both algorithms
     must do their full work — no lucky early witness. *)
  let q =
    Generators.chain_query ~length:3
      ~neq:[ (0, 1); (1, 2); (2, 3); (0, 2); (1, 3); (0, 3) ]
  in
  let family =
    Hashing.Random_trials
      { trials = Hashing.default_trials ~c:3.0 ~k:4; seed = 4 }
  in
  let rows = ref [] in
  let prev_naive = ref None and prev_fpt = ref None in
  List.iter
    (fun n ->
      let db = Generators.two_cycle_database ~pairs:(n / 2) in
      let sat_fpt, t_fpt =
        B.time_median ~runs:3 (fun () -> Engine.is_satisfiable ~family db q)
      in
      let stats = Cq_naive.new_stats () in
      let sat_naive, t_naive =
        B.time_median ~runs:3 (fun () ->
            Cq_naive.is_satisfiable ~stats ~order_atoms:false db q)
      in
      let e_naive =
        match !prev_naive with Some p -> exponent p (n, t_naive) | None -> nan
      in
      let e_fpt =
        match !prev_fpt with Some p -> exponent p (n, t_fpt) | None -> nan
      in
      prev_naive := Some (n, t_naive);
      prev_fpt := Some (n, t_fpt);
      (* q = atoms in the chain query, v = variables, rows = edge tuples. *)
      B.record
        [
          ("name", B.J_string "t2-scaling-n");
          ("n", B.J_int n);
          ("q", B.J_int 3);
          ("v", B.J_int 4);
          ("median_ns", B.J_int (int_of_float (t_fpt *. 1e9)));
          ("rows", B.J_int n);
        ];
      B.record
        [
          ("name", B.J_string "t2-scaling-n-naive");
          ("n", B.J_int n);
          ("q", B.J_int 3);
          ("v", B.J_int 4);
          ("median_ns", B.J_int (int_of_float (t_naive *. 1e9)));
          ("rows", B.J_int n);
        ];
      rows :=
        [
          string_of_int n;
          string_of_bool (sat_fpt = sat_naive && not sat_fpt);
          B.pretty_seconds t_fpt;
          fmt_exp e_fpt;
          B.pretty_seconds t_naive;
          fmt_exp e_naive;
          string_of_int (stats.Cq_naive.probes / 3);
        ]
        :: !rows)
    [ 250; 500; 1000; 2000; 4000 ];
  B.print_table
    ~header:
      [ "n (nodes)"; "agree (unsat)"; "t FPT decide"; "exp"; "t naive"; "exp";
        "naive probes" ]
    (List.rev !rows);
  print_endline
    "\nOn guaranteed-negative instances the Theorem-2 engine's exponent\n\
     stays near 1 while the backtracking baseline's sits near 2: the\n\
     inequalities no longer push the database size into the exponent."

let t2_scaling_k () =
  header "E-T2-K — Theorem 2: the parameter pays only a f(k) factor";
  let n = 60 in
  let rows = ref [] in
  List.iter
    (fun k ->
      let g, _ = Graph.planted_path (rng (k * 5)) n 0.02 k in
      let trials = Hashing.default_trials ~c:3.0 ~k in
      let family = Hashing.Random_trials { trials; seed = k } in
      let found_cc, t_cc =
        B.time (fun () -> Color_coding.has_simple_path ~family g k)
      in
      let found_bt, t_bt = B.time (fun () -> Graph.has_simple_path g k) in
      rows :=
        [
          string_of_int k;
          string_of_int trials;
          string_of_bool found_cc;
          string_of_bool (found_cc = found_bt);
          B.pretty_seconds t_cc;
          B.pretty_seconds t_bt;
        ]
        :: !rows)
    [ 2; 3; 4; 5; 6 ];
  B.print_table
    ~header:
      [ "k"; "trials (3e^k)"; "found"; "agrees"; "t color-coding";
        "t backtracking" ]
    (List.rev !rows);
  print_endline
    "\nThe trial budget c*e^k grows exponentially in k — but only in k;\n\
     the per-trial work stays almost linear in the database."

let t2_colorings () =
  header
    "E-T2-PROB — Theorem 2: success probability of a random coloring \
     (paper bound: l!/l^k >= e^-k)";
  let n = 40 in
  let rows = ref [] in
  List.iter
    (fun k ->
      let g, _ = Graph.planted_path (rng (k * 17)) n 0.015 k in
      let db = Color_coding.graph_database g in
      let q = Color_coding.path_query ~k in
      let q = Cq.make ~name:q.Cq.name ~constraints:q.Cq.constraints ~head:[] q.Cq.body in
      let trials = 400 in
      let family = Hashing.Random_trials { trials; seed = 1234 + k } in
      let domain = Value.Set.elements (Database.domain db) in
      let part = Paradb_core.Ineq.partition q in
      let successes = ref 0 in
      let first = ref None in
      let i = ref 0 in
      Seq.iter
        (fun h ->
          incr i;
          if Engine.satisfiable_with db q h then begin
            incr successes;
            if !first = None then first := Some !i
          end)
        (Hashing.functions family ~domain ~k:part.Paradb_core.Ineq.k);
      let fraction = float_of_int !successes /. float_of_int trials in
      rows :=
        [
          string_of_int k;
          string_of_int part.Paradb_core.Ineq.k;
          Printf.sprintf "%.3f" fraction;
          Printf.sprintf "%.3f" (exp (-.float_of_int part.Paradb_core.Ineq.k));
          (match !first with Some i -> string_of_int i | None -> "-");
        ]
        :: !rows)
    [ 3; 4; 5 ];
  B.print_table
    ~header:
      [ "path k"; "|V1|"; "empirical success"; "e^-|V1| bound";
        "first success at trial" ]
    (List.rev !rows);
  print_endline
    "\nEvery row's empirical success rate is at or above the paper's e^-k\n\
     lower bound, so c*e^k trials suffice with probability 1 - e^-c."

let t2_output () =
  header "E-T2-OUT — Theorem 2: evaluation is output-sensitive";
  (* |V1| = 2, so c.e^k random colorings evaluate the query; each output
     tuple is found by a given coloring with probability >= e^-2, so with
     c = 6 a tuple is missed with probability < 0.5%. *)
  let family =
    Hashing.Random_trials
      { trials = Hashing.default_trials ~c:6.0 ~k:2; seed = 6 }
  in
  let rows = ref [] in
  List.iter
    (fun assignments ->
      let db, q =
        Generators.employees_multi_project (rng assignments)
          ~employees:(assignments / 2) ~projects:8 ~assignments
      in
      let result, t = B.time (fun () -> Engine.evaluate ~family db q) in
      let m = Relation.cardinality result in
      let reference = Cq_naive.evaluate db q in
      let complete = Relation.set_equal result reference in
      rows :=
        [
          string_of_int assignments;
          string_of_int m;
          string_of_bool complete;
          B.pretty_seconds t;
          (if m > 0 then B.pretty_seconds (t /. float_of_int m) else "-");
        ]
        :: !rows)
    [ 200; 400; 800; 1600; 3200 ];
  B.print_table
    ~header:
      [ "|EP| tuples"; "output size m"; "complete"; "t evaluate"; "t / m" ]
    (List.rev !rows);
  print_endline
    "\nTime grows with input and output together (the paper's\n\
     O(g(v) q m n log n)); time per output tuple stays in a narrow band.\n\
     (Completeness of the Monte-Carlo union is checked against brute\n\
     force; the deterministic sweep family trades those odds for an\n\
     O(|D|)-function pass.)"

(* ------------------------------------------------------------------ *)
(* E-HAM: NP-hardness of the combined problem *)

let ham_np () =
  header
    "E-HAM — Section 5: with the query as large as the database \
     (Hamiltonian path), the exponential returns";
  let rows = ref [] in
  List.iter
    (fun n ->
      (* sparse, near the Hamiltonicity threshold: hard both ways *)
      let p = 1.1 *. log (float_of_int n) /. float_of_int n in
      let g = Graph.gnp (rng (n * 3)) n p in
      let q, db = Hamiltonian_to_neq.reduce g in
      let expected, t_bt = B.time (fun () -> Graph.hamiltonian_path g <> None) in
      let got, t = B.time (fun () -> Engine.is_satisfiable db q) in
      rows :=
        [
          string_of_int n;
          string_of_int (Cq.size q);
          string_of_bool expected;
          string_of_bool (got = expected);
          B.pretty_seconds t;
          B.pretty_seconds t_bt;
        ]
        :: !rows)
    [ 4; 5; 6; 7; 8 ];
  B.print_table
    ~header:
      [ "n = k"; "query size"; "hamiltonian"; "correct"; "t engine";
        "t backtracking" ]
    (List.rev !rows);
  print_endline
    "\nHere the parameter k equals n, so the f(k) factor — harmless when k\n\
     is fixed — now grows with the input: combined complexity is\n\
     NP-complete, and the parameterized view is what separates this from\n\
     the fixed-k regime of E-T2-N."

(* ------------------------------------------------------------------ *)
(* E-T3: comparisons *)

let t3_comparisons () =
  header
    "E-T3 — Theorem 3: acyclic queries with < are W[1]-complete (clique \
     embeds)";
  let rows = ref [] in
  List.iter
    (fun (n, k) ->
      let g = Graph.gnp (rng (n * k)) n 0.6 in
      let q, db = Clique_to_comparisons.reduce g ~k in
      let expected = Graph.has_clique g k in
      let stats = Cq_naive.new_stats () in
      let got, t =
        B.time (fun () -> Cq_naive.is_satisfiable ~stats db q)
      in
      rows :=
        [
          string_of_int n;
          string_of_int k;
          string_of_int (Database.size db);
          string_of_int (List.length q.Cq.body);
          string_of_bool (got = expected);
          string_of_int stats.Cq_naive.probes;
          B.pretty_seconds t;
        ]
        :: !rows)
    [ (6, 2); (8, 2); (6, 3); (8, 3); (10, 3) ];
  B.print_table
    ~header:[ "n"; "k"; "db tuples"; "atoms"; "correct"; "probes"; "time" ]
    (List.rev !rows);
  print_endline
    "\nThe encoded database carries n^3 tuples and the only evaluator is\n\
     the naive one: no analogue of Theorem 2 exists for < constraints."

(* ------------------------------------------------------------------ *)
(* Ablations *)

let ablation_families () =
  header "A-FAMILY — hash family strategies, satisfiable vs unsatisfiable";
  let q =
    Generators.chain_query ~length:3
      ~neq:[ (0, 1); (1, 2); (2, 3); (0, 2); (1, 3); (0, 3) ]
  in
  let sat_db = Generators.edge_database (rng 8) ~nodes:40 ~edges:200 in
  let unsat_db = Generators.two_cycle_database ~pairs:20 in
  let rows = ref [] in
  let run instance db name family =
    let reference = Cq_naive.is_satisfiable db q in
    let stats = Engine.new_stats () in
    let got, t =
      B.time (fun () -> Engine.is_satisfiable ~family ~stats db q)
    in
    rows :=
      [
        instance;
        name;
        string_of_bool (got = reference);
        string_of_int stats.Engine.trials;
        B.pretty_seconds t;
      ]
      :: !rows
  in
  let random =
    Hashing.Random_trials
      { trials = Hashing.default_trials ~c:3.0 ~k:4; seed = 2 }
  in
  run "satisfiable" sat_db "random 3e^k" random;
  run "satisfiable" sat_db "multiplicative sweep" Hashing.Multiplicative_sweep;
  run "unsatisfiable" unsat_db "random 3e^k" random;
  run "unsatisfiable" unsat_db "multiplicative sweep" Hashing.Multiplicative_sweep;
  B.print_table
    ~header:[ "instance"; "family"; "correct"; "colorings run"; "time" ]
    (List.rev !rows);
  print_endline
    "\nOn satisfiable instances both families exit at the first working\n\
     coloring; on unsatisfiable ones the random family runs its whole\n\
     3e^k budget (a Monte-Carlo 'probably empty') while the sweep runs\n\
     O(|D|) functions for a certain answer."

let ablation_i2_placement () =
  header
    "A-I2 — pushing same-atom inequalities into the selections vs \
     checking everything at the root";
  let db = Generators.edge_database (rng 10) ~nodes:60 ~edges:360 in
  let q0 = Generators.chain_query ~length:3 ~neq:[] in
  let all_pairs =
    [ (0, 1); (1, 2); (2, 3); (0, 2); (1, 3); (0, 3) ]
  in
  let constraints =
    List.map
      (fun (i, j) ->
        Constr.neq (Term.var (Printf.sprintf "x%d" i))
          (Term.var (Printf.sprintf "x%d" j)))
      all_pairs
  in
  let pushed =
    Cq.make ~name:"ans" ~constraints ~head:q0.Cq.head q0.Cq.body
  in
  let formula = Ineq_formula.of_conjunction constraints in
  let r1, t_pushed = B.time (fun () -> Engine.evaluate db pushed) in
  let r2, t_root = B.time (fun () -> Engine.evaluate_formula db q0 formula) in
  B.print_table ~header:[ "placement"; "rows"; "time" ]
    [
      [ "I1/I2 split (Theorem 2)"; string_of_int (Relation.cardinality r1);
        B.pretty_seconds t_pushed ];
      [ "all at root (formula mode)"; string_of_int (Relation.cardinality r2);
        B.pretty_seconds t_root ];
    ];
  Printf.printf "\nresults agree: %b\n" (Relation.set_equal r1 r2);
  print_endline
    "Pushing I2 into the per-atom selections and checking I1 at the\n\
     subtree meeting points (Lemma 1) beats hauling every shadow\n\
     attribute to the root."

let ablation_seminaive () =
  header "A-DATALOG — naive vs semi-naive bottom-up";
  let db = Generators.edge_database (rng 11) ~nodes:30 ~edges:90 in
  let tc =
    Parser.parse_program "tc(X, Y) :- e(X, Y). tc(X, Z) :- e(X, Y), tc(Y, Z)."
      ~goal:"tc"
  in
  let rows = ref [] in
  List.iter
    (fun (name, strategy) ->
      let stats = Paradb_datalog.Engine.new_stats () in
      let r, t =
        B.time (fun () -> Paradb_datalog.Engine.evaluate ~strategy ~stats db tc)
      in
      rows :=
        [
          name;
          string_of_int (Relation.cardinality r);
          string_of_int stats.Paradb_datalog.Engine.rounds;
          string_of_int stats.Paradb_datalog.Engine.derived;
          B.pretty_seconds t;
        ]
        :: !rows)
    [ ("naive", Paradb_datalog.Engine.Naive);
      ("semi-naive", Paradb_datalog.Engine.Seminaive) ];
  B.print_table
    ~header:[ "strategy"; "|tc|"; "rounds"; "derivations"; "time" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E-AW: alternating quantification (Section 4's AW classes) *)

let aw_alternating () =
  header
    "E-AW — Section 4: alternating quantification (AW[P] hardness, \
     AW[SAT] membership)";
  let module A = Paradb_wsat.Alternating in
  let rows = ref [] in
  List.iter
    (fun (label, quants) ->
      let c =
        Qgen_db.monotone_circuit (rng (String.length label * 7)) ~n_inputs:4
          ~n_gates:4
      in
      let r = List.length quants in
      let blocks =
        List.mapi
          (fun i q ->
            { A.quantifier = q;
              vars = List.filter (fun v -> v mod r = i) (List.init 4 Fun.id);
              weight = 1 })
          quants
        |> List.filter (fun b -> b.A.vars <> [])
      in
      let expected = A.holds_circuit c blocks in
      let (fo, db), t_red =
        B.time (fun () -> Alternating_to_fo.reduce c blocks)
      in
      let got, t_eval = B.time (fun () -> Fo_naive.sentence_holds db fo) in
      rows :=
        [
          label;
          string_of_int (A.parameter blocks);
          string_of_int (Fo.size fo);
          string_of_int (Fo.num_vars fo);
          string_of_bool (got = expected);
          B.pretty_seconds (t_red +. t_eval);
        ]
        :: !rows)
    [ ("E", [ A.Q_exists ]);
      ("EA", [ A.Q_exists; A.Q_forall ]);
      ("AE", [ A.Q_forall; A.Q_exists ]);
      ("EAE", [ A.Q_exists; A.Q_forall; A.Q_exists ]) ];
  B.print_table
    ~header:[ "prefix"; "parameter"; "query size"; "v"; "equivalent"; "time" ]
    (List.rev !rows);
  print_endline
    "\nThe Theorem-1 circuit reduction adapts to quantifier blocks: the\n\
     query gains the psi_i block-discipline formulas and keeps the fixed\n\
     schema (AW[P]-hardness for parameter v).";
  (* membership: prenex FO -> alternating weighted formula *)
  let db = Parser.parse_facts "e(1, 2). e(2, 3). e(3, 1). u(2)." in
  let rows = ref [] in
  List.iter
    (fun text ->
      let f = Parser.parse_fo text in
      let expected = Fo_naive.sentence_holds db f in
      let lab, t = B.time (fun () -> Fo_to_awsat.reduce db f) in
      let got, t2 = B.time (fun () -> Fo_to_awsat.holds lab) in
      rows :=
        [
          text;
          string_of_int
            (Paradb_wsat.Alternating.parameter lab.Fo_to_awsat.blocks);
          string_of_int lab.Fo_to_awsat.n_vars;
          string_of_bool (got = expected);
          B.pretty_seconds (t +. t2);
        ]
        :: !rows)
    [ "forall X. exists Y. e(X, Y)";
      "exists X. forall Y. (e(Y, X) -> u(Y))";
      "forall X Y. (e(X, Y) -> exists Z. e(Y, Z))" ];
  B.print_table
    ~header:[ "sentence"; "parameter"; "bool vars"; "equivalent"; "time" ]
    (List.rev !rows);
  print_endline
    "\nOne weight-1 block of z_{i,c} variables per quantifier: prenex FO\n\
     sentences live in AW[SAT], with the quantifier count as the parameter."

(* ------------------------------------------------------------------ *)
(* E-EXPR: footnote 1's third kind of complexity *)

let expression_complexity () =
  header
    "E-EXPR — footnote 1: expression complexity (database fixed, query      grows)";
  (* a fixed K4 (24 directed edge tuples); chains that must end at an
     unreachable sink force the full 3^l exploration before failing *)
  let k4 = Graph.complete_graph 4 in
  let db =
    Paradb_core.Color_coding.graph_database k4
  in
  let rows = ref [] in
  let prev = ref None in
  List.iter
    (fun l ->
      let x i = Term.var (Printf.sprintf "x%d" i) in
      let q =
        Cq.make ~head:[]
          (List.init l (fun i -> Atom.make "e" [ x i; x (i + 1) ])
          @ [ Atom.make "e" [ x l; Term.int 99 ] ])
      in
      let stats = Cq_naive.new_stats () in
      let sat, t =
        B.time (fun () ->
            Cq_naive.is_satisfiable ~stats ~order_atoms:false db q)
      in
      let probes = float_of_int stats.Cq_naive.probes in
      let growth =
        match !prev with
        | Some p -> Printf.sprintf "x%.1f" (probes /. p)
        | None -> "-"
      in
      prev := Some probes;
      rows :=
        [
          string_of_int (Cq.size q);
          string_of_int (Cq.num_vars q);
          string_of_bool sat;
          Printf.sprintf "%.0f" probes;
          growth;
          B.pretty_seconds t;
        ]
        :: !rows)
    [ 2; 4; 6; 8; 10 ];
  B.print_table
    ~header:[ "q (size)"; "v"; "sat"; "probes"; "growth"; "time" ]
    (List.rev !rows);
  print_endline
    "\nWith the database pinned to a K4, the work still multiplies by ~9\n\
     per two extra atoms (3^l partial chains): expression complexity\n\
     tracks combined complexity, which is why the paper leaves it\n\
     undifferentiated (footnote 1)."

(* ------------------------------------------------------------------ *)
(* E-W2: dominating set, the canonical W[2] problem, as an FO query *)

let w2_dominating () =
  header
    "E-W2 — dominating set (W[2]-complete) as a first-order query with      one alternation";
  let rows = ref [] in
  List.iter
    (fun (n, k) ->
      let g = Graph.gnp (rng (n * 31 + k)) n (2.0 /. float_of_int n) in
      let expected, t_bt = B.time (fun () -> Graph.has_dominating_set g k) in
      let fo, db = Dominating_to_fo.reduce g ~k in
      let got, t_fo = B.time (fun () -> Fo_naive.sentence_holds db fo) in
      rows :=
        [
          string_of_int n;
          string_of_int k;
          string_of_bool expected;
          string_of_bool (got = expected);
          string_of_int (Fo.num_vars fo);
          B.pretty_seconds t_fo;
          B.pretty_seconds t_bt;
        ]
        :: !rows)
    [ (10, 2); (14, 2); (10, 3); (14, 3); (18, 3) ];
  (* a positive instance: one apex vertex dominates everything *)
  let g = Graph.add_apex_clique (Graph.gnp (rng 77) 12 0.1) 1 in
  let fo, db = Dominating_to_fo.reduce g ~k:1 in
  rows :=
    [ "13 (apex)"; "1"; "true";
      string_of_bool (Fo_naive.sentence_holds db fo = Graph.has_dominating_set g 1);
      "2"; "-"; "-" ]
    :: !rows;
  B.print_table
    ~header:
      [ "n"; "k"; "dominating?"; "correct"; "v (= k+1)"; "t FO eval";
        "t brute force" ]
    (List.rev !rows);
  print_endline
    "\nThe FO query has k+1 variables and one forall: active-domain\n\
     evaluation costs n^{k+1} — the W[2] problem sits exactly where the\n\
     first-order row of Theorem 1 predicts."

(* ------------------------------------------------------------------ *)
(* E-CM: Chandra-Merlin containment has the same parametric face *)

let cm_containment () =
  header
    "E-CM — Chandra-Merlin containment: clique-hard in the contained-in      query";
  let rows = ref [] in
  List.iter
    (fun k ->
      let n = 10 in
      let g = Graph.multipartite_gnp (rng (k * 101)) n (k - 1) 0.6 in
      let clique_q, db = Clique_to_cq.reduce g ~k in
      (* freeze the graph itself as a Boolean query *)
      let graph_q =
        Cq.make ~name:"p" ~head:[]
          (List.map
             (fun row ->
               Atom.make "g"
                 [ Term.var ("v" ^ Value.to_string row.(0));
                   Term.var ("v" ^ Value.to_string row.(1)) ])
             (Relation.tuples (Database.find db "g")))
      in
      let expected = Graph.has_clique g k in
      let got, t =
        B.time (fun () ->
            Paradb_containment.Containment.contained graph_q clique_q)
      in
      rows :=
        [
          string_of_int k;
          string_of_int (List.length graph_q.Cq.body);
          string_of_int (List.length clique_q.Cq.body);
          string_of_bool (got = expected);
          B.pretty_seconds t;
        ]
        :: !rows)
    [ 3; 4; 5 ];
  B.print_table
    ~header:
      [ "k"; "|Q1| atoms"; "|Q2| atoms"; "matches clique search"; "time" ]
    (List.rev !rows);
  (* minimization workload *)
  let rows = ref [] in
  List.iter
    (fun seed ->
      let r = rng seed in
      let q0 = Qgen_db.tree_query r in
      (* duplicate some atoms under renamed variables to create redundancy *)
      let renamed = Cq.rename (fun v -> v ^ "r") q0 in
      let q =
        Cq.make ~name:"g" ~head:[] (q0.Cq.body @ renamed.Cq.body)
      in
      let m, t = B.time (fun () -> Paradb_containment.Containment.minimize q) in
      rows :=
        [
          string_of_int seed;
          string_of_int (List.length q.Cq.body);
          string_of_int (List.length m.Cq.body);
          B.pretty_seconds t;
        ]
        :: !rows)
    [ 1; 2; 3; 4 ];
  B.print_table
    ~header:[ "seed"; "atoms"; "core atoms"; "time" ]
    (List.rev !rows);
  print_endline
    "\nA disjoint renamed copy of a Boolean query always folds back onto\n\
     the core of the original: minimization strips both the copy and any\n\
     redundancy the original already had."

(* ------------------------------------------------------------------ *)
(* Ablations: join algorithms and path algorithms *)

let ablation_joins () =
  header "A-JOIN — evaluator and join-algorithm choices on one acyclic query";
  let db = Generators.edge_database (rng 12) ~nodes:800 ~edges:3200 in
  let q = Generators.chain_query ~length:3 ~neq:[] in
  let rows = ref [] in
  let run name f =
    let r, t = B.time f in
    rows :=
      [ name; string_of_int (Relation.cardinality r); B.pretty_seconds t ]
      :: !rows;
    r
  in
  let reference = run "naive backtracking" (fun () -> Cq_naive.evaluate db q) in
  let check r = Relation.set_equal r reference in
  let r1 =
    run "join-based (hash)" (fun () -> Paradb_eval.Join_eval.evaluate db q)
  in
  let r2 =
    run "join-based (sort-merge)" (fun () ->
        Paradb_eval.Join_eval.evaluate
          ~algorithm:Paradb_eval.Join_eval.Sort_merge db q)
  in
  let r3 =
    run "yannakakis" (fun () -> Paradb_yannakakis.Yannakakis.evaluate db q)
  in
  B.print_table ~header:[ "evaluator"; "rows"; "time" ] (List.rev !rows);
  Printf.printf "\nall agree: %b\n" (check r1 && check r2 && check r3)

let ablation_path_algorithms () =
  header
    "A-PATH — three routes to a simple path: generic engine, direct DP, \
     backtracking";
  let rows = ref [] in
  List.iter
    (fun (label, g, k) ->
      let expected = Graph.has_simple_path g k in
      let family =
        Hashing.Random_trials
          { trials = Hashing.default_trials ~c:3.0 ~k; seed = 5 }
      in
      let e1, t_engine =
        B.time (fun () -> Color_coding.has_simple_path ~family g k)
      in
      let e2, t_dp =
        B.time (fun () ->
            Color_coding.has_simple_path_dp
              ~trials:(Hashing.default_trials ~c:3.0 ~k) g k)
      in
      let _, t_bt = B.time (fun () -> Graph.has_simple_path g k) in
      rows :=
        [
          label;
          string_of_int k;
          string_of_bool expected;
          string_of_bool (e1 = expected && e2 = expected);
          B.pretty_seconds t_engine;
          B.pretty_seconds t_dp;
          B.pretty_seconds t_bt;
        ]
        :: !rows)
    [ ("planted, sparse", fst (Graph.planted_path (rng 21) 60 0.02 5), 5);
      ("planted, sparse", fst (Graph.planted_path (rng 22) 60 0.02 6), 6);
      ( "no long path",
        Graph.of_edges 40 (List.init 20 (fun i -> (2 * i, (2 * i) + 1))),
        3 ) ];
  B.print_table
    ~header:
      [ "instance"; "k"; "path?"; "correct"; "t engine"; "t DP"; "t backtrack" ]
    (List.rev !rows);
  print_endline
    "\nThe direct Alon-Yuster-Zwick DP pays 2^k per coloring where the\n\
     generic engine pays relational-join overhead; both inherit the same\n\
     e^k trial budget.  Generality costs a constant factor, not the\n\
     exponent."

let ablation_prereduce () =
  header
    "A-PREREDUCE — one h-independent semijoin pass before the colorings";
  (* unsatisfiable core (2-cycles) drowned in dangling pendant edges:
     the reducer deletes the pendants once; without it, every one of the
     164 colorings rediscovers them *)
  let pairs = 400 in
  let pendants = 4000 in
  let core =
    Paradb_relational.Database.find
      (Generators.two_cycle_database ~pairs) "e"
  in
  let pendant_rows =
    List.init pendants (fun i ->
        [| Value.Int ((2 * pairs) + (2 * i));
           Value.Int ((2 * pairs) + (2 * i) + 1) |])
  in
  let db =
    Database.of_relations
      [ Relation.of_set ~name:"e" ~schema:[ "a"; "b" ]
          (Paradb_relational.Tuple.Set.union
             (Relation.tuple_set core)
             (Paradb_relational.Tuple.Set.of_list pendant_rows)) ]
  in
  let q =
    Generators.chain_query ~length:3
      ~neq:[ (0, 1); (1, 2); (2, 3); (0, 2); (1, 3); (0, 3) ]
  in
  let family =
    Hashing.Random_trials
      { trials = Hashing.default_trials ~c:3.0 ~k:4; seed = 3 }
  in
  let rows = ref [] in
  List.iter
    (fun (label, prereduce) ->
      let stats = Engine.new_stats () in
      let got, t =
        B.time (fun () -> Engine.is_satisfiable ~prereduce ~family ~stats db q)
      in
      rows :=
        [
          label;
          string_of_bool got;
          string_of_int stats.Engine.peak_rows;
          B.pretty_seconds t;
        ]
        :: !rows)
    [ ("with prereduce", true); ("without", false) ];
  B.print_table
    ~header:[ "variant"; "answer"; "peak intermediate rows"; "time" ]
    (List.rev !rows);
  print_endline
    "\nDangling tuples cannot appear in any Q_h, so reducing once before\n\
     the coloring loop shrinks every trial's intermediate relations."

(* ------------------------------------------------------------------ *)
(* E-SERVER: the resident server — plan-cache effect and concurrent
   throughput *)

let server_throughput () =
  header
    "E-SERVER — paradb serve: plan-cache effect and concurrent throughput";
  let module Server = Paradb_server.Server in
  let module Client = Paradb_server.Client in
  let module Protocol = Paradb_server.Protocol in
  (* the pool is the parallelism; keep the engine's own trial fan-out off *)
  Unix.putenv "PARADB_DOMAINS" "1";
  let db = Generators.edge_database (rng 14) ~nodes:60 ~edges:120 in
  let path = Filename.temp_file "paradb_bench" ".facts" in
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Fact_format.to_string db));
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let server = Server.start ~port:0 ~workers:4 ~cache_capacity:128 () in
  Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
  let port = Server.port server in
  let expect c line =
    match Client.request_line c line with
    | Protocol.Ok_ _ -> ()
    | Protocol.Err e -> failwith ("server-throughput: " ^ e)
  in
  Client.with_connection ~port (fun c ->
      expect c (Printf.sprintf "LOAD g %s" path));
  (* A long acyclic chain: evaluation on a small database is cheap, so
     the cold/warm gap isolates what the cache skips — acyclicity test,
     join-tree construction, inequality partition, interning.  The salt
     constant forces a fresh cache key without changing the query's
     structure, engine dispatch, or cost. *)
  let chain ~salt len =
    let x i = Printf.sprintf "X%d" i in
    let atoms =
      List.init len (fun i -> Printf.sprintf "e(%s, %s)" (x i) (x (i + 1)))
    in
    let salt = Printf.sprintf "%s != %d" (x 0) (1_000_000 + salt) in
    Printf.sprintf "ans(%s, %s) :- %s." (x 0) (x len)
      (String.concat ", " (atoms @ [ salt ]))
  in
  let time_eval c q =
    let t0 = Unix.gettimeofday () in
    expect c (Printf.sprintf "EVAL g auto %s" q);
    Unix.gettimeofday () -. t0
  in
  let median samples =
    let a = List.sort compare samples in
    List.nth a (List.length a / 2)
  in
  let len = 24 and samples = 40 in
  (* A second server with governance on but unexercised: generous limits
     on every axis, so its delta against the ungoverned warm median is
     pure bookkeeping — budget allocation per request, strided deadline
     polls in the engines, the bounded request reader, and the row-cap
     cardinality check.  Warm samples are interleaved request-by-request
     across the two servers so both see the same heap and cache state;
     back-to-back blocks drift by far more than the effect measured. *)
  let gov_limits =
    let module Guard = Paradb_server.Guard in
    {
      Guard.deadline_ns = Some 60_000_000_000;
      max_line = Guard.default_limits.Guard.max_line;
      max_rows = Some 1_000_000;
      idle_timeout = Some 300.0;
    }
  in
  let gov =
    Server.start ~limits:gov_limits ~port:0 ~workers:4 ~cache_capacity:128 ()
  in
  Fun.protect ~finally:(fun () -> Server.stop gov) @@ fun () ->
  let cold_warm =
    Client.with_connection ~port:(Server.port gov) (fun cg ->
        expect cg (Printf.sprintf "LOAD g %s" path);
        Client.with_connection ~port (fun c ->
            (* distinct salts keep the structure (and cost) fixed while
               forcing a fresh cache key per issue: every one is a miss *)
            let cold =
              List.init samples (fun s -> time_eval c (chain ~salt:s len))
            in
            (* one fixed query, re-issued: a hit every time after the
               first *)
            let q = chain ~salt:samples len in
            ignore (time_eval c q);
            let warm = List.init samples (fun _ -> time_eval c q) in
            (* The salted chain runs the randomized trial driver, whose
               stochastic trial count swamps a percent-level comparison;
               the governance delta is measured on a deterministic
               Yannakakis chain instead, where the only difference
               between the two servers is the bookkeeping itself. *)
            let det =
              let x i = Printf.sprintf "X%d" i in
              let atoms =
                List.init len (fun i ->
                    Printf.sprintf "e(%s, %s)" (x i) (x (i + 1)))
              in
              Printf.sprintf "ans(%s, %s) :- %s." (x 0) (x len)
                (String.concat ", " atoms)
            in
            ignore (time_eval c det);
            ignore (time_eval cg det);
            (* alternating the order inside each pair cancels the
               single-core ordering bias (GC debt from the first request
               is paid during the second) *)
            let pairs =
              List.init (5 * samples) (fun i ->
                  if i mod 2 = 0 then
                    let w = time_eval c det in
                    let g = time_eval cg det in
                    (w, g)
                  else
                    let g = time_eval cg det in
                    let w = time_eval c det in
                    (w, g))
            in
            ( median cold,
              median warm,
              median (List.map fst pairs),
              median (List.map snd pairs),
              median (List.map (fun (w, g) -> g /. w) pairs) )))
  in
  let cold, warm, governance_baseline, governed_warm, pair_ratio =
    cold_warm
  in
  (* the per-pair ratio is robust to drift across the run; the medians of
     each column are reported alongside for absolute scale *)
  let governance_overhead = pair_ratio -. 1.0 in
  (* A third server that persists its catalog.  --data-dir must not
     touch the warm path: EVAL reads the same immutable in-memory
     snapshot, and segments are consulted only at LOAD, FACT, and
     attach time.  Also timed: a cold restart whose startup re-attaches
     the segment store the LOAD below wrote. *)
  let dd_dir = Filename.temp_file "paradb_bench" ".data" in
  Sys.remove dd_dir;
  Unix.mkdir dd_dir 0o755;
  Fun.protect ~finally:(fun () -> remove_tree dd_dir) @@ fun () ->
  let det_q =
    let x i = Printf.sprintf "X%d" i in
    let atoms =
      List.init len (fun i -> Printf.sprintf "e(%s, %s)" (x i) (x (i + 1)))
    in
    Printf.sprintf "ans(%s, %s) :- %s." (x 0) (x len)
      (String.concat ", " atoms)
  in
  let datadir_warm, datadir_ratio =
    let dd =
      Server.start ~data_dir:dd_dir ~port:0 ~workers:4 ~cache_capacity:128 ()
    in
    Fun.protect ~finally:(fun () -> Server.stop dd) @@ fun () ->
    Client.with_connection ~port:(Server.port dd) (fun cd ->
        expect cd (Printf.sprintf "LOAD g %s" path);
        (* interleaved pairs against the plain server, as in the
           governance comparison: back-to-back blocks drift by more
           than any real warm-path difference *)
        Client.with_connection ~port (fun c ->
            ignore (time_eval cd det_q);
            ignore (time_eval c det_q);
            let pairs =
              List.init (5 * samples) (fun i ->
                  if i mod 2 = 0 then
                    let w = time_eval c det_q in
                    let d = time_eval cd det_q in
                    (w, d)
                  else
                    let d = time_eval cd det_q in
                    let w = time_eval c det_q in
                    (w, d))
            in
            ( median (List.map snd pairs),
              median (List.map (fun (w, d) -> d /. w) pairs) )))
  in
  let attach_s =
    let t0 = Unix.gettimeofday () in
    let dd =
      Server.start ~data_dir:dd_dir ~port:0 ~workers:4 ~cache_capacity:128 ()
    in
    let dt = Unix.gettimeofday () -. t0 in
    Server.stop dd;
    dt
  in
  (* concurrent throughput over a warm cache *)
  let clients = 4 and requests = 200 in
  let mixed =
    [
      chain ~salt:(samples + 1) 3;
      "ans(X, Y) :- e(X, Z), e(Z, Y), X != Y.";
      "ans(X, Y) :- e(X, Y), X < Y.";
      "ans(X) :- e(X, X).";
    ]
  in
  let t0 = Unix.gettimeofday () in
  let domains =
    List.init clients (fun id ->
        Domain.spawn (fun () ->
            Client.with_connection ~port (fun c ->
                for r = 0 to requests - 1 do
                  let q = List.nth mixed ((r + id) mod List.length mixed) in
                  expect c (Printf.sprintf "EVAL g auto %s" q)
                done)))
  in
  List.iter Domain.join domains;
  let wall = Unix.gettimeofday () -. t0 in
  let qps = float_of_int (clients * requests) /. wall in
  let hits, misses =
    Client.with_connection ~port (fun c ->
        match Client.request_line c "STATS" with
        | Protocol.Err e -> failwith e
        | Protocol.Ok_ { payload; _ } ->
            let get name =
              List.find_map
                (fun l ->
                  match String.split_on_char ' ' l with
                  | [ k; v ] when k = name -> int_of_string_opt v
                  | _ -> None)
                payload
              |> Option.value ~default:0
            in
            (get "server.cache_hits", get "server.cache_misses"))
  in
  let hit_ratio = float_of_int hits /. float_of_int (max 1 (hits + misses)) in
  B.record
    [
      ("name", B.J_string "server-throughput");
      ("n", B.J_int (Database.size db));
      ("q", B.J_int len);
      ("v", B.J_int (len + 1));
      ("median_ns", B.J_int (int_of_float (warm *. 1e9)));
      ("rows", B.J_int (clients * requests));
      ("cold_ns", B.J_int (int_of_float (cold *. 1e9)));
      ("qps", B.J_float qps);
      ("cache_hit_ratio", B.J_float hit_ratio);
      ("cache_faster", B.J_bool (warm < cold));
      ( "governance_baseline_ns",
        B.J_int (int_of_float (governance_baseline *. 1e9)) );
      ("governed_warm_ns", B.J_int (int_of_float (governed_warm *. 1e9)));
      ("governance_overhead", B.J_float governance_overhead);
      ("datadir_warm_ns", B.J_int (int_of_float (datadir_warm *. 1e9)));
      ("datadir_overhead", B.J_float (datadir_ratio -. 1.0));
      ("attach_ns", B.J_int (int_of_float (attach_s *. 1e9)));
    ];
  B.print_table
    ~header:[ "metric"; "value" ]
    [
      [ Printf.sprintf "cold EVAL latency (median of %d)" samples;
        B.pretty_seconds cold ];
      [ Printf.sprintf "warm EVAL latency (median of %d)" samples;
        B.pretty_seconds warm ];
      [ "cache speedup"; B.ratio_string warm cold ];
      [ Printf.sprintf "throughput (%d clients x %d reqs)" clients requests;
        Printf.sprintf "%.0f queries/s" qps ];
      [ "cache hits / misses"; Printf.sprintf "%d / %d" hits misses ];
      [ "cache hit ratio"; Printf.sprintf "%.3f" hit_ratio ];
      [ Printf.sprintf "ungoverned warm EVAL, deterministic (median of %d)"
          (5 * samples);
        B.pretty_seconds governance_baseline ];
      [ Printf.sprintf "governed warm EVAL, deterministic (median of %d)"
          (5 * samples);
        B.pretty_seconds governed_warm ];
      [ "governance overhead (warm path)";
        Printf.sprintf "%+.2f%%" (governance_overhead *. 100.0) ];
      [ Printf.sprintf "--data-dir warm EVAL, deterministic (median of %d)"
          (5 * samples);
        B.pretty_seconds datadir_warm ];
      [ "--data-dir overhead (warm path)";
        Printf.sprintf "%+.2f%%" ((datadir_ratio -. 1.0) *. 100.0) ];
      [ "restart + segment attach (startup wall)";
        B.pretty_seconds attach_s ];
    ];
  print_endline
    "\nA hit skips the per-query analysis (acyclicity test, join tree,\n\
     inequality partition): repeat queries sit strictly below cold ones,\n\
     and the four workers drive one shared, mutex-protected cache.\n\
     With deadlines, row caps, and idle timeouts all armed but never\n\
     tripped, the warm path pays only strided budget polls and the\n\
     bounded reader.  A --data-dir catalog persists every LOAD and FACT\n\
     as checksummed segments but leaves the warm path untouched: EVAL\n\
     reads the same immutable in-memory snapshot either way, and a\n\
     restart re-attaches the store by mmap before accepting clients."

(* ------------------------------------------------------------------ *)
(* E-DURABILITY: the fsync discipline on the durable write path, and
   recovery-on-open over planted crash debris *)

let durability_overhead () =
  header
    "E-DURABILITY — fsync modes on the FACT path (full / async / off) and \
     recovery-on-open over crash debris";
  let module Server = Paradb_server.Server in
  let module Client = Paradb_server.Client in
  let module Protocol = Paradb_server.Protocol in
  let module Durability = Paradb_storage.Durability in
  let module Store = Paradb_storage.Store in
  Unix.putenv "PARADB_DOMAINS" "1";
  let expect c line =
    match Client.request_line c line with
    | Protocol.Ok_ _ -> ()
    | Protocol.Err e -> failwith ("durability-overhead: " ^ e)
  in
  let median samples =
    let a = List.sort compare samples in
    List.nth a (List.length a / 2)
  in
  let mk_dir () =
    let d = Filename.temp_file "paradb_bench" ".data" in
    Sys.remove d;
    Unix.mkdir d 0o755;
    d
  in
  let saved = Durability.mode () in
  Fun.protect ~finally:(fun () -> Durability.set saved) @@ fun () ->
  (* Three persistent catalogs in one process, one per mode.  The mode
     is a process-global atomic read at every sync point, so it can be
     switched fact-by-fact: each triple of FACT round-trips sees the
     same heap, plan cache and page-cache state, and per-triple ratios
     cancel the drift that back-to-back per-mode blocks would keep. *)
  let d_full = mk_dir () and d_async = mk_dir () and d_off = mk_dir () in
  Fun.protect ~finally:(fun () ->
      remove_tree d_full;
      remove_tree d_async;
      remove_tree d_off)
  @@ fun () ->
  let start dir =
    Server.start ~data_dir:dir ~port:0 ~workers:2 ~cache_capacity:16 ()
  in
  let s_full = start d_full and s_async = start d_async and s_off = start d_off in
  Fun.protect ~finally:(fun () ->
      Server.stop s_full;
      Server.stop s_async;
      Server.stop s_off;
      Durability.drain ())
  @@ fun () ->
  Client.with_connection ~port:(Server.port s_full) @@ fun c_full ->
  Client.with_connection ~port:(Server.port s_async) @@ fun c_async ->
  Client.with_connection ~port:(Server.port s_off) @@ fun c_off ->
  let fact_under mode c j =
    Durability.set mode;
    let t0 = Unix.gettimeofday () in
    expect c (Printf.sprintf "FACT g e(%d, %d)." j (j + 1));
    Unix.gettimeofday () -. t0
  in
  (* first write creates each store outside the timed window *)
  List.iter
    (fun (m, c) -> ignore (fact_under m c 0))
    [
      (Durability.Full, c_full);
      (Durability.Async, c_async);
      (Durability.Off, c_off);
    ];
  let samples = 150 in
  let triples =
    List.init samples (fun j ->
        let j = j + 1 in
        let f () = fact_under Durability.Full c_full j
        and a () = fact_under Durability.Async c_async j
        and o () = fact_under Durability.Off c_off j in
        (* rotate the order inside each triple: on one core the first
           request pays any pending GC or flusher debt for the others *)
        match j mod 3 with
        | 0 ->
            let tf = f () in
            let ta = a () in
            let to_ = o () in
            (tf, ta, to_)
        | 1 ->
            let ta = a () in
            let to_ = o () in
            let tf = f () in
            (tf, ta, to_)
        | _ ->
            let to_ = o () in
            let tf = f () in
            let ta = a () in
            (tf, ta, to_))
  in
  Durability.drain ();
  let full_m = median (List.map (fun (f, _, _) -> f) triples) in
  let async_m = median (List.map (fun (_, a, _) -> a) triples) in
  let off_m = median (List.map (fun (_, _, o) -> o) triples) in
  let full_vs_off = median (List.map (fun (f, _, o) -> f /. o) triples) in
  let async_vs_off = median (List.map (fun (_, a, o) -> a /. o) triples) in
  let async_overhead = async_vs_off -. 1.0 in
  (* async must stay within a 10% budget of no-sync: the ack never
     waits on the flusher, so all it can pay is the enqueue and the
     flusher's time-slice on this single core *)
  let budget = 0.10 in
  (* Recovery-on-open: a store with real bulk, delta fragmentation, and
     planted kill -9 debris (an orphaned manifest rename, an orphaned
     segment temp, an unreferenced segment).  The restart must
     quarantine the debris and re-attach by mmap before accepting
     clients; the wall time is the operational recovery cost. *)
  let root = mk_dir () in
  Fun.protect ~finally:(fun () -> remove_tree root) @@ fun () ->
  let dir = Filename.concat root "g" in
  let rec_db = Generators.edge_database (rng 17) ~nodes:200 ~edges:4000 in
  ignore (Store.compact ~dir rec_db);
  for j = 1 to 8 do
    List.iter
      (fun r -> Store.append ~dir r)
      (Database.relations (Generators.edge_database (rng (100 + j)) ~nodes:5 ~edges:5))
  done;
  let plant name =
    Out_channel.with_open_bin (Filename.concat dir name) (fun oc ->
        output_string oc "crash debris, not a segment")
  in
  plant "MANIFEST.tmp";
  plant "seg-000099-e.seg.tmp";
  plant "seg-000042-stray.seg";
  let segments = List.length (Store.entries dir) in
  let recovery_s =
    let t0 = Unix.gettimeofday () in
    let sv = start root in
    let dt = Unix.gettimeofday () -. t0 in
    Server.stop sv;
    dt
  in
  B.record
    [
      ("name", B.J_string "durability-overhead");
      ("facts", B.J_int samples);
      ("full_fact_ns", B.J_int (int_of_float (full_m *. 1e9)));
      ("async_fact_ns", B.J_int (int_of_float (async_m *. 1e9)));
      ("off_fact_ns", B.J_int (int_of_float (off_m *. 1e9)));
      ("full_vs_off", B.J_float full_vs_off);
      ("async_vs_off", B.J_float async_vs_off);
      ("async_overhead", B.J_float async_overhead);
      ("async_within_budget", B.J_bool (async_overhead < budget));
      ("recovery_tuples", B.J_int (Database.size rec_db));
      ("recovery_segments", B.J_int segments);
      ("recovery_orphans", B.J_int 3);
      ("recovery_ns", B.J_int (int_of_float (recovery_s *. 1e9)));
    ];
  B.print_table
    ~header:[ "metric"; "value" ]
    [
      [ Printf.sprintf "FACT latency, full (median of %d)" samples;
        B.pretty_seconds full_m ];
      [ Printf.sprintf "FACT latency, async (median of %d)" samples;
        B.pretty_seconds async_m ];
      [ Printf.sprintf "FACT latency, off (median of %d)" samples;
        B.pretty_seconds off_m ];
      [ "full vs off (median per-triple ratio)";
        Printf.sprintf "×%.2f" full_vs_off ];
      [ "async vs off (median per-triple ratio)";
        Printf.sprintf "%+.2f%% (budget %+.0f%%)" (async_overhead *. 100.0)
          (budget *. 100.0) ];
      [ Printf.sprintf "recovery + attach (%d tuples, %d segments, 3 orphans)"
          (Database.size rec_db) segments;
        B.pretty_seconds recovery_s ];
    ];
  if async_overhead >= budget then
    Printf.printf "\nWARNING: async overhead %.1f%% exceeds the %.0f%% budget\n"
      (async_overhead *. 100.0) (budget *. 100.0);
  print_endline
    "\nFull pays one fsync per file in publish order (segment, manifest,\n\
     directory) before the ack — the price of surviving power loss, not\n\
     just kill -9.  Async queues the same syncs to a background flusher\n\
     and acks immediately: crash atomicity is the rename's, so the only\n\
     cost left is the enqueue.  Recovery-on-open quarantines crash\n\
     debris into orphans/ and re-attaches the manifest's segments by\n\
     mmap before the listener opens."

(* ------------------------------------------------------------------ *)
(* E-COMPILED: the compiled push-based pipeline vs the interpreters *)

let compiled_vs_interpreted () =
  header
    "E-COMPILED — compiled push-based pipeline vs the interpreted engines \
     (warm path: plan + compile amortized, as under a plan-cache hit)";
  let module Planner = Paradb_planner.Planner in
  let module Compile = Paradb_eval.Compile in
  let db = Generators.edge_database (rng 21) ~nodes:600 ~edges:2400 in
  let runs = 9 in
  let cases =
    [
      ( "acyclic chain",
        Generators.chain_query ~length:3 ~neq:[],
        `Yannakakis );
      ( "acyclic chain + !=",
        Generators.chain_query ~length:3 ~neq:[ (0, 3) ],
        `Fpt );
      ( "comparison",
        Parser.parse_cq "ans(X, Y) :- e(X, Z), e(Z, Y), X < Y.",
        `Comparisons );
      ( "cyclic triangle",
        Parser.parse_cq "ans(X) :- e(X, Y), e(Y, Z), e(Z, X).",
        `Naive );
    ]
  in
  let rows = ref [] in
  let all_agree = ref true in
  List.iter
    (fun (label, q, base) ->
      (* the interpreter the old auto dispatch picked for this class *)
      let engine_name, interp =
        match base with
        | `Yannakakis ->
            ( "yannakakis",
              fun () -> Paradb_yannakakis.Yannakakis.evaluate db q )
        | `Fpt ->
            ( "fpt (sweep)",
              fun () ->
                Engine.evaluate ~family:Hashing.Multiplicative_sweep db q )
        | `Comparisons ->
            ("comparisons", fun () -> Paradb_core.Comparisons.evaluate db q)
        | `Naive -> ("naive", fun () -> Cq_naive.evaluate db q)
      in
      let r_interp, t_interp = B.time_median ~runs interp in
      let pplan = Planner.plan q in
      let exec, t_compile =
        B.time_median ~runs:3 (fun () -> Compile.compile pplan db)
      in
      let r_comp, t_warm = B.time_median ~runs (fun () -> Compile.run exec) in
      let agree = Relation.set_equal r_comp r_interp in
      all_agree := !all_agree && agree;
      let speedup = t_interp /. t_warm in
      B.record
        [
          ("name", B.J_string "compiled-vs-interpreted");
          ("query", B.J_string label);
          ("class", B.J_string (Planner.classification_name
                                  pplan.Planner.classification));
          ("baseline_engine", B.J_string engine_name);
          ("n", B.J_int (Database.size db));
          ("rows", B.J_int (Relation.cardinality r_comp));
          ("interpreted_ns", B.J_int (int_of_float (t_interp *. 1e9)));
          ("median_ns", B.J_int (int_of_float (t_warm *. 1e9)));
          ("compile_ns", B.J_int (int_of_float (t_compile *. 1e9)));
          ("speedup", B.J_float speedup);
          ("agree", B.J_bool agree);
        ];
      rows :=
        [
          label;
          engine_name;
          string_of_int (Relation.cardinality r_comp);
          B.pretty_seconds t_interp;
          B.pretty_seconds t_warm;
          B.pretty_seconds t_compile;
          Printf.sprintf "%.1fx" speedup;
          string_of_bool agree;
        ]
        :: !rows)
    cases;
  B.print_table
    ~header:
      [ "query"; "interpreter"; "rows"; "interpreted"; "compiled (warm)";
        "compile once"; "speedup"; "agree" ]
    (List.rev !rows);
  print_endline
    "\nThe compiled pipeline pays planning, per-atom materialization and\n\
     semijoin reduction once at compile time; each warm run is fused\n\
     scan/probe closures over int-code registers — no Value.t decoding,\n\
     no binding allocation, no per-tuple variant dispatch.";
  Printf.printf "all classes agree with their interpreter: %b\n" !all_agree

(* ------------------------------------------------------------------ *)
(* E-COUNT: the Nat-semiring counting pipeline vs the Bool fast path *)

let count_overhead () =
  header
    "E-COUNT — compiled COUNT vs compiled EVAL on the same warm plans \
     (the Bool path is untouched; COUNT swaps dedup barriers for memoized \
     Nat aggregation)";
  let module Planner = Paradb_planner.Planner in
  let module Compile = Paradb_eval.Compile in
  let db = Generators.edge_database (rng 23) ~nodes:600 ~edges:2400 in
  let runs = 9 in
  let cases =
    [
      ("acyclic chain", Generators.chain_query ~length:3 ~neq:[]);
      ("acyclic chain + !=", Generators.chain_query ~length:3 ~neq:[ (0, 3) ]);
      ("boolean head", Parser.parse_cq "ans() :- e(X, Y), e(Y, Z).");
      ("cyclic triangle", Parser.parse_cq "ans(X) :- e(X, Y), e(Y, Z), e(Z, X).");
    ]
  in
  let rows = ref [] in
  let all_agree = ref true in
  List.iter
    (fun (label, q) ->
      let pplan = Planner.plan q in
      let exec = Compile.compile pplan db in
      let cexec = Compile.compile_count pplan db in
      let r_eval, t_eval = B.time_median ~runs (fun () -> Compile.run exec) in
      let n_count, t_count =
        B.time_median ~runs (fun () -> Compile.run_count cexec)
      in
      let agree = n_count = Cq_naive.count db q in
      all_agree := !all_agree && agree;
      let ratio = t_count /. t_eval in
      B.record
        [
          ("name", B.J_string "count-overhead");
          ("query", B.J_string label);
          ("class", B.J_string (Planner.classification_name
                                  pplan.Planner.classification));
          ("n", B.J_int (Database.size db));
          ("rows", B.J_int (Relation.cardinality r_eval));
          ("count", B.J_int n_count);
          ("eval_ns", B.J_int (int_of_float (t_eval *. 1e9)));
          ("median_ns", B.J_int (int_of_float (t_count *. 1e9)));
          ("ratio", B.J_float ratio);
          ("agree", B.J_bool agree);
        ];
      rows :=
        [
          label;
          string_of_int (Relation.cardinality r_eval);
          string_of_int n_count;
          B.pretty_seconds t_eval;
          B.pretty_seconds t_count;
          Printf.sprintf "%.2fx" ratio;
          string_of_bool agree;
        ]
        :: !rows)
    cases;
  B.print_table
    ~header:
      [ "query"; "rows"; "count"; "eval (warm)"; "count (warm)"; "count/eval";
        "agree" ]
    (List.rev !rows);
  print_endline
    "\nCounting valuations skips answer-tuple materialization but keeps\n\
     the same scan/probe pipeline, so warm COUNT tracks warm EVAL; the\n\
     memoized barriers pay off when dedup points collapse many partial\n\
     valuations (boolean heads, projections)."

(* ------------------------------------------------------------------ *)
(* E-COLD-LOAD: text parse vs checksummed mmap segments *)

let cold_load () =
  header
    "E-COLD-LOAD — cold start: streaming text parse vs compact + mmap open";
  let module Store = Paradb_storage.Store in
  let sizes = [ 10_000; 100_000; 1_000_000; 10_000_000 ] in
  let rows = ref [] in
  List.iter
    (fun n ->
      let st = rng n in
      (* write the text form directly: materializing a 10M-tuple
         database first would measure the generator, not the loader *)
      let path = Filename.temp_file "paradb_cold" ".facts" in
      let nodes = max 64 (n / 50) in
      Out_channel.with_open_text path (fun oc ->
          for _ = 1 to n do
            Printf.fprintf oc "e(%d, %d).\n" (Random.State.int st nodes)
              (Random.State.int st nodes)
          done);
      let dir = Filename.temp_file "paradb_cold" ".seg" in
      Sys.remove dir;
      Fun.protect
        ~finally:(fun () ->
          Sys.remove path;
          remove_tree dir)
        (fun () ->
          let parsed, t_parse =
            B.time (fun () ->
                match Source.load_database path with
                | Ok db -> db
                | Error e -> failwith e)
          in
          let seg_bytes, t_compact =
            B.time (fun () -> Store.compact ~dir parsed)
          in
          (* An order-insensitive digest stands in for the parsed
             database during the timed open: keeping 10M live tuples
             around would bill their GC marking to the open, which a
             real cold start (fresh process) never pays.  Both sides
             intern into the global dictionary, so code-row hashes are
             comparable. *)
          let parsed_digest = store_digest parsed in
          let parsed_size = Database.size parsed in
          (* drop the parsed copy before spawning: parent and child
             should not both hold a 10M-tuple database in RAM *)
          let parsed = () in
          ignore parsed;
          Gc.compact ();
          (* The open is timed in a re-exec'd child (--cold-open): an
             operational cold start is a fresh process, and timing the
             decode inside the long-lived bench process would bill it
             for the bench's own heap history.  Median of three child
             runs — single draws swing with background load. *)
          let cold_open () =
            let rd, wr = Unix.pipe () in
            let pid =
              Unix.create_process Sys.executable_name
                [| Sys.executable_name; "--cold-open"; dir |]
                Unix.stdin wr Unix.stderr
            in
            Unix.close wr;
            let ic = Unix.in_channel_of_descr rd in
            let line = In_channel.input_all ic in
            close_in ic;
            ignore (Unix.waitpid [] pid);
            Scanf.sscanf line " %f %d %d" (fun t s d -> (t, s, d))
          in
          let opens = List.init 3 (fun _ -> cold_open ()) in
          let t_open =
            match List.sort compare (List.map (fun (t, _, _) -> t) opens) with
            | [ _; m; _ ] -> m
            | _ -> assert false
          in
          let agree =
            List.for_all
              (fun (_, s, d) -> s = parsed_size && d = parsed_digest)
              opens
          in
          let text_bytes = (Unix.stat path).Unix.st_size in
          B.record
            [
              ("name", B.J_string "cold-load");
              ("n", B.J_int n);
              ("rows", B.J_int parsed_size);
              ("text_bytes", B.J_int text_bytes);
              ("segment_bytes", B.J_int seg_bytes);
              ("parse_ns", B.J_int (int_of_float (t_parse *. 1e9)));
              ("compact_ns", B.J_int (int_of_float (t_compact *. 1e9)));
              ("median_ns", B.J_int (int_of_float (t_open *. 1e9)));
              ("open_speedup", B.J_float (t_parse /. t_open));
              ("agree", B.J_bool agree);
            ];
          rows :=
            [
              string_of_int n;
              string_of_int parsed_size;
              Printf.sprintf "%.1f MB" (float_of_int text_bytes /. 1e6);
              Printf.sprintf "%.1f MB" (float_of_int seg_bytes /. 1e6);
              B.pretty_seconds t_parse;
              B.pretty_seconds t_compact;
              B.pretty_seconds t_open;
              B.ratio_string t_open t_parse;
              string_of_bool agree;
            ]
            :: !rows))
    sizes;
  B.print_table
    ~header:
      [ "tuples"; "distinct"; "text"; "segments"; "text parse"; "compact";
        "mmap open"; "open speedup"; "agree" ]
    (List.rev !rows);
  print_endline
    "\nThe text path re-lexes every byte on every start; the segment path\n\
     pays parsing once at compact time, and a cold open is mmap +\n\
     CRC-validate + column decode into the dictionary-coded row store —\n\
     no tokenization, no per-value boxing, rows presized exactly."

(* ------------------------------------------------------------------ *)
(* E-CLUSTER: scatter-gather throughput vs shard count *)

(* Each shard is a real [paradb serve] subprocess with its own OCaml
   runtime — as deployed, and so shard-side evaluation never shares a
   minor-GC synchronization domain with its peers or the coordinator.
   The ephemeral port is scraped from the shard's startup line. *)
let paradb_binary () =
  let sibling =
    Filename.concat (Filename.dirname Sys.executable_name) "../bin/paradb.exe"
  in
  if Sys.file_exists sibling then sibling
  else
    let from_root = "_build/default/bin/paradb.exe" in
    if Sys.file_exists from_root then from_root
    else failwith "cluster-scaling: build bin/paradb.exe first"

let spawn_paradb args =
  let bin = paradb_binary () in
  let log = Filename.temp_file "paradb_bench_proc" ".log" in
  let fd = Unix.openfile log [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
  let pid =
    Unix.create_process bin (Array.of_list (bin :: args)) Unix.stdin fd fd
  in
  Unix.close fd;
  let port_of text =
    (* "paradb: listening on 127.0.0.1:PORT (...)" *)
    match String.index_opt text ':' with
    | None -> None
    | Some _ ->
        let marker = "127.0.0.1:" in
        let rec find i =
          if i + String.length marker > String.length text then None
          else if String.sub text i (String.length marker) = marker then
            let start = i + String.length marker in
            let stop = ref start in
            while
              !stop < String.length text
              && text.[!stop] >= '0'
              && text.[!stop] <= '9'
            do
              incr stop
            done;
            if !stop > start then
              int_of_string_opt (String.sub text start (!stop - start))
            else None
          else find (i + 1)
        in
        find 0
  in
  let rec wait_port tries =
    if tries = 0 then failwith "cluster-scaling: subprocess did not come up";
    match port_of (In_channel.with_open_text log In_channel.input_all) with
    | Some port -> port
    | None ->
        Unix.sleepf 0.05;
        wait_port (tries - 1)
  in
  let port = wait_port 200 in
  (pid, port, log)

let cluster_scaling () =
  header
    "E-CLUSTER — coordinator scatter-gather: warm EVAL throughput vs shard \
     count (shards are separate processes)";
  let module Client = Paradb_server.Client in
  let module Protocol = Paradb_server.Protocol in
  Unix.putenv "PARADB_DOMAINS" "1";
  let db = Generators.edge_database (rng 31) ~nodes:400 ~edges:1600 in
  let path = Filename.temp_file "paradb_bench_cluster" ".facts" in
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Fact_format.to_string db));
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let expect c line =
    match Client.request_line c line with
    | Protocol.Ok_ { payload; _ } -> payload
    | Protocol.Err e -> failwith ("cluster-scaling: " ^ e)
  in
  (* Warm co-partitioned star join: every atom starts with X, so the
     coordinator scatters the original query and each shard answers
     from its own slice in one round. *)
  let scatter_q = "ans(X, Y, Z) :- e(X, Y), e(X, Z), Y != Z." in
  (* General join: round 1 gathers semijoin-reduced per-atom reducers,
     round 2 joins them at the coordinator. *)
  let exchange_q = "ans(X, Z) :- e(X, Y), e(Y, Z), X != Z." in
  let clients = 4 and requests = 30 in
  let measure shards =
    let kill (pid, _, log) =
      (try Unix.kill pid Sys.sigkill with _ -> ());
      (try ignore (Unix.waitpid [] pid) with _ -> ());
      try Sys.remove log with _ -> ()
    in
    (* every process serves [clients] concurrent connections: the
       coordinator pools one connection per shard per session, so each
       shard sees up to [clients] sessions *)
    let workers = string_of_int clients in
    let children =
      List.init shards (fun _ ->
          spawn_paradb [ "serve"; "--port"; "0"; "--workers"; workers ])
    in
    Fun.protect ~finally:(fun () -> List.iter kill children) @@ fun () ->
    let front =
      spawn_paradb
        [
          "coordinator"; "--port"; "0"; "--workers"; workers; "--shards";
          String.concat ","
            (List.map (fun (_, port, _) -> string_of_int port) children);
        ]
    in
    Fun.protect ~finally:(fun () -> kill front) @@ fun () ->
    let _, port, _ = front in
    let rows =
      Client.with_connection ~timeout:60.0 ~port (fun c ->
          ignore (expect c (Printf.sprintf "LOAD g %s" path));
          (* warm both paths once per shard count *)
          ignore (expect c ("EVAL g auto " ^ scatter_q));
          ignore (expect c ("EVAL g auto " ^ exchange_q));
          List.length (expect c ("EVAL g auto " ^ scatter_q)))
    in
    let qps query =
      let t0 = Unix.gettimeofday () in
      let domains =
        List.init clients (fun _ ->
            Domain.spawn (fun () ->
                Client.with_connection ~timeout:60.0 ~port (fun c ->
                    for _ = 1 to requests do
                      ignore (expect c ("EVAL g auto " ^ query))
                    done)))
      in
      List.iter Domain.join domains;
      float_of_int (clients * requests) /. (Unix.gettimeofday () -. t0)
    in
    (rows, qps scatter_q, qps exchange_q)
  in
  let counts = [ 1; 2; 4 ] in
  let results = List.map (fun s -> (s, measure s)) counts in
  let base_of f =
    match results with (_, r) :: _ -> f r | [] -> assert false
  in
  let scatter_1 = base_of (fun (_, s, _) -> s) in
  let exchange_1 = base_of (fun (_, _, x) -> x) in
  List.iter
    (fun (shards, (rows, scatter_qps, exchange_qps)) ->
      B.record
        [
          ("name", B.J_string "cluster-scaling");
          ("shards", B.J_int shards);
          ("n", B.J_int (Database.size db));
          ("rows", B.J_int rows);
          ("clients", B.J_int clients);
          ("requests", B.J_int (clients * requests));
          ("scatter_qps", B.J_float scatter_qps);
          ("exchange_qps", B.J_float exchange_qps);
          ("scatter_speedup", B.J_float (scatter_qps /. scatter_1));
          ("exchange_speedup", B.J_float (exchange_qps /. exchange_1));
        ])
    results;
  B.print_table
    ~header:
      [ "shards"; "rows"; "scatter qps"; "speedup"; "exchange qps"; "speedup" ]
    (List.map
       (fun (shards, (rows, s, x)) ->
         [
           string_of_int shards;
           string_of_int rows;
           Printf.sprintf "%.1f" s;
           Printf.sprintf "%.2fx" (s /. scatter_1);
           Printf.sprintf "%.1f" x;
           Printf.sprintf "%.2fx" (x /. exchange_1);
         ])
       results);
  print_endline
    "\nEvery answer set is bit-for-bit the single-node one (the cluster\n\
     engine of the differential oracle fuzzes exactly this contract).\n\
     Scatter sends the whole query to each shard and unions fact\n\
     payloads; exchange ships semijoin-reduced per-atom reducers and\n\
     joins at the coordinator.  Scaling requires hardware parallelism:\n\
     shard processes split the per-request evaluation, so the curve\n\
     climbs with the number of cores available to host them."

(* ------------------------------------------------------------------ *)
(* registry + drivers *)

let experiments =
  [
    ("fig1-partial-order", fig1_partial_order);
    ("t1-conjunctive", t1_conjunctive);
    ("t1-conjunctive-v", t1_conjunctive_v);
    ("t1-positive", t1_positive);
    ("t1-positive-v", t1_positive_v);
    ("t1-first-order", t1_first_order);
    ("datalog-vardi", datalog_vardi);
    ("t2-scaling-n", t2_scaling_n);
    ("t2-scaling-k", t2_scaling_k);
    ("t2-colorings", t2_colorings);
    ("t2-output", t2_output);
    ("ham-np", ham_np);
    ("t3-comparisons", t3_comparisons);
    ("aw-alternating", aw_alternating);
    ("expression-complexity", expression_complexity);
    ("w2-dominating", w2_dominating);
    ("cm-containment", cm_containment);
    ("ablation-families", ablation_families);
    ("ablation-joins", ablation_joins);
    ("ablation-paths", ablation_path_algorithms);
    ("ablation-prereduce", ablation_prereduce);
    ("ablation-i2", ablation_i2_placement);
    ("ablation-datalog", ablation_seminaive);
    ("compiled-vs-interpreted", compiled_vs_interpreted);
    ("count-overhead", count_overhead);
    ("server-throughput", server_throughput);
    ("durability-overhead", durability_overhead);
    ("cluster-scaling", cluster_scaling);
    ("cold-load", cold_load);
  ]

(* Bechamel micro-benchmarks: one Test.make per table/figure, small
   representative instances so each fits a sampling quota. *)
let bechamel_suite () =
  let open Bechamel in
  let clique_instance = lazy (Clique_to_cq.reduce (Graph.gnp (rng 1) 14 0.3) ~k:3) in
  let t2_instance =
    lazy
      ( Generators.edge_database (rng 2) ~nodes:120 ~edges:480,
        Generators.chain_query ~length:3 ~neq:[ (0, 2); (1, 3); (0, 3) ] )
  in
  let t3_instance = lazy (Clique_to_comparisons.reduce (Graph.gnp (rng 3) 6 0.5) ~k:2) in
  let ham_instance = lazy (Hamiltonian_to_neq.reduce (Graph.gnp (rng 4) 5 0.5)) in
  let fo_instance =
    lazy
      (let c = Qgen_db.monotone_circuit (rng 5) ~n_inputs:3 ~n_gates:4 in
       Circuit_to_fo.reduce c ~k:2)
  in
  let vardi_instance =
    lazy (Vardi.layered_instance (rng 6) ~layers:4 ~width:3 ~edge_prob:0.5)
  in
  let pos_instance =
    lazy
      (let phi = Formula.random (rng 7) ~n_vars:5 ~depth:2 in
       Wformula_to_positive.reduce ~n_vars:5 phi ~k:2)
  in
  let family = Hashing.Random_trials { trials = 30; seed = 9 } in
  let tests =
    [
      Test.make ~name:"fig1-partial-order"
        (Staged.stage (fun () ->
             let q, db = Lazy.force clique_instance in
             ignore (Cq_naive.is_satisfiable db q)));
      Test.make ~name:"t1-conjunctive"
        (Staged.stage (fun () ->
             let q, db = Lazy.force clique_instance in
             ignore (Cq_to_wsat.reduce db q)));
      Test.make ~name:"t1-conjunctive-v"
        (Staged.stage (fun () ->
             let q, db = Lazy.force clique_instance in
             ignore (Bounded_vars.reduce db q)));
      Test.make ~name:"t1-positive"
        (Staged.stage (fun () ->
             let fo, db = Lazy.force pos_instance in
             ignore (Fo_naive.sentence_holds db fo)));
      Test.make ~name:"t1-first-order"
        (Staged.stage (fun () ->
             let fo, db = Lazy.force fo_instance in
             ignore (Fo_naive.sentence_holds db fo)));
      Test.make ~name:"datalog-vardi"
        (Staged.stage (fun () ->
             ignore
               (Paradb_datalog.Engine.goal_holds (Lazy.force vardi_instance)
                  (Vardi.program ~k:2))));
      Test.make ~name:"t2-engine-decide"
        (Staged.stage (fun () ->
             let db, q = Lazy.force t2_instance in
             ignore (Engine.is_satisfiable ~family db q)));
      Test.make ~name:"t2-engine-evaluate"
        (Staged.stage (fun () ->
             let db, q = Lazy.force t2_instance in
             ignore (Engine.evaluate ~family db q)));
      Test.make ~name:"t2-naive-baseline"
        (Staged.stage (fun () ->
             let db, q = Lazy.force t2_instance in
             ignore (Cq_naive.is_satisfiable db q)));
      Test.make ~name:"ham-np"
        (Staged.stage (fun () ->
             let q, db = Lazy.force ham_instance in
             ignore (Engine.is_satisfiable db q)));
      Test.make ~name:"t3-comparisons"
        (Staged.stage (fun () ->
             let q, db = Lazy.force t3_instance in
             ignore (Cq_naive.is_satisfiable db q)));
      Test.make ~name:"w2-dominating"
        (Staged.stage (fun () ->
             let g = Graph.gnp (rng 15) 8 0.3 in
             let fo, db = Dominating_to_fo.reduce g ~k:2 in
             ignore (Fo_naive.sentence_holds db fo)));
      Test.make ~name:"cm-containment"
        (Staged.stage (fun () ->
             let q1 =
               Parser.parse_cq "ans(X) :- e(X, Y), e(Y, Z), e(X, U), e(U, V)."
             in
             ignore (Paradb_containment.Containment.minimize q1)));
    ]
  in
  let grouped = Test.make_grouped ~name:"paradb" tests in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  print_endline "\n### Bechamel micro-benchmarks (ns per run)\n";
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> B.pretty_seconds (e /. 1e9)
          | _ -> "-"
        in
        [ name; est ] :: acc)
      results []
  in
  B.print_table ~header:[ "benchmark"; "time/run" ]
    (List.sort compare rows)

let usage () =
  print_endline
    "usage: main.exe [--list | --only <id> | --bechamel] [--json <file>]";
  print_endline "experiments:";
  List.iter (fun (name, _) -> Printf.printf "  %s\n" name) experiments

let () =
  (* child mode for the cold-load experiment: open a segment store in
     a genuinely fresh process and report {open time, size, digest} on
     stdout.  See cold_load. *)
  (match Sys.argv with
  | [| _; "--cold-open"; dir |] ->
      (try
         let db, t =
           B.time (fun () -> Paradb_storage.Store.open_dir dir)
         in
         Printf.printf "%f %d %d\n" t (Database.size db) (store_digest db)
       with e -> Printf.printf "ERR %s\n" (Printexc.to_string e));
      exit 0
  | _ -> ());
  let only = ref None and json = ref None and mode = ref `Run in
  let rec parse = function
    | [] -> ()
    | "--list" :: rest ->
        mode := `List;
        parse rest
    | "--bechamel" :: rest ->
        mode := `Bechamel;
        parse rest
    | "--only" :: id :: rest ->
        only := Some id;
        parse rest
    | "--json" :: file :: rest ->
        json := Some file;
        parse rest
    | _ ->
        usage ();
        exit 1
  in
  parse (List.tl (Array.to_list Sys.argv));
  Paradb_telemetry.Trace.init_from_env ();
  if !json <> None then B.json_enabled := true;
  (match !mode with
  | `List -> List.iter (fun (name, _) -> print_endline name) experiments
  | `Bechamel -> bechamel_suite ()
  | `Run -> (
      match !only with
      | None ->
          print_endline "# paradb experiment harness";
          List.iter (fun (_, run) -> run ()) experiments
      | Some id -> (
          match List.assoc_opt id experiments with
          | Some run -> run ()
          | None ->
              Printf.eprintf "unknown experiment %s\n" id;
              usage ();
              exit 1)));
  match !json with None -> () | Some file -> B.write_json file
