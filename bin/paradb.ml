(* paradb — command-line front end.

   Subcommands:
     eval      parse a fact file and a query, evaluate with a chosen engine
     check     static analysis of a query: acyclicity, I1/I2 partition,
               comparison consistency, join tree
     datalog   bottom-up evaluation of a Datalog program
     generate  emit a sample workload as a fact file
     compact   convert a fact file into an mmap-able segment directory
     serve     resident TCP query server (catalog + plan cache)
     coordinator  sharded scatter-gather front end over shard servers
     client    line-protocol client for a running server
     stats     telemetry snapshot of a running server
     fuzz      differential cross-engine equivalence fuzzing *)

module Relation = Paradb_relational.Relation
module Database = Paradb_relational.Database
module Value = Paradb_relational.Value
module Hypergraph = Paradb_hypergraph.Hypergraph
module Join_tree = Paradb_hypergraph.Join_tree
module Engine = Paradb_core.Engine
module Hashing = Paradb_core.Hashing
module Plan = Paradb_server.Plan
module Guard = Paradb_server.Guard
module Fault = Paradb_server.Fault
module Server = Paradb_server.Server
module Client = Paradb_server.Client
module Protocol = Paradb_server.Protocol
open Paradb_query
open Cmdliner

module Store = Paradb_storage.Store
module Segment = Paradb_storage.Segment

(* file reading and parse-error wrapping live in Paradb_query.Source,
   the code path shared with the server's LOAD and the client;
   Store.load_database adds segment-directory support on top *)
let read_file = Source.read_file
let load_database = Store.load_database
let parse_query = Source.parse_query

(* Exit-code discipline (documented in every subcommand's man page):
   0 on success — a Boolean query answering "false" is a success —
   and 1 on parse, I/O and usage errors. *)
let exits =
  [
    Cmd.Exit.info 0
      ~doc:
        "on success.  A Boolean query whose answer is $(i,false) (an empty \
         answer set) is a success, not a failure.";
    Cmd.Exit.info 1 ~doc:"on parse errors, I/O errors and command line usage errors.";
  ]

(* ------------------------------------------------------------------ *)
(* Arguments *)

let db_arg =
  let doc =
    "Fact file ('-' for stdin): lines like 'edge(1, 2).'  A directory is \
     opened as a compacted segment store (see $(b,paradb compact))."
  in
  Arg.(required & opt (some string) None & info [ "d"; "db" ] ~docv:"FILE" ~doc)

let query_arg =
  let doc = "The query, e.g. 'ans(X) :- e(X, Y), X != Y.'" in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc)

type engine_kind =
  | E_auto
  | E_naive
  | E_yannakakis
  | E_fpt
  | E_compiled

let engine_arg =
  let kinds =
    [ ("auto", E_auto); ("naive", E_naive); ("yannakakis", E_yannakakis);
      ("fpt", E_fpt); ("compiled", E_compiled) ]
  in
  let doc =
    "Evaluation engine: auto (the compiled planner pipeline), naive \
     (backtracking), yannakakis (acyclic, no constraints), fpt (the \
     Theorem-2 engine for acyclic queries with !=), compiled (the \
     structure-aware plan lowered to fused push-based operators)."
  in
  Arg.(value & opt (enum kinds) E_auto & info [ "e"; "engine" ] ~doc)

let family_arg =
  let doc =
    "Hash family for the fpt engine: 'sweep' (deterministic, exact) or \
     'random' (Monte-Carlo, c*e^k trials)."
  in
  Arg.(value & opt (enum [ ("sweep", `Sweep); ("random", `Random) ]) `Sweep
       & info [ "family" ] ~doc)

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Random seed.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print work counters.")

let trace_arg =
  let doc =
    "Write a span trace to $(docv), one JSON object per line (see \
     DESIGN.md, section \"Telemetry\").  When absent, the \
     $(b,PARADB_TRACE) environment variable enables the same trace."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

(* [--trace] wins over PARADB_TRACE; a bad path or a malformed
   environment value is a usage error, reported like any other. *)
let with_trace trace f =
  match
    match trace with
    | Some file -> Paradb_telemetry.Trace.enable ~file
    | None -> Paradb_telemetry.Trace.init_from_env ()
  with
  | exception Invalid_argument msg | exception Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | () -> f ()

(* ------------------------------------------------------------------ *)
(* eval *)

let family_of kind ~k ~seed =
  match kind with
  | `Sweep -> Hashing.Multiplicative_sweep
  | `Random ->
      Hashing.Random_trials
        { trials = Hashing.default_trials ~c:3.0 ~k; seed }

(* dispatch is single-sourced in Plan.analyze (the decision the server's
   plan cache stores); the CLI only translates its argv enum *)
let plan_kind = function
  | E_auto -> Plan.Auto
  | E_naive -> Plan.Naive
  | E_yannakakis -> Plan.Yannakakis
  | E_fpt -> Plan.Fpt
  | E_compiled -> Plan.Compiled

let choose_engine kind q =
  match (Plan.analyze (plan_kind kind) q).Plan.engine with
  | Plan.E_naive -> `Naive
  | Plan.E_yannakakis -> `Yannakakis
  | Plan.E_comparisons -> `Comparisons
  | Plan.E_fpt -> `Fpt
  | Plan.E_compiled -> `Compiled

let run_eval db_path query_text engine family seed count stats trace =
  with_trace trace @@ fun () ->
  match load_database db_path, parse_query query_text with
  | Error e, _ | _, Error e ->
      Printf.eprintf "error: %s\n" e;
      1
  | Ok db, Ok q -> (
      try
        if count then begin
          let n, engine_name =
            match choose_engine engine q with
            | `Naive ->
                let s = Paradb_eval.Cq_naive.new_stats () in
                let n = Paradb_eval.Cq_naive.count ~stats:s db q in
                if stats then
                  Printf.printf "%% naive probes: %d\n"
                    s.Paradb_eval.Cq_naive.probes;
                (n, "naive")
            | `Yannakakis ->
                (Paradb_yannakakis.Yannakakis.count db q, "yannakakis")
            | `Compiled ->
                let pplan = Paradb_planner.Planner.plan q in
                if stats then
                  Printf.printf "%% plan class: %s, width %d\n"
                    (Paradb_planner.Planner.classification_name
                       pplan.Paradb_planner.Planner.classification)
                    pplan.Paradb_planner.Planner.width;
                ( Paradb_eval.Compile.run_count
                    (Paradb_eval.Compile.compile_count pplan db),
                  "compiled" )
            | `Fpt ->
                invalid_arg
                  "COUNT: engine fpt cannot count (use auto, naive, \
                   yannakakis, or compiled)"
            | `Comparisons ->
                invalid_arg
                  "COUNT: engine comparisons cannot count (use auto, naive, \
                   yannakakis, or compiled)"
          in
          Printf.printf "%% engine: %s\n" engine_name;
          Printf.printf "%d\n" n;
          0
        end
        else
        let result, engine_name =
          match choose_engine engine q with
          | `Naive ->
              let s = Paradb_eval.Cq_naive.new_stats () in
              let r = Paradb_eval.Cq_naive.evaluate ~stats:s db q in
              if stats then
                Printf.printf "%% naive probes: %d\n" s.Paradb_eval.Cq_naive.probes;
              (r, "naive")
          | `Yannakakis -> (Paradb_yannakakis.Yannakakis.evaluate db q, "yannakakis")
          | `Comparisons -> (Paradb_core.Comparisons.evaluate db q, "comparisons")
          | `Fpt ->
              let part = Paradb_core.Ineq.partition q in
              let family = family_of family ~k:part.Paradb_core.Ineq.k ~seed in
              let s = Engine.new_stats () in
              let r = Engine.evaluate ~family ~stats:s db q in
              if stats then
                Printf.printf "%% fpt colorings: %d tried, %d nonempty\n"
                  s.Engine.trials s.Engine.successes;
              (r, "fpt")
          | `Compiled ->
              let pplan = Paradb_planner.Planner.plan q in
              if stats then
                Printf.printf "%% plan class: %s, width %d\n"
                  (Paradb_planner.Planner.classification_name
                     pplan.Paradb_planner.Planner.classification)
                  pplan.Paradb_planner.Planner.width;
              (Paradb_eval.Compile.run (Paradb_eval.Compile.compile pplan db),
               "compiled")
        in
        Printf.printf "%% engine: %s\n" engine_name;
        Format.printf "%a@." Relation.pp result;
        0
      with
      | Paradb_yannakakis.Yannakakis.Cyclic_query | Engine.Cyclic_query ->
          Printf.eprintf
            "error: the query hypergraph is cyclic; use --engine naive\n";
          1
      | Invalid_argument msg ->
          Printf.eprintf "error: %s\n" msg;
          1)

let count_arg =
  Arg.(
    value & flag
    & info [ "count" ]
        ~doc:
          "Print the exact answer count — the number of satisfying \
           valuations of the body variables (Nat-semiring semantics) — \
           instead of the answer set.  Supported by the auto, naive, \
           yannakakis and compiled engines.")

let eval_cmd =
  let doc = "Evaluate a query over a fact file." in
  Cmd.v
    (Cmd.info "eval" ~doc ~exits)
    Term.(
      const run_eval $ db_arg $ query_arg $ engine_arg $ family_arg $ seed_arg
      $ count_arg $ stats_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* check *)

let dot_arg =
  Arg.(value & flag
       & info [ "dot" ] ~doc:"Also print the join tree in GraphViz format.")

let run_check query_text dot =
  match parse_query query_text with
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
  | Ok q ->
      Format.printf "query: %a@." Cq.pp q;
      Format.printf "size q = %d, variables v = %d@." (Cq.size q) (Cq.num_vars q);
      let h = Hypergraph.of_cq q in
      let acyclic = Hypergraph.is_acyclic h in
      Format.printf "hypergraph: %a@.acyclic: %b@." Hypergraph.pp h acyclic;
      (if Cq.neq_only q then begin
         let part = Paradb_core.Ineq.partition q in
         Format.printf "inequalities: %a@." Paradb_core.Ineq.pp part
       end
       else
         match Paradb_core.Comparisons.preprocess q with
         | Paradb_core.Comparisons.Inconsistent ->
             Format.printf
               "comparisons: inconsistent (query is empty on every database)@."
         | Paradb_core.Comparisons.Collapsed q' ->
             Format.printf "comparisons: consistent; collapsed: %a@." Cq.pp q');
      (match Join_tree.of_cq q with
      | Some tree ->
          Format.printf "%a@." Join_tree.pp tree;
          if dot then print_string (Join_tree.to_dot tree)
      | None -> Format.printf "no join tree (cyclic or empty body)@.");
      let pplan = Paradb_planner.Planner.plan q in
      Format.printf "plan class: %s, width %d@."
        (Paradb_planner.Planner.classification_name
           pplan.Paradb_planner.Planner.classification)
        pplan.Paradb_planner.Planner.width;
      List.iter
        (Format.printf "  %s@.")
        (Paradb_planner.Planner.explain pplan);
      (match choose_engine E_auto q with
      | `Naive -> Format.printf "recommended engine: naive@."
      | `Yannakakis -> Format.printf "recommended engine: yannakakis@."
      | `Fpt -> Format.printf "recommended engine: fpt (Theorem 2)@."
      | `Compiled ->
          Format.printf "recommended engine: compiled (planner pipeline)@."
      | `Comparisons ->
          Format.printf
            "recommended engine: comparisons preprocessing + naive (Theorem 3 \
             says no FPT engine exists unless FPT = W[1])@.");
      0

let check_cmd =
  let doc = "Analyze a query: acyclicity, partition, join tree." in
  Cmd.v (Cmd.info "check" ~doc ~exits) Term.(const run_check $ query_arg $ dot_arg)

(* ------------------------------------------------------------------ *)
(* datalog *)

let program_arg =
  let doc = "Datalog program file ('-' for stdin)." in
  Arg.(required & opt (some string) None & info [ "p"; "program" ] ~docv:"FILE" ~doc)

let goal_arg =
  let doc = "Goal (output) predicate." in
  Arg.(required & opt (some string) None & info [ "g"; "goal" ] ~docv:"NAME" ~doc)

let strategy_arg =
  let doc = "Fixpoint strategy." in
  Arg.(value
       & opt (enum [ ("naive", Paradb_datalog.Engine.Naive);
                     ("seminaive", Paradb_datalog.Engine.Seminaive) ])
           Paradb_datalog.Engine.Seminaive
       & info [ "strategy" ] ~doc)

let run_datalog db_path program_path goal strategy stats trace =
  with_trace trace @@ fun () ->
  match load_database db_path with
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
  | Ok db -> (
      match
        match read_file program_path with
        | exception Sys_error msg -> Error msg
        | text -> Source.parse_program text ~goal
      with
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          1
      | Ok program ->
          let s = Paradb_datalog.Engine.new_stats () in
          let r = Paradb_datalog.Engine.evaluate ~strategy ~stats:s db program in
          if stats then
            Printf.printf "%% rounds: %d, derivations: %d\n"
              s.Paradb_datalog.Engine.rounds s.Paradb_datalog.Engine.derived;
          Format.printf "%a@." Relation.pp r;
          0)

let datalog_cmd =
  let doc = "Run a Datalog program bottom-up." in
  Cmd.v
    (Cmd.info "datalog" ~doc ~exits)
    Term.(
      const run_datalog $ db_arg $ program_arg $ goal_arg $ strategy_arg
      $ stats_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* generate *)

let scenario_arg =
  let doc = "Scenario: employees | students | salaries | edges." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SCENARIO" ~doc)

let size_arg =
  Arg.(value & opt int 20 & info [ "n"; "size" ] ~doc:"Workload size knob.")

let print_facts db = Fact_format.print stdout db

let run_generate scenario size seed =
  let rng = Random.State.make [| seed |] in
  let module G = Paradb_workload.Generators in
  match scenario with
  | "employees" ->
      let db, q = G.employees_multi_project rng ~employees:size ~projects:(max 2 (size / 3)) ~assignments:(2 * size) in
      Printf.printf "%% query: %s\n" (Cq.to_string q);
      print_facts db;
      0
  | "students" ->
      let db, q =
        G.students_outside_department rng ~students:size ~courses:size
          ~departments:(max 2 (size / 5)) ~enrollments:(2 * size)
      in
      Printf.printf "%% query: %s\n" (Cq.to_string q);
      print_facts db;
      0
  | "salaries" ->
      let db, q = G.employees_higher_salary rng ~employees:size ~max_salary:100 in
      Printf.printf "%% query: %s\n" (Cq.to_string q);
      print_facts db;
      0
  | "edges" ->
      print_facts (G.edge_database rng ~nodes:size ~edges:(4 * size));
      0
  | other ->
      Printf.eprintf "error: unknown scenario %s\n" other;
      1

let generate_cmd =
  let doc = "Emit a sample workload as a fact file." in
  Cmd.v
    (Cmd.info "generate" ~doc ~exits)
    Term.(const run_generate $ scenario_arg $ size_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* compact *)

let out_dir_arg =
  let doc =
    "Output segment directory (created if missing).  May be omitted when \
     the input is itself a segment store: the store is then folded in \
     place."
  in
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"DIR" ~doc)

let run_compact db_path out =
  match out with
  | None when Store.is_store db_path -> (
      match Store.fold_in_place ~dir:db_path with
      | exception Sys_error msg | exception Segment.Corrupt msg ->
          Printf.eprintf "error: storage: %s\n" msg;
          1
      | before, after, bytes ->
          Printf.printf "folded %s in place: segments %d -> %d bytes=%d\n"
            db_path before after bytes;
          0)
  | None ->
      Printf.eprintf
        "error: %s is not a segment store; name an output directory with \
         --out\n"
        db_path;
      1
  | Some out -> (
      match load_database db_path with
      | Error e ->
          Printf.eprintf "error: %s\n" e;
          1
      | Ok db -> (
          match Store.compact ~dir:out db with
          | exception Sys_error msg | exception Segment.Corrupt msg ->
              Printf.eprintf "error: storage: %s\n" msg;
              1
          | bytes ->
              Printf.printf
                "compacted %s: relations=%d tuples=%d bytes=%d -> %s\n" db_path
                (List.length (Database.relations db))
                (Database.size db) bytes out;
              0))

let compact_cmd =
  let doc = "Compact a fact file (or segment store) into a segment directory." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Writes one checksummed columnar segment per relation plus a \
         MANIFEST into $(b,--out).  The result opens by $(b,mmap) — \
         $(b,paradb eval -d DIR), $(b,LOAD db DIR), or $(b,paradb serve \
         --data-dir) skip text parsing entirely.  Compacting an existing \
         store rewrites it as one segment per relation (squashing \
         accumulated delta segments).";
      `P
        "When $(b,--db) names a segment store and $(b,--out) is omitted, \
         the store is folded in place: delta segments accumulated by a \
         server's $(b,LOAD)/$(b,FACT) are unioned into one fresh segment \
         per relation, the MANIFEST is swapped atomically, and the old \
         segment files are removed.  A server must re-attach (restart) to \
         see the folded layout; until then it keeps serving its immutable \
         mmap snapshots safely.";
      `P
        "Every section of a segment file carries a CRC-32: a flipped byte \
         anywhere fails validation with a clean error naming the file, \
         never a silently wrong answer.";
    ]
  in
  Cmd.v
    (Cmd.info "compact" ~doc ~man ~exits)
    Term.(const run_compact $ db_arg $ out_dir_arg)

(* ------------------------------------------------------------------ *)
(* serve *)

let host_arg =
  Arg.(value & opt string "127.0.0.1"
       & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind or connect to.")

let port_arg ~default =
  Arg.(value & opt int default
       & info [ "p"; "port" ] ~docv:"PORT" ~doc:"TCP port (0 = ephemeral).")

let workers_arg =
  let doc = "Worker domains draining the connection queue." in
  Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N" ~doc)

let cache_arg =
  let doc = "Plan cache capacity (LRU entries)." in
  Arg.(value & opt int 128 & info [ "cache-size" ] ~docv:"N" ~doc)

let trial_domains_arg =
  let doc =
    "Value for \\$(b,PARADB_DOMAINS) (the fpt engine's per-query trial \
     parallelism) unless it is already set; the default 1 keeps all \
     parallelism in the worker pool."
  in
  Arg.(value & opt int 1 & info [ "trial-domains" ] ~docv:"N" ~doc)

let deadline_arg =
  let doc =
    "Per-request evaluation deadline in milliseconds.  An $(b,EVAL) that \
     outlives it is cancelled cooperatively and answered with $(b,ERR) \
     $(b,deadline-exceeded); the worker survives.  Unlimited when absent."
  in
  Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let max_line_arg =
  let doc = "Maximum request-line length in bytes; longer lines answer $(b,ERR)." in
  Arg.(value & opt int Guard.default_limits.Guard.max_line
       & info [ "max-line" ] ~docv:"BYTES" ~doc)

let max_rows_arg =
  let doc =
    "Maximum result rows per response; wider results are truncated and \
     marked $(b,truncated=true) in the summary.  Unlimited when absent."
  in
  Arg.(value & opt (some int) None & info [ "max-rows" ] ~docv:"N" ~doc)

let idle_timeout_arg =
  let doc =
    "Seconds a connection may sit idle between requests before the server \
     closes it.  Unlimited when absent."
  in
  Arg.(value & opt (some float) None & info [ "idle-timeout" ] ~docv:"SECONDS" ~doc)

let grace_arg =
  let doc =
    "Graceful-shutdown window in seconds: on SIGINT/SIGTERM the server \
     stops accepting, lets in-flight requests finish for up to $(docv), \
     then force-closes the stragglers."
  in
  Arg.(value & opt float 2.0 & info [ "grace" ] ~docv:"SECONDS" ~doc)

let data_dir_arg =
  let doc =
    "Durable catalog root.  Segment stores under $(docv) are attached at \
     startup (a corrupt store aborts startup with a clean error), and \
     every $(b,LOAD)/$(b,FACT) persists as delta segments — the catalog \
     survives restarts."
  in
  Arg.(value & opt (some string) None & info [ "data-dir" ] ~docv:"DIR" ~doc)

let durability_arg =
  let doc =
    "Fsync discipline for store publishes: $(b,full) syncs segment \
     bytes, manifest and directory in write order before acknowledging \
     (an acked write survives power loss), $(b,async) queues the same \
     syncs to a background flusher (kill-safe, small power-loss \
     window), $(b,off) never syncs.  Overrides $(b,PARADB_DURABILITY); \
     default $(b,full)."
  in
  Arg.(value & opt (some string) None & info [ "durability" ] ~docv:"MODE" ~doc)

let compact_after_arg =
  let doc =
    "Background compaction threshold: fold any store that accumulates \
     $(docv) or more live segments back to one segment per relation, \
     in a domain off the request path.  $(b,0) disables the sweeper."
  in
  Arg.(value & opt int 32 & info [ "compact-after" ] ~docv:"N" ~doc)

let compact_interval_arg =
  let doc = "Seconds between background compaction scans." in
  Arg.(value & opt float 10.0 & info [ "compact-interval" ] ~docv:"SECONDS" ~doc)

(* CLI flag wins over PARADB_DURABILITY; both feed the process-global
   mode the storage layer reads at every publish. *)
let init_durability flag =
  match flag with
  | Some s -> (
      match Paradb_storage.Durability.of_string s with
      | Some m ->
          Paradb_storage.Durability.set m;
          Ok ()
      | None ->
          Error
            (Printf.sprintf
               "--durability: expected full, async or off, got %S" s))
  | None -> (
      match Paradb_storage.Durability.init_from_env () with
      | () -> Ok ()
      | exception Invalid_argument msg -> Error msg)

let run_serve host port workers cache_size trial_domains family seed trace
    data_dir durability compact_after compact_interval deadline_ms max_line
    max_rows idle_timeout grace =
  if workers < 1 || cache_size < 1 || trial_domains < 1 then begin
    Printf.eprintf "error: --workers, --cache-size and --trial-domains must be positive\n";
    1
  end
  else if
    (let bad_opt cmp = function Some v -> cmp v | None -> false in
     bad_opt (fun v -> v <= 0) deadline_ms
     || max_line < 1
     || bad_opt (fun v -> v <= 0) max_rows
     || bad_opt (fun v -> v <= 0.0) idle_timeout
     || grace < 0.0)
  then begin
    Printf.eprintf
      "error: --deadline-ms, --max-rows and --idle-timeout must be positive, \
       --max-line at least 1, --grace non-negative\n";
    1
  end
  else if compact_after < 0 || compact_interval <= 0.0 then begin
    Printf.eprintf
      "error: --compact-after must be non-negative, --compact-interval \
       positive\n";
    1
  end
  else
    with_trace trace @@ fun () ->
    begin
    if Sys.getenv_opt "PARADB_DOMAINS" = None then
      Unix.putenv "PARADB_DOMAINS" (string_of_int trial_domains);
    match
      match init_durability durability with
      | Error msg -> Error msg
      | Ok () -> (
          match Fault.init_from_env () with
          | exception Invalid_argument msg -> Error msg
          | () -> Ok ())
    with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | Ok () ->
    let family =
      match family with
      | `Sweep -> None
      | `Random -> Some (family_of `Random ~k:4 ~seed)
    in
    let limits =
      {
        Guard.deadline_ns = Option.map (fun ms -> ms * 1_000_000) deadline_ms;
        max_line;
        max_rows;
        idle_timeout;
      }
    in
    match
      Server.start ~host ?family ~limits ?data_dir ~port ~workers
        ~cache_capacity:cache_size ()
    with
    | exception Unix.Unix_error (e, _, _) ->
        Printf.eprintf "error: cannot listen on %s:%d: %s\n" host port
          (Unix.error_message e);
        1
    | exception Segment.Corrupt msg ->
        Printf.eprintf "error: storage: %s\n" msg;
        1
    | exception Sys_error msg ->
        Printf.eprintf "error: storage: %s\n" msg;
        1
    | server ->
        (* Stop on SIGINT/SIGTERM.  The handler only flips a flag: the
           main domain polls it and runs the graceful stop itself, since
           handlers should not join domains. *)
        let stop_requested = Atomic.make false in
        let install sg =
          try
            Sys.set_signal sg
              (Sys.Signal_handle (fun _ -> Atomic.set stop_requested true))
          with Invalid_argument _ | Sys_error _ -> ()
        in
        install Sys.sigint;
        install Sys.sigterm;
        Printf.printf "paradb: listening on %s:%d (%d workers, plan cache %d)\n%!"
          host (Server.port server) workers cache_size;
        (if data_dir <> None then
           List.iter
             (fun (name, tuples) ->
               Printf.printf "paradb: attached %s (%d tuples)\n%!" name tuples)
             (Paradb_server.Catalog.entries
                (Server.shared server).Paradb_server.Session.catalog));
        (if Fault.active () then
           Printf.printf "paradb: fault injection enabled (PARADB_FAULTS)\n%!");
        let compactor =
          if compact_after >= 2 && data_dir <> None then begin
            Printf.printf
              "paradb: background compaction at %d segments (every %.1fs, \
               durability %s)\n\
               %!"
              compact_after compact_interval
              (Paradb_storage.Durability.to_string
                 (Paradb_storage.Durability.mode ()))
            ;
            Some
              (Paradb_server.Compactor.start
                 ~catalog:(Server.shared server).Paradb_server.Session.catalog
                 ~min_segments:compact_after ~interval:compact_interval)
          end
          else None
        in
        let rec wait_for_stop () =
          if Atomic.get stop_requested then begin
            Printf.printf "paradb: shutting down (grace %.1fs)\n%!" grace;
            Option.iter Paradb_server.Compactor.stop compactor;
            Server.stop ~grace server;
            (* Flush any async-mode fsyncs still queued so a clean
               shutdown leaves nothing owed to the disk. *)
            Paradb_storage.Durability.drain ()
          end
          else begin
            (try Unix.sleepf 0.1 with Unix.Unix_error (EINTR, _, _) -> ());
            wait_for_stop ()
          end
        in
        wait_for_stop ();
        0
  end

let serve_cmd =
  let doc = "Run the resident query server (catalog + plan cache)." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Serves the line protocol: $(b,LOAD) $(i,DB) $(i,PATH), $(b,FACT) \
         $(i,DB) $(i,FACT), $(b,EVAL) $(i,DB) $(i,ENGINE) $(i,QUERY), \
         $(b,CHECK) $(i,QUERY), $(b,EXPLAIN) $(i,QUERY), $(b,STATS), \
         $(b,METRICS) and $(b,QUIT).  \
         Responses are framed as $(b,OK) $(i,N) $(i,SUMMARY) followed by \
         $(i,N) payload lines, or a single $(b,ERR) $(i,MESSAGE) line.  See \
         DESIGN.md, section \"Server protocol\".";
      `P
        "Resource governance: $(b,--deadline-ms), $(b,--max-line), \
         $(b,--max-rows) and $(b,--idle-timeout) bound each request's \
         evaluation time, line length, result size and connection \
         idleness; every rejection is an $(b,ERR) response plus a \
         telemetry counter, never a dropped worker.  The \
         $(b,PARADB_FAULTS) environment variable (e.g. \
         'short_read:0.1,disconnect:0.05,seed:42') enables fault \
         injection for chaos testing.";
      `P
        "With $(b,--data-dir), the catalog is durable: each database is a \
         directory of immutable checksummed segment files under the data \
         dir, attached by $(b,mmap) at startup; $(b,LOAD) appends delta \
         segments instead of re-ingesting and $(b,FACT) persists each \
         fact, both swapped in atomically under a fresh snapshot \
         generation.  Run $(b,paradb compact) offline to squash a \
         database's deltas back to one segment per relation, or let the \
         background sweeper do it: with $(b,--compact-after) $(i,N) (N >= \
         2) a dedicated domain folds any database that accumulates \
         $(i,N) live segments, off the request path, publishing the \
         result with the same atomic-rename protocol as every other \
         write.";
      `P
        "Durability: $(b,--durability) (or $(b,PARADB_DURABILITY)) picks \
         the fsync discipline.  $(b,full) (the default) syncs segment \
         bytes, then the manifest, then the directory entry before a \
         write is acknowledged, so an acked write survives $(b,kill -9) \
         and power loss.  $(b,async) queues the same syncs to a \
         background flusher: crash-consistent (recovery never sees a \
         half-published store) with a small window where an acked write \
         may be lost to power failure.  $(b,off) never syncs; only the \
         rename ordering protects you.  On every open the store \
         quarantines leftover temp files and unreferenced segments to \
         $(b,orphans/) rather than trusting or deleting them \
         ($(b,storage.orphans.cleaned) counts them).  See DESIGN.md, \
         section \"Durability model\".";
      `P
        "Stop the server with SIGINT or SIGTERM: it stops accepting, \
         drains in-flight requests for up to $(b,--grace) seconds, then \
         force-closes the rest.";
    ]
  in
  Cmd.v
    (Cmd.info "serve" ~doc ~man ~exits)
    Term.(
      const run_serve $ host_arg $ port_arg ~default:7411 $ workers_arg
      $ cache_arg $ trial_domains_arg $ family_arg $ seed_arg $ trace_arg
      $ data_dir_arg $ durability_arg $ compact_after_arg
      $ compact_interval_arg $ deadline_arg $ max_line_arg $ max_rows_arg
      $ idle_timeout_arg $ grace_arg)

(* ------------------------------------------------------------------ *)
(* coordinator *)

module Coordinator = Paradb_cluster.Coordinator

let shards_list_arg =
  let doc =
    "Comma-separated $(i,HOST:PORT) list of shard servers (a bare port \
     means 127.0.0.1).  List position is the shard id: keep the order \
     stable across restarts or data placement will not line up."
  in
  Arg.(required & opt (some string) None
       & info [ "shards" ] ~docv:"LIST" ~doc)

let replicas_arg =
  let doc =
    "Copies of each slice, including the primary.  Replica $(i,r) of \
     slice $(i,s) lives on shard $(i,s+r) (mod shards) under the entry \
     name $(i,db@r)$(i,r); reads fail over to it when the primary is \
     unreachable."
  in
  Arg.(value & opt int 1 & info [ "replicas" ] ~docv:"N" ~doc)

let vnodes_arg =
  let doc = "Virtual nodes per shard on the consistent-hashing ring." in
  Arg.(value & opt int Paradb_cluster.Ring.default_vnodes
       & info [ "vnodes" ] ~docv:"N" ~doc)

let shard_timeout_arg =
  let doc =
    "Seconds to wait for each shard sub-request (also bounds shard \
     connects).  A request deadline, when set, shrinks this further per \
     sub-request."
  in
  Arg.(value & opt (some float) (Some 30.0)
       & info [ "shard-timeout" ] ~docv:"SECONDS" ~doc)

let shard_retries_arg =
  let doc = "Connect retries per shard dial, with jittered backoff." in
  Arg.(value & opt int 2 & info [ "shard-retries" ] ~docv:"N" ~doc)

let max_inflight_arg =
  let doc =
    "Admission cap: concurrent $(b,EVAL)/$(b,GATHER) requests beyond \
     $(docv) are answered $(b,ERR admission-limited) instead of queueing \
     behind the shards.  Unlimited when absent."
  in
  Arg.(value & opt (some int) None & info [ "max-inflight" ] ~docv:"N" ~doc)

let hints_dir_arg =
  let doc =
    "Hinted-handoff journal directory.  A replica write that misses (its \
     shard is down or answers $(b,ERR)) is appended here as a per-shard \
     hint frame and replayed, in order, before the next write reaches \
     that shard.  Without it, missed replica writes are only counted and \
     logged, and divergence persists until $(b,REPAIR)."
  in
  Arg.(value & opt (some string) None
       & info [ "hints-dir" ] ~docv:"DIR" ~doc)

let run_coordinator host port workers shards replicas vnodes shard_timeout
    shard_retries max_inflight hints_dir deadline_ms max_line max_rows
    idle_timeout grace trace =
  if workers < 1 then begin
    Printf.eprintf "error: --workers must be positive\n";
    1
  end
  else
    with_trace trace @@ fun () ->
    match
      (* Hint-journal appends honor the same fsync discipline as the
         store, so PARADB_DURABILITY applies here too. *)
      match init_durability None with
      | Error msg -> Error msg
      | Ok () -> (
          match Fault.init_from_env () with
          | exception Invalid_argument msg -> Error msg
          | () -> Ok ())
    with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | Ok () -> (
        match Client.parse_addrs shards with
        | Error e ->
            Printf.eprintf "error: --shards: %s\n" e;
            1
        | Ok addrs -> (
            let limits =
              {
                Guard.deadline_ns =
                  Option.map (fun ms -> ms * 1_000_000) deadline_ms;
                max_line;
                max_rows;
                idle_timeout;
              }
            in
            let config =
              {
                Coordinator.addrs = Array.of_list addrs;
                replicas;
                vnodes;
                timeout = shard_timeout;
                retries = shard_retries;
                limits;
                max_inflight;
                hints_dir;
              }
            in
            match
              let coord = Coordinator.create config in
              Coordinator.serve ~host coord ~port ~workers
            with
            | exception Invalid_argument msg ->
                Printf.eprintf "error: %s\n" msg;
                1
            | exception Unix.Unix_error (e, _, _) ->
                Printf.eprintf "error: cannot listen on %s:%d: %s\n" host port
                  (Unix.error_message e);
                1
            | server ->
                let stop_requested = Atomic.make false in
                let install sg =
                  try
                    Sys.set_signal sg
                      (Sys.Signal_handle
                         (fun _ -> Atomic.set stop_requested true))
                  with Invalid_argument _ | Sys_error _ -> ()
                in
                install Sys.sigint;
                install Sys.sigterm;
                Printf.printf
                  "paradb: coordinating %d shards on %s:%d (%d workers, %d \
                   replicas)\n\
                   %!"
                  (List.length addrs) host (Server.port server) workers
                  replicas;
                (if Fault.active () then
                   Printf.printf
                     "paradb: fault injection enabled (PARADB_FAULTS)\n%!");
                let rec wait_for_stop () =
                  if Atomic.get stop_requested then begin
                    Printf.printf "paradb: shutting down (grace %.1fs)\n%!"
                      grace;
                    Server.stop ~grace server
                  end
                  else begin
                    (try Unix.sleepf 0.1
                     with Unix.Unix_error (EINTR, _, _) -> ());
                    wait_for_stop ()
                  end
                in
                wait_for_stop ();
                0))

let coordinator_cmd =
  let doc = "Run a scatter-gather coordinator over shard servers." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Speaks the same line protocol as $(b,paradb serve) but owns no \
         data: $(b,LOAD) hash-partitions every relation on its first \
         column over a consistent-hashing ring and ships one slice per \
         shard (plus replicas) as $(b,BULK) frames; $(b,EVAL) runs as \
         scatter-gather rounds — co-partitioned queries evaluate \
         shard-side in one round, general queries exchange per-atom \
         reducer relations (semijoin-reduced shard-side) and join at the \
         coordinator.  Answers are bit-for-bit identical to a single \
         server's.";
      `P
        "Failure handling: pooled shard connections redial once, reads \
         fail over along the replica ranks, and a request that exhausts \
         its replicas answers a clean $(b,ERR) naming the dead shard.  \
         $(b,--deadline-ms) is enforced at the coordinator and propagated \
         to every shard sub-request as a shrinking socket timeout; \
         $(b,--max-inflight) admission-limits concurrent evaluation on \
         top.  $(b,STATS) surfaces per-round and per-shard latency \
         histograms ($(b,telemetry.cluster.*)) — straggler p99 included.";
      `P
        "Replica self-healing: a write that misses a replica (but not the \
         primary) is counted on $(b,cluster.write.replica_miss), logged, \
         and — with $(b,--hints-dir) — journaled and replayed when the \
         shard returns (hinted handoff).  $(b,DIGEST) $(i,DB) compares \
         per-slice replica content fingerprints and reports divergence; \
         $(b,REPAIR) $(i,DB) replays hints and re-ships every divergent \
         slice with the union of all readable ranks' content.  See \
         DESIGN.md, section \"Durability model\".";
    ]
  in
  Cmd.v
    (Cmd.info "coordinator" ~doc ~man ~exits)
    Term.(
      const run_coordinator $ host_arg $ port_arg ~default:7410 $ workers_arg
      $ shards_list_arg $ replicas_arg $ vnodes_arg $ shard_timeout_arg
      $ shard_retries_arg $ max_inflight_arg $ hints_dir_arg $ deadline_arg
      $ max_line_arg $ max_rows_arg $ idle_timeout_arg $ grace_arg
      $ trace_arg)

(* ------------------------------------------------------------------ *)
(* client *)

let command_args =
  let doc =
    "Command to send (repeatable, sent in order).  Without any, commands \
     are read from standard input, one per line."
  in
  Arg.(value & opt_all string [] & info [ "c"; "command" ] ~docv:"CMD" ~doc)

let timeout_arg =
  let doc =
    "Seconds to wait for the connect and for each response before giving \
     up.  Unlimited when absent."
  in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)

let retries_arg =
  let doc =
    "Connect retries on refusal/reset/timeout, with exponential backoff \
     and jitter."
  in
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)

let addr_arg =
  let doc =
    "Comma-separated $(i,HOST:PORT) failover list (a bare port means \
     127.0.0.1).  Overrides $(b,--host)/$(b,--port); connect attempts \
     rotate through the list with jittered exponential backoff, so a \
     dead server is skipped instead of failing the client."
  in
  Arg.(value & opt (some string) None & info [ "addr" ] ~docv:"LIST" ~doc)

(* Resolve --addr against --host/--port and run [f] over the resulting
   failover connection.  The error paths mirror the single-address
   client's. *)
let with_any_connection ~host ~port ~timeout ~retries ~addr f =
  let addrs =
    match addr with
    | None -> Ok [ (host, port) ]
    | Some list -> Client.parse_addrs ~default_host:host list
  in
  match addrs with
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      Error 1
  | Ok addrs -> (
      match
        let conn = Client.connect_any ?timeout ~retries addrs () in
        Fun.protect ~finally:(fun () -> Client.close conn) (fun () -> f conn)
      with
      | exception Unix.Unix_error (e, _, _) ->
          Printf.eprintf "error: cannot connect to %s: %s\n"
            (String.concat ","
               (List.map (fun (h, p) -> Printf.sprintf "%s:%d" h p) addrs))
            (Unix.error_message e);
          Error 1
      | exception Failure msg ->
          Printf.eprintf "error: %s\n" msg;
          Error 1
      | v -> Ok v)

let run_client host port timeout retries addr commands =
  let commands =
    if commands <> [] then commands
    else
      In_channel.input_lines In_channel.stdin
      |> List.filter (fun l -> String.trim l <> "")
  in
  match
    with_any_connection ~host ~port ~timeout ~retries ~addr (fun conn ->
        List.fold_left
          (fun failed line ->
            let response = Client.request_line conn line in
            List.iter print_endline (Protocol.response_to_lines response);
            failed || match response with Protocol.Err _ -> true | _ -> false)
          false commands)
  with
  | Error code -> code
  | Ok failed -> if failed then 1 else 0

let client_cmd =
  let doc = "Send protocol commands to a running server." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Each command's framed response is printed verbatim ($(b,OK)/$(b,ERR) \
         line, then the payload lines).  The exit status is 1 if any \
         command was answered with $(b,ERR).";
    ]
  in
  Cmd.v
    (Cmd.info "client" ~doc ~man ~exits)
    Term.(
      const run_client $ host_arg $ port_arg ~default:7411 $ timeout_arg
      $ retries_arg $ addr_arg $ command_args)

(* ------------------------------------------------------------------ *)
(* stats *)

let json_arg =
  let doc =
    "Print the $(b,METRICS) snapshot (one JSON object) instead of the \
     $(b,STATS) counter table."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let run_stats host port timeout retries addr json =
  let request = if json then "METRICS" else "STATS" in
  match
    with_any_connection ~host ~port ~timeout ~retries ~addr (fun conn ->
        Client.request_line conn request)
  with
  | Error code -> code
  | Ok (Protocol.Err msg) ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Ok (Protocol.Ok_ { payload; _ }) ->
      List.iter print_endline payload;
      0

let stats_cmd =
  let doc = "Print a running server's counters and latency telemetry." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Sends $(b,STATS) (or, with $(b,--json), $(b,METRICS)) to the \
         server and prints the payload.  The table includes per-verb \
         latency histograms as $(b,telemetry.server.verb.)$(i,VERB) \
         $(b,.p50)/$(b,.p95)/$(b,.p99) lines (nanoseconds); the JSON \
         form carries the same snapshot as a single object.";
    ]
  in
  Cmd.v
    (Cmd.info "stats" ~doc ~man ~exits)
    Term.(
      const run_stats $ host_arg $ port_arg ~default:7411 $ timeout_arg
      $ retries_arg $ addr_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* fuzz *)

module Oracle = Paradb_oracle.Oracle
module Oracle_engines = Paradb_oracle.Engines
module Oracle_gen = Paradb_oracle.Gen

let fuzz_exits =
  exits
  @ [ Cmd.Exit.info 2 ~doc:"when cross-engine divergences were found." ]

let cases_arg =
  Arg.(value & opt int 500
       & info [ "cases" ] ~docv:"N" ~doc:"Number of generated cases.")

let fuzz_seed_arg =
  Arg.(value & opt int 42
       & info [ "seed" ]
           ~doc:"Base seed; case $(i,i) draws from an RNG keyed on (seed, i).")

let max_vars_arg =
  Arg.(value & opt int 8
       & info [ "max-vars" ] ~docv:"N"
           ~doc:"Size knob for generated queries (bounds atoms/variables).")

let max_tuples_arg =
  Arg.(value & opt int 16
       & info [ "max-tuples" ] ~docv:"N"
           ~doc:"Upper bound on tuples per generated relation.")

let engines_filter_arg =
  let doc =
    Printf.sprintf
      "Comma-separated subset of engines to compare (default: all).  Known: \
       %s."
      (String.concat ", " Oracle_engines.names)
  in
  Arg.(value & opt (some string) None
       & info [ "engines" ] ~docv:"NAMES" ~doc)

let out_arg =
  Arg.(value & opt (some string) None
       & info [ "out" ] ~docv:"DIR"
           ~doc:"Directory (created if missing) for shrunk .case files.")

let replay_arg =
  Arg.(value & opt (some string) None
       & info [ "replay" ] ~docv:"FILE"
           ~doc:"Replay a .case counterexample instead of fuzzing.")

let print_instance (inst : Oracle_gen.instance) =
  Printf.printf "  %s: %s\n"
    (match inst.Oracle_gen.shape with
    | Oracle_gen.Query _ -> "query"
    | Oracle_gen.Sentence _ -> "sentence")
    (Oracle_gen.shape_to_string inst.Oracle_gen.shape);
  String.split_on_char '\n' (Fact_format.to_string inst.Oracle_gen.db)
  |> List.iter (fun line -> if line <> "" then Printf.printf "  | %s\n" line)

let print_divergence (d : Oracle.divergence) =
  Printf.printf
    "divergence: engine=%s case=%d class=%s shrink_steps=%d atoms=%d \
     tuples=%d\n"
    d.Oracle.engine d.Oracle.index d.Oracle.label d.Oracle.shrink_steps
    (Oracle_gen.atoms d.Oracle.shrunk.Oracle_gen.shape)
    (Oracle_gen.tuple_count d.Oracle.shrunk);
  print_instance d.Oracle.shrunk;
  Printf.printf "  expected: %s\n"
    (Oracle_engines.outcome_to_string d.Oracle.expected);
  Printf.printf "  got:      %s\n"
    (Oracle_engines.outcome_to_string d.Oracle.got);
  Option.iter (Printf.printf "  case file: %s\n") d.Oracle.case_path

let run_replay path =
  match Oracle.replay path with
  | exception Sys_error msg | exception Failure msg
  | exception Invalid_argument msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | exception Parser.Parse_error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | inst, engine, reference, got, agree ->
      Printf.printf "replay: engine=%s\n" engine;
      print_instance inst;
      Printf.printf "  reference: %s\n"
        (Oracle_engines.outcome_to_string reference);
      Printf.printf "  engine:    %s\n"
        (Oracle_engines.outcome_to_string got);
      if agree then begin
        Printf.printf "replay: engines agree — counterexample is stale\n";
        0
      end
      else begin
        Printf.printf "replay: divergence reproduced\n";
        2
      end

let run_fuzz seed cases max_vars max_tuples engines out replay trace =
  with_trace trace @@ fun () ->
  (* Honor PARADB_FAULTS in the fuzz harness too: the serve and cluster
     engines then run with shard loss / stragglers / short reads
     injected, and the oracle checks answers stay bit-for-bit anyway. *)
  match Fault.init_from_env () with
  | exception Invalid_argument msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | () -> (
  match replay with
  | Some path -> run_replay path
  | None ->
      if cases < 1 || max_vars < 1 || max_tuples < 1 then begin
        Printf.eprintf
          "error: --cases, --max-vars and --max-tuples must be positive\n";
        1
      end
      else begin
        let engines =
          Option.map
            (fun s ->
              String.split_on_char ',' s
              |> List.map String.trim
              |> List.filter (fun n -> n <> ""))
            engines
        in
        let cfg =
          { Oracle.seed; cases; max_vars; max_tuples; engines; out_dir = out }
        in
        Option.iter
          (Printf.printf "fuzz: mutation armed: %s\n%!")
          (Paradb_telemetry.Mutate.active ());
        let progress i =
          if (i + 1) mod 1_000 = 0 then
            Printf.eprintf "fuzz: %d/%d cases\n%!" (i + 1) cases
        in
        match Oracle.run ~progress cfg with
        | exception Invalid_argument msg ->
            Printf.eprintf "error: %s\n" msg;
            1
        | report ->
            List.iter print_divergence report.Oracle.divergences;
            Printf.printf
              "fuzz: seed=%d cases=%d comparisons=%d divergences=%d \
               shrink_steps=%d\n"
              seed report.Oracle.cases_run report.Oracle.comparisons
              (List.length report.Oracle.divergences)
              report.Oracle.shrink_steps;
            if report.Oracle.divergences = [] then 0 else 2
      end)

let fuzz_cmd =
  let doc = "Differential fuzzing: cross-engine equivalence on random instances." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Generates seeded random (query, database) instances — acyclic and \
         cyclic conjunctive queries, with and without $(b,!=) and \
         order-comparison constraints, plus positive first-order sentences \
         — and runs each through every applicable engine path: the naive \
         backtracking reference, both join algorithms, Yannakakis, the \
         Theorem-2 fpt engine (deterministic sweep and Monte-Carlo \
         colorings), the comparison-preprocessing path, bottom-up Datalog, \
         the FO evaluator, and a live $(b,paradb serve) round-trip.  \
         Deterministic engines must reproduce the reference answer set \
         bit-for-bit; the Monte-Carlo family must produce a subset (its \
         error is one-sided).";
      `P
        "On divergence the instance is shrunk (drop atoms and constraints, \
         merge variables, drop tuples, collapse domain values) to a minimal \
         counterexample, printed and — with $(b,--out) — written as a \
         replayable $(b,.case) file; $(b,--replay) re-checks one.  The \
         $(b,PARADB_MUTATE) environment variable arms a known single-point \
         bug (see DESIGN.md §12) so CI can verify the oracle catches it.";
    ]
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc ~man ~exits:fuzz_exits)
    Term.(
      const run_fuzz $ fuzz_seed_arg $ cases_arg $ max_vars_arg
      $ max_tuples_arg $ engines_filter_arg $ out_arg $ replay_arg $ trace_arg)

(* ------------------------------------------------------------------ *)

let main_cmd =
  let doc =
    "Parameterized query evaluation (Papadimitriou & Yannakakis, PODS 1997)"
  in
  Cmd.group (Cmd.info "paradb" ~version:"1.10.0" ~doc ~exits)
    [
      eval_cmd; check_cmd; datalog_cmd; generate_cmd; compact_cmd; serve_cmd;
      coordinator_cmd; client_cmd; stats_cmd; fuzz_cmd;
    ]

let () =
  (* usage and CLI parse errors exit 1, not cmdliner's default 124 *)
  match Cmd.eval_value main_cmd with
  | Ok (`Ok code) -> exit code
  | Ok (`Version | `Help) -> exit 0
  | Error _ -> exit 1
